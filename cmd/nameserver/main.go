// Command nameserver runs a standalone OBIWAN name server over TCP.
//
// Sites started with obiwan.WithNameServer(addr) bind and look up object
// graph roots here, exactly like the RMI registry of the original
// prototype.
//
// Usage:
//
//	nameserver -addr :7777
//
// The server logs every binding change. Stop with SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"obiwan/internal/nameserver"
	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

func main() {
	addr := flag.String("addr", ":7777", "TCP listen address")
	logEvery := flag.Duration("log-every", 30*time.Second, "interval for binding-count log lines (0 disables)")
	flag.Parse()

	log.SetPrefix("nameserver: ")
	log.SetFlags(log.LstdFlags)

	if err := run(*addr, *logEvery); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run(addr string, logEvery time.Duration) error {
	network := transport.NewTCPNetwork()
	rt, err := rmi.NewRuntime(network, transport.Addr(addr))
	if err != nil {
		return fmt.Errorf("bind %s: %w", addr, err)
	}
	defer rt.Close()

	server, ref, err := nameserver.Serve(rt)
	if err != nil {
		return err
	}
	log.Printf("serving at %s (object id %d)", rt.Addr(), ref.ID)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	if logEvery > 0 {
		ticker := time.NewTicker(logEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				names := server.List()
				log.Printf("%d bindings: %v", len(names), names)
			case sig := <-stop:
				log.Printf("received %v, shutting down", sig)
				return nil
			}
		}
	}
	sig := <-stop
	log.Printf("received %v, shutting down", sig)
	return nil
}
