package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"sort"
	"strconv"
	"strings"
)

// marker in a type's doc comment selects it for generation.
const marker = "obiwan:replicable"

// target is one struct type to generate for.
type target struct {
	name    string
	methods []method
	skipped []string // methods excluded with the reason
}

// method is one business method with its file's import context.
type method struct {
	decl *ast.FuncDecl
	file *ast.File
}

// Generate scans the package in dir and returns the generated source.
// selected limits generation to the named types; empty means every type
// whose doc comment carries the obiwan:replicable marker.
func Generate(dir string, selected []string, prefix string) ([]byte, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		name := fi.Name()
		return strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") &&
			!strings.HasSuffix(name, "_gen.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", dir, err)
	}
	var pkg *ast.Package
	for name, p := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		if pkg != nil {
			return nil, fmt.Errorf("multiple packages in %s", dir)
		}
		pkg = p
	}
	if pkg == nil {
		return nil, fmt.Errorf("no Go package in %s", dir)
	}
	if prefix == "" {
		prefix = pkg.Name
	}

	targets, err := collectTargets(pkg, selected)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no matching types in %s (mark with %q or pass -types)", dir, marker)
	}

	g := &generator{fset: fset, pkgName: pkg.Name, prefix: prefix}
	return g.emit(targets)
}

// collectTargets finds the struct types and their methods.
func collectTargets(pkg *ast.Package, selected []string) ([]*target, error) {
	want := make(map[string]bool, len(selected))
	for _, s := range selected {
		want[s] = true
	}

	byName := make(map[string]*target)
	var order []string

	// Pass 1: struct type declarations.
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
					continue
				}
				name := ts.Name.Name
				pick := want[name]
				if len(want) == 0 {
					doc := ts.Doc
					if doc == nil {
						doc = gd.Doc
					}
					pick = doc != nil && strings.Contains(doc.Text(), marker)
				}
				if !pick {
					continue
				}
				if _, dup := byName[name]; !dup {
					byName[name] = &target{name: name}
					order = append(order, name)
				}
			}
		}
	}
	for name := range want {
		if _, ok := byName[name]; !ok {
			return nil, fmt.Errorf("type %s not found (or not a struct)", name)
		}
	}

	// Pass 2: methods.
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() {
				continue
			}
			recv := receiverTypeName(fd.Recv.List[0].Type)
			t, ok := byName[recv]
			if !ok {
				continue
			}
			if reason := unsupportedSignature(fd.Type); reason != "" {
				t.skipped = append(t.skipped, fmt.Sprintf("%s (%s)", fd.Name.Name, reason))
				continue
			}
			t.methods = append(t.methods, method{decl: fd, file: file})
		}
	}

	sort.Strings(order)
	out := make([]*target, 0, len(order))
	for _, name := range order {
		t := byName[name]
		sort.Slice(t.methods, func(i, j int) bool {
			return t.methods[i].decl.Name.Name < t.methods[j].decl.Name.Name
		})
		if len(t.methods) == 0 {
			return nil, fmt.Errorf("type %s has no generatable exported methods", name)
		}
		out = append(out, t)
	}
	return out, nil
}

// receiverTypeName extracts T from a receiver of type T or *T.
func receiverTypeName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// unsupportedSignature reports why a method cannot travel the wire
// (empty string = supported).
func unsupportedSignature(ft *ast.FuncType) string {
	check := func(fields *ast.FieldList) string {
		if fields == nil {
			return ""
		}
		for _, f := range fields.List {
			if reason := unsupportedType(f.Type); reason != "" {
				return reason
			}
		}
		return ""
	}
	if r := check(ft.Params); r != "" {
		return r
	}
	return check(ft.Results)
}

func unsupportedType(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.ChanType:
		return "channel in signature"
	case *ast.FuncType:
		return "function in signature"
	case *ast.StarExpr:
		return unsupportedType(e.X)
	case *ast.ArrayType:
		return unsupportedType(e.Elt)
	case *ast.MapType:
		if r := unsupportedType(e.Key); r != "" {
			return r
		}
		return unsupportedType(e.Value)
	case *ast.Ellipsis:
		return unsupportedType(e.Elt)
	case *ast.InterfaceType:
		if len(e.Methods.List) > 0 {
			return "non-empty interface in signature"
		}
	}
	return ""
}

// generator emits the output file.
type generator struct {
	fset    *token.FileSet
	pkgName string
	prefix  string
	buf     bytes.Buffer
	imports map[string]string // path → local name ("" = default)
}

func (g *generator) emit(targets []*target) ([]byte, error) {
	g.imports = map[string]string{"obiwan": ""}

	var body bytes.Buffer
	for _, t := range targets {
		if err := g.emitType(&body, t); err != nil {
			return nil, err
		}
	}

	g.buf.Reset()
	fmt.Fprintf(&g.buf, "// Code generated by obicomp. DO NOT EDIT.\n")
	fmt.Fprintf(&g.buf, "//\n// Business interfaces, typed proxies, and registrations for the\n")
	fmt.Fprintf(&g.buf, "// OBIWAN-replicable types of package %s.\n\n", g.pkgName)
	fmt.Fprintf(&g.buf, "package %s\n\n", g.pkgName)
	fmt.Fprintf(&g.buf, "import (\n")
	paths := make([]string, 0, len(g.imports))
	for p := range g.imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if name := g.imports[p]; name != "" {
			fmt.Fprintf(&g.buf, "\t%s %s\n", name, strconv.Quote(p))
		} else {
			fmt.Fprintf(&g.buf, "\t%s\n", strconv.Quote(p))
		}
	}
	fmt.Fprintf(&g.buf, ")\n\n")
	g.buf.Write(body.Bytes())

	src, err := format.Source(g.buf.Bytes())
	if err != nil {
		return nil, fmt.Errorf("generated code does not format: %w\n%s", err, g.buf.String())
	}
	return src, nil
}

// emitType writes the interface, proxy, lookup helper, and registration
// for one target.
func (g *generator) emitType(w *bytes.Buffer, t *target) error {
	iface := "I" + t.name
	proxy := t.name + "Proxy"

	// Interface.
	fmt.Fprintf(w, "// %s is the business interface of %s — the methods that can be\n", iface, t.name)
	fmt.Fprintf(w, "// invoked locally on a replica or remotely on the master (the paper's\n")
	fmt.Fprintf(w, "// interface IA).\n")
	fmt.Fprintf(w, "type %s interface {\n", iface)
	for _, m := range t.methods {
		sig, err := g.signature(m)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\t%s%s\n", m.decl.Name.Name, sig)
	}
	fmt.Fprintf(w, "}\n\n")
	for _, s := range t.skipped {
		fmt.Fprintf(w, "// Note: method %s of %s is not wire-friendly and was left out.\n", s, t.name)
	}
	if len(t.skipped) > 0 {
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "var _ %s = (*%s)(nil)\n\n", iface, t.name)

	// Proxy.
	fmt.Fprintf(w, "// %s implements %s over an OBIWAN reference: invocations raise\n", proxy, iface)
	fmt.Fprintf(w, "// and resolve object faults transparently, or reach the master over RMI,\n")
	fmt.Fprintf(w, "// per the reference's invocation mode.\n")
	fmt.Fprintf(w, "type %s struct {\n\tref *obiwan.Ref\n}\n\n", proxy)
	fmt.Fprintf(w, "var _ %s = (*%s)(nil)\n\n", iface, proxy)
	fmt.Fprintf(w, "// New%s wraps an OBIWAN reference in the typed proxy.\n", proxy)
	fmt.Fprintf(w, "func New%s(ref *obiwan.Ref) *%s { return &%s{ref: ref} }\n\n", proxy, proxy, proxy)
	fmt.Fprintf(w, "// Ref returns the underlying OBIWAN reference (e.g. to switch its\n// invocation mode at run time).\n")
	fmt.Fprintf(w, "func (p *%s) Ref() *obiwan.Ref { return p.ref }\n\n", proxy)

	for _, m := range t.methods {
		if err := g.emitMethod(w, t, proxy, m); err != nil {
			return err
		}
	}

	// Replica lifecycle helpers, unless the business interface already
	// claims the names.
	has := func(name string) bool {
		for _, m := range t.methods {
			if m.decl.Name.Name == name {
				return true
			}
		}
		return false
	}
	if !has("Put") {
		fmt.Fprintf(w, "// Put ships the referenced replica's state back to its master.\n")
		fmt.Fprintf(w, "func (p *%s) Put(s *obiwan.Site) error {\n", proxy)
		fmt.Fprintf(w, "\tobj, err := p.ref.Resolve()\n\tif err != nil {\n\t\treturn err\n\t}\n")
		fmt.Fprintf(w, "\treturn s.Put(obj)\n}\n\n")
	}
	if !has("Refresh") {
		fmt.Fprintf(w, "// Refresh re-fetches the referenced replica's state from its master.\n")
		fmt.Fprintf(w, "func (p *%s) Refresh(s *obiwan.Site) error {\n", proxy)
		fmt.Fprintf(w, "\tobj, err := p.ref.Resolve()\n\tif err != nil {\n\t\treturn err\n\t}\n")
		fmt.Fprintf(w, "\treturn s.Refresh(obj)\n}\n\n")
	}

	// Lookup helper.
	fmt.Fprintf(w, "// Lookup%s resolves a name-server binding to a typed proxy.\n", t.name)
	fmt.Fprintf(w, "func Lookup%s(s *obiwan.Site, name string) (*%s, error) {\n", t.name, proxy)
	fmt.Fprintf(w, "\tref, err := s.Lookup(name)\n\tif err != nil {\n\t\treturn nil, err\n\t}\n")
	fmt.Fprintf(w, "\treturn New%s(ref), nil\n}\n\n", proxy)

	// Registration.
	fmt.Fprintf(w, "func init() {\n\tobiwan.MustRegisterType(%q, (*%s)(nil))\n}\n\n",
		g.prefix+"."+t.name, t.name)
	return nil
}

// emitMethod writes one forwarding method on the proxy.
func (g *generator) emitMethod(w *bytes.Buffer, t *target, proxy string, m method) error {
	name := m.decl.Name.Name
	params, callArgs, variadic, err := g.params(m)
	if err != nil {
		return err
	}
	results, hasErr, err := g.results(m)
	if err != nil {
		return err
	}

	sig, err := g.signature(m)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "// %s forwards to the referenced %s.\n", name, t.name)
	fmt.Fprintf(w, "func (p *%s) %s%s {\n", proxy, name, sig)

	// Build the argument vector.
	if variadic != "" {
		fmt.Fprintf(w, "\tcallArgs := make([]any, 0, %d+len(%s))\n", len(callArgs), variadic)
		for _, a := range callArgs {
			fmt.Fprintf(w, "\tcallArgs = append(callArgs, %s)\n", a)
		}
		fmt.Fprintf(w, "\tfor _, v := range %s {\n\t\tcallArgs = append(callArgs, v)\n\t}\n", variadic)
		fmt.Fprintf(w, "\tres, err := p.ref.Invoke(%q, callArgs...)\n", name)
	} else {
		args := strings.Join(callArgs, ", ")
		if args != "" {
			args = ", " + args
		}
		fmt.Fprintf(w, "\tres, err := p.ref.Invoke(%q%s)\n", name, args)
	}
	_ = params

	zeroReturns := make([]string, 0, len(results)+1)
	for i := range results {
		zeroReturns = append(zeroReturns, fmt.Sprintf("out%d", i))
	}
	if hasErr {
		// Declare zero-valued outputs up front so error paths can return.
		for i, rt := range results {
			fmt.Fprintf(w, "\tvar out%d %s\n", i, rt)
		}
		fmt.Fprintf(w, "\tif err != nil {\n\t\treturn %s\n\t}\n",
			strings.Join(append(append([]string(nil), zeroReturns...), "err"), ", "))
		for i, rt := range results {
			fmt.Fprintf(w, "\tif out%d, err = obiwan.Convert[%s](res[%d]); err != nil {\n", i, rt, i)
			fmt.Fprintf(w, "\t\treturn %s\n\t}\n",
				strings.Join(append(append([]string(nil), zeroReturns...), "err"), ", "))
		}
		fmt.Fprintf(w, "\treturn %s\n}\n\n",
			strings.Join(append(append([]string(nil), zeroReturns...), "nil"), ", "))
		return nil
	}

	// No error channel in the business interface: infrastructure failures
	// panic, like a Java RMI runtime exception. Use the error-returning
	// business methods (or the Ref directly) where failures are expected.
	fmt.Fprintf(w, "\tif err != nil {\n\t\tpanic(\"obiwan proxy: %s.%s: \" + err.Error())\n\t}\n", t.name, name)
	if len(results) == 0 {
		fmt.Fprintf(w, "\t_ = res\n\treturn\n}\n\n")
		return nil
	}
	for i, rt := range results {
		fmt.Fprintf(w, "\tout%d, cerr%d := obiwan.Convert[%s](res[%d])\n", i, i, rt, i)
		fmt.Fprintf(w, "\tif cerr%d != nil {\n\t\tpanic(\"obiwan proxy: %s.%s result %d: \" + cerr%d.Error())\n\t}\n",
			i, t.name, name, i, i)
	}
	fmt.Fprintf(w, "\treturn %s\n}\n\n", strings.Join(zeroReturns, ", "))
	return nil
}

// signature renders the method's signature (params + results), naming any
// anonymous parameters so the body can reference them.
func (g *generator) signature(m method) (string, error) {
	ft := m.decl.Type
	var b strings.Builder
	b.WriteString("(")
	idx := 0
	for i, f := range ft.Params.List {
		names := fieldNames(f, &idx)
		typ, err := g.typeString(f.Type, m.file)
		if err != nil {
			return "", err
		}
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strings.Join(names, ", "))
		b.WriteString(" ")
		b.WriteString(typ)
	}
	b.WriteString(")")
	if ft.Results != nil && len(ft.Results.List) > 0 {
		var parts []string
		for _, f := range ft.Results.List {
			typ, err := g.typeString(f.Type, m.file)
			if err != nil {
				return "", err
			}
			n := 1
			if len(f.Names) > 1 {
				n = len(f.Names)
			}
			for j := 0; j < n; j++ {
				parts = append(parts, typ)
			}
		}
		if len(parts) == 1 {
			b.WriteString(" " + parts[0])
		} else {
			b.WriteString(" (" + strings.Join(parts, ", ") + ")")
		}
	}
	return b.String(), nil
}

// params returns parameter metadata: declared names (for documentation),
// the call-argument expressions, and the variadic parameter name, if any.
func (g *generator) params(m method) (names []string, callArgs []string, variadic string, err error) {
	idx := 0
	for _, f := range m.decl.Type.Params.List {
		fnames := fieldNames(f, &idx)
		if _, isEllipsis := f.Type.(*ast.Ellipsis); isEllipsis {
			variadic = fnames[len(fnames)-1]
			names = append(names, fnames...)
			callArgs = append(callArgs, fnames[:len(fnames)-1]...)
			continue
		}
		names = append(names, fnames...)
		callArgs = append(callArgs, fnames...)
	}
	return names, callArgs, variadic, nil
}

// results returns the non-error result type strings and whether the
// method's last result is error.
func (g *generator) results(m method) ([]string, bool, error) {
	ft := m.decl.Type
	if ft.Results == nil {
		return nil, false, nil
	}
	var types []string
	for _, f := range ft.Results.List {
		typ, err := g.typeString(f.Type, m.file)
		if err != nil {
			return nil, false, err
		}
		n := 1
		if len(f.Names) > 1 {
			n = len(f.Names)
		}
		for j := 0; j < n; j++ {
			types = append(types, typ)
		}
	}
	hasErr := len(types) > 0 && types[len(types)-1] == "error"
	if hasErr {
		types = types[:len(types)-1]
	}
	return types, hasErr, nil
}

// fieldNames returns the field's parameter names, inventing a<N> names for
// anonymous parameters.
func fieldNames(f *ast.Field, idx *int) []string {
	if len(f.Names) == 0 {
		name := fmt.Sprintf("a%d", *idx)
		*idx++
		return []string{name}
	}
	names := make([]string, len(f.Names))
	for i, n := range f.Names {
		name := n.Name
		if name == "_" {
			name = fmt.Sprintf("a%d", *idx)
		}
		names[i] = name
		*idx++
	}
	return names
}

// typeString renders a type expression and records any imports it needs.
func (g *generator) typeString(expr ast.Expr, file *ast.File) (string, error) {
	// Record selector-based imports (pkg.Type).
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		g.recordImport(id.Name, file)
		return true
	})
	var b bytes.Buffer
	if err := printer.Fprint(&b, g.fset, expr); err != nil {
		return "", fmt.Errorf("render type: %w", err)
	}
	return b.String(), nil
}

// recordImport maps a package identifier used in a signature back to its
// import path in the defining file.
func (g *generator) recordImport(ident string, file *ast.File) {
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		local := ""
		if imp.Name != nil {
			local = imp.Name.Name
		}
		effective := local
		if effective == "" {
			// Default name: last path segment.
			if i := strings.LastIndex(path, "/"); i >= 0 {
				effective = path[i+1:]
			} else {
				effective = path
			}
		}
		if effective == ident {
			g.imports[path] = local
			return
		}
	}
}
