// Command obicomp is OBIWAN's proxy compiler — the Go rendering of the
// paper's obicomp tool (§3.1): "run the obicomp tool ... to automatically
// generate the other interfaces and classes needed".
//
// Given a Go package, obicomp generates for each selected struct type T:
//
//   - the business interface IT (the paper's IA), listing T's exported
//     wire-friendly methods;
//   - a compile-time assertion that *T implements IT;
//   - TProxy, a typed proxy implementing IT over an *obiwan.Ref — method
//     calls forward through the reference, so they transparently raise and
//     resolve object faults (or go to the master over RMI, per the ref's
//     invocation mode);
//   - LookupT, a helper resolving a name-server binding straight to a
//     typed proxy;
//   - the obiwan.MustRegisterType registration.
//
// Types are selected either with -types or by marking the type's doc
// comment with "obiwan:replicable".
//
// Usage:
//
//	obicomp -dir ./examples/collabdoc -types Document,Paragraph
//	obicomp -dir ./model            # all types marked obiwan:replicable
//
// The output (default obiwan_gen.go in the package directory) is gofmt'd
// and self-contained.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "package directory to scan")
	typesFlag := flag.String("types", "", "comma-separated struct types (default: types marked obiwan:replicable)")
	prefix := flag.String("prefix", "", "wire-name prefix (default: package name)")
	out := flag.String("out", "obiwan_gen.go", "output file name (within -dir)")
	stdout := flag.Bool("stdout", false, "print to stdout instead of writing the file")
	flag.Parse()

	var selected []string
	if *typesFlag != "" {
		for _, t := range strings.Split(*typesFlag, ",") {
			if t = strings.TrimSpace(t); t != "" {
				selected = append(selected, t)
			}
		}
	}

	src, err := Generate(*dir, selected, *prefix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obicomp:", err)
		os.Exit(1)
	}
	if *stdout {
		fmt.Print(string(src))
		return
	}
	path := filepath.Join(*dir, *out)
	if err := os.WriteFile(path, src, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "obicomp:", err)
		os.Exit(1)
	}
	fmt.Printf("obicomp: wrote %s\n", path)
}
