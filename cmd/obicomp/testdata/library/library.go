// Package library is the obicomp test corpus: a small book-catalogue
// domain exercising every signature shape the generator supports.
package library

import (
	"errors"
	"time"

	"obiwan"
)

// Book is a catalogue entry.
//
// obiwan:replicable
type Book struct {
	Title   string
	Pages   int
	Tags    []string
	AddedAt int64
	Next    *obiwan.Ref
}

// TitleOf returns the book's title.
func (b *Book) TitleOf() string { return b.Title }

// Rename sets the title.
func (b *Book) Rename(title string) { b.Title = title }

// Describe returns several values.
func (b *Book) Describe() (string, int) { return b.Title, b.Pages }

// Tagged reports whether the book carries all the given tags.
func (b *Book) Tagged(tags ...string) bool {
	for _, want := range tags {
		found := false
		for _, t := range b.Tags {
			if t == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Checkout validates and returns a due time in Unix seconds.
func (b *Book) Checkout(days int) (int64, error) {
	if days <= 0 {
		return 0, errors.New("library: non-positive loan")
	}
	return b.AddedAt + int64(days)*int64(24*time.Hour/time.Second), nil
}

// Watch is not wire-friendly (channel): obicomp must skip it.
func (b *Book) Watch(ch chan string) { ch <- b.Title }

// internal is unexported: obicomp must ignore it.
func (b *Book) internal() {} //nolint:unused

// Shelf groups books; selected via -types rather than the marker.
type Shelf struct {
	Label string
	Books []*obiwan.Ref
}

// LabelOf returns the shelf label.
func (s *Shelf) LabelOf() string { return s.Label }

// Count returns how many books the shelf holds.
func (s *Shelf) Count() int { return len(s.Books) }
