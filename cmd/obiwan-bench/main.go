// Command obiwan-bench regenerates the tables and figures of the paper's
// evaluation (§4) on the simulated testbed, at full paper scale.
//
// Usage:
//
//	obiwan-bench -exp table1              # §4.1 LMI vs RMI micro numbers
//	obiwan-bench -exp fig4                # figure 4: RMI vs LMI totals
//	obiwan-bench -exp fig5                # figure 5: incremental, no clustering
//	obiwan-bench -exp fig6                # figure 6: clustered
//	obiwan-bench -exp fig5curve -step 10  # cumulative staircase of one config
//	obiwan-bench -exp fig5v6              # clustering delta at equal batch
//	obiwan-bench -exp ablation-mode       # incremental vs transitive closure
//	obiwan-bench -exp ablation-depth      # count- vs depth-bounded clusters
//	obiwan-bench -exp auto                # RMI/LMI/auto invocation policies
//	obiwan-bench -exp profile             # hot-object replication profiler report
//	obiwan-bench -exp failover            # master-group overhead + elect latency
//	obiwan-bench -exp fleet               # capacity curves via fleet federation
//	obiwan-bench -exp attribution         # critical-path phase shares ("where does p99 go")
//	obiwan-bench -exp all                 # everything
//
// Flags: -quick (scaled-down parameters), -csv (machine-readable output),
// -profile lan10|wan|wireless|loopback, -list (list length), -svg DIR
// (render figures), -flight FILE (write the profile run's flight dump),
// -json FILE (write every collected point as JSON — the checked-in
// baselines are `-exp failover -json BENCH_failover.json`,
// `-exp fleet -json BENCH_fleet.json`, and
// `-exp attribution -json BENCH_attribution.json`).
//
// Regression gate:
//
//	obiwan-bench -check BENCH_failover.json -tolerance 5
//
// reruns every experiment the baseline records (virtual-clock experiments
// only) and exits non-zero if any figure drifted more than the tolerance
// percentage in either direction, or if a baseline point disappeared.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"obiwan/internal/bench"
	"obiwan/internal/netsim"
	"obiwan/internal/plot"
	"obiwan/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig4, fig5, fig6, fig5curve, fig5v6, ablation-mode, ablation-depth, auto, failover, fleet, attribution, all")
	quick := flag.Bool("quick", false, "scaled-down parameters (fast smoke run)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	profile := flag.String("profile", "lan10", "link profile: lan10, wan, wireless, loopback")
	listLen := flag.Int("list", 0, "override list length (figures 5-6)")
	size := flag.Int("size", 64, "object size for fig5curve")
	step := flag.Int("step", 10, "replication step for fig5curve")
	svgDir := flag.String("svg", "", "also render each experiment as an SVG figure into this directory")
	flightFile := flag.String("flight", "", "write the profile experiment's flight-recorder dump to this file")
	jsonFile := flag.String("json", "", "write every collected point as JSON to this file")
	checkFile := flag.String("check", "", "regression gate: rerun the experiments in this baseline JSON and fail on drift")
	tolerance := flag.Float64("tolerance", 5, "allowed relative drift in percent for -check")
	flag.Parse()

	if *checkFile != "" {
		if err := runCheck(os.Stdout, *checkFile, *quick, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "obiwan-bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdout, *exp, *quick, *csv, *profile, *listLen, *size, *step, *svgDir, *flightFile, *jsonFile); err != nil {
		fmt.Fprintln(os.Stderr, "obiwan-bench:", err)
		os.Exit(1)
	}
}

// runCheck drives the regression gate: any drift beyond tolerance (either
// direction — unbaselined speedups hide the next slowdown) is an error.
func runCheck(w io.Writer, baselinePath string, quick bool, tolerance float64) error {
	baseline, err := bench.LoadBaseline(baselinePath)
	if err != nil {
		return err
	}
	cfg := bench.DefaultConfig()
	if quick {
		cfg = bench.QuickConfig()
	}
	fmt.Fprintf(w, "# obiwan-bench -check %s -tolerance %g (%d baseline points)\n",
		baselinePath, tolerance, len(baseline))
	regressions, err := bench.Check(baseline, cfg, tolerance, w)
	if err != nil {
		return err
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(w, "REGRESSION:", r)
		}
		return fmt.Errorf("%d of %d baseline points drifted beyond %g%%",
			len(regressions), len(baseline), tolerance)
	}
	fmt.Fprintf(w, "ok: all %d points within %g%%\n", len(baseline), tolerance)
	return nil
}

func run(w io.Writer, exp string, quick, csv bool, profile string, listLen, size, step int, svgDir, flightFile, jsonFile string) error {
	cfg := bench.DefaultConfig()
	if quick {
		cfg = bench.QuickConfig()
	}
	switch profile {
	case "lan10":
		cfg.Profile = netsim.LAN10
	case "wan":
		cfg.Profile = netsim.WAN
	case "wireless":
		cfg.Profile = netsim.Wireless
	case "loopback":
		cfg.Profile = netsim.Loopback
	default:
		return fmt.Errorf("unknown profile %q", profile)
	}
	if listLen > 0 {
		cfg.ListLen = listLen
	}

	type runner struct {
		name string
		desc string
		run  func() ([]bench.Point, error)
	}
	var hotSamples []plot.HotSample
	var flightDump *telemetry.FlightDump
	runners := []runner{
		{"table1", "§4.1 per-invocation cost: LMI vs RMI (RMI size-independent)",
			func() ([]bench.Point, error) { return bench.RunTable1(cfg) }},
		{"fig4", "figure 4: total cost vs invocation count, RMI and LMI per object size",
			func() ([]bench.Point, error) { return bench.RunFig4(cfg) }},
		{"fig5", "figure 5: incremental replication, per-object proxy pairs",
			func() ([]bench.Point, error) { return bench.RunFig5(cfg) }},
		{"fig6", "figure 6: incremental replication with clustering",
			func() ([]bench.Point, error) { return bench.RunFig6(cfg) }},
		{"fig5curve", fmt.Sprintf("cumulative staircase: size=%dB step=%d", size, step),
			func() ([]bench.Point, error) {
				sample := cfg.ListLen / 20
				if sample < 1 {
					sample = 1
				}
				return bench.RunFig5Curve(cfg, size, step, sample, false)
			}},
		{"fig5v6", "clustering delta at equal batch sizes",
			func() ([]bench.Point, error) { return bench.RunFig5v6(cfg) }},
		{"ablation-mode", "incremental vs transitive: first-use latency vs total",
			func() ([]bench.Point, error) { return bench.RunAblationMode(cfg) }},
		{"ablation-depth", "count- vs depth-bounded clusters on a tree",
			func() ([]bench.Point, error) { return bench.RunAblationDepth(cfg) }},
		{"auto", "invocation policies: remote vs local vs auto crossover",
			func() ([]bench.Point, error) { return bench.RunAutoCrossover(cfg, 100) }},
		{"prefetch", "footnote 3: background prefetch hiding fault latency (1ms think time/object)",
			func() ([]bench.Point, error) { return bench.RunPrefetch(cfg, time.Millisecond) }},
		{"profile", "per-object replication profiler: skewed refresh rounds, hot objects first",
			func() ([]bench.Point, error) {
				points, samples, dump, err := bench.RunHotProfile(cfg)
				hotSamples, flightDump = samples, dump
				return points, err
			}},
		{"failover", "3-site master group vs single master: steady-state overhead + elect latency (virtual clock)",
			func() ([]bench.Point, error) { return bench.RunFailover(cfg) }},
		{"fleet", "capacity curves: churn + flash-crowd swept over site counts, measured by the fleet collector (virtual clock, deterministic)",
			func() ([]bench.Point, error) { return bench.RunFleet(cfg) }},
		{"attribution", "critical-path phase shares: where churn + flash-crowd latency goes, per protocol phase (virtual clock, deterministic)",
			func() ([]bench.Point, error) { return bench.RunAttribution(cfg) }},
	}

	selected := runners[:0:0]
	for _, r := range runners {
		if exp == "all" && r.name == "fig5curve" {
			continue // parameterized; run explicitly
		}
		if exp == "all" || exp == r.name {
			selected = append(selected, r)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown experiment %q", exp)
	}

	fmt.Fprintf(w, "# obiwan-bench profile=%s list=%d quick=%v\n",
		cfg.Profile.Name, cfg.ListLen, quick)
	var all []bench.Point
	for _, r := range selected {
		fmt.Fprintf(w, "\n## %s — %s\n", r.name, r.desc)
		start := time.Now()
		points, err := r.run()
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		all = append(all, points...)
		if csv {
			bench.WriteCSV(w, points)
		} else {
			bench.WritePoints(w, points)
		}
		if svgDir != "" {
			path, err := renderSVG(svgDir, r.name, points)
			if err != nil {
				return fmt.Errorf("%s: render svg: %w", r.name, err)
			}
			if path != "" {
				fmt.Fprintf(w, "(figure: %s)\n", path)
			}
		}
		if r.name == "profile" {
			if svgDir != "" && len(hotSamples) > 0 {
				paths, err := renderHotCharts(svgDir, hotSamples)
				if err != nil {
					return fmt.Errorf("profile: render svg: %w", err)
				}
				for _, p := range paths {
					fmt.Fprintf(w, "(figure: %s)\n", p)
				}
			}
			if flightFile != "" && flightDump != nil {
				if err := writeFlight(flightFile, flightDump); err != nil {
					return fmt.Errorf("profile: flight dump: %w", err)
				}
				fmt.Fprintf(w, "(flight dump: %s)\n", flightFile)
			}
		}
		fmt.Fprintf(w, "(%d points in %v)\n", len(points), time.Since(start).Round(time.Millisecond))
	}
	if jsonFile != "" {
		blob, err := json.MarshalIndent(all, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonFile, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "(json: %s)\n", jsonFile)
	}
	if exp == "all" || exp == "table1" {
		fmt.Fprintln(w, "\n"+strings.TrimSpace(shapeNotes))
	}
	return nil
}

const shapeNotes = `
Shape checks against the paper (see EXPERIMENTS.md):
  table1: LMI per-call ≪ RMI per-call (paper: 2 µs vs 2.8 ms); RMI flat in size.
  fig4:   RMI total linear in invocations; LMI pays a size-dependent fixed cost
          (replica + put-back) then ≈flat; crossover earlier for small objects.
  fig5:   step=1 worst at scale (one RPC per object); larger steps amortize;
          one proxy pair per OBJECT regardless of step.
  fig6:   strictly cheaper than fig5 at equal step; curves compressed; one
          proxy pair per CLUSTER.`
