package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fastRun drives the CLI's run function at minimal scale (loopback link,
// tiny list), exercising every experiment selector end-to-end.
func fastRun(t *testing.T, exp string, csv bool) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(&buf, exp, true /*quick*/, csv, "loopback", 20, 64, 5, "", "", ""); err != nil {
		t.Fatalf("%s: %v", exp, err)
	}
	return buf.String()
}

func TestRunSelectors(t *testing.T) {
	for _, exp := range []string{
		"table1", "fig5curve", "fig5v6", "ablation-mode", "ablation-depth", "auto", "prefetch", "profile",
	} {
		t.Run(exp, func(t *testing.T) {
			out := fastRun(t, exp, false)
			if !strings.Contains(out, "## "+exp) {
				t.Fatalf("missing section header:\n%s", out)
			}
			if !strings.Contains(out, "points in") {
				t.Fatalf("missing point count:\n%s", out)
			}
		})
	}
}

func TestRunFig5Quick(t *testing.T) {
	out := fastRun(t, "fig5", false)
	if !strings.Contains(out, "64B step=1") {
		t.Fatalf("missing series:\n%s", out)
	}
}

func TestRunCSV(t *testing.T) {
	out := fastRun(t, "table1", true)
	if !strings.Contains(out, "experiment,series,size,step,x,total_ms") {
		t.Fatalf("missing csv header:\n%s", out)
	}
}

func TestRunRejectsUnknowns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig99", true, false, "loopback", 0, 64, 5, "", "", ""); err == nil {
		t.Fatal("unknown experiment must fail")
	}
	if err := run(&buf, "table1", true, false, "carrier-pigeon", 0, 64, 5, "", "", ""); err == nil {
		t.Fatal("unknown profile must fail")
	}
}

func TestRunRendersSVG(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(&buf, "fig5v6", true, false, "loopback", 12, 64, 5, dir, "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5v6.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "</svg>") {
		t.Fatal("svg incomplete")
	}
	if !strings.Contains(buf.String(), "figure:") {
		t.Fatal("figure path not reported")
	}
}

// TestRunProfileArtifacts: the profile experiment emits the two
// hot-object figures plus the flight-recorder dump as artifacts.
func TestRunProfileArtifacts(t *testing.T) {
	dir := t.TempDir()
	flight := filepath.Join(dir, "flight.txt")
	var buf bytes.Buffer
	if err := run(&buf, "profile", true, false, "loopback", 0, 64, 5, dir, flight, ""); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"hot-objects-demands.svg", "hot-objects-bytes.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "</svg>") {
			t.Fatalf("%s incomplete", name)
		}
	}
	dump, err := os.ReadFile(flight)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump), "repl.fault-resolved") {
		t.Fatalf("flight dump lacks protocol events:\n%s", dump)
	}
	out := buf.String()
	if !strings.Contains(out, "obj-0") || !strings.Contains(out, "flight dump:") {
		t.Fatalf("profile output:\n%s", out)
	}
}
