package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"obiwan/internal/bench"
	"obiwan/internal/plot"
	"obiwan/internal/telemetry"
)

// plottable lists the experiments with a meaningful x-axis; the others
// (single-point micro numbers, categorical ablations) stay tabular.
var plottable = map[string]bool{
	"fig4": true, "fig5": true, "fig6": true, "fig5curve": true, "fig5v6": true,
	"fleet": true,
}

// renderSVG writes the experiment's points as an SVG figure and returns
// the file path; experiments without a plottable axis return "" silently.
func renderSVG(dir, name string, points []bench.Point) (string, error) {
	if !plottable[name] {
		return "", nil
	}
	if len(points) == 0 {
		return "", fmt.Errorf("no points")
	}
	chart := chartFor(name, points)
	svg, err := plot.SVG(chart)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, sanitize(name)+".svg")
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// chartFor shapes the figure per experiment: figure 4 is the paper's
// log-log cost plot; figures 5-6 sweep the step size on a log x-axis; the
// cumulative curves and categorical experiments plot linearly.
func chartFor(name string, points []bench.Point) plot.Chart {
	c := plot.Chart{Title: titleFor(name), YLabel: "total time (ms)"}
	switch name {
	case "fig4":
		c.XLabel = "invocations"
		c.LogX, c.LogY = true, true
	case "fig5", "fig6", "fig5v6":
		c.XLabel = "replication step (objects per demand)"
		c.LogX, c.LogY = true, true
	case "fig5curve":
		c.XLabel = "invocations"
	case "fleet":
		c.XLabel = "sites"
		c.YLabel = "series value (ms / count / µs)"
		c.LogX = true
	default:
		c.XLabel = "x"
	}

	order := []string{}
	series := map[string]*plot.Series{}
	for _, p := range points {
		s, ok := series[p.Series]
		if !ok {
			s = &plot.Series{Label: p.Series}
			series[p.Series] = s
			order = append(order, p.Series)
		}
		x := p.X
		if x == 0 {
			x = float64(len(s.Points) + 1) // categorical experiments
		}
		y := p.TotalMS
		if p.Experiment == "fleet" && !strings.HasSuffix(p.Series, "/ops") {
			y = p.Value // capacity-curve series carry their figure in Value
		}
		s.Points = append(s.Points, plot.Point{X: x, Y: y})
	}
	for _, label := range order {
		c.Series = append(c.Series, *series[label])
	}
	return c
}

// renderHotCharts writes the profile experiment's two hot-object figures
// (cumulative demands and demand bytes per object over the refresh
// rounds) and returns their paths.
func renderHotCharts(dir string, samples []plot.HotSample) ([]string, error) {
	demands, bytes, err := plot.HotObjectCharts("Hot objects", samples)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, fig := range []struct {
		name  string
		chart plot.Chart
	}{
		{"hot-objects-demands", demands},
		{"hot-objects-bytes", bytes},
	} {
		svg, err := plot.SVG(fig.chart)
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, fig.name+".svg")
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// writeFlight stores the profile run's flight-recorder dump as a plain
// text artifact.
func writeFlight(path string, dump *telemetry.FlightDump) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, []byte(dump.Format()), 0o644)
}

func titleFor(name string) string {
	switch name {
	case "table1":
		return "Table 1: per-invocation cost, LMI vs RMI"
	case "fig4":
		return "Figure 4: RMI vs LMI total cost"
	case "fig5":
		return "Figure 5: incremental replication (per-object proxies)"
	case "fig6":
		return "Figure 6: incremental replication with clustering"
	case "fig5curve":
		return "Cumulative replication staircase"
	case "fig5v6":
		return "Clustering delta at equal batch size"
	case "fleet":
		return "Fleet capacity curves: staleness, p99, alerts vs site count"
	default:
		return name
	}
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '-'
		}
	}, strings.ToLower(name))
}
