package main

import (
	"encoding/json"

	"bytes"
	"obiwan/internal/admin"
	"strings"
	"testing"
	"time"

	"obiwan/internal/objmodel"
	"obiwan/internal/site"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// memo is the admin CLI's test object.
type memo struct {
	Body string
}

func (m *memo) Read() string { return m.Body }

func init() {
	objmodel.MustRegisterType("admincli_test.memo", (*memo)(nil))
}

// TestAdminCLIOverTCP stands a site up on real TCP and inspects it with
// the CLI's run function.
func TestAdminCLIOverTCP(t *testing.T) {
	net := transport.NewTCPNetwork()
	s, err := site.New("127.0.0.1:0", net, site.WithSiteID(9))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Register(&memo{Body: "hello"}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := run(&buf, string(s.Addr()), "ping", runOpts{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "is alive") {
		t.Fatalf("ping output: %q", buf.String())
	}

	buf.Reset()
	if _, err := run(&buf, string(s.Addr()), "report", runOpts{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"heap: 1 masters, 0 replicas (0 dirty)",
		"admincli_test.memo",
		"master",
		"proxies:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if _, err := run(&buf, string(s.Addr()), "objects", runOpts{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "rmi:") {
		t.Fatal("objects must omit the summary")
	}

	// metrics: the serve counter has ticked for the calls above. The
	// -timeout path must work too.
	buf.Reset()
	if _, err := run(&buf, string(s.Addr()), "metrics", runOpts{timeout: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rmi.calls.served") {
		t.Fatalf("metrics output missing serve counter:\n%s", buf.String())
	}

	// trace: the CLI's own calls carry no trace context, so the site has
	// no finished spans — the command must still succeed and say so.
	buf.Reset()
	if _, err := run(&buf, string(s.Addr()), "trace", runOpts{maxSpans: 10}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no finished spans") {
		t.Fatalf("trace output: %q", buf.String())
	}

	if _, err := run(&buf, string(s.Addr()), "bogus", runOpts{}); err == nil {
		t.Fatal("unknown command must error")
	}
}

// TestAdminCLITopAndFlight exercises the profiler and flight-recorder
// subcommands against a live site.
func TestAdminCLITopAndFlight(t *testing.T) {
	net := transport.NewTCPNetwork()
	s, err := site.New("127.0.0.1:0", net, site.WithSiteID(11))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// top before any replication: explicit empty-state message.
	var buf bytes.Buffer
	if _, err := run(&buf, string(s.Addr()), "top", runOpts{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no profiled objects") {
		t.Fatalf("top on idle site: %q", buf.String())
	}

	// Seed the profiler and flight recorder as the replication engine
	// would, then read both back through the CLI.
	prof := s.Telemetry().Profiler()
	prof.RecordFault(0xabc1, false, false, 3, 640, 2*time.Millisecond)
	prof.RecordInvoke(0xabc1, false)
	fl := s.Telemetry().Flight()
	fl.Record(telemetry.FlightEvent{Kind: "repl.fault-resolved", OID: 0xabc1, SpanID: 77})
	fl.Dump("test dump")

	buf.Reset()
	if _, err := run(&buf, string(s.Addr()), "top", runOpts{topK: 5}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "0xabc1") || !strings.Contains(out, "hot objects") {
		t.Fatalf("top output:\n%s", out)
	}

	buf.Reset()
	if _, err := run(&buf, string(s.Addr()), "flight", runOpts{}); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "test dump") || !strings.Contains(out, "repl.fault-resolved") {
		t.Fatalf("flight output:\n%s", out)
	}
}

// TestAdminCLIWatch streams two chunks and checks the cursor advances
// without re-delivering spans.
func TestAdminCLIWatch(t *testing.T) {
	net := transport.NewTCPNetwork()
	s, err := site.New("127.0.0.1:0", net, site.WithSiteID(12))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Finish two spans so the first chunk carries them.
	root := s.Telemetry().StartRoot("watchtest")
	root.End()
	child := s.Telemetry().StartRoot("watchtest2")
	child.End()

	var buf bytes.Buffer
	if _, err := run(&buf, string(s.Addr()), "watch", runOpts{interval: 10 * time.Millisecond, count: 2}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "watchtest") {
		t.Fatalf("watch missed the finished span:\n%s", out)
	}
	if strings.Count(out, "watchtest2") != 1 {
		t.Fatalf("watch delivered a span other than exactly once:\n%s", out)
	}
}

func TestAdminCLIUnreachable(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(&buf, "127.0.0.1:1", "ping", runOpts{}); err == nil {
		t.Fatal("unreachable site must error")
	}
}

// TestAdminCLISlowJSONAndExitCodes: the slow command renders tail
// exemplars as critical paths and signals findings through its exit code
// (0 clean, 3 findings); -json switches every payload to parseable JSON.
func TestAdminCLISlowJSONAndExitCodes(t *testing.T) {
	net := transport.NewTCPNetwork()
	s, err := site.New("127.0.0.1:0", net, site.WithSiteID(13))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Idle site: no slow traces, clean exit.
	var buf bytes.Buffer
	code, err := run(&buf, string(s.Addr()), "slow", runOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || !strings.Contains(buf.String(), "no slow traces") {
		t.Fatalf("idle slow: code=%d output=%q", code, buf.String())
	}

	// Record a traced demand with a phase annotation and a tail exemplar,
	// as the rmi client does.
	root := s.Telemetry().StartRoot("fault")
	root.Phase(telemetry.PhaseNet, 900*time.Microsecond)
	root.End()
	s.Telemetry().Metrics().Histogram("rmi.call.latency_ns").
		ObserveExemplar(int64(900*time.Microsecond), root.Context().TraceID)

	buf.Reset()
	code, err = run(&buf, string(s.Addr()), "slow", runOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if code != 3 {
		t.Fatalf("slow with findings: code=%d, want 3", code)
	}
	for _, want := range []string{"1 slow traces", "rmi.call.latency_ns = 900µs", "fault", "net=900µs"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("slow output missing %q:\n%s", want, buf.String())
		}
	}

	// -json: the same chunk as machine-readable JSON, same exit code.
	buf.Reset()
	code, err = run(&buf, string(s.Addr()), "slow", runOpts{jsonOut: true})
	if err != nil {
		t.Fatal(err)
	}
	if code != 3 {
		t.Fatalf("json slow: code=%d, want 3", code)
	}
	var chunk admin.SlowChunk
	if err := json.Unmarshal(buf.Bytes(), &chunk); err != nil {
		t.Fatalf("slow -json did not parse: %v\n%s", err, buf.String())
	}
	if len(chunk.Traces) != 1 || chunk.Traces[0].TraceID != root.Context().TraceID {
		t.Fatalf("json chunk: %+v", chunk)
	}

	// -json on metrics: a parseable snapshot.
	buf.Reset()
	if _, err := run(&buf, string(s.Addr()), "metrics", runOpts{jsonOut: true}); err != nil {
		t.Fatal(err)
	}
	var snap telemetry.MetricsSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("metrics -json did not parse: %v", err)
	}
	if snap.Site == "" || len(snap.Counters) == 0 {
		t.Fatalf("json snapshot empty: %+v", snap)
	}
}
