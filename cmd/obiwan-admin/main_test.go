package main

import (
	"bytes"
	"strings"
	"testing"

	"obiwan/internal/objmodel"
	"obiwan/internal/site"
	"obiwan/internal/transport"
)

// memo is the admin CLI's test object.
type memo struct {
	Body string
}

func (m *memo) Read() string { return m.Body }

func init() {
	objmodel.MustRegisterType("admincli_test.memo", (*memo)(nil))
}

// TestAdminCLIOverTCP stands a site up on real TCP and inspects it with
// the CLI's run function.
func TestAdminCLIOverTCP(t *testing.T) {
	net := transport.NewTCPNetwork()
	s, err := site.New("127.0.0.1:0", net, site.WithSiteID(9))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Register(&memo{Body: "hello"}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run(&buf, string(s.Addr()), "ping", 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "is alive") {
		t.Fatalf("ping output: %q", buf.String())
	}

	buf.Reset()
	if err := run(&buf, string(s.Addr()), "report", 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"heap: 1 masters, 0 replicas (0 dirty)",
		"admincli_test.memo",
		"master",
		"proxies:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := run(&buf, string(s.Addr()), "objects", 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "rmi:") {
		t.Fatal("objects must omit the summary")
	}

	// metrics: the serve counter has ticked for the calls above.
	buf.Reset()
	if err := run(&buf, string(s.Addr()), "metrics", 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rmi.calls.served") {
		t.Fatalf("metrics output missing serve counter:\n%s", buf.String())
	}

	// trace: the CLI's own calls carry no trace context, so the site has
	// no finished spans — the command must still succeed and say so.
	buf.Reset()
	if err := run(&buf, string(s.Addr()), "trace", 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no finished spans") {
		t.Fatalf("trace output: %q", buf.String())
	}

	if err := run(&buf, string(s.Addr()), "bogus", 0); err == nil {
		t.Fatal("unknown command must error")
	}
}

func TestAdminCLIUnreachable(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "127.0.0.1:1", "ping", 0); err == nil {
		t.Fatal("unreachable site must error")
	}
}
