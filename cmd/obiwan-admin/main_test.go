package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"obiwan/internal/objmodel"
	"obiwan/internal/site"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// memo is the admin CLI's test object.
type memo struct {
	Body string
}

func (m *memo) Read() string { return m.Body }

func init() {
	objmodel.MustRegisterType("admincli_test.memo", (*memo)(nil))
}

// TestAdminCLIOverTCP stands a site up on real TCP and inspects it with
// the CLI's run function.
func TestAdminCLIOverTCP(t *testing.T) {
	net := transport.NewTCPNetwork()
	s, err := site.New("127.0.0.1:0", net, site.WithSiteID(9))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Register(&memo{Body: "hello"}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run(&buf, string(s.Addr()), "ping", runOpts{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "is alive") {
		t.Fatalf("ping output: %q", buf.String())
	}

	buf.Reset()
	if err := run(&buf, string(s.Addr()), "report", runOpts{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"heap: 1 masters, 0 replicas (0 dirty)",
		"admincli_test.memo",
		"master",
		"proxies:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := run(&buf, string(s.Addr()), "objects", runOpts{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "rmi:") {
		t.Fatal("objects must omit the summary")
	}

	// metrics: the serve counter has ticked for the calls above. The
	// -timeout path must work too.
	buf.Reset()
	if err := run(&buf, string(s.Addr()), "metrics", runOpts{timeout: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rmi.calls.served") {
		t.Fatalf("metrics output missing serve counter:\n%s", buf.String())
	}

	// trace: the CLI's own calls carry no trace context, so the site has
	// no finished spans — the command must still succeed and say so.
	buf.Reset()
	if err := run(&buf, string(s.Addr()), "trace", runOpts{maxSpans: 10}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no finished spans") {
		t.Fatalf("trace output: %q", buf.String())
	}

	if err := run(&buf, string(s.Addr()), "bogus", runOpts{}); err == nil {
		t.Fatal("unknown command must error")
	}
}

// TestAdminCLITopAndFlight exercises the profiler and flight-recorder
// subcommands against a live site.
func TestAdminCLITopAndFlight(t *testing.T) {
	net := transport.NewTCPNetwork()
	s, err := site.New("127.0.0.1:0", net, site.WithSiteID(11))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// top before any replication: explicit empty-state message.
	var buf bytes.Buffer
	if err := run(&buf, string(s.Addr()), "top", runOpts{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no profiled objects") {
		t.Fatalf("top on idle site: %q", buf.String())
	}

	// Seed the profiler and flight recorder as the replication engine
	// would, then read both back through the CLI.
	prof := s.Telemetry().Profiler()
	prof.RecordFault(0xabc1, false, false, 3, 640, 2*time.Millisecond)
	prof.RecordInvoke(0xabc1, false)
	fl := s.Telemetry().Flight()
	fl.Record(telemetry.FlightEvent{Kind: "repl.fault-resolved", OID: 0xabc1, SpanID: 77})
	fl.Dump("test dump")

	buf.Reset()
	if err := run(&buf, string(s.Addr()), "top", runOpts{topK: 5}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "0xabc1") || !strings.Contains(out, "hot objects") {
		t.Fatalf("top output:\n%s", out)
	}

	buf.Reset()
	if err := run(&buf, string(s.Addr()), "flight", runOpts{}); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "test dump") || !strings.Contains(out, "repl.fault-resolved") {
		t.Fatalf("flight output:\n%s", out)
	}
}

// TestAdminCLIWatch streams two chunks and checks the cursor advances
// without re-delivering spans.
func TestAdminCLIWatch(t *testing.T) {
	net := transport.NewTCPNetwork()
	s, err := site.New("127.0.0.1:0", net, site.WithSiteID(12))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Finish two spans so the first chunk carries them.
	root := s.Telemetry().StartRoot("watchtest")
	root.End()
	child := s.Telemetry().StartRoot("watchtest2")
	child.End()

	var buf bytes.Buffer
	if err := run(&buf, string(s.Addr()), "watch", runOpts{interval: 10 * time.Millisecond, count: 2}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "watchtest") {
		t.Fatalf("watch missed the finished span:\n%s", out)
	}
	if strings.Count(out, "watchtest2") != 1 {
		t.Fatalf("watch delivered a span other than exactly once:\n%s", out)
	}
}

func TestAdminCLIUnreachable(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "127.0.0.1:1", "ping", runOpts{}); err == nil {
		t.Fatal("unreachable site must error")
	}
}
