package main

import (
	"bytes"
	"strings"
	"testing"

	"obiwan/internal/objmodel"
	"obiwan/internal/site"
	"obiwan/internal/transport"
)

// memo is the admin CLI's test object.
type memo struct {
	Body string
}

func (m *memo) Read() string { return m.Body }

func init() {
	objmodel.MustRegisterType("admincli_test.memo", (*memo)(nil))
}

// TestAdminCLIOverTCP stands a site up on real TCP and inspects it with
// the CLI's run function.
func TestAdminCLIOverTCP(t *testing.T) {
	net := transport.NewTCPNetwork()
	s, err := site.New("127.0.0.1:0", net, site.WithSiteID(9))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Register(&memo{Body: "hello"}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run(&buf, string(s.Addr()), true, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "is alive") {
		t.Fatalf("ping output: %q", buf.String())
	}

	buf.Reset()
	if err := run(&buf, string(s.Addr()), false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"heap: 1 masters, 0 replicas (0 dirty)",
		"admincli_test.memo",
		"master",
		"proxies:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := run(&buf, string(s.Addr()), false, true); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "rmi:") {
		t.Fatal("-objects must omit the summary")
	}
}

func TestAdminCLIUnreachable(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "127.0.0.1:1", true, false); err == nil {
		t.Fatal("unreachable site must error")
	}
}
