// Command obiwan-admin inspects a running OBIWAN site over TCP: heap
// contents (masters, replicas, dirty state), RMI traffic counters, and the
// proxy-lifecycle ledger.
//
// Usage:
//
//	obiwan-admin -site host:port            # full report
//	obiwan-admin -site host:port -ping      # liveness probe only
//	obiwan-admin -site host:port -objects   # per-object table only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"obiwan/internal/admin"
	"obiwan/internal/rmi"
	"obiwan/internal/site"
	"obiwan/internal/stats"
	"obiwan/internal/transport"
)

func main() {
	siteAddr := flag.String("site", "", "address of the site to inspect (host:port)")
	ping := flag.Bool("ping", false, "liveness probe only")
	objects := flag.Bool("objects", false, "print only the per-object table")
	flag.Parse()

	if *siteAddr == "" {
		fmt.Fprintln(os.Stderr, "obiwan-admin: -site is required")
		os.Exit(2)
	}
	if err := run(os.Stdout, *siteAddr, *ping, *objects); err != nil {
		fmt.Fprintln(os.Stderr, "obiwan-admin:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, siteAddr string, ping, objectsOnly bool) error {
	network := transport.NewTCPNetwork()
	rt, err := rmi.NewRuntime(network, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer rt.Close()

	client := admin.NewClient(rt, site.AdminRef(transport.Addr(siteAddr)))
	if ping {
		name, err := client.Ping()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "site %q is alive at %s\n", name, siteAddr)
		return nil
	}

	report, err := client.Report()
	if err != nil {
		return err
	}
	return render(w, report, objectsOnly)
}

func render(w io.Writer, r *admin.SiteReport, objectsOnly bool) error {
	if !objectsOnly {
		fmt.Fprintf(w, "site %q at %s\n", r.Name, r.Addr)
		fmt.Fprintf(w, "heap: %d masters, %d replicas (%d dirty)\n",
			r.Masters, r.Replicas, r.DirtyReplicas)
		fmt.Fprintf(w, "rmi: sent=%d served=%d faults=%d errors=%d bytes tx/rx=%d/%d\n",
			r.CallsSent, r.CallsServed, r.RemoteFaults, r.SendErrors,
			r.BytesSent, r.BytesReceived)
		fmt.Fprintf(w, "proxies: out created=%d reclaimed=%d live=%d heap-served=%d; in exported=%d reused=%d\n",
			r.ProxyOutsCreated, r.ProxyOutsReclaimed, r.ProxyOutsLive,
			r.FaultsServedFromHeap, r.ProxyInsExported, r.ProxyInsReused)
		fmt.Fprintln(w)
	}
	t := stats.NewTable("oid", "type", "role", "version", "dirty", "cluster", "provider")
	for _, o := range r.Objects {
		t.AddRow(o.OID, o.TypeName, o.Role, o.Version, o.Dirty, o.ClusterMember, o.Provider)
	}
	_, err := t.WriteTo(w)
	return err
}
