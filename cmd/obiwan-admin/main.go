// Command obiwan-admin inspects a running OBIWAN site over TCP: heap
// contents (masters, replicas, dirty state), RMI traffic counters, the
// proxy-lifecycle ledger, and the live telemetry surface (metrics
// registry, recent trace spans, per-object replication profiles, the
// flight recorder, and a streaming watch).
//
// Usage:
//
//	obiwan-admin -site host:port                    # full report
//	obiwan-admin -site host:port ping               # liveness probe only
//	obiwan-admin -site host:port objects            # per-object table only
//	obiwan-admin -site host:port metrics            # live metrics snapshot
//	obiwan-admin -site host:port -max 50 trace      # recent span trees
//	obiwan-admin -site host:port -top 10 top        # hottest objects
//	obiwan-admin -site host:port flight             # flight-recorder dump
//	obiwan-admin -site host:port -interval 2s watch # live telemetry stream
//	obiwan-admin -site host:port fleet top          # federated fleet view
//	obiwan-admin -site host:port fleet alerts       # SLO watchdog alerts
//
// The fleet subcommands address a site running a fleet collector; `fleet
// top` forces a fresh scrape of every peer before rendering, `fleet
// alerts` prints the watchdog's retained alert backlog.
//
// -timeout bounds each RMI the tool issues; watch additionally honors
// -interval (poll period) and -count (chunks to print before exiting,
// 0 = stream until interrupted).
//
// The legacy -ping and -objects flags remain as aliases for the
// corresponding subcommands.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"obiwan/internal/admin"
	"obiwan/internal/rmi"
	"obiwan/internal/site"
	"obiwan/internal/stats"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// runOpts carries the flag values into run.
type runOpts struct {
	maxSpans uint64        // trace/watch: span fetch cap (0 = server default)
	topK     uint64        // top: how many hot objects (0 = all tracked)
	timeout  time.Duration // per-RMI deadline (0 = runtime default)
	interval time.Duration // watch: poll period
	count    int           // watch: chunks before exit (0 = forever)
}

func main() {
	siteAddr := flag.String("site", "", "address of the site to inspect (host:port)")
	ping := flag.Bool("ping", false, "liveness probe only (alias for the ping subcommand)")
	objects := flag.Bool("objects", false, "print only the per-object table (alias for the objects subcommand)")
	maxSpans := flag.Uint64("max", 0, "trace/watch: fetch at most this many recent spans (0 = everything retained)")
	topK := flag.Uint64("top", 0, "top: show at most this many hot objects (0 = all tracked)")
	timeout := flag.Duration("timeout", 0, "per-call RMI deadline (0 = runtime default)")
	interval := flag.Duration("interval", time.Second, "watch: poll period")
	count := flag.Int("count", 0, "watch: exit after this many chunks (0 = stream forever)")
	flag.Parse()

	if *siteAddr == "" {
		fmt.Fprintln(os.Stderr, "obiwan-admin: -site is required")
		os.Exit(2)
	}
	cmd := "report"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	if cmd == "fleet" {
		verb := ""
		if flag.NArg() > 1 {
			verb = flag.Arg(1)
		}
		cmd = "fleet " + verb
	}
	if *ping {
		cmd = "ping"
	}
	if *objects {
		cmd = "objects"
	}
	o := runOpts{
		maxSpans: *maxSpans, topK: *topK,
		timeout: *timeout, interval: *interval, count: *count,
	}
	if err := run(os.Stdout, *siteAddr, cmd, o); err != nil {
		fmt.Fprintln(os.Stderr, "obiwan-admin:", err)
		os.Exit(1)
	}
}

// errWatchDone ends a -count bounded watch from inside the subscription.
var errWatchDone = errors.New("watch done")

func run(w io.Writer, siteAddr, cmd string, o runOpts) error {
	network := transport.NewTCPNetwork()
	rt, err := rmi.NewRuntime(network, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer rt.Close()

	client := admin.NewClient(rt, site.AdminRef(transport.Addr(siteAddr)))
	if o.timeout > 0 {
		client = client.WithTimeout(o.timeout)
	}
	switch cmd {
	case "ping":
		name, err := client.Ping()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "site %q is alive at %s\n", name, siteAddr)
		return nil
	case "metrics":
		snap, err := client.Metrics()
		if err != nil {
			return err
		}
		return renderMetrics(w, snap)
	case "trace":
		dump, err := client.Traces(o.maxSpans)
		if err != nil {
			return err
		}
		return renderTraces(w, dump)
	case "top":
		snap, err := client.Profile(o.topK)
		if err != nil {
			return err
		}
		return renderProfile(w, snap)
	case "flight":
		dump, err := client.Flight()
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, dump.Format())
		return err
	case "watch":
		return watch(w, client, o)
	case "fleet top":
		snap, err := client.Fleet(true)
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, snap.Format())
		return err
	case "fleet alerts":
		chunk, err := client.FleetAlerts()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "site %q watchdog:\n", chunk.Site)
		_, err = io.WriteString(w, telemetry.FormatAlerts(chunk.Alerts))
		return err
	case "report", "objects":
		report, err := client.Report()
		if err != nil {
			return err
		}
		return render(w, report, cmd == "objects")
	default:
		return fmt.Errorf("unknown command %q (want report, ping, objects, metrics, trace, top, flight, watch, fleet top, or fleet alerts)", cmd)
	}
}

// watch streams telemetry chunks, one block per poll. A transient RMI
// failure prints and the stream resumes at the same cursor, so no span is
// lost or duplicated across an outage.
func watch(w io.Writer, client *admin.Client, o runOpts) error {
	n := 0
	err := client.Subscribe(o.interval, nil, func(chunk *admin.WatchChunk, err error) error {
		n++
		if err != nil {
			fmt.Fprintf(w, "watch: %v (will retry)\n", err)
		} else {
			renderChunk(w, chunk)
		}
		if o.count > 0 && n >= o.count {
			return errWatchDone
		}
		return nil
	})
	if errors.Is(err, errWatchDone) {
		return nil
	}
	return err
}

// renderChunk prints one watch delivery: a summary line, then any spans
// finished since the previous chunk.
func renderChunk(w io.Writer, c *admin.WatchChunk) {
	fmt.Fprintf(w, "[%s] %s spans=%d cursor=%d",
		time.Unix(0, c.TakenAtNS).UTC().Format("15:04:05.000"), c.Site, len(c.Spans), c.NextCursor)
	if c.Missed > 0 {
		fmt.Fprintf(w, " missed=%d", c.Missed)
	}
	fmt.Fprintln(w)
	for _, s := range c.Spans {
		fmt.Fprintf(w, "  %s\n", s)
	}
}

// renderProfile prints the hot-object table, or says why it is empty.
func renderProfile(w io.Writer, snap *telemetry.ProfileSnapshot) error {
	if len(snap.Objects) == 0 {
		fmt.Fprintf(w, "site %q: no profiled objects (telemetry disabled or no replication yet)\n", snap.Site)
		return nil
	}
	_, err := io.WriteString(w, snap.Format())
	return err
}

func render(w io.Writer, r *admin.SiteReport, objectsOnly bool) error {
	if !objectsOnly {
		fmt.Fprintf(w, "site %q at %s\n", r.Name, r.Addr)
		fmt.Fprintf(w, "heap: %d masters, %d replicas (%d dirty)\n",
			r.Masters, r.Replicas, r.DirtyReplicas)
		fmt.Fprintf(w, "rmi: sent=%d served=%d faults=%d errors=%d bytes tx/rx=%d/%d\n",
			r.CallsSent, r.CallsServed, r.RemoteFaults, r.SendErrors,
			r.BytesSent, r.BytesReceived)
		fmt.Fprintf(w, "proxies: out created=%d reclaimed=%d live=%d heap-served=%d; in exported=%d reused=%d\n",
			r.ProxyOutsCreated, r.ProxyOutsReclaimed, r.ProxyOutsLive,
			r.FaultsServedFromHeap, r.ProxyInsExported, r.ProxyInsReused)
		fmt.Fprintln(w)
	}
	t := stats.NewTable("oid", "type", "role", "version", "dirty", "cluster", "provider")
	for _, o := range r.Objects {
		t.AddRow(o.OID, o.TypeName, o.Role, o.Version, o.Dirty, o.ClusterMember, o.Provider)
	}
	_, err := t.WriteTo(w)
	return err
}

// renderMetrics prints a metrics snapshot. An empty snapshot from a live
// site means telemetry is disabled there, so say so explicitly.
func renderMetrics(w io.Writer, snap *telemetry.MetricsSnapshot) error {
	if len(snap.Counters) == 0 && len(snap.Gauges) == 0 && len(snap.Histograms) == 0 {
		fmt.Fprintf(w, "site %q: no metrics (telemetry disabled or nothing recorded yet)\n", snap.Site)
		return nil
	}
	_, err := io.WriteString(w, snap.Format())
	return err
}

// renderTraces assembles the dumped spans into trees and prints each one.
func renderTraces(w io.Writer, dump *telemetry.TraceDump) error {
	if len(dump.Spans) == 0 {
		fmt.Fprintf(w, "site %q: no finished spans (telemetry disabled or nothing traced yet)\n", dump.Site)
		return nil
	}
	fmt.Fprintf(w, "site %q: %d finished spans\n\n", dump.Site, len(dump.Spans))
	for _, root := range telemetry.BuildTrees(dump.Spans) {
		if _, err := io.WriteString(w, telemetry.FormatTree(root)); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
