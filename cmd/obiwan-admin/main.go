// Command obiwan-admin inspects a running OBIWAN site over TCP: heap
// contents (masters, replicas, dirty state), RMI traffic counters, the
// proxy-lifecycle ledger, and the live telemetry surface (metrics
// registry, recent trace spans, per-object replication profiles, the
// flight recorder, and a streaming watch).
//
// Usage:
//
//	obiwan-admin -site host:port                    # full report
//	obiwan-admin -site host:port ping               # liveness probe only
//	obiwan-admin -site host:port objects            # per-object table only
//	obiwan-admin -site host:port metrics            # live metrics snapshot
//	obiwan-admin -site host:port -max 50 trace      # recent span trees
//	obiwan-admin -site host:port -top 10 top        # hottest objects
//	obiwan-admin -site host:port flight             # flight-recorder dump
//	obiwan-admin -site host:port -interval 2s watch # live telemetry stream
//	obiwan-admin -site host:port slow               # worst traced demands, annotated
//	obiwan-admin -site host:port fleet top          # federated fleet view
//	obiwan-admin -site host:port fleet alerts       # SLO watchdog alerts
//	obiwan-admin -site host:port fleet slow         # fleet-wide worst demands
//	obiwan-admin -site host:port fleet attribution  # "where does p99 go" profile
//
// The fleet subcommands address a site running a fleet collector; `fleet
// top` forces a fresh scrape of every peer before rendering, `fleet
// alerts` prints the watchdog's retained alert backlog, `fleet slow` and
// `fleet attribution` serve the collector's federated slow traces and
// critical-path phase profile.
//
// `slow` prints each tail exemplar as its phase-annotated critical path:
// which site and span the time went to, split into protocol phases
// (queue, net, serve, assemble, apply, fsync, elect.wait, ...).
//
// -json switches every data command to machine-readable JSON. `slow`,
// `fleet slow`, and `fleet alerts` exit with status 3 when they found
// something (slow traces or alerts), so scripts can gate on the exit
// code without parsing output.
//
// -timeout bounds each RMI the tool issues; watch additionally honors
// -interval (poll period) and -count (chunks to print before exiting,
// 0 = stream until interrupted).
//
// The legacy -ping and -objects flags remain as aliases for the
// corresponding subcommands.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"obiwan/internal/admin"
	"obiwan/internal/rmi"
	"obiwan/internal/site"
	"obiwan/internal/stats"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// runOpts carries the flag values into run.
type runOpts struct {
	maxSpans uint64        // trace/watch/slow: fetch cap (0 = server default)
	topK     uint64        // top: how many hot objects (0 = all tracked)
	timeout  time.Duration // per-RMI deadline (0 = runtime default)
	interval time.Duration // watch: poll period
	count    int           // watch: chunks before exit (0 = forever)
	jsonOut  bool          // render JSON instead of tables
}

// exit codes: 0 clean, 1 error, 2 usage, 3 findings (alerts/slow traces).
const exitFindings = 3

func main() {
	siteAddr := flag.String("site", "", "address of the site to inspect (host:port)")
	ping := flag.Bool("ping", false, "liveness probe only (alias for the ping subcommand)")
	objects := flag.Bool("objects", false, "print only the per-object table (alias for the objects subcommand)")
	maxSpans := flag.Uint64("max", 0, "trace/watch: fetch at most this many recent spans (0 = everything retained)")
	topK := flag.Uint64("top", 0, "top: show at most this many hot objects (0 = all tracked)")
	timeout := flag.Duration("timeout", 0, "per-call RMI deadline (0 = runtime default)")
	interval := flag.Duration("interval", time.Second, "watch: poll period")
	count := flag.Int("count", 0, "watch: exit after this many chunks (0 = stream forever)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	flag.Parse()

	if *siteAddr == "" {
		fmt.Fprintln(os.Stderr, "obiwan-admin: -site is required")
		os.Exit(2)
	}
	cmd := "report"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	if cmd == "fleet" {
		verb := ""
		if flag.NArg() > 1 {
			verb = flag.Arg(1)
		}
		cmd = "fleet " + verb
	}
	if *ping {
		cmd = "ping"
	}
	if *objects {
		cmd = "objects"
	}
	o := runOpts{
		maxSpans: *maxSpans, topK: *topK,
		timeout: *timeout, interval: *interval, count: *count,
		jsonOut: *jsonOut,
	}
	code, err := run(os.Stdout, *siteAddr, cmd, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obiwan-admin:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// errWatchDone ends a -count bounded watch from inside the subscription.
var errWatchDone = errors.New("watch done")

func run(w io.Writer, siteAddr, cmd string, o runOpts) (int, error) {
	network := transport.NewTCPNetwork()
	rt, err := rmi.NewRuntime(network, "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer rt.Close()

	client := admin.NewClient(rt, site.AdminRef(transport.Addr(siteAddr)))
	if o.timeout > 0 {
		client = client.WithTimeout(o.timeout)
	}
	switch cmd {
	case "ping":
		name, err := client.Ping()
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(w, "site %q is alive at %s\n", name, siteAddr)
		return 0, nil
	case "metrics":
		snap, err := client.Metrics()
		if err != nil {
			return 0, err
		}
		if o.jsonOut {
			return 0, renderJSON(w, snap)
		}
		return 0, renderMetrics(w, snap)
	case "trace":
		dump, err := client.Traces(o.maxSpans)
		if err != nil {
			return 0, err
		}
		if o.jsonOut {
			return 0, renderJSON(w, dump)
		}
		return 0, renderTraces(w, dump)
	case "top":
		snap, err := client.Profile(o.topK)
		if err != nil {
			return 0, err
		}
		if o.jsonOut {
			return 0, renderJSON(w, snap)
		}
		return 0, renderProfile(w, snap)
	case "flight":
		dump, err := client.Flight()
		if err != nil {
			return 0, err
		}
		if o.jsonOut {
			return 0, renderJSON(w, dump)
		}
		_, err = io.WriteString(w, dump.Format())
		return 0, err
	case "watch":
		return 0, watch(w, client, o)
	case "slow":
		chunk, err := client.Slow(o.maxSpans)
		if err != nil {
			return 0, err
		}
		return renderSlow(w, chunk, o.jsonOut)
	case "fleet top":
		snap, err := client.Fleet(true)
		if err != nil {
			return 0, err
		}
		if o.jsonOut {
			return 0, renderJSON(w, snap)
		}
		_, err = io.WriteString(w, snap.Format())
		return 0, err
	case "fleet alerts":
		chunk, err := client.FleetAlerts()
		if err != nil {
			return 0, err
		}
		if o.jsonOut {
			if err := renderJSON(w, chunk); err != nil {
				return 0, err
			}
		} else {
			fmt.Fprintf(w, "site %q watchdog:\n", chunk.Site)
			if _, err := io.WriteString(w, telemetry.FormatAlerts(chunk.Alerts, chunk.Dropped)); err != nil {
				return 0, err
			}
		}
		if len(chunk.Alerts) > 0 {
			return exitFindings, nil
		}
		return 0, nil
	case "fleet slow":
		chunk, err := client.FleetSlow(o.maxSpans)
		if err != nil {
			return 0, err
		}
		return renderSlow(w, chunk, o.jsonOut)
	case "fleet attribution":
		prof, err := client.FleetAttribution()
		if err != nil {
			return 0, err
		}
		if o.jsonOut {
			return 0, renderJSON(w, prof)
		}
		if prof.Paths == 0 {
			fmt.Fprintln(w, "no complete traces scraped yet (telemetry disabled or no traffic)")
			return 0, nil
		}
		_, err = io.WriteString(w, prof.Format())
		return 0, err
	case "report", "objects":
		report, err := client.Report()
		if err != nil {
			return 0, err
		}
		if o.jsonOut {
			return 0, renderJSON(w, report)
		}
		return 0, render(w, report, cmd == "objects")
	default:
		return 0, fmt.Errorf("unknown command %q (want report, ping, objects, metrics, trace, top, flight, watch, slow, fleet top, fleet alerts, fleet slow, or fleet attribution)", cmd)
	}
}

// renderJSON emits v as indented JSON — the -json output mode.
func renderJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// renderSlow prints a slow-trace chunk — each tail exemplar as its
// phase-annotated critical path — and signals findings via the exit code.
func renderSlow(w io.Writer, chunk *admin.SlowChunk, jsonOut bool) (int, error) {
	if jsonOut {
		if err := renderJSON(w, chunk); err != nil {
			return 0, err
		}
	} else if len(chunk.Traces) == 0 {
		fmt.Fprintf(w, "site %q: no slow traces (telemetry disabled or nothing sampled yet)\n", chunk.Site)
	} else {
		fmt.Fprintf(w, "site %q: %d slow traces\n\n", chunk.Site, len(chunk.Traces))
		for _, st := range chunk.Traces {
			if _, err := io.WriteString(w, st.Format()); err != nil {
				return 0, err
			}
			fmt.Fprintln(w)
		}
	}
	if len(chunk.Traces) > 0 {
		return exitFindings, nil
	}
	return 0, nil
}

// watch streams telemetry chunks, one block per poll. A transient RMI
// failure prints and the stream resumes at the same cursor, so no span is
// lost or duplicated across an outage.
func watch(w io.Writer, client *admin.Client, o runOpts) error {
	n := 0
	err := client.Subscribe(o.interval, nil, func(chunk *admin.WatchChunk, err error) error {
		n++
		if err != nil {
			fmt.Fprintf(w, "watch: %v (will retry)\n", err)
		} else {
			renderChunk(w, chunk)
		}
		if o.count > 0 && n >= o.count {
			return errWatchDone
		}
		return nil
	})
	if errors.Is(err, errWatchDone) {
		return nil
	}
	return err
}

// renderChunk prints one watch delivery: a summary line, then any spans
// finished since the previous chunk.
func renderChunk(w io.Writer, c *admin.WatchChunk) {
	fmt.Fprintf(w, "[%s] %s spans=%d cursor=%d",
		time.Unix(0, c.TakenAtNS).UTC().Format("15:04:05.000"), c.Site, len(c.Spans), c.NextCursor)
	if c.Missed > 0 {
		fmt.Fprintf(w, " missed=%d", c.Missed)
	}
	fmt.Fprintln(w)
	for _, s := range c.Spans {
		fmt.Fprintf(w, "  %s\n", s)
	}
}

// renderProfile prints the hot-object table, or says why it is empty.
func renderProfile(w io.Writer, snap *telemetry.ProfileSnapshot) error {
	if len(snap.Objects) == 0 {
		fmt.Fprintf(w, "site %q: no profiled objects (telemetry disabled or no replication yet)\n", snap.Site)
		return nil
	}
	_, err := io.WriteString(w, snap.Format())
	return err
}

func render(w io.Writer, r *admin.SiteReport, objectsOnly bool) error {
	if !objectsOnly {
		fmt.Fprintf(w, "site %q at %s\n", r.Name, r.Addr)
		fmt.Fprintf(w, "heap: %d masters, %d replicas (%d dirty)\n",
			r.Masters, r.Replicas, r.DirtyReplicas)
		fmt.Fprintf(w, "rmi: sent=%d served=%d faults=%d errors=%d bytes tx/rx=%d/%d\n",
			r.CallsSent, r.CallsServed, r.RemoteFaults, r.SendErrors,
			r.BytesSent, r.BytesReceived)
		fmt.Fprintf(w, "proxies: out created=%d reclaimed=%d live=%d heap-served=%d; in exported=%d reused=%d\n",
			r.ProxyOutsCreated, r.ProxyOutsReclaimed, r.ProxyOutsLive,
			r.FaultsServedFromHeap, r.ProxyInsExported, r.ProxyInsReused)
		fmt.Fprintln(w)
	}
	t := stats.NewTable("oid", "type", "role", "version", "dirty", "cluster", "provider")
	for _, o := range r.Objects {
		t.AddRow(o.OID, o.TypeName, o.Role, o.Version, o.Dirty, o.ClusterMember, o.Provider)
	}
	_, err := t.WriteTo(w)
	return err
}

// renderMetrics prints a metrics snapshot. An empty snapshot from a live
// site means telemetry is disabled there, so say so explicitly.
func renderMetrics(w io.Writer, snap *telemetry.MetricsSnapshot) error {
	if len(snap.Counters) == 0 && len(snap.Gauges) == 0 && len(snap.Histograms) == 0 {
		fmt.Fprintf(w, "site %q: no metrics (telemetry disabled or nothing recorded yet)\n", snap.Site)
		return nil
	}
	_, err := io.WriteString(w, snap.Format())
	return err
}

// renderTraces assembles the dumped spans into trees and prints each one.
func renderTraces(w io.Writer, dump *telemetry.TraceDump) error {
	if len(dump.Spans) == 0 {
		fmt.Fprintf(w, "site %q: no finished spans (telemetry disabled or nothing traced yet)\n", dump.Site)
		return nil
	}
	fmt.Fprintf(w, "site %q: %d finished spans\n\n", dump.Site, len(dump.Spans))
	for _, root := range telemetry.BuildTrees(dump.Spans) {
		if _, err := io.WriteString(w, telemetry.FormatTree(root)); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
