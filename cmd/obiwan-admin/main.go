// Command obiwan-admin inspects a running OBIWAN site over TCP: heap
// contents (masters, replicas, dirty state), RMI traffic counters, the
// proxy-lifecycle ledger, and the live telemetry surface (metrics
// registry and recent trace spans).
//
// Usage:
//
//	obiwan-admin -site host:port                # full report
//	obiwan-admin -site host:port ping           # liveness probe only
//	obiwan-admin -site host:port objects        # per-object table only
//	obiwan-admin -site host:port metrics        # live metrics snapshot
//	obiwan-admin -site host:port -max 50 trace  # recent span trees
//
// The legacy -ping and -objects flags remain as aliases for the
// corresponding subcommands.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"obiwan/internal/admin"
	"obiwan/internal/rmi"
	"obiwan/internal/site"
	"obiwan/internal/stats"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

func main() {
	siteAddr := flag.String("site", "", "address of the site to inspect (host:port)")
	ping := flag.Bool("ping", false, "liveness probe only (alias for the ping subcommand)")
	objects := flag.Bool("objects", false, "print only the per-object table (alias for the objects subcommand)")
	maxSpans := flag.Uint64("max", 0, "trace: fetch at most this many recent spans (0 = everything retained)")
	flag.Parse()

	if *siteAddr == "" {
		fmt.Fprintln(os.Stderr, "obiwan-admin: -site is required")
		os.Exit(2)
	}
	cmd := "report"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	if *ping {
		cmd = "ping"
	}
	if *objects {
		cmd = "objects"
	}
	if err := run(os.Stdout, *siteAddr, cmd, *maxSpans); err != nil {
		fmt.Fprintln(os.Stderr, "obiwan-admin:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, siteAddr, cmd string, maxSpans uint64) error {
	network := transport.NewTCPNetwork()
	rt, err := rmi.NewRuntime(network, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer rt.Close()

	client := admin.NewClient(rt, site.AdminRef(transport.Addr(siteAddr)))
	switch cmd {
	case "ping":
		name, err := client.Ping()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "site %q is alive at %s\n", name, siteAddr)
		return nil
	case "metrics":
		snap, err := client.Metrics()
		if err != nil {
			return err
		}
		return renderMetrics(w, snap)
	case "trace":
		dump, err := client.Traces(maxSpans)
		if err != nil {
			return err
		}
		return renderTraces(w, dump)
	case "report", "objects":
		report, err := client.Report()
		if err != nil {
			return err
		}
		return render(w, report, cmd == "objects")
	default:
		return fmt.Errorf("unknown command %q (want report, ping, objects, metrics, or trace)", cmd)
	}
}

func render(w io.Writer, r *admin.SiteReport, objectsOnly bool) error {
	if !objectsOnly {
		fmt.Fprintf(w, "site %q at %s\n", r.Name, r.Addr)
		fmt.Fprintf(w, "heap: %d masters, %d replicas (%d dirty)\n",
			r.Masters, r.Replicas, r.DirtyReplicas)
		fmt.Fprintf(w, "rmi: sent=%d served=%d faults=%d errors=%d bytes tx/rx=%d/%d\n",
			r.CallsSent, r.CallsServed, r.RemoteFaults, r.SendErrors,
			r.BytesSent, r.BytesReceived)
		fmt.Fprintf(w, "proxies: out created=%d reclaimed=%d live=%d heap-served=%d; in exported=%d reused=%d\n",
			r.ProxyOutsCreated, r.ProxyOutsReclaimed, r.ProxyOutsLive,
			r.FaultsServedFromHeap, r.ProxyInsExported, r.ProxyInsReused)
		fmt.Fprintln(w)
	}
	t := stats.NewTable("oid", "type", "role", "version", "dirty", "cluster", "provider")
	for _, o := range r.Objects {
		t.AddRow(o.OID, o.TypeName, o.Role, o.Version, o.Dirty, o.ClusterMember, o.Provider)
	}
	_, err := t.WriteTo(w)
	return err
}

// renderMetrics prints a metrics snapshot. An empty snapshot from a live
// site means telemetry is disabled there, so say so explicitly.
func renderMetrics(w io.Writer, snap *telemetry.MetricsSnapshot) error {
	if len(snap.Counters) == 0 && len(snap.Gauges) == 0 && len(snap.Histograms) == 0 {
		fmt.Fprintf(w, "site %q: no metrics (telemetry disabled or nothing recorded yet)\n", snap.Site)
		return nil
	}
	_, err := io.WriteString(w, snap.Format())
	return err
}

// renderTraces assembles the dumped spans into trees and prints each one.
func renderTraces(w io.Writer, dump *telemetry.TraceDump) error {
	if len(dump.Spans) == 0 {
		fmt.Fprintf(w, "site %q: no finished spans (telemetry disabled or nothing traced yet)\n", dump.Site)
		return nil
	}
	fmt.Fprintf(w, "site %q: %d finished spans\n\n", dump.Site, len(dump.Spans))
	for _, root := range telemetry.BuildTrees(dump.Spans) {
		if _, err := io.WriteString(w, telemetry.FormatTree(root)); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
