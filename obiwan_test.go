package obiwan

import (
	"errors"
	"testing"
)

// memo is the facade test type.
type memo struct {
	Body string
	Next *Ref
}

func (m *memo) Read() string { return m.Body }

func (m *memo) Write(s string) { m.Body = s }

func init() {
	MustRegisterType("obiwan_test.memo", (*memo)(nil))
}

// newDeployment builds name server + two sites over a loopback simnet.
func newDeployment(t *testing.T) (*MemNetwork, *Site, *Site) {
	t.Helper()
	network := NewMemNetwork(Loopback)
	nsrt, err := NewRuntime(network, "ns")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nsrt.Close() })
	if _, _, err := ServeNameServer(nsrt); err != nil {
		t.Fatal(err)
	}
	server, err := NewSite("server", network, WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	mobile, err := NewSite("mobile", network, WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mobile.Close() })
	return network, server, mobile
}

func TestQuickstartFlow(t *testing.T) {
	_, server, mobile := newDeployment(t)

	head := &memo{Body: "hello"}
	tail := &memo{Body: "world"}
	next, err := server.NewRef(tail)
	if err != nil {
		t.Fatal(err)
	}
	head.Next = next
	if err := server.Bind("memos/head", head); err != nil {
		t.Fatal(err)
	}

	ref, err := mobile.Lookup("memos/head")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ref.Invoke("Read")
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "hello" {
		t.Fatalf("read: %#v", out[0])
	}
	m, err := Deref[*memo](ref)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Deref[*memo](m.Next)
	if err != nil {
		t.Fatal(err)
	}
	if w.Body != "world" {
		t.Fatalf("tail: %q", w.Body)
	}
}

func TestFacadeModesAndSpecs(t *testing.T) {
	_, server, mobile := newDeployment(t)
	head := &memo{Body: "x"}
	if err := server.Bind("m", head); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.LookupSpec("m", GetSpec{Mode: Transitive})
	if err != nil {
		t.Fatal(err)
	}
	ref.SetMode(ModeRemote)
	if _, err := ref.Invoke("Read"); err != nil {
		t.Fatal(err)
	}
	if ref.IsResolved() {
		t.Fatal("remote mode must not replicate")
	}
	ref.SetMode(ModeLocal)
	if _, err := ref.Invoke("Read"); err != nil {
		t.Fatal(err)
	}
	if !ref.IsResolved() {
		t.Fatal("local mode must replicate")
	}
}

func TestFacadeConflictPolicy(t *testing.T) {
	network := NewMemNetwork(Loopback)
	nsrt, err := NewRuntime(network, "ns")
	if err != nil {
		t.Fatal(err)
	}
	defer nsrt.Close()
	if _, _, err := ServeNameServer(nsrt); err != nil {
		t.Fatal(err)
	}
	server, err := NewSite("server", network,
		WithNameServer("ns"), WithPolicy(FirstWriterWins{}))
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	mobile, err := NewSite("mobile", network, WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	defer mobile.Close()

	master := &memo{Body: "v1"}
	if err := server.Bind("m", master); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("m")
	if err != nil {
		t.Fatal(err)
	}
	replica, err := Deref[*memo](ref)
	if err != nil {
		t.Fatal(err)
	}
	// The master moves ahead; the stale put must be rejected.
	master.Write("v2")
	if err := server.MarkUpdated(master); err != nil {
		t.Fatal(err)
	}
	replica.Write("mine")
	err = mobile.Put(replica)
	var re *RemoteError
	if !errors.As(err, &re) || !re.IsApp() {
		t.Fatalf("stale put: %v", err)
	}
}

func TestFacadeTxn(t *testing.T) {
	_, server, mobile := newDeployment(t)
	master := &memo{Body: "v1"}
	if err := server.Bind("m", master); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("m")
	if err != nil {
		t.Fatal(err)
	}
	replica, err := Deref[*memo](ref)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewTxnManager(mobile)
	tx := mgr.Begin()
	if err := tx.Write(replica); err != nil {
		t.Fatal(err)
	}
	replica.Write("committed")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if master.Body != "committed" {
		t.Fatalf("master: %q", master.Body)
	}
}

func TestFacadeRegisterTypeErrors(t *testing.T) {
	if err := RegisterType("facade.bad", 42); err == nil {
		t.Fatal("non-struct must be rejected")
	}
	if err := RegisterType("obiwan_test.memo", (*memo)(nil)); err != nil {
		t.Fatalf("idempotent: %v", err)
	}
}

func TestFacadeDissemination(t *testing.T) {
	_, server, mobile := newDeployment(t)
	master := &memo{Body: "v1"}
	if err := server.Bind("m", master); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("m")
	if err != nil {
		t.Fatal(err)
	}
	replica, err := Deref[*memo](ref)
	if err != nil {
		t.Fatal(err)
	}

	// Manual wiring through the facade constructors (the site-level
	// EnableDissemination path is covered in internal/site).
	applier := NewApplier(mobile)
	pub := NewPublisher(server, func(site string, u *Update) error {
		if site != "mobile" {
			t.Fatalf("unexpected subscriber %q", site)
		}
		return applier.Apply(u)
	})
	server.Engine().SetPolicy(pub)
	pub.Subscribe("mobile")

	master.Write("v2")
	if err := server.MarkUpdated(master); err != nil {
		t.Fatal(err)
	}
	if replica.Body != "v2" {
		t.Fatalf("pushed replica: %q", replica.Body)
	}
}
