package obiwan

// Benchmarks regenerating the paper's evaluation (§4) under testing.B.
// Each benchmark corresponds to one table or figure; the full paper-scale
// sweeps (1000-object lists, all sizes and steps) are produced by
// cmd/obiwan-bench — these testing.B variants run the same code paths at
// reduced scale so `go test -bench=.` finishes in minutes on the
// calibrated LAN profile.
//
// Reported custom metrics: ms/walk (wall time per full experiment unit),
// rmi/op (remote calls), proxypairs (proxy-ins exported at the master).

import (
	"fmt"
	"testing"

	"obiwan/internal/bench"
	"obiwan/internal/netsim"
	"obiwan/internal/replication"
)

// benchCfg is the reduced-scale configuration used by all testing.B runs.
func benchCfg() bench.Config {
	cfg := bench.QuickConfig()
	cfg.Profile = netsim.LAN10
	return cfg
}

// BenchmarkTable1_LMI measures the per-invocation cost of a local method
// invocation on a replica (paper: ≈2 µs on a Pentium II JVM).
func BenchmarkTable1_LMI(b *testing.B) {
	network := NewMemNetwork(LAN10)
	server, err := NewSite("s2", network)
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	client, err := NewSite("s1", network)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	obj := &benchDoc{Payload: make([]byte, 64)}
	d, err := server.Export(obj)
	if err != nil {
		b.Fatal(err)
	}
	ref := client.Engine().RefFromDescriptor(d, DefaultSpec)
	if _, err := ref.Resolve(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Invoke("Touch"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_RMI measures the per-invocation cost of a remote method
// invocation on the calibrated 10 Mb/s LAN (paper: ≈2.8 ms).
func BenchmarkTable1_RMI(b *testing.B) {
	network := NewMemNetwork(LAN10)
	server, err := NewSite("s2", network)
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	client, err := NewSite("s1", network)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	obj := &benchDoc{Payload: make([]byte, 64)}
	d, err := server.Export(obj)
	if err != nil {
		b.Fatal(err)
	}
	ref := client.Engine().RefFromDescriptor(d, DefaultSpec)
	ref.SetMode(ModeRemote)
	if _, err := ref.Invoke("Touch"); err != nil { // connection warm-up
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Invoke("Touch"); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDoc is the root-level benchmark object.
type benchDoc struct {
	Payload []byte
}

func (d *benchDoc) Touch() int { return len(d.Payload) }

func init() {
	MustRegisterType("obiwan.bench.doc", (*benchDoc)(nil))
}

// BenchmarkFig4_RMI regenerates the figure-4 RMI series: total cost of n
// invocations, independent of object size.
func BenchmarkFig4_RMI(b *testing.B) {
	cfg := benchCfg()
	for _, n := range cfg.Invocations {
		b.Run(fmt.Sprintf("inv=%d", n), func(b *testing.B) {
			cfgN := cfg
			cfgN.Invocations = []int{n}
			cfgN.Fig4Sizes = nil // RMI series only
			for i := 0; i < b.N; i++ {
				points, err := bench.RunFig4(cfgN)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(points[0].TotalMS, "ms/total")
			}
		})
	}
}

// BenchmarkFig4_LMI regenerates the figure-4 LMI series: replica creation
// + n local invocations + put-back, per object size.
func BenchmarkFig4_LMI(b *testing.B) {
	cfg := benchCfg()
	for _, size := range cfg.Fig4Sizes {
		for _, n := range cfg.Invocations {
			b.Run(fmt.Sprintf("size=%d/inv=%d", size, n), func(b *testing.B) {
				cfgN := cfg
				cfgN.Fig4Sizes = []int{size}
				cfgN.Invocations = []int{n}
				for i := 0; i < b.N; i++ {
					points, err := bench.RunFig4(cfgN)
					if err != nil {
						b.Fatal(err)
					}
					// points[0] is the RMI baseline, points[1] the LMI run.
					b.ReportMetric(points[len(points)-1].TotalMS, "ms/total")
				}
			})
		}
	}
}

// BenchmarkFig5_Incremental regenerates figure 5: walking the list with
// per-object proxy pairs, one sub-benchmark per (size, step).
func BenchmarkFig5_Incremental(b *testing.B) {
	benchmarkListWalk(b, false)
}

// BenchmarkFig6_Clustered regenerates figure 6: the same walk with one
// proxy pair per cluster.
func BenchmarkFig6_Clustered(b *testing.B) {
	benchmarkListWalk(b, true)
}

func benchmarkListWalk(b *testing.B, clustered bool) {
	cfg := benchCfg()
	runner := bench.RunFig5
	if clustered {
		runner = bench.RunFig6
	}
	for _, size := range cfg.Sizes {
		for _, step := range cfg.Steps {
			b.Run(fmt.Sprintf("size=%d/step=%d", size, step), func(b *testing.B) {
				cfgN := cfg
				cfgN.Sizes = []int{size}
				cfgN.Steps = []int{step}
				for i := 0; i < b.N; i++ {
					points, err := runner(cfgN)
					if err != nil {
						b.Fatal(err)
					}
					p := points[0]
					b.ReportMetric(p.TotalMS, "ms/walk")
					b.ReportMetric(float64(p.RMICalls), "rmi/walk")
					b.ReportMetric(float64(p.ProxyPairs), "proxypairs")
				}
			})
		}
	}
}

// BenchmarkAblationMode regenerates the incremental-vs-transitive ablation
// (latency to first use vs total walk).
func BenchmarkAblationMode(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		points, err := bench.RunAblationMode(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Series == "transitive (first use)" {
				b.ReportMetric(p.TotalMS, "ms/transitive-first-use")
			}
			if p.Series == "incremental batch=1 (first use)" {
				b.ReportMetric(p.TotalMS, "ms/incremental-first-use")
			}
		}
	}
}

// BenchmarkAblationDepth regenerates the count- vs depth-bounded cluster
// ablation on the tree workload.
func BenchmarkAblationDepth(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationDepth(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAutoCrossover measures the three invocation policies (remote /
// local / auto) over a fixed invocation budget.
func BenchmarkAutoCrossover(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		points, err := bench.RunAutoCrossover(cfg, 20)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.TotalMS, "ms/"+p.Series)
		}
	}
}

// BenchmarkReplicationPayload measures raw payload assembly +
// materialization throughput without network delays (loopback), isolating
// the serialization substrate.
func BenchmarkReplicationPayload(b *testing.B) {
	for _, size := range []int{64, 1024, 16 * 1024} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			network := NewMemNetwork(Loopback)
			server, err := NewSite("s2", network)
			if err != nil {
				b.Fatal(err)
			}
			defer server.Close()
			client, err := NewSite("s1", network)
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			// A fresh 50-object chain per iteration would distort timing;
			// instead replicate the same chain transitively into fresh
			// client sites.
			docs := make([]*benchDoc2, 50)
			for i := range docs {
				docs[i] = &benchDoc2{Payload: make([]byte, size)}
				if err := server.Register(docs[i]); err != nil {
					b.Fatal(err)
				}
			}
			for i := 0; i < len(docs)-1; i++ {
				r, err := server.NewRef(docs[i+1])
				if err != nil {
					b.Fatal(err)
				}
				docs[i].Next = r
			}
			d, err := server.Export(docs[0])
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fresh, err := NewSite(fmt.Sprintf("c%d", i), network)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				ref := fresh.Engine().RefFromDescriptor(d, GetSpec{Mode: replication.Transitive})
				if _, err := ref.Resolve(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				_ = fresh.Close()
				b.StartTimer()
			}
		})
	}
}

type benchDoc2 struct {
	Payload []byte
	Next    *Ref
}

func (d *benchDoc2) Touch() int { return len(d.Payload) }

func init() {
	MustRegisterType("obiwan.bench.doc2", (*benchDoc2)(nil))
}
