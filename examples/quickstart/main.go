// Quickstart walks through the paper's prototypical example (§2, figures
// 1 and 2): site S2 holds a graph of objects A→B→C; site S1 obtains A from
// the name server and replicates the graph incrementally, one object fault
// at a time.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"obiwan"
)

// Doc is the example object type: some state plus one reference.
type Doc struct {
	Name string
	Body string
	Next *obiwan.Ref
}

// Title returns the document's name.
func (d *Doc) Title() string { return d.Name }

// Read returns the document's body.
func (d *Doc) Read() string { return d.Body }

func init() {
	obiwan.MustRegisterType("quickstart.Doc", (*Doc)(nil))
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One simulated 10 Mb/s LAN connects everything (the paper's testbed).
	network := obiwan.NewMemNetwork(obiwan.LAN10)

	// A standalone name server, as in the paper: "only object AProxyIn is
	// registered in a name server".
	nsrt, err := obiwan.NewRuntime(network, "ns")
	if err != nil {
		return err
	}
	defer nsrt.Close()
	if _, _, err := obiwan.ServeNameServer(nsrt); err != nil {
		return err
	}

	// Site S2 masters the graph.
	s2, err := obiwan.NewSite("s2", network, obiwan.WithNameServer("ns"))
	if err != nil {
		return err
	}
	defer s2.Close()

	a := &Doc{Name: "A", Body: "alpha"}
	b := &Doc{Name: "B", Body: "beta"}
	c := &Doc{Name: "C", Body: "gamma"}
	if a.Next, err = s2.NewRef(b); err != nil {
		return err
	}
	if b.Next, err = s2.NewRef(c); err != nil {
		return err
	}
	if err := s2.Bind("graph/A", a); err != nil {
		return err
	}
	fmt.Println("S2: built A → B → C and bound A in the name server")

	// Site S1 looks A up. Nothing is replicated yet — the reference is
	// backed by a proxy-out.
	s1, err := obiwan.NewSite("s1", network, obiwan.WithNameServer("ns"))
	if err != nil {
		return err
	}
	defer s1.Close()

	refA, err := s1.Lookup("graph/A")
	if err != nil {
		return err
	}
	fmt.Printf("S1: looked up graph/A: %v (heap: %d objects)\n", refA, s1.Heap().Len())

	// First invocation: object fault on A. The demand ships A' plus a
	// proxy-out standing in for B (situation (b) of figure 1).
	title, err := refA.Invoke("Title")
	if err != nil {
		return err
	}
	fmt.Printf("S1: A.Title() = %q  (heap: %d, %s)\n", title[0], s1.Heap().Len(), gcLine(s1))

	docA, err := obiwan.Deref[*Doc](refA)
	if err != nil {
		return err
	}
	fmt.Printf("S1: A'.Next resolved? %v — it is BProxyOut\n", docA.Next.IsResolved())

	// Invoking through A'.Next faults B in; updateMember splices B' into
	// the slot and the proxy-out becomes garbage (situation (c)).
	body, err := docA.Next.Invoke("Read")
	if err != nil {
		return err
	}
	fmt.Printf("S1: B.Read() = %q  (heap: %d, %s)\n", body[0], s1.Heap().Len(), gcLine(s1))
	fmt.Printf("S1: A'.Next resolved? %v — direct invocations from here on\n", docA.Next.IsResolved())

	// And once more for C.
	docB, err := obiwan.Deref[*Doc](docA.Next)
	if err != nil {
		return err
	}
	if _, err := docB.Next.Invoke("Read"); err != nil {
		return err
	}
	fmt.Printf("S1: walked to C  (heap: %d, %s)\n", s1.Heap().Len(), gcLine(s1))

	// The whole graph is local now: further work needs no network at all.
	before := s1.Runtime().Stats().CallsSent
	for i := 0; i < 1000; i++ {
		if _, err := refA.Invoke("Read"); err != nil {
			return err
		}
	}
	fmt.Printf("S1: 1000 more invocations, %d RMI calls issued\n",
		s1.Runtime().Stats().CallsSent-before)

	// Edit the replica and push it back to the master — the put path.
	docA.Body = "alpha, edited at S1"
	if err := s1.Put(docA); err != nil {
		return err
	}
	fmt.Printf("S2: master A body after put: %q\n", a.Body)
	return nil
}

func gcLine(s *obiwan.Site) string {
	gc := s.Engine().GC().Snapshot()
	return fmt.Sprintf("proxy-outs live: %d, reclaimed: %d",
		gc.LiveProxyOuts(), gc.ProxyOutsReclaimed)
}
