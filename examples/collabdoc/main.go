// Collabdoc plays out the paper's motivating scenario (§1): cooperative
// work within a virtual organization — here, three sites of a distributed
// team co-editing a specification document over a wide-area network.
//
//   - The hub site masters the document (a chain of sections).
//   - Two editors replicate it: one section-by-section as she reads, one
//     as a single cluster before a flight.
//   - Edits go back with first-writer-wins; a losing editor refreshes and
//     retries.
//   - A read-only watcher subscribes to update dissemination and sees
//     every committed revision pushed to it.
//   - All access goes through the typed proxies obicomp generated for the
//     docmodel package (see docmodel/obiwan_gen.go).
//
// Run with:
//
//	go run ./examples/collabdoc
package main

import (
	"errors"
	"fmt"
	"log"

	"obiwan"
	"obiwan/examples/collabdoc/docmodel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	network := obiwan.NewMemNetwork(obiwan.WAN)

	nsrt, err := obiwan.NewRuntime(network, "ns")
	if err != nil {
		return err
	}
	defer nsrt.Close()
	if _, _, err := obiwan.ServeNameServer(nsrt); err != nil {
		return err
	}

	hub, err := obiwan.NewSite("hub", network,
		obiwan.WithNameServer("ns"),
		obiwan.WithPolicy(obiwan.FirstWriterWins{}))
	if err != nil {
		return err
	}
	defer hub.Close()

	// Build the master document at the hub.
	doc := &docmodel.Document{Title: "OBIWAN Spec", Revision: 1}
	intro := &docmodel.Section{Name: "Introduction", Text: "Sharing is needed."}
	arch := &docmodel.Section{Name: "Architecture", Text: "Proxies, in and out."}
	eval := &docmodel.Section{Name: "Evaluation", Text: "Numbers pending."}
	if doc.First, err = hub.NewRef(intro); err != nil {
		return err
	}
	if intro.Next, err = hub.NewRef(arch); err != nil {
		return err
	}
	if arch.Next, err = hub.NewRef(eval); err != nil {
		return err
	}
	if err := hub.Bind("docs/spec", doc); err != nil {
		return err
	}
	fmt.Println("hub: bound docs/spec with 3 sections")

	// A watcher subscribes to dissemination: committed updates are pushed.
	watcher, err := obiwan.NewSite("watcher", network, obiwan.WithNameServer("ns"))
	if err != nil {
		return err
	}
	defer watcher.Close()
	applier := obiwan.NewApplier(watcher)
	sink := &updateSink{applier: applier}
	sinkRef, err := watcher.Runtime().Export(sink, "collabdoc.UpdateSink")
	if err != nil {
		return err
	}
	pub := obiwan.NewPublisher(hub, func(site string, u *obiwan.Update) error {
		if site != "watcher" {
			return fmt.Errorf("unknown subscriber %q", site)
		}
		_, err := hub.Runtime().Call(sinkRef, "Push", u)
		return err
	})
	pub.Base = obiwan.FirstWriterWins{}
	hub.Engine().SetPolicy(pub)
	pub.Subscribe("watcher")

	// The watcher replicates the document once; dissemination keeps it hot.
	wdoc, err := docmodel.LookupDocument(watcher, "docs/spec")
	if err != nil {
		return err
	}
	fmt.Printf("watcher: sees %q\n", wdoc.Heading())

	// Editor Alice walks the document incrementally through typed proxies.
	alice, err := obiwan.NewSite("alice", network, obiwan.WithNameServer("ns"))
	if err != nil {
		return err
	}
	defer alice.Close()
	adoc, err := docmodel.LookupDocument(alice, "docs/spec")
	if err != nil {
		return err
	}
	fmt.Printf("alice: opened %q\n", adoc.Heading())
	aDoc, err := obiwan.Deref[*docmodel.Document](adoc.Ref())
	if err != nil {
		return err
	}
	aIntro := docmodel.NewSectionProxy(aDoc.First)
	fmt.Printf("alice: reads —\n%s\n", aIntro.Render())

	// Editor Bob clusters the whole document before going offline.
	bob, err := obiwan.NewSite("bob", network,
		obiwan.WithNameServer("ns"),
		obiwan.WithDefaultSpec(obiwan.GetSpec{
			Mode: obiwan.Incremental, Batch: 4, Clustered: true,
		}))
	if err != nil {
		return err
	}
	defer bob.Close()
	bdoc, err := docmodel.LookupDocument(bob, "docs/spec")
	if err != nil {
		return err
	}
	if _, err := bdoc.Ref().Resolve(); err != nil {
		return err
	}
	fmt.Printf("bob: clustered the whole document in %d round trip(s)\n",
		bob.Runtime().Stats().CallsSent-1) // minus the name-server lookup

	// Alice commits an edit to the introduction.
	aSec, err := obiwan.Deref[*docmodel.Section](aDoc.First)
	if err != nil {
		return err
	}
	aSec.Append("Mobility makes it hard.")
	if err := alice.Put(aSec); err != nil {
		return err
	}
	fmt.Println("alice: committed an edit to Introduction")

	// Bob edits the same section from his (now stale) cluster and loses.
	bDoc, err := obiwan.Deref[*docmodel.Document](bdoc.Ref())
	if err != nil {
		return err
	}
	bSec, err := obiwan.Deref[*docmodel.Section](bDoc.First)
	if err != nil {
		return err
	}
	bSec.Append("Also, networks are slow.")
	err = bob.PutCluster(bSec)
	var re *obiwan.RemoteError
	if errors.As(err, &re) && re.IsApp() {
		fmt.Println("bob: conflict (alice was first) — refreshing and retrying")
		if err := bob.Refresh(bSec); err != nil {
			return err
		}
		bSec.Append("Also, networks are slow.")
		if err := bob.PutCluster(bSec); err != nil {
			return err
		}
	} else if err != nil {
		return err
	}
	fmt.Println("bob: committed after retry")

	// The hub's master now carries both lines; the watcher was pushed
	// every committed revision by the dissemination hook.
	fmt.Printf("hub: Introduction is now —\n%s\n", intro.Render())
	wIntroDoc, err := obiwan.Deref[*docmodel.Document](wdoc.Ref())
	if err != nil {
		return err
	}
	wIntro := docmodel.NewSectionProxy(wIntroDoc.First)
	fmt.Printf("watcher: Introduction (pushed, %d words) —\n%s\n",
		wIntro.WordCount(), wIntro.Render())
	return nil
}

// updateSink receives disseminated updates over RMI at the watcher.
type updateSink struct {
	applier *obiwan.Applier
}

// Push applies one update.
func (s *updateSink) Push(u *obiwan.Update) error {
	return s.applier.Apply(u)
}
