// Package docmodel is the shared document model of the collabdoc example:
// a document is a chain of sections, co-edited by the members of a virtual
// organization — the paper's motivating scenario ("a widely distributed
// software development team", §1).
//
// The typed interfaces and proxies in obiwan_gen.go are produced by the
// obicomp tool; regenerate with:
//
//	go run ./cmd/obicomp -dir ./examples/collabdoc/docmodel
package docmodel

import (
	"fmt"
	"strings"

	"obiwan"
)

// Document is the root object: title plus the head of the section chain.
//
// obiwan:replicable
type Document struct {
	Title    string
	Revision int
	First    *obiwan.Ref
}

// Heading renders the title line.
func (d *Document) Heading() string {
	return fmt.Sprintf("%s (rev %d)", d.Title, d.Revision)
}

// Retitle renames the document.
func (d *Document) Retitle(title string) {
	d.Title = title
	d.Revision++
}

// Section is one block of document text.
//
// obiwan:replicable
type Section struct {
	Name string
	Text string
	Next *obiwan.Ref
}

// Render returns the section's display form.
func (s *Section) Render() string {
	return fmt.Sprintf("## %s\n%s", s.Name, s.Text)
}

// Edit replaces the section text.
func (s *Section) Edit(text string) {
	s.Text = text
}

// Append adds a line to the section.
func (s *Section) Append(line string) {
	if s.Text != "" && !strings.HasSuffix(s.Text, "\n") {
		s.Text += "\n"
	}
	s.Text += line
}

// WordCount counts whitespace-separated words.
func (s *Section) WordCount() int {
	return len(strings.Fields(s.Text))
}
