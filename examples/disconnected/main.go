// Disconnected demonstrates the paper's mobility headline: "as long as
// objects needed by an application are colocated, there is no need to be
// connected to the network", and "users should be able to modify local
// replicas of global data".
//
// A field engineer's laptop replicates a work-order cluster from the
// office server over a wireless link, loses connectivity (the taxi, the
// tunnel, the roaming bill), keeps reading and editing the local replicas
// inside a transaction, and reconciles everything on reconnection —
// including a conflict another writer created in the meantime.
//
// Run with:
//
//	go run ./examples/disconnected
package main

import (
	"errors"
	"fmt"
	"log"

	"obiwan"
)

// WorkOrder is one job on the engineer's list.
type WorkOrder struct {
	Site   string
	Task   string
	Status string
	Next   *obiwan.Ref
}

// Describe renders the order.
func (w *WorkOrder) Describe() string {
	return fmt.Sprintf("%s: %s [%s]", w.Site, w.Task, w.Status)
}

// Complete marks the order done with a note.
func (w *WorkOrder) Complete(note string) { w.Status = "done: " + note }

func init() {
	obiwan.MustRegisterType("fieldwork.WorkOrder", (*WorkOrder)(nil))
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	network := obiwan.NewMemNetwork(obiwan.Wireless)
	// Pin the wireless loss to zero for a deterministic demo; the profile
	// otherwise drops ~1% of messages.
	reliable := obiwan.Wireless
	reliable.LossRate = 0
	network.SetProfile("office", "laptop", reliable)
	network.SetProfile("office", "ns", reliable)
	network.SetProfile("laptop", "ns", reliable)

	nsrt, err := obiwan.NewRuntime(network, "ns")
	if err != nil {
		return err
	}
	defer nsrt.Close()
	if _, _, err := obiwan.ServeNameServer(nsrt); err != nil {
		return err
	}

	// The office server masters the orders; first-writer-wins protects
	// against lost updates from concurrent editors.
	office, err := obiwan.NewSite("office", network,
		obiwan.WithNameServer("ns"),
		obiwan.WithPolicy(obiwan.FirstWriterWins{}))
	if err != nil {
		return err
	}
	defer office.Close()

	orders := []*WorkOrder{
		{Site: "plant-7", Task: "replace valve", Status: "open"},
		{Site: "plant-7", Task: "inspect pump", Status: "open"},
		{Site: "depot-2", Task: "calibrate sensor", Status: "open"},
	}
	for i := 0; i < len(orders)-1; i++ {
		ref, err := office.NewRef(orders[i+1])
		if err != nil {
			return err
		}
		orders[i].Next = ref
	}
	if err := office.Bind("orders/today", orders[0]); err != nil {
		return err
	}

	// The laptop replicates the whole list as one cluster before leaving:
	// one round trip on a thin link beats three.
	laptop, err := obiwan.NewSite("laptop", network, obiwan.WithNameServer("ns"))
	if err != nil {
		return err
	}
	defer laptop.Close()

	ref, err := laptop.LookupSpec("orders/today", obiwan.GetSpec{
		Mode: obiwan.Incremental, Batch: len(orders), Clustered: true,
	})
	if err != nil {
		return err
	}
	head, err := obiwan.Deref[*WorkOrder](ref)
	if err != nil {
		return err
	}
	fmt.Printf("laptop: replicated %d orders in %d round trip(s)\n",
		laptop.Heap().Len(), laptop.Runtime().Stats().CallsSent)

	// ——— Into the field: no connectivity. ———
	network.PartitionHost("laptop")
	fmt.Println("laptop: disconnected")

	// Reading keeps working: the objects are colocated.
	for cur := head; cur != nil; {
		fmt.Println("  ", cur.Describe())
		if cur.Next == nil {
			break
		}
		next, err := obiwan.Deref[*WorkOrder](cur.Next)
		if err != nil {
			return err
		}
		cur = next
	}

	// Editing keeps working too, inside a relaxed transaction.
	mgr := obiwan.NewTxnManager(laptop)
	tx := mgr.Begin()
	if err := tx.Write(head); err != nil {
		return err
	}
	head.Complete("new valve fitted, tested at 6 bar")
	if err := tx.Commit(); err != nil {
		return err
	}
	fmt.Printf("laptop: committed offline (txn status: %v, pending: %d)\n",
		tx.Status(), len(mgr.Pending()))

	// Meanwhile, back at the office, a colleague closes another order in
	// the same cluster. The cluster is the unit of update ("each object
	// can not be individually updated", §4.3), so the engineer's pending
	// cluster put is now stale.
	orders[2].Complete("done by night shift")
	if err := office.MarkUpdated(orders[2]); err != nil {
		return err
	}

	// ——— Back in coverage. ———
	network.HealHost("laptop")
	fmt.Println("laptop: reconnected")

	n, err := mgr.FlushPending()
	fmt.Printf("laptop: flush committed %d transaction(s)\n", n)
	if err != nil {
		if !errors.Is(err, obiwan.ErrTxnConflict) {
			return err
		}
		// The first-writer-wins policy rejected the stale cluster and the
		// transaction rolled back locally. Standard optimistic recovery:
		// refresh, redo the edit, commit again.
		fmt.Println("laptop: conflict — colleague updated the cluster first; refreshing and retrying")
		if err := laptop.Refresh(head); err != nil {
			return err
		}
		retry := mgr.Begin()
		if err := retry.Write(head); err != nil {
			return err
		}
		head.Complete("new valve fitted, tested at 6 bar")
		if err := retry.Commit(); err != nil {
			return err
		}
		fmt.Printf("laptop: retry committed (txn status: %v)\n", retry.Status())
	}
	fmt.Printf("office: order[0] now: %s\n", orders[0].Describe())
	fmt.Printf("office: order[2] now: %s\n", orders[2].Describe())

	// The laptop refreshes to converge fully with the master state.
	if err := laptop.Refresh(head); err != nil {
		return err
	}
	fmt.Printf("laptop: order[0] after refresh: %s\n", head.Describe())
	return nil
}
