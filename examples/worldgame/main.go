// Worldgame plays the last scenario the paper's introduction motivates:
// "a distributed game involving people anywhere in the world" (§1).
//
// A game server masters a world of connected regions. Each player's device
// replicates its *area of interest* — the current region plus everything
// within two hops — as a depth-bounded dynamic cluster (§2.2: "the
// application specifies the depth of the partial reachability graph that
// it wants to replicate as a whole"). Movement is a put; other players
// learn about it through invalidations and refresh their (stale) view of
// the world. Walking beyond the replicated horizon faults the next area in
// transparently.
//
// Run with:
//
//	go run ./examples/worldgame
package main

import (
	"fmt"
	"log"
	"strings"

	"obiwan"
)

// Region is one location in the game world.
type Region struct {
	Name      string
	Occupants []string
	Exits     []*obiwan.Ref
}

// Describe renders the region and who is here.
func (r *Region) Describe() string {
	if len(r.Occupants) == 0 {
		return r.Name + " (empty)"
	}
	return r.Name + " (" + strings.Join(r.Occupants, ", ") + ")"
}

// Enter adds a player to the region.
func (r *Region) Enter(player string) {
	r.Occupants = append(r.Occupants, player)
}

// Leave removes a player from the region.
func (r *Region) Leave(player string) {
	out := r.Occupants[:0]
	for _, p := range r.Occupants {
		if p != player {
			out = append(out, p)
		}
	}
	r.Occupants = out
}

func init() {
	obiwan.MustRegisterType("worldgame.Region", (*Region)(nil))
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	network := obiwan.NewMemNetwork(obiwan.WAN)

	nsrt, err := obiwan.NewRuntime(network, "ns")
	if err != nil {
		return err
	}
	defer nsrt.Close()
	if _, _, err := obiwan.ServeNameServer(nsrt); err != nil {
		return err
	}

	server, err := obiwan.NewSite("gameserver", network,
		obiwan.WithNameServer("ns"), obiwan.WithInvalidation())
	if err != nil {
		return err
	}
	defer server.Close()

	// A chain of regions: village — forest — river — hills — keep.
	names := []string{"village", "forest", "river", "hills", "keep"}
	regions := make([]*Region, len(names))
	for i, n := range names {
		regions[i] = &Region{Name: n}
		if err := server.Register(regions[i]); err != nil {
			return err
		}
	}
	for i := 0; i < len(regions)-1; i++ {
		fwd, err := server.NewRef(regions[i+1])
		if err != nil {
			return err
		}
		back, err := server.NewRef(regions[i])
		if err != nil {
			return err
		}
		regions[i].Exits = append(regions[i].Exits, fwd)
		regions[i+1].Exits = append(regions[i+1].Exits, back)
	}
	if err := server.Bind("world/village", regions[0]); err != nil {
		return err
	}
	fmt.Println("server: world is village—forest—river—hills—keep")

	// Player Ada's device replicates her area of interest: the spawn
	// region plus everything within 2 hops, as one cluster.
	ada, err := obiwan.NewSite("ada", network, obiwan.WithNameServer("ns"))
	if err != nil {
		return err
	}
	defer ada.Close()
	aoiSpec := obiwan.GetSpec{
		Mode: obiwan.Incremental, Batch: 64, Depth: 2, Clustered: true,
	}
	adaRef, err := ada.LookupSpec("world/village", aoiSpec)
	if err != nil {
		return err
	}
	adaHere, err := obiwan.Deref[*Region](adaRef)
	if err != nil {
		return err
	}
	fmt.Printf("ada: spawned in %s; area of interest holds %d regions (%d round trips)\n",
		adaHere.Name, ada.Heap().Len(), ada.Runtime().Stats().CallsSent-1)

	// Ada enters the village: a put updates the master world.
	adaHere.Enter("ada")
	if err := ada.PutCluster(adaHere); err != nil {
		return err
	}
	fmt.Printf("server: %s\n", regions[0].Describe())

	// Player Bo spawns too and sees Ada (his replica is fresh).
	bo, err := obiwan.NewSite("bo", network, obiwan.WithNameServer("ns"))
	if err != nil {
		return err
	}
	defer bo.Close()
	boRef, err := bo.LookupSpec("world/village", aoiSpec)
	if err != nil {
		return err
	}
	boHere, err := obiwan.Deref[*Region](boRef)
	if err != nil {
		return err
	}
	fmt.Printf("bo: sees %s\n", boHere.Describe())
	boHere.Enter("bo")
	if err := bo.PutCluster(boHere); err != nil {
		return err
	}

	// Ada was invalidated by Bo's update; she refreshes and sees him.
	stale := ada.StaleSet().Stale()
	fmt.Printf("ada: %d region(s) invalidated by other players\n", len(stale))
	if _, err := ada.RefreshStale(); err != nil {
		return err
	}
	fmt.Printf("ada: now sees %s\n", adaHere.Describe())

	// Ada walks east, beyond her horizon: village → forest → river →
	// hills. The first two are already local (depth-2 cluster); "hills"
	// faults the next area in transparently.
	cur := adaHere
	faultsBefore := ada.Runtime().Stats().CallsSent
	for hop := 0; hop < 3; hop++ {
		next, err := eastExit(cur)
		if err != nil {
			return err
		}
		cur = next
		fmt.Printf("ada: walked to %s (heap now %d regions)\n", cur.Name, ada.Heap().Len())
	}
	fmt.Printf("ada: the walk needed %d extra round trip(s) — the horizon moved with her\n",
		ada.Runtime().Stats().CallsSent-faultsBefore)

	// Movement commits: leave the village cluster, enter the hills one.
	adaHere.Leave("ada")
	if err := ada.PutCluster(adaHere); err != nil {
		return err
	}
	cur.Enter("ada")
	if err := ada.PutCluster(cur); err != nil {
		return err
	}
	fmt.Printf("server: %s / %s\n", regions[0].Describe(), regions[3].Describe())
	return nil
}

// eastExit follows the region's last exit (the eastward link in this
// world's construction), faulting it in if needed.
func eastExit(r *Region) (*Region, error) {
	exit := r.Exits[len(r.Exits)-1]
	return obiwan.Deref[*Region](exit)
}
