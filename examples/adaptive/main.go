// Adaptive demonstrates the run-time invocation decision the paper closes
// on: "the programmer has the means to make his application decide, in
// run-time, if an object should be invoked via RMI or if a local replica
// should be created ... given the significant and rapid changes in the
// quality of service of the underlying network" (§5).
//
// A stock dashboard reads a quote object held at an exchange site while
// its link degrades from LAN to WAN to wireless, and finally dies:
//
//   - explicit switching: the app reads RTT estimates from the QoS monitor
//     and flips a reference from ModeRemote to ModeLocal when the link
//     turns bad;
//   - automatic switching: a ModeAuto reference crosses over on its own
//     after the ski-rental break-even;
//   - disconnection: the replica keeps serving reads with no network.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	"obiwan"
)

// Quote is a single instrument's last trade.
type Quote struct {
	Symbol string
	Cents  int64
}

// Price returns the last price in cents.
func (q *Quote) Price() int64 { return q.Cents }

// Trade records a new price.
func (q *Quote) Trade(cents int64) { q.Cents = cents }

func init() {
	obiwan.MustRegisterType("adaptive.Quote", (*Quote)(nil))
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	network := obiwan.NewMemNetwork(obiwan.LAN10)

	nsrt, err := obiwan.NewRuntime(network, "ns")
	if err != nil {
		return err
	}
	defer nsrt.Close()
	if _, _, err := obiwan.ServeNameServer(nsrt); err != nil {
		return err
	}

	exchange, err := obiwan.NewSite("exchange", network, obiwan.WithNameServer("ns"))
	if err != nil {
		return err
	}
	defer exchange.Close()
	master := &Quote{Symbol: "OBI", Cents: 10_000}
	if err := exchange.Bind("quotes/OBI", master); err != nil {
		return err
	}

	dashboard, err := obiwan.NewSite("dashboard", network, obiwan.WithNameServer("ns"))
	if err != nil {
		return err
	}
	defer dashboard.Close()

	// ——— Part 1: explicit run-time switching on measured QoS. ———
	ref, err := dashboard.Lookup("quotes/OBI")
	if err != nil {
		return err
	}
	ref.SetMode(obiwan.ModeRemote) // fresh quotes matter: read the master

	readQuote := func(label string) error {
		start := time.Now()
		res, err := ref.Invoke("Price")
		if err != nil {
			return err
		}
		rtt, _ := dashboard.Monitor().RTT("exchange")
		fmt.Printf("%-22s price=%d  call=%v  ewma-RTT=%v  mode=%v\n",
			label, res[0], time.Since(start).Round(100*time.Microsecond),
			rtt.Round(100*time.Microsecond), ref.Mode())
		return nil
	}

	fmt.Println("— LAN: RMI is cheap, stay remote —")
	for i := 0; i < 3; i++ {
		master.Trade(10_000 + int64(i))
		if err := readQuote("dashboard reads (LAN)"); err != nil {
			return err
		}
	}

	fmt.Println("— link degrades to wireless —")
	network.SetProfile("dashboard", "exchange", obiwan.Wireless)
	for i := 0; i < 2; i++ {
		if err := readQuote("dashboard reads (wireless)"); err != nil {
			return err
		}
	}
	// The application policy: past 100 ms RTT, replicate and go local.
	if rtt, ok := dashboard.Monitor().RTT("exchange"); ok && rtt > 100*time.Millisecond {
		fmt.Printf("policy: RTT %v > 100ms — switching to local replica\n",
			rtt.Round(time.Millisecond))
		ref.SetMode(obiwan.ModeLocal)
	}
	for i := 0; i < 3; i++ {
		if err := readQuote("dashboard reads (local)"); err != nil {
			return err
		}
	}

	// ——— Part 2: ModeAuto does the same switch by itself. ———
	fmt.Println("— a second dashboard uses ModeAuto —")
	network.SetProfile("auto", "exchange", obiwan.WAN)
	auto, err := obiwan.NewSite("auto", network, obiwan.WithNameServer("ns"))
	if err != nil {
		return err
	}
	defer auto.Close()
	aref, err := auto.Lookup("quotes/OBI")
	if err != nil {
		return err
	}
	aref.SetMode(obiwan.ModeAuto)
	for i := 1; i <= 4; i++ {
		start := time.Now()
		if _, err := aref.Invoke("Price"); err != nil {
			return err
		}
		fmt.Printf("auto call %d: %v  resolved=%v\n",
			i, time.Since(start).Round(100*time.Microsecond), aref.IsResolved())
	}
	fmt.Printf("auto: issued %d RMI calls in total (crossover after the break-even)\n",
		auto.Runtime().Stats().CallsSent-1) // minus the name-server lookup

	// ——— Part 3: the link dies; the replica keeps serving. ———
	fmt.Println("— exchange link dies —")
	network.Disconnect("dashboard", "exchange")
	res, err := ref.Invoke("Price")
	if err != nil {
		return err
	}
	fmt.Printf("dashboard (offline) still reads price=%d from its replica\n", res[0])
	return nil
}
