#!/usr/bin/env bash
# lint-wallclock.sh — forbid new direct wall-clock reads.
#
# Everything that runs inside a simulated scenario must take its time
# from netsim.Clock (or a telemetry hub's injected clock): a stray
# time.Now() silently breaks virtual-clock byte-determinism — the exact
# property the BENCH_* regression baselines and the swarm determinism
# tests gate on. This lint greps for time.Now outside the files that are
# legitimately wall-clocked and fails CI when a new one appears.
#
# Allowlisted (and why):
#   internal/netsim/              the clock abstraction itself
#   internal/telemetry/hub.go     real-clock fallback when no clock injected
#   internal/telemetry/trace.go   same fallback for the tracer
#   internal/telemetry/flight.go  same fallback for the flight recorder
#   internal/wal/wal.go           fsync timing is real disk time by nature
#   internal/heap/heap.go         real-clock shim (injected clock otherwise)
#   internal/qos/qos.go           real-clock shim (injected clock otherwise)
#   internal/consistency/consistency.go  real-clock shim
#   internal/swarm/swarm.go       wall-clock speedup figure (wallStart)
#   internal/bench/runners.go     wall-clock experiments (table1, fig4-6)
#   internal/bench/ablation.go    wall-clock experiments
#   cmd/obiwan-bench/main.go      per-experiment wall timing for the report
#   examples/                     examples run on the real clock
#   *_test.go                     tests may time themselves
#
# New legitimate uses must be added here with a reason, so the exception
# stays reviewed instead of accumulating silently.
set -euo pipefail
cd "$(dirname "$0")/.."

allow='^\./internal/netsim/|^\./internal/telemetry/(hub|trace|flight)\.go$|^\./internal/wal/wal\.go$|^\./internal/heap/heap\.go$|^\./internal/qos/qos\.go$|^\./internal/consistency/consistency\.go$|^\./internal/swarm/swarm\.go$|^\./internal/bench/(runners|ablation)\.go$|^\./cmd/obiwan-bench/main\.go$|^\./examples/|_test\.go$'

bad=$(grep -rn 'time\.Now' --include='*.go' . | grep -Ev "^($allow)" || true)
# grep -n output is file:line:text; re-filter on the file field alone.
bad=$(printf '%s\n' "$bad" | awk -F: -v allow="$allow" '$1 !~ allow' | grep . || true)

if [ -n "$bad" ]; then
    echo "lint-wallclock: direct time.Now outside the allowlist:" >&2
    printf '%s\n' "$bad" >&2
    echo "Use the component's netsim.Clock (or injected hub clock); if this" >&2
    echo "file is legitimately wall-clocked, add it to scripts/lint-wallclock.sh" >&2
    echo "with a reason." >&2
    exit 1
fi
echo "lint-wallclock: ok"
