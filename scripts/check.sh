#!/bin/sh
# check.sh — the full local gate: format, vet, race tests, fuzz seeds,
# a quick-scale experiment smoke run, and the examples.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" "$unformatted"
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go test -race"
go test -race ./...

echo "== experiment smoke run"
go run ./cmd/obiwan-bench -exp all -quick -list 30 >/dev/null

echo "== examples"
for e in quickstart disconnected collabdoc worldgame adaptive; do
	echo "   examples/$e"
	go run "./examples/$e" >/dev/null
done

echo "all checks passed"
