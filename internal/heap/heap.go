// Package heap implements a site's object store: the set of OBIWAN objects
// (masters and replicas) living in one process, keyed by identity.
//
// The JVM gave the original prototype object identity, a garbage-collected
// heap, and reachability for free. This package provides the equivalent
// bookkeeping the Go implementation needs:
//
//   - OID allocation for masters created at this site (site id in the high
//     bits, so identities never collide across sites);
//   - entries recording each object's type, role (master/replica), version,
//     and — for replicas — the provider proxy-in back at the master site;
//   - reverse lookup from object pointer to entry, which is what lets
//     application code hand a bare object to Put/Refresh;
//   - bounded breadth-first traversal of the reachability graph through
//     resolved references, used by the replication engine to form batches
//     and clusters.
package heap

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"obiwan/internal/objmodel"
	"obiwan/internal/rmi"
)

// ErrUnknownObject is returned when an object or OID has no entry here.
var ErrUnknownObject = errors.New("heap: unknown object")

// Role distinguishes masters from replicas.
type Role uint8

const (
	// Master objects were created at this site; their state is
	// authoritative.
	Master Role = iota
	// Replica objects were replicated from another site's master.
	Replica
)

func (r Role) String() string {
	if r == Master {
		return "master"
	}
	return "replica"
}

// Entry is the heap's metadata for one object.
type Entry struct {
	// OID is the object's global identity (shared by master and replicas).
	OID objmodel.OID
	// Obj is the live Go object (pointer to a registered struct).
	Obj any
	// TypeName is the registered wire name of the object's type.
	TypeName string
	// Role says whether this is the master or a replica.
	Role Role

	mu sync.Mutex
	// stateMu serializes engine access to the object's state: payload
	// capture (assemble, put requests, snapshots) versus restore (applied
	// puts, refreshes, disseminated updates). Application code reading its
	// own replicas is synchronized by the application, as in the paper;
	// this lock only keeps the platform's own accesses from racing.
	stateMu sync.Mutex
	// version: for masters, the current version (bumped on every applied
	// update); for replicas, the master version this replica reflects.
	version uint64
	// provider is, for replicas, the proxy-in exported at the master site
	// through which this object (or its cluster) is fetched and updated.
	provider rmi.RemoteRef
	// clusterMember marks replicas fetched as part of a cluster: they share
	// the cluster's proxy-in and cannot be individually updated (§4.3).
	clusterMember bool
	// clusterRoot identifies the cluster this replica arrived in (the OID
	// whose proxy-in serves the whole group); zero outside clusters.
	clusterRoot objmodel.OID
	// dirty marks replicas with local modifications not yet put back.
	dirty bool
	// fetchedAt records when a replica's state was last fetched, feeding
	// lease-based consistency policies.
	fetchedAt time.Time
}

// LockState acquires the entry's state lock (see stateMu).
func (e *Entry) LockState() { e.stateMu.Lock() }

// UnlockState releases the entry's state lock.
func (e *Entry) UnlockState() { e.stateMu.Unlock() }

// Version returns the entry's version.
func (e *Entry) Version() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.version
}

// SetVersion overwrites the version (replica refresh).
func (e *Entry) SetVersion(v uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.version = v
}

// BumpVersion increments a master's version and returns the new value.
func (e *Entry) BumpVersion() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.version++
	return e.version
}

// Provider returns the replica's proxy-in reference (zero for masters).
func (e *Entry) Provider() rmi.RemoteRef {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.provider
}

// SetProvider installs the replica's proxy-in reference. This is the
// paper's setProvider step, run when a replica is materialized. For cluster
// members, clusterRoot names the cluster the replica belongs to.
func (e *Entry) SetProvider(ref rmi.RemoteRef, clusterRoot objmodel.OID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.provider = ref
	e.clusterMember = clusterRoot != 0
	e.clusterRoot = clusterRoot
}

// ClusterMember reports whether the replica arrived inside a cluster.
func (e *Entry) ClusterMember() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.clusterMember
}

// ClusterRoot returns the OID of the cluster this replica belongs to, or
// zero if it is not a cluster member.
func (e *Entry) ClusterRoot() objmodel.OID {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.clusterRoot
}

// Dirty reports whether the replica has unsaved local modifications.
func (e *Entry) Dirty() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dirty
}

// SetDirty flags or clears local modifications.
func (e *Entry) SetDirty(d bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dirty = d
}

// FetchedAt returns when the replica state was last fetched.
func (e *Entry) FetchedAt() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fetchedAt
}

// Touch records a fresh fetch time.
func (e *Entry) Touch(t time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.fetchedAt = t
}

func (e *Entry) String() string {
	return fmt.Sprintf("%s %s %s v%d", e.Role, e.TypeName, e.OID, e.Version())
}

// Heap is one site's object store. Safe for concurrent use.
type Heap struct {
	siteID uint16

	mu      sync.RWMutex
	byOID   map[objmodel.OID]*Entry
	byObj   map[any]*Entry
	nextSeq uint64
}

// New returns an empty heap for a site. siteID must be unique across the
// sites of one deployment; it namespaces the OIDs minted here.
func New(siteID uint16) *Heap {
	return &Heap{
		siteID: siteID,
		byOID:  make(map[objmodel.OID]*Entry),
		byObj:  make(map[any]*Entry),
	}
}

// SiteID returns the heap's site identifier.
func (h *Heap) SiteID() uint16 { return h.siteID }

// Len returns the number of objects stored.
func (h *Heap) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.byOID)
}

// mintOID allocates a fresh identity for a master created at this site.
func (h *Heap) mintOID() objmodel.OID {
	h.nextSeq++
	return objmodel.OID(uint64(h.siteID)<<48 | h.nextSeq)
}

// MintOID allocates a fresh identity without installing an object. The
// master-group layer uses it: the group leader mints the id, the id is
// agreed through the replicated log, and every member then installs its
// copy at it with AddMasterWithOID.
func (h *Heap) MintOID() objmodel.OID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.mintOID()
}

// AddMaster registers obj as a master object, minting its identity.
// Registering the same object twice returns the existing entry. The
// object's type must be registered with objmodel.
func (h *Heap) AddMaster(obj any) (*Entry, error) {
	info, ok := objmodel.InfoOf(obj)
	if !ok {
		return nil, fmt.Errorf("heap: type %T not registered with objmodel", obj)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.byObj[obj]; ok {
		return e, nil
	}
	e := &Entry{
		OID:      h.mintOID(),
		Obj:      obj,
		TypeName: info.Name,
		Role:     Master,
		version:  1,
	}
	h.byOID[e.OID] = e
	h.byObj[obj] = e
	return e, nil
}

// AddMasterWithOID registers obj as a master with a fixed identity and
// version — the checkpoint-restore path. The OID must carry this heap's
// site id, must not collide with an existing entry, and the allocator is
// advanced past it so future masters mint fresh identities.
func (h *Heap) AddMasterWithOID(obj any, oid objmodel.OID, typeName string, version uint64) error {
	if uint16(uint64(oid)>>48) != h.siteID {
		return fmt.Errorf("heap: OID %v does not belong to site %d", oid, h.siteID)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, exists := h.byOID[oid]; exists {
		return fmt.Errorf("heap: OID %v already present", oid)
	}
	if _, exists := h.byObj[obj]; exists {
		return fmt.Errorf("heap: object %T already registered", obj)
	}
	e := &Entry{
		OID:      oid,
		Obj:      obj,
		TypeName: typeName,
		Role:     Master,
		version:  version,
	}
	h.byOID[oid] = e
	h.byObj[obj] = e
	if seq := uint64(oid) & ((1 << 48) - 1); seq > h.nextSeq {
		h.nextSeq = seq
	}
	return nil
}

// AddReplica registers obj as a replica of the master identified by oid.
// If a replica for oid already exists the existing entry is returned with
// ok=false, so callers can update it in place instead (identity dedupe:
// re-replication binds to the existing replica).
func (h *Heap) AddReplica(obj any, oid objmodel.OID, typeName string, version uint64) (e *Entry, fresh bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if existing, ok := h.byOID[oid]; ok {
		return existing, false
	}
	e = &Entry{
		OID:       oid,
		Obj:       obj,
		TypeName:  typeName,
		Role:      Replica,
		version:   version,
		fetchedAt: time.Now(),
	}
	h.byOID[oid] = e
	h.byObj[obj] = e
	return e, true
}

// Get returns the entry for an identity.
func (h *Heap) Get(oid objmodel.OID) (*Entry, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	e, ok := h.byOID[oid]
	return e, ok
}

// EntryOf returns the entry for a live object pointer.
func (h *Heap) EntryOf(obj any) (*Entry, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	e, ok := h.byObj[obj]
	return e, ok
}

// Remove drops an object from the heap (e.g. an evicted replica).
func (h *Heap) Remove(oid objmodel.OID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.byOID[oid]; ok {
		delete(h.byOID, oid)
		delete(h.byObj, e.Obj)
	}
}

// Entries returns a snapshot of all entries (diagnostics and tests).
func (h *Heap) Entries() []*Entry {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]*Entry, 0, len(h.byOID))
	for _, e := range h.byOID {
		out = append(out, e)
	}
	return out
}

// TraverseLimit bounds a reachability traversal.
type TraverseLimit struct {
	// MaxObjects stops after this many objects (0 = unlimited). This is the
	// paper's batch size: "the application specifies the [amount] of the
	// partial reachability graph that it wants to replicate".
	MaxObjects int
	// MaxDepth stops at this BFS depth from the root (0 = unlimited);
	// depth-defined dynamic clusters.
	MaxDepth int
}

// Traverse walks the reachability graph from root (which must be in the
// heap), following resolved references between objects that live in this
// heap, in breadth-first order. It returns the visited entries, root first.
// Unresolved references (proxied targets) are frontier edges and are not
// followed.
func (h *Heap) Traverse(root any, limit TraverseLimit) ([]*Entry, error) {
	rootEntry, ok := h.EntryOf(root)
	if !ok {
		return nil, fmt.Errorf("%w: %T", ErrUnknownObject, root)
	}
	type qitem struct {
		e     *Entry
		depth int
	}
	visited := map[objmodel.OID]bool{rootEntry.OID: true}
	queue := []qitem{{rootEntry, 0}}
	var out []*Entry
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		out = append(out, item.e)
		if limit.MaxObjects > 0 && len(out) >= limit.MaxObjects {
			break
		}
		if limit.MaxDepth > 0 && item.depth >= limit.MaxDepth {
			continue
		}
		item.e.LockState()
		refs := objmodel.RefsOf(item.e.Obj)
		item.e.UnlockState()
		for _, ref := range refs {
			if !ref.IsResolved() {
				continue
			}
			target, err := ref.Resolve()
			if err != nil {
				continue
			}
			te, ok := h.EntryOf(target)
			if !ok || visited[te.OID] {
				continue
			}
			visited[te.OID] = true
			queue = append(queue, qitem{te, item.depth + 1})
		}
	}
	return out, nil
}
