package heap

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"obiwan/internal/objmodel"
	"obiwan/internal/rmi"
)

type item struct {
	N    int
	Kids []*objmodel.Ref
}

func (i *item) Value() int { return i.N }

func init() {
	objmodel.MustRegisterType("heap_test.item", (*item)(nil))
}

func TestAddMasterMintsDistinctOIDs(t *testing.T) {
	h := New(7)
	seen := map[objmodel.OID]bool{}
	for i := 0; i < 100; i++ {
		e, err := h.AddMaster(&item{N: i})
		if err != nil {
			t.Fatal(err)
		}
		if seen[e.OID] {
			t.Fatalf("duplicate OID %v", e.OID)
		}
		seen[e.OID] = true
		if uint64(e.OID)>>48 != 7 {
			t.Fatalf("OID %v missing site prefix", e.OID)
		}
		if e.Version() != 1 || e.Role != Master {
			t.Fatalf("entry: %+v", e)
		}
	}
	if h.Len() != 100 {
		t.Fatalf("len: %d", h.Len())
	}
}

func TestAddMasterIdempotentPerObject(t *testing.T) {
	h := New(1)
	o := &item{}
	e1, err := h.AddMaster(o)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := h.AddMaster(o)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("same object must map to one entry")
	}
}

func TestAddMasterRejectsUnregistered(t *testing.T) {
	h := New(1)
	type stranger struct{ X int }
	if _, err := h.AddMaster(&stranger{}); err == nil {
		t.Fatal("unregistered type must be rejected")
	}
}

func TestAddReplicaDedupe(t *testing.T) {
	h := New(1)
	oid := objmodel.OID(uint64(9)<<48 | 5)
	r1 := &item{N: 1}
	e1, fresh := h.AddReplica(r1, oid, "heap_test.item", 3)
	if !fresh || e1.Obj != r1 || e1.Version() != 3 || e1.Role != Replica {
		t.Fatalf("first add: fresh=%v %+v", fresh, e1)
	}
	r2 := &item{N: 2}
	e2, fresh := h.AddReplica(r2, oid, "heap_test.item", 4)
	if fresh || e2 != e1 {
		t.Fatal("second add must return the existing entry")
	}
	if got, ok := h.Get(oid); !ok || got != e1 {
		t.Fatal("Get lookup")
	}
	if got, ok := h.EntryOf(r1); !ok || got != e1 {
		t.Fatal("EntryOf lookup")
	}
	if _, ok := h.EntryOf(r2); ok {
		t.Fatal("losing object must not be indexed")
	}
}

func TestRemove(t *testing.T) {
	h := New(1)
	o := &item{}
	e, _ := h.AddMaster(o)
	h.Remove(e.OID)
	if _, ok := h.Get(e.OID); ok {
		t.Fatal("removed OID still present")
	}
	if _, ok := h.EntryOf(o); ok {
		t.Fatal("removed object still indexed")
	}
	h.Remove(e.OID) // idempotent
}

func TestEntryMetadata(t *testing.T) {
	h := New(1)
	e, _ := h.AddReplica(&item{}, 42, "heap_test.item", 1)
	prov := rmi.RemoteRef{Addr: "s2", ID: 3, Iface: "I"}
	e.SetProvider(prov, 0)
	if e.Provider() != prov || e.ClusterMember() || e.ClusterRoot() != 0 {
		t.Fatalf("provider: %+v", e)
	}
	e.SetProvider(prov, objmodel.OID(7))
	if !e.ClusterMember() || e.ClusterRoot() != 7 {
		t.Fatal("cluster membership")
	}
	if e.Dirty() {
		t.Fatal("fresh replica must be clean")
	}
	e.SetDirty(true)
	if !e.Dirty() {
		t.Fatal("dirty flag")
	}
	now := time.Now()
	e.Touch(now)
	if !e.FetchedAt().Equal(now) {
		t.Fatal("fetchedAt")
	}
	e.SetVersion(9)
	if e.Version() != 9 {
		t.Fatal("version")
	}
	if v := e.BumpVersion(); v != 10 {
		t.Fatalf("bump: %d", v)
	}
	if s := e.String(); s == "" {
		t.Fatal("empty string")
	}
}

// buildStar creates root → n children.
func buildStar(t *testing.T, h *Heap, n int) (*item, []*item) {
	t.Helper()
	root := &item{}
	if _, err := h.AddMaster(root); err != nil {
		t.Fatal(err)
	}
	kids := make([]*item, n)
	for i := range kids {
		kids[i] = &item{N: i}
		e, err := h.AddMaster(kids[i])
		if err != nil {
			t.Fatal(err)
		}
		root.Kids = append(root.Kids, objmodel.NewLocalRef(kids[i], e.OID))
	}
	return root, kids
}

// buildChain creates a linked chain of n items, head first.
func buildChain(t *testing.T, h *Heap, n int) []*item {
	t.Helper()
	items := make([]*item, n)
	for i := range items {
		items[i] = &item{N: i}
		if _, err := h.AddMaster(items[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n-1; i++ {
		e, _ := h.EntryOf(items[i+1])
		items[i].Kids = []*objmodel.Ref{objmodel.NewLocalRef(items[i+1], e.OID)}
	}
	return items
}

func TestTraverseUnlimited(t *testing.T) {
	h := New(1)
	items := buildChain(t, h, 10)
	entries, err := h.Traverse(items[0], TraverseLimit{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("visited %d", len(entries))
	}
	// BFS on a chain preserves order.
	for i, e := range entries {
		if e.Obj.(*item).N != i {
			t.Fatalf("order at %d: %d", i, e.Obj.(*item).N)
		}
	}
}

func TestTraverseMaxObjects(t *testing.T) {
	h := New(1)
	items := buildChain(t, h, 10)
	entries, err := h.Traverse(items[0], TraverseLimit{MaxObjects: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("visited %d, want 4", len(entries))
	}
}

func TestTraverseMaxDepth(t *testing.T) {
	h := New(1)
	root, _ := buildStar(t, h, 5)
	entries, err := h.Traverse(root, TraverseLimit{MaxDepth: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 { // unlimited: root + 5 kids
		t.Fatalf("unlimited star: %d", len(entries))
	}
	// Depth 1 on a chain: head + 1.
	h2 := New(2)
	items := buildChain(t, h2, 10)
	entries, err = h2.Traverse(items[0], TraverseLimit{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("depth 1 chain: %d", len(entries))
	}
}

func TestTraverseSharedDiamond(t *testing.T) {
	// root → a, b; a → c; b → c. c must be visited once.
	h := New(1)
	c := &item{N: 3}
	ce, _ := h.AddMaster(c)
	a := &item{N: 1, Kids: []*objmodel.Ref{objmodel.NewLocalRef(c, ce.OID)}}
	b := &item{N: 2, Kids: []*objmodel.Ref{objmodel.NewLocalRef(c, ce.OID)}}
	ae, _ := h.AddMaster(a)
	be, _ := h.AddMaster(b)
	root := &item{Kids: []*objmodel.Ref{
		objmodel.NewLocalRef(a, ae.OID), objmodel.NewLocalRef(b, be.OID),
	}}
	if _, err := h.AddMaster(root); err != nil {
		t.Fatal(err)
	}
	entries, err := h.Traverse(root, TraverseLimit{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("diamond visited %d, want 4", len(entries))
	}
}

func TestTraverseCycle(t *testing.T) {
	h := New(1)
	a := &item{N: 1}
	b := &item{N: 2}
	ae, _ := h.AddMaster(a)
	be, _ := h.AddMaster(b)
	a.Kids = []*objmodel.Ref{objmodel.NewLocalRef(b, be.OID)}
	b.Kids = []*objmodel.Ref{objmodel.NewLocalRef(a, ae.OID)}
	entries, err := h.Traverse(a, TraverseLimit{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("cycle visited %d, want 2", len(entries))
	}
}

func TestTraverseSkipsUnresolvedRefs(t *testing.T) {
	h := New(1)
	a := &item{N: 1, Kids: []*objmodel.Ref{objmodel.NewFaultingRef(99, nil, nil)}}
	if _, err := h.AddMaster(a); err != nil {
		t.Fatal(err)
	}
	entries, err := h.Traverse(a, TraverseLimit{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("visited %d, want 1 (proxied edges are frontier)", len(entries))
	}
}

func TestTraverseUnknownRoot(t *testing.T) {
	h := New(1)
	if _, err := h.Traverse(&item{}, TraverseLimit{}); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err: %v", err)
	}
}

func TestRoleString(t *testing.T) {
	if Master.String() != "master" || Replica.String() != "replica" {
		t.Fatal("role strings")
	}
}

// Property: traversal with MaxObjects=k over an n-chain visits min(k, n)
// objects, in order.
func TestQuickTraverseBound(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%40) + 1
		k := int(kRaw%50) + 1
		h := New(1)
		items := make([]*item, n)
		for i := range items {
			items[i] = &item{N: i}
			if _, err := h.AddMaster(items[i]); err != nil {
				return false
			}
		}
		for i := 0; i < n-1; i++ {
			e, _ := h.EntryOf(items[i+1])
			items[i].Kids = []*objmodel.Ref{objmodel.NewLocalRef(items[i+1], e.OID)}
		}
		entries, err := h.Traverse(items[0], TraverseLimit{MaxObjects: k})
		if err != nil {
			return false
		}
		want := n
		if k < n {
			want = k
		}
		if len(entries) != want {
			return false
		}
		for i, e := range entries {
			if e.Obj.(*item).N != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEntriesSnapshot(t *testing.T) {
	h := New(1)
	for i := 0; i < 5; i++ {
		if _, err := h.AddMaster(&item{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(h.Entries()); got != 5 {
		t.Fatalf("entries: %d", got)
	}
	if h.SiteID() != 1 {
		t.Fatalf("site id: %d", h.SiteID())
	}
}

func TestOIDStringIsStable(t *testing.T) {
	h := New(3)
	e, _ := h.AddMaster(&item{})
	if want := fmt.Sprintf("3/%d", uint64(e.OID)&((1<<48)-1)); e.OID.String() != want {
		t.Fatalf("oid: %s want %s", e.OID, want)
	}
}
