package netsim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// Property: the clock is not an input to the network model. For any seeded
// schedule over any topology, the message orderings produced by Link.Plan
// are a function of the schedule and the link seeds alone —
//
//  1. a serial walk produces identical per-link streams under the real
//     clock and a VirtualClock (the loss stream and verdict sequence must
//     not be perturbed by how time is told), and
//  2. a concurrent walk under a VirtualClock is bit-identical from run to
//     run, full profile (bandwidth occupancy, jitter, loss) included —
//     the determinism the swarm harness is built on.
//
// Bandwidth and jitter are excluded from the cross-clock leg: both fold
// absolute send times into the returned delay (occupancy and the FIFO
// arrival clamp), and real sleeps land at imprecise instants by nature.
// The virtual-vs-virtual leg covers them.

// propTopology is a set of store-and-forward paths over a pool of directed
// links. Paths may share links (tree), so concurrent walkers contend for
// the same occupancy and rng streams.
type propTopology struct {
	name  string
	links int
	paths [][]int
}

var propTopologies = []propTopology{
	{"chain", 3, [][]int{{0, 1, 2}}},
	{"tree", 6, [][]int{{0, 2}, {0, 3}, {1, 4}, {1, 5}}},
	{"diamond", 4, [][]int{{0, 2}, {1, 3}}},
}

// propSchedule is the quick-generated workload: per path, per message, a
// pre-send gap and a payload size.
type propSchedule struct {
	Seed  int64
	Gaps  [4][4]uint16
	Sizes [4][4]uint16
}

func (s propSchedule) gap(p, m int) time.Duration {
	return time.Duration(s.Gaps[p][m]%100) * time.Microsecond
}

func (s propSchedule) size(p, m int) int {
	return int(s.Sizes[p][m])%1400 + 1
}

// crossClockProfile exercises the loss model without clock-dependent delay
// components (see the package comment above).
var crossClockProfile = Profile{
	Name:               "prop-lossy",
	Latency:            200 * time.Microsecond,
	PerMessageOverhead: 10 * time.Microsecond,
	LossRate:           0.2,
}

// fullProfile exercises everything at once for the virtual-only leg.
var fullProfile = Profile{
	Name:               "prop-full",
	Latency:            300 * time.Microsecond,
	Jitter:             80 * time.Microsecond,
	BandwidthBps:       10_000_000 / 8,
	LossRate:           0.15,
	PerMessageOverhead: 20 * time.Microsecond,
}

// walkSerial drives every path's schedule from one goroutine in a fixed
// order, store-and-forward along each path, and returns the per-link
// stream of (message, path, size, delay, verdict) tuples.
func walkSerial(clock Clock, topo propTopology, profile Profile, s propSchedule) [][]string {
	links := make([]*Link, topo.links)
	for i := range links {
		links[i] = NewLinkClock(profile, s.Seed+int64(i), clock)
	}
	per := make([][]string, topo.links)
	walk := func() {
		for m := 0; m < 4; m++ {
			for pi, path := range topo.paths {
				clock.Sleep(s.gap(pi, m))
				size := s.size(pi, m)
				for _, li := range path {
					d, err := links[li].Plan(size)
					per[li] = append(per[li], fmt.Sprintf("m%d p%d %dB +%v %v", m, pi, size, d, err))
					if err != nil {
						break // dropped: nothing to forward
					}
					clock.Sleep(d)
				}
			}
		}
	}
	if vc, ok := clock.(*VirtualClock); ok {
		vc.Run(walk)
		vc.Stop()
	} else {
		walk()
	}
	return per
}

// walkConcurrent drives each path from its own tracked goroutine on a
// fresh VirtualClock and returns the global timestamped event stream.
func walkConcurrent(topo propTopology, profile Profile, s propSchedule) []string {
	vc := NewVirtualClock()
	defer vc.Stop()
	links := make([]*Link, topo.links)
	for i := range links {
		links[i] = NewLinkClock(profile, s.Seed+int64(i), vc)
	}
	var mu sync.Mutex
	var global []string
	wg := NewWaitGroup(vc)
	vc.Run(func() {
		for pi := range topo.paths {
			pi := pi
			wg.Add(1)
			vc.Go(func() {
				defer wg.Done()
				for m := 0; m < 4; m++ {
					vc.Sleep(s.gap(pi, m))
					size := s.size(pi, m)
					for _, li := range topo.paths[pi] {
						d, err := links[li].Plan(size)
						mu.Lock()
						global = append(global, fmt.Sprintf("%v p%d m%d l%d %dB +%v %v",
							vc.Elapsed(), pi, m, li, size, d, err))
						mu.Unlock()
						if err != nil {
							break
						}
						vc.Sleep(d)
					}
				}
			})
		}
		wg.Wait()
	})
	return global
}

func TestClockOrderingProperty(t *testing.T) {
	prop := func(s propSchedule) bool {
		for _, topo := range propTopologies {
			realStreams := walkSerial(Real(), topo, crossClockProfile, s)
			virtStreams := walkSerial(NewVirtualClock(), topo, crossClockProfile, s)
			if !reflect.DeepEqual(realStreams, virtStreams) {
				t.Logf("%s: real/virtual per-link streams diverge\nreal: %v\nvirt: %v",
					topo.name, realStreams, virtStreams)
				return false
			}
			run1 := walkConcurrent(topo, fullProfile, s)
			run2 := walkConcurrent(topo, fullProfile, s)
			if !reflect.DeepEqual(run1, run2) {
				t.Logf("%s: virtual global order not reproducible\nrun1: %v\nrun2: %v",
					topo.name, run1, run2)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 8,
		Rand:     rand.New(rand.NewSource(1)), // reproducible schedules
	}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
