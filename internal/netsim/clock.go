// Discrete-event virtual time.
//
// Every simulated delay in this package is realized through a Clock. The
// real clock (Real) keeps the historical behavior: delays become actual
// sleeps, so benchmark wall-clock numbers stay comparable to the paper's
// milliseconds. The VirtualClock replaces sleeping with a discrete-event
// scheduler: goroutines that wait for a deadline park on an event heap,
// and virtual time jumps to the next event only when the simulated world
// has quiesced — no tracked goroutine is runnable. Minutes of simulated
// traffic then execute in milliseconds, and because exactly one event
// fires per quiescence, the interleaving of a seeded scenario is the same
// on every run.
//
// The quiescence rule is a token algebra:
//
//   - every tracked goroutine holds one busy token while it is runnable;
//   - parking on the clock (SleepUntil, AfterFunc deadlines) returns the
//     token to the scheduler; the scheduler re-mints it when it fires the
//     event, before waking the sleeper, so the count never dips spuriously;
//   - blocking on anything else (a message queue, a reply, a latch) must
//     go through the clock-aware Cond or WaitGroup in this package: the
//     waiter's token is released by Wait, and the signal travels through
//     the event queue, re-minting the token when the wake event fires.
//
// Crucially, the simulation is *serial*: at most one tracked goroutine is
// runnable at any moment. Go enqueues the new goroutine as an immediate
// event instead of starting it concurrently, and Cond wakeups are likewise
// deferred to the next quiescence — so every handoff (spawn, signal, timer)
// is serialized through the event queue's (time, seq) order, and a seeded
// scenario replays the exact same interleaving on every run.
//
// With that discipline the invariant holds: busy == 0 means no tracked
// goroutine can take another step until an event fires, so firing the
// earliest event is safe and deterministic. A pause with no token panics —
// it means an untracked goroutine (one not started via Go/Run) called into
// the simulated world, which would make quiescence detection unsound.
package netsim

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Clock is the time source of the simulated world. Two implementations
// exist, both in this package: Real() (wall clock, delays are slept) and
// VirtualClock (discrete-event, delays are scheduled). The unexported
// methods keep the token accounting private to this package's primitives.
type Clock interface {
	// Now returns the current (real or virtual) time.
	Now() time.Time
	// Sleep blocks for d on this clock's timeline.
	Sleep(d time.Duration)
	// SleepUntil blocks until deadline on this clock's timeline.
	SleepUntil(deadline time.Time)
	// SleepUntilCancel sleeps until deadline or until cancel closes,
	// whichever comes first; it reports whether the deadline was reached.
	SleepUntilCancel(deadline time.Time, cancel <-chan struct{}) bool
	// AfterFunc schedules fn to run once deadline d has passed. Under the
	// virtual clock fn runs as a tracked goroutine at the scheduled
	// instant; Stop before firing cancels it.
	AfterFunc(d time.Duration, fn func()) Timer
	// Go starts fn as a goroutine tracked by the clock's quiescence
	// accounting. All goroutines that block inside the simulated world
	// (transport queues, RMI waits) must be started this way — or with
	// VirtualClock.Run — when a virtual clock is in use.
	Go(fn func())

	// pause marks the calling tracked goroutine idle while it blocks on an
	// external condition; resume re-mints n tokens on behalf of waiters
	// being woken. Unexported: only Cond/WaitGroup may keep this balanced.
	pause()
	resume(n int)
}

// Timer is a cancellable deadline created by Clock.AfterFunc.
type Timer interface {
	// Stop cancels the timer; it reports whether it was still pending.
	Stop() bool
}

// ---------------------------------------------------------------------------
// Real clock

type realClock struct{}

var theRealClock Clock = realClock{}

// Real returns the wall-clock Clock: Now is time.Now and sleeps are real.
// It is the default everywhere, preserving pre-virtual-clock behavior.
func Real() Clock { return theRealClock }

func (realClock) Now() time.Time                { return time.Now() }
func (realClock) Sleep(d time.Duration)         { time.Sleep(d) }
func (realClock) SleepUntil(deadline time.Time) { SleepUntil(deadline) }

func (realClock) SleepUntilCancel(deadline time.Time, cancel <-chan struct{}) bool {
	d := time.Until(deadline)
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

func (realClock) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{t: time.AfterFunc(d, fn)}
}

func (realClock) Go(fn func()) { go fn() }
func (realClock) pause()       {}
func (realClock) resume(int)   {}

// ClockProvider is implemented by networks that carry a simulation clock
// (transport.MemNetwork). The RMI layer uses it to inherit the clock of
// the network it runs on, so no option threading is needed.
type ClockProvider interface {
	Clock() Clock
}

// ---------------------------------------------------------------------------
// Virtual clock

// VirtualBase is the fixed instant a VirtualClock starts at. It is a
// constant so that two runs of the same scenario — even in one process —
// produce identical timestamps (the determinism suite compares them
// byte for byte).
var VirtualBase = time.Date(2002, 7, 2, 0, 0, 0, 0, time.UTC) // ICDCS 2002

const (
	evPending = iota
	evFired
	evStopped
)

// vEvent is one scheduled wakeup: either a parked sleeper (wake != nil)
// or an AfterFunc callback (fn != nil).
type vEvent struct {
	at    time.Time
	seq   uint64 // schedule order: ties on at resolve deterministically
	state int
	wake  chan struct{}
	fn    func()
	// inline marks fn as safe to run on the scheduler goroutine itself:
	// short, non-parking (wake events). Everything else gets its own
	// goroutine, because a parked event callback would wedge the loop.
	inline bool
	index  int // heap position, -1 when popped
}

type eventHeap []*vEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*vEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// VirtualClock is the discrete-event Clock. Create with NewVirtualClock,
// run simulated work with Run (or Go), and Stop it when done. It is safe
// for concurrent use.
type VirtualClock struct {
	mu      sync.Mutex
	advance *sync.Cond // the scheduler waits here for quiescence
	now     time.Time
	busy    int // tracked goroutines currently runnable
	paused  int // tracked goroutines idle in Cond/WaitGroup waits
	seq     uint64
	events  eventHeap
	stopped bool
	held    int // Hold depth: dispatch is frozen while > 0

	advances uint64 // fired events, for reports and stuck detection
}

// NewVirtualClock returns a running virtual clock at VirtualBase.
func NewVirtualClock() *VirtualClock {
	c := &VirtualClock{now: VirtualBase}
	c.advance = sync.NewCond(&c.mu)
	go c.schedule()
	return c
}

// Hold freezes event dispatch: Go, AfterFunc, and wake events may still
// be enqueued, but none fire until a matching Release. World builders use
// this to construct a scenario from an untracked goroutine — sites whose
// construction spawns tracked goroutines with their own timers (consensus
// election loops, say) would otherwise start advancing virtual time in a
// real-time race with the rest of construction, making the scenario
// body's start time (and thus the entire schedule) nondeterministic.
// Hold before the first spawn, Release after the body is enqueued.
func (c *VirtualClock) Hold() {
	c.mu.Lock()
	c.held++
	c.mu.Unlock()
}

// Release undoes one Hold, resuming dispatch when the last hold clears.
// Releasing an unheld clock is a no-op.
func (c *VirtualClock) Release() {
	c.mu.Lock()
	if c.held > 0 {
		c.held--
		if c.held == 0 && c.busy == 0 {
			c.advance.Signal()
		}
	}
	c.mu.Unlock()
}

// Stop shuts the scheduler down. Pending sleepers are woken (their
// deadline is treated as reached) so tracked goroutines can drain.
func (c *VirtualClock) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	for _, ev := range c.events {
		if ev.state == evPending && ev.wake != nil {
			ev.state = evFired
			close(ev.wake)
		}
	}
	c.events = nil
	c.advance.Broadcast()
	c.mu.Unlock()
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Elapsed returns how much virtual time has passed since VirtualBase.
func (c *VirtualClock) Elapsed() time.Duration {
	return c.Now().Sub(VirtualBase)
}

// Advances returns how many events have fired — a proxy for simulation
// progress used by capacity reports and the stuck dump.
func (c *VirtualClock) Advances() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.advances
}

// Sleep blocks the calling tracked goroutine for d of virtual time.
func (c *VirtualClock) Sleep(d time.Duration) { c.SleepUntil(c.Now().Add(d)) }

// SleepUntil parks the calling tracked goroutine until virtual time
// reaches deadline. There is no spin tail: the slack path of the real
// SleepUntil is bypassed entirely — waking is an exact event.
//
// A deadline at or before the current instant still parks: the event fires
// on the next quiescence without advancing time. This is deliberate — it
// serializes same-instant wakeups (e.g. two messages delivered at the same
// virtual nanosecond) through the event queue in schedule order, which is
// what makes burst interleavings reproducible.
func (c *VirtualClock) SleepUntil(deadline time.Time) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	ev := c.parkLocked(deadline)
	c.mu.Unlock()
	<-ev.wake
}

// SleepUntilCancel sleeps to the deadline and reports false when cancel
// was closed by then. Unlike the real clock, it does NOT wake early on
// cancellation: selecting on a raw channel would unpark the sleeper
// concurrently with the canceller — two runnable tracked goroutines, and
// the serial-simulation determinism guarantee gone. Virtual time is free,
// so sleeping out the remainder costs nothing, and both the close and the
// wake happen at deterministic points of the event order.
func (c *VirtualClock) SleepUntilCancel(deadline time.Time, cancel <-chan struct{}) bool {
	cancelled := func() bool {
		if cancel == nil {
			return false
		}
		select {
		case <-cancel:
			return true
		default:
			return false
		}
	}
	if cancelled() {
		return false
	}
	c.SleepUntil(deadline)
	return !cancelled()
}

// parkLocked registers a sleeper event and releases the caller's token.
func (c *VirtualClock) parkLocked(deadline time.Time) *vEvent {
	if c.busy <= 0 {
		c.mu.Unlock() // the panic must not wedge Stop/Now behind the lock
		panic("netsim: VirtualClock.SleepUntil from an untracked goroutine (start it with Clock.Go or VirtualClock.Run)")
	}
	c.seq++
	ev := &vEvent{at: deadline, seq: c.seq, wake: make(chan struct{})}
	heap.Push(&c.events, ev)
	c.busy--
	if c.busy == 0 && !c.tryFireNextLocked(true) {
		c.advance.Signal()
	}
	return ev
}

type virtualTimer struct {
	c  *VirtualClock
	ev *vEvent
}

func (t virtualTimer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if t.ev.state != evPending {
		return false
	}
	t.ev.state = evStopped
	return true
}

// AfterFunc schedules fn at now+d. fn runs as a tracked goroutine when
// the event fires; timers that are stopped first never consume a token.
func (c *VirtualClock) AfterFunc(d time.Duration, fn func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	ev := &vEvent{at: c.now.Add(d), seq: c.seq, fn: fn}
	heap.Push(&c.events, ev)
	if c.busy == 0 {
		c.advance.Signal()
	}
	return virtualTimer{c: c, ev: ev}
}

// Go starts fn as a tracked goroutine. It does not start fn concurrently
// with the caller: the spawn is enqueued as an immediate event, so fn takes
// its first step only when the world next quiesces. This is the rule that
// keeps the simulation serial — at most one tracked goroutine is ever
// runnable — which in turn makes every interleaving a deterministic
// function of the event queue's (time, seq) order.
func (c *VirtualClock) Go(fn func()) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		go fn() // the simulation is over; run untracked so teardown can drain
		return
	}
	c.seq++
	ev := &vEvent{at: c.now, seq: c.seq, fn: fn}
	heap.Push(&c.events, ev)
	if c.busy == 0 {
		c.advance.Signal()
	}
	c.mu.Unlock()
}

// Run executes fn as a tracked goroutine and blocks (in real time) until
// it returns. It is the entry point for driving simulated work from an
// untracked goroutine — a test's main goroutine, typically.
func (c *VirtualClock) Run(fn func()) {
	done := make(chan struct{})
	c.Go(func() {
		defer close(done)
		fn()
	})
	<-done
}

func (c *VirtualClock) exitBusy() {
	c.mu.Lock()
	c.busy--
	if c.busy == 0 && !c.tryFireNextLocked(true) {
		c.advance.Signal()
	}
	c.mu.Unlock()
}

func (c *VirtualClock) pause() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock() // accounting no longer matters; let teardown drain
		return
	}
	if c.busy <= 0 {
		c.mu.Unlock()
		panic("netsim: clock-aware wait from an untracked goroutine (start it with Clock.Go or VirtualClock.Run)")
	}
	c.busy--
	c.paused++
	// The pauser still holds its Cond's lock here (Wait's contract), so
	// inline wake events — whose callbacks take a Cond lock — must not
	// fire on this goroutine; they fall back to the scheduler.
	if c.busy == 0 && !c.tryFireNextLocked(false) {
		c.advance.Signal()
	}
	c.mu.Unlock()
}

func (c *VirtualClock) resume(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.busy += n
	c.paused -= n
	c.mu.Unlock()
}

// scheduleWake enqueues an immediate event that re-mints one waiter token
// and signals sc, waking exactly one Cond waiter at the next quiescence.
// Deferring the wakeup through the event queue (rather than resuming the
// waiter inline) is what keeps signaler and waiter from ever being runnable
// at once — see Go. The event takes sc's lock before signalling so it can
// never slip between a waiter's token release and its arrival in sc.Wait.
// Returns false when the clock is stopped (the caller falls back to an
// inline wake so teardown cannot lose signals).
func (c *VirtualClock) scheduleWake(sc *sync.Cond) bool {
	return c.scheduleWakeAt(sc, time.Time{})
}

// scheduleWakeAt is scheduleWake with an explicit fire time: the waiter
// wakes when virtual time reaches at (immediately if at is zero or in the
// past). Timed wakes let a producer that already knows a delivery deadline
// wake its consumer in ONE event instead of an immediate wake followed by
// a re-park — at fleet scale that halves the event count per message.
func (c *VirtualClock) scheduleWakeAt(sc *sync.Cond, at time.Time) bool {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return false
	}
	if at.Before(c.now) {
		at = c.now
	}
	c.seq++
	ev := &vEvent{at: at, seq: c.seq, inline: true, fn: func() {
		sc.L.Lock()
		c.resume(1)
		sc.Signal()
		sc.L.Unlock()
	}}
	heap.Push(&c.events, ev)
	if c.busy == 0 {
		c.advance.Signal()
	}
	c.mu.Unlock()
	return true
}

// tryFireNextLocked pops and fires the earliest pending event if the world
// is quiescent. Called with c.mu held; may release and reacquire it.
//
// This is the serialization point shared by the scheduler goroutine and
// tail dispatch: a tracked goroutine whose park brought busy to zero fires
// the successor event itself, handing the token straight to the wakee.
// That saves the bounce through the scheduler goroutine — one goroutine
// switch per event instead of two, which is the difference between a
// thousand-site run fitting its wall budget under the race detector or
// not. Event order is identical either way: whoever fires always takes
// the heap head at a quiescent instant.
//
// allowLocking gates inline wake events, whose callbacks take the target
// Cond's lock: a goroutine pausing inside Cond.Wait still holds its own
// Cond lock, so it must leave those to the scheduler (a waiter arriving
// while a wake for the same Cond is pending would deadlock otherwise).
func (c *VirtualClock) tryFireNextLocked(allowLocking bool) bool {
	if c.stopped || c.busy != 0 || c.held > 0 {
		return false
	}
	// Drop cancelled timers lazily.
	for len(c.events) > 0 && c.events[0].state == evStopped {
		heap.Pop(&c.events)
	}
	if len(c.events) == 0 {
		return false
	}
	if c.events[0].inline && !allowLocking {
		return false
	}
	ev := heap.Pop(&c.events).(*vEvent)
	if ev.at.After(c.now) {
		c.now = ev.at
	}
	ev.state = evFired
	c.advances++
	c.busy++ // the token the wakee (or callback) will run on
	switch {
	case ev.wake != nil:
		close(ev.wake)
	case ev.inline:
		// Run wake events on the firing goroutine: they only re-mint a
		// token and signal, so no goroutine spawn is needed — a large
		// saving when thousands of sites signal queues constantly.
		fn := ev.fn
		c.mu.Unlock()
		fn()
		c.mu.Lock()
		c.busy-- // the event's own token; the wakee keeps the minted one
		if c.busy == 0 {
			// The wakee already parked again (or exited) while we ran the
			// callback; hand the next event to the scheduler.
			c.advance.Signal()
		}
	default:
		fn := ev.fn
		c.mu.Unlock()
		go func() {
			defer c.exitBusy()
			fn()
		}()
		c.mu.Lock()
	}
	return true
}

// schedule is the event loop of last resort: whenever the world quiesces
// (busy == 0) with an event nobody tail-dispatched, it fires exactly one —
// the earliest by (time, schedule order) — and waits for quiescence again.
// Firing one event at a time serializes same-instant wakeups in a
// deterministic order, which is what makes a seeded thousand-site scenario
// reproduce bit-identically.
func (c *VirtualClock) schedule() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.stopped {
			return
		}
		if c.tryFireNextLocked(true) {
			continue
		}
		c.advance.Wait()
	}
}

// Snapshot describes the clock's state for debugging stuck scenarios.
func (c *VirtualClock) Snapshot() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("vclock: now=%s busy=%d paused=%d events=%d advances=%d stopped=%v held=%d",
		c.now.Sub(VirtualBase), c.busy, c.paused, len(c.events), c.advances, c.stopped, c.held)
}

var _ Clock = (*VirtualClock)(nil)

// ---------------------------------------------------------------------------
// Clock-aware blocking primitives

// Cond is a condition variable whose waiters count as idle under a
// VirtualClock. Semantics mirror sync.Cond: Wait must be called with L
// held, Signal/Broadcast with L held too (this is stricter than
// sync.Cond, and required: the waiter bookkeeping lives under L).
//
// Under a virtual clock a wakeup is not delivered inline: Signal/Broadcast
// enqueue one wake event per waiter, and each event re-mints the waiter's
// token when it fires — after the signaler itself has parked or exited.
// Waiters must therefore re-check their predicate in a loop (Mesa
// semantics), which all callers in this codebase do anyway.
type Cond struct {
	clock   Clock
	c       sync.Cond
	waiting int
}

// NewCond returns a Cond bound to clock whose lock is l.
func NewCond(clock Clock, l sync.Locker) *Cond {
	cd := &Cond{clock: clock}
	cd.c.L = l
	return cd
}

// Wait atomically releases the lock (and, under a virtual clock, the
// caller's busy token) and blocks until woken.
func (cd *Cond) Wait() {
	cd.waiting++
	cd.clock.pause()
	cd.c.Wait()
}

// Signal wakes one waiter. Under a virtual clock the wake is deferred
// through the event queue (the waiter runs at the next quiescence, after
// the signaler has parked or exited); under the real clock it is an
// ordinary inline signal.
func (cd *Cond) Signal() {
	if vc, ok := cd.clock.(*VirtualClock); ok {
		if cd.waiting == 0 {
			// No logical waiter. The underlying sync.Cond may still hold
			// goroutines parked for already-scheduled wake events; a raw
			// Signal here would wake one before its event re-mints its
			// token, so it must NOT fall through.
			return
		}
		if vc.scheduleWake(&cd.c) {
			cd.waiting--
			return
		}
		// Clock stopped: inline fallback so teardown cannot lose the wake.
		cd.waiting--
		cd.clock.resume(1)
		cd.c.Signal()
		return
	}
	if cd.waiting > 0 {
		cd.waiting--
	}
	cd.c.Signal()
}

// SignalAt wakes one waiter when the clock reaches at. Under a virtual
// clock the wake event is placed directly at that instant, so a consumer
// waiting for an item with a known ready time needs no second sleep;
// under the real clock it degenerates to an immediate Signal and the
// caller is expected to sleep out any remaining delay itself (the usual
// pop-then-SleepUntil idiom, which both clocks support).
func (cd *Cond) SignalAt(at time.Time) {
	if cd.waiting > 0 {
		if vc, ok := cd.clock.(*VirtualClock); ok && vc.scheduleWakeAt(&cd.c, at) {
			cd.waiting--
			return
		}
	}
	cd.Signal()
}

// Broadcast wakes all waiters. Under a virtual clock each waiter gets its
// own wake event, so even a broadcast releases them one quiescence at a
// time in deterministic order — the underlying sync.Cond must NOT be
// broadcast inline in that case, or waiters would wake before their wake
// event re-mints their token and run untracked.
func (cd *Cond) Broadcast() {
	if vc, ok := cd.clock.(*VirtualClock); ok {
		for cd.waiting > 0 && vc.scheduleWake(&cd.c) {
			cd.waiting--
		}
		if cd.waiting == 0 {
			return // every wakeup travels through its scheduled event
		}
		// scheduleWake refused: the clock stopped mid-loop. Fall through to
		// an inline wake so teardown cannot lose the remainder.
	}
	if cd.waiting > 0 {
		cd.clock.resume(cd.waiting)
		cd.waiting = 0
	}
	cd.c.Broadcast()
}

// WaitGroup is a sync.WaitGroup whose Wait counts as idle under a
// VirtualClock — a tracked goroutine can wait for others to finish
// without wedging the event scheduler.
type WaitGroup struct {
	mu   sync.Mutex
	cond *Cond
	n    int
}

// NewWaitGroup returns a WaitGroup bound to clock.
func NewWaitGroup(clock Clock) *WaitGroup {
	w := &WaitGroup{}
	w.cond = NewCond(clock, &w.mu)
	return w
}

// Add adds delta to the counter, waking waiters when it reaches zero.
func (w *WaitGroup) Add(delta int) {
	w.mu.Lock()
	w.n += delta
	if w.n < 0 {
		w.mu.Unlock()
		panic("netsim: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.cond.Broadcast()
	}
	w.mu.Unlock()
}

// Done decrements the counter.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks until the counter is zero.
func (w *WaitGroup) Wait() {
	w.mu.Lock()
	for w.n > 0 {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// Yield gives other runnable goroutines the processor — a plain
// runtime.Gosched, exposed here so simulation code does not need to
// import runtime alongside netsim.
func Yield() { runtime.Gosched() }
