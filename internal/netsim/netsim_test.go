package netsim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestTransmitTime(t *testing.T) {
	cases := []struct {
		name string
		p    Profile
		size int
		want time.Duration
	}{
		{"infinite bandwidth", Profile{BandwidthBps: 0}, 1 << 20, 0},
		{"zero size", Profile{BandwidthBps: 1000}, 0, 0},
		{"one KB at 1KB/s", Profile{BandwidthBps: 1000}, 1000, time.Second},
		{"10Mbit frame", LAN10, 1250, time.Millisecond}, // 1250B at 1.25MB/s
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.TransmitTime(tc.size); got != tc.want {
				t.Fatalf("TransmitTime(%d) = %v, want %v", tc.size, got, tc.want)
			}
		})
	}
}

func TestPlanLatencyDominatesSmallMessages(t *testing.T) {
	l := NewLink(LAN10, 1)
	d, err := l.Plan(64)
	if err != nil {
		t.Fatal(err)
	}
	min := LAN10.Latency
	max := LAN10.Latency + LAN10.PerMessageOverhead + 2*time.Millisecond
	if d < min || d > max {
		t.Fatalf("small-message delay %v outside [%v, %v]", d, min, max)
	}
}

func TestPlanSerializesOnTheWire(t *testing.T) {
	// Two back-to-back 1 MB messages on a thin link: the second must wait
	// for the first transmission to finish.
	p := Profile{Name: "thin", Latency: 0, BandwidthBps: 1 << 20}
	l := NewLink(p, 1)
	d1, err := l.Plan(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := l.Plan(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if d2 < d1+p.TransmitTime(1<<20)/2 {
		t.Fatalf("second message did not queue behind first: d1=%v d2=%v", d1, d2)
	}
}

func TestPlanDisconnected(t *testing.T) {
	l := NewLink(Loopback, 1)
	l.SetDown(true)
	if !l.Down() {
		t.Fatal("link should report down")
	}
	if _, err := l.Plan(10); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("want ErrDisconnected, got %v", err)
	}
	l.SetDown(false)
	if _, err := l.Plan(10); err != nil {
		t.Fatalf("reconnected link should transmit: %v", err)
	}
	s := l.Stats()
	if s.Disconnected != 1 || s.Messages != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestPlanLoss(t *testing.T) {
	p := Profile{Name: "lossy", LossRate: 1.0}
	l := NewLink(p, 1)
	if _, err := l.Plan(1); !errors.Is(err, ErrDropped) {
		t.Fatalf("want ErrDropped, got %v", err)
	}
	if s := l.Stats(); s.Dropped != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestSetProfileTakesEffect(t *testing.T) {
	l := NewLink(Loopback, 1)
	l.SetProfile(WAN)
	if got := l.Profile().Name; got != "wan" {
		t.Fatalf("profile after switch: %q", got)
	}
	d, err := l.Plan(64)
	if err != nil {
		t.Fatal(err)
	}
	if d < WAN.Latency {
		t.Fatalf("WAN delay %v below propagation latency %v", d, WAN.Latency)
	}
}

func TestStatsAccumulate(t *testing.T) {
	l := NewLink(Loopback, 1)
	for i := 0; i < 5; i++ {
		if _, err := l.Plan(100); err != nil {
			t.Fatal(err)
		}
	}
	s := l.Stats()
	if s.Messages != 5 || s.Bytes != 500 {
		t.Fatalf("stats: %+v", s)
	}
}

// Property: planned arrivals are monotonically non-decreasing (FIFO),
// regardless of message sizes and jitter.
func TestQuickFIFO(t *testing.T) {
	f := func(sizes []uint16, seed int64) bool {
		p := Profile{
			Name:         "jittery",
			Latency:      time.Millisecond,
			Jitter:       3 * time.Millisecond,
			BandwidthBps: 1 << 20,
		}
		l := NewLink(p, seed)
		start := time.Now()
		var lastArrival time.Duration = -1
		// Plan computes delays relative to its own internal time.Now(),
		// which runs a hair after the one captured here, so allow a small
		// measurement epsilon — far below the 3ms jitter that an ordering
		// bug would exhibit.
		const epsilon = time.Millisecond
		for _, s := range sizes {
			now := time.Since(start)
			d, err := l.Plan(int(s))
			if err != nil {
				return false
			}
			arrival := now + d
			if arrival < lastArrival-epsilon {
				return false
			}
			if arrival > lastArrival {
				lastArrival = arrival
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: delay always at least latency + overhead, and grows with size on
// a bandwidth-limited link.
func TestQuickDelayBounds(t *testing.T) {
	f := func(size uint16) bool {
		l := NewLink(LAN10, 42)
		d, err := l.Plan(int(size))
		if err != nil {
			return false
		}
		return d >= LAN10.Latency+LAN10.PerMessageOverhead
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
