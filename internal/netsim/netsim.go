// Package netsim models the network links between OBIWAN sites.
//
// The paper's evaluation ran on a 10 Mb/s LAN connecting Pentium II/III
// machines, where a null remote method invocation cost about 2.8 ms. We do
// not have that testbed, so this package provides its synthetic equivalent:
// a serial link with configurable propagation latency, transmission
// bandwidth, jitter, and loss, plus explicit disconnection — the defining
// event of the paper's mobile scenario.
//
// A Link converts a message size into a delivery delay using the classic
// store-and-forward model: a message departs when the link is next free
// (messages serialize on the wire), occupies the link for size/bandwidth,
// and arrives one propagation latency (plus jitter) later. Arrival times are
// clamped monotonic so FIFO ordering is preserved even with jitter, matching
// TCP semantics.
//
// Delays are realized as real sleeps by the transport layer, so benchmark
// wall-clock numbers are directly comparable to the paper's milliseconds.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// ErrDisconnected is returned for sends over a link that is administratively
// down. In the paper's terms this is a (voluntary or involuntary) network
// disconnection that the application must survive.
var ErrDisconnected = errors.New("netsim: link disconnected")

// ErrDropped is returned when the loss model drops a message. The transport
// maps this to a transmission failure.
var ErrDropped = errors.New("netsim: message dropped")

// Profile describes the static quality of service of a link.
type Profile struct {
	// Name identifies the profile in logs and benchmark rows.
	Name string
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Jitter is the maximum extra random delay added per message.
	Jitter time.Duration
	// BandwidthBps is the transmission rate in bytes per second.
	// Zero means infinite bandwidth (no transmission delay).
	BandwidthBps int64
	// LossRate is the probability in [0,1) that a message is dropped.
	LossRate float64
	// PerMessageOverhead is a fixed per-message cost modelling framing,
	// kernel crossings, and protocol processing at both ends.
	PerMessageOverhead time.Duration
}

// String returns a compact human-readable description of the profile.
func (p Profile) String() string {
	return fmt.Sprintf("%s(lat=%v bw=%dB/s jit=%v loss=%.2g)",
		p.Name, p.Latency, p.BandwidthBps, p.Jitter, p.LossRate)
}

// TransmitTime returns how long the link is occupied sending size bytes.
func (p Profile) TransmitTime(size int) time.Duration {
	if p.BandwidthBps <= 0 || size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / float64(p.BandwidthBps) * float64(time.Second))
}

// Predefined profiles. LAN10 is calibrated to the paper's testbed: the
// round trip of a small RMI lands at ≈2.8 ms (2×1.25 ms propagation plus
// per-message overhead and the frame's transmission time at 10 Mbit/s).
var (
	// Loopback models two processes on one machine: negligible latency,
	// effectively infinite bandwidth.
	Loopback = Profile{Name: "loopback", Latency: 5 * time.Microsecond, BandwidthBps: 0}

	// LAN10 is the paper's 10 Mb/s Ethernet regime.
	LAN10 = Profile{
		Name:               "lan10",
		Latency:            1250 * time.Microsecond,
		BandwidthBps:       10_000_000 / 8, // 10 Mbit/s
		PerMessageOverhead: 100 * time.Microsecond,
	}

	// WAN models a wide-area Internet path of the era: higher latency,
	// moderate bandwidth, a little jitter.
	WAN = Profile{
		Name:               "wan",
		Latency:            40 * time.Millisecond,
		Jitter:             5 * time.Millisecond,
		BandwidthBps:       1_000_000 / 8, // 1 Mbit/s
		PerMessageOverhead: 200 * time.Microsecond,
	}

	// Wireless models the info-appliance link the paper motivates (GPRS-era
	// wireless): high latency, thin, lossy.
	Wireless = Profile{
		Name:               "wireless",
		Latency:            150 * time.Millisecond,
		Jitter:             30 * time.Millisecond,
		BandwidthBps:       56_000 / 8,
		LossRate:           0.01,
		PerMessageOverhead: 1 * time.Millisecond,
	}
)

// Stats accumulates per-link traffic counters.
type Stats struct {
	Messages     uint64
	Bytes        uint64
	Dropped      uint64
	Disconnected uint64 // sends rejected while down
}

// Link is one direction of a point-to-point connection between two sites.
// The zero value is not usable; create links with NewLink. Link is safe for
// concurrent use.
type Link struct {
	mu       sync.Mutex
	clock    Clock
	profile  Profile
	rng      *rand.Rand
	down     bool
	sched    *FaultSchedule
	nextFree time.Time // when the wire finishes the current transmission
	lastArr  time.Time // monotonic arrival clamp (FIFO)
	stats    Stats
}

// NewLink returns a link with the given profile on the real clock. Seed
// makes the loss and jitter stream deterministic for reproducible
// experiments.
func NewLink(p Profile, seed int64) *Link {
	return NewLinkClock(p, seed, Real())
}

// NewLinkClock is NewLink on an explicit clock: the occupancy model reads
// "now" from it, so under a VirtualClock the link serializes messages on
// the virtual timeline.
func NewLinkClock(p Profile, seed int64, c Clock) *Link {
	return &Link{clock: c, profile: p, rng: rand.New(rand.NewSource(seed))}
}

// Profile returns the link's current profile.
func (l *Link) Profile() Profile {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.profile
}

// SetProfile switches the link's quality of service at run time — the
// "significant and rapid changes in the quality of service of the underlying
// network" the paper targets.
func (l *Link) SetProfile(p Profile) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.profile = p
}

// SetDown marks the link administratively down (true) or up (false).
func (l *Link) SetDown(down bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.down = down
}

// Down reports whether the link is disconnected.
func (l *Link) Down() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}

// SetSchedule attaches a fault schedule to the link (nil detaches). The
// schedule is consulted on every subsequent send attempt, before the loss
// model, and may take the link down, bring it back, drop the message, or
// delay it. A schedule must be attached to at most one link.
func (l *Link) SetSchedule(s *FaultSchedule) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sched = s
}

// Schedule returns the attached fault schedule, or nil.
func (l *Link) Schedule() *FaultSchedule {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sched
}

// Stats returns a snapshot of the link's counters.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Plan computes the delivery delay for a message of size bytes sent now.
// It updates the link occupancy model, so each call represents one real
// transmission. Plan returns ErrDisconnected while the link is down and
// ErrDropped when the loss model discards the message.
func (l *Link) Plan(size int) (time.Duration, error) {
	now := l.clock.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	var extra time.Duration
	if l.sched != nil {
		d := l.sched.step(l.down)
		if d.setDown {
			l.down = d.down
		}
		if d.reject {
			l.stats.Disconnected++
			return 0, ErrDisconnected
		}
		if d.drop {
			l.stats.Dropped++
			return 0, ErrDropped
		}
		extra = d.extra
	}
	if l.down {
		l.stats.Disconnected++
		return 0, ErrDisconnected
	}
	if l.profile.LossRate > 0 && l.rng.Float64() < l.profile.LossRate {
		l.stats.Dropped++
		return 0, ErrDropped
	}
	depart := now
	if l.nextFree.After(depart) {
		depart = l.nextFree
	}
	depart = depart.Add(l.profile.TransmitTime(size))
	l.nextFree = depart

	arrive := depart.Add(l.profile.Latency + l.profile.PerMessageOverhead + extra)
	if j := l.profile.Jitter; j > 0 {
		arrive = arrive.Add(time.Duration(l.rng.Int63n(int64(j) + 1)))
	}
	// FIFO clamp: never deliver before a previously planned message.
	if arrive.Before(l.lastArr) {
		arrive = l.lastArr
	}
	l.lastArr = arrive

	l.stats.Messages++
	l.stats.Bytes += uint64(size)
	return arrive.Sub(now), nil
}

// sleepSlack is how far ahead of a deadline SleepUntil switches from the
// kernel sleep (which overshoots by roughly a timer tick on coarse-clock
// hosts) to a yield loop. Two milliseconds covers the worst observed
// overshoot while bounding the spin cost per message.
const sleepSlack = 2 * time.Millisecond

// napGranularity is a conservative bound on the true cost of a short
// kernel sleep: a coarse-timer host rounds any nap up to roughly one
// tick (≈1 ms observed). While more than this remains until the
// deadline, SleepUntil can nap without risk of overshooting; the final
// stretch below it must be yield-spun, because no kernel sleep can land
// inside a tick. The spin is thereby time-capped at about one tick per
// message — a coarse host cannot spin longer, and a fine-grained host
// exits the loop almost immediately. A VirtualClock bypasses this path
// entirely: its wakeups are exact events with no spin at all.
const napGranularity = 1500 * time.Microsecond

// spinFallbackSleep is the nap requested while napGranularity still
// remains; the kernel rounds it up, which is fine from that distance.
const spinFallbackSleep = 50 * time.Microsecond

// SleepUntil blocks until the deadline with sub-tick precision: a kernel
// sleep for the bulk of the wait, naps while a safe margin remains, then
// a yield loop for the final sub-tick stretch. The simulated link model
// depends on this precision — a plain time.Sleep overshoots by a kernel
// timer tick (≈1 ms), which would double a 2.8 ms RPC round trip.
func SleepUntil(deadline time.Time) {
	if d := time.Until(deadline); d > sleepSlack {
		time.Sleep(d - sleepSlack)
	}
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return
		}
		if remaining > napGranularity {
			// Even rounded up to a whole tick, the nap cannot carry us
			// past the deadline from this far out.
			time.Sleep(spinFallbackSleep)
		} else {
			runtime.Gosched()
		}
	}
}
