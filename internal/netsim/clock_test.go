package netsim

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestVirtualClockFiresInTimeOrder checks that sleepers wake in deadline
// order regardless of the order they went to sleep in, and that virtual
// time lands exactly on each deadline (no tick overshoot).
func TestVirtualClockFiresInTimeOrder(t *testing.T) {
	c := NewVirtualClock()
	defer c.Stop()

	var mu sync.Mutex
	var order []string
	delays := map[string]time.Duration{
		"c": 30 * time.Millisecond,
		"a": 10 * time.Millisecond,
		"b": 20 * time.Millisecond,
	}
	c.Run(func() {
		// The spawner must not hold its token while the sleepers park, or
		// time could never advance: it waits through the clock-aware group.
		done := NewWaitGroup(c)
		for name, d := range delays {
			done.Add(1)
			name, d := name, d
			c.Go(func() {
				defer done.Done()
				c.Sleep(d)
				mu.Lock()
				order = append(order, fmt.Sprintf("%s@%v", name, c.Now().Sub(VirtualBase)))
				mu.Unlock()
			})
		}
		done.Wait()
	})

	got := strings.Join(order, " ")
	want := "a@10ms b@20ms c@30ms"
	if got != want {
		t.Fatalf("wake order %q, want %q", got, want)
	}
	if e := c.Elapsed(); e != 30*time.Millisecond {
		t.Fatalf("elapsed %v, want 30ms", e)
	}
}

// TestVirtualClockWallClockIndependent proves minutes of virtual time cost
// almost no wall time.
func TestVirtualClockWallClockIndependent(t *testing.T) {
	c := NewVirtualClock()
	defer c.Stop()
	start := time.Now()
	c.Run(func() { c.Sleep(10 * time.Minute) })
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("10 virtual minutes took %v of wall time", wall)
	}
	if e := c.Elapsed(); e != 10*time.Minute {
		t.Fatalf("elapsed %v, want 10m", e)
	}
}

func TestVirtualAfterFunc(t *testing.T) {
	c := NewVirtualClock()
	defer c.Stop()
	var mu sync.Mutex
	var fired []time.Duration
	c.Run(func() {
		done := NewWaitGroup(c)
		done.Add(1)
		c.AfterFunc(5*time.Millisecond, func() {
			mu.Lock()
			fired = append(fired, c.Now().Sub(VirtualBase))
			mu.Unlock()
			done.Done()
		})
		stopped := c.AfterFunc(time.Millisecond, func() {
			t.Error("stopped timer fired")
		})
		if !stopped.Stop() {
			t.Error("Stop on pending timer reported not pending")
		}
		if stopped.Stop() {
			t.Error("second Stop reported pending")
		}
		done.Wait()
	})
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 1 || fired[0] != 5*time.Millisecond {
		t.Fatalf("AfterFunc fired at %v, want [5ms]", fired)
	}
}

func TestVirtualSleepUntilCancel(t *testing.T) {
	c := NewVirtualClock()
	defer c.Stop()
	c.Run(func() {
		// Uncancelled: deadline reached.
		if !c.SleepUntilCancel(c.Now().Add(time.Millisecond), nil) {
			t.Error("uncancelled sleep reported cancellation")
		}
		// Pre-cancelled: returns false without advancing time.
		cancel := make(chan struct{})
		close(cancel)
		before := c.Now()
		if c.SleepUntilCancel(c.Now().Add(time.Hour), cancel) {
			t.Error("cancelled sleep reported deadline")
		}
		if !c.Now().Equal(before) {
			t.Errorf("cancelled sleep advanced time by %v", c.Now().Sub(before))
		}
	})
}

// TestCondTransfersToken runs a producer/consumer pair over a clock-aware
// Cond: the consumer blocks on the queue (not the clock) while the producer
// sleeps virtual time between items. Without token transfer the clock would
// either wedge (consumer counted busy) or advance past a runnable consumer.
func TestCondTransfersToken(t *testing.T) {
	c := NewVirtualClock()
	defer c.Stop()

	var mu sync.Mutex
	cond := NewCond(c, &mu)
	var queue []int
	var got []int

	c.Run(func() {
		inner := NewWaitGroup(c)
		inner.Add(2)
		c.Go(func() { // consumer
			defer inner.Done()
			for i := 0; i < 3; i++ {
				mu.Lock()
				for len(queue) == 0 {
					cond.Wait()
				}
				v := queue[0]
				queue = queue[1:]
				mu.Unlock()
				got = append(got, v)
			}
		})
		c.Go(func() { // producer
			defer inner.Done()
			for i := 1; i <= 3; i++ {
				c.Sleep(time.Millisecond)
				mu.Lock()
				queue = append(queue, i)
				cond.Signal()
				mu.Unlock()
			}
		})
		inner.Wait()
	})

	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("consumed %v, want [1 2 3]", got)
	}
	if e := c.Elapsed(); e != 3*time.Millisecond {
		t.Fatalf("elapsed %v, want 3ms", e)
	}
}

func TestUntrackedGoroutinePanics(t *testing.T) {
	c := NewVirtualClock()
	defer c.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("SleepUntil from an untracked goroutine must panic")
		}
	}()
	c.Sleep(time.Millisecond) // not inside Run/Go
}

// TestVirtualDeterministicInterleaving runs a jittery fan-out twice and
// expects the exact same wakeup sequence: same-instant events must fire in
// schedule order, not goroutine-scheduler order.
func TestVirtualDeterministicInterleaving(t *testing.T) {
	run := func() string {
		c := NewVirtualClock()
		defer c.Stop()
		var mu sync.Mutex
		var log []string
		c.Run(func() {
			inner := NewWaitGroup(c)
			for i := 0; i < 16; i++ {
				inner.Add(1)
				i := i
				c.Go(func() {
					defer inner.Done()
					// Half the goroutines collide on the same deadlines.
					c.Sleep(time.Duration(i%8) * time.Millisecond)
					mu.Lock()
					log = append(log, fmt.Sprintf("%d@%v", i, c.Now().Sub(VirtualBase)))
					mu.Unlock()
				})
			}
			inner.Wait()
		})
		return strings.Join(log, " ")
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs diverged:\n%s\n%s", a, b)
	}
}

// TestRealClockImplementsClock exercises the real implementation through
// the interface so both paths share coverage.
func TestRealClockImplementsClock(t *testing.T) {
	c := Real()
	before := c.Now()
	c.Sleep(time.Millisecond)
	if c.Now().Sub(before) < time.Millisecond {
		t.Fatal("real Sleep returned early")
	}
	if !c.SleepUntilCancel(c.Now().Add(time.Millisecond), nil) {
		t.Fatal("real SleepUntilCancel missed its deadline")
	}
	cancel := make(chan struct{})
	close(cancel)
	if c.SleepUntilCancel(c.Now().Add(time.Hour), cancel) {
		t.Fatal("real SleepUntilCancel ignored cancellation")
	}
	fired := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("real AfterFunc never fired")
	}
}
