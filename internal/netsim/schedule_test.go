package netsim

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// plan sends n messages of one byte and returns the per-send errors.
func plan(l *Link, n int) []error {
	errs := make([]error, n)
	for i := range errs {
		_, errs[i] = l.Plan(1)
	}
	return errs
}

func TestScheduleDisconnectReconnectWindow(t *testing.T) {
	l := NewLink(Loopback, 1)
	s := NewFaultSchedule(
		FaultEvent{AtSend: 3, Action: ActDisconnect},
		FaultEvent{AtSend: 6, Action: ActReconnect},
	)
	l.SetSchedule(s)
	errs := plan(l, 8)
	for i, err := range errs {
		send := i + 1
		wantDown := send >= 3 && send < 6
		if wantDown && !errors.Is(err, ErrDisconnected) {
			t.Fatalf("send %d: want disconnected, got %v", send, err)
		}
		if !wantDown && err != nil {
			t.Fatalf("send %d: want success, got %v", send, err)
		}
	}
	if !s.Exhausted() {
		t.Fatal("schedule should be exhausted")
	}
	want := []FiredEvent{{ActDisconnect, 3}, {ActReconnect, 6}}
	if got := s.Trace(); !reflect.DeepEqual(got, want) {
		t.Fatalf("trace %v want %v", got, want)
	}
}

func TestScheduleDropIsOneShot(t *testing.T) {
	l := NewLink(Loopback, 1)
	l.SetSchedule(NewFaultSchedule(FaultEvent{AtSend: 2, Action: ActDrop}))
	errs := plan(l, 4)
	if errs[0] != nil || errs[2] != nil || errs[3] != nil {
		t.Fatalf("only send 2 may fail: %v", errs)
	}
	if !errors.Is(errs[1], ErrDropped) {
		t.Fatalf("send 2: want dropped, got %v", errs[1])
	}
	if st := l.Stats(); st.Dropped != 1 || st.Messages != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestScheduleDelayExtendsDelivery(t *testing.T) {
	base := Profile{Name: "flat", Latency: time.Millisecond}
	l := NewLink(base, 1)
	l.SetSchedule(NewFaultSchedule(
		FaultEvent{AtSend: 1, Action: ActDelay, Extra: 50 * time.Millisecond},
	))
	d1, err := l.Plan(1)
	if err != nil {
		t.Fatal(err)
	}
	if d1 < 51*time.Millisecond {
		t.Fatalf("delayed send took %v, want >= 51ms", d1)
	}
}

// TestScheduleRejectedSendsAdvanceTheClock: send attempts made while the
// link is down still count, so a reconnect keyed by send count is reachable
// by a retrying caller.
func TestScheduleRejectedSendsAdvanceTheClock(t *testing.T) {
	l := NewLink(Loopback, 1)
	s := NewFaultSchedule(
		FaultEvent{AtSend: 1, Action: ActDisconnect},
		FaultEvent{AtSend: 4, Action: ActReconnect},
	)
	l.SetSchedule(s)
	for i := 0; i < 3; i++ {
		if _, err := l.Plan(1); !errors.Is(err, ErrDisconnected) {
			t.Fatalf("send %d: want disconnected, got %v", i+1, err)
		}
	}
	if _, err := l.Plan(1); err != nil {
		t.Fatalf("send 4 after scripted reconnect: %v", err)
	}
	if s.Sends() != 4 {
		t.Fatalf("sends %d want 4", s.Sends())
	}
}

func TestScheduleElapsedKeyedEvent(t *testing.T) {
	l := NewLink(Loopback, 1)
	l.SetSchedule(NewFaultSchedule(
		FaultEvent{AtElapsed: 10 * time.Millisecond, Action: ActDisconnect},
	))
	if _, err := l.Plan(1); err != nil {
		t.Fatalf("before deadline: %v", err)
	}
	time.Sleep(15 * time.Millisecond)
	if _, err := l.Plan(1); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("after deadline: want disconnected, got %v", err)
	}
}

func TestRandomScheduleDeterministic(t *testing.T) {
	a := RandomSchedule(42, 100, 3, 5, 4)
	b := RandomSchedule(42, 100, 3, 5, 4)
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a.Events(), b.Events())
	}
	c := RandomSchedule(43, 100, 3, 5, 4)
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Fatal("different seeds produced identical schedules")
	}
	// Every disconnect is paired with a later reconnect, so the link always
	// comes back.
	depth := 0
	for _, ev := range a.Events() {
		switch ev.Action {
		case ActDisconnect:
			depth++
		case ActReconnect:
			depth--
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced outage events: depth %d", depth)
	}
}

// TestRandomScheduleTraceReplays: driving two identically seeded links with
// the same send sequence yields identical traces — the determinism contract
// the chaos suite relies on.
func TestRandomScheduleTraceReplays(t *testing.T) {
	run := func() []FiredEvent {
		l := NewLink(Loopback, 7)
		s := RandomSchedule(99, 30, 2, 4, 3)
		l.SetSchedule(s)
		for i := 0; i < 40; i++ {
			_, _ = l.Plan(16)
		}
		return s.Trace()
	}
	t1, t2 := run(), run()
	if len(t1) == 0 {
		t.Fatal("schedule never fired")
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("traces differ:\n%v\n%v", t1, t2)
	}
}
