package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// FaultSchedule scripts the failures of one link so that failure tests are
// reproducible instead of probabilistic. The paper's defining scenario —
// a mobile host disconnecting mid-session and reconnecting later — becomes
// a deterministic event list: "go down on the 5th send, come back on the
// 9th", rather than a loss rate that may or may not strike during a run.
//
// Events are keyed primarily by the link's send-attempt count (every Plan
// call, including ones rejected while down, advances the count), which is
// fully deterministic: the same sequence of sends fires the same events at
// the same points regardless of wall-clock scheduling. Events may instead
// be keyed by elapsed wall time since the schedule was attached; those are
// convenient for soak tests but only as deterministic as the host clock.
//
// A schedule records every event it fires. Comparing Trace outputs across
// runs is how the chaos suite asserts "same seed ⇒ same failure history".

// FaultAction is what a fired event does to the link.
type FaultAction uint8

const (
	// ActDisconnect takes the link down; subsequent sends (including the
	// triggering one) fail with ErrDisconnected until a reconnect.
	ActDisconnect FaultAction = iota + 1
	// ActReconnect brings the link back up.
	ActReconnect
	// ActDrop silently discards the triggering message (ErrDropped), like
	// a one-off loss event.
	ActDrop
	// ActDelay adds Extra to the triggering message's delivery time — a
	// transient congestion spike.
	ActDelay
)

func (a FaultAction) String() string {
	switch a {
	case ActDisconnect:
		return "disconnect"
	case ActReconnect:
		return "reconnect"
	case ActDrop:
		return "drop"
	case ActDelay:
		return "delay"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// FaultEvent is one scripted failure.
type FaultEvent struct {
	// AtSend fires the event when the link's send-attempt count reaches
	// this value (1-based: AtSend 1 affects the first send after attach).
	// Zero means the event is keyed by AtElapsed instead.
	AtSend uint64
	// AtElapsed fires the event once this much wall time has passed since
	// the schedule was attached (checked on each send attempt).
	AtElapsed time.Duration
	// Action is what happens.
	Action FaultAction
	// Extra is the added delivery delay for ActDelay.
	Extra time.Duration
}

// FiredEvent is one entry of a schedule's trace: which event fired and at
// which send-attempt count.
type FiredEvent struct {
	Action FaultAction
	AtSend uint64
}

func (f FiredEvent) String() string {
	return fmt.Sprintf("%s@%d", f.Action, f.AtSend)
}

// FaultSchedule holds scripted events for one link. Attach it with
// Link.SetSchedule (or transport.MemNetwork.SetFaultSchedule). A schedule
// must not be shared between links. FaultSchedule is safe for concurrent
// use.
type FaultSchedule struct {
	mu     sync.Mutex
	events []FaultEvent
	fired  []bool
	armed  bool
	start  time.Time // set on first send after attach
	sends  uint64
	trace  []FiredEvent
}

// NewFaultSchedule builds a schedule from scripted events. Send-keyed
// events are sorted by trigger point; ties fire in the given order.
func NewFaultSchedule(events ...FaultEvent) *FaultSchedule {
	evs := append([]FaultEvent(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool {
		// Elapsed-keyed events (AtSend 0) sort by elapsed time among
		// themselves and after send-keyed events with equal triggers.
		if evs[i].AtSend != evs[j].AtSend {
			if evs[i].AtSend == 0 || evs[j].AtSend == 0 {
				return evs[j].AtSend == 0
			}
			return evs[i].AtSend < evs[j].AtSend
		}
		return evs[i].AtElapsed < evs[j].AtElapsed
	})
	return &FaultSchedule{events: evs, fired: make([]bool, len(evs))}
}

// RandomSchedule generates a reproducible schedule from a seed: outages
// disconnect/reconnect pairs and drops single-message losses, all keyed by
// send count within [1, horizon]. Each outage lasts between 1 and maxOutage
// send attempts; the link is always reconnected by the end, so a persistent
// retrier is guaranteed to get through once the script runs out.
func RandomSchedule(seed int64, horizon uint64, outages, drops int, maxOutage uint64) *FaultSchedule {
	if horizon == 0 {
		horizon = 1
	}
	if maxOutage == 0 {
		maxOutage = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var events []FaultEvent
	for i := 0; i < outages; i++ {
		at := 1 + uint64(rng.Int63n(int64(horizon)))
		length := 1 + uint64(rng.Int63n(int64(maxOutage)))
		events = append(events,
			FaultEvent{AtSend: at, Action: ActDisconnect},
			FaultEvent{AtSend: at + length, Action: ActReconnect},
		)
	}
	for i := 0; i < drops; i++ {
		events = append(events, FaultEvent{
			AtSend: 1 + uint64(rng.Int63n(int64(horizon))), Action: ActDrop,
		})
	}
	return NewFaultSchedule(events...)
}

// Events returns a copy of the scripted events in firing order.
func (s *FaultSchedule) Events() []FaultEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]FaultEvent(nil), s.events...)
}

// Trace returns the events fired so far, in firing order. Two runs of the
// same scenario with the same seed must produce equal traces.
func (s *FaultSchedule) Trace() []FiredEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]FiredEvent(nil), s.trace...)
}

// Sends returns how many send attempts the schedule has observed.
func (s *FaultSchedule) Sends() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sends
}

// Exhausted reports whether every scripted event has fired.
func (s *FaultSchedule) Exhausted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range s.fired {
		if !f {
			return false
		}
	}
	return true
}

// decision is the aggregate effect of the events fired by one send attempt.
type decision struct {
	setDown  bool
	down     bool
	drop     bool
	extra    time.Duration
	reject   bool // link is down after applying events
	linkDown bool
}

// step advances the schedule by one send attempt and returns what should
// happen to the triggering message. linkDown is the link's current
// administrative state; the returned decision reports the new state.
func (s *FaultSchedule) step(linkDown bool) decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.armed {
		s.armed = true
		s.start = time.Now()
	}
	s.sends++
	d := decision{linkDown: linkDown}
	for i, ev := range s.events {
		if s.fired[i] {
			continue
		}
		triggered := false
		if ev.AtSend > 0 {
			triggered = s.sends >= ev.AtSend
		} else {
			triggered = time.Since(s.start) >= ev.AtElapsed
		}
		if !triggered {
			continue
		}
		s.fired[i] = true
		s.trace = append(s.trace, FiredEvent{Action: ev.Action, AtSend: s.sends})
		switch ev.Action {
		case ActDisconnect:
			d.setDown, d.down = true, true
			d.linkDown = true
		case ActReconnect:
			d.setDown, d.down = true, false
			d.linkDown = false
		case ActDrop:
			d.drop = true
		case ActDelay:
			d.extra += ev.Extra
		}
	}
	d.reject = d.linkDown
	return d
}
