// Package plot renders benchmark point series as self-contained SVG line
// charts, so `obiwan-bench -svg` regenerates the paper's figures as actual
// figures, not just tables. Stdlib only: the SVG is assembled textually.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one labelled curve.
type Series struct {
	Label  string
	Points []Point
}

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Chart describes one figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogX/LogY select log10 axes (every coordinate must be > 0).
	LogX, LogY bool
	Series     []Series
}

// Geometry constants (viewbox units).
const (
	chartW  = 720
	chartH  = 440
	marginL = 70
	marginR = 170 // room for the legend
	marginT = 40
	marginB = 55
)

// palette cycles for series strokes.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#17becf", "#7f7f7f", "#bcbd22", "#e377c2",
}

// SVG renders the chart. An error is returned when the data cannot be
// plotted (no points, or non-positive values on a log axis).
func SVG(c Chart) (string, error) {
	var xs, ys []float64
	for _, s := range c.Series {
		for _, p := range s.Points {
			if c.LogX && p.X <= 0 {
				return "", fmt.Errorf("plot: log-x axis with x=%v in %q", p.X, s.Label)
			}
			if c.LogY && p.Y <= 0 {
				return "", fmt.Errorf("plot: log-y axis with y=%v in %q", p.Y, s.Label)
			}
			xs = append(xs, xval(c, p.X))
			ys = append(ys, yval(c, p.Y))
		}
	}
	if len(xs) == 0 {
		return "", fmt.Errorf("plot: chart %q has no points", c.Title)
	}
	xmin, xmax := minMax(xs)
	ymin, ymax := minMax(ys)
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// A little headroom at the top.
	ymax += (ymax - ymin) * 0.05

	plotW := float64(chartW - marginL - marginR)
	plotH := float64(chartH - marginT - marginB)
	px := func(x float64) float64 { return marginL + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(chartH-marginB) - (y-ymin)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %d %d" font-family="sans-serif" font-size="12">`+"\n", chartW, chartH)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", chartW, chartH)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, chartH-marginB, chartW-marginR, chartH-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, chartH-marginB)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
		marginL+int(plotW/2), chartH-12, esc(axisLabel(c.XLabel, c.LogX)))
	fmt.Fprintf(&b, `<text x="16" y="%d" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		marginT+int(plotH/2), marginT+int(plotH/2), esc(axisLabel(c.YLabel, c.LogY)))

	// Ticks: five per axis, back-converted through the log transform.
	for i := 0; i <= 4; i++ {
		tx := xmin + (xmax-xmin)*float64(i)/4
		ty := ymin + (ymax-ymin)*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			px(tx), chartH-marginB, px(tx), chartH-marginB+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			px(tx), chartH-marginB+18, tick(c.LogX, tx))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-5, py(ty), marginL, py(ty))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			marginL-8, py(ty), tick(c.LogY, ty))
	}

	// Series.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		pts := append([]Point(nil), s.Points...)
		sort.Slice(pts, func(a, b int) bool { return pts[a].X < pts[b].X })
		var path strings.Builder
		for j, p := range pts {
			cmd := "L"
			if j == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, px(xval(c, p.X)), py(yval(c, p.Y)))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.TrimSpace(path.String()), color)
		for _, p := range pts {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.6" fill="%s"/>`+"\n",
				px(xval(c, p.X)), py(yval(c, p.Y)), color)
		}
		// Legend entry.
		ly := marginT + 14 + i*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			chartW-marginR+12, ly, chartW-marginR+34, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" dominant-baseline="middle">%s</text>`+"\n",
			chartW-marginR+40, ly, esc(s.Label))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

func xval(c Chart, x float64) float64 {
	if c.LogX {
		return math.Log10(x)
	}
	return x
}

func yval(c Chart, y float64) float64 {
	if c.LogY {
		return math.Log10(y)
	}
	return y
}

func axisLabel(label string, log bool) string {
	if log {
		return label + " (log scale)"
	}
	return label
}

// tick formats an axis tick, undoing the log transform.
func tick(log bool, v float64) string {
	if log {
		v = math.Pow(10, v)
	}
	switch {
	case math.Abs(v) >= 10000:
		return fmt.Sprintf("%.3g", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func minMax(vs []float64) (lo, hi float64) {
	lo, hi = vs[0], vs[0]
	for _, v := range vs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
