package plot

import (
	"strings"
	"testing"
)

func lineChart() Chart {
	return Chart{
		Title:  "Test & Chart <1>",
		XLabel: "x",
		YLabel: "y (ms)",
		Series: []Series{
			{Label: "a", Points: []Point{{1, 10}, {2, 20}, {3, 15}}},
			{Label: "b", Points: []Point{{1, 5}, {3, 40}}},
		},
	}
}

func TestSVGStructure(t *testing.T) {
	svg, err := SVG(lineChart())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<svg xmlns=",
		"Test &amp; Chart &lt;1&gt;", // escaping
		`<path d="M`,                 // series paths
		"<circle",                    // point markers
		">a</text>",                  // legend entries
		">b</text>",
		"</svg>",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if got := strings.Count(svg, "<path"); got != 2 {
		t.Fatalf("paths: %d", got)
	}
	if got := strings.Count(svg, "<circle"); got != 5 {
		t.Fatalf("markers: %d", got)
	}
}

func TestSVGLogAxes(t *testing.T) {
	c := lineChart()
	c.LogX, c.LogY = true, true
	svg, err := SVG(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "x (log scale)") || !strings.Contains(svg, "y (ms) (log scale)") {
		t.Fatal("log axis labels missing")
	}
}

func TestSVGRejectsBadData(t *testing.T) {
	if _, err := SVG(Chart{Title: "empty"}); err == nil {
		t.Fatal("empty chart must fail")
	}
	c := lineChart()
	c.LogY = true
	c.Series[0].Points[0].Y = 0
	if _, err := SVG(c); err == nil {
		t.Fatal("zero on a log axis must fail")
	}
}

func TestSVGDegenerateRanges(t *testing.T) {
	// A single point and identical values must still render.
	svg, err := SVG(Chart{
		Title:  "flat",
		Series: []Series{{Label: "s", Points: []Point{{1, 7}, {2, 7}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "</svg>") {
		t.Fatal("render incomplete")
	}
}

func TestTickFormatting(t *testing.T) {
	if got := tick(false, 12345); got != "1.23e+04" {
		t.Fatalf("big tick: %q", got)
	}
	if got := tick(false, 42); got != "42" {
		t.Fatalf("mid tick: %q", got)
	}
	if got := tick(true, 2); got != "100" { // 10^2
		t.Fatalf("log tick: %q", got)
	}
}
