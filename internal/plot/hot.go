package plot

import "fmt"

// HotSample is one periodic reading of a per-object replication profile:
// the cumulative remote demands and demand bytes an object has cost as
// of time AtMS. The bench harness samples the profiler between workload
// rounds; each OID becomes one curve in the hot-object report.
type HotSample struct {
	// AtMS is the sample's x-coordinate (bench round or elapsed ms).
	AtMS float64
	// OID identifies the object; Label names its series (defaults to the
	// hex OID when empty).
	OID   uint64
	Label string
	// Demands and Bytes are cumulative remote-demand counts and payload
	// bytes as of this sample.
	Demands uint64
	Bytes   uint64
}

// HotObjectCharts shapes profiler samples into the two hot-object
// figures: demand counts over time and demand bytes over time, one curve
// per object. Series appear in first-seen order, so passing samples
// hottest-object-first keeps the legend sorted by heat.
func HotObjectCharts(title string, samples []HotSample) (demands, bytes Chart, err error) {
	if len(samples) == 0 {
		return Chart{}, Chart{}, fmt.Errorf("plot: no hot-object samples")
	}
	var order []uint64
	demandSeries := map[uint64]*Series{}
	byteSeries := map[uint64]*Series{}
	for _, s := range samples {
		ds, ok := demandSeries[s.OID]
		if !ok {
			label := s.Label
			if label == "" {
				label = fmt.Sprintf("oid %#x", s.OID)
			}
			ds = &Series{Label: label}
			demandSeries[s.OID] = ds
			byteSeries[s.OID] = &Series{Label: label}
			order = append(order, s.OID)
		}
		ds.Points = append(ds.Points, Point{X: s.AtMS, Y: float64(s.Demands)})
		bs := byteSeries[s.OID]
		bs.Points = append(bs.Points, Point{X: s.AtMS, Y: float64(s.Bytes)})
	}
	demands = Chart{
		Title:  title + ": remote demands per object",
		XLabel: "round",
		YLabel: "cumulative remote demands",
	}
	bytes = Chart{
		Title:  title + ": demand bytes per object",
		XLabel: "round",
		YLabel: "cumulative demand bytes",
	}
	for _, oid := range order {
		demands.Series = append(demands.Series, *demandSeries[oid])
		bytes.Series = append(bytes.Series, *byteSeries[oid])
	}
	return demands, bytes, nil
}
