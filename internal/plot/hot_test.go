package plot

import (
	"strings"
	"testing"
)

func TestHotObjectCharts(t *testing.T) {
	samples := []HotSample{
		{AtMS: 0, OID: 0xa, Label: "hot", Demands: 1, Bytes: 100},
		{AtMS: 0, OID: 0xb, Demands: 1, Bytes: 100},
		{AtMS: 1, OID: 0xa, Label: "hot", Demands: 3, Bytes: 300},
		{AtMS: 1, OID: 0xb, Demands: 1, Bytes: 100},
	}
	demands, bytes, err := HotObjectCharts("Bench", samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(demands.Series) != 2 || len(bytes.Series) != 2 {
		t.Fatalf("series: %d demands, %d bytes", len(demands.Series), len(bytes.Series))
	}
	// First-seen order preserved; missing labels default to the hex OID.
	if demands.Series[0].Label != "hot" || demands.Series[1].Label != "oid 0xb" {
		t.Fatalf("labels: %q %q", demands.Series[0].Label, demands.Series[1].Label)
	}
	if got := demands.Series[0].Points[1].Y; got != 3 {
		t.Fatalf("hot demand curve y=%v, want 3", got)
	}
	if got := bytes.Series[0].Points[1].Y; got != 300 {
		t.Fatalf("hot byte curve y=%v, want 300", got)
	}
	for _, c := range []Chart{demands, bytes} {
		svg, err := SVG(c)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(svg, "</svg>") || !strings.Contains(svg, "hot") {
			t.Fatalf("svg incomplete:\n%s", svg)
		}
	}
}

func TestHotObjectChartsRejectsEmpty(t *testing.T) {
	if _, _, err := HotObjectCharts("x", nil); err == nil {
		t.Fatal("empty samples must error")
	}
}
