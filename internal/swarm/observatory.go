package swarm

import (
	"fmt"

	"obiwan/internal/netsim"
	"obiwan/internal/telemetry"
)

// This file is the observatory half of the harness: when Options.Observe
// is set, the hub's fleet.Collector — not the scenario's own assertions —
// measures what the fleet looks like at two probe points, and the probes
// ride the capacity report into BENCH_fleet.json.

// FleetProbe is one collector scrape, reduced to the capacity figures the
// curves plot. Every field is deterministic per seed (virtual time, merged
// counters and gauges, federated histogram quantiles).
type FleetProbe struct {
	// AtMS is the virtual time of the scrape, in milliseconds.
	AtMS float64 `json:"at_ms"`
	// Scraped and Errors split the roster into sites that answered and
	// sites that did not (e.g. incarnations killed by churn).
	Scraped int `json:"scraped"`
	Errors  int `json:"errors"`
	// StaleReplicas is the fleet-wide invalidation backlog: the merged
	// site.stale.replicas gauge, i.e. replicas known stale and not yet
	// refreshed anywhere in the fleet.
	StaleReplicas int64 `json:"stale_replicas"`
	// RMICalls and BytesSent are the merged rmi.calls / rmi.bytes.sent
	// counters across the roster.
	RMICalls  uint64 `json:"rmi_calls"`
	BytesSent uint64 `json:"bytes_sent"`
	// RMIP99US is the federated p99 of rmi.call.latency_ns, in
	// microseconds, re-derived from the merged histogram buckets.
	RMIP99US float64 `json:"rmi_p99_us"`
	// Refreshes is the merged repl.refreshes counter — the convergence
	// work the fleet performed up to this probe.
	Refreshes uint64 `json:"refreshes"`
}

// FleetObservation is what an Observe run measured: the fleet right after
// the op phase (disturbances just healed, staleness at its peak) and after
// every survivor refreshed its stale replicas (converged — StaleReplicas
// must be back to zero, and the collector is what proves it).
type FleetObservation struct {
	AfterOps  FleetProbe `json:"after_ops"`
	Converged FleetProbe `json:"converged"`
	// Alerts is how many SLO watchdog alerts fired across the run's
	// scrapes (also recorded in the hub's flight recorder as slo.* events).
	Alerts int `json:"alerts"`
	// AlertsDropped counts alerts the collector's bounded backlog evicted.
	AlertsDropped uint64 `json:"alerts_dropped,omitempty"`
	// Attribution is the fleet's aggregated critical-path profile at the
	// converged probe: per-phase time distributions over every complete
	// trace the collector scraped. Deterministic per seed under the
	// virtual clock.
	Attribution *telemetry.AttributionProfile `json:"attribution,omitempty"`
}

// probe points inside run().
type probePoint int

const (
	probeAfterOps probePoint = iota
	probeConverged
)

// observe runs one collector scrape and files the probe. No-op unless the
// run is an observatory run.
func (sw *Swarm) observe(at probePoint) {
	if !sw.Opts.Observe {
		return
	}
	col := sw.Hub.Fleet()
	snap := col.ScrapeOnce()
	p := reduceProbe(snap)
	sw.mu.Lock()
	if sw.obs == nil {
		sw.obs = &FleetObservation{}
	}
	switch at {
	case probeAfterOps:
		sw.obs.AfterOps = p
	case probeConverged:
		sw.obs.Converged = p
		sw.obs.Attribution = col.Attribution()
	}
	alerts, dropped := col.FleetAlerts()
	sw.obs.Alerts = len(alerts)
	sw.obs.AlertsDropped = dropped
	sw.mu.Unlock()
}

// observeConverged drives every surviving leaf through RefreshStale — the
// convergence round the invalidation protocol prescribes — then probes.
// The converged StaleReplicas figure is the collector's proof that the
// fleet drained its staleness backlog.
func (sw *Swarm) observeConverged() error {
	if !sw.Opts.Observe {
		return nil
	}
	sw.mu.Lock()
	leaves := append([]*leaf(nil), sw.leaves...)
	sw.mu.Unlock()
	for _, l := range leaves {
		if l == nil || l.killed {
			continue
		}
		if _, err := l.s.RefreshStale(); err != nil {
			return fmt.Errorf("swarm: %s refresh stale: %w", l.name, err)
		}
	}
	sw.observe(probeConverged)
	return nil
}

// reduceProbe extracts the curve figures from a federated snapshot.
func reduceProbe(snap *telemetry.FleetSnapshot) FleetProbe {
	var p FleetProbe
	if snap == nil {
		return p
	}
	p.AtMS = float64(snap.TakenAtNS-netsim.VirtualBase.UnixNano()) / 1e6
	for _, obs := range snap.Sites {
		if obs.Err != "" {
			p.Errors++
		} else {
			p.Scraped++
		}
	}
	if m := snap.Metrics; m != nil {
		p.RMICalls = m.Get("rmi.calls")
		p.BytesSent = m.Get("rmi.bytes.sent")
		p.Refreshes = m.Get("repl.refreshes")
		for _, g := range m.Gauges {
			if g.Name == "site.stale.replicas" {
				p.StaleReplicas = g.Value
			}
		}
		if h := m.GetHistogram("rmi.call.latency_ns"); h.Count > 0 {
			p.RMIP99US = float64(h.P99) / 1e3
		}
	}
	return p
}
