// Package swarm is the thousand-site scenario harness: it spins up one
// hub site and hundreds to thousands of leaf sites over a seeded
// in-process topology, drives them with scheduled workloads on a
// discrete-event virtual clock (netsim.VirtualClock), and checks
// fleet-wide invariants while aggregating telemetry into per-scenario
// capacity reports.
//
// The harness exists to answer the question the paper's evaluation could
// not: what does incremental replication do at fleet scale, under churn,
// flash crowds, roaming links, and rolling partitions? Because the clock
// is virtual and the simulation serial, sixty simulated seconds across a
// thousand sites execute in a few wall-clock seconds and replay
// bit-identically from a seed.
//
// Invariants every scenario asserts (see finalChecks):
//
//   - exactly-once puts: for every document, the master's apply count is
//     bounded by the fleet's acked and attempted put counts
//     (acked ≤ applies ≤ attempted — a duplicate apply or a lost acked
//     put both break the bounds);
//   - convergence after reconnect: once all faults heal, a final put from
//     every surviving leaf lands, and the master's data equals the last
//     acked write;
//   - bounded staleness: a refresh after healing brings every leaf's
//     replica of the shared document to the master's version;
//   - typed failures only: while disturbed, operations either succeed or
//     fail with replication.ErrUnavailable — anything else is a bug.
package swarm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/site"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// Doc is the object type swarm scenarios replicate: per-leaf documents
// (one writer each, mastered at the hub) plus one shared chain every
// leaf reads.
type Doc struct {
	Label string
	Data  []byte
	Kids  []*objmodel.Ref
}

// Name returns the document's label.
func (d *Doc) Name() string { return d.Label }

func init() {
	objmodel.MustRegisterType("swarm.Doc", (*Doc)(nil))
}

// Options parameterizes a scenario. The zero value is not usable; start
// from Defaults (or fill every field) — scenario constructors apply
// Defaults for anything left zero.
type Options struct {
	Seed  int64
	Sites int // leaf count (the hub is extra)

	// Profile is the QoS of every hub↔leaf link.
	Profile netsim.Profile
	// Duration is the simulated length of the op phase.
	Duration time.Duration
	// MeanOpGap is the average virtual time between one leaf's operations
	// (actual gaps are uniform in [MeanOpGap/2, 3·MeanOpGap/2)).
	MeanOpGap time.Duration
	// SharedDepth is the length of the shared chain all leaves read.
	SharedDepth int

	// KillEvery is the mean gap between churn kills (churn scenario).
	KillEvery time.Duration
	// DisturbEvery is the mean gap between roam/partition waves.
	DisturbEvery time.Duration
	// DisturbWindow is how long a roam outage or partition wave lasts.
	DisturbWindow time.Duration

	// Watchdog is the real-time budget: a virtual scenario that deadlocks
	// burns no virtual time, so only a wall clock can catch it.
	Watchdog time.Duration
	// ProfileTopK is how many hot objects the capacity report keeps.
	ProfileTopK int

	// HubGroup, when >= 2, replaces the single hub with a consensus-
	// replicated master group of that many members (hub0, hub1, ...).
	// Every master lives on every member; the leader serves, followers
	// redirect, and the fleet survives the permanent loss of a minority.
	// 0 or 1 keeps the classic single hub.
	HubGroup int

	// Observe turns the scenario into a fleet observatory run: every leaf
	// carries a virtual-clocked telemetry hub, the (first) hub site runs
	// invalidation-based consistency plus a fleet.Collector over the
	// initial roster, and the collector — not the scenario's assertions —
	// measures staleness and convergence at two probe points (after the
	// op phase, and after every survivor refreshed). The probes land in
	// Report.Fleet. Everything stays deterministic per seed: scrapes run
	// serially in the scenario body on the virtual clock.
	Observe bool
}

// Defaults returns a small, fast baseline configuration for seed.
func Defaults(seed int64) Options {
	return Options{
		Seed:          seed,
		Sites:         100,
		Profile:       netsim.LAN10,
		Duration:      10 * time.Second,
		MeanOpGap:     2 * time.Second,
		SharedDepth:   4,
		KillEvery:     2 * time.Second,
		DisturbEvery:  time.Second,
		DisturbWindow: 500 * time.Millisecond,
		Watchdog:      2 * time.Minute,
		ProfileTopK:   8,
	}
}

func (o Options) withDefaults() Options {
	d := Defaults(o.Seed)
	if o.Sites == 0 {
		o.Sites = d.Sites
	}
	if o.Profile.Name == "" {
		o.Profile = d.Profile
	}
	if o.Duration == 0 {
		o.Duration = d.Duration
	}
	if o.MeanOpGap == 0 {
		o.MeanOpGap = d.MeanOpGap
	}
	if o.SharedDepth == 0 {
		o.SharedDepth = d.SharedDepth
	}
	if o.KillEvery == 0 {
		o.KillEvery = d.KillEvery
	}
	if o.DisturbEvery == 0 {
		o.DisturbEvery = d.DisturbEvery
	}
	if o.DisturbWindow == 0 {
		o.DisturbWindow = d.DisturbWindow
	}
	if o.Watchdog == 0 {
		o.Watchdog = d.Watchdog
	}
	if o.ProfileTopK == 0 {
		o.ProfileTopK = d.ProfileTopK
	}
	return o
}

// retryPolicy is the leaf/hub policy: deterministic (no jitter), with a
// per-try timeout so a dropped reply is recovered by re-sending rather
// than by waiting out the whole call budget. Virtual timeouts are free.
func retryPolicy() rmi.RetryPolicy {
	return rmi.RetryPolicy{
		MaxAttempts:   8,
		BaseBackoff:   10 * time.Millisecond,
		MaxBackoff:    200 * time.Millisecond,
		Multiplier:    2,
		Jitter:        0,
		PerTryTimeout: 500 * time.Millisecond,
	}
}

// OpRecord is one entry of the fleet-wide operation log — the scenario's
// deterministic event stream. T is virtual time since scenario start.
type OpRecord struct {
	T      time.Duration
	Site   string
	Op     string // demand, put, refresh, kill, spawn, roam, partition, heal, final
	Detail string
	Err    string // "" on success; the typed class otherwise
}

func (r OpRecord) String() string {
	s := fmt.Sprintf("%v %s %s", r.T, r.Site, r.Op)
	if r.Detail != "" {
		s += " " + r.Detail
	}
	if r.Err != "" {
		s += " err=" + r.Err
	}
	return s
}

// applyLog is the hub's consistency policy: it counts ApplyPut
// acceptances per object, the server-side half of the exactly-once
// invariant.
type applyLog struct {
	mu      sync.Mutex
	applies map[objmodel.OID]int
}

func newApplyLog() *applyLog { return &applyLog{applies: make(map[objmodel.OID]int)} }

func (p *applyLog) ApplyPut(oid objmodel.OID, base, next uint64) error {
	p.mu.Lock()
	p.applies[oid]++
	p.mu.Unlock()
	return nil
}
func (p *applyLog) ReplicaCreated(objmodel.OID, string, uint64) {}
func (p *applyLog) MasterUpdated(objmodel.OID, uint64)          {}

func (p *applyLog) count(oid objmodel.OID) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.applies[oid]
}

// docState is the per-document ledger, shared across a leaf's
// incarnations: how many puts were attempted and acked for this document
// fleet-side, and what the last acked payload was.
type docState struct {
	id        int
	oid       objmodel.OID
	desc      replication.Descriptor
	attempted int
	acked     int
	lastAcked string
}

// leaf is one live leaf site (one incarnation).
type leaf struct {
	id     int
	gen    int
	name   string
	s      *site.Site
	rng    *rand.Rand
	mine   *Doc // replica of the leaf's own document, nil until demanded
	shared *Doc // replica of the shared chain head, nil until demanded
	killed bool
}

func (l *leaf) addr() transport.Addr { return transport.Addr(l.name) }

// Swarm is one scenario deployment: hub, leaves, and the bookkeeping the
// invariants are checked against.
type Swarm struct {
	Opts  Options
	Clock *netsim.VirtualClock
	Net   *transport.MemNetwork
	Hub   *site.Site   // single hub, or the first group member
	hubs  []*site.Site // every hub member (len 1 without a group)

	applies    *applyLog
	sharedOID  objmodel.OID
	sharedDesc replication.Descriptor

	mu          sync.Mutex
	hubDead     []bool // parallel to hubs
	docs        []*docState
	leaves      []*leaf // current incarnation per id
	all         []*site.Site
	log         []OpRecord
	ops         int
	unavailable int
	kills       int
	spawns      int
	failover    time.Duration // virtual time to re-elect after a hub kill
	obs         *FleetObservation
	fatal       error

	wallStart time.Time
}

// groupMode reports whether the hub is a replicated master group.
func (sw *Swarm) groupMode() bool { return len(sw.hubs) > 1 }

func mix(seed int64, id, gen int) int64 {
	return seed*1_000_003 + int64(id)*31 + int64(gen)
}

func leafName(id, gen int) string {
	if gen == 0 {
		return fmt.Sprintf("s%04d", id)
	}
	return fmt.Sprintf("s%04d.g%d", id, gen)
}

// Build constructs the deployment: virtual clock, seeded network, the
// hub with its virtual-clocked telemetry hub, one master document per
// leaf plus the shared chain, and all leaf sites. Building parks nothing,
// so it runs untracked; the simulation starts when the scenario body runs
// under run().
func Build(o Options) (*Swarm, error) {
	o = o.withDefaults()
	clock := netsim.NewVirtualClock()
	// Dispatch stays frozen until run() enqueues the scenario body: group
	// hub members spawn consensus timer loops at construction, and letting
	// those advance virtual time while Build is still running untracked
	// would race the body's start time. run()/within() release the hold.
	clock.Hold()
	net := transport.NewMemNetworkClock(o.Profile, o.Seed, clock)
	sw := &Swarm{
		Opts:      o,
		Clock:     clock,
		Net:       net,
		applies:   newApplyLog(),
		wallStart: time.Now(),
	}

	hubNames := []string{"hub"}
	if o.HubGroup >= 2 {
		hubNames = make([]string, o.HubGroup)
		for i := range hubNames {
			hubNames[i] = fmt.Sprintf("hub%d", i)
		}
	}
	members := make([]transport.Addr, len(hubNames))
	for i, n := range hubNames {
		members[i] = transport.Addr(n)
	}
	for _, name := range hubNames {
		opts := []site.Option{
			site.WithPolicy(sw.applies),
			site.WithRetry(retryPolicy()),
			site.WithIncarnation(1),
			site.WithTelemetry(telemetry.NewHub(name, telemetry.WithClock(clock.Now))),
			// No wall-clock go.* sampling: sampled process state differs
			// between runs, and observatory scrapes would carry it onto
			// the (virtually timed) wire.
			site.WithoutRuntimeSampler(),
		}
		if o.Observe && name == hubNames[0] {
			// The first hub is the observatory: invalidations give the
			// staleness gauge a real signal, and the collector scrapes the
			// initial roster (every hub member plus every gen-0 leaf; churn
			// replacements surface as scrape errors on the dead address).
			roster := make([]transport.Addr, 0, len(hubNames)+o.Sites)
			for _, n := range hubNames {
				roster = append(roster, transport.Addr(n))
			}
			for id := 0; id < o.Sites; id++ {
				roster = append(roster, transport.Addr(leafName(id, 0)))
			}
			opts = append(opts, site.WithInvalidation(), site.WithFleet(roster))
		}
		if len(hubNames) > 1 {
			opts = append(opts, site.WithMasterGroup(site.GroupConfig{
				Name:            "hub",
				Members:         members,
				ElectionTimeout: 100 * time.Millisecond,
				Seed:            o.Seed,
			}))
		}
		hub, err := site.New(name, net, opts...)
		if err != nil {
			sw.abortBuild()
			return nil, err
		}
		sw.hubs = append(sw.hubs, hub)
		sw.all = append(sw.all, hub)
	}
	sw.Hub = sw.hubs[0]
	sw.hubDead = make([]bool, len(sw.hubs))

	// Leaf sites and the per-document ledgers. Master registration happens
	// in bootstrap(), inside the tracked simulation — a hub group cannot
	// register anything before its first election, and elections need the
	// clock running.
	sw.docs = make([]*docState, o.Sites)
	sw.leaves = make([]*leaf, o.Sites)
	for id := 0; id < o.Sites; id++ {
		sw.docs[id] = &docState{id: id}
		if _, err := sw.newLeaf(id, 0); err != nil {
			sw.abortBuild()
			return nil, err
		}
	}
	return sw, nil
}

// liveHubs returns the hub members not yet killed.
func (sw *Swarm) liveHubs() []*site.Site {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	var out []*site.Site
	for i, h := range sw.hubs {
		if !sw.hubDead[i] {
			out = append(out, h)
		}
	}
	return out
}

// awaitHubLeader returns the hub site currently allowed to serve masters:
// the single hub, or the group member holding a live lease (polled
// locally, no RPC). It parks on the clock, so call it only inside the
// tracked simulation.
func (sw *Swarm) awaitHubLeader() (*site.Site, error) {
	if !sw.groupMode() {
		return sw.Hub, nil
	}
	deadline := sw.Clock.Now().Add(30 * time.Second)
	for {
		for _, h := range sw.liveHubs() {
			if h.Group().CheckServe() == nil {
				return h, nil
			}
		}
		if !sw.Clock.Now().Before(deadline) {
			return nil, errors.New("swarm: no serving hub leader within 30s")
		}
		sw.Clock.Sleep(5 * time.Millisecond)
	}
}

// killHub permanently crash-stops one hub member (no rebirth — this is
// how a scenario proves the group survives losing a site for good).
func (sw *Swarm) killHub(h *site.Site) {
	sw.mu.Lock()
	for i, hh := range sw.hubs {
		if hh == h {
			sw.hubDead[i] = true
		}
	}
	sw.kills++
	sw.mu.Unlock()
	sw.record(h.Name(), "kill", "hub", nil)
	h.Kill()
}

// bootstrap registers the shared chain and every per-leaf document at the
// hub (group mode: at the elected leader, with the wiring replicated to
// every member). Runs as tracked simulated work before the leaf loops.
func (sw *Swarm) bootstrap() error {
	leader, err := sw.awaitHubLeader()
	if err != nil {
		return err
	}
	o := sw.Opts

	chain := make([]*Doc, o.SharedDepth)
	for i := range chain {
		chain[i] = &Doc{Label: fmt.Sprintf("shared-%d", i), Data: []byte{byte(i)}}
		if err := leader.Register(chain[i]); err != nil {
			return err
		}
	}
	for i := 0; i < len(chain)-1; i++ {
		ref, err := leader.NewRef(chain[i+1])
		if err != nil {
			return err
		}
		chain[i].Kids = append(chain[i].Kids, ref)
	}
	if sw.groupMode() {
		// The Kids wiring exists only in the registering member's instance;
		// agree the wired state through the log so every member serves the
		// same chain after failover.
		for i := 0; i < len(chain)-1; i++ {
			if err := leader.MarkUpdated(chain[i]); err != nil {
				return err
			}
		}
	}
	en, ok := leader.Heap().EntryOf(chain[0])
	if !ok {
		return errors.New("swarm: shared head has no heap entry")
	}
	sw.sharedOID = en.OID
	if sw.sharedDesc, err = leader.Export(chain[0]); err != nil {
		return err
	}

	for id := 0; id < o.Sites; id++ {
		doc := &Doc{Label: fmt.Sprintf("doc-%04d", id), Data: []byte("v0")}
		if err := leader.Register(doc); err != nil {
			return err
		}
		desc, err := leader.Export(doc)
		if err != nil {
			return err
		}
		den, ok := leader.Heap().EntryOf(doc)
		if !ok {
			return fmt.Errorf("swarm: doc %d has no heap entry", id)
		}
		sw.docs[id].oid = den.OID
		sw.docs[id].desc = desc
	}
	return nil
}

// newLeaf creates the site for (id, gen) and installs it as the current
// incarnation. Callers during the run must hold no swarm lock.
func (sw *Swarm) newLeaf(id, gen int) (*leaf, error) {
	name := leafName(id, gen)
	opts := []site.Option{
		site.WithRetry(retryPolicy()),
		site.WithIncarnation(1), // the address is unique per incarnation already
	}
	if sw.Opts.Observe {
		// Observatory runs give every leaf a virtual-clocked hub so the
		// collector has per-site metrics to federate — minus the wall-clock
		// go.* sampler, whose readings would perturb scrape reply sizes.
		opts = append(opts,
			site.WithTelemetry(telemetry.NewHub(name, telemetry.WithClock(sw.Clock.Now))),
			site.WithoutRuntimeSampler())
	} else {
		opts = append(opts, site.WithoutTelemetry())
	}
	s, err := site.New(name, sw.Net, opts...)
	if err != nil {
		return nil, fmt.Errorf("swarm: leaf %s: %w", name, err)
	}
	l := &leaf{
		id:   id,
		gen:  gen,
		name: name,
		s:    s,
		rng:  rand.New(rand.NewSource(mix(sw.Opts.Seed, id, gen))),
	}
	sw.mu.Lock()
	sw.leaves[id] = l
	sw.all = append(sw.all, s)
	sw.mu.Unlock()
	return l, nil
}

func (sw *Swarm) abortBuild() {
	for i := len(sw.all) - 1; i >= 0; i-- {
		_ = sw.all[i].Close()
	}
	sw.Clock.Stop()
}

// Close tears the deployment down: sites close as tracked simulated work
// (draining in-flight events), then the clock stops.
func (sw *Swarm) Close() {
	_ = within(sw.Clock, sw.Opts.Watchdog, func() error {
		sw.mu.Lock()
		sites := append([]*site.Site(nil), sw.all...)
		sw.mu.Unlock()
		for i := len(sites) - 1; i >= 0; i-- {
			_ = sites[i].Close()
		}
		return nil
	})
	sw.Clock.Stop()
}

// record appends to the fleet op log.
func (sw *Swarm) record(siteName, op, detail string, err error) {
	rec := OpRecord{
		T:      sw.Clock.Now().Sub(netsim.VirtualBase),
		Site:   siteName,
		Op:     op,
		Detail: detail,
	}
	if err != nil {
		rec.Err = errClass(err)
	}
	sw.mu.Lock()
	sw.log = append(sw.log, rec)
	sw.ops++
	if rec.Err == "unavailable" {
		sw.unavailable++
	}
	sw.mu.Unlock()
}

// errClass collapses an operation error to its typed class. Anything not
// listed here is an invariant violation the scenario fails on.
func errClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, replication.ErrUnavailable):
		return "unavailable"
	case isNotLeader(err):
		return "notleader"
	case errors.Is(err, rmi.ErrRuntimeClosed):
		return "closed"
	default:
		return "fatal:" + err.Error()
	}
}

// isNotLeader recognizes the typed redirect a master-group follower
// answers with, local or flattened across the RMI boundary.
func isNotLeader(err error) bool {
	if errors.Is(err, replication.ErrNotLeader) {
		return true
	}
	_, ok := replication.NotLeaderHint(err)
	return ok
}

func (sw *Swarm) fail(err error) {
	sw.mu.Lock()
	if sw.fatal == nil {
		sw.fatal = err
	}
	sw.mu.Unlock()
}

func (sw *Swarm) isKilled(l *leaf) bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return l.killed
}

// handleOpErr classifies an operation error: nil and unavailability keep
// the leaf going, a kill ends its loop quietly, anything else is fatal
// for the scenario. It reports whether the leaf loop should stop.
func (sw *Swarm) handleOpErr(l *leaf, op, detail string, err error) bool {
	if sw.isKilled(l) {
		return true // whatever the error, this incarnation is dead
	}
	sw.record(l.name, op, detail, err)
	if err == nil || errors.Is(err, replication.ErrUnavailable) || isNotLeader(err) {
		return false
	}
	sw.fail(fmt.Errorf("swarm: %s %s: %w", l.name, op, err))
	return true
}

func (sw *Swarm) spec() replication.GetSpec {
	return replication.GetSpec{Mode: replication.Incremental, Batch: 1}
}

// demand replicates the leaf's own document and the shared head.
func (sw *Swarm) demand(l *leaf) error {
	st := sw.docs[l.id]
	if l.mine == nil {
		ref := l.s.Engine().RefFromDescriptor(st.desc, sw.spec())
		mine, err := objmodel.Deref[*Doc](ref)
		if err != nil {
			return err
		}
		l.mine = mine
	}
	if l.shared == nil {
		ref := l.s.Engine().RefFromDescriptor(sw.sharedDesc, sw.spec())
		shared, err := objmodel.Deref[*Doc](ref)
		if err != nil {
			return err
		}
		l.shared = shared
	}
	return nil
}

// putOwn writes the next payload to the leaf's document and syncs it.
func (sw *Swarm) putOwn(l *leaf, payload string) error {
	st := sw.docs[l.id]
	l.mine.Data = []byte(payload)
	if err := l.s.MarkUpdated(l.mine); err != nil {
		return err
	}
	sw.mu.Lock()
	st.attempted++
	sw.mu.Unlock()
	if err := l.s.Put(l.mine); err != nil {
		return err
	}
	sw.mu.Lock()
	st.acked++
	st.lastAcked = payload
	sw.mu.Unlock()
	return nil
}

// leafLoop is one leaf incarnation's scheduled workload: demand first,
// then a seeded mix of puts and refreshes until the op phase ends, the
// leaf is killed, or the scenario fails.
func (sw *Swarm) leafLoop(l *leaf, until time.Time) {
	seq := 0
	for {
		if sw.isKilled(l) || !sw.Clock.Now().Before(until) {
			return
		}
		gap := sw.Opts.MeanOpGap/2 + time.Duration(l.rng.Int63n(int64(sw.Opts.MeanOpGap)))
		sw.Clock.Sleep(gap)
		if sw.isKilled(l) || !sw.Clock.Now().Before(until) {
			return
		}
		if l.mine == nil || l.shared == nil {
			if sw.handleOpErr(l, "demand", "", sw.demand(l)) {
				return
			}
			continue
		}
		switch l.rng.Intn(3) {
		case 0, 1:
			seq++
			payload := fmt.Sprintf("%s#%d", l.name, seq)
			if sw.handleOpErr(l, "put", payload, sw.putOwn(l, payload)) {
				return
			}
		default:
			if sw.handleOpErr(l, "refresh", "shared", l.s.Refresh(l.shared)) {
				return
			}
		}
	}
}

// killLeaf hard-stops the current incarnation of id (crash semantics:
// nothing is flushed, in-flight calls fail).
func (sw *Swarm) killLeaf(id int) {
	sw.mu.Lock()
	l := sw.leaves[id]
	if l == nil || l.killed {
		sw.mu.Unlock()
		return
	}
	l.killed = true
	sw.kills++
	sw.mu.Unlock()
	sw.record(l.name, "kill", "", nil)
	l.s.Kill()
}

// spawnLeaf starts the next incarnation of id and its op loop.
func (sw *Swarm) spawnLeaf(id int, wg *netsim.WaitGroup, until time.Time) error {
	sw.mu.Lock()
	gen := sw.leaves[id].gen + 1
	sw.mu.Unlock()
	l, err := sw.newLeaf(id, gen)
	if err != nil {
		return err
	}
	sw.mu.Lock()
	sw.spawns++
	sw.mu.Unlock()
	sw.record(l.name, "spawn", "", nil)
	wg.Add(1)
	sw.Clock.Go(func() {
		defer wg.Done()
		sw.leafLoop(l, until)
	})
	return nil
}

// finalChecks runs after every disturbance has healed: a final put per
// surviving leaf, the staleness bound on the shared document, and the
// exactly-once audit of the apply log.
func (sw *Swarm) finalChecks() error {
	// All reads and bumps go through whichever hub member currently
	// serves — after a hub kill that is the elected successor.
	leader, err := sw.awaitHubLeader()
	if err != nil {
		return err
	}
	// Bump the shared document so convergence is observable: every leaf
	// must refresh up to this exact version.
	headEntry, ok := leader.Heap().Get(sw.sharedOID)
	if !ok {
		return errors.New("swarm: shared head has no heap entry")
	}
	sharedHead := headEntry.Obj.(*Doc)
	sharedHead.Data = []byte("final")
	if err := leader.MarkUpdated(sharedHead); err != nil {
		return fmt.Errorf("swarm: bump shared: %w", err)
	}
	wantVersion := headEntry.Version()

	for id := range sw.leaves {
		sw.mu.Lock()
		l := sw.leaves[id]
		sw.mu.Unlock()
		if l.killed {
			return fmt.Errorf("swarm: leaf id %d has no live incarnation at scenario end", id)
		}
		if l.mine == nil || l.shared == nil {
			if err := sw.demand(l); err != nil {
				return fmt.Errorf("swarm: %s demand after heal: %w", l.name, err)
			}
		}
		payload := fmt.Sprintf("%s#final", l.name)
		if err := sw.putOwn(l, payload); err != nil {
			return fmt.Errorf("swarm: %s final put: %w", l.name, err)
		}
		sw.record(l.name, "final", payload, nil)
		if err := l.s.Refresh(l.shared); err != nil {
			return fmt.Errorf("swarm: %s final refresh: %w", l.name, err)
		}
		en, ok := l.s.Heap().EntryOf(l.shared)
		if !ok {
			return fmt.Errorf("swarm: %s shared replica has no heap entry", l.name)
		}
		if en.Version() != wantVersion {
			return fmt.Errorf("swarm: %s shared replica at v%d after refresh, master at v%d (staleness bound broken)",
				l.name, en.Version(), wantVersion)
		}
	}

	// Exactly-once audit + convergence: the master holds the last acked
	// payload, applied a bounded number of times.
	for _, st := range sw.docs {
		applies := sw.applies.count(st.oid)
		men, ok := leader.Heap().Get(st.oid)
		if !ok {
			return fmt.Errorf("swarm: doc %04d has no master entry at the serving hub", st.id)
		}
		if sw.groupMode() {
			// Admission (the policy hook) can legitimately run more than
			// once per client put when a leader dies between admitting and
			// committing, so the group-mode audit is on agreed STATE: every
			// distinct put bumps the replicated version exactly once.
			v := men.Version()
			if v < 1+uint64(st.acked) || v > 1+uint64(st.attempted) {
				return fmt.Errorf("swarm: doc %04d at agreed v%d with %d acked / %d attempted puts (exactly-once broken)",
					st.id, v, st.acked, st.attempted)
			}
			if applies < st.acked {
				return fmt.Errorf("swarm: doc %04d admitted %d puts but %d were acked", st.id, applies, st.acked)
			}
		} else if applies < st.acked || applies > st.attempted {
			return fmt.Errorf("swarm: doc %04d applied %d times with %d acked / %d attempted puts (exactly-once broken)",
				st.id, applies, st.acked, st.attempted)
		}
		if got := string(men.Obj.(*Doc).Data); got != st.lastAcked {
			return fmt.Errorf("swarm: doc %04d master holds %q, last acked write was %q (convergence broken)",
				st.id, got, st.lastAcked)
		}
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.fatal
}

// ErrHung marks a scenario that blew its real-time watchdog.
var ErrHung = errors.New("swarm: scenario hung")

// within runs op as tracked simulated work under a wall-clock watchdog.
// The body is enqueued before the clock's construction hold is released,
// so it always starts at virtual time zero with a deterministic event
// order relative to goroutines spawned during Build.
func within(clock *netsim.VirtualClock, d time.Duration, op func() error) error {
	done := make(chan error, 1)
	clock.Go(func() { done <- op() })
	clock.Release()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		return fmt.Errorf("%w: no result after %v (%s)", ErrHung, d, clock.Snapshot())
	}
}

// run executes a scenario: all leaf loops plus an optional disturber,
// then healing is assumed done and the invariants are checked. It
// returns the capacity report and the deterministic event stream.
func run(name string, o Options, disturb func(sw *Swarm, wg *netsim.WaitGroup, until time.Time)) (*Report, []string, error) {
	sw, err := Build(o)
	if err != nil {
		return nil, nil, err
	}
	defer sw.Close()

	err = within(sw.Clock, sw.Opts.Watchdog, func() error {
		if err := sw.bootstrap(); err != nil {
			return err
		}
		until := sw.Clock.Now().Add(sw.Opts.Duration)
		wg := netsim.NewWaitGroup(sw.Clock)
		sw.mu.Lock()
		starting := append([]*leaf(nil), sw.leaves...)
		sw.mu.Unlock()
		for _, l := range starting {
			l := l
			wg.Add(1)
			sw.Clock.Go(func() {
				defer wg.Done()
				sw.leafLoop(l, until)
			})
		}
		if disturb != nil {
			wg.Add(1)
			sw.Clock.Go(func() {
				defer wg.Done()
				disturb(sw, wg, until)
			})
		}
		wg.Wait()
		sw.observe(probeAfterOps)
		if err := sw.finalChecks(); err != nil {
			return err
		}
		return sw.observeConverged()
	})
	report := sw.buildReport(name)
	stream := sw.Stream()
	return report, stream, err
}

// Stream returns the scenario's deterministic event stream: the fleet op
// log followed by the hub's telemetry spans (ids, names, and virtual
// timestamps are all deterministic under the serial simulation). Two runs
// from the same seed must produce byte-identical streams.
func (sw *Swarm) Stream() []string {
	sw.mu.Lock()
	out := make([]string, 0, len(sw.log))
	for _, r := range sw.log {
		out = append(out, r.String())
	}
	sw.mu.Unlock()
	for _, sp := range sw.Hub.Telemetry().Spans(1 << 20) {
		out = append(out, fmt.Sprintf("span %d/%d<-%d %s %s %d..%d attrs=%v err=%q",
			sp.TraceID, sp.SpanID, sp.Parent, sp.Site, sp.Name, sp.StartNS, sp.EndNS, sp.Attrs, sp.Err))
	}
	return out
}
