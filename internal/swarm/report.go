package swarm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"obiwan/internal/site"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// RMITotals are fleet-wide sums of every runtime's counters (hub and all
// leaf incarnations, dead ones included).
type RMITotals struct {
	CallsSent      uint64 `json:"calls_sent"`
	CallsServed    uint64 `json:"calls_served"`
	Retries        uint64 `json:"retries"`
	DupsSuppressed uint64 `json:"dups_suppressed"`
	SendErrors     uint64 `json:"send_errors"`
	RemoteFaults   uint64 `json:"remote_faults"`
	BytesSent      uint64 `json:"bytes_sent"`
	BytesReceived  uint64 `json:"bytes_received"`
}

// LinkTotals are sums over every hub↔leaf link, both directions.
type LinkTotals struct {
	Messages     uint64 `json:"messages"`
	Bytes        uint64 `json:"bytes"`
	Dropped      uint64 `json:"dropped"`
	Disconnected uint64 `json:"disconnected"`
}

// Report is a scenario's capacity report: what the fleet did, what it
// cost, and how fast the simulation ran relative to the simulated time.
type Report struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Sites    int    `json:"sites"`
	Profile  string `json:"profile"`

	SimSeconds  float64 `json:"sim_seconds"`
	WallSeconds float64 `json:"wall_seconds"`
	// Speedup is simulated time over wall time — the discrete-event
	// dividend.
	Speedup float64 `json:"speedup"`
	// Events is how many virtual-clock events fired.
	Events uint64 `json:"events"`

	Ops         int `json:"ops"`
	Unavailable int `json:"unavailable"`
	Kills       int `json:"kills"`
	Spawns      int `json:"spawns"`
	PutsAcked   int `json:"puts_acked"`
	PutsTried   int `json:"puts_tried"`

	// HubGroup is the hub master-group size (0 = classic single hub), and
	// FailoverMS the simulated milliseconds from killing the group's
	// leader to a successor holding a serve lease (0 when nothing was
	// killed).
	HubGroup   int     `json:"hub_group,omitempty"`
	FailoverMS float64 `json:"failover_ms,omitempty"`

	RMI   RMITotals  `json:"rmi"`
	Links LinkTotals `json:"links"`

	// Fleet carries the collector's probes on observatory runs
	// (Options.Observe); nil otherwise.
	Fleet *FleetObservation `json:"fleet,omitempty"`

	// OpsPerSimSecond is fleet operation throughput in simulated time —
	// the capacity figure the harness exists to measure.
	OpsPerSimSecond float64 `json:"ops_per_sim_second"`

	// HotObjects is the hub profiler's heat ranking (top K).
	HotObjects []telemetry.ObjectProfile `json:"hot_objects"`
}

func (sw *Swarm) buildReport(scenario string) *Report {
	sw.mu.Lock()
	r := &Report{
		Scenario:    scenario,
		Seed:        sw.Opts.Seed,
		Sites:       sw.Opts.Sites,
		Profile:     sw.Opts.Profile.Name,
		SimSeconds:  sw.Clock.Elapsed().Seconds(),
		WallSeconds: time.Since(sw.wallStart).Seconds(),
		Events:      sw.Clock.Advances(),
		Ops:         sw.ops,
		Unavailable: sw.unavailable,
		Kills:       sw.kills,
		Spawns:      sw.spawns,
	}
	if sw.groupMode() {
		r.HubGroup = len(sw.hubs)
		r.FailoverMS = float64(sw.failover) / float64(time.Millisecond)
	}
	r.Fleet = sw.obs
	sites := append([]*site.Site(nil), sw.all...)
	for _, st := range sw.docs {
		r.PutsAcked += st.acked
		r.PutsTried += st.attempted
	}
	sw.mu.Unlock()

	if r.WallSeconds > 0 {
		r.Speedup = r.SimSeconds / r.WallSeconds
	}
	if r.SimSeconds > 0 {
		r.OpsPerSimSecond = float64(r.Ops) / r.SimSeconds
	}
	for _, s := range sites {
		ss := s.Runtime().Stats()
		r.RMI.CallsSent += ss.CallsSent
		r.RMI.CallsServed += ss.CallsServed
		r.RMI.Retries += ss.Retries
		r.RMI.DupsSuppressed += ss.DupsSuppressed
		r.RMI.SendErrors += ss.SendErrors
		r.RMI.RemoteFaults += ss.RemoteFaults
		r.RMI.BytesSent += ss.BytesSent
		r.RMI.BytesReceived += ss.BytesReceived
	}
	for _, s := range sites[len(sw.hubs):] { // every leaf incarnation, dead ones included
		for _, hub := range sw.hubs {
			hubAddr := hub.Addr()
			for _, dir := range []struct{ from, to transport.Addr }{
				{hubAddr, s.Addr()}, {s.Addr(), hubAddr},
			} {
				ls := sw.Net.LinkStats(dir.from, dir.to)
				r.Links.Messages += ls.Messages
				r.Links.Bytes += ls.Bytes
				r.Links.Dropped += ls.Dropped
				r.Links.Disconnected += ls.Disconnected
			}
		}
	}
	if snap := sw.Hub.Telemetry().ProfileSnapshot(sw.Opts.ProfileTopK); snap != nil {
		r.HotObjects = snap.Objects
	}
	return r
}

// WriteJSON writes the report as an indented JSON artifact, creating the
// directory if needed.
func (r *Report) WriteJSON(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReportDir resolves where capacity-report artifacts go: $SWARM_REPORT_DIR
// when set (CI points this at its artifact directory), fallback otherwise.
func ReportDir(fallback string) string {
	if dir := os.Getenv("SWARM_REPORT_DIR"); dir != "" {
		return dir
	}
	return fallback
}

// Summary is a one-line human rendering for logs.
func (r *Report) Summary() string {
	return fmt.Sprintf("%s: %d sites, %.0fs sim in %.2fs wall (%.0fx), %d events, %d ops (%d unavailable, %d kills), %d/%d puts acked",
		r.Scenario, r.Sites, r.SimSeconds, r.WallSeconds, r.Speedup, r.Events,
		r.Ops, r.Unavailable, r.Kills, r.PutsAcked, r.PutsTried)
}
