package swarm

import (
	"fmt"
	"math/rand"
	"time"

	"obiwan/internal/netsim"
)

// The four canonical fleet scenarios. Each returns the capacity report,
// the deterministic event stream (see Swarm.Stream), and the first
// invariant violation, if any. All randomness inside a scenario derives
// from Options.Seed, so a given (scenario, options) pair replays
// bit-identically.

// Churn kills a random leaf at seeded intervals and immediately starts a
// replacement incarnation that re-demands its document and carries on —
// the fleet-scale version of the chaos kill/restart suite, minus
// durability (leaves are ephemeral; their documents are mastered at the
// hub, so nothing is lost but the dirty edit in flight).
func Churn(o Options) (*Report, []string, error) {
	o = o.withDefaults()
	return run("churn", o, func(sw *Swarm, wg *netsim.WaitGroup, until time.Time) {
		rng := rand.New(rand.NewSource(o.Seed ^ 0x636875726e)) // "churn"
		for {
			gap := o.KillEvery/2 + time.Duration(rng.Int63n(int64(o.KillEvery)))
			sw.Clock.Sleep(gap)
			if !sw.Clock.Now().Before(until) {
				return
			}
			id := rng.Intn(o.Sites)
			sw.killLeaf(id)
			if err := sw.spawnLeaf(id, wg, until); err != nil {
				sw.fail(err)
				return
			}
		}
	})
}

// FlashCrowd points every leaf at the same hot shared document at almost
// the same instant: all initial demands land within the first op gap, and
// the report's hot-object ranking shows what the hub absorbed.
func FlashCrowd(o Options) (*Report, []string, error) {
	o = o.withDefaults()
	return run("flash-crowd", o, nil)
}

// Roam models the paper's mobile fleet: at seeded intervals a leaf's
// link degrades to the wireless profile and goes down for a window —
// the host moved — then reconnects on the degraded link. Operations
// during the window fail typed; everything converges after.
func Roam(o Options) (*Report, []string, error) {
	o = o.withDefaults()
	return run("roam", o, func(sw *Swarm, wg *netsim.WaitGroup, until time.Time) {
		rng := rand.New(rand.NewSource(o.Seed ^ 0x726f616d)) // "roam"
		hub := sw.Hub.Addr()
		for {
			gap := o.DisturbEvery/2 + time.Duration(rng.Int63n(int64(o.DisturbEvery)))
			sw.Clock.Sleep(gap)
			if !sw.Clock.Now().Before(until) {
				return
			}
			sw.mu.Lock()
			l := sw.leaves[rng.Intn(o.Sites)]
			sw.mu.Unlock()
			sw.record(l.name, "roam", "down+"+netsim.Wireless.Name, nil)
			sw.Net.Disconnect(hub, l.addr())
			sw.Clock.Sleep(o.DisturbWindow)
			sw.Net.SetProfile(hub, l.addr(), netsim.Wireless)
			sw.Net.Reconnect(hub, l.addr())
			sw.record(l.name, "roam", "up", nil)
		}
	})
}

// RollingPartitions sweeps partition waves across the fleet: each wave
// cuts one residue class of leaves off entirely for a window, heals it,
// and moves to the next class. The hub is never partitioned, so the
// healthy remainder keeps replicating throughout.
func RollingPartitions(o Options) (*Report, []string, error) {
	o = o.withDefaults()
	const waves = 4
	return run("rolling-partitions", o, func(sw *Swarm, wg *netsim.WaitGroup, until time.Time) {
		wave := 0
		for {
			sw.Clock.Sleep(o.DisturbEvery)
			if !sw.Clock.Now().Before(until) {
				return
			}
			g := wave % waves
			wave++
			members := sw.waveMembers(g, waves)
			for _, l := range members {
				sw.record(l.name, "partition", "", nil)
				sw.Net.PartitionHost(l.addr())
			}
			sw.Clock.Sleep(o.DisturbWindow)
			for _, l := range members {
				sw.Net.HealHost(l.addr())
				sw.record(l.name, "heal", "", nil)
			}
		}
	})
}

// LeaderFailover runs the fleet against a consensus-replicated hub group
// (HubGroup members, default 3) and permanently kills the group's leader
// partway through the op phase. The surviving majority elects a successor,
// leaf demands and puts fail over transparently (the dead member is never
// reborn), and every fleet invariant — exactly-once puts by agreed
// version, convergence, bounded staleness — must hold at the end. The
// report carries the measured failover latency.
func LeaderFailover(o Options) (*Report, []string, error) {
	o = o.withDefaults()
	if o.HubGroup < 2 {
		o.HubGroup = 3
	}
	return run("leader-failover", o, func(sw *Swarm, wg *netsim.WaitGroup, until time.Time) {
		sw.Clock.Sleep(o.DisturbEvery)
		if !sw.Clock.Now().Before(until) {
			return
		}
		leader, err := sw.awaitHubLeader()
		if err != nil {
			sw.fail(err)
			return
		}
		sw.killHub(leader)
		t0 := sw.Clock.Now()
		next, err := sw.awaitHubLeader()
		if err != nil {
			sw.fail(err)
			return
		}
		d := sw.Clock.Now().Sub(t0)
		sw.mu.Lock()
		sw.failover = d
		sw.mu.Unlock()
		sw.record(next.Name(), "elect", fmt.Sprintf("after=%v", d), nil)
	})
}

// waveMembers returns the current incarnations whose id falls in residue
// class g mod waves, in id order (deterministic).
func (sw *Swarm) waveMembers(g, waves int) []*leaf {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	var out []*leaf
	for id := g; id < len(sw.leaves); id += waves {
		out = append(out, sw.leaves[id])
	}
	return out
}
