package swarm

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"obiwan/internal/netsim"
)

// TestChurnThousandSites is the harness's acceptance bar: 1,000 leaf
// sites, 60 simulated seconds of scheduled traffic under continuous
// kill/restart churn, completing in well under 10 s of wall time (the
// bound holds with -race) with every fleet invariant intact.
func TestChurnThousandSites(t *testing.T) {
	o := Defaults(1)
	o.Sites = 1000
	o.Duration = 60 * time.Second
	o.MeanOpGap = 6 * time.Second
	o.KillEvery = 2 * time.Second

	start := time.Now()
	report, _, err := Churn(o)
	wall := time.Since(start)
	if err != nil {
		t.Fatalf("churn: %v", err)
	}
	t.Log(report.Summary())
	if report.SimSeconds < 60 {
		t.Fatalf("simulated only %.1fs, want >= 60s", report.SimSeconds)
	}
	if wall > 10*time.Second {
		t.Fatalf("1000-site churn took %v wall, want < 10s", wall)
	}
	if report.Kills == 0 || report.Spawns != report.Kills {
		t.Fatalf("churn kills=%d spawns=%d, want equal and > 0", report.Kills, report.Spawns)
	}
	if report.PutsAcked == 0 {
		t.Fatal("no puts acked — the fleet did no work")
	}
}

// TestChurnDeterministic is the determinism regression: a 500-site churn
// scenario run twice from the same seed yields byte-identical event
// streams (op log plus hub telemetry spans), and a different seed yields
// a different stream.
func TestChurnDeterministic(t *testing.T) {
	o := Defaults(9)
	o.Sites = 500
	o.Duration = 30 * time.Second
	o.MeanOpGap = 6 * time.Second
	o.KillEvery = 3 * time.Second

	_, stream1, err := Churn(o)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	_, stream2, err := Churn(o)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if len(stream1) == 0 {
		t.Fatal("empty event stream")
	}
	if len(stream1) != len(stream2) {
		t.Fatalf("stream lengths diverge: %d vs %d", len(stream1), len(stream2))
	}
	for i := range stream1 {
		if stream1[i] != stream2[i] {
			t.Fatalf("streams diverge at line %d:\nrun1: %s\nrun2: %s", i, stream1[i], stream2[i])
		}
	}

	o2 := o
	o2.Seed = 10
	_, stream3, err := Churn(o2)
	if err != nil {
		t.Fatalf("run 3: %v", err)
	}
	if len(stream3) == len(stream1) {
		same := true
		for i := range stream1 {
			if stream1[i] != stream3[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical streams — the seed is not reaching the scenario")
		}
	}
}

// TestFlashCrowdCapacityReport: every leaf demands the same hot document
// at nearly the same instant; the capacity report is written as a JSON
// artifact and must rank the shared chain as the hottest objects.
func TestFlashCrowdCapacityReport(t *testing.T) {
	o := Defaults(5)
	o.Sites = 300
	o.Duration = 5 * time.Second
	o.MeanOpGap = time.Second

	report, _, err := FlashCrowd(o)
	if err != nil {
		t.Fatalf("flash crowd: %v", err)
	}
	t.Log(report.Summary())
	if len(report.HotObjects) == 0 {
		t.Fatal("capacity report has no hot objects")
	}
	if report.RMI.CallsServed == 0 || report.Links.Messages == 0 {
		t.Fatalf("capacity report shows no traffic: %+v", report.RMI)
	}

	dir := ReportDir(t.TempDir())
	path := filepath.Join(dir, "flash_crowd.json")
	if err := report.WriteJSON(path); err != nil {
		t.Fatalf("write artifact: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		t.Fatalf("artifact unreadable: %v", err)
	}
}

// TestRoamMobileFleet: leaves roam (disconnect, then come back on a
// degraded wireless link). Outage windows must produce typed
// unavailability only, and the fleet converges afterwards.
func TestRoamMobileFleet(t *testing.T) {
	o := Defaults(7)
	o.Sites = 120
	o.Duration = 20 * time.Second
	o.MeanOpGap = 2 * time.Second
	o.DisturbEvery = 400 * time.Millisecond
	o.DisturbWindow = 1500 * time.Millisecond

	report, _, err := Roam(o)
	if err != nil {
		t.Fatalf("roam: %v", err)
	}
	t.Log(report.Summary())
	if report.Links.Disconnected == 0 {
		t.Fatal("no sends were rejected while down — the roam windows never bit")
	}
}

// TestRollingPartitions: waves of partitions sweep residue classes of
// the fleet; the healthy remainder keeps working, and after the last
// heal everything converges.
func TestRollingPartitions(t *testing.T) {
	o := Defaults(11)
	o.Sites = 200
	o.Duration = 20 * time.Second
	o.MeanOpGap = 2 * time.Second
	o.DisturbEvery = 2 * time.Second
	o.DisturbWindow = 1200 * time.Millisecond

	report, _, err := RollingPartitions(o)
	if err != nil {
		t.Fatalf("rolling partitions: %v", err)
	}
	t.Log(report.Summary())
	if report.Links.Disconnected == 0 && report.Unavailable == 0 {
		t.Fatal("partitions never bit: no rejected sends and no unavailable ops")
	}
}

// TestLeaderFailoverFleet: the fleet runs against a 3-member hub master
// group whose leader is permanently killed mid-run. The survivors elect a
// successor within a bounded window, leaf traffic fails over
// transparently, and every invariant (exactly-once by agreed version,
// convergence, staleness bound) holds. The capacity report — with the
// measured failover latency — is written as a JSON artifact.
func TestLeaderFailoverFleet(t *testing.T) {
	o := Defaults(13)
	o.Sites = 120
	o.Duration = 12 * time.Second
	o.MeanOpGap = 2 * time.Second
	o.DisturbEvery = 3 * time.Second

	report, _, err := LeaderFailover(o)
	if err != nil {
		t.Fatalf("leader failover: %v", err)
	}
	t.Log(report.Summary())
	if report.HubGroup != 3 {
		t.Fatalf("hub group size %d, want 3", report.HubGroup)
	}
	if report.Kills != 1 {
		t.Fatalf("kills=%d, want exactly the hub leader", report.Kills)
	}
	if report.FailoverMS <= 0 || report.FailoverMS > 2000 {
		t.Fatalf("failover latency %.1fms, want bounded in (0, 2000]", report.FailoverMS)
	}
	if report.PutsAcked == 0 {
		t.Fatal("no puts acked across the failover")
	}

	dir := ReportDir(t.TempDir())
	path := filepath.Join(dir, "leader_failover.json")
	if err := report.WriteJSON(path); err != nil {
		t.Fatalf("write artifact: %v", err)
	}
	if data, err := os.ReadFile(path); err != nil || len(data) == 0 {
		t.Fatalf("artifact unreadable: %v", err)
	}
}

// TestLeaderFailoverDeterministic: the failover scenario replays
// bit-identically from a seed — election timing, the kill, and every op
// record included.
func TestLeaderFailoverDeterministic(t *testing.T) {
	o := Defaults(17)
	o.Sites = 60
	o.Duration = 10 * time.Second
	o.MeanOpGap = 2 * time.Second
	o.DisturbEvery = 3 * time.Second

	r1, stream1, err := LeaderFailover(o)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	r2, stream2, err := LeaderFailover(o)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if len(stream1) == 0 {
		t.Fatal("empty event stream")
	}
	if len(stream1) != len(stream2) {
		t.Fatalf("stream lengths diverge: %d vs %d", len(stream1), len(stream2))
	}
	for i := range stream1 {
		if stream1[i] != stream2[i] {
			t.Fatalf("streams diverge at line %d:\nrun1: %s\nrun2: %s", i, stream1[i], stream2[i])
		}
	}
	if r1.FailoverMS != r2.FailoverMS {
		t.Fatalf("failover latency diverged: %.3fms vs %.3fms", r1.FailoverMS, r2.FailoverMS)
	}
}

// TestReportSpeedup sanity-checks the discrete-event dividend on a tiny
// fleet: simulated time must outrun wall time by a wide margin.
func TestReportSpeedup(t *testing.T) {
	o := Defaults(3)
	o.Sites = 20
	o.Duration = 2 * time.Minute
	o.MeanOpGap = 10 * time.Second

	report, _, err := FlashCrowd(o)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	t.Log(report.Summary())
	if report.Speedup < 10 {
		t.Fatalf("speedup %.1fx, want at least 10x (2 simulated minutes must not take 12 wall seconds)", report.Speedup)
	}
	if report.Events == 0 {
		t.Fatal("no clock events recorded")
	}
	_ = netsim.VirtualBase // keep the import honest if asserts change
}
