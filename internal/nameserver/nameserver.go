// Package nameserver implements OBIWAN's bootstrap registry: the service
// where a site binds the root of an exported object graph so other sites
// can find it.
//
// In the paper's prototypical example "only object AProxyIn is registered
// in a name server, and S1 holds a remote reference to object AProxyIn,
// that was obtained from a name server" (§2). Everything else is reached by
// navigating the graph; the name server only holds roots.
//
// The server is itself an ordinary RMI object, so it can be embedded in any
// site or run standalone (cmd/nameserver).
package nameserver

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

// Errors returned by the registry. Over RMI they surface as *rmi.RemoteError
// with these messages.
var (
	// ErrNotFound is returned by Lookup/Unbind for unknown names.
	ErrNotFound = errors.New("nameserver: name not bound")
	// ErrAlreadyBound is returned by Bind when the name is taken; use
	// Rebind to replace.
	ErrAlreadyBound = errors.New("nameserver: name already bound")
)

// Iface is the symbolic RMI interface name of the name server.
const Iface = "obiwan.NameServer"

// WellKnownID is the object id the name server exports under when it is
// the first export of its runtime (the standalone deployment). Clients that
// only know the address construct the reference with WellKnownRef.
const WellKnownID rmi.ObjID = 1

// WellKnownRef builds the reference to a standalone name server at addr.
func WellKnownRef(addr transport.Addr) rmi.RemoteRef {
	return rmi.RemoteRef{Addr: addr, ID: WellKnownID, Iface: Iface}
}

// Server is the registry implementation. It is exported over RMI; all its
// methods are remote-callable. Safe for concurrent use.
type Server struct {
	mu      sync.RWMutex
	entries map[string]replication.Descriptor
}

// NewServer returns an empty registry.
func NewServer() *Server {
	return &Server{entries: make(map[string]replication.Descriptor)}
}

// Serve exports the registry on rt and returns its reference. For a
// standalone name server, call this before any other export so the
// reference matches WellKnownRef.
func Serve(rt *rmi.Runtime) (*Server, rmi.RemoteRef, error) {
	s := NewServer()
	ref, err := rt.Export(s, Iface)
	if err != nil {
		return nil, rmi.RemoteRef{}, fmt.Errorf("nameserver: %w", err)
	}
	return s, ref, nil
}

// Bind registers d under name; fails if the name is taken by ANOTHER
// site. The owning site may bind again: a host that crashed and restarted
// from its WAL re-registers the names it already holds, and refusing it
// as a duplicate would orphan the binding forever (the dead incarnation
// can never unbind). Ownership is judged by the provider address — the
// stable site identity that survives restarts — extended to master
// groups: any current member of the binding's group (or a binder whose
// group includes the current provider) counts as the owner, so a newly
// elected leader can take over names its dead predecessor bound.
func (s *Server) Bind(name string, d *replication.Descriptor) error {
	if name == "" || d == nil {
		return fmt.Errorf("nameserver: empty name or descriptor")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.entries[name]; ok && !sameOwner(existing, *d) {
		return fmt.Errorf("%w: %q", ErrAlreadyBound, name)
	}
	s.entries[name] = *d
	return nil
}

// sameOwner reports whether a re-bind of existing by d comes from the
// same owning site or master group.
func sameOwner(existing, d replication.Descriptor) bool {
	if existing.Provider.Addr == d.Provider.Addr {
		return true
	}
	for _, m := range existing.Group {
		if m == d.Provider.Addr {
			return true
		}
	}
	for _, m := range d.Group {
		if m == existing.Provider.Addr {
			return true
		}
	}
	return false
}

// Rebind registers d under name, replacing any previous binding.
func (s *Server) Rebind(name string, d *replication.Descriptor) error {
	if name == "" || d == nil {
		return fmt.Errorf("nameserver: empty name or descriptor")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[name] = *d
	return nil
}

// Lookup resolves name to its descriptor.
func (s *Server) Lookup(name string) (*replication.Descriptor, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return &d, nil
}

// Unbind removes a binding.
func (s *Server) Unbind(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(s.entries, name)
	return nil
}

// List returns all bound names, sorted.
func (s *Server) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.entries))
	for n := range s.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Client is the remote-side handle to a name server.
type Client struct {
	rt  *rmi.Runtime
	ref rmi.RemoteRef
}

// NewClient wraps a name-server reference for use from rt's site.
func NewClient(rt *rmi.Runtime, ref rmi.RemoteRef) *Client {
	return &Client{rt: rt, ref: ref}
}

// Bind registers d under name at the remote registry.
func (c *Client) Bind(name string, d replication.Descriptor) error {
	_, err := c.rt.Call(c.ref, "Bind", name, &d)
	return err
}

// Rebind registers d under name, replacing any previous binding.
func (c *Client) Rebind(name string, d replication.Descriptor) error {
	_, err := c.rt.Call(c.ref, "Rebind", name, &d)
	return err
}

// Lookup resolves name at the remote registry.
func (c *Client) Lookup(name string) (replication.Descriptor, error) {
	res, err := c.rt.Call(c.ref, "Lookup", name)
	if err != nil {
		return replication.Descriptor{}, err
	}
	d, ok := res[0].(*replication.Descriptor)
	if !ok {
		return replication.Descriptor{}, fmt.Errorf("nameserver: unexpected lookup reply %T", res[0])
	}
	return *d, nil
}

// Unbind removes a binding at the remote registry.
func (c *Client) Unbind(name string) error {
	_, err := c.rt.Call(c.ref, "Unbind", name)
	return err
}

// List returns all names bound at the remote registry.
func (c *Client) List() ([]string, error) {
	res, err := c.rt.Call(c.ref, "List")
	if err != nil {
		return nil, err
	}
	raw, ok := res[0].([]any)
	if !ok {
		if res[0] == nil {
			return nil, nil
		}
		return nil, fmt.Errorf("nameserver: unexpected list reply %T", res[0])
	}
	names := make([]string, 0, len(raw))
	for _, v := range raw {
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("nameserver: non-string name %T", v)
		}
		names = append(names, s)
	}
	return names, nil
}
