package nameserver

import (
	"errors"
	"reflect"
	"testing"

	"obiwan/internal/heap"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	net := transport.NewMemNetwork(netsim.Loopback)
	srt, err := rmi.NewRuntime(net, "ns")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srt.Close() })
	server, ref, err := Serve(srt)
	if err != nil {
		t.Fatal(err)
	}
	if ref != WellKnownRef("ns") {
		t.Fatalf("first export should land at the well-known id: %v", ref)
	}
	crt, err := rmi.NewRuntime(net, "client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = crt.Close() })
	return server, NewClient(crt, WellKnownRef("ns"))
}

func desc(oid uint64) replication.Descriptor {
	return descAt("s2", oid)
}

func descAt(addr transport.Addr, oid uint64) replication.Descriptor {
	return replication.Descriptor{
		Provider: rmi.RemoteRef{Addr: addr, ID: rmi.ObjID(oid), Iface: "obiwan.IProvideRemote"},
		OID:      oid,
		TypeName: "test.doc",
	}
}

func TestBindLookupRoundTrip(t *testing.T) {
	_, c := newPair(t)
	want := desc(42)
	if err := c.Bind("docs/head", want); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup("docs/head")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Group) == 0 {
		got.Group = nil // wire round-trip decodes absent groups as empty
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("lookup: %+v want %+v", got, want)
	}
}

func TestBindConflict(t *testing.T) {
	_, c := newPair(t)
	if err := c.Bind("x", desc(1)); err != nil {
		t.Fatal(err)
	}
	// A different site may not steal the name.
	err := c.Bind("x", descAt("s3", 2))
	var re *rmi.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want remote error, got %v", err)
	}
	// Rebind replaces.
	if err := c.Rebind("x", desc(2)); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup("x")
	if err != nil || got.OID != 2 {
		t.Fatalf("after rebind: %+v %v", got, err)
	}
}

// TestBindOwnerCanRebind covers the restart path: a site that crashed and
// recovered re-binds names it already owns. The provider address is the
// stable site identity, so Bind from the same address replaces instead of
// failing ErrAlreadyBound (the dead incarnation could never unbind).
func TestBindOwnerCanRebind(t *testing.T) {
	_, c := newPair(t)
	if err := c.Bind("x", desc(1)); err != nil {
		t.Fatal(err)
	}
	// The reborn owner's proxy-in may sit at a different object id.
	if err := c.Bind("x", desc(9)); err != nil {
		t.Fatalf("owner re-bind after restart: %v", err)
	}
	got, err := c.Lookup("x")
	if err != nil || got.OID != 9 {
		t.Fatalf("after owner re-bind: %+v %v", got, err)
	}
}

// TestBindGroupMemberCanRebind covers leader failover in a master group:
// the binding was made by the old leader, and the new leader — a different
// address, but listed in the binding's Group — takes the name over.
func TestBindGroupMemberCanRebind(t *testing.T) {
	_, c := newPair(t)
	group := []transport.Addr{"g1", "g2", "g3"}
	first := descAt("g1", 1)
	first.Group = group
	if err := c.Bind("x", first); err != nil {
		t.Fatal(err)
	}
	// Another member of the recorded group may re-bind under its own
	// address...
	second := descAt("g2", 1)
	second.Group = group
	if err := c.Bind("x", second); err != nil {
		t.Fatalf("group member re-bind: %v", err)
	}
	got, err := c.Lookup("x")
	if err != nil || got.Provider.Addr != "g2" {
		t.Fatalf("after member re-bind: %+v %v", got, err)
	}
	// ...including a member whose own descriptor names the current
	// provider in ITS group (the symmetric check), even if the existing
	// binding carried no group list.
	if err := c.Rebind("x", descAt("g2", 1)); err != nil {
		t.Fatal(err)
	}
	third := descAt("g3", 1)
	third.Group = group
	if err := c.Bind("x", third); err != nil {
		t.Fatalf("symmetric group re-bind: %v", err)
	}
	// A site outside the group still may not steal the name.
	err = c.Bind("x", descAt("intruder", 2))
	var re *rmi.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("outsider bind must fail remotely, got %v", err)
	}
}

func TestLookupMissing(t *testing.T) {
	_, c := newPair(t)
	_, err := c.Lookup("ghost")
	var re *rmi.RemoteError
	if !errors.As(err, &re) || !re.IsApp() {
		t.Fatalf("missing lookup: %v", err)
	}
}

func TestUnbind(t *testing.T) {
	_, c := newPair(t)
	if err := c.Bind("x", desc(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Unbind("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup("x"); err == nil {
		t.Fatal("lookup after unbind must fail")
	}
	if err := c.Unbind("x"); err == nil {
		t.Fatal("double unbind must fail")
	}
}

func TestList(t *testing.T) {
	_, c := newPair(t)
	names, err := c.List()
	if err != nil || len(names) != 0 {
		t.Fatalf("empty list: %v %v", names, err)
	}
	for _, n := range []string{"b", "a", "c"} {
		if err := c.Bind(n, desc(1)); err != nil {
			t.Fatal(err)
		}
	}
	names, err = c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("list: %v", names)
	}
}

func TestServerValidation(t *testing.T) {
	s := NewServer()
	if err := s.Bind("", &replication.Descriptor{}); err == nil {
		t.Fatal("empty name must be rejected")
	}
	if err := s.Bind("x", nil); err == nil {
		t.Fatal("nil descriptor must be rejected")
	}
	if err := s.Rebind("", nil); err == nil {
		t.Fatal("rebind validation")
	}
}

func TestEndToEndReplicationViaNameServer(t *testing.T) {
	// Full bootstrap: S2 exports a graph root and binds it; S1 looks it up
	// and replicates through the descriptor.
	net := transport.NewMemNetwork(netsim.Loopback)
	nsrt, err := rmi.NewRuntime(net, "ns")
	if err != nil {
		t.Fatal(err)
	}
	defer nsrt.Close()
	if _, _, err := Serve(nsrt); err != nil {
		t.Fatal(err)
	}

	s2 := newSite(t, net, "s2", 2)
	s1 := newSite(t, net, "s1", 1)

	head := &nsDoc{Name: "root"}
	d, err := s2.eng.ExportObject(head)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewClient(s2.rt, WellKnownRef("ns")).Bind("graph/root", d); err != nil {
		t.Fatal(err)
	}

	got, err := NewClient(s1.rt, WellKnownRef("ns")).Lookup("graph/root")
	if err != nil {
		t.Fatal(err)
	}
	ref := s1.eng.RefFromDescriptor(got, replication.DefaultSpec)
	res, err := ref.Invoke("Title")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "root" {
		t.Fatalf("title: %#v", res[0])
	}
}

type nsDoc struct {
	Name string
}

func (d *nsDoc) Title() string { return d.Name }

type site struct {
	rt  *rmi.Runtime
	eng *replication.Engine
}

func newSite(t *testing.T, net transport.Network, name string, id uint16) *site {
	t.Helper()
	rt, err := rmi.NewRuntime(net, transport.Addr(name))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return &site{rt: rt, eng: replication.NewEngine(rt, newHeap(id))}
}

func newHeap(id uint16) *heap.Heap { return heap.New(id) }

func init() {
	objmodel.MustRegisterType("nameserver_test.doc", (*nsDoc)(nil))
}
