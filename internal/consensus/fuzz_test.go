package consensus

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"obiwan/internal/wal"
)

// walLogName / walLogMagic mirror internal/wal's on-disk layout so the
// fuzzer can corrupt a real store's tail. Pinned by TestWalLayoutPinned.
const (
	walLogName  = "wal.log"
	walLogMagic = "OBIWAL1\n"
)

func TestWalLayoutPinned(t *testing.T) {
	dir := t.TempDir()
	w, _, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("pin")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, walLogName))
	if err != nil {
		t.Fatalf("wal layout moved: %v", err)
	}
	if !bytes.HasPrefix(raw, []byte(walLogMagic)) {
		t.Fatalf("wal magic moved: % x", raw[:min(len(raw), 8)])
	}
}

// FuzzFoldRecords drives the consensus record fold over arbitrary record
// streams — the state an acceptor wakes up to after the WAL layer has
// already dropped a torn tail. It asserts the recovery contract:
//
//   - never panic;
//   - the log is always a contiguous 1..n prefix (prefix-consistency);
//   - folding is a fixed point: re-encoding the folded state and folding
//     again yields the same state.
func FuzzFoldRecords(f *testing.F) {
	// Seeds: a clean stream, a truncated/overwritten suffix, a vote
	// change, corrupt record bodies, junk kinds.
	f.Add(encodeMeta(3, "site-a"), encodeEntry(Entry{Term: 3, Index: 1, Data: []byte("x")}), encodeEntry(Entry{Term: 3, Index: 2, Data: []byte("y")}))
	f.Add(encodeEntry(Entry{Term: 1, Index: 1, Data: []byte("a")}), encodeTrunc(1), encodeEntry(Entry{Term: 2, Index: 1, Data: []byte("b")}))
	f.Add(encodeMeta(1, "a"), encodeMeta(2, "b"), encodeEntry(Entry{Term: 2, Index: 1}))
	f.Add([]byte{recEntry, 0xff}, []byte{recMeta}, []byte{0x7f, 1, 2})
	f.Add(encodeEntry(Entry{Term: 1, Index: 5, Data: []byte("gap")}), encodeTrunc(99), []byte{})

	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		records := [][]byte{a, b, c}
		term, voted, log := foldRecords(records)
		for i, ent := range log {
			if ent.Index != uint64(i)+1 {
				t.Fatalf("slot %d holds index %d: log is not a contiguous prefix", i, ent.Index)
			}
		}
		reenc := [][]byte{encodeMeta(term, voted)}
		for _, ent := range log {
			reenc = append(reenc, encodeEntry(ent))
		}
		term2, voted2, log2 := foldRecords(reenc)
		// append-to-nil normalizes empty vs nil slices for DeepEqual.
		log = append([]Entry(nil), log...)
		log2 = append([]Entry(nil), log2...)
		if term2 != term || voted2 != voted || !reflect.DeepEqual(log2, log) {
			t.Fatalf("fold not a fixed point: (%d,%q,%d entries) vs (%d,%q,%d entries)",
				term, voted, len(log), term2, voted2, len(log2))
		}
	})
}

// FuzzStoreTailCorruption writes a real consensus store, then truncates or
// flips bytes at the tail of the backing WAL file — the disk a member
// finds after a crash mid-append. OpenStore must recover a
// prefix-consistent acceptor: a contiguous log that is a prefix of what
// was acknowledged, with term/vote no newer than what the surviving
// records carry, and the store must stay usable (appendable) afterwards.
func FuzzStoreTailCorruption(f *testing.F) {
	f.Add(uint(0), uint8(0))    // pristine
	f.Add(uint(1), uint8(0))    // drop 1 byte
	f.Add(uint(17), uint8(0))   // drop into a frame body
	f.Add(uint(0), uint8(1))    // flip last byte
	f.Add(uint(5), uint8(0x80)) // flip high bit 5 bytes in

	f.Fuzz(func(t *testing.T, chop uint, flip uint8) {
		dir := t.TempDir()
		s, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetState(4, "site-b"); err != nil {
			t.Fatal(err)
		}
		var want []Entry
		for i := uint64(1); i <= 6; i++ {
			ent := Entry{Term: 4, Index: i, Data: []byte{byte(i), 0xAA}}
			if err := s.Append(ent); err != nil {
				t.Fatal(err)
			}
			want = append(want, ent)
		}
		if err := s.TruncateFrom(6); err != nil {
			t.Fatal(err)
		}
		want = want[:5]
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		path := filepath.Join(dir, walLogName)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if int(chop) < len(raw)-len(walLogMagic) {
			raw = raw[:len(raw)-int(chop)]
		}
		if flip != 0 && len(raw) > len(walLogMagic) {
			pos := len(raw) - 1 - int(chop)%8
			if pos >= len(walLogMagic) && pos < len(raw) {
				raw[pos] ^= flip
			}
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}

		s2, err := OpenStore(dir)
		if err != nil {
			t.Fatalf("reopen on corrupted tail: %v", err)
		}
		term, voted := s2.State()
		if term > 4 || (term == 4 && voted != "site-b") || (term != 0 && term != 4) {
			t.Fatalf("recovered vote (%d,%q) was never persisted", term, voted)
		}
		got := s2.Slice(1, 0)
		if uint64(len(got)) != s2.LastIndex() {
			t.Fatalf("Slice/LastIndex disagree: %d vs %d", len(got), s2.LastIndex())
		}
		// Prefix-consistency: whatever survived is a prefix of some state
		// the store passed through. The store went log=[1..5] then a
		// truncated slot 6, so any recovered log must be a prefix of
		// want, except that a lost trailing truncate record may leave
		// slot 6 visible again — also a state that was acknowledged.
		ref := append(append([]Entry(nil), want...), Entry{Term: 4, Index: 6, Data: []byte{6, 0xAA}})
		if len(got) > len(ref) {
			t.Fatalf("recovered %d entries, more than ever written", len(got))
		}
		for i, ent := range got {
			if ent.Index != uint64(i)+1 {
				t.Fatalf("recovered log has a gap at slot %d (index %d)", i, ent.Index)
			}
			if flip == 0 && !reflect.DeepEqual(ent, ref[i]) {
				t.Fatalf("recovered entry %d = %+v; want %+v", i, ent, ref[i])
			}
		}
		// The store must remain an acceptor: append past the recovered
		// tip and read it back after a clean reopen.
		next := Entry{Term: 5, Index: s2.LastIndex() + 1, Data: []byte("post")}
		if err := s2.Append(next); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
		s3, err := OpenStore(dir)
		if err != nil {
			t.Fatalf("third open: %v", err)
		}
		if got, ok := s3.EntryAt(next.Index); !ok || !reflect.DeepEqual(got, next) {
			t.Fatalf("post-recovery append lost: %+v ok=%v", got, ok)
		}
		if err := s3.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
