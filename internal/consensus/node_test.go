package consensus

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"obiwan/internal/netsim"
)

// cluster wires nodes together with direct in-memory calls (a 1ms
// simulated hop each way) so the protocol can be exercised without RMI.
type cluster struct {
	t     *testing.T
	clock *netsim.VirtualClock

	mu      sync.Mutex
	nodes   map[string]*Node
	down    map[string]bool
	applied map[string][]string
	events  []string
}

func newCluster(t *testing.T, seed int64, ids ...string) *cluster {
	t.Helper()
	c := &cluster{
		t:       t,
		clock:   netsim.NewVirtualClock(),
		nodes:   make(map[string]*Node),
		down:    make(map[string]bool),
		applied: make(map[string][]string),
	}
	t.Cleanup(c.clock.Stop)
	for _, id := range ids {
		c.start(id, seed, ids, NewMemStore())
	}
	return c
}

func (c *cluster) start(id string, seed int64, members []string, store *Store) {
	self := id
	n, err := New(Config{
		ID:      id,
		Members: members,
		Clock:   c.clock,
		Store:   store,
		Seed:    seed,
		Call: func(peer, method string, args ...any) ([]any, error) {
			c.clock.Sleep(time.Millisecond)
			c.mu.Lock()
			target := c.nodes[peer]
			dead := c.down[peer] || c.down[self]
			c.mu.Unlock()
			if dead || target == nil {
				return nil, errors.New("cluster: peer down")
			}
			var (
				res any
				err error
			)
			switch method {
			case "RequestVote":
				res, err = target.HandleRequestVote(args[0].(*VoteRequest))
			case "AppendEntries":
				res, err = target.HandleAppendEntries(args[0].(*AppendRequest))
			default:
				err = fmt.Errorf("cluster: unknown method %s", method)
			}
			c.clock.Sleep(time.Millisecond)
			if err != nil {
				return nil, err
			}
			return []any{res}, nil
		},
		Apply: func(ent Entry) any {
			c.mu.Lock()
			c.applied[self] = append(c.applied[self], string(ent.Data))
			c.mu.Unlock()
			return "applied:" + string(ent.Data)
		},
		OnEvent: func(ev Event) {
			c.mu.Lock()
			c.events = append(c.events, fmt.Sprintf("%s %s t%d", self, ev.Kind, ev.Term))
			c.mu.Unlock()
		},
	})
	if err != nil {
		c.t.Fatalf("start %s: %v", id, err)
	}
	c.mu.Lock()
	c.nodes[self] = n
	c.down[self] = false
	c.mu.Unlock()
	c.t.Cleanup(func() { n.Close() })
}

func (c *cluster) node(id string) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[id]
}

// kill makes a member permanently unreachable and stops its node.
func (c *cluster) kill(id string) {
	c.mu.Lock()
	c.down[id] = true
	n := c.nodes[id]
	c.mu.Unlock()
	if n != nil {
		n.Abandon()
	}
}

// leaderOf blocks (in simulated time) until some live member gates as
// servable leader and returns it.
func (c *cluster) leaderOf(timeout time.Duration) *Node {
	deadline := c.clock.Now().Add(timeout)
	for c.clock.Now().Before(deadline) {
		c.mu.Lock()
		var found *Node
		for id, n := range c.nodes {
			if !c.down[id] && n.Gate() == nil {
				found = n
				break
			}
		}
		c.mu.Unlock()
		if found != nil {
			return found
		}
		c.clock.Sleep(5 * time.Millisecond)
	}
	c.t.Fatalf("no servable leader within %v", timeout)
	return nil
}

func (c *cluster) appliedOf(id string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.applied[id]...)
}

func (c *cluster) waitApplied(ids []string, want []string, timeout time.Duration) {
	deadline := c.clock.Now().Add(timeout)
	for c.clock.Now().Before(deadline) {
		ok := true
		for _, id := range ids {
			if !reflect.DeepEqual(c.appliedOf(id), want) {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		c.clock.Sleep(5 * time.Millisecond)
	}
	for _, id := range ids {
		c.t.Logf("%s applied: %v", id, c.appliedOf(id))
	}
	c.t.Fatalf("members did not converge on %v within %v", want, timeout)
}

func TestElectionReplicationAndApply(t *testing.T) {
	c := newCluster(t, 7, "a", "b", "c")
	c.clock.Run(func() {
		lead := c.leaderOf(5 * time.Second)
		var want []string
		for i := 0; i < 5; i++ {
			cmd := fmt.Sprintf("cmd-%d", i)
			res, err := lead.Submit([]byte(cmd), 2*time.Second)
			if err != nil {
				t.Fatalf("submit %s: %v", cmd, err)
			}
			if res != "applied:"+cmd {
				t.Fatalf("submit %s: result %v", cmd, res)
			}
			want = append(want, cmd)
		}
		c.waitApplied([]string{"a", "b", "c"}, want, 5*time.Second)
	})
}

func TestFollowerRedirects(t *testing.T) {
	c := newCluster(t, 11, "a", "b", "c")
	c.clock.Run(func() {
		lead := c.leaderOf(5 * time.Second)
		// Followers must fail fast with a typed redirect at the leader.
		for _, id := range []string{"a", "b", "c"} {
			n := c.node(id)
			if n == lead {
				continue
			}
			// Heartbeats have flowed (the leader gates), so the hint is set.
			if hint, err := n.WaitLeader(2 * time.Second); err != nil || hint != lead.ID() {
				t.Fatalf("%s WaitLeader = %q, %v; want %q", id, hint, err, lead.ID())
			}
			_, err := n.Submit([]byte("x"), time.Second)
			var nl *NotLeaderError
			if !errors.As(err, &nl) {
				t.Fatalf("%s Submit error = %v; want NotLeaderError", id, err)
			}
			if nl.Hint != lead.ID() {
				t.Fatalf("%s redirect hint = %q; want %q", id, nl.Hint, lead.ID())
			}
		}
	})
}

func TestLeaderFailover(t *testing.T) {
	c := newCluster(t, 23, "a", "b", "c")
	c.clock.Run(func() {
		lead := c.leaderOf(5 * time.Second)
		if _, err := lead.Submit([]byte("before"), 2*time.Second); err != nil {
			t.Fatalf("submit before: %v", err)
		}
		killedAt := c.clock.Now()
		c.kill(lead.ID())

		next := c.leaderOf(10 * time.Second)
		if next.ID() == lead.ID() {
			t.Fatalf("dead member %s still leads", lead.ID())
		}
		latency := c.clock.Now().Sub(killedAt)
		// Bounded failover: a couple of election timeouts plus the lease.
		if latency > 3*time.Second {
			t.Fatalf("failover took %v", latency)
		}
		t.Logf("failover latency %v", latency)

		if _, err := next.Submit([]byte("after"), 2*time.Second); err != nil {
			t.Fatalf("submit after failover: %v", err)
		}
		var live []string
		for _, id := range []string{"a", "b", "c"} {
			if id != lead.ID() {
				live = append(live, id)
			}
		}
		c.waitApplied(live, []string{"before", "after"}, 5*time.Second)
	})
}

func TestLeaseLapsesWhenIsolated(t *testing.T) {
	c := newCluster(t, 31, "a", "b", "c")
	c.clock.Run(func() {
		lead := c.leaderOf(5 * time.Second)
		// Cut the leader off from both peers: its lease must lapse, and
		// Gate must stop admitting writes even though it still thinks it
		// leads (no one told it otherwise).
		c.mu.Lock()
		c.down[lead.ID()] = true
		c.mu.Unlock()
		deadline := c.clock.Now().Add(5 * time.Second)
		for c.clock.Now().Before(deadline) {
			if lead.Gate() != nil {
				return
			}
			c.clock.Sleep(5 * time.Millisecond)
		}
		t.Fatal("isolated leader still gates as servable")
	})
}

func TestRestartRetainsLogAndVote(t *testing.T) {
	dir := t.TempDir()
	clock := netsim.NewVirtualClock()
	defer clock.Stop()
	var applied []string
	open := func() *Node {
		st, err := OpenStore(dir)
		if err != nil {
			t.Fatalf("open store: %v", err)
		}
		n, err := New(Config{
			ID: "solo", Members: []string{"solo"}, Clock: clock, Store: st, Seed: 3,
			Apply: func(ent Entry) any { applied = append(applied, string(ent.Data)); return nil },
		})
		if err != nil {
			t.Fatalf("new node: %v", err)
		}
		return n
	}
	clock.Run(func() {
		n := open()
		if _, err := n.WaitLeader(5 * time.Second); err != nil {
			t.Fatalf("wait leader: %v", err)
		}
		if _, err := n.Submit([]byte("persisted"), time.Second); err != nil {
			t.Fatalf("submit: %v", err)
		}
		termBefore := n.Term()
		if err := n.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		applied = nil
		n = open()
		defer n.Close()
		if n.Term() < termBefore {
			t.Fatalf("term went backwards: %d < %d", n.Term(), termBefore)
		}
		if _, err := n.WaitLeader(5 * time.Second); err != nil {
			t.Fatalf("wait leader after restart: %v", err)
		}
		deadline := clock.Now().Add(5 * time.Second)
		for clock.Now().Before(deadline) && len(applied) == 0 {
			clock.Sleep(5 * time.Millisecond)
		}
		if !reflect.DeepEqual(applied, []string{"persisted"}) {
			t.Fatalf("replayed log = %v; want [persisted]", applied)
		}
	})
}

func TestDeterministicPerSeed(t *testing.T) {
	run := func() (leader string, events []string) {
		c := newCluster(t, 99, "a", "b", "c")
		c.clock.Run(func() {
			lead := c.leaderOf(5 * time.Second)
			leader = lead.ID()
			for i := 0; i < 3; i++ {
				if _, err := lead.Submit([]byte(fmt.Sprintf("d-%d", i)), 2*time.Second); err != nil {
					t.Fatalf("submit: %v", err)
				}
			}
			c.waitApplied([]string{"a", "b", "c"}, []string{"d-0", "d-1", "d-2"}, 5*time.Second)
		})
		c.mu.Lock()
		events = append([]string(nil), c.events...)
		c.mu.Unlock()
		return leader, events
	}
	l1, e1 := run()
	l2, e2 := run()
	if l1 != l2 {
		t.Fatalf("leaders differ across same-seed runs: %s vs %s", l1, l2)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("event streams differ across same-seed runs:\n%v\n%v", e1, e2)
	}
}
