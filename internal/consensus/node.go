// Package consensus is a Raft-style replicated log for small groups of
// sites (3–5 members). It exists so that an object's mastership can be a
// replicated *role* instead of a physical location: the site layer runs
// one Node per master group, proposes engine mutations as opaque commands,
// and replays committed entries deterministically on every member.
//
// The split of responsibilities follows the classical design:
//
//   - store.go is the persistent acceptor/voter state (term, vote, log),
//     layered on internal/wal — the fsynced, CRC-framed, torn-tail-safe
//     store consensus protocols assume;
//   - this file is the volatile protocol state machine: randomized
//     election on timeout, leader lease from heartbeat acks, log
//     replication with conflict truncation, majority commit (current-term
//     entries only), and in-order apply.
//
// Every delay and every background goroutine goes through a netsim.Clock,
// so a group under the discrete-event VirtualClock elects, fails over,
// and converges bit-identically per seed — which is how the chaos suite
// can assert bounded failover latency at all.
package consensus

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"obiwan/internal/codec"
	"obiwan/internal/netsim"
	"obiwan/internal/telemetry"
)

// Protocol errors.
var (
	// ErrLostLeadership is returned to a proposer whose entry was
	// truncated by a successor's conflicting log — the proposal did not
	// survive the election.
	ErrLostLeadership = errors.New("consensus: lost leadership before commit")
	// ErrProposalTimeout is returned when a proposal does not commit
	// within the submitter's budget (no quorum reachable).
	ErrProposalTimeout = errors.New("consensus: proposal timed out")
	// ErrClosed is returned by operations on a closed node.
	ErrClosed = errors.New("consensus: node closed")
)

// NotLeaderError redirects a caller to the member this node believes is
// the leader (empty when no leader is known yet).
type NotLeaderError struct {
	Hint string
}

func (e *NotLeaderError) Error() string {
	return fmt.Sprintf("consensus: not the leader (hint %q)", e.Hint)
}

// Wire types. Registered with the codec so the site layer can export a
// Service over plain RMI.

// VoteRequest solicits a vote for Candidate in Term.
type VoteRequest struct {
	Term      uint64
	Candidate string
	LastIndex uint64
	LastTerm  uint64
}

// VoteReply grants or refuses a vote.
type VoteReply struct {
	Term    uint64
	Granted bool
}

// AppendRequest replicates log entries (a heartbeat when Entries is
// empty) and advertises the leader's commit index.
type AppendRequest struct {
	Term      uint64
	Leader    string
	PrevIndex uint64
	PrevTerm  uint64
	Entries   []Entry
	Commit    uint64
}

// AppendReply reports consistency-check success. MatchHint is the highest
// index the follower's log matches (on success) or a back-up hint for the
// leader's next attempt (on failure).
type AppendReply struct {
	Term      uint64
	Success   bool
	MatchHint uint64
}

func init() {
	codec.MustRegister("obiwan.consensus.VoteRequest", VoteRequest{})
	codec.MustRegister("obiwan.consensus.VoteReply", VoteReply{})
	codec.MustRegister("obiwan.consensus.AppendRequest", AppendRequest{})
	codec.MustRegister("obiwan.consensus.AppendReply", AppendReply{})
}

// Event is an observability hook record: elections, leadership changes,
// truncations. The site layer feeds these to the flight recorder so
// `obiwan-admin flight` can explain a failover after the fact.
type Event struct {
	Kind   string // "consensus.candidate", "consensus.elected", "consensus.stepdown", "consensus.truncate"
	Term   uint64
	Leader string
	Detail string
}

// Config assembles a Node.
type Config struct {
	// ID is this member's stable identity (its site address).
	ID string
	// Members lists every group member, including ID. Order is not
	// significant; membership is static for the life of the group.
	Members []string
	// Clock drives every timer and goroutine (netsim.Real or a
	// VirtualClock). Required.
	Clock netsim.Clock
	// Store holds the durable term/vote/log state. Required.
	Store *Store
	// Call invokes method on a peer's consensus service: the site layer
	// routes it over RMI. Must be safe for concurrent use and must not
	// call back into the node.
	Call func(peer, method string, args ...any) ([]any, error)
	// Apply replays one committed entry into the state machine, in index
	// order, exactly once per process lifetime. Its return value is
	// handed to the local Submit waiter, if any. Barrier entries (nil
	// Data) are not passed to Apply.
	Apply func(ent Entry) any
	// OnEvent observes protocol transitions. Called with internal locks
	// held: record and return, never call back into the node.
	OnEvent func(ev Event)
	// Seed makes the randomized election timeouts deterministic per
	// member (mixed with ID), which the virtual-clock suites rely on.
	Seed int64
	// Metrics receives protocol counters (elections, heartbeats), the
	// current-term gauge, and the election-latency histogram. Optional;
	// nil (telemetry disabled) costs one pointer nil-check per event.
	Metrics *telemetry.Metrics

	// ElectionTimeout is the base follower patience; actual timeouts are
	// uniform in [ElectionTimeout, 2×ElectionTimeout). Default 200ms.
	ElectionTimeout time.Duration
	// Heartbeat is the leader's replication/keepalive period. Default
	// ElectionTimeout/10.
	Heartbeat time.Duration
	// Lease is how long a majority-acked heartbeat entitles the leader
	// to serve reads without re-confirming. Must stay below
	// ElectionTimeout. Default ElectionTimeout×3/4.
	Lease time.Duration
}

type role int

const (
	follower role = iota
	candidate
	leader
)

// maxBatch caps entries per AppendEntries round.
const maxBatch = 64

type waiter struct {
	term uint64
	done bool
	res  any
	err  error
}

// Node is one member's consensus participant.
type Node struct {
	cfg     Config
	clock   netsim.Clock
	store   *Store
	peers   []string // members minus self
	quorum  int
	applyMu sync.Mutex // serializes Apply across commit-advancing paths

	// Pre-resolved instruments (nil no-ops when telemetry is off). All
	// operations are atomic, so they are safe to touch with n.mu held.
	met struct {
		elections  *telemetry.Counter
		heartbeats *telemetry.Counter
		term       *telemetry.Gauge
		electionNS *telemetry.Histogram
	}

	mu               sync.Mutex
	cond             *netsim.Cond // all waits: submit, WaitLeader, peer senders
	rng              *rand.Rand
	role             role
	term             uint64
	votedFor         string
	leader           string
	commit           uint64
	applied          uint64
	electionDeadline time.Time
	candidacySince   time.Time // first candidacy of the current leaderless stretch
	nextBeat         time.Time
	votes            map[string]bool
	nextIndex        map[string]uint64
	matchIndex       map[string]uint64
	ackTime          map[string]time.Time
	lastSend         map[string]time.Time
	leaseUntil       time.Time
	barrier          uint64 // index of this term's no-op; serving waits for it
	waiters          map[uint64]*waiter
	closedFlag       bool
	closed           chan struct{}
	closeOnce        sync.Once
}

// New builds and starts a node: its timer loop begins immediately, so a
// quorum of started members will elect a leader within a few election
// timeouts.
func New(cfg Config) (*Node, error) {
	if cfg.ID == "" || cfg.Clock == nil || cfg.Store == nil {
		return nil, errors.New("consensus: Config needs ID, Clock and Store")
	}
	found := false
	var peers []string
	for _, m := range cfg.Members {
		if m == cfg.ID {
			found = true
			continue
		}
		peers = append(peers, m)
	}
	if !found {
		return nil, fmt.Errorf("consensus: member list %v does not contain %q", cfg.Members, cfg.ID)
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 200 * time.Millisecond
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = cfg.ElectionTimeout / 10
	}
	if cfg.Lease <= 0 || cfg.Lease >= cfg.ElectionTimeout {
		cfg.Lease = cfg.ElectionTimeout * 3 / 4
	}
	n := &Node{
		cfg:        cfg,
		clock:      cfg.Clock,
		store:      cfg.Store,
		peers:      peers,
		quorum:     len(cfg.Members)/2 + 1,
		waiters:    make(map[uint64]*waiter),
		nextIndex:  make(map[string]uint64),
		matchIndex: make(map[string]uint64),
		ackTime:    make(map[string]time.Time),
		lastSend:   make(map[string]time.Time),
		closed:     make(chan struct{}),
	}
	n.cond = netsim.NewCond(n.clock, &n.mu)
	n.met.elections = cfg.Metrics.Counter("consensus.elections")
	n.met.heartbeats = cfg.Metrics.Counter("consensus.heartbeats")
	n.met.term = cfg.Metrics.Gauge("consensus.term")
	n.met.electionNS = cfg.Metrics.Histogram("consensus.election_latency_ns")
	// Per-member deterministic timeouts: mix the ID into the seed so
	// members sharing a scenario seed still desynchronize their timers.
	h := int64(0)
	for _, c := range cfg.ID {
		h = h*131 + int64(c)
	}
	n.rng = rand.New(rand.NewSource(cfg.Seed ^ h))
	n.term, n.votedFor = n.store.State()
	n.met.term.Set(int64(n.term))
	n.electionDeadline = n.clock.Now().Add(n.randTimeoutLocked())
	n.clock.Go(n.run)
	return n, nil
}

// ID returns this member's identity.
func (n *Node) ID() string { return n.cfg.ID }

// Members returns the static group membership.
func (n *Node) Members() []string { return append([]string(nil), n.cfg.Members...) }

// Term returns the current term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// Leader returns the member this node believes leads the current term
// ("" when unknown).
func (n *Node) Leader() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leader
}

// IsLeader reports whether this node currently leads.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == leader
}

// CommitIndex returns the committed frontier of the log.
func (n *Node) CommitIndex() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commit
}

// Gate reports whether this member may serve group state right now: it
// must lead, hold an unexpired majority lease, and have applied its own
// term's barrier entry (so its state machine includes everything any
// predecessor committed). Otherwise it returns a NotLeaderError carrying
// the best-known redirect hint.
func (n *Node) Gate() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closedFlag {
		return ErrClosed
	}
	if n.role == leader && n.applied >= n.barrier && n.clock.Now().Before(n.leaseUntil) {
		return nil
	}
	hint := n.leader
	if n.role == leader {
		hint = "" // leading but lease lapsed or barrier pending: retry here later
	}
	return &NotLeaderError{Hint: hint}
}

// WaitLeader blocks until some member is known to lead (possibly this
// one) and returns its identity.
func (n *Node) WaitLeader(timeout time.Duration) (string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	timedOut := false
	t := n.clock.AfterFunc(timeout, func() {
		n.mu.Lock()
		timedOut = true
		n.cond.Broadcast()
		n.mu.Unlock()
	})
	defer t.Stop()
	for n.leader == "" && !n.closedFlag && !timedOut {
		n.cond.Wait()
	}
	if n.leader != "" {
		return n.leader, nil
	}
	if n.closedFlag {
		return "", ErrClosed
	}
	return "", fmt.Errorf("consensus: no leader within %v", timeout)
}

// Submit proposes data as the next log entry and blocks until it is
// committed AND applied locally, returning Apply's result. Non-leaders
// fail fast with a NotLeaderError redirect.
func (n *Node) Submit(data []byte, timeout time.Duration) (any, error) {
	n.mu.Lock()
	if n.closedFlag {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if n.role != leader {
		hint := n.leader
		n.mu.Unlock()
		return nil, &NotLeaderError{Hint: hint}
	}
	term := n.term
	idx := n.store.LastIndex() + 1
	if err := n.store.Append(Entry{Term: term, Index: idx, Data: data}); err != nil {
		n.mu.Unlock()
		return nil, err
	}
	w := &waiter{term: term}
	n.waiters[idx] = w
	n.maybeCommitLocked() // single-member groups commit on append
	n.cond.Broadcast()    // kick the peer senders
	n.mu.Unlock()
	n.applyAll()

	n.mu.Lock()
	t := n.clock.AfterFunc(timeout, func() {
		n.mu.Lock()
		if !w.done {
			w.done, w.err = true, ErrProposalTimeout
		}
		n.cond.Broadcast()
		n.mu.Unlock()
	})
	for !w.done {
		n.cond.Wait()
	}
	res, err := w.res, w.err
	delete(n.waiters, idx)
	n.mu.Unlock()
	t.Stop()
	return res, err
}

// Close stops the node and flushes the store. Waiting proposals fail with
// ErrClosed.
func (n *Node) Close() error {
	n.shutdown()
	return n.store.Close()
}

// Abandon stops the node without flushing — the crash analogue.
func (n *Node) Abandon() {
	n.shutdown()
	n.store.Abandon()
}

func (n *Node) shutdown() {
	n.closeOnce.Do(func() {
		n.mu.Lock()
		n.closedFlag = true
		close(n.closed)
		for _, w := range n.waiters {
			if !w.done {
				w.done, w.err = true, ErrClosed
			}
		}
		n.cond.Broadcast()
		n.mu.Unlock()
	})
}

func (n *Node) event(ev Event) {
	if n.cfg.OnEvent != nil {
		n.cfg.OnEvent(ev)
	}
}

func (n *Node) randTimeoutLocked() time.Duration {
	e := n.cfg.ElectionTimeout
	return e + time.Duration(n.rng.Int63n(int64(e)))
}

// run is the timer loop: it wakes at least every heartbeat interval,
// starts elections when the deadline lapses, and broadcasts the send
// condition so leader peer loops emit heartbeats on schedule.
func (n *Node) run() {
	for {
		n.mu.Lock()
		if n.closedFlag {
			n.mu.Unlock()
			return
		}
		now := n.clock.Now()
		if n.role == leader {
			if !now.Before(n.nextBeat) {
				n.nextBeat = now.Add(n.cfg.Heartbeat)
				n.cond.Broadcast()
			}
		} else if !now.Before(n.electionDeadline) {
			n.startElectionLocked(now)
		}
		n.mu.Unlock()
		n.applyAll()
		if !n.clock.SleepUntilCancel(n.clock.Now().Add(n.cfg.Heartbeat), n.closed) {
			return
		}
	}
}

// startElectionLocked begins a candidacy: bump the term, vote for self
// (persisted before anything leaves the site), and solicit the peers.
func (n *Node) startElectionLocked(now time.Time) {
	n.role = candidate
	n.term++
	n.votedFor = n.cfg.ID
	n.leader = ""
	if err := n.store.SetState(n.term, n.votedFor); err != nil {
		// A store that cannot persist votes must not vote: retry later.
		n.role = follower
		n.electionDeadline = now.Add(n.randTimeoutLocked())
		return
	}
	n.votes = map[string]bool{n.cfg.ID: true}
	n.electionDeadline = now.Add(n.randTimeoutLocked())
	n.met.elections.Inc()
	n.met.term.Set(int64(n.term))
	if n.candidacySince.IsZero() {
		// First candidacy of this leaderless stretch: election latency
		// measures from here to a win, spanning re-elections.
		n.candidacySince = now
	}
	term := n.term
	lastIdx := n.store.LastIndex()
	lastTerm := n.store.TermAt(lastIdx)
	n.event(Event{Kind: "consensus.candidate", Term: term, Detail: n.cfg.ID})
	for _, p := range n.peers {
		peer := p
		n.clock.Go(func() { n.solicitVote(peer, term, lastIdx, lastTerm) })
	}
	n.maybeWinLocked(term) // single-member group
}

func (n *Node) solicitVote(peer string, term, lastIdx, lastTerm uint64) {
	res, err := n.call(peer, "RequestVote", &VoteRequest{
		Term: term, Candidate: n.cfg.ID, LastIndex: lastIdx, LastTerm: lastTerm,
	})
	if err != nil {
		return
	}
	rep, ok := res.(*VoteReply)
	if !ok {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closedFlag || n.term != term || n.role != candidate {
		return
	}
	if rep.Term > n.term {
		n.stepDownLocked(rep.Term, "")
		return
	}
	if rep.Granted {
		n.votes[peer] = true
		n.maybeWinLocked(term)
	}
}

func (n *Node) maybeWinLocked(term uint64) {
	if n.role != candidate || n.term != term || len(n.votes) < n.quorum {
		return
	}
	n.role = leader
	n.leader = n.cfg.ID
	now := n.clock.Now()
	n.nextBeat = now
	for _, p := range n.peers {
		n.nextIndex[p] = n.store.LastIndex() + 1
		n.matchIndex[p] = 0
		n.ackTime[p] = time.Time{}
		n.lastSend[p] = time.Time{}
	}
	// Commit barrier: entries from prior terms may only commit beneath a
	// current-term entry, and serving waits until it is applied.
	idx := n.store.LastIndex() + 1
	if err := n.store.Append(Entry{Term: term, Index: idx}); err == nil {
		n.barrier = idx
	}
	n.leaseUntil = time.Time{} // no lease until a majority acks
	if len(n.peers) == 0 {
		n.leaseUntil = now.Add(365 * 24 * time.Hour)
	}
	n.maybeCommitLocked()
	if !n.candidacySince.IsZero() {
		n.met.electionNS.ObserveDuration(now.Sub(n.candidacySince))
		n.candidacySince = time.Time{}
	}
	n.event(Event{Kind: "consensus.elected", Term: term, Leader: n.cfg.ID})
	for _, p := range n.peers {
		peer := p
		n.clock.Go(func() { n.runPeer(peer, term) })
	}
	n.cond.Broadcast()
}

func (n *Node) stepDownLocked(term uint64, newLeader string) {
	wasLeader := n.role == leader
	if term > n.term {
		n.term = term
		n.votedFor = ""
		_ = n.store.SetState(n.term, n.votedFor)
		n.met.term.Set(int64(n.term))
	}
	n.role = follower
	n.leader = newLeader
	if newLeader != "" {
		n.candidacySince = time.Time{} // someone leads: the stretch is over
	}
	n.electionDeadline = n.clock.Now().Add(n.randTimeoutLocked())
	if wasLeader {
		n.event(Event{Kind: "consensus.stepdown", Term: n.term, Leader: newLeader, Detail: n.cfg.ID})
	}
	n.cond.Broadcast()
}

// leaderAliveLocked reports whether this node still leads term.
func (n *Node) leaderAliveLocked(term uint64) bool {
	return !n.closedFlag && n.role == leader && n.term == term
}

// runPeer is the per-peer replication loop for one term of leadership:
// woken by new proposals and by the heartbeat tick, it sends the peer's
// next batch (or an empty keepalive), processes the ack, and exits when
// leadership ends.
func (n *Node) runPeer(peer string, term uint64) {
	for {
		n.mu.Lock()
		for n.leaderAliveLocked(term) && !n.needSendLocked(peer) {
			n.cond.Wait()
		}
		if !n.leaderAliveLocked(term) {
			n.mu.Unlock()
			return
		}
		next := n.nextIndex[peer]
		req := &AppendRequest{
			Term: term, Leader: n.cfg.ID,
			PrevIndex: next - 1, PrevTerm: n.store.TermAt(next - 1),
			Entries: n.store.Slice(next, maxBatch), Commit: n.commit,
		}
		sentAt := n.clock.Now()
		n.lastSend[peer] = sentAt
		n.met.heartbeats.Inc()
		n.mu.Unlock()

		res, err := n.call(peer, "AppendEntries", req)

		n.mu.Lock()
		if !n.leaderAliveLocked(term) {
			n.mu.Unlock()
			return
		}
		if err != nil {
			n.mu.Unlock() // unreachable peer: the next tick retries
			continue
		}
		rep, ok := res.(*AppendReply)
		if !ok {
			n.mu.Unlock()
			continue
		}
		if rep.Term > n.term {
			n.stepDownLocked(rep.Term, "")
			n.mu.Unlock()
			return
		}
		if rep.Success {
			m := req.PrevIndex + uint64(len(req.Entries))
			if m > n.matchIndex[peer] {
				n.matchIndex[peer] = m
			}
			n.nextIndex[peer] = n.matchIndex[peer] + 1
			n.ackTime[peer] = sentAt
			n.refreshLeaseLocked()
			n.maybeCommitLocked()
		} else {
			// Log divergence: back up (the hint skips the linear probe).
			ni := n.nextIndex[peer]
			switch {
			case rep.MatchHint+1 < ni:
				n.nextIndex[peer] = rep.MatchHint + 1
			case ni > 1:
				n.nextIndex[peer] = ni - 1
			}
		}
		n.mu.Unlock()
		n.applyAll()
	}
}

func (n *Node) needSendLocked(peer string) bool {
	if n.store.LastIndex() >= n.nextIndex[peer] {
		return true
	}
	return n.clock.Now().Sub(n.lastSend[peer]) >= n.cfg.Heartbeat
}

// refreshLeaseLocked recomputes the read lease: it extends Lease past the
// send time of the quorum-th freshest acked heartbeat (self acks
// implicitly "now"). Correctness leans on the standard assumption of
// bounded clock skew across members — exact under netsim, configuration
// policy on real deployments.
func (n *Node) refreshLeaseLocked() {
	times := make([]time.Time, 0, len(n.peers)+1)
	times = append(times, n.clock.Now())
	for _, p := range n.peers {
		times = append(times, n.ackTime[p])
	}
	// Insertion sort, newest first (≤5 members).
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j].After(times[j-1]); j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	anchor := times[n.quorum-1]
	if anchor.IsZero() {
		return
	}
	if until := anchor.Add(n.cfg.Lease); until.After(n.leaseUntil) {
		n.leaseUntil = until
	}
}

// maybeCommitLocked advances the commit index to the highest slot of the
// CURRENT term that a majority stores (prior-term slots commit implicitly
// beneath it — the Raft safety rule).
func (n *Node) maybeCommitLocked() {
	last := n.store.LastIndex()
	for idx := last; idx > n.commit; idx-- {
		if n.store.TermAt(idx) != n.term {
			break
		}
		count := 1 // self
		for _, p := range n.peers {
			if n.matchIndex[p] >= idx {
				count++
			}
		}
		if count >= n.quorum {
			n.commit = idx
			n.cond.Broadcast()
			break
		}
	}
}

// applyAll replays committed-but-unapplied entries, in order, exactly
// once, delivering results to local waiters. applyMu keeps concurrent
// commit-advancers (peer loops, the RPC handler, Submit) from interleaving
// applies; n.mu is NOT held across the Apply callback, which reaches into
// the replication engine.
func (n *Node) applyAll() {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	for {
		n.mu.Lock()
		if n.applied >= n.commit {
			n.mu.Unlock()
			return
		}
		idx := n.applied + 1
		ent, ok := n.store.EntryAt(idx)
		if !ok {
			n.mu.Unlock()
			return
		}
		n.mu.Unlock()
		var res any
		if len(ent.Data) > 0 && n.cfg.Apply != nil {
			res = n.cfg.Apply(ent)
		}
		n.mu.Lock()
		n.applied = idx
		if w, ok := n.waiters[idx]; ok && !w.done {
			if w.term == ent.Term {
				w.res, w.done = res, true
			} else {
				w.err, w.done = ErrLostLeadership, true
			}
			n.cond.Broadcast()
		}
		n.mu.Unlock()
	}
}

// truncateLocked drops slots ≥ from and fails their waiters: a successor
// leader's log disagreed, so those proposals are gone for good.
func (n *Node) truncateLocked(from uint64) error {
	if err := n.store.TruncateFrom(from); err != nil {
		return err
	}
	for idx, w := range n.waiters {
		if idx >= from && !w.done {
			w.err, w.done = ErrLostLeadership, true
		}
	}
	n.event(Event{Kind: "consensus.truncate", Term: n.term, Detail: fmt.Sprintf("from=%d", from)})
	n.cond.Broadcast()
	return nil
}

// call invokes a peer RPC through the configured transport hook and
// unwraps the single reply value.
func (n *Node) call(peer, method string, req any) (any, error) {
	if n.cfg.Call == nil {
		return nil, errors.New("consensus: no transport configured")
	}
	res, err := n.cfg.Call(peer, method, req)
	if err != nil {
		return nil, err
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("consensus: %s: empty reply", method)
	}
	return res[0], nil
}

// HandleRequestVote is the acceptor side of elections.
func (n *Node) HandleRequestVote(req *VoteRequest) (*VoteReply, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closedFlag {
		return nil, ErrClosed
	}
	if req.Term < n.term {
		return &VoteReply{Term: n.term}, nil
	}
	if req.Term > n.term {
		n.stepDownLocked(req.Term, "")
	}
	lastIdx := n.store.LastIndex()
	lastTerm := n.store.TermAt(lastIdx)
	upToDate := req.LastTerm > lastTerm || (req.LastTerm == lastTerm && req.LastIndex >= lastIdx)
	if (n.votedFor == "" || n.votedFor == req.Candidate) && upToDate {
		n.votedFor = req.Candidate
		if err := n.store.SetState(n.term, n.votedFor); err != nil {
			return nil, err
		}
		n.electionDeadline = n.clock.Now().Add(n.randTimeoutLocked())
		return &VoteReply{Term: n.term, Granted: true}, nil
	}
	return &VoteReply{Term: n.term}, nil
}

// HandleAppendEntries is the acceptor side of replication.
func (n *Node) HandleAppendEntries(req *AppendRequest) (*AppendReply, error) {
	n.mu.Lock()
	if n.closedFlag {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if req.Term < n.term {
		rep := &AppendReply{Term: n.term}
		n.mu.Unlock()
		return rep, nil
	}
	if req.Term > n.term || n.role != follower {
		n.stepDownLocked(req.Term, req.Leader)
	}
	if n.leader != req.Leader {
		n.leader = req.Leader
		n.candidacySince = time.Time{}
		n.cond.Broadcast() // WaitLeader learns the leader from heartbeats
	}
	n.electionDeadline = n.clock.Now().Add(n.randTimeoutLocked())

	last := n.store.LastIndex()
	if req.PrevIndex > last ||
		(req.PrevIndex >= 1 && n.store.TermAt(req.PrevIndex) != req.PrevTerm) {
		hint := last
		if req.PrevIndex <= last {
			hint = req.PrevIndex - 1
		}
		rep := &AppendReply{Term: n.term, MatchHint: hint}
		n.mu.Unlock()
		return rep, nil
	}
	for _, ent := range req.Entries {
		if ent.Index <= n.store.LastIndex() {
			if n.store.TermAt(ent.Index) == ent.Term {
				continue // duplicate delivery
			}
			if err := n.truncateLocked(ent.Index); err != nil {
				n.mu.Unlock()
				return nil, err
			}
		}
		if err := n.store.Append(ent); err != nil {
			n.mu.Unlock()
			return nil, err
		}
	}
	lastNew := req.PrevIndex + uint64(len(req.Entries))
	if req.Commit > n.commit {
		c := req.Commit
		if c > lastNew {
			c = lastNew
		}
		if c > n.commit {
			n.commit = c
			n.cond.Broadcast()
		}
	}
	rep := &AppendReply{Term: n.term, Success: true, MatchHint: lastNew}
	n.mu.Unlock()
	n.applyAll()
	return rep, nil
}

// Service is the RMI-facing wrapper the site layer exports at a
// well-known object id on every group member.
type Service struct {
	n *Node
}

// NewService wraps a node for export.
func NewService(n *Node) *Service { return &Service{n: n} }

// Iface is the symbolic RMI interface name of the consensus service.
const Iface = "obiwan.Consensus"

// RequestVote serves a peer's vote solicitation.
func (s *Service) RequestVote(req *VoteRequest) (*VoteReply, error) {
	return s.n.HandleRequestVote(req)
}

// AppendEntries serves a peer's replication round.
func (s *Service) AppendEntries(req *AppendRequest) (*AppendReply, error) {
	return s.n.HandleAppendEntries(req)
}
