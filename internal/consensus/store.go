package consensus

import (
	"fmt"
	"sync"

	"obiwan/internal/codec"
	"obiwan/internal/wal"
)

// The store is the node's persistent acceptor/voter state, layered on the
// same CRC-framed write-ahead log the rest of the system trusts: the WAL
// is the persistent store Paxos-style protocols assume and rarely specify.
// Three record kinds suffice:
//
//	meta     — current term and the vote cast in it (one logical cell,
//	           last-record-wins on replay);
//	entry    — one log slot {term, index, data}, appended in index order;
//	truncate — "drop every slot ≥ from", written before a conflicting
//	           suffix is overwritten.
//
// Replay folds the record stream in order. The WAL already truncates torn
// tails to the last whole frame, so a crash mid-append loses at most the
// suffix being written — exactly the prefix-consistency a consensus log
// needs: what survives is a prefix of what was acknowledged, and the vote
// cell is never newer than the log it was persisted with. Records that
// cannot fold (an index gap after corruption) end the fold: everything
// before them is kept, everything after is dropped, which the tail fuzzer
// in fuzz_test.go asserts.

const (
	recMeta  = 1
	recEntry = 2
	recTrunc = 3
)

// Entry is one agreed (or proposed) slot of the replicated log. Index is
// 1-based; Data is the opaque command the state machine applies. A nil
// Data is a leadership barrier no-op (see Node).
type Entry struct {
	Term  uint64
	Index uint64
	Data  []byte
}

func init() {
	codec.MustRegister("obiwan.consensus.Entry", Entry{})
}

func encodeMeta(term uint64, votedFor string) []byte {
	e := codec.NewEncoder(16 + len(votedFor))
	_ = e.WriteByte(recMeta)
	e.WriteUvarint(term)
	e.WriteString(votedFor)
	return e.Bytes()
}

func encodeEntry(ent Entry) []byte {
	e := codec.NewEncoder(24 + len(ent.Data))
	_ = e.WriteByte(recEntry)
	e.WriteUvarint(ent.Term)
	e.WriteUvarint(ent.Index)
	e.WriteBytes(ent.Data)
	return e.Bytes()
}

func encodeTrunc(from uint64) []byte {
	e := codec.NewEncoder(12)
	_ = e.WriteByte(recTrunc)
	e.WriteUvarint(from)
	return e.Bytes()
}

// foldRecords replays a record stream into (term, votedFor, log). It is
// total: undecodable or non-contiguous records end the fold, keeping the
// consistent prefix — the recovery semantics the fuzzer pins down.
func foldRecords(records [][]byte) (term uint64, votedFor string, log []Entry) {
	for _, rec := range records {
		d := codec.NewDecoder(rec)
		kind, err := d.ReadByte()
		if err != nil {
			return term, votedFor, log
		}
		switch kind {
		case recMeta:
			t, err := d.ReadUvarint()
			if err != nil {
				return term, votedFor, log
			}
			v, err := d.ReadString()
			if err != nil {
				return term, votedFor, log
			}
			term, votedFor = t, v
		case recEntry:
			t, err := d.ReadUvarint()
			if err != nil {
				return term, votedFor, log
			}
			idx, err := d.ReadUvarint()
			if err != nil {
				return term, votedFor, log
			}
			data, err := d.ReadBytes()
			if err != nil {
				return term, votedFor, log
			}
			switch {
			case idx == uint64(len(log))+1:
				log = append(log, Entry{Term: t, Index: idx, Data: data})
			case idx >= 1 && idx <= uint64(len(log)):
				// Overwrite without an explicit truncate record: legal
				// (the truncate is advisory compression), conflict-wins.
				log = append(log[:idx-1], Entry{Term: t, Index: idx, Data: data})
			default:
				// An index gap: the records between were lost. Nothing
				// after them can be trusted to be contiguous.
				return term, votedFor, log
			}
		case recTrunc:
			from, err := d.ReadUvarint()
			if err != nil {
				return term, votedFor, log
			}
			if from >= 1 && from <= uint64(len(log)) {
				log = log[:from-1]
			}
		default:
			return term, votedFor, log
		}
	}
	return term, votedFor, log
}

// Store holds a node's durable state: current term, the vote cast in it,
// and the log of entries. A nil wal backing (NewMemStore) keeps the same
// state in memory only — the configuration for sites whose group accepts
// that a member which loses its disk also loses its vote.
type Store struct {
	mu       sync.Mutex
	w        *wal.Store // nil: memory-only
	term     uint64
	votedFor string
	log      []Entry
}

// NewMemStore returns a volatile store (no disk backing).
func NewMemStore() *Store { return &Store{} }

// OpenStore opens (or creates) the durable consensus state under dir,
// replaying whatever survives in the log. Torn tails were already dropped
// by the WAL layer; foldRecords drops anything non-contiguous after them.
func OpenStore(dir string) (*Store, error) {
	w, recovered, err := wal.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("consensus: open store: %w", err)
	}
	s := &Store{w: w}
	s.term, s.votedFor, s.log = foldRecords(recovered.Records())
	return s, nil
}

func (s *Store) append(payload []byte) error {
	if s.w == nil {
		return nil
	}
	return s.w.Append(payload)
}

// State returns the persisted term and vote.
func (s *Store) State() (term uint64, votedFor string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.term, s.votedFor
}

// SetState persists a new term/vote pair. It must hit the disk before the
// vote (or a message implying it) leaves the site: a vote forgotten across
// a restart is a double vote waiting to happen.
func (s *Store) SetState(term uint64, votedFor string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(encodeMeta(term, votedFor)); err != nil {
		return err
	}
	s.term, s.votedFor = term, votedFor
	return nil
}

// LastIndex returns the index of the newest log slot (0 when empty).
func (s *Store) LastIndex() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(len(s.log))
}

// TermAt returns the term of the slot at index (0 for index 0 or out of
// range).
func (s *Store) TermAt(index uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if index < 1 || index > uint64(len(s.log)) {
		return 0
	}
	return s.log[index-1].Term
}

// EntryAt returns the slot at index.
func (s *Store) EntryAt(index uint64) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if index < 1 || index > uint64(len(s.log)) {
		return Entry{}, false
	}
	return s.log[index-1], true
}

// Slice returns a copy of the slots from index on, capped at max entries
// (0: no cap).
func (s *Store) Slice(from uint64, max int) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < 1 {
		from = 1
	}
	if from > uint64(len(s.log)) {
		return nil
	}
	out := s.log[from-1:]
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return append([]Entry(nil), out...)
}

// Append persists and installs entries; each must extend the log by
// exactly one slot.
func (s *Store) Append(entries ...Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ent := range entries {
		if ent.Index != uint64(len(s.log))+1 {
			return fmt.Errorf("consensus: append index %d after %d", ent.Index, len(s.log))
		}
		if err := s.append(encodeEntry(ent)); err != nil {
			return err
		}
		s.log = append(s.log, ent)
	}
	return nil
}

// TruncateFrom drops every slot at index ≥ from (a conflicting suffix
// being overwritten by the leader's log).
func (s *Store) TruncateFrom(from uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < 1 || from > uint64(len(s.log)) {
		return nil
	}
	if err := s.append(encodeTrunc(from)); err != nil {
		return err
	}
	s.log = s.log[:from-1]
	return nil
}

// Compact rewrites the backing log as one meta record plus the current
// entries, dropping superseded meta records and truncated suffixes.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	records := make([][]byte, 0, len(s.log)+1)
	records = append(records, encodeMeta(s.term, s.votedFor))
	for _, ent := range s.log {
		records = append(records, encodeEntry(ent))
	}
	return s.w.Compact(records)
}

// Close flushes and closes the backing log (no-op for memory stores).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	return s.w.Close()
}

// Abandon releases the backing log without flushing — the crash analogue,
// used by Site.Kill.
func (s *Store) Abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w != nil {
		s.w.Abandon()
	}
}
