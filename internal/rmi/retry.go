package rmi

import (
	"time"
)

// RetryPolicy controls how a Runtime retries failed outbound calls.
//
// A call is retried only on transient transport failures (see
// transport.IsTransient): dropped messages, link disconnections, dead
// connections, unreachable peers. Application faults and protocol errors
// never retry. Every resend reuses the call's id, and the server suppresses
// duplicate executions, so a retried call is exactly-once from the
// application's point of view even when a reply was lost rather than the
// request.
//
// The per-call timeout passed to Call/CallTimeout is the overall deadline:
// backoff waits and resends all fit inside it, and when it expires the call
// fails with ErrTimeout no matter how many attempts remain.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included).
	// Values below 1 are treated as 1: a single attempt, no retries.
	MaxAttempts int
	// BaseBackoff is the wait before the first retry (default 2ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 250ms).
	MaxBackoff time.Duration
	// Multiplier is the backoff growth factor per retry (default 2).
	Multiplier float64
	// Jitter randomizes each backoff by ±Jitter fraction (e.g. 0.2 →
	// ±20%), decorrelating retry storms from concurrent callers. Zero
	// disables jitter, which keeps retry timing reproducible in tests.
	Jitter float64
	// PerTryTimeout bounds the wait for a single attempt's reply. When it
	// elapses the call is re-sent (same id — the server deduplicates) with
	// backoff, until MaxAttempts or the overall deadline is exhausted.
	// Zero waits the full remaining deadline, so a lost reply is only
	// recovered by the connection failing, not by resending.
	PerTryTimeout time.Duration
}

// DefaultRetryPolicy is the runtime default: a handful of quick retries
// with exponential backoff, no per-try resends.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  250 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
	}
}

// NoRetry is the pre-resilience behavior: one attempt, failures surface
// immediately.
func NoRetry() RetryPolicy { return RetryPolicy{MaxAttempts: 1} }

// normalized fills zero fields with defaults so arithmetic is safe.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 2 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 250 * time.Millisecond
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// Backoff returns the nominal (jitter-free) wait before retry number retry
// (1-based: retry 1 follows the first failed attempt). The wait grows
// geometrically from BaseBackoff and saturates at MaxBackoff.
func (p RetryPolicy) Backoff(retry int) time.Duration {
	p = p.normalized()
	if retry < 1 {
		retry = 1
	}
	d := float64(p.BaseBackoff)
	for i := 1; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxBackoff) {
			return p.MaxBackoff
		}
	}
	if d > float64(p.MaxBackoff) {
		return p.MaxBackoff
	}
	return time.Duration(d)
}

// jittered applies the policy's jitter to a nominal backoff using the
// runtime's RNG.
func (rt *Runtime) jittered(d time.Duration) time.Duration {
	if rt.retry.Jitter <= 0 || d <= 0 {
		return d
	}
	rt.rngMu.Lock()
	f := 1 + rt.retry.Jitter*(2*rt.rng.Float64()-1)
	rt.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// sleepBackoff waits the jittered backoff for retry number retry, bounded
// by the overall deadline. It returns false when the deadline leaves no
// room for the wait (the call must time out instead of sleeping past it)
// or the runtime closes mid-wait. The sleep runs on the runtime's clock,
// so under a virtual clock backoff costs no wall time.
func (rt *Runtime) sleepBackoff(retry int, deadline time.Time) bool {
	d := rt.jittered(rt.retry.Backoff(retry))
	now := rt.clock.Now()
	if deadline.Sub(now) <= d {
		return false
	}
	return rt.clock.SleepUntilCancel(now.Add(d), rt.closed)
}
