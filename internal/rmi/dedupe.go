package rmi

import (
	"sync"

	"obiwan/internal/netsim"
)

// The duplicate-suppression table makes retried calls exactly-once from the
// application's view. A client that re-sends a call (its reply was lost, or
// the connection died between send and receive) reuses the call's
// (Client, ID) identity; the server executes the first arrival and answers
// every later one from the recorded response frame — including arrivals on
// a different connection after a redial, and arrivals while the first
// execution is still running (those wait for it to finish).
//
// Entries are evicted per client in insertion order once the client exceeds
// maxDedupePerClient completed calls. Call ids are monotonically increasing
// per client incarnation, so by the time an id is evicted the client has
// long since stopped retrying it.
const maxDedupePerClient = 4096

// dedupeEntry is one tracked invocation. The completion latch is a
// clock-aware Cond rather than a closed channel: a duplicate arrival that
// waits for the first execution counts as idle under a virtual clock, so
// the scheduler can advance time past it (the first execution may need a
// timer to make progress).
type dedupeEntry struct {
	mu    sync.Mutex
	cond  *netsim.Cond
	frame []byte
	done  bool
}

func newDedupeEntry(clock netsim.Clock) *dedupeEntry {
	e := &dedupeEntry{}
	e.cond = netsim.NewCond(clock, &e.mu)
	return e
}

// complete records the response frame and releases all waiting duplicates.
func (e *dedupeEntry) complete(frame []byte) {
	e.mu.Lock()
	e.frame = frame
	e.done = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// await blocks until the entry completes and returns the recorded frame.
func (e *dedupeEntry) await() []byte {
	e.mu.Lock()
	for !e.done {
		e.cond.Wait()
	}
	frame := e.frame
	e.mu.Unlock()
	return frame
}

func (e *dedupeEntry) isDone() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.done
}

// clientLog tracks one client incarnation's calls.
type clientLog struct {
	entries map[uint64]*dedupeEntry
	order   []uint64 // insertion order, for eviction
}

// dedupeTable is the server-side suppression table, keyed by client
// incarnation then call id.
type dedupeTable struct {
	clock   netsim.Clock
	mu      sync.Mutex
	clients map[string]*clientLog
}

func newDedupeTable(clock netsim.Clock) *dedupeTable {
	return &dedupeTable{clock: clock, clients: make(map[string]*clientLog)}
}

// begin registers (client, id) and reports whether it was already present.
// The caller owns a fresh entry: it must record the response frame with
// complete. For a duplicate, the caller awaits and replays the frame.
func (t *dedupeTable) begin(client string, id uint64) (*dedupeEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cl, ok := t.clients[client]
	if !ok {
		cl = &clientLog{entries: make(map[uint64]*dedupeEntry)}
		t.clients[client] = cl
	}
	if e, ok := cl.entries[id]; ok {
		return e, true
	}
	e := newDedupeEntry(t.clock)
	cl.entries[id] = e
	cl.order = append(cl.order, id)
	t.evictLocked(cl)
	return e, false
}

// evictLocked trims completed entries beyond the per-client cap, oldest
// first. In-flight entries are never evicted.
func (t *dedupeTable) evictLocked(cl *clientLog) {
	for len(cl.order) > maxDedupePerClient {
		id := cl.order[0]
		if e, ok := cl.entries[id]; ok {
			if !e.isDone() {
				return // oldest still executing; try again next insert
			}
			delete(cl.entries, id)
		}
		cl.order = cl.order[1:]
	}
}

// size returns the number of tracked calls for a client (tests).
func (t *dedupeTable) size(client string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cl, ok := t.clients[client]; ok {
		return len(cl.entries)
	}
	return 0
}
