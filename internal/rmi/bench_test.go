package rmi

import (
	"fmt"
	"sync"
	"testing"

	"obiwan/internal/netsim"
	"obiwan/internal/transport"
)

// benchPair builds two connected runtimes over a zero-latency link, so
// the numbers measure the RMI machinery itself (marshalling, dispatch,
// multiplexing) rather than simulated propagation.
func benchPair(b *testing.B) (*Runtime, *Runtime) {
	b.Helper()
	net := transport.NewMemNetwork(netsim.Profile{Name: "zero"})
	server, err := NewRuntime(net, "server")
	if err != nil {
		b.Fatal(err)
	}
	client, err := NewRuntime(net, "client")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		_ = client.Close()
		_ = server.Close()
	})
	return server, client
}

func BenchmarkCallNull(b *testing.B) {
	server, client := benchPair(b)
	ref, err := server.Export(&calculator{}, "Calculator")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := client.Call(ref, "Total"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(ref, "Total"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCallWithBytes(b *testing.B) {
	server, client := benchPair(b)
	ref, err := server.Export(&calculator{}, "Calculator")
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{64, 4096, 65536} {
		b.Run(fmt.Sprintf("payload=%dB", size), func(b *testing.B) {
			payload := make([]byte, size)
			b.SetBytes(int64(size) * 2) // echoed both ways
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := client.Call(ref, "Echo", "k", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCallConcurrent(b *testing.B) {
	server, client := benchPair(b)
	ref, err := server.Export(&calculator{}, "Calculator")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := client.Call(ref, "Total"); err != nil {
		b.Fatal(err)
	}
	const workers = 8
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/workers + 1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := client.Call(ref, "Total"); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
