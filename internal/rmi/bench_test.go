package rmi

import (
	"fmt"
	"sync"
	"testing"

	"obiwan/internal/netsim"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// benchPair builds two connected runtimes over a zero-latency link, so
// the numbers measure the RMI machinery itself (marshalling, dispatch,
// multiplexing) rather than simulated propagation.
func benchPair(b *testing.B) (*Runtime, *Runtime) {
	b.Helper()
	net := transport.NewMemNetwork(netsim.Profile{Name: "zero"})
	server, err := NewRuntime(net, "server")
	if err != nil {
		b.Fatal(err)
	}
	client, err := NewRuntime(net, "client")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		_ = client.Close()
		_ = server.Close()
	})
	return server, client
}

func BenchmarkCallNull(b *testing.B) {
	server, client := benchPair(b)
	ref, err := server.Export(&calculator{}, "Calculator")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := client.Call(ref, "Total"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(ref, "Total"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallTelemetry compares the per-call cost of the three
// telemetry states. "off" must match BenchmarkCallNull (the nil-check
// fast path is the disabled price); "on-untraced" is a hub-bearing
// runtime serving untraced calls (counters only, no spans); "on-traced"
// pays for a client span, wire context, and a server span.
func BenchmarkCallTelemetry(b *testing.B) {
	run := func(b *testing.B, server, client *Runtime, sc telemetry.SpanContext) {
		b.Helper()
		ref, err := server.Export(&calculator{}, "Calculator")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := client.CallTraced(sc, ref, "Total"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.CallTraced(sc, ref, "Total"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		server, client := benchPair(b)
		run(b, server, client, telemetry.SpanContext{})
	})
	newHubPair := func(b *testing.B) (*Runtime, *Runtime, *telemetry.Hub) {
		b.Helper()
		net := transport.NewMemNetwork(netsim.Profile{Name: "zero"})
		serverHub := telemetry.NewHub("server")
		clientHub := telemetry.NewHub("client")
		server, err := NewRuntime(net, "server", WithTelemetry(serverHub))
		if err != nil {
			b.Fatal(err)
		}
		client, err := NewRuntime(net, "client", WithTelemetry(clientHub))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			_ = client.Close()
			_ = server.Close()
		})
		return server, client, clientHub
	}
	b.Run("on-untraced", func(b *testing.B) {
		server, client, _ := newHubPair(b)
		run(b, server, client, telemetry.SpanContext{})
	})
	b.Run("on-traced", func(b *testing.B) {
		server, client, hub := newHubPair(b)
		root := hub.StartRoot("bench")
		defer root.End()
		run(b, server, client, root.Context())
	})
}

// BenchmarkCallProfile prices the observability additions riding on the
// call path: the flight-recorder hook in doCall and the profiler-bearing
// hub. "off" runs a hub-less pair — it must match BenchmarkCallNull
// alloc-for-alloc, because the disabled state is a nil check, nothing
// more. "on" runs hub-bearing runtimes (profiler and flight recorder
// live) serving untraced calls: the steady-state cost of keeping the
// recorders armed when nothing fails.
func BenchmarkCallProfile(b *testing.B) {
	run := func(b *testing.B, server, client *Runtime) {
		b.Helper()
		ref, err := server.Export(&calculator{}, "Calculator")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := client.Call(ref, "Total"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Call(ref, "Total"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		server, client := benchPair(b)
		if client.flight != nil {
			b.Fatal("hub-less runtime armed a flight recorder")
		}
		run(b, server, client)
	})
	b.Run("on", func(b *testing.B) {
		net := transport.NewMemNetwork(netsim.Profile{Name: "zero"})
		server, err := NewRuntime(net, "server", WithTelemetry(telemetry.NewHub("server")))
		if err != nil {
			b.Fatal(err)
		}
		client, err := NewRuntime(net, "client", WithTelemetry(telemetry.NewHub("client")))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			_ = client.Close()
			_ = server.Close()
		})
		if client.flight == nil {
			b.Fatal("hub-bearing runtime left the flight recorder nil")
		}
		run(b, server, client)
	})
}

// BenchmarkCallAttribution prices the phase-annotation layer added for
// critical-path attribution. "off" runs a hub-less pair and must match
// BenchmarkCallNull alloc-for-alloc — every phase measurement is behind
// the same nil checks as the rest of the telemetry surface, so the
// disabled path gains no clock reads and no allocations. "on-traced"
// runs fully traced calls: client span with net/backoff phases and a
// latency exemplar, server span with queue/serve phases — the armed
// price of knowing where the time went.
func BenchmarkCallAttribution(b *testing.B) {
	run := func(b *testing.B, server, client *Runtime, sc telemetry.SpanContext) {
		b.Helper()
		ref, err := server.Export(&calculator{}, "Calculator")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := client.CallTraced(sc, ref, "Total"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.CallTraced(sc, ref, "Total"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		server, client := benchPair(b)
		run(b, server, client, telemetry.SpanContext{})
	})
	b.Run("on-traced", func(b *testing.B) {
		net := transport.NewMemNetwork(netsim.Profile{Name: "zero"})
		server, err := NewRuntime(net, "server", WithTelemetry(telemetry.NewHub("server")))
		if err != nil {
			b.Fatal(err)
		}
		hub := telemetry.NewHub("client")
		client, err := NewRuntime(net, "client", WithTelemetry(hub))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			_ = client.Close()
			_ = server.Close()
		})
		root := hub.StartRoot("bench")
		defer root.End()
		run(b, server, client, root.Context())
	})
}

func BenchmarkCallWithBytes(b *testing.B) {
	server, client := benchPair(b)
	ref, err := server.Export(&calculator{}, "Calculator")
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{64, 4096, 65536} {
		b.Run(fmt.Sprintf("payload=%dB", size), func(b *testing.B) {
			payload := make([]byte, size)
			b.SetBytes(int64(size) * 2) // echoed both ways
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := client.Call(ref, "Echo", "k", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCallConcurrent(b *testing.B) {
	server, client := benchPair(b)
	ref, err := server.Export(&calculator{}, "Calculator")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := client.Call(ref, "Total"); err != nil {
		b.Fatal(err)
	}
	const workers = 8
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/workers + 1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := client.Call(ref, "Total"); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
