package rmi

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"obiwan/internal/netsim"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
	"obiwan/internal/wire"
)

// replyWaiter is one in-flight call's rendezvous point. It replaces the
// channel-and-select of the pre-virtual-clock runtime with a clock-aware
// Cond so a caller blocked on a reply counts as idle under a VirtualClock:
// delivery (from the read loop), expiry (from a clock timer), and
// connection death all land here and wake the caller with a token.
type replyWaiter struct {
	mu       sync.Mutex
	cond     *netsim.Cond
	msg      any // *wire.Reply, *wire.Fault, or error
	has      bool
	timedOut bool
}

func newReplyWaiter(clock netsim.Clock) *replyWaiter {
	w := &replyWaiter{}
	w.cond = netsim.NewCond(clock, &w.mu)
	return w
}

// deliver hands the waiter its response. A delivery always wins over a
// concurrent expiry that has not yet been observed.
func (w *replyWaiter) deliver(msg any) {
	w.mu.Lock()
	if !w.has {
		w.msg = msg
		w.has = true
		w.cond.Signal()
	}
	w.mu.Unlock()
}

// expire marks the waiter timed out unless a response already landed.
func (w *replyWaiter) expire() {
	w.mu.Lock()
	if !w.has && !w.timedOut {
		w.timedOut = true
		w.cond.Signal()
	}
	w.mu.Unlock()
}

// await blocks until a response or expiry and reports which: (msg, true)
// for a response, (nil, false) for a timeout.
func (w *replyWaiter) await() (any, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for !w.has && !w.timedOut {
		w.cond.Wait()
	}
	if w.has {
		return w.msg, true
	}
	return nil, false
}

// clientConn is one multiplexed outbound connection: many in-flight calls
// share it, matched to replies by call id.
type clientConn struct {
	rt   *Runtime
	addr transport.Addr
	conn transport.Conn

	sendMu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]*replyWaiter // call id → waiter
	dead    error                   // non-nil once the connection failed
}

// getConn returns a live connection to addr, dialing if needed. The
// connection is self-healing: when it dies terminally (peer restart), the
// next Send or Recv re-dials and replays the protocol preamble, so the
// server can reject version mismatches before any call frame is
// interpreted. Link-level disconnections are not healed this way — the
// connection is kept and reused after the outage, per the paper's mobility
// model.
func (rt *Runtime) getConn(addr transport.Addr) (*clientConn, error) {
	rt.mu.Lock()
	select {
	case <-rt.closed:
		rt.mu.Unlock()
		return nil, ErrRuntimeClosed
	default:
	}
	if c, ok := rt.conns[addr]; ok {
		rt.mu.Unlock()
		return c, nil
	}
	rt.mu.Unlock()

	// Dial outside the lock: the simulated network may sleep.
	conn, err := transport.NewReconnecting(rt.network, rt.local, addr, func(c transport.Conn) error {
		return c.Send(wire.EncodeHello())
	}, transport.WithRedialHook(func() { rt.met.reconnects.Inc() }))
	if err != nil {
		return nil, fmt.Errorf("rmi: dial %q: %w", addr, err)
	}

	rt.mu.Lock()
	if existing, ok := rt.conns[addr]; ok {
		// Lost the race; use the winner.
		rt.mu.Unlock()
		_ = conn.Close()
		return existing, nil
	}
	c := &clientConn{
		rt:      rt,
		addr:    addr,
		conn:    conn,
		pending: make(map[uint64]*replyWaiter),
	}
	rt.conns[addr] = c
	rt.mu.Unlock()

	rt.wg.Add(1)
	rt.clock.Go(c.readLoop)
	return c, nil
}

// dropConn removes c from the pool if it is still the registered conn.
func (rt *Runtime) dropConn(c *clientConn) {
	rt.mu.Lock()
	if rt.conns[c.addr] == c {
		delete(rt.conns, c.addr)
	}
	rt.mu.Unlock()
}

// readLoop demultiplexes replies to waiting callers until the connection
// dies, then fails everything still pending.
func (c *clientConn) readLoop() {
	defer c.rt.wg.Done()
	for {
		frame, err := c.conn.Recv()
		if err != nil {
			c.shutdown(fmt.Errorf("rmi: connection to %q lost: %w", c.addr, err))
			return
		}
		c.rt.stats.bytesRecv.Add(uint64(len(frame)))
		msg, err := wire.Decode(c.rt.reg, frame)
		if err != nil {
			c.shutdown(fmt.Errorf("rmi: bad frame from %q: %w", c.addr, err))
			return
		}
		var id uint64
		switch m := msg.(type) {
		case *wire.Reply:
			id = m.ID
		case *wire.Fault:
			id = m.ID
		default:
			continue // a Call frame on a client conn: ignore
		}
		c.mu.Lock()
		w, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ok {
			w.deliver(msg)
		}
	}
}

// shutdown fails all pending calls and retires the connection.
func (c *clientConn) shutdown(cause error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = cause
	}
	pending := c.pending
	c.pending = make(map[uint64]*replyWaiter)
	c.mu.Unlock()
	for _, w := range pending {
		w.deliver(cause)
	}
	_ = c.conn.Close()
	c.rt.dropConn(c)
}

// register enrolls a call id before sending, so the reply cannot race the
// registration.
func (c *clientConn) register(id uint64) (*replyWaiter, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return nil, c.dead
	}
	w := newReplyWaiter(c.rt.clock)
	c.pending[id] = w
	return w, nil
}

func (c *clientConn) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Call invokes method on the remote object behind ref and waits for its
// results, using the runtime's default timeout.
func (rt *Runtime) Call(ref RemoteRef, method string, args ...any) ([]any, error) {
	return rt.CallTracedTimeout(telemetry.SpanContext{}, ref, rt.callTimeout, method, args...)
}

// DefaultCallTimeout returns the runtime's default per-call deadline —
// what Call and CallTraced use. Callers composing retry/failover loops on
// top of explicit-deadline calls use it to keep interactive semantics.
func (rt *Runtime) DefaultCallTimeout() time.Duration { return rt.callTimeout }

// CallTimeout is Call with an explicit deadline for this invocation.
func (rt *Runtime) CallTimeout(ref RemoteRef, timeout time.Duration, method string, args ...any) ([]any, error) {
	return rt.CallTracedTimeout(telemetry.SpanContext{}, ref, timeout, method, args...)
}

// CallTraced is Call under a causal parent: the invocation is recorded as
// an "rmi:<method>" span beneath sc, and the span's context travels in the
// Call frame so the server's serve span (and anything it causes) joins the
// same trace. An invalid sc degrades to a plain Call.
func (rt *Runtime) CallTraced(sc telemetry.SpanContext, ref RemoteRef, method string, args ...any) ([]any, error) {
	return rt.CallTracedTimeout(sc, ref, rt.callTimeout, method, args...)
}

// CallTracedTimeout is CallTraced with an explicit deadline.
func (rt *Runtime) CallTracedTimeout(sc telemetry.SpanContext, ref RemoteRef, timeout time.Duration, method string, args ...any) ([]any, error) {
	start := rt.clock.Now()
	results, tid, err := rt.doCall(sc, ref, timeout, method, args)
	rtt := rt.clock.Now().Sub(start)
	// Traced calls keep tail exemplars (tid 0 — untraced — degrades to a
	// plain observation), so `obiwan-admin slow` can name the worst calls.
	rt.met.latency.ObserveExemplar(int64(rtt), tid)
	if rt.observer != nil {
		rt.observer(ref.Addr, method, rtt, err)
	}
	return results, err
}

// doCall drives one logical invocation through the retry policy. The call
// id is allocated once and reused across attempts, so the server's
// duplicate-suppression table can guarantee at-most-once execution no
// matter how many times the frame is re-sent or on which connection it
// arrives. timeout is the overall deadline for the invocation including
// backoff waits.
//
// Tracing mirrors dedupe: one logical invocation is one "rmi:<method>"
// span no matter how many attempts it takes — retries annotate the span
// rather than minting siblings, and the frame (encoded once) carries the
// same span context on every resend, so the server parents at most one
// serve span under it.
func (rt *Runtime) doCall(sc telemetry.SpanContext, ref RemoteRef, timeout time.Duration, method string, args []any) ([]any, uint64, error) {
	if ref.IsZero() {
		return nil, 0, fmt.Errorf("rmi: call %s on zero reference", method)
	}
	rt.mu.Lock()
	rt.nextSeq++
	id := rt.nextSeq
	rt.mu.Unlock()

	// A client span is minted only for calls that already have a causal
	// parent: unparented plumbing traffic (nameserver lookups, pings) stays
	// out of the span ring so replication traces remain rooted and stable.
	// The context stamped on the wire is the span's own when recording,
	// else sc verbatim — propagation survives even on a hub-less runtime.
	wireSC := sc
	var span *telemetry.Span
	if rt.tel.Enabled() && sc.Valid() {
		span = rt.tel.StartSpan(sc, "rmi:"+method)
		wireSC = span.Context()
	}
	finish := func(results []any, err error) ([]any, uint64, error) {
		span.SetErr(err)
		span.End()
		if err != nil && rt.flight != nil {
			rt.flight.Record(telemetry.FlightEvent{
				Kind: "rmi.fail", TraceID: wireSC.TraceID, SpanID: wireSC.SpanID,
				Detail: method + " to " + string(ref.Addr), Err: err.Error(),
			})
		}
		return results, wireSC.TraceID, err
	}

	frame, err := wire.EncodeCall(rt.reg, &wire.Call{
		ID: id, Target: uint64(ref.ID), Method: method, Client: rt.clientID,
		TraceID: wireSC.TraceID, SpanID: wireSC.SpanID, Args: args,
	})
	if err != nil {
		return finish(nil, err)
	}

	deadline := rt.clock.Now().Add(timeout)
	timeoutErr := func() error {
		return fmt.Errorf("%w: %s to %q after %v", ErrTimeout, method, ref.Addr, timeout)
	}
	var lastErr error
	for attempt := 1; attempt <= rt.retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			rt.stats.retries.Add(1)
			rt.met.retries.Inc()
			span.Annotate("attempt", strconv.Itoa(attempt))
			if rt.flight != nil {
				rt.flight.Record(telemetry.FlightEvent{
					Kind: "rmi.retry", TraceID: wireSC.TraceID, SpanID: wireSC.SpanID,
					Detail: method + " to " + string(ref.Addr) + " attempt=" + strconv.Itoa(attempt),
				})
			}
			backoffStart := rt.clock.Now()
			slept := rt.sleepBackoff(attempt-1, deadline)
			span.Phase(telemetry.PhaseRetryBackoff, rt.clock.Now().Sub(backoffStart))
			if !slept {
				select {
				case <-rt.closed:
					return finish(nil, ErrRuntimeClosed)
				default:
				}
				return finish(nil, fmt.Errorf("%w: %s to %q after %v (last error: %w)",
					ErrTimeout, method, ref.Addr, timeout, lastErr))
			}
		}

		conn, err := rt.getConn(ref.Addr)
		if err != nil {
			if errors.Is(err, ErrRuntimeClosed) {
				return finish(nil, err)
			}
			rt.stats.sendErrors.Add(1)
			rt.met.sendErrors.Inc()
			lastErr = err
			if transport.IsTransient(err) {
				continue
			}
			return finish(nil, err)
		}
		w, err := conn.register(id)
		if err != nil {
			// The pooled connection died before its read loop retired it;
			// the pool has been (or is being) cleaned, so the next attempt
			// dials fresh.
			lastErr = err
			continue
		}
		conn.sendMu.Lock()
		sendErr := conn.conn.Send(frame)
		conn.sendMu.Unlock()
		if sendErr != nil {
			conn.unregister(id)
			rt.stats.sendErrors.Add(1)
			rt.met.sendErrors.Inc()
			lastErr = fmt.Errorf("rmi: send %s to %q: %w", method, ref.Addr, sendErr)
			if errors.Is(sendErr, transport.ErrClosed) {
				// Terminally dead (redial inside the connection failed too):
				// retire it so the next attempt starts from a fresh dial.
				conn.shutdown(fmt.Errorf("rmi: connection to %q lost: %w", ref.Addr, sendErr))
				continue
			}
			if transport.IsTransient(sendErr) {
				// Link-level outage: the connection stays pooled — the
				// paper's mobile host reuses it after reconnecting.
				continue
			}
			return finish(nil, lastErr)
		}
		rt.stats.callsSent.Add(1)
		rt.met.calls.Inc()
		rt.stats.bytesSent.Add(uint64(len(frame)))
		rt.met.bytesSent.Add(uint64(len(frame)))

		// Wait for the reply: bounded by the per-try budget when the policy
		// sets one (lost replies are then recovered by re-sending), always
		// bounded by the overall deadline. Runtime close needs no select
		// arm: Close shuts every connection down, which delivers
		// ErrRuntimeClosed to the waiter.
		wait := deadline.Sub(rt.clock.Now())
		perTry := false
		if rt.retry.PerTryTimeout > 0 && rt.retry.PerTryTimeout < wait {
			wait = rt.retry.PerTryTimeout
			perTry = true
		}
		if wait <= 0 {
			conn.unregister(id)
			return finish(nil, timeoutErr())
		}
		netStart := rt.clock.Now()
		expiry := rt.clock.AfterFunc(wait, w.expire)
		msg, ok := w.await()
		expiry.Stop()
		span.Phase(telemetry.PhaseNet, rt.clock.Now().Sub(netStart))
		if !ok {
			conn.unregister(id)
			lastErr = timeoutErr()
			if perTry {
				continue
			}
			return finish(nil, lastErr)
		}
		switch m := msg.(type) {
		case *wire.Reply:
			return finish(m.Results, nil)
		case *wire.Fault:
			rt.stats.remoteFaults.Add(1)
			rt.met.remoteFaults.Inc()
			return finish(nil, &RemoteError{Code: m.Code, Method: method, Message: m.Message})
		case error:
			// The connection failed while we were waiting.
			lastErr = m
			if errors.Is(m, ErrRuntimeClosed) {
				return finish(nil, ErrRuntimeClosed)
			}
			if transport.IsTransient(m) {
				continue
			}
			return finish(nil, m)
		default:
			return finish(nil, fmt.Errorf("rmi: unexpected response %T", msg))
		}
	}
	return finish(nil, fmt.Errorf("rmi: %s to %q failed after %d attempts: %w",
		method, ref.Addr, rt.retry.MaxAttempts, lastErr))
}
