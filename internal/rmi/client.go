package rmi

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"obiwan/internal/transport"
	"obiwan/internal/wire"
)

// clientConn is one multiplexed outbound connection: many in-flight calls
// share it, matched to replies by call id.
type clientConn struct {
	rt   *Runtime
	addr transport.Addr
	conn transport.Conn

	sendMu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan any // call id → *wire.Reply or *wire.Fault or error
	dead    error               // non-nil once the connection failed
}

// getConn returns a live connection to addr, dialing if needed.
func (rt *Runtime) getConn(addr transport.Addr) (*clientConn, error) {
	rt.mu.Lock()
	select {
	case <-rt.closed:
		rt.mu.Unlock()
		return nil, ErrRuntimeClosed
	default:
	}
	if c, ok := rt.conns[addr]; ok {
		rt.mu.Unlock()
		return c, nil
	}
	rt.mu.Unlock()

	// Dial outside the lock: the simulated network may sleep.
	conn, err := rt.network.Dial(rt.local, addr)
	if err != nil {
		return nil, fmt.Errorf("rmi: dial %q: %w", addr, err)
	}

	rt.mu.Lock()
	if existing, ok := rt.conns[addr]; ok {
		// Lost the race; use the winner.
		rt.mu.Unlock()
		_ = conn.Close()
		return existing, nil
	}
	c := &clientConn{
		rt:      rt,
		addr:    addr,
		conn:    conn,
		pending: make(map[uint64]chan any),
	}
	rt.conns[addr] = c
	rt.mu.Unlock()

	// Open with the protocol preamble so the server can reject version
	// mismatches before any call frame is interpreted.
	if err := conn.Send(wire.EncodeHello()); err != nil {
		c.shutdown(fmt.Errorf("rmi: hello to %q: %w", addr, err))
		return nil, fmt.Errorf("rmi: hello to %q: %w", addr, err)
	}

	rt.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// dropConn removes c from the pool if it is still the registered conn.
func (rt *Runtime) dropConn(c *clientConn) {
	rt.mu.Lock()
	if rt.conns[c.addr] == c {
		delete(rt.conns, c.addr)
	}
	rt.mu.Unlock()
}

// readLoop demultiplexes replies to waiting callers until the connection
// dies, then fails everything still pending.
func (c *clientConn) readLoop() {
	defer c.rt.wg.Done()
	for {
		frame, err := c.conn.Recv()
		if err != nil {
			c.shutdown(fmt.Errorf("rmi: connection to %q lost: %w", c.addr, err))
			return
		}
		c.rt.stats.bytesRecv.Add(uint64(len(frame)))
		msg, err := wire.Decode(c.rt.reg, frame)
		if err != nil {
			c.shutdown(fmt.Errorf("rmi: bad frame from %q: %w", c.addr, err))
			return
		}
		var id uint64
		switch m := msg.(type) {
		case *wire.Reply:
			id = m.ID
		case *wire.Fault:
			id = m.ID
		default:
			continue // a Call frame on a client conn: ignore
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ok {
			ch <- msg
		}
	}
}

// shutdown fails all pending calls and retires the connection.
func (c *clientConn) shutdown(cause error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = cause
	}
	pending := c.pending
	c.pending = make(map[uint64]chan any)
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- cause
	}
	_ = c.conn.Close()
	c.rt.dropConn(c)
}

// register enrolls a call id before sending, so the reply cannot race the
// registration.
func (c *clientConn) register(id uint64) (chan any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return nil, c.dead
	}
	ch := make(chan any, 1)
	c.pending[id] = ch
	return ch, nil
}

func (c *clientConn) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Call invokes method on the remote object behind ref and waits for its
// results, using the runtime's default timeout.
func (rt *Runtime) Call(ref RemoteRef, method string, args ...any) ([]any, error) {
	return rt.CallTimeout(ref, rt.callTimeout, method, args...)
}

// CallTimeout is Call with an explicit deadline for this invocation.
func (rt *Runtime) CallTimeout(ref RemoteRef, timeout time.Duration, method string, args ...any) ([]any, error) {
	start := time.Now()
	results, err := rt.doCall(ref, timeout, method, args)
	if rt.observer != nil {
		rt.observer(ref.Addr, method, time.Since(start), err)
	}
	return results, err
}

func (rt *Runtime) doCall(ref RemoteRef, timeout time.Duration, method string, args []any) ([]any, error) {
	if ref.IsZero() {
		return nil, fmt.Errorf("rmi: call %s on zero reference", method)
	}
	rt.mu.Lock()
	rt.nextSeq++
	id := rt.nextSeq
	rt.mu.Unlock()

	frame, err := wire.EncodeCall(rt.reg, &wire.Call{
		ID: id, Target: uint64(ref.ID), Method: method, Args: args,
	})
	if err != nil {
		return nil, err
	}

	var (
		conn *clientConn
		ch   chan any
	)
	// A pooled connection may be dead (server restarted) before its read
	// loop notices; one fresh dial is attempted in that case.
	for attempt := 0; ; attempt++ {
		conn, err = rt.getConn(ref.Addr)
		if err != nil {
			rt.stats.sendErrors.Add(1)
			return nil, err
		}
		if ch, err = conn.register(id); err != nil {
			if attempt == 0 {
				continue
			}
			rt.stats.sendErrors.Add(1)
			return nil, err
		}
		conn.sendMu.Lock()
		sendErr := conn.conn.Send(frame)
		conn.sendMu.Unlock()
		if sendErr == nil {
			break
		}
		conn.unregister(id)
		if errors.Is(sendErr, transport.ErrClosed) {
			// The peer went away: retire the connection. Retry once with a
			// fresh dial (the server may have restarted).
			conn.shutdown(fmt.Errorf("rmi: connection to %q lost: %w", ref.Addr, sendErr))
			if attempt == 0 {
				continue
			}
		}
		// Link-level disconnection keeps the connection pooled: the paper's
		// mobile host expects to reuse it after reconnecting.
		rt.stats.sendErrors.Add(1)
		return nil, fmt.Errorf("rmi: send %s to %q: %w", method, ref.Addr, sendErr)
	}
	rt.stats.callsSent.Add(1)
	rt.stats.bytesSent.Add(uint64(len(frame)))

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case msg := <-ch:
		switch m := msg.(type) {
		case *wire.Reply:
			return m.Results, nil
		case *wire.Fault:
			rt.stats.remoteFaults.Add(1)
			return nil, &RemoteError{Code: m.Code, Method: method, Message: m.Message}
		case error:
			return nil, m
		default:
			return nil, fmt.Errorf("rmi: unexpected response %T", msg)
		}
	case <-timer.C:
		conn.unregister(id)
		return nil, fmt.Errorf("%w: %s to %q after %v", ErrTimeout, method, ref.Addr, timeout)
	case <-rt.closed:
		conn.unregister(id)
		return nil, ErrRuntimeClosed
	}
}
