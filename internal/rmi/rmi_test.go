package rmi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"obiwan/internal/codec"
	"obiwan/internal/netsim"
	"obiwan/internal/transport"
	"obiwan/internal/wire"
)

// calculator is a test service exercising the dispatch conventions.
type calculator struct {
	mu    sync.Mutex
	total int64
}

func (c *calculator) Add(a, b int64) int64 { return a + b }

func (c *calculator) Accumulate(v int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total += v
}

func (c *calculator) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

func (c *calculator) Div(a, b int64) (int64, error) {
	if b == 0 {
		return 0, errors.New("division by zero")
	}
	return a / b, nil
}

func (c *calculator) Sum(vs ...int64) int64 {
	var s int64
	for _, v := range vs {
		s += v
	}
	return s
}

func (c *calculator) Narrow(v int8) int8 { return v }

func (c *calculator) Echo(s string, b []byte) (string, []byte) { return s, b }

func (c *calculator) Slow(d int64) string {
	time.Sleep(time.Duration(d) * time.Millisecond)
	return "done"
}

// pair tests struct arguments.
type pair struct {
	A, B int64
}

func (c *calculator) Swap(p *pair) *pair { return &pair{A: p.B, B: p.A} }

func init() {
	codec.MustRegister("rmi_test.pair", pair{})
}

// newPair builds two connected runtimes over a loopback mem network.
func newPair(t *testing.T) (server, client *Runtime, net *transport.MemNetwork) {
	t.Helper()
	net = transport.NewMemNetwork(netsim.Loopback)
	var err error
	server, err = NewRuntime(net, "server")
	if err != nil {
		t.Fatal(err)
	}
	client, err = NewRuntime(net, "client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = server.Close()
	})
	return server, client, net
}

func TestBasicCall(t *testing.T) {
	server, client, _ := newPair(t)
	ref, err := server.Export(&calculator{}, "Calculator")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Iface != "Calculator" || ref.Addr != "server" {
		t.Fatalf("ref: %v", ref)
	}
	res, err := client.Call(ref, "Add", int64(2), int64(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != int64(5) {
		t.Fatalf("results: %#v", res)
	}
}

func TestVoidAndStatefulCall(t *testing.T) {
	server, client, _ := newPair(t)
	calc := &calculator{}
	ref, _ := server.Export(calc, "Calculator")
	for i := int64(1); i <= 4; i++ {
		if _, err := client.Call(ref, "Accumulate", i); err != nil {
			t.Fatal(err)
		}
	}
	res, err := client.Call(ref, "Total")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(10) {
		t.Fatalf("total: %#v", res)
	}
}

func TestAppErrorBecomesRemoteError(t *testing.T) {
	server, client, _ := newPair(t)
	ref, _ := server.Export(&calculator{}, "Calculator")
	_, err := client.Call(ref, "Div", int64(1), int64(0))
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if !re.IsApp() || re.Message != "division by zero" {
		t.Fatalf("remote error: %+v", re)
	}
	// The success path strips the nil error.
	res, err := client.Call(ref, "Div", int64(6), int64(2))
	if err != nil || len(res) != 1 || res[0] != int64(3) {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestNoSuchMethodAndObject(t *testing.T) {
	server, client, _ := newPair(t)
	ref, _ := server.Export(&calculator{}, "Calculator")

	_, err := client.Call(ref, "Nope")
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != wire.FaultNoSuchMethod {
		t.Fatalf("want no-such-method, got %v", err)
	}

	bogus := RemoteRef{Addr: "server", ID: 9999, Iface: "X"}
	_, err = client.Call(bogus, "Add", int64(1), int64(2))
	if !errors.As(err, &re) || re.Code != wire.FaultNoSuchObject {
		t.Fatalf("want no-such-object, got %v", err)
	}
}

func TestBadArgs(t *testing.T) {
	server, client, _ := newPair(t)
	ref, _ := server.Export(&calculator{}, "Calculator")
	var re *RemoteError

	_, err := client.Call(ref, "Add", int64(1)) // too few
	if !errors.As(err, &re) || re.Code != wire.FaultBadArgs {
		t.Fatalf("arity: %v", err)
	}
	_, err = client.Call(ref, "Add", "one", "two") // wrong types
	if !errors.As(err, &re) || re.Code != wire.FaultBadArgs {
		t.Fatalf("types: %v", err)
	}
	_, err = client.Call(ref, "Narrow", int64(300)) // overflows int8
	if !errors.As(err, &re) || re.Code != wire.FaultBadArgs {
		t.Fatalf("overflow: %v", err)
	}
}

func TestNumericConversion(t *testing.T) {
	server, client, _ := newPair(t)
	ref, _ := server.Export(&calculator{}, "Calculator")
	res, err := client.Call(ref, "Narrow", int64(-5))
	if err != nil {
		t.Fatal(err)
	}
	// The server narrows to int8; the wire normalizes integers back to int64.
	if res[0] != int64(-5) {
		t.Fatalf("narrow: %#v", res[0])
	}
}

func TestVariadic(t *testing.T) {
	server, client, _ := newPair(t)
	ref, _ := server.Export(&calculator{}, "Calculator")
	res, err := client.Call(ref, "Sum", int64(1), int64(2), int64(3))
	if err != nil || res[0] != int64(6) {
		t.Fatalf("sum: %v %v", res, err)
	}
	res, err = client.Call(ref, "Sum") // zero variadic args
	if err != nil || res[0] != int64(0) {
		t.Fatalf("empty sum: %v %v", res, err)
	}
}

func TestStructArgsAndResults(t *testing.T) {
	server, client, _ := newPair(t)
	ref, _ := server.Export(&calculator{}, "Calculator")
	res, err := client.Call(ref, "Swap", &pair{A: 1, B: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := res[0].(*pair)
	if !ok || p.A != 2 || p.B != 1 {
		t.Fatalf("swap: %#v", res[0])
	}
}

func TestStringsAndBytes(t *testing.T) {
	server, client, _ := newPair(t)
	ref, _ := server.Export(&calculator{}, "Calculator")
	res, err := client.Call(ref, "Echo", "hi", []byte{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "hi" || string(res[1].([]byte)) != "\x01\x02" {
		t.Fatalf("echo: %#v", res)
	}
}

func TestRemoteRefTravelsInArgs(t *testing.T) {
	// A reference exported at one site is passed through another and used.
	server, client, _ := newPair(t)
	calc := &calculator{}
	calcRef, _ := server.Export(calc, "Calculator")

	// relay returns whatever ref it was given.
	relay := &refRelay{}
	relayRef, _ := server.Export(relay, "Relay")
	res, err := client.Call(relayRef, "Bounce", calcRef)
	if err != nil {
		t.Fatal(err)
	}
	back, ok := res[0].(*RemoteRef)
	if !ok {
		t.Fatalf("bounced ref: %#v", res[0])
	}
	res, err = client.Call(*back, "Add", int64(20), int64(22))
	if err != nil || res[0] != int64(42) {
		t.Fatalf("call through bounced ref: %v %v", res, err)
	}
}

type refRelay struct{}

func (r *refRelay) Bounce(ref RemoteRef) RemoteRef { return ref }

func TestConcurrentCallsMultiplex(t *testing.T) {
	server, client, _ := newPair(t)
	ref, _ := server.Export(&calculator{}, "Calculator")
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			res, err := client.Call(ref, "Add", i, i)
			if err != nil {
				errs <- err
				return
			}
			if res[0] != 2*i {
				errs <- fmt.Errorf("got %v want %d", res[0], 2*i)
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// All calls shared one connection: exactly one dial happened.
	if got := len(client.conns); got != 1 {
		t.Fatalf("connection pool size %d, want 1", got)
	}
}

func TestUnexport(t *testing.T) {
	server, client, _ := newPair(t)
	ref, _ := server.Export(&calculator{}, "Calculator")
	if _, err := client.Call(ref, "Total"); err != nil {
		t.Fatal(err)
	}
	if server.ExportCount() != 1 {
		t.Fatalf("export count: %d", server.ExportCount())
	}
	server.Unexport(ref.ID)
	if server.ExportCount() != 0 {
		t.Fatalf("export count after unexport: %d", server.ExportCount())
	}
	var re *RemoteError
	if _, err := client.Call(ref, "Total"); !errors.As(err, &re) || re.Code != wire.FaultNoSuchObject {
		t.Fatalf("want no-such-object after unexport, got %v", err)
	}
}

func TestCallTimeout(t *testing.T) {
	server, client, _ := newPair(t)
	ref, _ := server.Export(&calculator{}, "Calculator")
	_, err := client.CallTimeout(ref, 20*time.Millisecond, "Slow", int64(500))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestDisconnectFailsCallsAndReconnectRecovers(t *testing.T) {
	server, client, net := newPair(t)
	ref, _ := server.Export(&calculator{}, "Calculator")
	if _, err := client.Call(ref, "Total"); err != nil {
		t.Fatal(err)
	}
	net.Disconnect("client", "server")
	if _, err := client.Call(ref, "Total"); !errors.Is(err, netsim.ErrDisconnected) {
		t.Fatalf("want disconnected error, got %v", err)
	}
	net.Reconnect("client", "server")
	if _, err := client.Call(ref, "Total"); err != nil {
		t.Fatalf("after reconnect: %v", err)
	}
}

func TestServerRestartRedials(t *testing.T) {
	net := transport.NewMemNetwork(netsim.Loopback)
	server, err := NewRuntime(net, "server")
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewRuntime(net, "client")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ref, _ := server.Export(&calculator{}, "Calculator")
	if _, err := client.Call(ref, "Total"); err != nil {
		t.Fatal(err)
	}
	_ = server.Close()
	if _, err := client.Call(ref, "Total"); err == nil {
		t.Fatal("call to closed server should fail")
	}
	// Bring a replacement up at the same address.
	server2, err := NewRuntime(net, "server")
	if err != nil {
		t.Fatal(err)
	}
	defer server2.Close()
	ref2, _ := server2.Export(&calculator{}, "Calculator")
	if _, err := client.Call(ref2, "Total"); err != nil {
		t.Fatalf("call after server restart: %v", err)
	}
}

func TestCallOnZeroRef(t *testing.T) {
	_, client, _ := newPair(t)
	if _, err := client.Call(RemoteRef{}, "M"); err == nil {
		t.Fatal("zero ref must be rejected")
	}
}

func TestExportRejectsBadObjects(t *testing.T) {
	server, _, _ := newPair(t)
	if _, err := server.Export(nil, "X"); err == nil {
		t.Fatal("nil export must fail")
	}
	if _, err := server.Export(42, "X"); err == nil {
		t.Fatal("method-less export must fail")
	}
}

func TestObserverSeesRTT(t *testing.T) {
	net := transport.NewMemNetwork(netsim.Loopback)
	server, err := NewRuntime(net, "server")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	type obs struct {
		method string
		rtt    time.Duration
	}
	seen := make(chan obs, 4)
	client, err := NewRuntime(net, "client",
		WithObserver(func(_ transport.Addr, method string, rtt time.Duration, err error) {
			seen <- obs{method, rtt}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ref, _ := server.Export(&calculator{}, "Calculator")
	if _, err := client.Call(ref, "Total"); err != nil {
		t.Fatal(err)
	}
	o := <-seen
	if o.method != "Total" || o.rtt <= 0 {
		t.Fatalf("observation: %+v", o)
	}
}

func TestStatsCount(t *testing.T) {
	server, client, _ := newPair(t)
	ref, _ := server.Export(&calculator{}, "Calculator")
	for i := 0; i < 3; i++ {
		if _, err := client.Call(ref, "Total"); err != nil {
			t.Fatal(err)
		}
	}
	if s := client.Stats(); s.CallsSent != 3 || s.BytesSent == 0 {
		t.Fatalf("client stats: %+v", s)
	}
	if s := server.Stats(); s.CallsServed != 3 {
		t.Fatalf("server stats: %+v", s)
	}
}

func TestRMICostMatchesCalibratedLAN(t *testing.T) {
	// On the paper-calibrated LAN profile a null RMI should land near
	// 2.8 ms. Allow generous slack for scheduler noise.
	net := transport.NewMemNetwork(netsim.LAN10)
	server, err := NewRuntime(net, "server")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := NewRuntime(net, "client")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ref, _ := server.Export(&calculator{}, "Calculator")
	if _, err := client.Call(ref, "Total"); err != nil { // warm the connection
		t.Fatal(err)
	}
	start := time.Now()
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := client.Call(ref, "Total"); err != nil {
			t.Fatal(err)
		}
	}
	per := time.Since(start) / n
	if per < 2*time.Millisecond || per > 8*time.Millisecond {
		t.Fatalf("per-call RMI %v, want ≈2.8ms (2-8ms band)", per)
	}
}

func TestRuntimeCloseIdempotent(t *testing.T) {
	net := transport.NewMemNetwork(netsim.Loopback)
	rt, err := NewRuntime(net, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Export(&calculator{}, "C"); !errors.Is(err, ErrRuntimeClosed) {
		t.Fatalf("export after close: %v", err)
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	net := transport.NewTCPNetwork()
	server, err := NewRuntime(net, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := NewRuntime(net, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ref, _ := server.Export(&calculator{}, "Calculator")
	res, err := client.Call(ref, "Add", int64(40), int64(2))
	if err != nil || res[0] != int64(42) {
		t.Fatalf("tcp call: %v %v", res, err)
	}
}

func TestServerRejectsPeersWithoutHello(t *testing.T) {
	net := transport.NewMemNetwork(netsim.Loopback)
	server, err := NewRuntime(net, "server")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	ref, _ := server.Export(&calculator{}, "Calculator")

	// A raw peer that speaks frames but skips the preamble: its call must
	// go unanswered and the connection must be dropped by the server.
	conn, err := net.Dial("rogue", "server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frame, err := wire.EncodeCall(server.Registry(), &wire.Call{
		ID: 1, Target: uint64(ref.ID), Method: "Total",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(frame); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("server must drop preamble-less peers, got %v", err)
	}

	// A peer with the wrong protocol version is dropped too.
	conn2, err := net.Dial("rogue2", "server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	bad := append([]byte{}, wire.EncodeHello()...)
	bad[len(bad)-1] = 99 // clobber the version varint
	if err := conn2.Send(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("server must drop version mismatches, got %v", err)
	}

	// Well-behaved clients still work.
	client, err := NewRuntime(net, "client")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Call(ref, "Total"); err != nil {
		t.Fatal(err)
	}
}
