package rmi

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"obiwan/internal/netsim"
	"obiwan/internal/transport"
)

// fastRetry is a test policy: quick deterministic backoff, no jitter.
func fastRetry(attempts int, perTry time.Duration) RetryPolicy {
	return RetryPolicy{
		MaxAttempts:   attempts,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    4 * time.Millisecond,
		Multiplier:    2,
		Jitter:        0,
		PerTryTimeout: perTry,
	}
}

// newRetryPair is newPair with an explicit client-side retry policy.
func newRetryPair(t *testing.T, p RetryPolicy) (server, client *Runtime, net *transport.MemNetwork) {
	t.Helper()
	net = transport.NewMemNetwork(netsim.Loopback)
	var err error
	server, err = NewRuntime(net, "server")
	if err != nil {
		t.Fatal(err)
	}
	client, err = NewRuntime(net, "client", WithRetryPolicy(p))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = server.Close()
	})
	return server, client, net
}

func TestBackoffTable(t *testing.T) {
	base := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Multiplier: 2}
	for _, tc := range []struct {
		policy RetryPolicy
		retry  int
		want   time.Duration
	}{
		{base, 1, 10 * time.Millisecond},
		{base, 2, 20 * time.Millisecond},
		{base, 3, 40 * time.Millisecond},
		{base, 4, 80 * time.Millisecond}, // reaches the ceiling
		{base, 5, 80 * time.Millisecond}, // stays clamped
		{base, 9, 80 * time.Millisecond},
		{base, 0, 10 * time.Millisecond},                                     // degenerate retry numbers clamp to 1
		{RetryPolicy{}, 1, 2 * time.Millisecond},                             // defaults
		{RetryPolicy{Multiplier: 1}, 3, 2 * time.Millisecond},                // no growth
		{RetryPolicy{BaseBackoff: time.Second}, 2, time.Second},              // base above default cap
		{RetryPolicy{BaseBackoff: time.Second}, 9, time.Second},              // cap lifts to base
		{RetryPolicy{MaxBackoff: time.Millisecond}, 5, 2 * time.Millisecond}, // cap below default base lifts to base
	} {
		if got := tc.policy.Backoff(tc.retry); got != tc.want {
			t.Errorf("Backoff(%d) on %+v = %v, want %v", tc.retry, tc.policy, got, tc.want)
		}
	}
}

func TestRetryAfterDroppedRequest(t *testing.T) {
	server, client, net := newRetryPair(t, fastRetry(4, 0))
	calc := &calculator{}
	ref, _ := server.Export(calc, "Calculator")
	if _, err := client.Call(ref, "Accumulate", int64(7)); err != nil { // warm the connection
		t.Fatal(err)
	}
	// Drop the next frame the client sends (the call itself); the retry's
	// resend passes.
	net.SetFaultSchedule("client", "server", netsim.NewFaultSchedule(
		netsim.FaultEvent{AtSend: 1, Action: netsim.ActDrop},
	))
	if _, err := client.Call(ref, "Accumulate", int64(5)); err != nil {
		t.Fatalf("call with dropped request: %v", err)
	}
	if got := calc.Total(); got != 12 {
		t.Fatalf("accumulated %d, want 12 (exactly-once)", got)
	}
	cs, ss := client.Stats(), server.Stats()
	if cs.Retries != 1 {
		t.Fatalf("client retries = %d, want 1", cs.Retries)
	}
	if ss.CallsServed != 2 || ss.DupsSuppressed != 0 {
		t.Fatalf("server stats: %+v", ss)
	}
}

func TestRetryAfterDroppedReply(t *testing.T) {
	// The request executes but its reply is lost; the client re-sends the
	// same call id and the server answers from the dedupe table without
	// executing again.
	server, client, net := newRetryPair(t, fastRetry(4, 30*time.Millisecond))
	calc := &calculator{}
	ref, _ := server.Export(calc, "Calculator")
	if _, err := client.Call(ref, "Accumulate", int64(7)); err != nil { // warm the connection
		t.Fatal(err)
	}
	net.SetFaultSchedule("server", "client", netsim.NewFaultSchedule(
		netsim.FaultEvent{AtSend: 1, Action: netsim.ActDrop},
	))
	if _, err := client.Call(ref, "Accumulate", int64(5)); err != nil {
		t.Fatalf("call with dropped reply: %v", err)
	}
	if got := calc.Total(); got != 12 {
		t.Fatalf("accumulated %d, want 12 (dropped reply must not re-execute)", got)
	}
	ss := server.Stats()
	if ss.CallsServed != 2 {
		t.Fatalf("server executed %d calls, want 2 (exactly-once)", ss.CallsServed)
	}
	if ss.DupsSuppressed != 1 {
		t.Fatalf("duplicates suppressed = %d, want 1", ss.DupsSuppressed)
	}
	if cs := client.Stats(); cs.Retries != 1 {
		t.Fatalf("client retries = %d, want 1", cs.Retries)
	}
}

// onceCounter records how many times Hit actually ran.
type onceCounter struct {
	n int64
}

func (o *onceCounter) Hit(sleepMs int64) int64 {
	n := atomic.AddInt64(&o.n, 1)
	time.Sleep(time.Duration(sleepMs) * time.Millisecond)
	return n
}

func TestTimeoutThenLateReply(t *testing.T) {
	// The per-try timeout expires while the first execution is still
	// running. Each resend parks on the in-flight dedupe entry instead of
	// starting a second execution; when the slow call finishes, its recorded
	// reply answers every arrival and the client call succeeds.
	server, client, _ := newRetryPair(t, fastRetry(8, 30*time.Millisecond))
	counter := &onceCounter{}
	ref, _ := server.Export(counter, "Counter")
	res, err := client.CallTimeout(ref, 2*time.Second, "Hit", int64(100))
	if err != nil {
		t.Fatalf("slow call: %v", err)
	}
	if res[0] != int64(1) {
		t.Fatalf("result %v, want 1", res[0])
	}
	if got := atomic.LoadInt64(&counter.n); got != 1 {
		t.Fatalf("method executed %d times, want exactly 1", got)
	}
	if cs := client.Stats(); cs.Retries == 0 {
		t.Fatal("expected at least one per-try timeout resend")
	}
	// The duplicate handlers unblock at the same instant the real reply
	// does, so give their counters a moment to land.
	deadline := time.Now().Add(2 * time.Second)
	for server.Stats().DupsSuppressed == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ss := server.Stats()
	if ss.DupsSuppressed == 0 {
		t.Fatal("expected resends to be suppressed by the dedupe table")
	}
	if ss.CallsServed != 1 {
		t.Fatalf("server executed %d calls, want 1", ss.CallsServed)
	}
}

func TestRetryExhaustion(t *testing.T) {
	server, client, net := newRetryPair(t, fastRetry(3, 0))
	ref, _ := server.Export(&calculator{}, "Calculator")
	if _, err := client.Call(ref, "Total"); err != nil { // warm the connection
		t.Fatal(err)
	}
	// Every attempt's frame is dropped; the call must fail with the last
	// transport error after exactly MaxAttempts tries.
	net.SetFaultSchedule("client", "server", netsim.NewFaultSchedule(
		netsim.FaultEvent{AtSend: 1, Action: netsim.ActDrop},
		netsim.FaultEvent{AtSend: 2, Action: netsim.ActDrop},
		netsim.FaultEvent{AtSend: 3, Action: netsim.ActDrop},
	))
	_, err := client.Call(ref, "Total")
	if err == nil {
		t.Fatal("call must fail when every attempt is dropped")
	}
	if !errors.Is(err, netsim.ErrDropped) {
		t.Fatalf("exhaustion error must wrap the last transport error, got %v", err)
	}
	if want := "after 3 attempts"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q must mention %q", err, want)
	}
	if cs := client.Stats(); cs.Retries != 2 {
		t.Fatalf("client retries = %d, want 2", cs.Retries)
	}
	if ss := server.Stats(); ss.CallsServed != 1 {
		t.Fatalf("server executed %d calls, want 1 (warm only)", ss.CallsServed)
	}
}

func TestOverallDeadlineCapsBackoff(t *testing.T) {
	// The overall call timeout is a hard deadline: when it cannot fit the
	// next backoff the call fails with ErrTimeout immediately instead of
	// sleeping past it, and the last transport error stays inspectable.
	server, client, net := newRetryPair(t, RetryPolicy{
		MaxAttempts: 10,
		BaseBackoff: 300 * time.Millisecond,
		MaxBackoff:  300 * time.Millisecond,
		Multiplier:  1,
	})
	ref, _ := server.Export(&calculator{}, "Calculator")
	if _, err := client.Call(ref, "Total"); err != nil { // warm the connection
		t.Fatal(err)
	}
	net.Disconnect("client", "server")
	start := time.Now()
	_, err := client.CallTimeout(ref, 50*time.Millisecond, "Total")
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if !errors.Is(err, netsim.ErrDisconnected) {
		t.Fatalf("timeout must preserve the last transport error, got %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline-bound call took %v, must not sleep the full backoff ladder", elapsed)
	}
}

func TestNoRetryFailsFast(t *testing.T) {
	server, client, net := newRetryPair(t, NoRetry())
	ref, _ := server.Export(&calculator{}, "Calculator")
	if _, err := client.Call(ref, "Total"); err != nil {
		t.Fatal(err)
	}
	net.SetFaultSchedule("client", "server", netsim.NewFaultSchedule(
		netsim.FaultEvent{AtSend: 1, Action: netsim.ActDrop},
	))
	if _, err := client.Call(ref, "Total"); !errors.Is(err, netsim.ErrDropped) {
		t.Fatalf("NoRetry must surface the first failure, got %v", err)
	}
	if cs := client.Stats(); cs.Retries != 0 {
		t.Fatalf("NoRetry made %d retries", cs.Retries)
	}
}

func TestApplicationFaultsNeverRetry(t *testing.T) {
	server, client, _ := newRetryPair(t, fastRetry(5, 0))
	ref, _ := server.Export(&calculator{}, "Calculator")
	if _, err := client.Call(ref, "Div", int64(1), int64(0)); err == nil {
		t.Fatal("want application fault")
	}
	if cs := client.Stats(); cs.Retries != 0 {
		t.Fatalf("application fault triggered %d retries, want 0", cs.Retries)
	}
	if ss := server.Stats(); ss.CallsServed != 1 {
		t.Fatalf("server executed %d calls, want 1", ss.CallsServed)
	}
}

func TestDedupeInFlightWait(t *testing.T) {
	tbl := newDedupeTable(netsim.Real())
	e1, dup := tbl.begin("c#1", 7)
	if dup {
		t.Fatal("first begin must not be a duplicate")
	}
	e2, dup := tbl.begin("c#1", 7)
	if !dup || e2 != e1 {
		t.Fatal("second begin must return the in-flight entry")
	}
	if e2.isDone() {
		t.Fatal("entry must not be done before completion")
	}
	e1.complete([]byte("reply"))
	if got := e2.await(); string(got) != "reply" {
		t.Fatalf("duplicate sees frame %q", got)
	}
	// A different client shares nothing.
	if _, dup := tbl.begin("c#2", 7); dup {
		t.Fatal("ids must be scoped per client")
	}
}

func TestDedupeEviction(t *testing.T) {
	tbl := newDedupeTable(netsim.Real())
	for id := uint64(1); id <= maxDedupePerClient+10; id++ {
		e, dup := tbl.begin("c#1", id)
		if dup {
			t.Fatalf("id %d: unexpected duplicate", id)
		}
		e.complete(nil) // completed: eligible for eviction
	}
	if got := tbl.size("c#1"); got != maxDedupePerClient {
		t.Fatalf("table size %d, want cap %d", got, maxDedupePerClient)
	}
	// Evicted oldest ids now read as fresh calls (they would re-execute,
	// which is why the cap is far beyond any live retry window).
	if _, dup := tbl.begin("c#1", 1); dup {
		t.Fatal("evicted id must not be seen as duplicate")
	}
}

func TestDedupeNeverEvictsInFlight(t *testing.T) {
	tbl := newDedupeTable(netsim.Real())
	first, _ := tbl.begin("c#1", 1) // stays in flight
	for id := uint64(2); id <= maxDedupePerClient+10; id++ {
		e, _ := tbl.begin("c#1", id)
		e.complete(nil)
	}
	if _, dup := tbl.begin("c#1", 1); !dup {
		t.Fatal("in-flight entry must survive eviction pressure")
	}
	first.complete(nil)
}
