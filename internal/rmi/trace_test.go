package rmi

import (
	"strings"
	"testing"
	"time"

	"obiwan/internal/netsim"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// newTracedPair is newRetryPair with a telemetry hub on each side.
func newTracedPair(t *testing.T, p RetryPolicy) (server, client *Runtime, net *transport.MemNetwork, serverHub, clientHub *telemetry.Hub) {
	t.Helper()
	net = transport.NewMemNetwork(netsim.Loopback)
	serverHub = telemetry.NewHub("server")
	clientHub = telemetry.NewHub("client")
	var err error
	server, err = NewRuntime(net, "server", WithTelemetry(serverHub))
	if err != nil {
		t.Fatal(err)
	}
	client, err = NewRuntime(net, "client", WithRetryPolicy(p), WithTelemetry(clientHub))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = server.Close()
	})
	return server, client, net, serverHub, clientHub
}

// spansNamed filters finished spans by name.
func spansNamed(spans []telemetry.SpanRecord, name string) []telemetry.SpanRecord {
	var out []telemetry.SpanRecord
	for _, sp := range spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

func TestTraceRetriedCallIsOneLogicalSpan(t *testing.T) {
	// A dropped reply forces a resend that the server answers from its
	// dedupe table. The retried call must stay ONE logical operation in the
	// trace: one client span (annotated with the resend attempt) and one
	// server span — the suppressed duplicate mints nothing.
	server, client, net, serverHub, clientHub := newTracedPair(t, fastRetry(4, 30*time.Millisecond))
	calc := &calculator{}
	ref, _ := server.Export(calc, "Calculator")
	if _, err := client.Call(ref, "Accumulate", int64(7)); err != nil { // warm, untraced
		t.Fatal(err)
	}
	net.SetFaultSchedule("server", "client", netsim.NewFaultSchedule(
		netsim.FaultEvent{AtSend: 1, Action: netsim.ActDrop},
	))

	root := clientHub.StartRoot("test")
	if _, err := client.CallTraced(root.Context(), ref, "Accumulate", int64(5)); err != nil {
		t.Fatalf("traced call with dropped reply: %v", err)
	}
	root.End()
	if calc.Total() != 12 {
		t.Fatalf("accumulated %d, want 12", calc.Total())
	}
	if got := server.Stats().DupsSuppressed; got != 1 {
		t.Fatalf("duplicates suppressed = %d, want 1", got)
	}

	clientCalls := spansNamed(clientHub.Spans(0), "rmi:Accumulate")
	if len(clientCalls) != 1 {
		t.Fatalf("client rmi spans = %d, want 1 (one logical span per retried call)", len(clientCalls))
	}
	cs := clientCalls[0]
	if cs.Parent != root.Context().SpanID || cs.TraceID != root.Context().TraceID {
		t.Fatalf("client span not parented under root: %+v", cs)
	}
	if !strings.Contains(strings.Join(cs.Attrs, " "), "attempt=2") {
		t.Fatalf("retried client span missing attempt annotation: %v", cs.Attrs)
	}

	serves := spansNamed(serverHub.Spans(0), "serve:Accumulate")
	if len(serves) != 1 {
		t.Fatalf("server serve spans = %d, want 1 (dedupe-suppressed resend must not re-span)", len(serves))
	}
	ss := serves[0]
	if ss.TraceID != cs.TraceID || ss.Parent != cs.SpanID {
		t.Fatalf("serve span not a child of the client span: serve=%+v client=%+v", ss, cs)
	}

	// The untraced warm call minted nothing anywhere.
	if got := len(clientHub.Spans(0)); got != 2 { // rmi span + root
		t.Fatalf("client finished spans = %d, want 2", got)
	}
	if got := len(serverHub.Spans(0)); got != 1 {
		t.Fatalf("server finished spans = %d, want 1", got)
	}
}

func TestUntracedCallsCarryNoContextAndCostNoSpans(t *testing.T) {
	server, client, _, serverHub, clientHub := newTracedPair(t, NoRetry())
	ref, _ := server.Export(&calculator{}, "Calculator")
	if _, err := client.Call(ref, "Add", int64(2), int64(3)); err != nil {
		t.Fatal(err)
	}
	if n := len(clientHub.Spans(0)) + len(serverHub.Spans(0)); n != 0 {
		t.Fatalf("untraced call minted %d spans", n)
	}
}

func TestTraceContextFlowsThroughHublessRuntime(t *testing.T) {
	// A runtime without a hub forwards an inbound context verbatim: the
	// caller's trace still reaches the server even though the middle mints
	// no spans of its own.
	net := transport.NewMemNetwork(netsim.Loopback)
	serverHub := telemetry.NewHub("server")
	server, err := NewRuntime(net, "server", WithTelemetry(serverHub))
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewRuntime(net, "client") // no hub
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	defer server.Close()
	ref, _ := server.Export(&calculator{}, "Calculator")

	sc := telemetry.SpanContext{TraceID: 42, SpanID: 99}
	if _, err := client.CallTraced(sc, ref, "Add", int64(1), int64(1)); err != nil {
		t.Fatal(err)
	}
	serves := spansNamed(serverHub.Spans(0), "serve:Add")
	if len(serves) != 1 {
		t.Fatalf("serve spans = %d, want 1", len(serves))
	}
	if serves[0].TraceID != 42 || serves[0].Parent != 99 {
		t.Fatalf("context not forwarded verbatim: %+v", serves[0])
	}
}
