package rmi

import (
	"errors"
	"fmt"
	"reflect"

	"obiwan/internal/invoke"
	"obiwan/internal/telemetry"
	"obiwan/internal/wire"
)

// spanContextType marks methods that opt into receiving the serve-side
// trace context as their first parameter.
var spanContextType = reflect.TypeOf(telemetry.SpanContext{})

// skeleton is the server-side dispatcher for one exported object: the Go
// analogue of the skeleton classes Java RMI generated. Dispatch itself is
// shared with local method invocation via package invoke.
type skeleton struct {
	recv    reflect.Value
	methods map[string]reflect.Method
	// wantsSC marks methods whose first parameter is telemetry.SpanContext.
	// The skeleton injects the serve span's context there — the caller never
	// sends it — so replication handlers can parent their own spans under
	// the inbound call without the trace context leaking into the remote
	// method signature seen by clients. When telemetry is off the injected
	// context is the zero value, keeping argument counts stable either way.
	wantsSC map[string]bool
}

// newSkeleton builds a skeleton for obj. Objects with no exported methods
// are rejected: they could never serve a call.
func newSkeleton(obj any) (*skeleton, error) {
	if obj == nil {
		return nil, fmt.Errorf("rmi: cannot export nil")
	}
	rv := reflect.ValueOf(obj)
	methods, err := invoke.MethodTable(rv.Type())
	if err != nil {
		return nil, fmt.Errorf("rmi: %w", err)
	}
	wantsSC := make(map[string]bool)
	for name, m := range methods {
		// m.Type includes the receiver at In(0); In(1) is the first
		// declared parameter.
		if m.Type.NumIn() >= 2 && m.Type.In(1) == spanContextType {
			wantsSC[name] = true
		}
	}
	return &skeleton{recv: rv, methods: methods, wantsSC: wantsSC}, nil
}

// invoke runs method with args and returns either result values or a wire
// fault. sc is the serve span's context, prepended to args for methods
// declaring a leading telemetry.SpanContext parameter. A trailing error
// result is stripped: nil vanishes, non-nil becomes a FaultApp (the
// remote-exception path).
func (sk *skeleton) invoke(method string, args []any, sc telemetry.SpanContext) ([]any, *wire.Fault) {
	if sk.wantsSC[method] {
		withSC := make([]any, 0, len(args)+1)
		withSC = append(withSC, sc)
		args = append(withSC, args...)
	}
	results, err := invoke.CallWithTable(sk.recv, sk.methods, method, args)
	if err == nil {
		return results, nil
	}
	var ie *invoke.Error
	if errors.As(err, &ie) {
		code := wire.FaultApp
		switch ie.Kind {
		case invoke.KindNoSuchMethod:
			code = wire.FaultNoSuchMethod
		case invoke.KindBadArgs:
			code = wire.FaultBadArgs
		}
		return nil, &wire.Fault{Code: code, Message: ie.Message}
	}
	return nil, &wire.Fault{Code: wire.FaultApp, Message: err.Error()}
}
