package rmi

import (
	"errors"
	"fmt"
	"reflect"

	"obiwan/internal/invoke"
	"obiwan/internal/wire"
)

// skeleton is the server-side dispatcher for one exported object: the Go
// analogue of the skeleton classes Java RMI generated. Dispatch itself is
// shared with local method invocation via package invoke.
type skeleton struct {
	recv    reflect.Value
	methods map[string]reflect.Method
}

// newSkeleton builds a skeleton for obj. Objects with no exported methods
// are rejected: they could never serve a call.
func newSkeleton(obj any) (*skeleton, error) {
	if obj == nil {
		return nil, fmt.Errorf("rmi: cannot export nil")
	}
	rv := reflect.ValueOf(obj)
	methods, err := invoke.MethodTable(rv.Type())
	if err != nil {
		return nil, fmt.Errorf("rmi: %w", err)
	}
	return &skeleton{recv: rv, methods: methods}, nil
}

// invoke runs method with args and returns either result values or a wire
// fault. A trailing error result is stripped: nil vanishes, non-nil becomes
// a FaultApp (the remote-exception path).
func (sk *skeleton) invoke(method string, args []any) ([]any, *wire.Fault) {
	results, err := invoke.CallWithTable(sk.recv, sk.methods, method, args)
	if err == nil {
		return results, nil
	}
	var ie *invoke.Error
	if errors.As(err, &ie) {
		code := wire.FaultApp
		switch ie.Kind {
		case invoke.KindNoSuchMethod:
			code = wire.FaultNoSuchMethod
		case invoke.KindBadArgs:
			code = wire.FaultBadArgs
		}
		return nil, &wire.Fault{Code: code, Message: ie.Message}
	}
	return nil, &wire.Fault{Code: wire.FaultApp, Message: err.Error()}
}
