package telemetry

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"obiwan/internal/codec"
)

// fakeClock is a deterministic, strictly increasing time source.
func fakeClock() func() time.Time {
	var mu sync.Mutex
	t := time.Unix(1_000_000, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestNilHubIsFreeAndSafe(t *testing.T) {
	var h *Hub
	if h.Enabled() {
		t.Fatal("nil hub enabled")
	}
	sp := h.StartRoot("x")
	if sp != nil {
		t.Fatal("nil hub minted a span")
	}
	sp.Annotate("k", "v")
	sp.SetErr(errors.New("boom"))
	sp.End()
	if sc := sp.Context(); sc.Valid() {
		t.Fatal("nil span has valid context")
	}
	h.Metrics().Counter("c").Inc()
	h.Metrics().Gauge("g").Set(7)
	h.Metrics().Histogram("h").Observe(1)
	if got := h.MetricsSnapshot(); len(got.Counters) != 0 {
		t.Fatalf("nil hub snapshot: %+v", got)
	}
	if spans := h.Spans(10); spans != nil {
		t.Fatalf("nil hub spans: %v", spans)
	}
}

func TestSpanTreeAndDeterministicIDs(t *testing.T) {
	run := func() []SpanRecord {
		h := NewHub("alpha", WithClock(fakeClock()))
		root := h.StartRoot("fault")
		child := h.StartSpan(root.Context(), "rmi:Get")
		child.Annotate("attempt", "1")
		child.End()
		m := h.StartSpan(root.Context(), "materialize")
		m.End()
		root.End()
		return h.Spans(0)
	}
	a, b := run(), run()
	if len(a) != 3 {
		t.Fatalf("spans: %d", len(a))
	}
	if fmt.Sprintf("%v", a) != fmt.Sprintf("%v", b) {
		t.Fatalf("reruns differ:\n%v\n%v", a, b)
	}
	trees := BuildTrees(a)
	if len(trees) != 1 {
		t.Fatalf("trees: %d", len(trees))
	}
	root := trees[0]
	if root.Span.Name != "fault" || root.Span.Parent != 0 {
		t.Fatalf("root: %+v", root.Span)
	}
	if root.Span.TraceID != root.Span.SpanID {
		t.Fatalf("root trace id != span id: %+v", root.Span)
	}
	if len(root.Children) != 2 {
		t.Fatalf("children: %d", len(root.Children))
	}
	for _, c := range root.Children {
		if c.Span.Parent != root.Span.SpanID || c.Span.TraceID != root.Span.TraceID {
			t.Fatalf("child edge: %+v", c.Span)
		}
	}
	if !strings.Contains(FormatTree(root), "rmi:Get") {
		t.Fatal("format lost a span")
	}
}

func TestCrossSiteIDsDisjoint(t *testing.T) {
	a := NewHub("siteA")
	b := NewHub("siteB")
	sa := a.StartRoot("x")
	sb := b.StartRoot("x")
	if sa.Context().SpanID == sb.Context().SpanID {
		t.Fatal("two sites minted the same span id")
	}
	sa.End()
	sb.End()
}

func TestSpanRingEviction(t *testing.T) {
	h := NewHub("s", WithSpanCapacity(4))
	for i := 0; i < 10; i++ {
		h.StartRoot(fmt.Sprintf("op%d", i)).End()
	}
	spans := h.Spans(0)
	if len(spans) != 4 {
		t.Fatalf("ring kept %d", len(spans))
	}
	if spans[0].Name != "op6" || spans[3].Name != "op9" {
		t.Fatalf("ring order: %v", spans)
	}
	if h.Tracer().Dropped() != 6 {
		t.Fatalf("dropped: %d", h.Tracer().Dropped())
	}
	if got := h.Spans(2); len(got) != 2 || got[1].Name != "op9" {
		t.Fatalf("bounded snapshot: %v", got)
	}
}

func TestSpanErrAndAttrs(t *testing.T) {
	h := NewHub("s", WithClock(fakeClock()))
	sp := h.StartRoot("put")
	sp.Annotate("oid", "1:2")
	sp.SetErr(errors.New("conflict"))
	sp.End()
	rec := h.Spans(0)[0]
	if rec.Err != "conflict" || len(rec.Attrs) != 1 || rec.Attrs[0] != "oid=1:2" {
		t.Fatalf("record: %+v", rec)
	}
	if rec.EndNS <= rec.StartNS {
		t.Fatalf("times: %+v", rec)
	}
	if s := rec.String(); !strings.Contains(s, "err=conflict") || !strings.Contains(s, "oid=1:2") {
		t.Fatalf("string: %s", s)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := m.Counter("rmi.calls")
			h := m.Histogram("lat_ns")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i%512 + 1))
				m.Gauge("live").Add(1)
			}
		}(g)
	}
	wg.Wait()
	snap := m.Snapshot("s", 0)
	if got := snap.Get("rmi.calls"); got != 8000 {
		t.Fatalf("counter: %d", got)
	}
	hv := snap.GetHistogram("lat_ns")
	if hv.Count != 8000 {
		t.Fatalf("histogram count: %d", hv.Count)
	}
	if hv.Min < 1 || hv.Max > 512 || hv.P50 < hv.Min || hv.P99 > 1024 {
		t.Fatalf("histogram stats: %+v", hv)
	}
	var bucketTotal uint64
	for _, b := range hv.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != hv.Count {
		t.Fatalf("buckets sum %d != count %d", bucketTotal, hv.Count)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	v := h.snapshot("x")
	// Bucket resolution: p50 of 1..1000 is in [256, 1000].
	if v.P50 < 256 || v.P50 > 1023 {
		t.Fatalf("p50: %d", v.P50)
	}
	if v.P99 < 512 || v.P99 > 1000 {
		t.Fatalf("p99 (clamped to max): %d", v.P99)
	}
	if v.Min != 1 || v.Max != 1000 || v.Sum != 500500 {
		t.Fatalf("stats: %+v", v)
	}
}

func TestSnapshotFormatAndCodecRoundTrip(t *testing.T) {
	h := NewHub("fmt-site", WithClock(fakeClock()))
	h.Metrics().Counter("repl.faults").Add(3)
	h.Metrics().Gauge("heap.objects").Set(12)
	h.Metrics().Histogram("rmi.call.latency_ns").ObserveDuration(3 * time.Millisecond)
	snap := h.MetricsSnapshot()
	out := snap.Format()
	for _, want := range []string{"repl.faults", "heap.objects", "rmi.call.latency_ns", "fmt-site"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}

	// Snapshots and span dumps travel over RMI: they must survive the codec.
	reg := codec.DefaultRegistry()
	e := codec.NewEncoder(256)
	if err := e.Value(reg, snap); err != nil {
		t.Fatal(err)
	}
	got, err := codec.NewDecoder(e.Bytes()).Value(reg)
	if err != nil {
		t.Fatal(err)
	}
	back, ok := got.(*MetricsSnapshot)
	if !ok {
		t.Fatalf("decoded %T", got)
	}
	if back.Get("repl.faults") != 3 || back.GetHistogram("rmi.call.latency_ns").Count != 1 {
		t.Fatalf("round trip: %+v", back)
	}

	sp := h.StartRoot("fault")
	sp.Annotate("oid", "7")
	sp.End()
	dump := &TraceDump{Site: "fmt-site", Spans: h.Spans(0)}
	e2 := codec.NewEncoder(256)
	if err := e2.Value(reg, dump); err != nil {
		t.Fatal(err)
	}
	got2, err := codec.NewDecoder(e2.Bytes()).Value(reg)
	if err != nil {
		t.Fatal(err)
	}
	back2 := got2.(*TraceDump)
	if len(back2.Spans) != 1 || back2.Spans[0].Name != "fault" || back2.Spans[0].Attrs[0] != "oid=7" {
		t.Fatalf("trace round trip: %+v", back2)
	}
}

func TestBuildTreesOrphansAndDeterminism(t *testing.T) {
	spans := []SpanRecord{
		{TraceID: 9, SpanID: 12, Parent: 11, Name: "child-of-missing"},
		{TraceID: 5, SpanID: 5, Name: "rootB"},
		{TraceID: 2, SpanID: 2, Name: "rootA"},
		{TraceID: 2, SpanID: 4, Parent: 2, Name: "kid2"},
		{TraceID: 2, SpanID: 3, Parent: 2, Name: "kid1"},
	}
	trees := BuildTrees(spans)
	if len(trees) != 3 {
		t.Fatalf("trees: %d", len(trees))
	}
	if trees[0].Span.Name != "rootA" || trees[1].Span.Name != "rootB" || trees[2].Span.Name != "child-of-missing" {
		t.Fatalf("order: %v, %v, %v", trees[0].Span.Name, trees[1].Span.Name, trees[2].Span.Name)
	}
	if trees[0].Children[0].Span.Name != "kid1" || trees[0].Children[1].Span.Name != "kid2" {
		t.Fatal("children not sorted by span id")
	}
	depths := map[string]int{}
	trees[0].Walk(func(d int, sp SpanRecord) { depths[sp.Name] = d })
	if depths["rootA"] != 0 || depths["kid1"] != 1 {
		t.Fatalf("walk depths: %v", depths)
	}
}

// Two live sites deployed under the same NAME mint colliding span ids
// (the id base is salted by name). Stitching their dumps together can
// hand BuildTrees duplicate ids and parent cycles; it must keep the
// first record per id, break the cycle, and terminate — the admin CLI
// feeds it whatever remote sites return.
func TestBuildTreesSurvivesCollidingIDs(t *testing.T) {
	spans := []SpanRecord{
		// Mutual cycle: 1→2 links, then 2→1 would close the loop.
		{TraceID: 1, SpanID: 1, Parent: 2, Site: "a", Name: "x"},
		{TraceID: 1, SpanID: 2, Parent: 1, Site: "b", Name: "y"},
		// Self-parent.
		{TraceID: 3, SpanID: 3, Parent: 3, Site: "a", Name: "self"},
		// Duplicate id from a same-named twin site: first record wins.
		{TraceID: 4, SpanID: 7, Site: "a", Name: "first"},
		{TraceID: 4, SpanID: 7, Site: "b", Name: "twin"},
	}
	trees := BuildTrees(spans)
	if len(trees) != 3 {
		t.Fatalf("trees: %d", len(trees))
	}
	total := 0
	for _, tr := range trees {
		tr.Walk(func(d int, sp SpanRecord) {
			total++
			if sp.Name == "twin" {
				t.Error("duplicate id record not dropped")
			}
		})
	}
	if total != 4 {
		t.Fatalf("spans in forest: %d, want 4", total)
	}
	// The cycle was broken by rooting the later span; its child survived.
	if trees[0].Span.Name != "y" || len(trees[0].Children) != 1 || trees[0].Children[0].Span.Name != "x" {
		t.Fatalf("cycle not broken as expected: root %q", trees[0].Span.Name)
	}
}
