package telemetry

import (
	"sort"
	"strings"
	"time"
)

// Hub bundles one site's tracer, metrics registry, per-object profiler,
// and flight recorder. A nil *Hub is the disabled state: every method
// no-ops or returns nil instruments, so the instrumented hot paths cost
// one nil check when telemetry is off.
type Hub struct {
	site     string
	tracer   *Tracer
	metrics  *Metrics
	profiler *Profiler
	flight   *FlightRecorder
	clock    func() time.Time
}

// HubOption configures a Hub.
type HubOption func(*hubConfig)

type hubConfig struct {
	clock      func() time.Time
	capacity   int
	profileCap int
	flightCap  int
}

// WithClock injects the hub's time source — how netsim scenarios keep
// span timestamps deterministic. Defaults to time.Now.
func WithClock(clock func() time.Time) HubOption {
	return func(c *hubConfig) { c.clock = clock }
}

// WithSpanCapacity sets the finished-span ring size (default 4096).
func WithSpanCapacity(n int) HubOption {
	return func(c *hubConfig) { c.capacity = n }
}

// WithProfileCapacity sets how many objects the profiler tracks
// (default 256).
func WithProfileCapacity(n int) HubOption {
	return func(c *hubConfig) { c.profileCap = n }
}

// WithFlightCapacity sets the flight recorder's event ring size
// (default 512).
func WithFlightCapacity(n int) HubOption {
	return func(c *hubConfig) { c.flightCap = n }
}

// NewHub builds the telemetry hub for the named site.
func NewHub(site string, opts ...HubOption) *Hub {
	cfg := hubConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	clock := cfg.clock
	if clock == nil {
		clock = time.Now
	}
	return &Hub{
		site:     site,
		tracer:   newTracer(site, clock, cfg.capacity),
		metrics:  NewMetrics(),
		profiler: NewProfiler(cfg.profileCap),
		flight:   newFlightRecorder(site, clock, cfg.flightCap),
		clock:    clock,
	}
}

// Enabled reports whether telemetry is on.
func (h *Hub) Enabled() bool { return h != nil }

// Site returns the owning site's name ("" when disabled).
func (h *Hub) Site() string {
	if h == nil {
		return ""
	}
	return h.site
}

// Metrics returns the registry (nil when disabled — instruments resolved
// from it are nil and no-op).
func (h *Hub) Metrics() *Metrics {
	if h == nil {
		return nil
	}
	return h.metrics
}

// Tracer returns the span recorder (nil when disabled).
func (h *Hub) Tracer() *Tracer {
	if h == nil {
		return nil
	}
	return h.tracer
}

// Profiler returns the per-object replication profiler (nil when
// disabled — a nil profiler no-ops).
func (h *Hub) Profiler() *Profiler {
	if h == nil {
		return nil
	}
	return h.profiler
}

// Flight returns the flight recorder (nil when disabled — a nil recorder
// no-ops).
func (h *Hub) Flight() *FlightRecorder {
	if h == nil {
		return nil
	}
	return h.flight
}

// Now returns the hub's clock reading (wall clock when disabled).
func (h *Hub) Now() time.Time {
	if h == nil {
		return time.Now()
	}
	return h.clock()
}

// StartSpan begins a span under parent; an invalid parent roots a new
// trace. Returns nil (a no-op span) when the hub is disabled.
func (h *Hub) StartSpan(parent SpanContext, name string) *Span {
	if h == nil {
		return nil
	}
	return h.tracer.start(parent, name)
}

// StartRoot begins a new trace.
func (h *Hub) StartRoot(name string) *Span {
	return h.StartSpan(SpanContext{}, name)
}

// MetricsSnapshot exports the current metrics state.
func (h *Hub) MetricsSnapshot() *MetricsSnapshot {
	if h == nil {
		return &MetricsSnapshot{}
	}
	return h.metrics.Snapshot(h.site, h.clock().UnixNano())
}

// Spans returns up to max recent finished spans, oldest first.
func (h *Hub) Spans(max int) []SpanRecord {
	if h == nil {
		return nil
	}
	return h.tracer.Snapshot(max)
}

// SpansSince returns up to max finished spans committed at or after
// cursor (a count of spans ever committed), oldest first, plus the
// cursor to resume from and how many requested spans had already been
// evicted. Feeding next back in yields each span exactly once — the
// streaming contract behind the admin Watch endpoint.
func (h *Hub) SpansSince(cursor uint64, max int) (spans []SpanRecord, next uint64, missed uint64) {
	if h == nil {
		return nil, cursor, 0
	}
	return h.tracer.SnapshotSince(cursor, max)
}

// ProfileSnapshot exports the topK hottest object profiles (all tracked
// when topK <= 0). Empty, but non-nil, when disabled.
func (h *Hub) ProfileSnapshot(topK int) *ProfileSnapshot {
	if h == nil {
		return &ProfileSnapshot{}
	}
	return h.profiler.Snapshot(h.site, h.clock().UnixNano(), topK)
}

// SlowTraces resolves the tail exemplars of every duration histogram
// ("_ns"-suffixed) against the tracer ring: the worst recent traced
// demands, value-descending (metric name ascending, trace id ascending on
// ties), at most max (all when max <= 0). Each result carries every
// retained span of its trace, so callers can print the annotated
// critical path without another round trip. Nil when disabled.
func (h *Hub) SlowTraces(max int) []SlowTrace {
	if h == nil {
		return nil
	}
	snap := h.metrics.Snapshot(h.site, h.clock().UnixNano())
	var out []SlowTrace
	for _, hist := range snap.Histograms {
		if !strings.HasSuffix(hist.Name, "_ns") {
			continue
		}
		for _, ex := range hist.Exemplars {
			out = append(out, SlowTrace{
				Site: h.site, Metric: hist.Name,
				ValueNS: ex.Value, TraceID: ex.TraceID,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.ValueNS != b.ValueNS {
			return a.ValueNS > b.ValueNS
		}
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		return a.TraceID < b.TraceID
	})
	// One entry per trace: several instruments (or several observations
	// on one instrument) may have sampled the same demand — the ranking
	// keeps its worst sample only.
	seen := make(map[uint64]bool, len(out))
	uniq := out[:0]
	for _, st := range out {
		if seen[st.TraceID] {
			continue
		}
		seen[st.TraceID] = true
		uniq = append(uniq, st)
	}
	out = uniq
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	if len(out) == 0 {
		return nil
	}
	spans := h.tracer.Snapshot(0)
	byTrace := make(map[uint64][]SpanRecord)
	for _, sp := range spans {
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}
	for i := range out {
		out[i].Spans = byTrace[out[i].TraceID]
	}
	return out
}
