package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"obiwan/internal/codec"
	"obiwan/internal/stats"
)

// This file is the critical-path attribution layer: given trace trees
// (BuildTrees), extract the single slowest causal chain of each trace
// with per-phase time attribution, and aggregate many such paths into an
// order-independent per-phase profile ("where does p99 go") that
// federates through the same merge layer as MetricsSnapshot.

// PathStep is one span on a critical path. SelfNS is the span's duration
// minus the descended child's — the time this step itself is responsible
// for on the chain.
type PathStep struct {
	Site   string
	Name   string
	SpanID uint64
	DurNS  int64
	SelfNS int64
	Phases []PhaseSegment
	Err    string
}

// CriticalPath is the slowest causal chain through one trace tree: at
// every node the walk descends into the longest-running child (ties
// break toward the lowest span id, so the path is deterministic for a
// given tree). Phases sums the steps' phase segments, with the remainder
// no instrumentation point claimed reported as PhaseUnattributed.
type CriticalPath struct {
	TraceID uint64
	Root    string // root span's name
	TotalNS int64
	Steps   []PathStep
	Phases  []PhaseSegment // sorted by phase name, unattributed last
}

func init() {
	codec.MustRegister("obiwan.telemetry.PathStep", PathStep{})
	codec.MustRegister("obiwan.telemetry.CriticalPath", CriticalPath{})
	codec.MustRegister("obiwan.telemetry.SlowTrace", SlowTrace{})
	codec.MustRegister("obiwan.telemetry.AttributionProfile", AttributionProfile{})
}

// ExtractCriticalPath walks one BuildTrees tree and returns its slowest
// causal chain. A nil root yields the zero path.
func ExtractCriticalPath(root *TraceNode) CriticalPath {
	if root == nil {
		return CriticalPath{}
	}
	cp := CriticalPath{
		TraceID: root.Span.TraceID,
		Root:    root.Span.Name,
		TotalNS: root.Span.EndNS - root.Span.StartNS,
	}
	if cp.TotalNS < 0 {
		cp.TotalNS = 0
	}
	byPhase := make(map[string]int64)
	n := root
	for n != nil {
		dur := n.Span.EndNS - n.Span.StartNS
		if dur < 0 {
			dur = 0
		}
		next := slowestChild(n)
		self := dur
		if next != nil {
			nd := next.Span.EndNS - next.Span.StartNS
			if nd < 0 {
				nd = 0
			}
			self -= nd
			if self < 0 {
				self = 0
			}
		}
		step := PathStep{
			Site:   n.Span.Site,
			Name:   n.Span.Name,
			SpanID: n.Span.SpanID,
			DurNS:  dur,
			SelfNS: self,
			Phases: n.Span.Phases,
			Err:    n.Span.Err,
		}
		// Phase windows nest across the chain: the client's net window
		// contains the server's serve span, whose serve window contains
		// the engine's assemble/apply span. Summing windows verbatim
		// would bill the same nanoseconds to every enclosing level, so
		// the aggregate self-attributes: the descended child's duration
		// is deducted from the step's largest phase — the window the
		// child ran inside — leaving each step's own contribution. The
		// per-step Phases stay verbatim (they annotate the span).
		deduct := dur - self
		enclosing, maxNS := -1, int64(0)
		for i, ph := range n.Span.Phases {
			if ph.NS > maxNS {
				enclosing, maxNS = i, ph.NS
			}
		}
		for i, ph := range n.Span.Phases {
			ns := ph.NS
			if i == enclosing && deduct > 0 {
				ns -= deduct
				if ns < 0 {
					ns = 0
				}
			}
			byPhase[ph.Phase] += ns
		}
		cp.Steps = append(cp.Steps, step)
		n = next
	}
	var attributed int64
	names := make([]string, 0, len(byPhase))
	for name, ns := range byPhase {
		names = append(names, name)
		attributed += ns
	}
	sort.Strings(names)
	for _, name := range names {
		cp.Phases = append(cp.Phases, PhaseSegment{Phase: name, NS: byPhase[name]})
	}
	if rem := cp.TotalNS - attributed; rem > 0 {
		cp.Phases = append(cp.Phases, PhaseSegment{Phase: PhaseUnattributed, NS: rem})
	}
	return cp
}

// slowestChild picks the child the critical path descends into: longest
// duration, lowest span id on ties. Nil when n is a leaf.
func slowestChild(n *TraceNode) *TraceNode {
	var best *TraceNode
	var bestDur int64 = -1
	for _, c := range n.Children {
		d := c.Span.EndNS - c.Span.StartNS
		if d < 0 {
			d = 0
		}
		if d > bestDur || (d == bestDur && best != nil && c.Span.SpanID < best.Span.SpanID) {
			best, bestDur = c, d
		}
	}
	return best
}

// Format renders the critical path as an indented chain with per-step
// self-time and phase segments — the obiwan-admin slow output. Two
// renders of the same path are byte-identical.
func (cp CriticalPath) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace=%x %s total=%v\n", cp.TraceID, cp.Root, time.Duration(cp.TotalNS))
	for i, st := range cp.Steps {
		for j := 0; j < i; j++ {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s %s %v self=%v", st.Site, st.Name, time.Duration(st.DurNS), time.Duration(st.SelfNS))
		for _, ph := range st.Phases {
			fmt.Fprintf(&b, " %s=%v", ph.Phase, time.Duration(ph.NS))
		}
		if st.Err != "" {
			fmt.Fprintf(&b, " err=%s", st.Err)
		}
		b.WriteByte('\n')
	}
	if len(cp.Phases) > 0 {
		b.WriteString("attribution:")
		for _, ph := range cp.Phases {
			share := int64(0)
			if cp.TotalNS > 0 {
				share = ph.NS * 100 / cp.TotalNS
			}
			fmt.Fprintf(&b, " %s=%v(%d%%)", ph.Phase, time.Duration(ph.NS), share)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SlowTrace ties a tail exemplar (or a slow scraped trace) to the spans
// that explain it: the instrument that flagged it, the sampled value,
// and every retained span of the trace — enough to rebuild the tree and
// print the annotated critical path anywhere.
type SlowTrace struct {
	Site    string // site that flagged the trace ("" for fleet-assembled)
	Metric  string // instrument the exemplar came from
	ValueNS int64
	TraceID uint64
	Spans   []SpanRecord
}

// Path builds the slow trace's critical path: the slowest chain of the
// tree rooted at the trace's own root (partial trees still render —
// missing ancestry just shortens the chain).
func (st SlowTrace) Path() CriticalPath {
	for _, root := range BuildTrees(st.Spans) {
		if root.Span.TraceID == st.TraceID {
			cp := ExtractCriticalPath(root)
			if cp.TotalNS == 0 && len(cp.Steps) == 0 {
				continue
			}
			return cp
		}
	}
	return CriticalPath{TraceID: st.TraceID}
}

// Format renders one slow trace: the flagging instrument and value, then
// the annotated critical path.
func (st SlowTrace) Format() string {
	var b strings.Builder
	site := st.Site
	if site == "" {
		site = "fleet"
	}
	fmt.Fprintf(&b, "%s %s = %v\n", site, st.Metric, time.Duration(st.ValueNS))
	b.WriteString(st.Path().Format())
	return b.String()
}

// AttributionProfile aggregates critical paths into per-phase time
// distributions: one histogram per phase of per-path phase nanoseconds,
// plus the "total" histogram of whole-path durations. Like the other
// federated forms, merging profiles is order-independent, so a collector
// folds per-site (or per-scrape) profiles as they arrive.
type AttributionProfile struct {
	Site      string
	TakenAtNS int64
	Paths     uint64
	Phases    []HistogramValue // Name is the phase; sorted by name
	Total     HistogramValue   // whole-path durations
}

// AttributionBuilder accumulates critical paths into a profile. It rides
// the metrics registry's histograms, so distributions have the same
// power-of-two bucket resolution as every other latency instrument.
type AttributionBuilder struct {
	m     *Metrics
	paths uint64
}

// NewAttributionBuilder returns an empty builder.
func NewAttributionBuilder() *AttributionBuilder {
	return &AttributionBuilder{m: NewMetrics()}
}

// Add folds one critical path into the profile. Zero-length paths (nil
// trees) are ignored.
func (b *AttributionBuilder) Add(cp CriticalPath) {
	if len(cp.Steps) == 0 {
		return
	}
	b.paths++
	b.m.Histogram("total").Observe(cp.TotalNS)
	for _, ph := range cp.Phases {
		b.m.Histogram(ph.Phase).Observe(ph.NS)
	}
}

// AddTrees extracts and folds the critical path of every tree.
func (b *AttributionBuilder) AddTrees(trees []*TraceNode) {
	for _, t := range trees {
		b.Add(ExtractCriticalPath(t))
	}
}

// Profile snapshots the accumulated distributions.
func (b *AttributionBuilder) Profile(site string, atNS int64) *AttributionProfile {
	snap := b.m.Snapshot(site, atNS)
	out := &AttributionProfile{Site: site, TakenAtNS: atNS, Paths: b.paths}
	for _, h := range snap.Histograms {
		if h.Name == "total" {
			out.Total = h
			continue
		}
		out.Phases = append(out.Phases, h)
	}
	sort.Slice(out.Phases, func(i, j int) bool { return out.Phases[i].Name < out.Phases[j].Name })
	return out
}

// Merge combines two attribution profiles: path counts sum, per-phase
// histograms merge by phase name, and the result is sorted by name —
// order-independent, like MetricsSnapshot.Merge. Either side may be nil.
func (p *AttributionProfile) Merge(o *AttributionProfile) *AttributionProfile {
	if p == nil {
		p = &AttributionProfile{}
	}
	if o == nil {
		o = &AttributionProfile{}
	}
	out := &AttributionProfile{
		TakenAtNS: max(p.TakenAtNS, o.TakenAtNS),
		Paths:     p.Paths + o.Paths,
		Total:     p.Total.Merge(o.Total),
	}
	if p.Site == o.Site {
		out.Site = p.Site
	}
	byName := make(map[string]HistogramValue, len(p.Phases)+len(o.Phases))
	for _, h := range p.Phases {
		byName[h.Name] = h
	}
	for _, h := range o.Phases {
		if have, ok := byName[h.Name]; ok {
			byName[h.Name] = have.Merge(h)
		} else {
			byName[h.Name] = h
		}
	}
	out.Phases = make([]HistogramValue, 0, len(byName))
	for _, h := range byName {
		out.Phases = append(out.Phases, h)
	}
	sort.Slice(out.Phases, func(i, j int) bool { return out.Phases[i].Name < out.Phases[j].Name })
	return out
}

// SharePermille returns the named phase's share of total attributed path
// time in integer permille (exact integer math — byte-stable across
// platforms). Zero when no time was recorded.
func (p *AttributionProfile) SharePermille(phase string) int64 {
	if p == nil || p.Total.Sum <= 0 {
		return 0
	}
	for _, h := range p.Phases {
		if h.Name == phase {
			return h.Sum * 1000 / p.Total.Sum
		}
	}
	return 0
}

// PhaseNames returns the profile's phase names, sorted.
func (p *AttributionProfile) PhaseNames() []string {
	if p == nil {
		return nil
	}
	names := make([]string, 0, len(p.Phases))
	for _, h := range p.Phases {
		names = append(names, h.Name)
	}
	return names
}

// Format renders the profile as an aligned table: per phase, the share
// of total path time plus the p50/p99 of its per-path distribution.
func (p *AttributionProfile) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "attribution over %d critical paths (total p50=%v p99=%v)\n",
		p.Paths, time.Duration(p.Total.P50), time.Duration(p.Total.P99))
	t := stats.NewTable("phase", "share", "paths", "p50", "p99")
	for _, h := range p.Phases {
		t.AddRow(h.Name,
			fmt.Sprintf("%d.%01d%%", p.SharePermille(h.Name)/10, p.SharePermille(h.Name)%10),
			h.Count,
			time.Duration(h.P50).String(), time.Duration(h.P99).String())
	}
	_, _ = t.WriteTo(&b)
	return b.String()
}
