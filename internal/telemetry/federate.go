package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"obiwan/internal/codec"
	"obiwan/internal/stats"
)

// This file is the fleet-federation layer: snapshots scraped from many
// sites merge into one aggregate, and the merged forms are what the
// fleet collector serves and the SLO watchdog evaluates. All merges are
// order-independent — folding N snapshots in any order yields identical
// totals, histogram quantile bounds, and top-K sets — so a collector
// can combine scrapes as they arrive without coordinating.

// Merge combines two histogram values observed independently (typically
// the same instrument on two sites). The combined value is canonical:
// buckets are summed by upper bound and sorted ascending (collapsing
// the duplicate MaxInt64 bound a single-site snapshot can carry for its
// two widest magnitude buckets), count/sum/min/max are exact, and the
// quantiles are re-derived from the combined buckets at the same
// bucket-boundary resolution as a single-site snapshot.
func (h HistogramValue) Merge(o HistogramValue) HistogramValue {
	out := HistogramValue{Name: h.Name}
	if out.Name == "" {
		out.Name = o.Name
	}
	out.Count = h.Count + o.Count
	if out.Count == 0 {
		return out
	}
	out.Sum = h.Sum + o.Sum
	switch {
	case h.Count == 0:
		out.Min, out.Max = o.Min, o.Max
	case o.Count == 0:
		out.Min, out.Max = h.Min, h.Max
	default:
		out.Min = min(h.Min, o.Min)
		out.Max = max(h.Max, o.Max)
	}
	byLe := make(map[int64]uint64, len(h.Buckets)+len(o.Buckets))
	for _, b := range h.Buckets {
		byLe[b.Le] += b.Count
	}
	for _, b := range o.Buckets {
		byLe[b.Le] += b.Count
	}
	out.Buckets = make([]BucketCount, 0, len(byLe))
	for le, n := range byLe {
		out.Buckets = append(out.Buckets, BucketCount{Le: le, Count: n})
	}
	sort.Slice(out.Buckets, func(i, j int) bool { return out.Buckets[i].Le < out.Buckets[j].Le })
	out.P50 = bucketQuantile(out.Buckets, out.Count, 0.50, out.Min, out.Max)
	out.P90 = bucketQuantile(out.Buckets, out.Count, 0.90, out.Min, out.Max)
	out.P99 = bucketQuantile(out.Buckets, out.Count, 0.99, out.Min, out.Max)
	// Exemplars: keep the largest histExemplars of the union under the
	// canonical total order (value desc, trace asc). Top-K under a total
	// order is associative, so pairwise folds stay order-independent.
	if len(h.Exemplars) > 0 || len(o.Exemplars) > 0 {
		ex := make([]Exemplar, 0, len(h.Exemplars)+len(o.Exemplars))
		ex = append(ex, h.Exemplars...)
		ex = append(ex, o.Exemplars...)
		sortExemplars(ex)
		if len(ex) > histExemplars {
			ex = ex[:histExemplars]
		}
		out.Exemplars = ex
	}
	return out
}

// bucketQuantile is quantile() over exported bucket/bound pairs instead
// of the raw shard array: the answer is the upper bound of the bucket
// holding the q-th sample, clamped into [min, max]. Buckets must be
// sorted by bound, as Merge and Histogram.snapshot both produce.
func bucketQuantile(buckets []BucketCount, total uint64, q float64, min, max int64) int64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for _, b := range buckets {
		cum += b.Count
		if cum > rank {
			le := b.Le
			if le < min {
				le = min
			}
			if le > max {
				le = max
			}
			return le
		}
	}
	return max
}

// Merge combines two metrics snapshots into a new one: counters and
// gauges sum by name (a fleet total — per-site values stay visible in
// the collector's per-site breakdown), histograms merge by name, and
// the output is sorted by name. Either receiver or argument may be nil.
// The merged Site is kept only when both sides agree (a fleet aggregate
// names itself at the collector, not here); TakenAtNS is the newest of
// the two.
func (s *MetricsSnapshot) Merge(o *MetricsSnapshot) *MetricsSnapshot {
	if s == nil {
		s = &MetricsSnapshot{}
	}
	if o == nil {
		o = &MetricsSnapshot{}
	}
	out := &MetricsSnapshot{TakenAtNS: max(s.TakenAtNS, o.TakenAtNS)}
	if s.Site == o.Site {
		out.Site = s.Site
	}
	counters := make(map[string]uint64, len(s.Counters)+len(o.Counters))
	for _, c := range s.Counters {
		counters[c.Name] += c.Value
	}
	for _, c := range o.Counters {
		counters[c.Name] += c.Value
	}
	for name, v := range counters {
		out.Counters = append(out.Counters, CounterValue{Name: name, Value: v})
	}
	gauges := make(map[string]int64, len(s.Gauges)+len(o.Gauges))
	for _, g := range s.Gauges {
		gauges[g.Name] += g.Value
	}
	for _, g := range o.Gauges {
		gauges[g.Name] += g.Value
	}
	for name, v := range gauges {
		out.Gauges = append(out.Gauges, GaugeValue{Name: name, Value: v})
	}
	hists := make(map[string]HistogramValue, len(s.Histograms)+len(o.Histograms))
	for _, h := range s.Histograms {
		hists[h.Name] = h
	}
	for _, h := range o.Histograms {
		if have, ok := hists[h.Name]; ok {
			hists[h.Name] = have.Merge(h)
		} else {
			hists[h.Name] = h
		}
	}
	for _, h := range hists {
		out.Histograms = append(out.Histograms, h)
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	return out
}

// Merge combines two top-K profile snapshots: per-OID profiles sum
// field-by-field (an object hot on two sites is hotter than either
// alone), Tracked/Evicted sum across sites, and the result is re-ranked
// heat-descending (OID ascending on ties) and truncated to topK when
// topK > 0. Either side may be nil.
func (s *ProfileSnapshot) Merge(o *ProfileSnapshot, topK int) *ProfileSnapshot {
	if s == nil {
		s = &ProfileSnapshot{}
	}
	if o == nil {
		o = &ProfileSnapshot{}
	}
	out := &ProfileSnapshot{
		TakenAtNS: max(s.TakenAtNS, o.TakenAtNS),
		Tracked:   s.Tracked + o.Tracked,
		Evicted:   s.Evicted + o.Evicted,
	}
	if s.Site == o.Site {
		out.Site = s.Site
	}
	byOID := make(map[uint64]ObjectProfile, len(s.Objects)+len(o.Objects))
	for _, p := range s.Objects {
		byOID[p.OID] = addProfiles(byOID[p.OID], p)
	}
	for _, p := range o.Objects {
		byOID[p.OID] = addProfiles(byOID[p.OID], p)
	}
	out.Objects = make([]ObjectProfile, 0, len(byOID))
	for _, p := range byOID {
		out.Objects = append(out.Objects, p)
	}
	sort.Slice(out.Objects, func(i, j int) bool {
		hi, hj := out.Objects[i].Heat(), out.Objects[j].Heat()
		if hi != hj {
			return hi > hj
		}
		return out.Objects[i].OID < out.Objects[j].OID
	})
	if topK > 0 && len(out.Objects) > topK {
		out.Objects = out.Objects[:topK]
	}
	return out
}

// addProfiles sums every activity field of b into a. The zero value is
// the identity, so folding per-site profiles through it is
// order-independent.
func addProfiles(a, b ObjectProfile) ObjectProfile {
	a.OID = b.OID
	a.Faults += b.Faults
	a.HeapHits += b.HeapHits
	a.RemoteDemands += b.RemoteDemands
	a.ClusterDemands += b.ClusterDemands
	a.DemandObjects += b.DemandObjects
	a.DemandBytes += b.DemandBytes
	a.FaultNS += b.FaultNS
	a.LMICalls += b.LMICalls
	a.RMICalls += b.RMICalls
	a.Serves += b.Serves
	a.ServeObjects += b.ServeObjects
	a.ServeBytes += b.ServeBytes
	a.PutsShipped += b.PutsShipped
	a.PutsApplied += b.PutsApplied
	return a
}

// SiteObservation is one scraped site's contribution to a fleet
// snapshot: its latest per-site metrics and profile, the span-stream
// cursor the collector holds for it, and the last scrape error (empty
// when the site is healthy).
type SiteObservation struct {
	Site      string
	TakenAtNS int64
	Cursor    uint64
	Missed    uint64
	Err       string
	Metrics   *MetricsSnapshot
	Profile   *ProfileSnapshot
}

// FleetSnapshot is the collector's aggregated view of a deployment: the
// merged metrics and profile across every scraped site, plus the
// per-site breakdowns the merge was folded from. Sites are sorted by
// name, so two snapshots of identical fleet state render identically.
type FleetSnapshot struct {
	TakenAtNS int64
	Scrapes   uint64
	Sites     []SiteObservation
	Metrics   *MetricsSnapshot
	Profile   *ProfileSnapshot
}

// Alert is one SLO rule violation observed by the fleet watchdog: the
// rule that fired, the offending site ("fleet" for aggregate rules),
// the measured value against its threshold, and when it was seen.
type Alert struct {
	Rule      string
	Site      string
	Metric    string
	Value     float64
	Threshold float64
	AtNS      int64
	Detail    string
}

func init() {
	codec.MustRegister("obiwan.telemetry.SiteObservation", SiteObservation{})
	codec.MustRegister("obiwan.telemetry.FleetSnapshot", FleetSnapshot{})
	codec.MustRegister("obiwan.telemetry.Alert", Alert{})
}

// Format renders the fleet snapshot: the merged fleet-wide metrics, the
// cross-site hot-object ranking, and a one-line health row per site
// (the obiwan-admin fleet top output).
func (f *FleetSnapshot) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet of %d sites (%d scrapes)\n\n", len(f.Sites), f.Scrapes)
	if len(f.Sites) > 0 {
		t := stats.NewTable("site", "rmi.calls", "bytes.sent", "stale", "missed", "err")
		for _, s := range f.Sites {
			var calls, sent uint64
			var stale int64
			if s.Metrics != nil {
				calls = s.Metrics.Get("rmi.calls")
				sent = s.Metrics.Get("rmi.bytes.sent")
				for _, g := range s.Metrics.Gauges {
					if g.Name == "site.stale.replicas" {
						stale = g.Value
					}
				}
			}
			t.AddRow(s.Site, calls, sent, stale, s.Missed, s.Err)
		}
		_, _ = t.WriteTo(&b)
		b.WriteByte('\n')
	}
	if f.Metrics != nil {
		b.WriteString(f.Metrics.Format())
		b.WriteByte('\n')
	}
	if f.Profile != nil {
		b.WriteString(f.Profile.Format())
	}
	return b.String()
}

// FormatAlerts renders watchdog alerts as an aligned table (the
// obiwan-admin fleet alerts output). dropped is the count of alerts the
// bounded backlog evicted before this read; non-zero means the table is
// an incomplete record and says so.
func FormatAlerts(alerts []Alert, dropped uint64) string {
	var b strings.Builder
	if len(alerts) == 0 {
		b.WriteString("no alerts\n")
	} else {
		t := stats.NewTable("at", "rule", "site", "metric", "value", "threshold", "detail")
		for _, a := range alerts {
			t.AddRow(time.Unix(0, a.AtNS).UTC().Format("15:04:05.000"), a.Rule, a.Site, a.Metric,
				fmt.Sprintf("%.0f", a.Value), fmt.Sprintf("%.0f", a.Threshold), a.Detail)
		}
		_, _ = t.WriteTo(&b)
	}
	if dropped > 0 {
		fmt.Fprintf(&b, "fleet.alerts.dropped=%d (backlog overflowed; oldest alerts evicted)\n", dropped)
	}
	return b.String()
}
