// Package telemetry is the observability layer of the OBIWAN runtime:
// causal trace propagation across RMI hops and a per-site metrics
// registry, both exported live through the admin service.
//
// The paper's central claims (figures 4–6) are about where time goes when
// an object fault at one site cascades into a demand RMI, a payload
// assembly at the provider, and a materialization back at the faulting
// site. Single-site replication events cannot show that chain; this
// package links the steps into one rooted span tree by carrying a compact
// trace context (trace id + parent span id) inside wire.Call frames.
//
// Design constraints, in order:
//
//   - Near-zero cost when disabled: every entry point is a nil-receiver
//     no-op, so an un-instrumented runtime pays one nil check per call.
//   - Deterministic under netsim: span ids are minted from a per-site
//     counter salted with the site name, and the clock is injectable, so
//     a seeded scenario produces the same tree — ids included — on every
//     run.
//   - Bounded memory: finished spans land in a fixed-size ring; metrics
//     are counters, gauges, and fixed-bucket histograms.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"obiwan/internal/codec"
)

// SpanContext is the compact causal identity carried in wire.Call frames:
// which trace an operation belongs to and which span caused it. The zero
// value means "not traced" and propagates as absence.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether sc names a real span.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

// PhaseSegment attributes part of a span's self-time to one of the typed
// phases of the demand pipeline (see the Phase* constants). Durations are
// measured on the owning runtime's clock, so virtual-clock runs attribute
// deterministically.
type PhaseSegment struct {
	Phase string
	NS    int64
}

// The phase taxonomy: every nanosecond a critical path attributes falls
// into one of these buckets (or stays "unattributed" — span time no
// instrumentation point claimed).
const (
	// PhaseQueue is time an inbound frame waited before dispatch.
	PhaseQueue = "queue"
	// PhaseNet is time an outbound call spent waiting for the reply.
	PhaseNet = "net"
	// PhaseServe is handler execution on the serving site.
	PhaseServe = "serve"
	// PhaseAssemble is payload assembly (graph traversal + capture).
	PhaseAssemble = "assemble"
	// PhaseApply is update application at the master (restore + journal).
	PhaseApply = "apply"
	// PhaseFsyncWait is time queued behind another caller's group commit.
	PhaseFsyncWait = "fsync.wait"
	// PhaseFsync is the WAL's own fsync system call.
	PhaseFsync = "fsync"
	// PhaseElectWait is time stalled on leader election/failover rotation.
	PhaseElectWait = "elect.wait"
	// PhaseRetryBackoff is time slept between RMI retry attempts.
	PhaseRetryBackoff = "retry.backoff"
	// PhaseSubmitWait is Submit-to-apply wait in the consensus log.
	PhaseSubmitWait = "submit.wait"
	// PhaseUnattributed labels the critical-path remainder no segment
	// claimed. Never recorded on spans; produced by attribution only.
	PhaseUnattributed = "unattributed"
)

// SpanRecord is one finished span, as exported over the admin service.
// Times are nanoseconds on the owning site's (possibly injected) clock;
// they order spans within a site but are not comparable across sites.
type SpanRecord struct {
	TraceID uint64
	SpanID  uint64
	// Parent is the causing span's id (possibly on another site), 0 for
	// trace roots.
	Parent uint64
	// Site is the name of the site that recorded the span.
	Site string
	// Name is the operation: "fault", "rmi:Get", "serve:Get", "assemble",
	// "materialize", "put.apply", ...
	Name    string
	StartNS int64
	EndNS   int64
	// Attrs are "key=value" annotations in append order (retry attempts,
	// object ids, payload sizes).
	Attrs []string
	// Phases attribute portions of the span's self-time to typed pipeline
	// phases, in first-recorded order (repeats accumulate in place).
	Phases []PhaseSegment
	// Err is the operation's error text, empty on success.
	Err string
}

func (r SpanRecord) String() string {
	d := time.Duration(r.EndNS - r.StartNS)
	s := fmt.Sprintf("%s %s trace=%x span=%x parent=%x %v", r.Site, r.Name, r.TraceID, r.SpanID, r.Parent, d)
	for _, a := range r.Attrs {
		s += " " + a
	}
	if r.Err != "" {
		s += " err=" + r.Err
	}
	return s
}

func init() {
	codec.MustRegister("obiwan.telemetry.PhaseSegment", PhaseSegment{})
	codec.MustRegister("obiwan.telemetry.SpanRecord", SpanRecord{})
	codec.MustRegister("obiwan.telemetry.TraceDump", TraceDump{})
}

// TraceDump wraps exported spans for RMI transport.
type TraceDump struct {
	Site  string
	Spans []SpanRecord
}

// Span is an in-progress operation. A nil *Span is the disabled fast
// path: every method is a nil-receiver no-op, so instrumented code never
// branches on whether telemetry is on.
type Span struct {
	tr  *Tracer
	rec SpanRecord
}

// Context returns the span's propagation context (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.rec.TraceID, SpanID: s.rec.SpanID}
}

// Annotate appends a "key=value" attribute.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, key+"="+value)
}

// Phase attributes d of the span's self-time to the named phase.
// Repeated calls with the same name accumulate into one segment.
// Negative durations are ignored; nil spans no-op.
func (s *Span) Phase(name string, d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	for i := range s.rec.Phases {
		if s.rec.Phases[i].Phase == name {
			s.rec.Phases[i].NS += int64(d)
			return
		}
	}
	s.rec.Phases = append(s.rec.Phases, PhaseSegment{Phase: name, NS: int64(d)})
}

// SetErr records err's text on the span (nil clears nothing, it no-ops).
func (s *Span) SetErr(err error) {
	if s == nil || err == nil {
		return
	}
	s.rec.Err = err.Error()
}

// End finishes the span and commits it to the tracer's ring. End is
// idempotent in effect only through discipline: call it exactly once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.EndNS = s.tr.clock().UnixNano()
	s.tr.commit(s.rec)
}

// defaultSpanCapacity bounds the finished-span ring.
const defaultSpanCapacity = 4096

// Tracer mints and records spans for one site. Safe for concurrent use.
type Tracer struct {
	site   string
	idBase uint64
	clock  func() time.Time

	mu      sync.Mutex
	seq     uint64
	ring    []SpanRecord
	next    int
	total   uint64 // spans ever committed
	dropped uint64 // spans evicted from the ring
}

// newTracer builds a tracer whose span ids are salted with the site name:
// id = fnv32(site)<<32 | seq. Two sites in one deployment mint from
// disjoint spaces, and a rerun of a deterministic scenario mints the same
// ids in the same order.
func newTracer(site string, clock func() time.Time, capacity int) *Tracer {
	if clock == nil {
		clock = time.Now
	}
	if capacity <= 0 {
		capacity = defaultSpanCapacity
	}
	return &Tracer{
		site:   site,
		idBase: uint64(fnv32(site)) << 32,
		clock:  clock,
		ring:   make([]SpanRecord, 0, capacity),
	}
}

// nextID mints the next span id.
func (t *Tracer) nextID() uint64 {
	t.mu.Lock()
	t.seq++
	id := t.idBase | (t.seq & 0xffffffff)
	t.mu.Unlock()
	return id
}

// start begins a span. An invalid parent starts a new trace rooted at
// this span (its trace id is its span id).
func (t *Tracer) start(parent SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	id := t.nextID()
	rec := SpanRecord{
		SpanID:  id,
		Site:    t.site,
		Name:    name,
		StartNS: t.clock().UnixNano(),
	}
	if parent.Valid() {
		rec.TraceID = parent.TraceID
		rec.Parent = parent.SpanID
	} else {
		rec.TraceID = id
	}
	return &Span{tr: t, rec: rec}
}

// commit stores a finished span in the ring, evicting the oldest when
// full.
func (t *Tracer) commit(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
		return
	}
	t.ring[t.next] = rec
	t.next = (t.next + 1) % len(t.ring)
	t.dropped++
}

// Snapshot returns up to max finished spans, oldest first (all of them
// when max <= 0).
func (t *Tracer) Snapshot(max int) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	t.mu.Unlock()
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// SnapshotSince returns up to max finished spans (all when max <= 0)
// committed at or after cursor, oldest first. The cursor counts spans
// ever committed: 0 starts from the oldest retained span, and the
// returned next value resumes exactly where this call stopped, so a
// poller sees every retained span exactly once — across disconnects too,
// since the cursor lives at the client. missed counts requested spans
// that were already evicted from the ring (the poller fell behind).
func (t *Tracer) SnapshotSince(cursor uint64, max int) (spans []SpanRecord, next uint64, missed uint64) {
	if t == nil {
		return nil, cursor, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	oldest := t.total - uint64(len(t.ring))
	if cursor > t.total {
		cursor = t.total
	}
	if cursor < oldest {
		missed = oldest - cursor
		cursor = oldest
	}
	n := t.total - cursor
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	spans = make([]SpanRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		pos := int(cursor + i - oldest)
		if len(t.ring) == cap(t.ring) {
			pos = (t.next + pos) % len(t.ring)
		}
		spans = append(spans, t.ring[pos])
	}
	return spans, cursor + n, missed
}

// Dropped returns how many finished spans were evicted from the ring.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// fnv32 is FNV-1a, the same salt the heap uses for site ids.
func fnv32(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	if h == 0 {
		h = 1
	}
	return h
}

// TraceNode is one span plus its causal children — the tree form of a
// trace collected from every involved site.
type TraceNode struct {
	Span     SpanRecord
	Children []*TraceNode
}

// BuildTrees links spans (possibly from several sites) into rooted trees
// by (TraceID, Parent). Spans whose parent is missing (evicted, or held
// by a site that was not collected) become roots of their own partial
// trees. Output order is deterministic: trees sorted by (TraceID, root
// SpanID), children by SpanID.
//
// The input may be adversarial: span ids are deterministic per site
// NAME, so two live sites deployed under the same name (say, two TCP
// sites listening on ":0") mint colliding ids, and stitching their dumps
// together can produce duplicate ids and parent cycles. BuildTrees keeps
// the first record for a duplicated id and breaks any link that would
// close a cycle (the child becomes a partial root) — it never loops.
func BuildTrees(spans []SpanRecord) []*TraceNode {
	nodes := make(map[uint64]*TraceNode, len(spans))
	order := make([]uint64, 0, len(spans))
	for _, sp := range spans {
		if _, dup := nodes[sp.SpanID]; dup {
			continue
		}
		nodes[sp.SpanID] = &TraceNode{Span: sp}
		order = append(order, sp.SpanID)
	}
	parent := make(map[uint64]uint64, len(nodes))
	var roots []*TraceNode
	for _, id := range order {
		n := nodes[id]
		sp := n.Span
		p, ok := nodes[sp.Parent]
		if !ok || sp.Parent == sp.SpanID || linkWouldCycle(parent, sp.Parent, sp.SpanID) {
			roots = append(roots, n)
			continue
		}
		p.Children = append(p.Children, n)
		parent[sp.SpanID] = sp.Parent
	}
	var sortKids func(n *TraceNode)
	sortKids = func(n *TraceNode) {
		sort.Slice(n.Children, func(i, j int) bool {
			return n.Children[i].Span.SpanID < n.Children[j].Span.SpanID
		})
		for _, c := range n.Children {
			sortKids(c)
		}
	}
	for _, r := range roots {
		sortKids(r)
	}
	sort.Slice(roots, func(i, j int) bool {
		a, b := roots[i].Span, roots[j].Span
		if a.TraceID != b.TraceID {
			return a.TraceID < b.TraceID
		}
		return a.SpanID < b.SpanID
	})
	return roots
}

// linkWouldCycle reports whether setting child's parent to p would close
// a loop — i.e. whether child is already an ancestor of p. The parent
// map only ever holds acyclic links (every link is vetted here first),
// so the ancestor walk terminates.
func linkWouldCycle(parent map[uint64]uint64, p, child uint64) bool {
	for {
		if p == child {
			return true
		}
		next, ok := parent[p]
		if !ok {
			return false
		}
		p = next
	}
}

// Walk visits the tree depth-first, reporting each span with its depth.
func (n *TraceNode) Walk(fn func(depth int, sp SpanRecord)) {
	var rec func(d int, n *TraceNode)
	rec = func(d int, n *TraceNode) {
		fn(d, n.Span)
		for _, c := range n.Children {
			rec(d+1, c)
		}
	}
	rec(0, n)
}

// FormatTree renders a tree as an indented listing.
func FormatTree(root *TraceNode) string {
	var out string
	root.Walk(func(depth int, sp SpanRecord) {
		for i := 0; i < depth; i++ {
			out += "  "
		}
		out += sp.String() + "\n"
	})
	return out
}
