package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"obiwan/internal/codec"
	"obiwan/internal/stats"
)

// ObjectProfile is the per-OID replication profile: how often an object
// faulted here, how much a demand for it cost, and how invocations
// through references to it split between LMI and RMI. It is the
// measurable form of the paper's run-time mode decision — the numbers
// the Advisor's cost model wants instead of a bare call counter.
type ObjectProfile struct {
	OID uint64

	// Client side: faults raised at this site for the object.
	Faults uint64
	// HeapHits counts faults answered from the local heap — the object
	// had already arrived in someone else's batch or cluster, so the
	// demand cost nothing. HeapHits/Faults is the batch/cluster hit rate.
	HeapHits uint64
	// RemoteDemands counts fetches that crossed the wire (initial demands
	// plus refreshes).
	RemoteDemands uint64
	// ClusterDemands counts remote demands answered with a clustered
	// payload.
	ClusterDemands uint64
	// DemandObjects totals the objects materialized across the remote
	// demands — the demand depth (DemandObjects/RemoteDemands is the
	// average incremental batch actually shipped).
	DemandObjects uint64
	// DemandBytes totals the payload state bytes across remote demands.
	DemandBytes uint64
	// FaultNS totals the wall time of remote demands, so
	// FaultNS/RemoteDemands is the observed replica fault cost.
	FaultNS int64

	// Invocations through refs naming this object, split by mechanism.
	LMICalls uint64
	RMICalls uint64

	// Provider side: demands this site served for the object.
	Serves       uint64
	ServeObjects uint64
	ServeBytes   uint64

	// Update traffic.
	PutsShipped uint64
	PutsApplied uint64
}

// Heat is the eviction and ranking key: total protocol activity.
func (p ObjectProfile) Heat() uint64 {
	return p.Faults + p.RemoteDemands + p.LMICalls + p.RMICalls +
		p.Serves + p.PutsShipped + p.PutsApplied
}

// AvgFaultNS is the observed cost of one remote demand (0 if none).
func (p ObjectProfile) AvgFaultNS() int64 {
	if p.RemoteDemands == 0 {
		return 0
	}
	return p.FaultNS / int64(p.RemoteDemands)
}

// BytesPerDemand is the average payload size of one remote demand.
func (p ObjectProfile) BytesPerDemand() uint64 {
	if p.RemoteDemands == 0 {
		return 0
	}
	return p.DemandBytes / p.RemoteDemands
}

// HeapHitRate is the fraction of faults the local heap absorbed — how
// well batch/cluster prefetching worked for this object.
func (p ObjectProfile) HeapHitRate() float64 {
	if p.Faults == 0 {
		return 0
	}
	return float64(p.HeapHits) / float64(p.Faults)
}

// ProfileSnapshot is the exported top-K view of a site's profiler.
type ProfileSnapshot struct {
	Site      string
	TakenAtNS int64
	// Tracked is how many objects the profiler currently holds; Evicted
	// how many cold profiles were discarded to stay bounded.
	Tracked uint64
	Evicted uint64
	// Objects are the hottest profiles, heat-descending (OID ascending on
	// ties, so snapshots are deterministic).
	Objects []ObjectProfile
}

func init() {
	codec.MustRegister("obiwan.telemetry.ObjectProfile", ObjectProfile{})
	codec.MustRegister("obiwan.telemetry.ProfileSnapshot", ProfileSnapshot{})
}

// Get returns the profile for oid, if the snapshot holds one.
func (s *ProfileSnapshot) Get(oid uint64) (ObjectProfile, bool) {
	for _, p := range s.Objects {
		if p.OID == oid {
			return p, true
		}
	}
	return ObjectProfile{}, false
}

// Format renders the snapshot as an aligned hot-object table (the
// obiwan-admin top output).
func (s *ProfileSnapshot) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hot objects at site %q (%d tracked, %d evicted)\n\n", s.Site, s.Tracked, s.Evicted)
	if len(s.Objects) == 0 {
		b.WriteString("(no profiled objects)\n")
		return b.String()
	}
	t := stats.NewTable("oid", "heat", "faults", "hit%", "demands", "objs", "bytes", "avg_fault", "lmi", "rmi", "serves")
	for _, p := range s.Objects {
		t.AddRow(
			fmt.Sprintf("%#x", p.OID), p.Heat(), p.Faults,
			fmt.Sprintf("%.0f", 100*p.HeapHitRate()),
			p.RemoteDemands, p.DemandObjects, p.DemandBytes,
			time.Duration(p.AvgFaultNS()).Round(time.Microsecond),
			p.LMICalls, p.RMICalls, p.Serves,
		)
	}
	_, _ = t.WriteTo(&b)
	return b.String()
}

// defaultProfileCapacity bounds the number of tracked objects.
const defaultProfileCapacity = 256

// Profiler aggregates per-OID replication behaviour into bounded top-K
// hot-object profiles. A nil *Profiler (telemetry disabled) no-ops on
// every method, matching the Hub's nil-receiver fast path. Safe for
// concurrent use.
type Profiler struct {
	mu       sync.Mutex
	capacity int
	objects  map[uint64]*ObjectProfile
	evicted  uint64

	// Site-wide demand cost, survives per-object eviction: the Advisor's
	// fallback estimate for objects never fetched here before.
	totFaultNS int64
	totDemands uint64
}

// NewProfiler builds a profiler tracking at most capacity objects
// (default 256 when capacity <= 0).
func NewProfiler(capacity int) *Profiler {
	if capacity <= 0 {
		capacity = defaultProfileCapacity
	}
	return &Profiler{
		capacity: capacity,
		objects:  make(map[uint64]*ObjectProfile, capacity),
	}
}

// get returns (creating, evicting as needed) the profile for oid.
// Callers hold p.mu.
func (p *Profiler) get(oid uint64) *ObjectProfile {
	if o, ok := p.objects[oid]; ok {
		return o
	}
	if len(p.objects) >= p.capacity {
		// Evict the coldest tracked object (lowest heat; highest OID on
		// ties, so the keep-set is deterministic).
		var coldOID uint64
		coldHeat := ^uint64(0)
		for id, o := range p.objects {
			h := o.Heat()
			if h < coldHeat || (h == coldHeat && id > coldOID) {
				coldOID, coldHeat = id, h
			}
		}
		delete(p.objects, coldOID)
		p.evicted++
	}
	o := &ObjectProfile{OID: oid}
	p.objects[oid] = o
	return o
}

// RecordFault records one resolved object fault: fromHeap marks faults
// absorbed by the local heap; for remote demands, objects/bytes size the
// payload and elapsed is the demand's wall time.
func (p *Profiler) RecordFault(oid uint64, fromHeap, clustered bool, objects, bytes int, elapsed time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	o := p.get(oid)
	o.Faults++
	if fromHeap {
		o.HeapHits++
	} else {
		o.RemoteDemands++
		if clustered {
			o.ClusterDemands++
		}
		o.DemandObjects += uint64(objects)
		o.DemandBytes += uint64(bytes)
		o.FaultNS += int64(elapsed)
		p.totFaultNS += int64(elapsed)
		p.totDemands++
	}
	p.mu.Unlock()
}

// RecordRefresh records one replica refresh — a remote demand without a
// fault (the replica was already here and re-fetched its state).
func (p *Profiler) RecordRefresh(oid uint64, clustered bool, objects, bytes int, elapsed time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	o := p.get(oid)
	o.RemoteDemands++
	if clustered {
		o.ClusterDemands++
	}
	o.DemandObjects += uint64(objects)
	o.DemandBytes += uint64(bytes)
	o.FaultNS += int64(elapsed)
	p.totFaultNS += int64(elapsed)
	p.totDemands++
	p.mu.Unlock()
}

// RecordServe records one demand this site answered as provider.
func (p *Profiler) RecordServe(oid uint64, objects, bytes int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	o := p.get(oid)
	o.Serves++
	o.ServeObjects += uint64(objects)
	o.ServeBytes += uint64(bytes)
	p.mu.Unlock()
}

// RecordInvoke records one invocation through a ref naming oid: LMI when
// it ran on a local copy, RMI when it was master-directed.
func (p *Profiler) RecordInvoke(oid uint64, remote bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	o := p.get(oid)
	if remote {
		o.RMICalls++
	} else {
		o.LMICalls++
	}
	p.mu.Unlock()
}

// RecordPutShipped records one update shipped to oid's master.
func (p *Profiler) RecordPutShipped(oid uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.get(oid).PutsShipped++
	p.mu.Unlock()
}

// RecordPutApplied records one update applied at this site as master.
func (p *Profiler) RecordPutApplied(oid uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.get(oid).PutsApplied++
	p.mu.Unlock()
}

// FaultCost returns the observed cost of one remote demand for oid: the
// object's own average when this site has fetched it before, otherwise
// the site-wide average demand cost. ok is false (and the Advisor falls
// back to its static heuristic) when nothing was ever measured — or when
// the profiler is nil.
func (p *Profiler) FaultCost(oid uint64) (cost time.Duration, ok bool) {
	if p == nil {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if o, have := p.objects[oid]; have && o.RemoteDemands > 0 {
		return time.Duration(o.FaultNS / int64(o.RemoteDemands)), true
	}
	if p.totDemands > 0 {
		return time.Duration(p.totFaultNS / int64(p.totDemands)), true
	}
	return 0, false
}

// Len returns how many objects are currently tracked.
func (p *Profiler) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.objects)
}

// Snapshot exports the topK hottest profiles (all tracked when topK <= 0),
// heat-descending, OID-ascending on equal heat.
func (p *Profiler) Snapshot(site string, nowNS int64, topK int) *ProfileSnapshot {
	out := &ProfileSnapshot{Site: site, TakenAtNS: nowNS}
	if p == nil {
		return out
	}
	p.mu.Lock()
	out.Tracked = uint64(len(p.objects))
	out.Evicted = p.evicted
	out.Objects = make([]ObjectProfile, 0, len(p.objects))
	for _, o := range p.objects {
		out.Objects = append(out.Objects, *o)
	}
	p.mu.Unlock()
	sort.Slice(out.Objects, func(i, j int) bool {
		hi, hj := out.Objects[i].Heat(), out.Objects[j].Heat()
		if hi != hj {
			return hi > hj
		}
		return out.Objects[i].OID < out.Objects[j].OID
	})
	if topK > 0 && len(out.Objects) > topK {
		out.Objects = out.Objects[:topK]
	}
	return out
}
