package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestNilProfilerAndFlightAreFree(t *testing.T) {
	var p *Profiler
	p.RecordFault(1, false, false, 2, 64, time.Millisecond)
	p.RecordRefresh(1, false, 1, 32, time.Millisecond)
	p.RecordServe(1, 1, 32)
	p.RecordInvoke(1, true)
	p.RecordPutShipped(1)
	p.RecordPutApplied(1)
	if _, ok := p.FaultCost(1); ok {
		t.Fatal("nil profiler has a fault cost")
	}
	if p.Len() != 0 {
		t.Fatal("nil profiler tracks objects")
	}
	if snap := p.Snapshot("x", 0, 10); len(snap.Objects) != 0 {
		t.Fatalf("nil profiler snapshot: %+v", snap)
	}

	var f *FlightRecorder
	f.Record(FlightEvent{Kind: "x"})
	if f.Snapshot() != nil || f.Total() != 0 {
		t.Fatal("nil recorder holds events")
	}
	if d := f.Dump("r"); d != nil {
		t.Fatalf("nil recorder dumped: %+v", d)
	}
	if d := f.Current("r"); d == nil || len(d.Events) != 0 {
		t.Fatalf("nil recorder current: %+v", d)
	}
	if _, ok := f.LastDump(); ok {
		t.Fatal("nil recorder has a dump")
	}
}

func TestProfilerAggregatesPerObject(t *testing.T) {
	p := NewProfiler(0)
	// Object 7: one remote demand (3 objects, 300 bytes, 2ms), then a
	// heap-served fault, then mixed invocations and puts.
	p.RecordFault(7, false, true, 3, 300, 2*time.Millisecond)
	p.RecordFault(7, true, false, 0, 0, 0)
	p.RecordInvoke(7, false)
	p.RecordInvoke(7, false)
	p.RecordInvoke(7, true)
	p.RecordPutShipped(7)
	p.RecordServe(9, 2, 128)

	snap := p.Snapshot("site", 42, 0)
	if snap.Site != "site" || snap.TakenAtNS != 42 || snap.Tracked != 2 {
		t.Fatalf("snapshot header: %+v", snap)
	}
	o, ok := snap.Get(7)
	if !ok {
		t.Fatal("object 7 untracked")
	}
	if o.Faults != 2 || o.HeapHits != 1 || o.RemoteDemands != 1 || o.ClusterDemands != 1 {
		t.Fatalf("fault counts: %+v", o)
	}
	if o.DemandObjects != 3 || o.DemandBytes != 300 {
		t.Fatalf("demand sizes: %+v", o)
	}
	if o.LMICalls != 2 || o.RMICalls != 1 || o.PutsShipped != 1 {
		t.Fatalf("invoke counts: %+v", o)
	}
	if got := o.HeapHitRate(); got != 0.5 {
		t.Fatalf("hit rate: %v", got)
	}
	if got := o.AvgFaultNS(); got != int64(2*time.Millisecond) {
		t.Fatalf("avg fault: %v", got)
	}
	if got := o.BytesPerDemand(); got != 300 {
		t.Fatalf("bytes/demand: %v", got)
	}
	if o9, _ := snap.Get(9); o9.Serves != 1 || o9.ServeBytes != 128 {
		t.Fatalf("serve side: %+v", o9)
	}
	if !strings.Contains(snap.Format(), "0x7") {
		t.Fatalf("format: %s", snap.Format())
	}
}

func TestProfilerTopKOrderAndEviction(t *testing.T) {
	p := NewProfiler(3)
	// Heat: oid 1 → 1, oid 2 → 2, oid 3 → 3.
	for oid := uint64(1); oid <= 3; oid++ {
		for i := uint64(0); i < oid; i++ {
			p.RecordInvoke(oid, false)
		}
	}
	// A fourth object evicts the coldest (oid 1).
	p.RecordInvoke(4, false)
	p.RecordInvoke(4, false)
	p.RecordInvoke(4, false)
	p.RecordInvoke(4, false)

	snap := p.Snapshot("s", 0, 2)
	if snap.Tracked != 3 || snap.Evicted != 1 {
		t.Fatalf("bookkeeping: tracked=%d evicted=%d", snap.Tracked, snap.Evicted)
	}
	if len(snap.Objects) != 2 || snap.Objects[0].OID != 4 || snap.Objects[1].OID != 3 {
		t.Fatalf("topK order: %+v", snap.Objects)
	}
	if _, ok := snap.Get(1); ok {
		t.Fatal("evicted object still tracked")
	}
}

func TestProfilerFaultCostFallsBackToSiteAverage(t *testing.T) {
	p := NewProfiler(0)
	if _, ok := p.FaultCost(5); ok {
		t.Fatal("cost before any demand")
	}
	p.RecordFault(5, false, false, 1, 100, 10*time.Millisecond)
	if cost, ok := p.FaultCost(5); !ok || cost != 10*time.Millisecond {
		t.Fatalf("per-object cost: %v %v", cost, ok)
	}
	// An object never demanded here borrows the site-wide average.
	if cost, ok := p.FaultCost(999); !ok || cost != 10*time.Millisecond {
		t.Fatalf("site-wide cost: %v %v", cost, ok)
	}
	// Heap hits do not skew the average.
	p.RecordFault(5, true, false, 0, 0, 0)
	if cost, _ := p.FaultCost(5); cost != 10*time.Millisecond {
		t.Fatalf("heap hit skewed cost: %v", cost)
	}
}

func TestFlightRecorderRingAndDumps(t *testing.T) {
	f := newFlightRecorder("s", fakeClock(), 4)
	for i := 0; i < 6; i++ {
		f.Record(FlightEvent{Kind: "k", OID: uint64(i)})
	}
	events := f.Snapshot()
	if len(events) != 4 || events[0].OID != 2 || events[3].OID != 5 {
		t.Fatalf("ring contents: %+v", events)
	}
	if events[0].Seq != 2 || events[3].Seq != 5 {
		t.Fatalf("seq stamping: %+v", events)
	}
	if f.Total() != 6 {
		t.Fatalf("total: %d", f.Total())
	}

	d := f.Dump("first")
	if d.Seq != 1 || d.Total != 6 || d.Dropped != 2 || len(d.Events) != 4 {
		t.Fatalf("dump: %+v", d)
	}
	if last, ok := f.LastDump(); !ok || last.Reason != "first" {
		t.Fatalf("last dump: %+v ok=%v", last, ok)
	}
	// Only the last few dumps are retained.
	for i := 0; i < 6; i++ {
		f.Dump("later")
	}
	if dumps := f.Dumps(); len(dumps) != 4 || dumps[0].Seq != 4 {
		t.Fatalf("dump retention: %d dumps, first seq %d", len(dumps), dumps[0].Seq)
	}
}

func TestFlightDumpContainsAndFormat(t *testing.T) {
	f := newFlightRecorder("s", fakeClock(), 0)
	f.Record(FlightEvent{Kind: "rmi.retry", SpanID: 0xbeef, Detail: "attempt=2"})
	f.Record(FlightEvent{Kind: "repl.unavailable", OID: 9, Err: "boom"})
	d := f.Current("live")
	if !d.Contains(0xbeef) || d.Contains(0xdead) {
		t.Fatalf("contains: %+v", d)
	}
	out := d.Format()
	for _, want := range []string{"rmi.retry", "attempt=2", "err=boom", "reason: live"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestTracerSnapshotSinceCursor(t *testing.T) {
	h := NewHub("s", WithClock(fakeClock()), WithSpanCapacity(4))
	finish := func(name string) {
		h.StartRoot(name).End()
	}
	finish("a")
	finish("b")

	spans, next, missed := h.SpansSince(0, 10)
	if len(spans) != 2 || next != 2 || missed != 0 {
		t.Fatalf("first poll: %d spans next=%d missed=%d", len(spans), next, missed)
	}
	if spans[0].Name != "a" || spans[1].Name != "b" {
		t.Fatalf("order: %+v", spans)
	}

	// No new spans: empty delta, cursor unchanged.
	if spans, next, _ = h.SpansSince(next, 10); len(spans) != 0 || next != 2 {
		t.Fatalf("idle poll: %d spans next=%d", len(spans), next)
	}

	// max bounds a delta; the cursor resumes mid-stream.
	finish("c")
	finish("d")
	finish("e")
	spans, next, _ = h.SpansSince(2, 2)
	if len(spans) != 2 || spans[0].Name != "c" || spans[1].Name != "d" || next != 4 {
		t.Fatalf("bounded poll: %+v next=%d", spans, next)
	}
	spans, next, _ = h.SpansSince(next, 2)
	if len(spans) != 1 || spans[0].Name != "e" || next != 5 {
		t.Fatalf("resume poll: %+v next=%d", spans, next)
	}

	// A cursor behind the ring reports eviction and clamps forward.
	for i := 0; i < 6; i++ {
		finish("burst")
	}
	spans, next, missed = h.SpansSince(5, 100)
	if missed != 2 || len(spans) != 4 || next != 11 {
		t.Fatalf("evicted poll: %d spans next=%d missed=%d", len(spans), next, missed)
	}
}

func TestRuntimeSamplerPublishesGauges(t *testing.T) {
	h := NewHub("s")
	stop := h.StartRuntimeSampler(time.Hour) // immediate sample, then idle
	defer stop()
	snap := h.MetricsSnapshot()
	found := map[string]bool{}
	for _, g := range snap.Gauges {
		found[g.Name] = true
	}
	for _, want := range []string{"go.goroutines", "go.heap.alloc_bytes", "go.gc.cycles"} {
		if !found[want] {
			t.Fatalf("missing gauge %q in %+v", want, snap.Gauges)
		}
	}
	stop()
	stop() // idempotent

	var nilHub *Hub
	nilStop := nilHub.StartRuntimeSampler(time.Millisecond)
	nilStop()
}
