package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"obiwan/internal/codec"
)

// FlightEvent is one entry in a site's flight recorder: a recent
// protocol, WAL, or retry event kept for post-mortem context. Events are
// cheap, flat records — no pointers into live state — so a dump is safe
// to ship over RMI.
type FlightEvent struct {
	// Seq is the event's position in the recorder's total order (0-based,
	// never reused; survives ring eviction).
	Seq  uint64
	AtNS int64
	// Kind names the event source and step: "repl.fault-resolved",
	// "rmi.retry", "repl.unavailable", "site.recovery", "wal.compact", ...
	Kind string
	// OID is the subject object, when the event concerns one.
	OID uint64
	// TraceID/SpanID tie the event to the causal trace of the operation
	// that produced it (0 when untraced).
	TraceID uint64
	SpanID  uint64
	// Detail is a short free-form annotation.
	Detail string
	// Err is the error text for failure events.
	Err string
}

func (e FlightEvent) String() string {
	s := fmt.Sprintf("[%d] %s", e.Seq, e.Kind)
	if e.OID != 0 {
		s += fmt.Sprintf(" oid=%#x", e.OID)
	}
	if e.SpanID != 0 {
		s += fmt.Sprintf(" trace=%x span=%x", e.TraceID, e.SpanID)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	if e.Err != "" {
		s += " err=" + e.Err
	}
	return s
}

// FlightDump is a snapshot of the recorder taken at a moment of interest
// — an ErrUnavailable exhaustion, a crash recovery, or an explicit fetch.
type FlightDump struct {
	Site   string
	Reason string
	// Seq numbers stored dumps per site (1-based); 0 marks a live,
	// unstored snapshot.
	Seq       uint64
	TakenAtNS int64
	// Total counts events ever recorded; Dropped those evicted before
	// this dump was taken.
	Total   uint64
	Dropped uint64
	// Events are the ring's contents, oldest first.
	Events []FlightEvent
}

func init() {
	codec.MustRegister("obiwan.telemetry.FlightEvent", FlightEvent{})
	codec.MustRegister("obiwan.telemetry.FlightDump", FlightDump{})
}

// Format renders the dump as the obiwan-admin flight listing.
func (d *FlightDump) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder dump for site %q\n", d.Site)
	fmt.Fprintf(&b, "reason: %s\n", d.Reason)
	fmt.Fprintf(&b, "taken_at: %s  events: %d/%d recorded (%d dropped)\n\n",
		time.Unix(0, d.TakenAtNS).UTC().Format(time.RFC3339Nano), len(d.Events), d.Total, d.Dropped)
	if len(d.Events) == 0 {
		b.WriteString("(empty)\n")
		return b.String()
	}
	base := d.Events[0].AtNS
	for _, e := range d.Events {
		fmt.Fprintf(&b, "  +%-12s %s\n", time.Duration(e.AtNS-base).Round(time.Microsecond), e)
	}
	return b.String()
}

// Contains reports whether any event in the dump carries the given span
// id — how tests (and operators) tie a dump to a failed call.
func (d *FlightDump) Contains(spanID uint64) bool {
	for _, e := range d.Events {
		if e.SpanID == spanID {
			return true
		}
	}
	return false
}

// defaultFlightCapacity bounds the event ring.
const defaultFlightCapacity = 512

// flightDumpKeep bounds how many dumps the recorder retains.
const flightDumpKeep = 4

// FlightRecorder keeps a bounded ring of recent events plus the last few
// dumps taken from it. A nil *FlightRecorder no-ops on every method,
// matching the telemetry fast-path contract. Safe for concurrent use.
type FlightRecorder struct {
	site  string
	clock func() time.Time

	mu      sync.Mutex
	ring    []FlightEvent
	next    int
	total   uint64
	dropped uint64
	dumpSeq uint64
	dumps   []*FlightDump
}

// newFlightRecorder builds a recorder with the given ring capacity
// (default 512 when capacity <= 0).
func newFlightRecorder(site string, clock func() time.Time, capacity int) *FlightRecorder {
	if clock == nil {
		clock = time.Now
	}
	if capacity <= 0 {
		capacity = defaultFlightCapacity
	}
	return &FlightRecorder{site: site, clock: clock, ring: make([]FlightEvent, 0, capacity)}
}

// Record appends ev to the ring, evicting the oldest event when full.
// The recorder stamps Seq and, if unset, AtNS.
func (f *FlightRecorder) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	if ev.AtNS == 0 {
		ev.AtNS = f.clock().UnixNano()
	}
	f.mu.Lock()
	ev.Seq = f.total
	f.total++
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, ev)
	} else {
		f.ring[f.next] = ev
		f.next = (f.next + 1) % len(f.ring)
		f.dropped++
	}
	f.mu.Unlock()
}

// snapshotLocked copies the ring oldest-first. Callers hold f.mu.
func (f *FlightRecorder) snapshotLocked() []FlightEvent {
	out := make([]FlightEvent, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out
}

// Snapshot returns the ring's current contents, oldest first.
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snapshotLocked()
}

// Dump snapshots the ring into a stored dump (retaining the last few) and
// returns it — the automatic path on ErrUnavailable exhaustion and crash
// recovery. Nil-safe.
func (f *FlightRecorder) Dump(reason string) *FlightDump {
	if f == nil {
		return nil
	}
	now := f.clock().UnixNano()
	f.mu.Lock()
	f.dumpSeq++
	d := &FlightDump{
		Site: f.site, Reason: reason, Seq: f.dumpSeq, TakenAtNS: now,
		Total: f.total, Dropped: f.dropped, Events: f.snapshotLocked(),
	}
	f.dumps = append(f.dumps, d)
	if len(f.dumps) > flightDumpKeep {
		f.dumps = append(f.dumps[:0], f.dumps[len(f.dumps)-flightDumpKeep:]...)
	}
	f.mu.Unlock()
	return d
}

// Current builds an unstored snapshot dump (Seq 0) — what the admin
// Flight endpoint serves when nothing has been dumped yet.
func (f *FlightRecorder) Current(reason string) *FlightDump {
	if f == nil {
		return &FlightDump{Reason: reason}
	}
	now := f.clock().UnixNano()
	f.mu.Lock()
	defer f.mu.Unlock()
	return &FlightDump{
		Site: f.site, Reason: reason, TakenAtNS: now,
		Total: f.total, Dropped: f.dropped, Events: f.snapshotLocked(),
	}
}

// LastDump returns the most recent stored dump, if any.
func (f *FlightRecorder) LastDump() (*FlightDump, bool) {
	if f == nil {
		return nil, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.dumps) == 0 {
		return nil, false
	}
	return f.dumps[len(f.dumps)-1], true
}

// Dumps returns every retained dump, oldest first.
func (f *FlightRecorder) Dumps() []*FlightDump {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*FlightDump(nil), f.dumps...)
}

// Total returns how many events were ever recorded.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}
