package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// SampleRuntime takes one reading of the Go runtime — goroutine count,
// heap occupancy, GC activity — into the metrics registry as go.* gauges.
// Nil-safe; a disabled hub samples nothing.
func (h *Hub) SampleRuntime() {
	if h == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m := h.metrics
	m.Gauge("go.goroutines").Set(int64(runtime.NumGoroutine()))
	m.Gauge("go.heap.alloc_bytes").Set(int64(ms.HeapAlloc))
	m.Gauge("go.heap.objects").Set(int64(ms.HeapObjects))
	m.Gauge("go.heap.sys_bytes").Set(int64(ms.HeapSys))
	m.Gauge("go.gc.cycles").Set(int64(ms.NumGC))
	m.Gauge("go.gc.pause_total_ns").Set(int64(ms.PauseTotalNs))
}

// StartRuntimeSampler samples the Go runtime immediately and then every
// interval (default 10s when interval <= 0) until the returned stop
// function is called. Stop is idempotent. A disabled hub starts nothing
// and returns a no-op stop.
func (h *Hub) StartRuntimeSampler(interval time.Duration) (stop func()) {
	if h == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	h.SampleRuntime()
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.SampleRuntime()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
