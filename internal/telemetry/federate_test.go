package telemetry

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// randomSnapshot builds a metrics snapshot through a real registry, so
// histograms carry internally consistent shard/bucket state (the same
// shapes a scraped site produces) rather than arbitrary fuzzed structs.
func randomSnapshot(rng *rand.Rand, site string) *MetricsSnapshot {
	m := NewMetrics()
	names := []string{"rmi.calls", "repl.faults", "site.sync.dirty"}
	for _, n := range names[:1+rng.Intn(len(names))] {
		m.Counter(n).Add(uint64(rng.Intn(1000)))
	}
	m.Gauge("site.stale.replicas").Set(int64(rng.Intn(100)))
	h := m.Histogram("rmi.call.latency_ns")
	for i, n := 0, 1+rng.Intn(64); i < n; i++ {
		h.Observe(rng.Int63n(int64(time.Second)))
	}
	return m.Snapshot(site, rng.Int63n(1e9))
}

// foldMetrics merges the snapshots in the given visit order.
func foldMetrics(snaps []*MetricsSnapshot, order []int) *MetricsSnapshot {
	out := &MetricsSnapshot{}
	for _, i := range order {
		out = out.Merge(snaps[i])
	}
	return out
}

// shuffledOrder derives a permutation of n indices from seed.
func shuffledOrder(n int, seed int64) []int {
	order := rand.New(rand.NewSource(seed)).Perm(n)
	return order
}

// TestMetricsMergeOrderIndependent: folding N site snapshots in any
// order yields identical totals, gauge sums, and histogram
// count/sum/min/max/quantiles — the property the fleet collector's
// aggregate rests on.
func TestMetricsMergeOrderIndependent(t *testing.T) {
	f := func(seed int64, shuffleSeed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		snaps := make([]*MetricsSnapshot, n)
		forward := make([]int, n)
		for i := range snaps {
			snaps[i] = randomSnapshot(rng, "s"+string(rune('a'+i)))
			forward[i] = i
		}
		a := foldMetrics(snaps, forward)
		b := foldMetrics(snaps, shuffledOrder(n, shuffleSeed))
		// Site differs by fold order only when sites disagree anyway (it
		// is then unset in both); everything measured must match exactly.
		a.Site, b.Site = "", ""
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramMergeBounds: merged quantiles stay inside [min, max] and
// the merged count/sum are exact, whichever side is folded first.
func TestHistogramMergeBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSnapshot(rng, "a").GetHistogram("rmi.call.latency_ns")
		b := randomSnapshot(rng, "b").GetHistogram("rmi.call.latency_ns")
		ab, ba := a.Merge(b), b.Merge(a)
		if !reflect.DeepEqual(ab, ba) {
			return false
		}
		if ab.Count != a.Count+b.Count || ab.Sum != a.Sum+b.Sum {
			return false
		}
		for _, q := range []int64{ab.P50, ab.P90, ab.P99} {
			if q < ab.Min || q > ab.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomProfile builds a profiler snapshot with hot objects drawn from a
// shared OID universe, so cross-site merges genuinely collide.
func randomProfile(rng *rand.Rand, site string) *ProfileSnapshot {
	p := NewProfiler(64)
	for i, n := 0, 1+rng.Intn(24); i < n; i++ {
		oid := uint64(1 + rng.Intn(32))
		p.RecordInvoke(oid, rng.Intn(2) == 0)
		if rng.Intn(3) == 0 {
			p.RecordFault(oid, false, false, 1, 128, time.Duration(rng.Intn(1000)))
		}
	}
	return p.Snapshot(site, rng.Int63n(1e9), 0)
}

// TestProfileMergeTopKOrderIndependent: folding per-site profiles
// untruncated and cutting to top-K once at the end (the collector's
// fold) yields the same ranked set regardless of fold order.
func TestProfileMergeTopKOrderIndependent(t *testing.T) {
	const topK = 4
	fold := func(profiles []*ProfileSnapshot, order []int) *ProfileSnapshot {
		out := &ProfileSnapshot{}
		for _, i := range order {
			out = out.Merge(profiles[i], 0)
		}
		return out.Merge(nil, topK)
	}
	f := func(seed int64, shuffleSeed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		profiles := make([]*ProfileSnapshot, n)
		forward := make([]int, n)
		for i := range profiles {
			profiles[i] = randomProfile(rng, "s"+string(rune('a'+i)))
			forward[i] = i
		}
		a := fold(profiles, forward)
		b := fold(profiles, shuffledOrder(n, shuffleSeed))
		a.Site, b.Site = "", ""
		if len(a.Objects) > topK {
			return false
		}
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestProfilePairwiseTruncationWouldReorder documents why the collector
// must not truncate at each pairwise step: an object just below one
// pair's cut can belong in the true fleet top-K once every site has
// contributed.
func TestProfilePairwiseTruncationWouldReorder(t *testing.T) {
	mk := func(site string, heats map[uint64]int) *ProfileSnapshot {
		p := NewProfiler(16)
		for oid, heat := range heats {
			for i := 0; i < heat; i++ {
				p.RecordInvoke(oid, false)
			}
		}
		return p.Snapshot(site, 0, 0)
	}
	// Object 3 is lukewarm on both sites but fleet-hot in aggregate.
	a := mk("a", map[uint64]int{1: 10, 2: 9, 3: 8})
	b := mk("b", map[uint64]int{4: 10, 5: 9, 3: 8})
	correct := a.Merge(b, 0).Merge(nil, 2)
	if len(correct.Objects) != 2 || correct.Objects[0].OID != 3 {
		t.Fatalf("fleet top-2 should lead with oid 3: %+v", correct.Objects)
	}
	eager := a.Merge(nil, 2).Merge(b.Merge(nil, 2), 0).Merge(nil, 2)
	for _, o := range eager.Objects {
		if o.OID == 3 {
			t.Fatalf("eager truncation kept oid 3 — test premise broken: %+v", eager.Objects)
		}
	}
}

// TestFleetSnapshotFormatDeterministic: two renders of the same fleet
// state are byte-identical (tables sort by name).
func TestFleetSnapshotFormatDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	snap := &FleetSnapshot{
		Sites: []SiteObservation{
			{Site: "a", Metrics: randomSnapshot(rng, "a")},
			{Site: "b", Metrics: randomSnapshot(rng, "b")},
		},
	}
	snap.Metrics = snap.Sites[0].Metrics.Merge(snap.Sites[1].Metrics)
	if snap.Format() != snap.Format() {
		t.Fatal("fleet snapshot renders differ between calls")
	}
}
