package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"obiwan/internal/codec"
	"obiwan/internal/stats"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter
// (telemetry disabled) no-ops.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 for nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge no-ops.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value (0 for nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histShards spreads concurrent observers across independent atomics so a
// hot call path never serializes on one cache line.
const histShards = 8

// histBuckets is one power-of-two bucket per value magnitude: bucket i
// holds values whose bit length is i, i.e. [2^(i-1), 2^i).
const histBuckets = 65

type histShard struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Uint64
	_       [64]byte // shard padding against false sharing
}

// histExemplars bounds how many tail exemplars a histogram retains.
const histExemplars = 8

// Exemplar ties one tail sample to the trace that produced it — the
// evidence `obiwan-admin slow` resolves back into an annotated critical
// path.
type Exemplar struct {
	Value   int64
	TraceID uint64
}

// Histogram is a lock-free sharded streaming histogram over non-negative
// int64 values (durations in nanoseconds, sizes, counts). Observations
// land in power-of-two buckets, so memory is fixed no matter how many
// samples arrive; percentiles are bucket-resolution estimates. A nil
// *Histogram no-ops.
//
// Traced observations (ObserveExemplar) additionally keep the
// histExemplars largest samples' trace ids. The hot path pays one atomic
// floor check; only samples that belong in the retained tail take the
// exemplar lock.
type Histogram struct {
	shards [histShards]histShard
	pick   atomic.Uint32
	min    atomic.Int64
	max    atomic.Int64

	exFloor atomic.Int64 // smallest retained exemplar (MinInt64 until full)
	exMu    sync.Mutex
	ex      []Exemplar
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	h.exFloor.Store(math.MinInt64)
	return h
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	s := &h.shards[h.pick.Add(1)%histShards]
	s.count.Add(1)
	s.sum.Add(v)
	s.buckets[bits.Len64(uint64(v))].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveExemplar records one value and, when it lands in the retained
// tail, remembers the trace that produced it. traceID 0 (untraced call)
// degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v int64, traceID uint64) {
	h.Observe(v)
	if h == nil || traceID == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	if v < h.exFloor.Load() {
		return
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if len(h.ex) < histExemplars {
		h.ex = append(h.ex, Exemplar{Value: v, TraceID: traceID})
		if len(h.ex) == histExemplars {
			h.exFloor.Store(h.exMin())
		}
		return
	}
	mi := 0
	for i := range h.ex {
		if h.ex[i].Value < h.ex[mi].Value {
			mi = i
		}
	}
	// Strict >: on a tie the earliest-recorded exemplar wins, so replays
	// of a deterministic run retain identical trace ids.
	if v > h.ex[mi].Value {
		h.ex[mi] = Exemplar{Value: v, TraceID: traceID}
		h.exFloor.Store(h.exMin())
	}
}

// exMin returns the smallest retained exemplar value. Call with exMu held.
func (h *Histogram) exMin() int64 {
	lo := h.ex[0].Value
	for _, e := range h.ex[1:] {
		if e.Value < lo {
			lo = e.Value
		}
	}
	return lo
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.ObserveDuration(time.Since(start)) }

// snapshot merges all shards into an exported value.
func (h *Histogram) snapshot(name string) HistogramValue {
	out := HistogramValue{Name: name}
	var merged [histBuckets]uint64
	for i := range h.shards {
		s := &h.shards[i]
		out.Count += s.count.Load()
		out.Sum += s.sum.Load()
		for b := range s.buckets {
			merged[b] += s.buckets[b].Load()
		}
	}
	if out.Count == 0 {
		return out
	}
	out.Min = h.min.Load()
	out.Max = h.max.Load()
	for b, n := range merged {
		if n == 0 {
			continue
		}
		le := int64(math.MaxInt64)
		if b < 63 {
			le = (int64(1) << b) - 1
		}
		out.Buckets = append(out.Buckets, BucketCount{Le: le, Count: n})
	}
	out.P50 = quantile(merged[:], out.Count, 0.50, out.Min, out.Max)
	out.P90 = quantile(merged[:], out.Count, 0.90, out.Min, out.Max)
	out.P99 = quantile(merged[:], out.Count, 0.99, out.Min, out.Max)
	h.exMu.Lock()
	if len(h.ex) > 0 {
		out.Exemplars = append([]Exemplar(nil), h.ex...)
	}
	h.exMu.Unlock()
	sortExemplars(out.Exemplars)
	return out
}

// sortExemplars orders exemplars by the canonical total order: value
// descending, trace id ascending — what snapshot, Merge, and the slow
// command all render.
func sortExemplars(ex []Exemplar) {
	sort.Slice(ex, func(i, j int) bool {
		if ex[i].Value != ex[j].Value {
			return ex[i].Value > ex[j].Value
		}
		return ex[i].TraceID < ex[j].TraceID
	})
}

// quantile estimates the q-th quantile from power-of-two buckets: the
// answer is the upper bound of the bucket holding the q-th sample,
// clamped into [min, max].
func quantile(buckets []uint64, total uint64, q float64, min, max int64) int64 {
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for b, n := range buckets {
		cum += n
		if cum > rank {
			le := int64(math.MaxInt64)
			if b < 63 {
				le = (int64(1) << b) - 1
			}
			if le < min {
				le = min
			}
			if le > max {
				le = max
			}
			return le
		}
	}
	return max
}

// BucketCount is one non-empty histogram bucket: Count values ≤ Le (and
// greater than the previous bucket's bound).
type BucketCount struct {
	Le    int64
	Count uint64
}

// CounterValue is one exported counter.
type CounterValue struct {
	Name  string
	Value uint64
}

// GaugeValue is one exported gauge.
type GaugeValue struct {
	Name  string
	Value int64
}

// HistogramValue is one exported histogram: totals, bucket-resolution
// percentiles, the non-empty buckets themselves, and the tail exemplars
// (largest traced samples, value-descending).
type HistogramValue struct {
	Name      string
	Count     uint64
	Sum       int64
	Min       int64
	Max       int64
	P50       int64
	P90       int64
	P99       int64
	Buckets   []BucketCount
	Exemplars []Exemplar
}

// MetricsSnapshot is a site's full metrics state at one instant, sorted
// by name for deterministic rendering and diffing.
type MetricsSnapshot struct {
	Site       string
	TakenAtNS  int64
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramValue
}

func init() {
	codec.MustRegister("obiwan.telemetry.BucketCount", BucketCount{})
	codec.MustRegister("obiwan.telemetry.Exemplar", Exemplar{})
	codec.MustRegister("obiwan.telemetry.CounterValue", CounterValue{})
	codec.MustRegister("obiwan.telemetry.GaugeValue", GaugeValue{})
	codec.MustRegister("obiwan.telemetry.HistogramValue", HistogramValue{})
	codec.MustRegister("obiwan.telemetry.MetricsSnapshot", MetricsSnapshot{})
}

// Get returns the named counter's value, or 0.
func (s *MetricsSnapshot) Get(name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// GetHistogram returns the named histogram, or a zero value.
func (s *MetricsSnapshot) GetHistogram(name string) HistogramValue {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h
		}
	}
	return HistogramValue{}
}

// Format renders the snapshot as aligned tables (the obiwan-admin
// output). Rows are sorted by name regardless of slice order — a
// registry snapshot arrives sorted, but merged or hand-assembled
// snapshots need not be, and scrape diffs and golden tests want one
// stable rendering.
func (s *MetricsSnapshot) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "metrics for site %q\n\n", s.Site)
	counters := append([]CounterValue(nil), s.Counters...)
	gauges := append([]GaugeValue(nil), s.Gauges...)
	hists := append([]HistogramValue(nil), s.Histograms...)
	sort.Slice(counters, func(i, j int) bool { return counters[i].Name < counters[j].Name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].Name < gauges[j].Name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	if len(counters) > 0 || len(gauges) > 0 {
		t := stats.NewTable("name", "value")
		for _, c := range counters {
			t.AddRow(c.Name, c.Value)
		}
		for _, g := range gauges {
			t.AddRow(g.Name, g.Value)
		}
		_, _ = t.WriteTo(&b)
		b.WriteByte('\n')
	}
	if len(hists) > 0 {
		t := stats.NewTable("histogram", "count", "min", "p50", "p90", "p99", "max")
		for _, h := range hists {
			if strings.HasSuffix(h.Name, "_ns") {
				t.AddRow(h.Name, h.Count,
					time.Duration(h.Min), time.Duration(h.P50),
					time.Duration(h.P90), time.Duration(h.P99), time.Duration(h.Max))
			} else {
				t.AddRow(h.Name, h.Count, h.Min, h.P50, h.P90, h.P99, h.Max)
			}
		}
		_, _ = t.WriteTo(&b)
	}
	return b.String()
}

// Metrics is a site's metric registry: named counters, gauges, and
// histograms, created on first use. All methods are safe for concurrent
// use, and every method on a nil *Metrics (telemetry disabled) returns a
// nil instrument whose operations no-op — instrumented code resolves its
// instruments once and never branches again.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. Durations
// are recorded in nanoseconds; by convention their names end in "_ns".
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[name]
	if !ok {
		h = newHistogram()
		m.hists[name] = h
	}
	return h
}

// Snapshot exports every instrument, sorted by name.
func (m *Metrics) Snapshot(site string, nowNS int64) *MetricsSnapshot {
	out := &MetricsSnapshot{Site: site, TakenAtNS: nowNS}
	if m == nil {
		return out
	}
	m.mu.Lock()
	counters := make(map[string]*Counter, len(m.counters))
	for k, v := range m.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(m.gauges))
	for k, v := range m.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(m.hists))
	for k, v := range m.hists {
		hists[k] = v
	}
	m.mu.Unlock()

	for name, c := range counters {
		out.Counters = append(out.Counters, CounterValue{Name: name, Value: c.Load()})
	}
	for name, g := range gauges {
		out.Gauges = append(out.Gauges, GaugeValue{Name: name, Value: g.Load()})
	}
	for name, h := range hists {
		out.Histograms = append(out.Histograms, h.snapshot(name))
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	return out
}
