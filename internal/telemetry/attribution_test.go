package telemetry

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// buildChainSpans is the canonical nested-demand shape: a client fault
// whose net window encloses the server's serve span, whose serve window
// encloses the engine's apply span. Durations are chosen so every
// deduction branch is exercised.
func buildChainSpans() []SpanRecord {
	return []SpanRecord{
		{TraceID: 1, SpanID: 1, Site: "client", Name: "fault", StartNS: 0, EndNS: 100,
			Phases: []PhaseSegment{{Phase: PhaseNet, NS: 90}}},
		{TraceID: 1, SpanID: 2, Parent: 1, Site: "server", Name: "serve:Get", StartNS: 5, EndNS: 85,
			Phases: []PhaseSegment{{Phase: PhaseQueue, NS: 5}, {Phase: PhaseServe, NS: 75}}},
		{TraceID: 1, SpanID: 3, Parent: 2, Site: "server", Name: "put.apply", StartNS: 10, EndNS: 70,
			Phases: []PhaseSegment{{Phase: PhaseApply, NS: 40}, {Phase: PhaseFsync, NS: 20}}},
	}
}

// TestExtractCriticalPathSelfAttribution: nested phase windows must not
// double-bill. Each step's largest phase (the window the descended child
// ran inside) is charged only for the step's self-time share; leaf
// phases pass through verbatim; what no segment claimed lands in
// "unattributed". The per-step Phases stay as recorded on the span.
func TestExtractCriticalPathSelfAttribution(t *testing.T) {
	trees := BuildTrees(buildChainSpans())
	if len(trees) != 1 {
		t.Fatalf("trees: %d", len(trees))
	}
	cp := ExtractCriticalPath(trees[0])
	if cp.TraceID != 1 || cp.Root != "fault" || cp.TotalNS != 100 {
		t.Fatalf("header: %+v", cp)
	}
	if len(cp.Steps) != 3 {
		t.Fatalf("steps: %+v", cp.Steps)
	}
	wantSelf := []int64{20, 20, 60} // dur minus descended child's dur
	for i, st := range cp.Steps {
		if st.SelfNS != wantSelf[i] {
			t.Fatalf("step %d self=%d want %d", i, st.SelfNS, wantSelf[i])
		}
	}
	// Verbatim span annotations survive on the steps.
	if cp.Steps[0].Phases[0] != (PhaseSegment{Phase: PhaseNet, NS: 90}) {
		t.Fatalf("step phases rewritten: %+v", cp.Steps[0].Phases)
	}
	// Aggregate: net 90-(100-20)=10, queue 5, serve 75-(80-20)=15,
	// apply 40, fsync 20 — attributed 90 of 100, remainder unattributed.
	want := []PhaseSegment{
		{Phase: PhaseApply, NS: 40},
		{Phase: PhaseFsync, NS: 20},
		{Phase: PhaseNet, NS: 10},
		{Phase: PhaseQueue, NS: 5},
		{Phase: PhaseServe, NS: 15},
		{Phase: PhaseUnattributed, NS: 10},
	}
	if !reflect.DeepEqual(cp.Phases, want) {
		t.Fatalf("phases:\n got %+v\nwant %+v", cp.Phases, want)
	}
	out := cp.Format()
	for _, frag := range []string{"trace=1 fault total=100ns", "fsync=20ns", "unattributed=10ns(10%)"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("format missing %q:\n%s", frag, out)
		}
	}
	if out != cp.Format() {
		t.Fatal("two renders differ")
	}
}

// TestExtractCriticalPathDescent: the walk descends into the longest
// child, breaking duration ties toward the lowest span id, and a nil
// root yields the zero path.
func TestExtractCriticalPathDescent(t *testing.T) {
	if cp := ExtractCriticalPath(nil); len(cp.Steps) != 0 || cp.TotalNS != 0 {
		t.Fatalf("nil root: %+v", cp)
	}
	spans := []SpanRecord{
		{TraceID: 1, SpanID: 1, Name: "root", StartNS: 0, EndNS: 100},
		{TraceID: 1, SpanID: 4, Parent: 1, Name: "late-twin", StartNS: 0, EndNS: 60},
		{TraceID: 1, SpanID: 3, Parent: 1, Name: "early-twin", StartNS: 0, EndNS: 60},
		{TraceID: 1, SpanID: 2, Parent: 1, Name: "short", StartNS: 0, EndNS: 10},
	}
	cp := ExtractCriticalPath(BuildTrees(spans)[0])
	if len(cp.Steps) != 2 || cp.Steps[1].Name != "early-twin" {
		t.Fatalf("tie break: %+v", cp.Steps)
	}
}

// randomForestSpans builds a random acyclic span set: unique ids, each
// parent either absent (root), an earlier id, or a dangling id that
// names no span — the permutation property BuildTrees guarantees only
// holds for well-formed (duplicate-free) input, which is what live
// tracer rings and scrapes produce.
func randomForestSpans(rng *rand.Rand) []SpanRecord {
	n := 1 + rng.Intn(40)
	spans := make([]SpanRecord, n)
	for i := range spans {
		var parent uint64
		switch {
		case i > 0 && rng.Intn(3) > 0:
			parent = spans[rng.Intn(i)].SpanID
		case rng.Intn(4) == 0:
			parent = uint64(10_000 + rng.Intn(100)) // dangling: orphan root
		}
		spans[i] = SpanRecord{
			TraceID: uint64(1 + rng.Intn(4)),
			SpanID:  uint64(i + 1),
			Parent:  parent,
			Name:    "op",
			StartNS: int64(rng.Intn(1000)),
			EndNS:   int64(rng.Intn(2000)),
		}
	}
	return spans
}

// TestBuildTreesPermutationInvariant: for any permutation of a
// well-formed span set, BuildTrees yields the identical forest — the
// property that makes fleet-assembled trees (spans arriving in scrape
// order, not record order) deterministic.
func TestBuildTreesPermutationInvariant(t *testing.T) {
	f := func(seed, shuffleSeed int64) bool {
		spans := randomForestSpans(rand.New(rand.NewSource(seed)))
		shuffled := append([]SpanRecord(nil), spans...)
		rand.New(rand.NewSource(shuffleSeed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		a, b := BuildTrees(spans), BuildTrees(shuffled)
		if !reflect.DeepEqual(a, b) {
			return false
		}
		// The critical paths extracted from the forest are then identical
		// too — the end-to-end determinism obiwan-admin slow rests on.
		for i := range a {
			if !reflect.DeepEqual(ExtractCriticalPath(a[i]), ExtractCriticalPath(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// FuzzBuildTreesMalformedParents feeds BuildTrees arbitrary id/parent
// bytes — duplicates, self-parents, mutual cycles, dangling parents —
// and asserts it terminates with every unique id placed exactly once,
// and that ExtractCriticalPath over the result terminates too.
func FuzzBuildTreesMalformedParents(f *testing.F) {
	f.Add([]byte{1, 0, 1, 2, 1, 1})            // root + child
	f.Add([]byte{1, 2, 1, 2, 1, 1})            // mutual cycle
	f.Add([]byte{3, 3, 1})                     // self-parent
	f.Add([]byte{7, 0, 1, 7, 9, 2, 5, 200, 3}) // duplicate id + dangling parent
	f.Fuzz(func(t *testing.T, data []byte) {
		var spans []SpanRecord
		for i := 0; i+2 < len(data); i += 3 {
			spans = append(spans, SpanRecord{
				SpanID:  uint64(data[i]),
				Parent:  uint64(data[i+1]),
				TraceID: uint64(data[i+2]),
				Name:    "fz",
				EndNS:   int64(data[i+1]) - int64(data[i]), // may be negative
			})
		}
		unique := map[uint64]bool{}
		for _, sp := range spans {
			unique[sp.SpanID] = true
		}
		placed := 0
		for _, root := range BuildTrees(spans) {
			root.Walk(func(d int, sp SpanRecord) { placed++ })
			cp := ExtractCriticalPath(root)
			if cp.TotalNS < 0 {
				t.Fatalf("negative total: %+v", cp)
			}
			for _, st := range cp.Steps {
				if st.SelfNS < 0 || st.DurNS < 0 {
					t.Fatalf("negative step: %+v", st)
				}
			}
			_ = cp.Format()
		}
		if placed != len(unique) {
			t.Fatalf("placed %d of %d unique spans", placed, len(unique))
		}
	})
}

// TestObserveExemplarRetention: the histogram keeps the histExemplars
// largest traced samples; ties keep the earliest-recorded trace (so
// deterministic replays retain identical ids); untraced observations
// count but leave no exemplar.
func TestObserveExemplarRetention(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("lat_ns")
	for i := int64(1); i <= int64(histExemplars); i++ {
		h.ObserveExemplar(i*10, uint64(i))
	}
	h.ObserveExemplar(10, 999) // ties the current min: earliest wins
	h.ObserveExemplar(90, 200) // evicts the min (10, trace 1)
	h.ObserveExemplar(1, 300)  // below the floor: dropped
	h.ObserveExemplar(500, 0)  // untraced: observed, not retained
	hv := m.Snapshot("s", 0).GetHistogram("lat_ns")
	if hv.Count != uint64(histExemplars)+4 {
		t.Fatalf("count: %d", hv.Count)
	}
	if len(hv.Exemplars) != histExemplars {
		t.Fatalf("exemplars: %+v", hv.Exemplars)
	}
	if hv.Exemplars[0] != (Exemplar{Value: 90, TraceID: 200}) {
		t.Fatalf("head: %+v", hv.Exemplars[0])
	}
	for _, ex := range hv.Exemplars {
		if ex.TraceID == 999 || ex.TraceID == 1 || ex.TraceID == 300 || ex.TraceID == 0 {
			t.Fatalf("retained wrong exemplar: %+v", hv.Exemplars)
		}
		if ex.Value < hv.Exemplars[len(hv.Exemplars)-1].Value {
			t.Fatalf("not value-descending: %+v", hv.Exemplars)
		}
	}
}

// TestExemplarMergeOrderIndependent: merging histogram values keeps the
// top histExemplars of the union under the canonical order, whichever
// side folds first — top-K selection is associative, so the fleet fold
// is scrape-order independent.
func TestExemplarMergeOrderIndependent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() HistogramValue {
			m := NewMetrics()
			h := m.Histogram("lat_ns")
			for i, n := 0, 1+rng.Intn(2*histExemplars); i < n; i++ {
				h.ObserveExemplar(rng.Int63n(1000), uint64(1+rng.Intn(1_000_000)))
			}
			return m.Snapshot("s", 0).GetHistogram("lat_ns")
		}
		a, b, c := mk(), mk(), mk()
		left := a.Merge(b).Merge(c)
		right := c.Merge(b).Merge(a)
		if len(left.Exemplars) > histExemplars {
			return false
		}
		return reflect.DeepEqual(left.Exemplars, right.Exemplars)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomCriticalPath fabricates a plausible extracted path: a few steps,
// phase totals drawn from the taxonomy, total covering them.
func randomCriticalPath(rng *rand.Rand) CriticalPath {
	phases := []string{PhaseNet, PhaseApply, PhaseFsync, PhaseElectWait, PhaseServe}
	cp := CriticalPath{TraceID: uint64(1 + rng.Intn(1000)), Root: "fault"}
	for _, ph := range phases[:1+rng.Intn(len(phases))] {
		ns := 1 + rng.Int63n(int64(1_000_000))
		cp.Phases = append(cp.Phases, PhaseSegment{Phase: ph, NS: ns})
		cp.TotalNS += ns
	}
	cp.Steps = []PathStep{{Name: "fault", DurNS: cp.TotalNS, SelfNS: cp.TotalNS}}
	return cp
}

// TestAttributionProfileMergeOrderIndependent: folding per-site
// profiles in any order yields identical path counts, per-phase
// histograms, and shares — the collector's Attribution() fold.
func TestAttributionProfileMergeOrderIndependent(t *testing.T) {
	f := func(seed, shuffleSeed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		profiles := make([]*AttributionProfile, n)
		forward := make([]int, n)
		for i := range profiles {
			b := NewAttributionBuilder()
			for j, paths := 0, 1+rng.Intn(8); j < paths; j++ {
				b.Add(randomCriticalPath(rng))
			}
			profiles[i] = b.Profile("s", 0)
			forward[i] = i
		}
		fold := func(order []int) *AttributionProfile {
			var out *AttributionProfile
			for _, i := range order {
				out = out.Merge(profiles[i])
			}
			return out
		}
		a, b := fold(forward), fold(shuffledOrder(n, shuffleSeed))
		if !reflect.DeepEqual(a, b) {
			return false
		}
		return a.Format() == b.Format()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestAttributionBuilderProfileShares: shares are exact integer permille
// of the total histogram's sum; empty paths are ignored.
func TestAttributionBuilderProfileShares(t *testing.T) {
	b := NewAttributionBuilder()
	b.Add(CriticalPath{}) // zero-length: ignored
	b.Add(CriticalPath{
		TotalNS: 1000,
		Steps:   []PathStep{{Name: "fault"}},
		Phases: []PhaseSegment{
			{Phase: PhaseNet, NS: 750},
			{Phase: PhaseApply, NS: 250},
		},
	})
	p := b.Profile("site-a", 42)
	if p.Paths != 1 || p.Site != "site-a" || p.TakenAtNS != 42 {
		t.Fatalf("profile header: %+v", p)
	}
	if got := p.SharePermille(PhaseNet); got != 750 {
		t.Fatalf("net share: %d", got)
	}
	if got := p.SharePermille(PhaseApply); got != 250 {
		t.Fatalf("apply share: %d", got)
	}
	if got := p.SharePermille("absent"); got != 0 {
		t.Fatalf("absent share: %d", got)
	}
	if names := p.PhaseNames(); !reflect.DeepEqual(names, []string{PhaseApply, PhaseNet}) {
		t.Fatalf("phase names: %v", names)
	}
	out := p.Format()
	if !strings.Contains(out, "attribution over 1 critical paths") || !strings.Contains(out, "75.0%") {
		t.Fatalf("format:\n%s", out)
	}
}

// TestHubSlowTraces: tail exemplars resolve against the tracer ring into
// slow traces that carry their spans, rank canonically, and render the
// annotated critical path byte-identically.
func TestHubSlowTraces(t *testing.T) {
	h := NewHub("alpha", WithClock(fakeClock()))
	slow := h.StartRoot("fault")
	slow.Phase(PhaseNet, 900)
	slow.End()
	fast := h.StartRoot("fault")
	fast.End()
	h.Metrics().Histogram("rmi.call.latency_ns").ObserveExemplar(900, slow.Context().TraceID)
	h.Metrics().Histogram("rmi.call.latency_ns").ObserveExemplar(10, fast.Context().TraceID)
	h.Metrics().Histogram("untimed").ObserveExemplar(5000, fast.Context().TraceID) // not _ns: skipped

	got := h.SlowTraces(1)
	if len(got) != 1 {
		t.Fatalf("slow traces: %+v", got)
	}
	st := got[0]
	if st.Site != "alpha" || st.Metric != "rmi.call.latency_ns" || st.ValueNS != 900 || st.TraceID != slow.Context().TraceID {
		t.Fatalf("ranked wrong trace: %+v", st)
	}
	if len(st.Spans) == 0 {
		t.Fatal("slow trace carries no spans")
	}
	out := st.Format()
	for _, frag := range []string{"alpha rmi.call.latency_ns = 900ns", "fault", "net=900ns"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("format missing %q:\n%s", frag, out)
		}
	}
	if out != st.Format() {
		t.Fatal("two renders differ")
	}

	var nilHub *Hub
	if nilHub.SlowTraces(4) != nil {
		t.Fatal("nil hub returned slow traces")
	}
}

// TestSpanPhaseAccumulates: repeated Phase calls on one name accumulate
// in place, zero/negative durations are dropped, and nil spans no-op.
func TestSpanPhaseAccumulates(t *testing.T) {
	h := NewHub("s", WithClock(fakeClock()))
	sp := h.StartRoot("op")
	sp.Phase(PhaseRetryBackoff, 5)
	sp.Phase(PhaseNet, 10)
	sp.Phase(PhaseRetryBackoff, 7)
	sp.Phase(PhaseNet, 0)
	sp.Phase(PhaseNet, -3)
	sp.End()
	rec := h.Spans(0)[0]
	want := []PhaseSegment{{Phase: PhaseRetryBackoff, NS: 12}, {Phase: PhaseNet, NS: 10}}
	if !reflect.DeepEqual(rec.Phases, want) {
		t.Fatalf("phases: %+v", rec.Phases)
	}
	var nilSpan *Span
	nilSpan.Phase(PhaseNet, 10) // must not panic
}
