package stats

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty summary must be all zeros")
	}
	for _, d := range []time.Duration{30, 10, 20} {
		s.Add(d * time.Millisecond)
	}
	if s.Count() != 3 {
		t.Fatalf("count: %d", s.Count())
	}
	if s.Total() != 60*time.Millisecond {
		t.Fatalf("total: %v", s.Total())
	}
	if s.Mean() != 20*time.Millisecond {
		t.Fatalf("mean: %v", s.Mean())
	}
	if s.Min() != 10*time.Millisecond || s.Max() != 30*time.Millisecond {
		t.Fatalf("min/max: %v %v", s.Min(), s.Max())
	}
	if s.Percentile(50) != 20*time.Millisecond {
		t.Fatalf("p50: %v", s.Percentile(50))
	}
	if s.Percentile(0) != 10*time.Millisecond || s.Percentile(100) != 30*time.Millisecond {
		t.Fatalf("p0/p100: %v %v", s.Percentile(0), s.Percentile(100))
	}
}

func TestSummaryAddAfterSort(t *testing.T) {
	var s Summary
	s.Add(5)
	_ = s.Min() // forces sort
	s.Add(1)    // must invalidate sorted state
	if s.Min() != 1 {
		t.Fatalf("min after re-add: %v", s.Min())
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []uint16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		for _, v := range raw {
			s.Add(time.Duration(v))
		}
		a := float64(aRaw % 101)
		b := float64(bRaw % 101)
		if a > b {
			a, b = b, a
		}
		pa, pb := s.Percentile(a), s.Percentile(b)
		return pa <= pb && pa >= s.Min() && pb <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("short", 1.5)
	tab.AddRow("a-much-longer-name", 42*time.Millisecond)
	if tab.Len() != 2 {
		t.Fatalf("len: %d", tab.Len())
	}
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("lines: %d\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[2], "1.500") {
		t.Fatalf("output:\n%s", buf.String())
	}
	// Columns align: the rule row is at least as wide as the longest cell.
	if len(lines[1]) < len("a-much-longer-name") {
		t.Fatalf("rule too short: %q", lines[1])
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow(1, "x")
	got := tab.CSV()
	if got != "a,b\n1,x\n" {
		t.Fatalf("csv: %q", got)
	}
}

func TestSummaryConcurrentAddAndMerge(t *testing.T) {
	var total Summary
	var wg sync.WaitGroup
	shards := make([]*Summary, 8)
	for i := range shards {
		shards[i] = &Summary{}
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				total.Add(time.Duration(i+1) * time.Microsecond) // shared, concurrent
				shards[g].Add(time.Duration(i+1) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if total.Count() != 4000 {
		t.Fatalf("concurrent adds lost samples: %d", total.Count())
	}
	var merged Summary
	for _, sh := range shards {
		merged.Merge(sh)
	}
	if merged.Count() != 4000 || merged.Min() != time.Microsecond || merged.Max() != 500*time.Microsecond {
		t.Fatalf("merge: count=%d min=%v max=%v", merged.Count(), merged.Min(), merged.Max())
	}
	if merged.Total() != total.Total() {
		t.Fatalf("merge total %v != concurrent total %v", merged.Total(), total.Total())
	}
	merged.Merge(&merged) // self-merge no-ops
	if merged.Count() != 4000 {
		t.Fatalf("self-merge duplicated: %d", merged.Count())
	}
	merged.Merge(nil)
}
