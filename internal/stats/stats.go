// Package stats provides the small measurement toolkit the benchmark
// harness uses: duration summaries with percentiles and fixed-width table
// rendering for experiment output.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Summary accumulates duration samples. Safe for concurrent use: the
// bench harness historically measured single-threaded, but the telemetry
// layer now feeds summaries from many goroutines, so every method takes
// the summary's lock. Per-worker summaries can still be kept lock-cheap
// and combined at the end with Merge.
type Summary struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (s *Summary) Add(d time.Duration) {
	s.mu.Lock()
	s.samples = append(s.samples, d)
	s.sorted = false
	s.mu.Unlock()
}

// Merge folds other's samples into s (the sharded-accumulation pattern:
// one Summary per goroutine, merged once at the end). Merging a summary
// into itself is a no-op.
func (s *Summary) Merge(other *Summary) {
	if other == nil || other == s {
		return
	}
	// Lock order: always other before s would deadlock against a
	// concurrent s.Merge(other) from the other side; copy out instead of
	// holding both locks.
	other.mu.Lock()
	samples := append([]time.Duration(nil), other.samples...)
	other.mu.Unlock()
	if len(samples) == 0 {
		return
	}
	s.mu.Lock()
	s.samples = append(s.samples, samples...)
	s.sorted = false
	s.mu.Unlock()
}

// Count returns the number of samples.
func (s *Summary) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Total returns the sum of all samples.
func (s *Summary) Total() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalLocked()
}

func (s *Summary) totalLocked() time.Duration {
	var t time.Duration
	for _, d := range s.samples {
		t += d
	}
	return t
}

// Mean returns the average sample (0 with no samples).
func (s *Summary) Mean() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	return s.totalLocked() / time.Duration(len(s.samples))
}

// Min returns the smallest sample (0 with no samples).
func (s *Summary) Min() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sortLocked()
	if len(s.samples) == 0 {
		return 0
	}
	return s.samples[0]
}

// Max returns the largest sample (0 with no samples).
func (s *Summary) Max() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sortLocked()
	if len(s.samples) == 0 {
		return 0
	}
	return s.samples[len(s.samples)-1]
}

// Percentile returns the p-th percentile (p in [0,100]) by the
// nearest-rank method.
func (s *Summary) Percentile(p float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sortLocked()
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[n-1]
	}
	rank := int(p/100*float64(n)+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return s.samples[rank]
}

func (s *Summary) sortLocked() {
	if s.sorted {
		return
	}
	sort.Slice(s.samples, func(i, j int) bool { return s.samples[i] < s.samples[j] })
	s.sorted = true
}

// Table renders rows of experiment output with aligned columns.
type Table struct {
	Headers []string
	rows    [][]string
}

// NewTable builds a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// WriteTo renders the table. It implements a fixed-width text layout; the
// error is always nil (io.Writer errors are ignored intentionally — the
// harness writes to stdout).
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var n int64
	write := func(s string) {
		m, _ := io.WriteString(w, s)
		n += int64(m)
	}
	var b strings.Builder
	for i, h := range t.Headers {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(pad(h, widths[i]))
	}
	write(b.String() + "\n")
	b.Reset()
	for i := range t.Headers {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	write(b.String() + "\n")
	for _, row := range t.rows {
		b.Reset()
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		write(b.String() + "\n")
	}
	return n, nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV renders the table as comma-separated values (headers first).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
