// Package fleet is the cross-site observability layer: a Collector
// scrapes the admin service of N peer sites over plain RMI, folds their
// telemetry into one order-independent aggregate (metrics, cross-site
// top-K hot objects), and runs a declarative SLO watchdog over the
// federated stream. The paper's incremental-replication argument is
// about fleet behaviour — where demand traffic and mobility hot-spots
// land across many sites — and this package is where that behaviour
// becomes one observable object instead of N per-site snapshots.
package fleet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"obiwan/internal/admin"
	"obiwan/internal/rmi"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// defaultTopK bounds the aggregated hot-object ranking.
const defaultTopK = 16

// maxAlerts bounds the watchdog's retained alert backlog; older alerts
// fall off the front (counted in alertsDropped, surfaced as the
// fleet.alerts.dropped counter — a silent drop would read as "no alert").
const maxAlerts = 256

// spanBufferCap bounds the collector's buffer of scraped spans — the raw
// material for fleet-wide slow-trace resolution and critical-path
// attribution. Oldest spans fall off the front; a trace whose spans have
// been evicted renders a shorter (possibly empty) critical path rather
// than failing.
const spanBufferCap = 8192

// peerState is the collector's per-site memory: the scrape cursor, the
// last successful observation, and the counter values the rate rules
// difference against.
type peerState struct {
	cursor  uint64
	missed  uint64
	errStr  string
	takenAt int64
	scrapes uint64
	metrics *telemetry.MetricsSnapshot
	profile *telemetry.ProfileSnapshot
	// prev holds the previous scrape's counter values for the metrics
	// rate rules watch, so churn is a per-interval delta, not a total.
	prev map[string]uint64
}

// Collector scrapes a fixed set of peer sites and serves the aggregated
// fleet view. Scrapes visit peers in sorted address order and fold with
// the telemetry merge layer, so one scrape of a quiesced fleet is a
// deterministic function of fleet state. Safe for concurrent use.
type Collector struct {
	rt       *rmi.Runtime
	topK     int
	maxSpans uint64
	timeout  time.Duration
	rules    []Rule
	flight   *telemetry.FlightRecorder

	mu            sync.Mutex
	peers         []transport.Addr
	states        map[transport.Addr]*peerState
	last          *telemetry.FleetSnapshot
	alerts        []telemetry.Alert
	alertsDropped uint64 // alerts evicted from the bounded backlog
	spans         []telemetry.SpanRecord
	total         uint64 // completed scrape rounds

	droppedCtr *telemetry.Counter // fleet.alerts.dropped on the host hub; nil no-op

	loopStop chan struct{}
}

// Option configures a Collector.
type Option func(*c0)

type c0 struct {
	topK     int
	maxSpans uint64
	timeout  time.Duration
	rules    []Rule
	flight   *telemetry.FlightRecorder
}

// WithTopK sets the aggregated hot-object ranking depth (default 16).
func WithTopK(k int) Option { return func(o *c0) { o.topK = k } }

// WithMaxSpans caps the spans pulled per site per scrape (default 256).
func WithMaxSpans(n uint64) Option { return func(o *c0) { o.maxSpans = n } }

// WithScrapeTimeout bounds each per-site scrape call (default: the
// runtime's call timeout).
func WithScrapeTimeout(d time.Duration) Option { return func(o *c0) { o.timeout = d } }

// WithRules installs the watchdog rule set (default DefaultRules).
func WithRules(rules []Rule) Option { return func(o *c0) { o.rules = rules } }

// WithFlight routes watchdog alerts into a flight recorder (typically
// the collector site's own), so an SLO breach is preserved next to the
// protocol events that caused it.
func WithFlight(f *telemetry.FlightRecorder) Option { return func(o *c0) { o.flight = f } }

// New builds a collector that scrapes peers through rt. The peer list
// is copied and sorted; duplicates are dropped.
func New(rt *rmi.Runtime, peers []transport.Addr, opts ...Option) *Collector {
	cfg := c0{topK: defaultTopK, rules: DefaultRules()}
	for _, opt := range opts {
		opt(&cfg)
	}
	c := &Collector{
		rt:       rt,
		topK:     cfg.topK,
		maxSpans: cfg.maxSpans,
		timeout:  cfg.timeout,
		rules:    cfg.rules,
		flight:   cfg.flight,
		states:   make(map[transport.Addr]*peerState),
	}
	if m := rt.Telemetry().Metrics(); m != nil {
		c.droppedCtr = m.Counter("fleet.alerts.dropped")
	}
	seen := make(map[transport.Addr]bool, len(peers))
	for _, p := range peers {
		if seen[p] {
			continue
		}
		seen[p] = true
		c.peers = append(c.peers, p)
		c.states[p] = &peerState{}
	}
	sort.Slice(c.peers, func(i, j int) bool { return c.peers[i] < c.peers[j] })
	return c
}

// Peers returns the scrape set, sorted.
func (c *Collector) Peers() []transport.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]transport.Addr(nil), c.peers...)
}

// ScrapeOnce pulls every peer (sorted order, cursor-resumed), folds the
// observations into a fresh fleet snapshot, evaluates the watchdog
// rules, and returns the aggregate. An unreachable peer keeps its last
// observation and is marked with the scrape error — the fleet view
// degrades to slightly stale instead of losing the site.
func (c *Collector) ScrapeOnce() *telemetry.FleetSnapshot {
	c.mu.Lock()
	peers := append([]transport.Addr(nil), c.peers...)
	c.mu.Unlock()

	for _, peer := range peers {
		client := admin.NewClient(c.rt, admin.Ref(peer))
		if c.timeout > 0 {
			client = client.WithTimeout(c.timeout)
		}
		c.mu.Lock()
		cursor := c.states[peer].cursor
		c.mu.Unlock()
		chunk, err := client.Scrape(cursor, c.maxSpans, uint64(c.topK))
		c.mu.Lock()
		st := c.states[peer]
		if err != nil {
			st.errStr = err.Error()
			c.mu.Unlock()
			continue
		}
		st.errStr = ""
		st.cursor = chunk.NextCursor
		st.missed += chunk.Missed
		st.takenAt = chunk.TakenAtNS
		st.metrics = chunk.Metrics
		st.profile = chunk.Profile
		st.scrapes++
		if len(chunk.Spans) > 0 {
			c.spans = append(c.spans, chunk.Spans...)
			if excess := len(c.spans) - spanBufferCap; excess > 0 {
				c.spans = append([]telemetry.SpanRecord(nil), c.spans[excess:]...)
			}
		}
		c.mu.Unlock()
	}

	now := c.rt.Clock().Now().UnixNano()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total++
	snap := &telemetry.FleetSnapshot{TakenAtNS: now, Scrapes: c.total}
	merged := &telemetry.MetricsSnapshot{}
	profile := &telemetry.ProfileSnapshot{}
	for _, peer := range c.peers {
		st := c.states[peer]
		snap.Sites = append(snap.Sites, telemetry.SiteObservation{
			Site:      string(peer),
			TakenAtNS: st.takenAt,
			Cursor:    st.cursor,
			Missed:    st.missed,
			Err:       st.errStr,
			Metrics:   st.metrics,
			Profile:   st.profile,
		})
		merged = merged.Merge(st.metrics)
		// Fold untruncated: cutting to top-K at each pairwise step would
		// make the ranking depend on fold order (an object just below the
		// cut can be promoted by a later site's contribution).
		profile = profile.Merge(st.profile, 0)
	}
	// One final re-rank-and-truncate now that every site has contributed.
	profile = profile.Merge(nil, c.topK)
	merged.Site, merged.TakenAtNS = "fleet", now
	profile.Site, profile.TakenAtNS = "fleet", now
	snap.Metrics, snap.Profile = merged, profile
	c.last = snap
	c.evaluateLocked(snap, now)
	return snap
}

// evaluateLocked runs the watchdog rules over the fresh snapshot,
// retains the alerts, and preserves each in the flight recorder.
func (c *Collector) evaluateLocked(snap *telemetry.FleetSnapshot, nowNS int64) {
	fired := evaluate(c.rules, snap, c.states, nowNS)
	for _, a := range fired {
		c.alerts = append(c.alerts, a)
		if c.flight != nil {
			c.flight.Record(telemetry.FlightEvent{
				Kind: "slo." + a.Rule,
				Detail: fmt.Sprintf("site=%s metric=%s value=%.0f threshold=%.0f %s",
					a.Site, a.Metric, a.Value, a.Threshold, a.Detail),
			})
		}
	}
	if excess := len(c.alerts) - maxAlerts; excess > 0 {
		c.alerts = append([]telemetry.Alert(nil), c.alerts[excess:]...)
		c.alertsDropped += uint64(excess)
		c.droppedCtr.Add(uint64(excess))
	}
	// Roll the per-site counter baselines forward for the rate rules.
	for _, peer := range c.peers {
		st := c.states[peer]
		if st.metrics == nil {
			continue
		}
		if st.prev == nil {
			st.prev = make(map[string]uint64)
		}
		for _, r := range c.rules {
			if r.Kind != RuleRate {
				continue
			}
			st.prev[r.Metric] = st.metrics.Get(r.Metric)
		}
	}
}

// FleetSnapshot implements admin.FleetSource: the latest aggregate,
// scraping first when refresh is set or nothing has been scraped yet.
func (c *Collector) FleetSnapshot(refresh bool) (*telemetry.FleetSnapshot, error) {
	c.mu.Lock()
	last := c.last
	c.mu.Unlock()
	if refresh || last == nil {
		return c.ScrapeOnce(), nil
	}
	return last, nil
}

// FleetAlerts implements admin.FleetSource: the retained alert backlog,
// oldest first, plus how many alerts the bounded backlog has evicted
// since the collector started — so an operator reading a full window
// knows it is a window, not the whole history.
func (c *Collector) FleetAlerts() ([]telemetry.Alert, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]telemetry.Alert(nil), c.alerts...), c.alertsDropped
}

// FleetSlow implements admin.FleetSource: the fleet's worst recent traced
// demands. Tail exemplars from every peer's scraped duration histograms
// are ranked (value descending; site, metric, trace id ascending on ties)
// and resolved against the collector's span buffer, so each result
// carries the cross-site spans needed to print its critical path. At most
// max results (all when max <= 0).
func (c *Collector) FleetSlow(max int) []telemetry.SlowTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []telemetry.SlowTrace
	for _, peer := range c.peers {
		st := c.states[peer]
		if st.metrics == nil {
			continue
		}
		for _, hist := range st.metrics.Histograms {
			if !strings.HasSuffix(hist.Name, "_ns") {
				continue
			}
			for _, ex := range hist.Exemplars {
				out = append(out, telemetry.SlowTrace{
					Site: string(peer), Metric: hist.Name,
					ValueNS: ex.Value, TraceID: ex.TraceID,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.ValueNS != b.ValueNS {
			return a.ValueNS > b.ValueNS
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		return a.TraceID < b.TraceID
	})
	// One entry per trace: the same demand may have been sampled by
	// several sites' instruments — the fleet ranking keeps its worst
	// sample only.
	seen := make(map[uint64]bool, len(out))
	uniq := out[:0]
	for _, st := range out {
		if seen[st.TraceID] {
			continue
		}
		seen[st.TraceID] = true
		uniq = append(uniq, st)
	}
	out = uniq
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	if len(out) == 0 {
		return nil
	}
	byTrace := make(map[uint64][]telemetry.SpanRecord)
	for _, sp := range c.spans {
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}
	for i := range out {
		out[i].Spans = byTrace[out[i].TraceID]
	}
	return out
}

// Attribution implements admin.FleetSource: the fleet's aggregated
// critical-path profile, built by extracting the slowest causal chain of
// every complete trace in the collector's span buffer. The profile is a
// pure function of the buffered spans, so a quiesced virtual-clock fleet
// yields a byte-stable answer.
func (c *Collector) Attribution() *telemetry.AttributionProfile {
	c.mu.Lock()
	spans := append([]telemetry.SpanRecord(nil), c.spans...)
	c.mu.Unlock()
	b := telemetry.NewAttributionBuilder()
	b.AddTrees(telemetry.BuildTrees(spans))
	return b.Profile("fleet", c.rt.Clock().Now().UnixNano())
}

// Scrapes returns how many scrape rounds have completed.
func (c *Collector) Scrapes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Start launches the background scrape loop on the runtime's clock:
// one ScrapeOnce every interval until Stop. Start is idempotent while
// running.
func (c *Collector) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	c.mu.Lock()
	if c.loopStop != nil {
		c.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	c.loopStop = stop
	c.mu.Unlock()
	clock := c.rt.Clock()
	clock.Go(func() {
		for {
			if !clock.SleepUntilCancel(clock.Now().Add(interval), stop) {
				return
			}
			c.ScrapeOnce()
		}
	})
}

// Stop halts the background loop (no-op when not started).
func (c *Collector) Stop() {
	c.mu.Lock()
	if c.loopStop != nil {
		close(c.loopStop)
		c.loopStop = nil
	}
	c.mu.Unlock()
}
