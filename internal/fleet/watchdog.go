package fleet

import (
	"fmt"
	"time"

	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// RuleKind selects how a watchdog rule reads the federated stream.
type RuleKind int

const (
	// RuleP99 fires when a histogram's p99 exceeds Threshold.
	RuleP99 RuleKind = iota
	// RuleLag fires when counter Metric exceeds counter Minus by more
	// than Threshold — e.g. tentative updates outrunning the commit
	// frontier.
	RuleLag
	// RuleRate fires when counter Metric grew by more than Threshold
	// since the previous scrape — e.g. election churn.
	RuleRate
	// RuleGauge fires when a gauge exceeds Threshold — e.g. stale
	// replicas pending refresh.
	RuleGauge
)

func (k RuleKind) String() string {
	switch k {
	case RuleP99:
		return "p99"
	case RuleLag:
		return "lag"
	case RuleRate:
		return "rate"
	case RuleGauge:
		return "gauge"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Rule is one declarative SLO: a named condition over the federated
// metrics stream. Rules are evaluated per scraped site (so an alert
// names the offender) and, when FleetWide is set, once more over the
// merged fleet snapshot.
type Rule struct {
	// Name identifies the rule in alerts and flight events
	// ("slo.<name>").
	Name string
	Kind RuleKind
	// Metric is the instrument the rule watches; Minus is the
	// subtracted counter for RuleLag.
	Metric string
	Minus  string
	// Threshold is the firing bound, in the metric's own unit
	// (nanoseconds for *_ns histograms).
	Threshold float64
	// FleetWide also evaluates the rule over the merged snapshot,
	// alerting as site "fleet".
	FleetWide bool
}

// DefaultRules is the canonical SLO set: RMI tail latency, weakly-
// connected commit-frontier lag, consensus election churn, and replica
// staleness.
func DefaultRules() []Rule {
	return []Rule{
		{Name: "rmi-latency", Kind: RuleP99, Metric: "rmi.call.latency_ns",
			Threshold: float64(250 * time.Millisecond), FleetWide: true},
		{Name: "commit-lag", Kind: RuleLag, Metric: "eventual.tentative",
			Minus: "eventual.committed", Threshold: 256},
		{Name: "election-churn", Kind: RuleRate, Metric: "consensus.elections", Threshold: 3},
		{Name: "replica-staleness", Kind: RuleGauge, Metric: "site.stale.replicas", Threshold: 64},
	}
}

// evaluate applies each rule to every per-site observation (and the
// merged snapshot for fleet-wide rules), returning the alerts that
// fired, in rule order then site order — deterministic for a given
// snapshot.
func evaluate(rules []Rule, snap *telemetry.FleetSnapshot, states map[transport.Addr]*peerState, nowNS int64) []telemetry.Alert {
	var out []telemetry.Alert
	for _, r := range rules {
		for _, obs := range snap.Sites {
			if obs.Metrics == nil {
				continue
			}
			var prev map[string]uint64
			if st := states[transport.Addr(obs.Site)]; st != nil {
				prev = st.prev
			}
			if a, fired := applyRule(r, obs.Metrics, prev, obs.Site, nowNS); fired {
				out = append(out, a)
			}
		}
		if r.FleetWide && snap.Metrics != nil {
			// The merged snapshot has no previous-scrape baseline, so
			// rate rules stay per-site.
			if r.Kind != RuleRate {
				if a, fired := applyRule(r, snap.Metrics, nil, "fleet", nowNS); fired {
					out = append(out, a)
				}
			}
		}
	}
	return out
}

// applyRule evaluates one rule against one snapshot, reporting whether
// it fired.
func applyRule(r Rule, m *telemetry.MetricsSnapshot, prev map[string]uint64, site string, nowNS int64) (telemetry.Alert, bool) {
	var value float64
	var detail string
	switch r.Kind {
	case RuleP99:
		h := m.GetHistogram(r.Metric)
		if h.Count == 0 {
			return telemetry.Alert{}, false
		}
		value = float64(h.P99)
		detail = fmt.Sprintf("count=%d max=%d", h.Count, h.Max)
	case RuleLag:
		lead, trail := m.Get(r.Metric), m.Get(r.Minus)
		if lead <= trail {
			return telemetry.Alert{}, false
		}
		value = float64(lead - trail)
		detail = fmt.Sprintf("%s=%d %s=%d", r.Metric, lead, r.Minus, trail)
	case RuleRate:
		if prev == nil {
			// First scrape of this site: no baseline yet, so the total
			// would masquerade as a rate. Skip; the next scrape measures.
			return telemetry.Alert{}, false
		}
		cur := m.Get(r.Metric)
		base := prev[r.Metric]
		if cur <= base {
			return telemetry.Alert{}, false
		}
		value = float64(cur - base)
		detail = fmt.Sprintf("total=%d", cur)
	case RuleGauge:
		for _, g := range m.Gauges {
			if g.Name == r.Metric {
				value = float64(g.Value)
				break
			}
		}
	default:
		return telemetry.Alert{}, false
	}
	if value <= r.Threshold {
		return telemetry.Alert{}, false
	}
	return telemetry.Alert{
		Rule:      r.Name,
		Site:      site,
		Metric:    r.Metric,
		Value:     value,
		Threshold: r.Threshold,
		AtNS:      nowNS,
		Detail:    detail,
	}, true
}
