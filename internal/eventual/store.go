package eventual

import (
	"fmt"
	"sort"
	"sync"

	"obiwan/internal/codec"
	"obiwan/internal/heap"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/telemetry"
)

// Journal is the store's durability hook: each log mutation becomes one
// kind-tagged record appended write-ahead (the site layer frames them into
// its WAL). A nil journal keeps the store memory-only.
//
// Lock ordering: the store NEVER calls the journal while holding its state
// mutex, so the journal may freely call back into Store read methods
// (SnapshotRecords during compaction). A dedicated journal mutex keeps the
// record order consistent with the mutation order.
type Journal interface {
	AppendEventual(rec JournalRecord) error
}

// JournalRecord is one durable event of the update log.
type JournalRecord struct {
	Kind    uint64
	Payload []byte
}

// Journal record kinds.
const (
	// JBase enrolls (or re-bases) one tracked object: identity, committed
	// state, commit frontier, committed-history vector.
	JBase uint64 = 1
	// JUpdate is one update-log record (EncodeRecord format, CSN as known
	// at journal time).
	JUpdate uint64 = 2
	// JCommit assigns a CSN to a previously journaled update.
	JCommit uint64 = 3
	// JTruncate drops committed records at or below a CSN.
	JTruncate uint64 = 4
	// JMeta persists the store-wide version vector (journaled at
	// truncation and in compaction snapshots, so recovered clocks never
	// regress below ids that were minted then truncated).
	JMeta uint64 = 5
)

// VVPair is one version-vector component on the wire and in the journal.
type VVPair struct {
	Site  uint64
	Clock uint64
}

// journal payload structs (codec-registered).
type baseRec struct {
	OID      uint64
	TypeName string
	Primary  bool
	State    []byte
	CSN      uint64
	Hist     []VVPair
}

// CommitRec assigns one commit sequence number; it travels both in the
// journal and in anti-entropy batches.
type CommitRec struct {
	OID   uint64
	Clock uint64
	Site  uint64
	CSN   uint64
}

type truncRec struct {
	OID      uint64
	BelowCSN uint64
}

type metaRec struct {
	VV []VVPair
}

func init() {
	codec.MustRegister("obiwan.eventual.baseRec", baseRec{})
	codec.MustRegister("obiwan.eventual.CommitRec", CommitRec{})
	codec.MustRegister("obiwan.eventual.truncRec", truncRec{})
	codec.MustRegister("obiwan.eventual.metaRec", metaRec{})
}

// stormThreshold is the replayed-updates count in a single reorder above
// which the store flags a rollback storm to the flight recorder.
const stormThreshold = 32

// tracked is the store's view of one enrolled object.
type tracked struct {
	oid      objmodel.OID
	typeName string
	// primary: this site's heap masters the object, so this store assigns
	// its commit sequence numbers.
	primary bool
	// committedState is the object's state after the full committed
	// prefix — the rollback point.
	committedState []byte
	// frontier is the highest committed CSN reflected in committedState.
	frontier uint64
	// floor is the truncation watermark: committed updates with CSN <=
	// floor have been dropped from the retained list (their effect lives
	// only in committedState).
	floor uint64
	// committed retains updates with CSN in (floor, frontier], CSN order,
	// for shipping to lagging peers.
	committed []*Update
	// tentative holds uncommitted updates in UpdateID order; the live
	// object is committedState plus this suffix.
	tentative []*Update
	// hist is the committed-history vector: per minting site, the highest
	// clock among ALL updates ever committed for this object (including
	// truncated ones). An incoming update with ID.Clock <= hist[ID.Site]
	// is already folded into committedState (per-origin prefix delivery
	// plus commit-on-receipt at the primary guarantee this).
	hist map[uint16]uint64
}

// knows reports whether id is already present (retained or folded).
func (t *tracked) knows(id UpdateID) bool {
	if id.Clock <= t.hist[id.Site] {
		return true
	}
	for _, u := range t.committed {
		if u.ID == id {
			return true
		}
	}
	for _, u := range t.tentative {
		if u.ID == id {
			return true
		}
	}
	return false
}

// find returns the retained update with id, if any.
func (t *tracked) find(id UpdateID) *Update {
	for _, u := range t.tentative {
		if u.ID == id {
			return u
		}
	}
	for _, u := range t.committed {
		if u.ID == id {
			return u
		}
	}
	return nil
}

// StoreStats is a snapshot of the store's lifetime counters.
type StoreStats struct {
	Tentative uint64 // updates appended or received tentatively
	Committed uint64 // commit positions applied
	Rollbacks uint64 // rollback/replay events where applied order changed
	Replayed  uint64 // tentative updates re-applied during rollbacks
	NoOps     uint64 // update functions that declined (returned an error)
	Truncated uint64 // committed records dropped below the fleet frontier
}

// Store is one site's weakly-connected replication state: the ordered
// update log, per-object committed/tentative division, the version
// vector, and the peer commit-frontier table driving log truncation.
type Store struct {
	eng  *replication.Engine
	site uint16
	name string
	hub  *telemetry.Hub // nil-safe

	// jmu serializes mutate+journal pairs so journal order matches
	// mutation order; held across both, never while applying nothing.
	jmu     sync.Mutex
	journal Journal

	mu    sync.Mutex
	clock uint64
	vv    map[uint16]uint64
	objs  map[objmodel.OID]*tracked
	// peerFrontiers: peer site name -> oid -> committed frontier that peer
	// acknowledged, feeding fleet-wide truncation.
	peerFrontiers map[string]map[uint64]uint64
	stats         StoreStats

	met struct {
		tentative *telemetry.Counter
		committed *telemetry.Counter
		rollbacks *telemetry.Counter
		replayed  *telemetry.Counter
		sessions  *telemetry.Counter
		shipped   *telemetry.Counter
		truncated *telemetry.Counter
	}
}

// NewStore builds the eventual-consistency store over a site's engine.
// name is the site's name (peer-table key and flight-event tag); hub may
// be nil.
func NewStore(name string, eng *replication.Engine, hub *telemetry.Hub) *Store {
	s := &Store{
		eng:           eng,
		site:          eng.Heap().SiteID(),
		name:          name,
		hub:           hub,
		vv:            make(map[uint16]uint64),
		objs:          make(map[objmodel.OID]*tracked),
		peerFrontiers: make(map[string]map[uint64]uint64),
	}
	if m := hub.Metrics(); m != nil {
		s.met.tentative = m.Counter("eventual.tentative")
		s.met.committed = m.Counter("eventual.committed")
		s.met.rollbacks = m.Counter("eventual.rollbacks")
		s.met.replayed = m.Counter("eventual.replayed")
		s.met.sessions = m.Counter("eventual.sync.sessions")
		s.met.shipped = m.Counter("eventual.sync.shipped")
		s.met.truncated = m.Counter("eventual.truncated")
	}
	return s
}

// SetJournal installs (or clears) the durability journal. Install before
// any tracked mutation; recovery runs with the journal still unset.
func (s *Store) SetJournal(j Journal) {
	s.jmu.Lock()
	s.journal = j
	s.jmu.Unlock()
}

// Engine returns the underlying replication engine.
func (s *Store) Engine() *replication.Engine { return s.eng }

// Track enrolls obj — which must already live in the site's heap, as a
// master (making this site the object's primary) or a replica — into the
// update log. Its current state becomes the committed base at frontier 0,
// so every site must Track from an identical state (replicate first, then
// Track). Tracking an already tracked object is a no-op.
func (s *Store) Track(obj any) error {
	entry, ok := s.eng.Heap().EntryOf(obj)
	if !ok {
		return heap.ErrUnknownObject
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.mu.Lock()
	if _, dup := s.objs[entry.OID]; dup {
		s.mu.Unlock()
		return nil
	}
	state, err := s.eng.CaptureSnapshot(obj)
	if err != nil {
		s.mu.Unlock()
		return fmt.Errorf("eventual: track %v: %w", entry.OID, err)
	}
	t := &tracked{
		oid:            entry.OID,
		typeName:       entry.TypeName,
		primary:        entry.Role == heap.Master,
		committedState: state,
		hist:           make(map[uint16]uint64),
	}
	s.objs[entry.OID] = t
	rec := s.encodeBase(t)
	s.mu.Unlock()
	return s.journalLocked([]JournalRecord{rec})
}

// Managed reports whether oid is enrolled in the update log. Safe for use
// as a consistency-policy predicate (consistency.Tentative).
func (s *Store) Managed(oid objmodel.OID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objs[oid]
	return ok
}

// Tracked returns the enrolled OIDs in sorted order.
func (s *Store) Tracked() []objmodel.OID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]objmodel.OID, 0, len(s.objs))
	for oid := range s.objs {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Primary reports whether this site assigns commit sequence numbers for
// oid.
func (s *Store) Primary(oid objmodel.OID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.objs[oid]
	return ok && t.primary
}

// Append creates a local update — fn(args) against obj — stamps it with
// the next logical clock, applies it tentatively, and (if this site is
// the object's primary) commits it immediately. This is the whole
// disconnected-write path: it never touches the network and never fails
// for connectivity reasons.
func (s *Store) Append(obj any, fn string, args []byte) (UpdateID, error) {
	entry, ok := s.eng.Heap().EntryOf(obj)
	if !ok {
		return UpdateID{}, heap.ErrUnknownObject
	}
	if _, err := lookupUpdate(fn); err != nil {
		return UpdateID{}, err
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.mu.Lock()
	t, tracked := s.objs[entry.OID]
	if !tracked {
		s.mu.Unlock()
		return UpdateID{}, fmt.Errorf("%w: %v", ErrNotTracked, entry.OID)
	}
	s.clock++
	u := &Update{
		ID:   UpdateID{Clock: s.clock, Site: s.site},
		OID:  uint64(entry.OID),
		Fn:   fn,
		Args: args,
	}
	s.vv[s.site] = s.clock
	recs, err := s.ingestLocked(t, []*Update{u}, nil)
	if err != nil {
		s.mu.Unlock()
		return UpdateID{}, err
	}
	s.mu.Unlock()
	if err := s.journalLocked(recs); err != nil {
		return UpdateID{}, err
	}
	return u.ID, nil
}

// ingestLocked folds new updates and commit records into one object's
// log and rebuilds its live state. Caller holds s.mu (and s.jmu). The
// returned journal records must be appended by the caller after releasing
// s.mu. Validation runs before any mutation, so an error leaves the
// object untouched.
func (s *Store) ingestLocked(t *tracked, updates []*Update, commits []CommitRec) ([]JournalRecord, error) {
	// ---- Phase A: validate and plan (no mutation). ----
	var fresh []*Update
	for _, u := range updates {
		if _, err := lookupUpdate(u.Fn); err != nil {
			return nil, err
		}
		if t.knows(u.ID) {
			continue
		}
		fresh = append(fresh, u)
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].ID.Less(fresh[j].ID) })

	// The commit queue: explicit commit records plus fresh pre-committed
	// updates, ordered by CSN, checked for contiguity above the frontier.
	type commitPlan struct {
		id  UpdateID
		csn uint64
	}
	var queue []commitPlan
	for _, c := range commits {
		queue = append(queue, commitPlan{id: UpdateID{Clock: c.Clock, Site: uint16(c.Site)}, csn: c.CSN})
	}
	for _, u := range fresh {
		if u.CSN != 0 {
			queue = append(queue, commitPlan{id: u.ID, csn: u.CSN})
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i].csn < queue[j].csn })
	next := t.frontier
	var toCommit []commitPlan
	for _, c := range queue {
		if c.csn <= next {
			continue // already reflected
		}
		if c.csn != next+1 {
			return nil, fmt.Errorf("%w: %v csn %d after frontier %d", ErrCommitGap, t.oid, c.csn, next)
		}
		// The referenced update must be present: fresh or retained.
		found := t.find(c.id) != nil
		for _, u := range fresh {
			if u.ID == c.id {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: %v csn %d commits unknown update %v", ErrCommitGap, t.oid, c.csn, c.id)
		}
		toCommit = append(toCommit, c)
		next = c.csn
	}

	// ---- Phase B: list surgery. ----
	appendOnly := true
	for _, u := range fresh {
		v := *u
		v.CSN = 0
		if n := len(t.tentative); n > 0 && !t.tentative[n-1].ID.Less(v.ID) {
			appendOnly = false
		}
		t.tentative = append(t.tentative, &v)
		s.stats.Tentative++
		s.met.tentative.Inc()
		if v.ID.Clock > s.vv[v.ID.Site] {
			s.vv[v.ID.Site] = v.ID.Clock
		}
		if v.ID.Clock > s.clock {
			s.clock = v.ID.Clock
		}
	}
	sort.Slice(t.tentative, func(i, j int) bool { return t.tentative[i].ID.Less(t.tentative[j].ID) })

	commitSet := make(map[UpdateID]uint64, len(toCommit))
	for _, c := range toCommit {
		commitSet[c.id] = c.csn
	}
	var committing []*Update
	if len(toCommit) > 0 {
		rest := t.tentative[:0]
		for _, u := range t.tentative {
			if csn, ok := commitSet[u.ID]; ok {
				u.CSN = csn
				committing = append(committing, u)
				continue
			}
			rest = append(rest, u)
		}
		t.tentative = rest
		sort.Slice(committing, func(i, j int) bool { return committing[i].CSN < committing[j].CSN })
	}

	// Primary commit: whatever remains tentative at the primary commits
	// now, in log (UpdateID) order — Bayou's commit-on-receipt.
	if t.primary {
		for _, u := range t.tentative {
			u.CSN = next + 1
			next = u.CSN
			committing = append(committing, u)
		}
		t.tentative = t.tentative[:0]
	}

	// ---- Phase C: state rebuild. ----
	entry, ok := s.eng.Heap().Get(t.oid)
	if !ok {
		return nil, fmt.Errorf("eventual: tracked object %v missing from heap", t.oid)
	}
	switch {
	case len(committing) > 0:
		// The committed prefix advances: roll back to it, extend it, then
		// replay the tentative suffix.
		if err := s.eng.RestoreSnapshot(entry.Obj, t.committedState); err != nil {
			return nil, fmt.Errorf("eventual: rollback %v: %w", t.oid, err)
		}
		for _, u := range committing {
			s.applyFn(entry, u)
			t.committed = append(t.committed, u)
			t.frontier = u.CSN
			if u.ID.Clock > t.hist[u.ID.Site] {
				t.hist[u.ID.Site] = u.ID.Clock
			}
			s.stats.Committed++
			s.met.committed.Inc()
		}
		state, err := s.eng.CaptureSnapshot(entry.Obj)
		if err != nil {
			return nil, fmt.Errorf("eventual: capture committed %v: %w", t.oid, err)
		}
		t.committedState = state
		s.replaySuffix(entry, t)
	case !appendOnly:
		// Earlier-ordered tentative updates arrived: full rollback/replay.
		if err := s.eng.RestoreSnapshot(entry.Obj, t.committedState); err != nil {
			return nil, fmt.Errorf("eventual: rollback %v: %w", t.oid, err)
		}
		s.replaySuffix(entry, t)
	default:
		// Fast path: new updates extend the applied order — apply in place.
		for _, u := range fresh {
			if v := t.find(u.ID); v != nil {
				s.applyFn(entry, v)
			}
		}
	}

	// ---- Phase D: journal records (appended by caller, post-unlock). ----
	var recs []JournalRecord
	for _, u := range fresh {
		recs = append(recs, JournalRecord{Kind: JUpdate, Payload: EncodeRecord(t.find(u.ID))})
	}
	for _, c := range toCommit {
		freshToo := false
		for _, u := range fresh {
			if u.ID == c.id {
				freshToo = true // CSN already rode the JUpdate record
			}
		}
		if !freshToo {
			recs = append(recs, s.encodeCommit(t.oid, c.id, c.csn))
		}
	}
	if t.primary {
		for _, u := range committing {
			if _, planned := commitSet[u.ID]; planned {
				continue // arrived pre-committed; handled above
			}
			freshToo := false
			for _, f := range fresh {
				if f.ID == u.ID {
					freshToo = true
				}
			}
			if !freshToo {
				recs = append(recs, s.encodeCommit(t.oid, u.ID, u.CSN))
			}
		}
	}
	return recs, nil
}

// replaySuffix re-applies the whole tentative suffix after a rollback and
// accounts for the reorder.
func (s *Store) replaySuffix(entry *heap.Entry, t *tracked) {
	for _, u := range t.tentative {
		s.applyFn(entry, u)
	}
	s.stats.Rollbacks++
	s.met.rollbacks.Inc()
	n := uint64(len(t.tentative))
	s.stats.Replayed += n
	s.met.replayed.Add(n)
	if n > stormThreshold {
		if f := s.hub.Flight(); f != nil {
			f.Record(telemetry.FlightEvent{
				Kind:   "eventual.rollback-storm",
				OID:    uint64(t.oid),
				Detail: fmt.Sprintf("replayed=%d tentative updates after reorder", n),
			})
			f.Dump("eventual rollback storm")
		}
	}
}

// applyFn runs one update function against the live object. A function
// error is a *deterministic decline* — the update stays in the log and
// declines identically at every site — not an infrastructure failure.
func (s *Store) applyFn(entry *heap.Entry, u *Update) {
	fn, err := lookupUpdate(u.Fn)
	if err != nil {
		// Validated at ingest; losing the registration mid-run would
		// diverge, so treat as a decline and count it.
		s.stats.NoOps++
		return
	}
	entry.LockState()
	err = fn(entry.Obj, u.Args)
	entry.UnlockState()
	if err != nil {
		s.stats.NoOps++
	}
}

// CommittedState returns the object's committed-prefix state bytes and
// commit frontier — the stable, everywhere-identical part of its history.
func (s *Store) CommittedState(oid objmodel.OID) ([]byte, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.objs[oid]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %v", ErrNotTracked, oid)
	}
	out := make([]byte, len(t.committedState))
	copy(out, t.committedState)
	return out, t.frontier, nil
}

// TentativeCount returns how many updates for oid remain uncommitted.
func (s *Store) TentativeCount(oid objmodel.OID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.objs[oid]
	if !ok {
		return 0
	}
	return len(t.tentative)
}

// VersionVector returns the store's version vector, sorted by site.
func (s *Store) VersionVector() []VVPair {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vvLocked()
}

func (s *Store) vvLocked() []VVPair {
	out := make([]VVPair, 0, len(s.vv))
	for site, clock := range s.vv {
		out = append(out, VVPair{Site: uint64(site), Clock: clock})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Stats returns the store's lifetime counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// journalLocked appends records in order. Caller holds s.jmu but NOT
// s.mu (the journal may re-enter Store read methods).
func (s *Store) journalLocked(recs []JournalRecord) error {
	if s.journal == nil || len(recs) == 0 {
		return nil
	}
	for _, rec := range recs {
		if err := s.journal.AppendEventual(rec); err != nil {
			return fmt.Errorf("eventual: journal: %w", err)
		}
	}
	return nil
}

func (s *Store) encodeBase(t *tracked) JournalRecord {
	rec := &baseRec{
		OID:      uint64(t.oid),
		TypeName: t.typeName,
		Primary:  t.primary,
		State:    t.committedState,
		CSN:      t.frontier,
		Hist:     histPairs(t.hist),
	}
	return JournalRecord{Kind: JBase, Payload: s.encodePayload(rec)}
}

func (s *Store) encodeCommit(oid objmodel.OID, id UpdateID, csn uint64) JournalRecord {
	rec := &CommitRec{OID: uint64(oid), Clock: id.Clock, Site: uint64(id.Site), CSN: csn}
	return JournalRecord{Kind: JCommit, Payload: s.encodePayload(rec)}
}

func (s *Store) encodeMetaLocked() JournalRecord {
	return JournalRecord{Kind: JMeta, Payload: s.encodePayload(&metaRec{VV: s.vvLocked()})}
}

func (s *Store) encodePayload(rec any) []byte {
	enc := codec.NewEncoder(128)
	if err := enc.EncodeStruct(s.reg(), rec); err != nil {
		// Registered flat structs over the reflection codec cannot fail;
		// a failure here is a programming error.
		panic(fmt.Sprintf("eventual: encode journal payload: %v", err))
	}
	return enc.Bytes()
}

func (s *Store) reg() *codec.Registry { return s.eng.Runtime().Registry() }

func histPairs(h map[uint16]uint64) []VVPair {
	out := make([]VVPair, 0, len(h))
	for site, clock := range h {
		out = append(out, VVPair{Site: uint64(site), Clock: clock})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// RecordPeerFrontiers notes the commit frontiers peer acknowledged in a
// sync session, feeding fleet-wide truncation.
func (s *Store) RecordPeerFrontiers(peer string, frontiers []FrontierCSN) {
	if peer == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.peerFrontiers[peer]
	if !ok {
		m = make(map[uint64]uint64)
		s.peerFrontiers[peer] = m
	}
	for _, f := range frontiers {
		if f.CSN > m[f.OID] {
			m[f.OID] = f.CSN
		}
	}
}

// TruncateCommitted drops retained committed records at or below the
// fleet-wide commit frontier — the minimum frontier acknowledged across
// every peer this store has synced with (and its own). With no recorded
// peers nothing is dropped. Returns the number of records dropped.
//
// A peer that somehow regresses below the truncation floor (or a brand-new
// peer) is caught up with a full-state base sync instead of a log diff
// (see BuildBatch).
func (s *Store) TruncateCommitted() (int, error) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.mu.Lock()
	if len(s.peerFrontiers) == 0 {
		s.mu.Unlock()
		return 0, nil
	}
	var recs []JournalRecord
	dropped := 0
	for oid, t := range s.objs {
		fleet := t.frontier
		for _, m := range s.peerFrontiers {
			if m[uint64(oid)] < fleet {
				fleet = m[uint64(oid)]
			}
		}
		if fleet <= t.floor {
			continue
		}
		keep := t.committed[:0]
		for _, u := range t.committed {
			if u.CSN <= fleet {
				dropped++
				continue
			}
			keep = append(keep, u)
		}
		t.committed = keep
		t.floor = fleet
		recs = append(recs, JournalRecord{Kind: JTruncate, Payload: s.encodePayload(&truncRec{OID: uint64(oid), BelowCSN: fleet})})
	}
	if dropped > 0 {
		s.stats.Truncated += uint64(dropped)
		s.met.truncated.Add(uint64(dropped))
		recs = append(recs, s.encodeMetaLocked())
	}
	s.mu.Unlock()
	if err := s.journalLocked(recs); err != nil {
		return dropped, err
	}
	return dropped, nil
}

// SnapshotRecords serializes the store's full durable state for WAL
// compaction: the version vector, then per object its base (committed
// state at the frontier) and the retained log (committed with CSNs, then
// tentative). Safe to call from the compactor while mutations journal
// concurrently — replaying a stale log suffix over this snapshot is
// idempotent (updates dedupe by id, commits by CSN).
func (s *Store) SnapshotRecords() []JournalRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := []JournalRecord{s.encodeMetaLocked()}
	oids := make([]objmodel.OID, 0, len(s.objs))
	for oid := range s.objs {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, oid := range oids {
		t := s.objs[oid]
		recs = append(recs, s.encodeBase(t))
		for _, u := range t.committed {
			recs = append(recs, JournalRecord{Kind: JUpdate, Payload: EncodeRecord(u)})
		}
		for _, u := range t.tentative {
			recs = append(recs, JournalRecord{Kind: JUpdate, Payload: EncodeRecord(u)})
		}
	}
	return recs
}

// Recover replays journal records (in append order) into a fresh store,
// recreating tracked heap entries that did not survive by other means.
// Must run before SetJournal — recovery is not re-journaled; the
// post-recovery compaction snapshot captures the rebuilt state instead.
func (s *Store) Recover(recs []JournalRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, rec := range recs {
		if err := s.recoverOne(rec); err != nil {
			return fmt.Errorf("eventual: recover record %d: %w", i, err)
		}
	}
	return nil
}

func (s *Store) recoverOne(rec JournalRecord) error {
	switch rec.Kind {
	case JBase:
		var b baseRec
		if err := codec.NewDecoder(rec.Payload).DecodeStruct(s.reg(), &b); err != nil {
			return err
		}
		return s.recoverBase(&b)
	case JUpdate:
		u, err := DecodeRecord(rec.Payload)
		if err != nil {
			return err
		}
		t, ok := s.objs[objmodel.OID(u.OID)]
		if !ok {
			return fmt.Errorf("%w: update %v for untracked %d", ErrNotTracked, u.ID, u.OID)
		}
		if u.CSN != 0 && u.CSN <= t.frontier {
			// Retained history below the base frontier: list-only restore,
			// its effect is already inside the recovered committed state.
			if !t.knows(u.ID) {
				t.committed = append(t.committed, u)
				sort.Slice(t.committed, func(i, j int) bool { return t.committed[i].CSN < t.committed[j].CSN })
				if u.ID.Clock > t.hist[u.ID.Site] {
					t.hist[u.ID.Site] = u.ID.Clock
				}
				s.bumpVVLocked(u.ID)
			}
			return nil
		}
		_, err = s.ingestLocked(t, []*Update{u}, nil)
		return err
	case JCommit:
		var c CommitRec
		if err := codec.NewDecoder(rec.Payload).DecodeStruct(s.reg(), &c); err != nil {
			return err
		}
		t, ok := s.objs[objmodel.OID(c.OID)]
		if !ok {
			return fmt.Errorf("%w: commit csn %d for untracked %d", ErrNotTracked, c.CSN, c.OID)
		}
		_, err := s.ingestLocked(t, nil, []CommitRec{c})
		return err
	case JTruncate:
		var tr truncRec
		if err := codec.NewDecoder(rec.Payload).DecodeStruct(s.reg(), &tr); err != nil {
			return err
		}
		t, ok := s.objs[objmodel.OID(tr.OID)]
		if !ok {
			return nil
		}
		keep := t.committed[:0]
		for _, u := range t.committed {
			if u.CSN <= tr.BelowCSN {
				continue
			}
			keep = append(keep, u)
		}
		t.committed = keep
		if tr.BelowCSN > t.floor {
			t.floor = tr.BelowCSN
		}
		return nil
	case JMeta:
		var m metaRec
		if err := codec.NewDecoder(rec.Payload).DecodeStruct(s.reg(), &m); err != nil {
			return err
		}
		for _, p := range m.VV {
			s.bumpVVLocked(UpdateID{Clock: p.Clock, Site: uint16(p.Site)})
		}
		return nil
	default:
		return fmt.Errorf("eventual: unknown journal record kind %d", rec.Kind)
	}
}

// recoverBase recreates one tracked object from its base record: the heap
// entry if missing, then committed state, frontier, and history vector.
func (s *Store) recoverBase(b *baseRec) error {
	oid := objmodel.OID(b.OID)
	h := s.eng.Heap()
	entry, ok := h.Get(oid)
	if !ok {
		info, known := objmodel.InfoByName(b.TypeName)
		if !known {
			return fmt.Errorf("eventual: recover base %d: unknown type %q", b.OID, b.TypeName)
		}
		obj := info.New()
		if b.Primary {
			if err := h.AddMasterWithOID(obj, oid, b.TypeName, 1); err != nil {
				return fmt.Errorf("eventual: recover base %d: %w", b.OID, err)
			}
		} else {
			h.AddReplica(obj, oid, b.TypeName, 1)
		}
		entry, _ = h.Get(oid)
	}
	if err := s.eng.RestoreSnapshot(entry.Obj, b.State); err != nil {
		return fmt.Errorf("eventual: recover base %d: %w", b.OID, err)
	}
	t, known := s.objs[oid]
	if !known {
		t = &tracked{oid: oid, typeName: b.TypeName, primary: b.Primary, hist: make(map[uint16]uint64)}
		s.objs[oid] = t
	}
	t.committedState = append([]byte(nil), b.State...)
	t.frontier = b.CSN
	t.floor = b.CSN
	// Re-basing folds every committed-or-older record into the new base.
	keep := t.committed[:0]
	for _, u := range t.committed {
		if u.CSN != 0 && u.CSN <= b.CSN {
			continue
		}
		keep = append(keep, u)
	}
	t.committed = keep
	for _, p := range b.Hist {
		if p.Clock > t.hist[uint16(p.Site)] {
			t.hist[uint16(p.Site)] = p.Clock
		}
	}
	// Drop tentative updates the base has folded in (see tracked.hist).
	rest := t.tentative[:0]
	for _, u := range t.tentative {
		if u.ID.Clock <= t.hist[u.ID.Site] {
			continue
		}
		rest = append(rest, u)
	}
	t.tentative = rest
	// Replay the surviving suffix onto the fresh base.
	for _, u := range t.committed {
		s.applyFn(entry, u)
	}
	if len(t.committed) > 0 {
		state, err := s.eng.CaptureSnapshot(entry.Obj)
		if err != nil {
			return err
		}
		t.committedState = state
		t.frontier = t.committed[len(t.committed)-1].CSN
	}
	for _, u := range t.tentative {
		s.applyFn(entry, u)
	}
	return nil
}

func (s *Store) bumpVVLocked(id UpdateID) {
	if id.Clock > s.vv[id.Site] {
		s.vv[id.Site] = id.Clock
	}
	if id.Clock > s.clock {
		s.clock = id.Clock
	}
}
