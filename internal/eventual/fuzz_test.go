package eventual

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeRecord drives the update-record codec over arbitrary bytes —
// the torn and bit-flipped records a crashed site's WAL (or a corrupted
// sync batch) can present. Mirroring the WAL's frame fuzzers, it asserts
// the record format's fail-closed contract:
//
//   - never panic, never over-read;
//   - anything that decodes re-encodes to the exact input bytes (the
//     format is canonical), and round-trips again to an equal Update;
//   - everything else fails with ErrBadRecord — no partial Update ever
//     escapes.
func FuzzDecodeRecord(f *testing.F) {
	clean := EncodeRecord(&Update{
		ID:   UpdateID{Clock: 7, Site: 3},
		OID:  0x30001,
		Fn:   "evtest.append",
		Args: []byte("payload"),
		CSN:  2,
	})
	f.Add(clean)
	f.Add(clean[:len(clean)-3]) // torn tail
	flipped := bytes.Clone(clean)
	flipped[len(flipped)-1] ^= 0xFF // CRC flip
	f.Add(flipped)
	bodyFlip := bytes.Clone(clean)
	bodyFlip[1] ^= 0x80 // body flip under intact length
	f.Add(bodyFlip)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF}) // absurd uvarints
	f.Add([]byte{})
	f.Add([]byte{recordVersion})

	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrBadRecord) {
				t.Fatalf("decode error %v does not wrap ErrBadRecord", err)
			}
			if u != nil {
				t.Fatal("partial update escaped a failed decode")
			}
			return
		}
		if u.ID.IsZero() {
			t.Fatal("decoded update with zero id")
		}
		re := EncodeRecord(u)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical: %x -> %x", data, re)
		}
		u2, err := DecodeRecord(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if u2.ID != u.ID || u2.OID != u.OID || u2.Fn != u.Fn || u2.CSN != u.CSN || !bytes.Equal(u2.Args, u.Args) {
			t.Fatal("round-trip changed the update")
		}
	})
}

// FuzzRecordRoundTrip builds updates from fuzzed fields and checks
// encode→decode is the identity — including empty args, huge clocks, and
// update-function names with arbitrary bytes.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(1), uint64(1), "evtest.append", []byte("x"), uint64(0))
	f.Add(uint64(1<<63), uint16(0xFFFF), uint64(1<<40), "f", []byte{}, uint64(1<<32))
	f.Add(uint64(3), uint16(2), uint64(9), "", []byte("args"), uint64(7))

	f.Fuzz(func(t *testing.T, clock uint64, site uint16, oid uint64, fn string, args []byte, csn uint64) {
		if clock == 0 && site == 0 {
			return // zero ids are invalid by construction
		}
		in := &Update{ID: UpdateID{Clock: clock, Site: site}, OID: oid, Fn: fn, Args: args, CSN: csn}
		enc := EncodeRecord(in)
		out, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decode of freshly encoded record: %v", err)
		}
		if out.ID != in.ID || out.OID != in.OID || out.Fn != in.Fn || out.CSN != in.CSN {
			t.Fatal("round trip changed fields")
		}
		if len(in.Args) != len(out.Args) || (len(in.Args) > 0 && !bytes.Equal(in.Args, out.Args)) {
			t.Fatal("round trip changed args")
		}
	})
}
