// Package eventual implements weakly-connected replication for OBIWAN in
// the style of Bayou (Terry et al., SOSP '95): the robustness story the
// paper's mobility pitch needs. Instead of shipping raw replica state and
// resolving concurrent offline edits by last-writer-wins, every edit is a
// deterministic **update function** appended to a per-site ordered log and
// stamped with a `<logical clock, site>` id. Replicas apply updates
// *tentatively* — immediately, against whatever they currently know — and
// roll back and replay when anti-entropy delivers earlier-ordered updates
// from elsewhere. The object's master (the *primary*) assigns commit
// sequence numbers in arrival order, so the committed prefix is stable and
// byte-identical at every site that has heard of it, while the tentative
// suffix converges as version vectors equalize.
//
// The pieces, mapped to the Bayou vocabulary:
//
//   - Update function (this file): a registered, deterministic function
//     run against an object's current state. "Meet at 9 if the room is
//     free at 9, else 10, else 11" — the conflict resolver rides inside
//     the update, so concurrent offline edits merge automatically instead
//     of silently losing work.
//   - Update log (log.go / store.go): per site, one ordered log across
//     the tracked objects. Order is commit sequence number for the
//     committed prefix, then `<clock, site>` for the tentative suffix.
//   - Rollback/replay (store.go): when sync changes the order, the object
//     rolls back to its committed state and replays; the live object is
//     always `committed state + tentative suffix in log order`.
//   - Primary commit (store.go): the site whose heap masters the object
//     assigns CSNs as updates reach it; commit records propagate through
//     the same anti-entropy sessions as the updates themselves.
//   - Anti-entropy (sync.go): version-vector exchange, peer-to-peer as
//     well as replica↔primary, in any pairwise order. Each session ships
//     exactly the updates and commit records the receiver lacks.
//   - Durability (journal hooks in store.go): every log mutation is
//     journaled write-ahead through the site's WAL, so tentative updates
//     survive crash+restart.
//
// # Determinism contract
//
// Convergence to *byte-identical* state rests on update functions being
// deterministic: given the same object state and the same argument bytes,
// an update function must make the same mutation at every site. Functions
// must not read clocks, random sources, site identity, or any state
// outside the target object; they must be registered under the same name
// with identical semantics at every site (same discipline as
// objmodel.RegisterType). Arguments are opaque bytes — encode them with
// the codec package so the encoding itself is deterministic.
package eventual

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors.
var (
	// ErrUnknownUpdateFunc is returned when an update names a function this
	// site has not registered. The update cannot be applied — and because
	// updates must apply identically everywhere, the whole sync batch
	// carrying it is rejected.
	ErrUnknownUpdateFunc = errors.New("eventual: unknown update function")
	// ErrNotTracked is returned for operations on objects never enrolled
	// with Store.Track.
	ErrNotTracked = errors.New("eventual: object not tracked")
	// ErrCommitGap is returned when a commit record would leave a hole in
	// the commit sequence — the sender violated CSN-order delivery.
	ErrCommitGap = errors.New("eventual: commit sequence gap")
	// ErrNotPrimary is returned by operations reserved for the object's
	// primary (the site mastering it).
	ErrNotPrimary = errors.New("eventual: not the primary for object")
)

// UpdateID is the global identity and tentative-order timestamp of one
// update: a Lamport clock paired with the minting site's id. Clocks
// advance on receipt, so an update created after a sync sorts after
// everything learned in it — causality survives pairwise sync in any
// order. Site breaks ties, making the order total.
type UpdateID struct {
	// Clock is the logical (Lamport) timestamp.
	Clock uint64
	// Site is the minting site's heap id (tiebreaker).
	Site uint16
}

// IsZero reports whether id is the zero identity.
func (id UpdateID) IsZero() bool { return id.Clock == 0 && id.Site == 0 }

// Less orders ids by (Clock, Site) — the tentative total order.
func (id UpdateID) Less(o UpdateID) bool {
	if id.Clock != o.Clock {
		return id.Clock < o.Clock
	}
	return id.Site < o.Site
}

func (id UpdateID) String() string {
	return fmt.Sprintf("<%d,%d>", id.Clock, id.Site)
}

// Update is one logged update: a deterministic update function applied to
// one object. CSN is zero while tentative; the primary assigns the final
// commit position.
type Update struct {
	// ID is the update's global identity and tentative-order stamp.
	ID UpdateID
	// OID identifies the target object.
	OID uint64
	// Fn names the registered update function.
	Fn string
	// Args is the function's opaque encoded argument payload.
	Args []byte
	// CSN is the commit sequence number assigned by the object's primary
	// (0 = tentative). CSNs are contiguous per object, starting at 1.
	CSN uint64
}

// Committed reports whether the update holds a commit position.
func (u *Update) Committed() bool { return u.CSN != 0 }

// UpdateFunc is a deterministic update function: it mutates obj in place
// based on obj's current state and args. An error aborts the applying
// operation (the update stays in the log and is retried on replay); errors
// must themselves be deterministic or sites will diverge.
type UpdateFunc func(obj any, args []byte) error

var (
	fnMu  sync.RWMutex
	fnReg = make(map[string]UpdateFunc)
)

// RegisterUpdate binds name to fn in the process-global update-function
// registry. Every site of a deployment must register the same names with
// identical semantics (an init function is the conventional place).
// Re-registering a name is an error.
func RegisterUpdate(name string, fn UpdateFunc) error {
	if name == "" {
		return errors.New("eventual: empty update-function name")
	}
	if fn == nil {
		return fmt.Errorf("eventual: nil update function for %q", name)
	}
	fnMu.Lock()
	defer fnMu.Unlock()
	if _, dup := fnReg[name]; dup {
		return fmt.Errorf("eventual: update function %q already registered", name)
	}
	fnReg[name] = fn
	return nil
}

// MustRegisterUpdate is RegisterUpdate but panics on error.
func MustRegisterUpdate(name string, fn UpdateFunc) {
	if err := RegisterUpdate(name, fn); err != nil {
		panic(err)
	}
}

// HasUpdate reports whether name is a registered update function.
func HasUpdate(name string) bool {
	fnMu.RLock()
	defer fnMu.RUnlock()
	_, ok := fnReg[name]
	return ok
}

// ApplyRegistered runs the registered update function name against obj
// directly — for callers applying an update outside any log (e.g. the
// transaction manager's fallback on unmanaged objects).
func ApplyRegistered(obj any, name string, args []byte) error {
	fn, err := lookupUpdate(name)
	if err != nil {
		return err
	}
	return fn(obj, args)
}

// lookupUpdate resolves a registered update function.
func lookupUpdate(name string) (UpdateFunc, error) {
	fnMu.RLock()
	fn, ok := fnReg[name]
	fnMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownUpdateFunc, name)
	}
	return fn, nil
}

// RegisteredUpdates returns the sorted names of all registered update
// functions (diagnostics).
func RegisteredUpdates() []string {
	fnMu.RLock()
	defer fnMu.RUnlock()
	out := make([]string, 0, len(fnReg))
	for name := range fnReg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
