package eventual

import (
	"fmt"
	"sort"

	"obiwan/internal/codec"
	"obiwan/internal/objmodel"
)

// Anti-entropy: pairwise version-vector exchange. A session between sites
// A and B is two messages — A sends its Summary plus the Batch B is
// missing (computed from B's last known summary, or requested fresh), B
// applies it, replies with the Batch A is missing plus its post-apply
// commit frontiers. Updates flow as self-checking records (EncodeRecord),
// commit positions as CommitRec, and peers that have fallen below the
// sender's truncation floor get a full-state BaseSync instead of a log
// diff. Sessions are symmetric (peer-to-peer works as well as
// replica↔primary) and compose in any pairwise order: ids are Lamport
// stamps, so anything learned in one session sorts before anything minted
// after it.

// FrontierCSN reports one object's committed frontier in a summary.
type FrontierCSN struct {
	OID uint64
	CSN uint64
}

// Summary is one store's sync state: its version vector plus per-object
// commit frontiers.
type Summary struct {
	// Site is the sending site's name.
	Site string
	// VV is the store's version vector.
	VV []VVPair
	// Frontiers lists each tracked object's committed frontier.
	Frontiers []FrontierCSN
}

// BaseSync is a full-state catch-up for one object: sent when the
// receiver's frontier lies below the sender's truncation floor, so the
// missing committed updates no longer exist as log records.
type BaseSync struct {
	OID      uint64
	TypeName string
	// State is the committed state at CSN.
	State []byte
	// CSN is the commit frontier State reflects.
	CSN uint64
	// Hist is the object's committed-history vector at CSN: per site, the
	// highest update clock folded into State. Receivers use it to discard
	// local updates the base already incorporates.
	Hist []VVPair
}

// Batch carries everything one side of a session ships: update records,
// commit records, and base syncs for too-far-behind objects.
type Batch struct {
	// Updates are EncodeRecord-format update records (CSN embedded for
	// updates the sender already knows committed).
	Updates [][]byte
	// Commits assign CSNs to updates the receiver already holds.
	Commits []CommitRec
	// Bases are full-state catch-ups past the truncation floor.
	Bases []BaseSync
}

// Empty reports whether the batch ships nothing.
func (b *Batch) Empty() bool {
	return b == nil || (len(b.Updates) == 0 && len(b.Commits) == 0 && len(b.Bases) == 0)
}

// SyncRequest opens a session: the caller's summary plus the batch it
// believes the callee is missing.
type SyncRequest struct {
	From    string
	Summary Summary
	Batch   Batch
}

// SyncReply closes a session: the callee's batch for the caller plus the
// callee's post-apply frontiers (feeding the caller's truncation table).
type SyncReply struct {
	From      string
	Frontiers []FrontierCSN
	Batch     Batch
}

// SyncStats summarizes what one ApplyBatch absorbed.
type SyncStats struct {
	Updates int // fresh updates applied
	Commits int // commit records applied (excluding CSNs riding updates)
	Bases   int // base syncs applied
	Skipped int // records for objects this store does not track
}

func init() {
	codec.MustRegister("obiwan.eventual.FrontierCSN", FrontierCSN{})
	codec.MustRegister("obiwan.eventual.Summary", Summary{})
	codec.MustRegister("obiwan.eventual.BaseSync", BaseSync{})
	codec.MustRegister("obiwan.eventual.Batch", Batch{})
	codec.MustRegister("obiwan.eventual.SyncRequest", SyncRequest{})
	codec.MustRegister("obiwan.eventual.SyncReply", SyncReply{})
}

// Summary builds this store's current sync summary.
func (s *Store) Summary() *Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := &Summary{Site: s.name, VV: s.vvLocked()}
	oids := make([]objmodel.OID, 0, len(s.objs))
	for oid := range s.objs {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, oid := range oids {
		sum.Frontiers = append(sum.Frontiers, FrontierCSN{OID: uint64(oid), CSN: s.objs[oid].frontier})
	}
	return sum
}

// BuildBatch computes the batch peer is missing, per its summary: every
// retained update whose id lies above peer's version vector, a commit
// record for every retained committed update above peer's frontier that
// peer already holds, and a BaseSync for each object whose frontier has
// fallen below this store's truncation floor.
func (s *Store) BuildBatch(peer *Summary) *Batch {
	peerVV := make(map[uint16]uint64, len(peer.VV))
	for _, p := range peer.VV {
		peerVV[uint16(p.Site)] = p.Clock
	}
	peerFront := make(map[uint64]uint64, len(peer.Frontiers))
	for _, f := range peer.Frontiers {
		peerFront[f.OID] = f.CSN
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := &Batch{}
	oids := make([]objmodel.OID, 0, len(s.objs))
	for oid := range s.objs {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	shipped := uint64(0)
	for _, oid := range oids {
		t := s.objs[oid]
		pf := peerFront[uint64(oid)]
		if pf < t.floor {
			// The log records peer needs are truncated: full-state resync.
			b.Bases = append(b.Bases, BaseSync{
				OID:      uint64(oid),
				TypeName: t.typeName,
				State:    append([]byte(nil), t.committedState...),
				CSN:      t.frontier,
				Hist:     histPairs(t.hist),
			})
			pf = t.frontier
		}
		for _, u := range t.committed {
			if u.CSN <= pf {
				continue
			}
			if u.ID.Clock > peerVV[u.ID.Site] {
				b.Updates = append(b.Updates, EncodeRecord(u))
				shipped++
			} else {
				b.Commits = append(b.Commits, CommitRec{OID: u.OID, Clock: u.ID.Clock, Site: uint64(u.ID.Site), CSN: u.CSN})
			}
		}
		for _, u := range t.tentative {
			if u.ID.Clock > peerVV[u.ID.Site] {
				b.Updates = append(b.Updates, EncodeRecord(u))
				shipped++
			}
		}
	}
	s.met.shipped.Add(shipped)
	return b
}

// ApplyBatch folds a received batch into the store. All update records
// are decoded and validated *before* any state mutates — a torn or
// corrupt record rejects the whole batch (fail closed). Per-object
// application is atomic; a mid-batch error (commit gap, unknown update
// function) leaves earlier objects applied and later ones untouched, and
// is safe to retry after the peers re-exchange summaries.
func (s *Store) ApplyBatch(from string, b *Batch) (*SyncStats, error) {
	if b.Empty() {
		return &SyncStats{}, nil
	}
	// Decode everything first: no partial update ever applies.
	decoded := make([]*Update, 0, len(b.Updates))
	for i, raw := range b.Updates {
		u, err := DecodeRecord(raw)
		if err != nil {
			return nil, fmt.Errorf("eventual: sync batch from %s record %d: %w", from, i, err)
		}
		if _, err := lookupUpdate(u.Fn); err != nil {
			return nil, fmt.Errorf("eventual: sync batch from %s record %d: %w", from, i, err)
		}
		decoded = append(decoded, u)
	}

	stats := &SyncStats{}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.mu.Lock()

	var recs []JournalRecord
	// Bases first: they re-anchor objects whose log diff was impossible.
	for i := range b.Bases {
		bs := &b.Bases[i]
		t, ok := s.objs[objmodel.OID(bs.OID)]
		if !ok {
			stats.Skipped++
			continue
		}
		if bs.CSN <= t.frontier {
			continue // already at or past this base
		}
		br := &baseRec{OID: bs.OID, TypeName: bs.TypeName, Primary: t.primary, State: bs.State, CSN: bs.CSN, Hist: bs.Hist}
		if err := s.applyBaseLocked(t, br); err != nil {
			s.mu.Unlock()
			return stats, err
		}
		stats.Bases++
		recs = append(recs, JournalRecord{Kind: JBase, Payload: s.encodePayload(br)})
	}

	// Group updates and commits per object, then ingest object by object.
	updatesBy := make(map[uint64][]*Update)
	for _, u := range decoded {
		updatesBy[u.OID] = append(updatesBy[u.OID], u)
	}
	commitsBy := make(map[uint64][]CommitRec)
	for _, c := range b.Commits {
		commitsBy[c.OID] = append(commitsBy[c.OID], c)
	}
	oids := make([]uint64, 0, len(updatesBy)+len(commitsBy))
	for oid := range updatesBy {
		oids = append(oids, oid)
	}
	for oid := range commitsBy {
		if _, dup := updatesBy[oid]; !dup {
			oids = append(oids, oid)
		}
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, oid := range oids {
		t, ok := s.objs[objmodel.OID(oid)]
		if !ok {
			stats.Skipped += len(updatesBy[oid]) + len(commitsBy[oid])
			continue
		}
		before := t.frontier
		tentBefore := len(t.tentative)
		out, err := s.ingestLocked(t, updatesBy[oid], commitsBy[oid])
		if err != nil {
			s.mu.Unlock()
			if jerr := s.journalLocked(recs); jerr != nil {
				return stats, jerr
			}
			return stats, fmt.Errorf("eventual: sync batch from %s object %d: %w", from, oid, err)
		}
		recs = append(recs, out...)
		committedNow := int(t.frontier - before)
		stats.Commits += committedNow
		stats.Updates += len(t.tentative) - tentBefore + committedNow
	}
	s.mu.Unlock()
	s.met.sessions.Inc()
	if err := s.journalLocked(recs); err != nil {
		return stats, err
	}
	return stats, nil
}

// applyBaseLocked re-anchors one tracked object on a received base:
// committed state, frontier, and history vector replace the local
// committed prefix; folded-in records drop from the retained lists; the
// surviving suffix replays. Caller holds s.mu.
func (s *Store) applyBaseLocked(t *tracked, b *baseRec) error {
	entry, ok := s.eng.Heap().Get(t.oid)
	if !ok {
		return fmt.Errorf("eventual: tracked object %v missing from heap", t.oid)
	}
	if err := s.eng.RestoreSnapshot(entry.Obj, b.State); err != nil {
		return fmt.Errorf("eventual: base sync %v: %w", t.oid, err)
	}
	t.committedState = append([]byte(nil), b.State...)
	t.frontier = b.CSN
	if b.CSN > t.floor {
		t.floor = b.CSN
	}
	for _, p := range b.Hist {
		if p.Clock > t.hist[uint16(p.Site)] {
			t.hist[uint16(p.Site)] = p.Clock
		}
	}
	keep := t.committed[:0]
	for _, u := range t.committed {
		if u.CSN != 0 && u.CSN <= b.CSN {
			continue
		}
		keep = append(keep, u)
	}
	t.committed = keep
	rest := t.tentative[:0]
	for _, u := range t.tentative {
		if u.ID.Clock <= t.hist[u.ID.Site] {
			continue // folded into the base (per-origin prefix property)
		}
		rest = append(rest, u)
	}
	t.tentative = rest
	for _, u := range t.committed {
		s.applyFn(entry, u)
	}
	if len(t.committed) > 0 {
		state, err := s.eng.CaptureSnapshot(entry.Obj)
		if err != nil {
			return err
		}
		t.committedState = state
		t.frontier = t.committed[len(t.committed)-1].CSN
	}
	s.replaySuffix(entry, t)
	return nil
}

// HandleSync is the callee half of an anti-entropy session: apply the
// caller's batch, then build the return batch against the caller's
// summary and report our post-apply frontiers.
func (s *Store) HandleSync(req *SyncRequest) (*SyncReply, error) {
	if _, err := s.ApplyBatch(req.From, &req.Batch); err != nil {
		return nil, err
	}
	s.RecordPeerFrontiers(req.From, req.Summary.Frontiers)
	reply := &SyncReply{From: s.name}
	reply.Batch = *s.BuildBatch(&req.Summary)
	reply.Frontiers = s.Summary().Frontiers
	return reply, nil
}
