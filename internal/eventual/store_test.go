package eventual

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"obiwan/internal/heap"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

// note is the tracked test object: an append-only text plus a capped
// counter, enough to observe ordering, rollback, and declines.
type note struct {
	Text  string
	Total int64
}

// Sum satisfies objmodel's exported-method requirement.
func (n *note) Sum() int64 { return n.Total }

func init() {
	objmodel.MustRegisterType("eventual_test.note", (*note)(nil))
	// Append args as a segment: the final Text spells out apply order.
	MustRegisterUpdate("evtest.append", func(obj any, args []byte) error {
		n := obj.(*note)
		n.Text += string(args) + "|"
		return nil
	})
	// Add args[0] but decline (deterministically) past 100.
	MustRegisterUpdate("evtest.add", func(obj any, args []byte) error {
		n := obj.(*note)
		v := int64(args[0])
		if n.Total+v > 100 {
			return errors.New("over cap")
		}
		n.Total += v
		return nil
	})
}

// evsite is one simulated site at the store level: heap + engine + store,
// no network (sync tests exchange batches by direct call).
type evsite struct {
	id  uint16
	eng *replication.Engine
	st  *Store
	obj *note
}

// newEvSites builds n sites tracking one shared note. Site 1 masters it
// (the primary); the rest hold replicas created from the identical zero
// state.
func newEvSites(t *testing.T, n int) []*evsite {
	t.Helper()
	net := transport.NewMemNetwork(netsim.Loopback)
	sites := make([]*evsite, n)
	var oid objmodel.OID
	for i := range sites {
		id := uint16(i + 1)
		rt, err := rmi.NewRuntime(net, transport.Addr(fmt.Sprintf("ev%d", id)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		h := heap.New(id)
		eng := replication.NewEngine(rt, h)
		s := &evsite{id: id, eng: eng, st: NewStore(fmt.Sprintf("ev%d", id), eng, nil), obj: &note{}}
		if i == 0 {
			entry, err := eng.RegisterMaster(s.obj)
			if err != nil {
				t.Fatal(err)
			}
			oid = entry.OID
		} else {
			h.AddReplica(s.obj, oid, "eventual_test.note", 1)
		}
		if err := s.st.Track(s.obj); err != nil {
			t.Fatal(err)
		}
		sites[i] = s
	}
	return sites
}

func (s *evsite) oid() objmodel.OID { return s.st.Tracked()[0] }

// syncPair runs one full anti-entropy session a↔b, mirroring
// Site.AntiEntropy: a pulls b's summary, ships what b is missing, applies
// b's return batch.
func syncPair(t *testing.T, a, b *evsite) {
	t.Helper()
	req := &SyncRequest{
		From:    a.st.name,
		Summary: *a.st.Summary(),
		Batch:   *a.st.BuildBatch(b.st.Summary()),
	}
	reply, err := b.st.HandleSync(req)
	if err != nil {
		t.Fatalf("handle sync: %v", err)
	}
	if _, err := a.st.ApplyBatch(reply.From, &reply.Batch); err != nil {
		t.Fatalf("apply reply: %v", err)
	}
	a.st.RecordPeerFrontiers(b.st.name, reply.Frontiers)
}

func TestAppendPrimaryCommitsImmediately(t *testing.T) {
	sites := newEvSites(t, 2)
	p, r := sites[0], sites[1]

	id, err := p.st.Append(p.obj, "evtest.append", []byte("a1"))
	if err != nil {
		t.Fatal(err)
	}
	if id.IsZero() {
		t.Fatal("zero update id")
	}
	if got := p.st.TentativeCount(p.oid()); got != 0 {
		t.Fatalf("primary tentative = %d, want 0 (commit-on-receipt)", got)
	}
	if _, frontier, _ := p.st.CommittedState(p.oid()); frontier != 1 {
		t.Fatalf("primary frontier = %d, want 1", frontier)
	}
	if p.obj.Text != "a1|" {
		t.Fatalf("primary text = %q", p.obj.Text)
	}

	if _, err := r.st.Append(r.obj, "evtest.append", []byte("b1")); err != nil {
		t.Fatal(err)
	}
	if got := r.st.TentativeCount(r.oid()); got != 1 {
		t.Fatalf("replica tentative = %d, want 1", got)
	}
	if _, frontier, _ := r.st.CommittedState(r.oid()); frontier != 0 {
		t.Fatalf("replica frontier = %d, want 0", frontier)
	}
	if r.obj.Text != "b1|" {
		t.Fatalf("replica text = %q (tentative application)", r.obj.Text)
	}
}

func TestAppendUntrackedAndUnknownFn(t *testing.T) {
	sites := newEvSites(t, 1)
	p := sites[0]
	other := &note{}
	if _, err := p.eng.RegisterMaster(other); err != nil {
		t.Fatal(err)
	}
	if _, err := p.st.Append(other, "evtest.append", nil); !errors.Is(err, ErrNotTracked) {
		t.Fatalf("untracked append err = %v, want ErrNotTracked", err)
	}
	if _, err := p.st.Append(p.obj, "evtest.nosuch", nil); !errors.Is(err, ErrUnknownUpdateFunc) {
		t.Fatalf("unknown fn err = %v, want ErrUnknownUpdateFunc", err)
	}
}

func TestRollbackReplayOnSync(t *testing.T) {
	sites := newEvSites(t, 2)
	p, r := sites[0], sites[1]

	// Disconnected concurrent edits: replica first (clock 1), primary after
	// (clock 1 too — same clock, lower site id, so p's sorts first).
	if _, err := r.st.Append(r.obj, "evtest.append", []byte("r1")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.st.Append(p.obj, "evtest.append", []byte("p1")); err != nil {
		t.Fatal(err)
	}

	// Session r↔p: r ships r1, the primary commits it after p1; the reply
	// carries p1 plus both commit positions, forcing r to roll back.
	syncPair(t, r, p)

	if p.obj.Text != "p1|r1|" {
		t.Fatalf("primary text = %q, want p1|r1|", p.obj.Text)
	}
	if r.obj.Text != "p1|r1|" {
		t.Fatalf("replica text = %q, want p1|r1| after rollback/replay", r.obj.Text)
	}
	if got := r.st.Stats().Rollbacks; got == 0 {
		t.Fatal("replica recorded no rollback")
	}
	ps, pf, _ := p.st.CommittedState(p.oid())
	rs, rf, _ := r.st.CommittedState(r.oid())
	if pf != 2 || rf != 2 {
		t.Fatalf("frontiers = %d/%d, want 2/2", pf, rf)
	}
	if !bytes.Equal(ps, rs) {
		t.Fatal("committed states differ")
	}
}

func TestCommittedPrefixStable(t *testing.T) {
	sites := newEvSites(t, 2)
	p, r := sites[0], sites[1]

	if _, err := p.st.Append(p.obj, "evtest.append", []byte("p1")); err != nil {
		t.Fatal(err)
	}
	syncPair(t, r, p)
	firstState, firstFrontier, _ := r.st.CommittedState(r.oid())

	// Later activity must only extend the committed prefix, never rewrite
	// the part below the old frontier.
	if _, err := r.st.Append(r.obj, "evtest.append", []byte("r1")); err != nil {
		t.Fatal(err)
	}
	syncPair(t, r, p)
	_, f2, _ := r.st.CommittedState(r.oid())
	if f2 <= firstFrontier {
		t.Fatalf("frontier did not advance: %d -> %d", firstFrontier, f2)
	}
	_ = firstState
	if r.obj.Text != "p1|r1|" {
		t.Fatalf("text = %q, want p1|r1| (old prefix intact)", r.obj.Text)
	}
}

func TestDeterministicDeclineCountsNoOp(t *testing.T) {
	sites := newEvSites(t, 1)
	p := sites[0]
	if _, err := p.st.Append(p.obj, "evtest.add", []byte{90}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.st.Append(p.obj, "evtest.add", []byte{20}); err != nil {
		t.Fatal(err)
	}
	if p.obj.Total != 90 {
		t.Fatalf("total = %d, want 90 (second add declined)", p.obj.Total)
	}
	if got := p.st.Stats().NoOps; got != 1 {
		t.Fatalf("noops = %d, want 1", got)
	}
}

func TestCommitGapRejected(t *testing.T) {
	sites := newEvSites(t, 2)
	r := sites[1]
	if _, err := r.st.Append(r.obj, "evtest.append", []byte("r1")); err != nil {
		t.Fatal(err)
	}
	// A commit record skipping CSN 1 must be rejected atomically.
	id := UpdateID{Clock: 1, Site: r.id}
	_, err := r.st.ApplyBatch("bogus", &Batch{
		Commits: []CommitRec{{OID: uint64(r.oid()), Clock: id.Clock, Site: uint64(id.Site), CSN: 2}},
	})
	if !errors.Is(err, ErrCommitGap) {
		t.Fatalf("err = %v, want ErrCommitGap", err)
	}
	if _, frontier, _ := r.st.CommittedState(r.oid()); frontier != 0 {
		t.Fatalf("frontier mutated to %d by rejected batch", frontier)
	}
}

func TestCorruptBatchFailsClosed(t *testing.T) {
	sites := newEvSites(t, 2)
	p, r := sites[0], sites[1]
	if _, err := r.st.Append(r.obj, "evtest.append", []byte("r1")); err != nil {
		t.Fatal(err)
	}
	batch := r.st.BuildBatch(p.st.Summary())
	if len(batch.Updates) != 1 {
		t.Fatalf("batch ships %d updates, want 1", len(batch.Updates))
	}
	batch.Updates[0][len(batch.Updates[0])-1] ^= 0xFF // flip a CRC byte
	_, err := p.st.ApplyBatch(r.st.name, batch)
	if !errors.Is(err, ErrBadRecord) {
		t.Fatalf("err = %v, want ErrBadRecord", err)
	}
	if _, frontier, _ := p.st.CommittedState(p.oid()); frontier != 0 {
		t.Fatal("corrupt batch mutated state")
	}
}

// converge runs seeded random pairwise sessions until every pair is
// mutually quiescent, then asserts byte-identical committed state.
func converge(t *testing.T, sites []*evsite, rng *rand.Rand) []byte {
	t.Helper()
	for round := 0; round < 20*len(sites); round++ {
		order := rng.Perm(len(sites))
		for _, i := range order {
			j := rng.Intn(len(sites))
			if i == j {
				continue
			}
			syncPair(t, sites[i], sites[j])
		}
		if allConverged(sites) {
			break
		}
	}
	base, bf, err := sites[0].st.CommittedState(sites[0].oid())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sites[1:] {
		st, f, err := s.st.CommittedState(s.oid())
		if err != nil {
			t.Fatal(err)
		}
		if f != bf {
			t.Fatalf("site %d frontier %d != %d", s.id, f, bf)
		}
		if !bytes.Equal(st, base) {
			t.Fatalf("site %d committed state diverged", s.id)
		}
		if n := s.st.TentativeCount(s.oid()); n != 0 {
			t.Fatalf("site %d still holds %d tentative updates", s.id, n)
		}
	}
	return base
}

func allConverged(sites []*evsite) bool {
	_, bf, _ := sites[0].st.CommittedState(sites[0].oid())
	if sites[0].st.TentativeCount(sites[0].oid()) != 0 {
		return false
	}
	for _, s := range sites[1:] {
		_, f, _ := s.st.CommittedState(s.oid())
		if f != bf || s.st.TentativeCount(s.oid()) != 0 {
			return false
		}
	}
	return true
}

func runSeededSwarm(t *testing.T, seed int64) ([]byte, string) {
	sites := newEvSites(t, 4)
	rng := rand.New(rand.NewSource(seed))
	// Everyone edits fully disconnected.
	for k := 0; k < 12; k++ {
		s := sites[rng.Intn(len(sites))]
		if _, err := s.st.Append(s.obj, "evtest.append", []byte(fmt.Sprintf("s%dk%d", s.id, k))); err != nil {
			t.Fatal(err)
		}
	}
	state := converge(t, sites, rng)
	return state, sites[0].obj.Text
}

func TestSeededPairwiseConvergenceDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		s1, t1 := runSeededSwarm(t, seed)
		s2, t2 := runSeededSwarm(t, seed)
		if !bytes.Equal(s1, s2) || t1 != t2 {
			t.Fatalf("seed %d: two runs diverged (%q vs %q)", seed, t1, t2)
		}
	}
}

func TestTruncationAndBaseSyncResync(t *testing.T) {
	sites := newEvSites(t, 3)
	p, r1, r2 := sites[0], sites[1], sites[2]

	for i := 0; i < 5; i++ {
		if _, err := p.st.Append(p.obj, "evtest.append", []byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// r1 catches up; r2 stays dark. Truncation only considers peers the
	// store has synced with, so p may drop records r2 never saw.
	syncPair(t, p, r1)
	dropped, err := p.st.TruncateCommitted()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 5 {
		t.Fatalf("dropped = %d, want 5", dropped)
	}
	if got := p.st.Stats().Truncated; got != 5 {
		t.Fatalf("truncated stat = %d, want 5", got)
	}

	// r2's frontier (0) is below p's floor (5): the session must fall back
	// to a full-state base sync and still converge.
	req := &SyncRequest{From: r2.st.name, Summary: *r2.st.Summary(), Batch: *r2.st.BuildBatch(p.st.Summary())}
	reply, err := p.st.HandleSync(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Batch.Bases) != 1 {
		t.Fatalf("reply ships %d bases, want 1", len(reply.Batch.Bases))
	}
	stats, err := r2.st.ApplyBatch(reply.From, &reply.Batch)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bases != 1 {
		t.Fatalf("applied %d bases, want 1", stats.Bases)
	}
	ps, pf, _ := p.st.CommittedState(p.oid())
	rs, rf, _ := r2.st.CommittedState(r2.oid())
	if pf != rf || !bytes.Equal(ps, rs) {
		t.Fatalf("base sync did not converge: frontiers %d/%d", pf, rf)
	}
	if r2.obj.Text != p.obj.Text {
		t.Fatalf("text %q != %q", r2.obj.Text, p.obj.Text)
	}
}

func TestBaseSyncDropsFoldedTentative(t *testing.T) {
	sites := newEvSites(t, 3)
	p, r1, r2 := sites[0], sites[1], sites[2]

	// r2 edits, syncs with p (its update commits), then p truncates below
	// the fleet frontier recorded from BOTH replicas.
	if _, err := r2.st.Append(r2.obj, "evtest.append", []byte("r2a")); err != nil {
		t.Fatal(err)
	}
	syncPair(t, r2, p)
	syncPair(t, r1, p)
	if _, err := p.st.TruncateCommitted(); err != nil {
		t.Fatal(err)
	}

	// A *stale* r2 (simulated: fresh store with the old tentative update)
	// would now receive a base that already folds r2a in; the Hist vector
	// must drop the local copy instead of double-applying it. The live r2
	// exercises the same path when it re-syncs: its retained copy is below
	// the base's hist, so nothing replays twice.
	syncPair(t, r2, p)
	if got := p.obj.Text; got != "r2a|" {
		t.Fatalf("primary text = %q, want r2a|", got)
	}
	if got := r2.obj.Text; got != "r2a|" {
		t.Fatalf("replica text = %q, want r2a| (no double apply)", got)
	}
}

// memJournal collects journal records in order.
type memJournal struct {
	recs []JournalRecord
}

func (m *memJournal) AppendEventual(rec JournalRecord) error {
	p := append([]byte(nil), rec.Payload...)
	m.recs = append(m.recs, JournalRecord{Kind: rec.Kind, Payload: p})
	return nil
}

func TestJournalRecoverRoundTrip(t *testing.T) {
	sites := newEvSites(t, 2)
	p, r := sites[0], sites[1]
	j := &memJournal{}
	r.st.SetJournal(j)
	if err := r.st.Track(r.obj); err != nil { // no-op, already tracked
		t.Fatal(err)
	}
	// The base record predates SetJournal (Track ran in the fixture), so
	// seed it the way recovery sees it: from a snapshot.
	pre := r.st.SnapshotRecords()

	if _, err := r.st.Append(r.obj, "evtest.append", []byte("r1")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.st.Append(p.obj, "evtest.append", []byte("p1")); err != nil {
		t.Fatal(err)
	}
	syncPair(t, r, p)
	if _, err := r.st.Append(r.obj, "evtest.append", []byte("r2")); err != nil {
		t.Fatal(err)
	}

	// Rebuild a fresh site from base snapshot + journaled suffix.
	net := transport.NewMemNetwork(netsim.Loopback)
	rt, err := rmi.NewRuntime(net, "ev-reborn")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	eng := replication.NewEngine(rt, heap.New(r.id))
	st2 := NewStore("ev2-reborn", eng, nil)
	if err := st2.Recover(append(pre, j.recs...)); err != nil {
		t.Fatal(err)
	}

	wantState, wantFrontier, _ := r.st.CommittedState(r.oid())
	gotState, gotFrontier, err := st2.CommittedState(r.oid())
	if err != nil {
		t.Fatal(err)
	}
	if gotFrontier != wantFrontier || !bytes.Equal(gotState, wantState) {
		t.Fatalf("recovered frontier %d != %d or state differs", gotFrontier, wantFrontier)
	}
	if got, want := st2.TentativeCount(r.oid()), r.st.TentativeCount(r.oid()); got != want {
		t.Fatalf("recovered tentative = %d, want %d", got, want)
	}
	// The recovered clock must not regress: a fresh append must sort after
	// everything recovered.
	entry, _ := eng.Heap().Get(r.oid())
	id, err := st2.Append(entry.Obj, "evtest.append", []byte("post"))
	if err != nil {
		t.Fatal(err)
	}
	vv := map[uint16]uint64{}
	for _, pair := range r.st.VersionVector() {
		vv[uint16(pair.Site)] = pair.Clock
	}
	if id.Clock <= vv[r.id] {
		t.Fatalf("recovered clock regressed: new id %v vs old vv %d", id, vv[r.id])
	}
}

func TestSnapshotRecordsRecoverEquivalence(t *testing.T) {
	sites := newEvSites(t, 2)
	p, r := sites[0], sites[1]
	for i := 0; i < 3; i++ {
		if _, err := p.st.Append(p.obj, "evtest.append", []byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.st.Append(r.obj, "evtest.append", []byte("r0")); err != nil {
		t.Fatal(err)
	}
	syncPair(t, r, p)

	snap := r.st.SnapshotRecords()
	net := transport.NewMemNetwork(netsim.Loopback)
	rt, err := rmi.NewRuntime(net, "ev-snap")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	eng := replication.NewEngine(rt, heap.New(r.id))
	st2 := NewStore("ev-snap", eng, nil)
	// Replaying the snapshot TWICE must be idempotent (compaction crash
	// window: snapshot + stale log suffix).
	if err := st2.Recover(append(snap, snap...)); err != nil {
		t.Fatal(err)
	}
	wantState, wantFrontier, _ := r.st.CommittedState(r.oid())
	gotState, gotFrontier, err := st2.CommittedState(r.oid())
	if err != nil {
		t.Fatal(err)
	}
	if gotFrontier != wantFrontier || !bytes.Equal(gotState, wantState) {
		t.Fatal("snapshot recovery diverged from live store")
	}
	entry, _ := eng.Heap().Get(r.oid())
	if entry.Obj.(*note).Text != r.obj.Text {
		t.Fatalf("recovered text %q != live %q", entry.Obj.(*note).Text, r.obj.Text)
	}
}
