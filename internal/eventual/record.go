package eventual

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"obiwan/internal/codec"
)

// The update-log record codec: the byte form an Update takes both in WAL
// journal entries and inside anti-entropy sync batches. The format is
// self-checking — a version byte up front and a CRC32-C over everything
// before it at the back — so a torn or corrupted record *fails closed*: a
// decoder either returns the exact update that was encoded or an error,
// never a partial or mutated update. (The WAL already CRC-frames whole
// records; this inner checksum additionally covers the RMI path, where
// batches cross process boundaries, and defends against bugs that splice
// record boundaries.)
//
// Layout:
//
//	byte    version (recordVersion)
//	uvarint OID
//	uvarint Clock
//	uvarint Site
//	uvarint CSN
//	string  Fn    (uvarint length + bytes)
//	bytes   Args  (uvarint length + bytes)
//	4 bytes CRC32-C (little endian) over everything above

// recordVersion is the update-record format version.
const recordVersion byte = 1

// maxRecordSize bounds a single decoded record — no legitimate update
// function argument payload approaches this; it stops a corrupt length
// prefix from allocating gigabytes.
const maxRecordSize = 64 << 20

// ErrBadRecord marks any decode failure of an update-log record: torn
// tail, corrupt field, length overrun, bad checksum, trailing garbage.
var ErrBadRecord = errors.New("eventual: bad update record")

var recordCRCTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeRecord serializes u into the self-checking record format.
func EncodeRecord(u *Update) []byte {
	enc := codec.NewEncoder(32 + len(u.Fn) + len(u.Args))
	_ = enc.WriteByte(recordVersion)
	enc.WriteUvarint(u.OID)
	enc.WriteUvarint(u.ID.Clock)
	enc.WriteUvarint(uint64(u.ID.Site))
	enc.WriteUvarint(u.CSN)
	enc.WriteString(u.Fn)
	enc.WriteBytes(u.Args)
	body := enc.Bytes()
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(body, recordCRCTable))
	return append(body, crc[:]...)
}

// DecodeRecord deserializes one update record. Every failure mode — short
// buffer, unknown version, field corruption, checksum mismatch, bytes left
// over after the checksum — returns an error wrapping ErrBadRecord; no
// partially decoded update ever escapes.
func DecodeRecord(payload []byte) (*Update, error) {
	if len(payload) < 5 { // version byte + CRC at minimum
		return nil, fmt.Errorf("%w: truncated (%d bytes)", ErrBadRecord, len(payload))
	}
	if len(payload) > maxRecordSize {
		return nil, fmt.Errorf("%w: oversized (%d bytes)", ErrBadRecord, len(payload))
	}
	body, tail := payload[:len(payload)-4], payload[len(payload)-4:]
	if got, want := crc32.Checksum(body, recordCRCTable), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (got %#x want %#x)", ErrBadRecord, got, want)
	}
	dec := codec.NewDecoder(body)
	version, err := dec.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	if version != recordVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrBadRecord, version)
	}
	u := &Update{}
	if u.OID, err = dec.ReadUvarint(); err != nil {
		return nil, fmt.Errorf("%w: oid: %v", ErrBadRecord, err)
	}
	if u.ID.Clock, err = dec.ReadUvarint(); err != nil {
		return nil, fmt.Errorf("%w: clock: %v", ErrBadRecord, err)
	}
	siteID, err := dec.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: site: %v", ErrBadRecord, err)
	}
	if siteID > 0xFFFF {
		return nil, fmt.Errorf("%w: site id %d overflows uint16", ErrBadRecord, siteID)
	}
	u.ID.Site = uint16(siteID)
	if u.CSN, err = dec.ReadUvarint(); err != nil {
		return nil, fmt.Errorf("%w: csn: %v", ErrBadRecord, err)
	}
	if u.Fn, err = dec.ReadString(); err != nil {
		return nil, fmt.Errorf("%w: fn: %v", ErrBadRecord, err)
	}
	if u.Args, err = dec.ReadBytes(); err != nil {
		return nil, fmt.Errorf("%w: args: %v", ErrBadRecord, err)
	}
	if dec.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, dec.Remaining())
	}
	if u.ID.IsZero() {
		return nil, fmt.Errorf("%w: zero update id", ErrBadRecord)
	}
	return u, nil
}
