package dissemination

import (
	"errors"
	"sync"
	"testing"

	"obiwan/internal/heap"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

type ticker struct {
	Symbol string
	Price  int64
}

func (t *ticker) Quote() int64 { return t.Price }

func init() {
	objmodel.MustRegisterType("dissem_test.ticker", (*ticker)(nil))
}

type fixture struct {
	net    *transport.MemNetwork
	master *replication.Engine
	client *replication.Engine
	pub    *Publisher
	app    *Applier
	tick   *ticker
}

func setup(t *testing.T) *fixture {
	t.Helper()
	net := transport.NewMemNetwork(netsim.Loopback)
	mrt, err := rmi.NewRuntime(net, "master")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mrt.Close() })
	crt, err := rmi.NewRuntime(net, "client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = crt.Close() })

	f := &fixture{net: net}
	f.master = replication.NewEngine(mrt, heap.New(2))
	f.client = replication.NewEngine(crt, heap.New(1))
	f.app = NewApplier(f.client)

	// Deliver via a real RMI sink at the client.
	sink := &updateSink{app: f.app}
	sinkRef, err := crt.Export(sink, "test.UpdateSink")
	if err != nil {
		t.Fatal(err)
	}
	f.pub = NewPublisher(f.master, func(site string, u *Update) error {
		if site != "client" {
			return errors.New("unknown site")
		}
		_, err := mrt.Call(sinkRef, "Push", u)
		return err
	})
	f.master.SetPolicy(f.pub)

	f.tick = &ticker{Symbol: "OBI", Price: 10}
	if _, err := f.master.RegisterMaster(f.tick); err != nil {
		t.Fatal(err)
	}
	return f
}

// replicate fetches the ticker at the client.
func (f *fixture) replicate(t *testing.T) *ticker {
	t.Helper()
	d, err := f.master.ExportObject(f.tick)
	if err != nil {
		t.Fatal(err)
	}
	ref := f.client.RefFromDescriptor(d, replication.DefaultSpec)
	r, err := objmodel.Deref[*ticker](ref)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

type updateSink struct {
	mu  sync.Mutex
	app *Applier
	n   int
}

func (s *updateSink) Push(u *Update) error {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return s.app.Apply(u)
}

func (s *updateSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func TestPushDelivery(t *testing.T) {
	f := setup(t)
	r := f.replicate(t)
	f.pub.Subscribe("client")

	f.tick.Price = 11
	if err := f.master.MarkUpdated(f.tick); err != nil {
		t.Fatal(err)
	}
	if r.Price != 11 {
		t.Fatalf("replica price after push: %d", r.Price)
	}
	e, _ := f.client.Heap().EntryOf(r)
	if e.Version() != 2 {
		t.Fatalf("replica version: %d", e.Version())
	}
}

func TestOfflineSubscriberCatchesUp(t *testing.T) {
	f := setup(t)
	r := f.replicate(t)
	f.pub.Subscribe("client")

	f.net.Disconnect("master", "client")
	for i := int64(1); i <= 3; i++ {
		f.tick.Price = 10 + i
		if err := f.master.MarkUpdated(f.tick); err != nil {
			t.Fatal(err)
		}
	}
	if r.Price != 10 {
		t.Fatalf("offline replica mutated: %d", r.Price)
	}
	if f.pub.Lag("client") != 3 {
		t.Fatalf("lag: %d", f.pub.Lag("client"))
	}

	f.net.Reconnect("master", "client")
	delivered := f.pub.Flush()
	if delivered != 3 {
		t.Fatalf("flush delivered %d", delivered)
	}
	if r.Price != 13 {
		t.Fatalf("replica after catch-up: %d", r.Price)
	}
	if f.pub.Lag("client") != 0 {
		t.Fatalf("lag after flush: %d", f.pub.Lag("client"))
	}
}

func TestPullPath(t *testing.T) {
	f := setup(t)
	r := f.replicate(t)
	// No subscription: the client pulls instead.
	for i := int64(1); i <= 4; i++ {
		f.tick.Price = 10 + i
		if err := f.master.MarkUpdated(f.tick); err != nil {
			t.Fatal(err)
		}
	}
	updates, err := f.pub.Pull(f.app.LastSeq())
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 4 {
		t.Fatalf("pulled %d", len(updates))
	}
	for i := range updates {
		if err := f.app.Apply(&updates[i]); err != nil {
			t.Fatal(err)
		}
	}
	if r.Price != 14 {
		t.Fatalf("replica after pull: %d", r.Price)
	}
	// Second pull is empty: sequence bookkeeping advanced.
	if got, err := f.pub.Pull(f.app.LastSeq()); err != nil || len(got) != 0 {
		t.Fatalf("second pull: %d updates, err %v", len(got), err)
	}
}

func TestDuplicateAndStaleUpdatesIgnored(t *testing.T) {
	f := setup(t)
	r := f.replicate(t)
	f.tick.Price = 20
	if err := f.master.MarkUpdated(f.tick); err != nil {
		t.Fatal(err)
	}
	updates, err := f.pub.Pull(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 1 {
		t.Fatalf("log: %d", len(updates))
	}
	if err := f.app.Apply(&updates[0]); err != nil {
		t.Fatal(err)
	}
	if r.Price != 20 {
		t.Fatalf("applied: %d", r.Price)
	}
	r.Price = 99 // local divergence
	if err := f.app.Apply(&updates[0]); err != nil {
		t.Fatal(err)
	}
	if r.Price != 99 {
		t.Fatal("duplicate update must be ignored (version not newer)")
	}
}

func TestUpdateForUnknownObjectSkipped(t *testing.T) {
	f := setup(t)
	// Client never replicated the ticker.
	f.tick.Price = 30
	if err := f.master.MarkUpdated(f.tick); err != nil {
		t.Fatal(err)
	}
	updates, err := f.pub.Pull(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.app.Apply(&updates[0]); err != nil {
		t.Fatal(err)
	}
	if f.client.Heap().Len() != 0 {
		t.Fatal("apply must not conjure replicas")
	}
}

func TestLogBound(t *testing.T) {
	f := setup(t)
	f.pub.SetMaxLog(2)
	for i := int64(1); i <= 5; i++ {
		f.tick.Price = 10 + i
		if err := f.master.MarkUpdated(f.tick); err != nil {
			t.Fatal(err)
		}
	}
	// Seqs 1..5 published, 1..3 truncated. Pulling from inside the window
	// works; pulling from behind it is the typed too-far-behind error.
	if got, err := f.pub.Pull(3); err != nil || len(got) != 2 {
		t.Fatalf("bounded log kept %d, err %v", len(got), err)
	}
	if _, err := f.pub.Pull(0); !errors.Is(err, ErrTooFarBehind) {
		t.Fatalf("pull behind the window: %v", err)
	}
}

func TestPullTruncationBoundary(t *testing.T) {
	f := setup(t)
	r := f.replicate(t)
	f.pub.SetMaxLog(2)
	for i := int64(1); i <= 6; i++ {
		f.tick.Price = 10 + i
		if err := f.master.MarkUpdated(f.tick); err != nil {
			t.Fatal(err)
		}
	}
	// Window is (4, 6]; floor is 4.
	if _, err := f.pub.Pull(4); err != nil {
		t.Fatalf("pull exactly at the floor must succeed: %v", err)
	}
	_, err := f.pub.Pull(3)
	var tfb *TooFarBehindError
	if !errors.As(err, &tfb) {
		t.Fatalf("pull below the floor: %v", err)
	}
	if tfb.Since != 3 || tfb.Oldest != 5 {
		t.Fatalf("boundary payload: since=%d oldest=%d", tfb.Since, tfb.Oldest)
	}
	if !errors.Is(err, ErrTooFarBehind) {
		t.Fatal("typed error must match ErrTooFarBehind")
	}

	// Full-state resync: read the frontier first, then refresh the
	// replica, then resume pulling from the frontier. Nothing in the
	// truncated gap is lost — the refresh covers it.
	frontier := f.pub.Frontier()
	if err := f.client.Refresh(r); err != nil {
		t.Fatal(err)
	}
	if r.Price != 16 {
		t.Fatalf("refreshed replica: %d", r.Price)
	}
	got, err := f.pub.Pull(frontier)
	if err != nil || len(got) != 0 {
		t.Fatalf("post-resync pull: %d updates, err %v", len(got), err)
	}
	// Later updates flow through the pull path again.
	f.tick.Price = 42
	if err := f.master.MarkUpdated(f.tick); err != nil {
		t.Fatal(err)
	}
	got, err = f.pub.Pull(frontier)
	if err != nil || len(got) != 1 {
		t.Fatalf("pull after resync: %d updates, err %v", len(got), err)
	}
	if err := f.app.Apply(&got[0]); err != nil {
		t.Fatal(err)
	}
	if r.Price != 42 {
		t.Fatalf("replica after resumed pulls: %d", r.Price)
	}
}

func TestSubscribeBookkeeping(t *testing.T) {
	f := setup(t)
	f.pub.Subscribe("client")
	f.pub.Subscribe("client") // idempotent
	f.pub.Subscribe("")       // ignored
	if got := f.pub.Subscribers(); len(got) != 1 || got[0] != "client" {
		t.Fatalf("subscribers: %v", got)
	}
	f.pub.Unsubscribe("client")
	if got := f.pub.Subscribers(); len(got) != 0 {
		t.Fatalf("after unsubscribe: %v", got)
	}
	if f.pub.Lag("ghost") != 0 {
		t.Fatal("unknown site lag")
	}
}

func TestPublisherComposesBasePolicy(t *testing.T) {
	f := setup(t)
	f.pub.Base = rejectAll{}
	if err := f.pub.ApplyPut(1, 1, 1); err == nil {
		t.Fatal("base policy must decide acceptance")
	}
}

type rejectAll struct{}

func (rejectAll) ApplyPut(objmodel.OID, uint64, uint64) error {
	return errors.New("rejected")
}
