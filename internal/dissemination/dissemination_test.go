package dissemination

import (
	"errors"
	"sync"
	"testing"

	"obiwan/internal/heap"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

type ticker struct {
	Symbol string
	Price  int64
}

func (t *ticker) Quote() int64 { return t.Price }

func init() {
	objmodel.MustRegisterType("dissem_test.ticker", (*ticker)(nil))
}

type fixture struct {
	net    *transport.MemNetwork
	master *replication.Engine
	client *replication.Engine
	pub    *Publisher
	app    *Applier
	tick   *ticker
}

func setup(t *testing.T) *fixture {
	t.Helper()
	net := transport.NewMemNetwork(netsim.Loopback)
	mrt, err := rmi.NewRuntime(net, "master")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mrt.Close() })
	crt, err := rmi.NewRuntime(net, "client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = crt.Close() })

	f := &fixture{net: net}
	f.master = replication.NewEngine(mrt, heap.New(2))
	f.client = replication.NewEngine(crt, heap.New(1))
	f.app = NewApplier(f.client)

	// Deliver via a real RMI sink at the client.
	sink := &updateSink{app: f.app}
	sinkRef, err := crt.Export(sink, "test.UpdateSink")
	if err != nil {
		t.Fatal(err)
	}
	f.pub = NewPublisher(f.master, func(site string, u *Update) error {
		if site != "client" {
			return errors.New("unknown site")
		}
		_, err := mrt.Call(sinkRef, "Push", u)
		return err
	})
	f.master.SetPolicy(f.pub)

	f.tick = &ticker{Symbol: "OBI", Price: 10}
	if _, err := f.master.RegisterMaster(f.tick); err != nil {
		t.Fatal(err)
	}
	return f
}

// replicate fetches the ticker at the client.
func (f *fixture) replicate(t *testing.T) *ticker {
	t.Helper()
	d, err := f.master.ExportObject(f.tick)
	if err != nil {
		t.Fatal(err)
	}
	ref := f.client.RefFromDescriptor(d, replication.DefaultSpec)
	r, err := objmodel.Deref[*ticker](ref)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

type updateSink struct {
	mu  sync.Mutex
	app *Applier
	n   int
}

func (s *updateSink) Push(u *Update) error {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return s.app.Apply(u)
}

func (s *updateSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func TestPushDelivery(t *testing.T) {
	f := setup(t)
	r := f.replicate(t)
	f.pub.Subscribe("client")

	f.tick.Price = 11
	if err := f.master.MarkUpdated(f.tick); err != nil {
		t.Fatal(err)
	}
	if r.Price != 11 {
		t.Fatalf("replica price after push: %d", r.Price)
	}
	e, _ := f.client.Heap().EntryOf(r)
	if e.Version() != 2 {
		t.Fatalf("replica version: %d", e.Version())
	}
}

func TestOfflineSubscriberCatchesUp(t *testing.T) {
	f := setup(t)
	r := f.replicate(t)
	f.pub.Subscribe("client")

	f.net.Disconnect("master", "client")
	for i := int64(1); i <= 3; i++ {
		f.tick.Price = 10 + i
		if err := f.master.MarkUpdated(f.tick); err != nil {
			t.Fatal(err)
		}
	}
	if r.Price != 10 {
		t.Fatalf("offline replica mutated: %d", r.Price)
	}
	if f.pub.Lag("client") != 3 {
		t.Fatalf("lag: %d", f.pub.Lag("client"))
	}

	f.net.Reconnect("master", "client")
	delivered := f.pub.Flush()
	if delivered != 3 {
		t.Fatalf("flush delivered %d", delivered)
	}
	if r.Price != 13 {
		t.Fatalf("replica after catch-up: %d", r.Price)
	}
	if f.pub.Lag("client") != 0 {
		t.Fatalf("lag after flush: %d", f.pub.Lag("client"))
	}
}

func TestPullPath(t *testing.T) {
	f := setup(t)
	r := f.replicate(t)
	// No subscription: the client pulls instead.
	for i := int64(1); i <= 4; i++ {
		f.tick.Price = 10 + i
		if err := f.master.MarkUpdated(f.tick); err != nil {
			t.Fatal(err)
		}
	}
	updates := f.pub.Pull(f.app.LastSeq())
	if len(updates) != 4 {
		t.Fatalf("pulled %d", len(updates))
	}
	for i := range updates {
		if err := f.app.Apply(&updates[i]); err != nil {
			t.Fatal(err)
		}
	}
	if r.Price != 14 {
		t.Fatalf("replica after pull: %d", r.Price)
	}
	// Second pull is empty: sequence bookkeeping advanced.
	if got := f.pub.Pull(f.app.LastSeq()); len(got) != 0 {
		t.Fatalf("second pull: %d", len(got))
	}
}

func TestDuplicateAndStaleUpdatesIgnored(t *testing.T) {
	f := setup(t)
	r := f.replicate(t)
	f.tick.Price = 20
	if err := f.master.MarkUpdated(f.tick); err != nil {
		t.Fatal(err)
	}
	updates := f.pub.Pull(0)
	if len(updates) != 1 {
		t.Fatalf("log: %d", len(updates))
	}
	if err := f.app.Apply(&updates[0]); err != nil {
		t.Fatal(err)
	}
	if r.Price != 20 {
		t.Fatalf("applied: %d", r.Price)
	}
	r.Price = 99 // local divergence
	if err := f.app.Apply(&updates[0]); err != nil {
		t.Fatal(err)
	}
	if r.Price != 99 {
		t.Fatal("duplicate update must be ignored (version not newer)")
	}
}

func TestUpdateForUnknownObjectSkipped(t *testing.T) {
	f := setup(t)
	// Client never replicated the ticker.
	f.tick.Price = 30
	if err := f.master.MarkUpdated(f.tick); err != nil {
		t.Fatal(err)
	}
	updates := f.pub.Pull(0)
	if err := f.app.Apply(&updates[0]); err != nil {
		t.Fatal(err)
	}
	if f.client.Heap().Len() != 0 {
		t.Fatal("apply must not conjure replicas")
	}
}

func TestLogBound(t *testing.T) {
	f := setup(t)
	f.pub.SetMaxLog(2)
	for i := int64(1); i <= 5; i++ {
		f.tick.Price = 10 + i
		if err := f.master.MarkUpdated(f.tick); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.pub.Pull(0); len(got) != 2 {
		t.Fatalf("bounded log kept %d", len(got))
	}
}

func TestSubscribeBookkeeping(t *testing.T) {
	f := setup(t)
	f.pub.Subscribe("client")
	f.pub.Subscribe("client") // idempotent
	f.pub.Subscribe("")       // ignored
	if got := f.pub.Subscribers(); len(got) != 1 || got[0] != "client" {
		t.Fatalf("subscribers: %v", got)
	}
	f.pub.Unsubscribe("client")
	if got := f.pub.Subscribers(); len(got) != 0 {
		t.Fatalf("after unsubscribe: %v", got)
	}
	if f.pub.Lag("ghost") != 0 {
		t.Fatal("unknown site lag")
	}
}

func TestPublisherComposesBasePolicy(t *testing.T) {
	f := setup(t)
	f.pub.Base = rejectAll{}
	if err := f.pub.ApplyPut(1, 1, 1); err == nil {
		t.Fatal("base policy must decide acceptance")
	}
}

type rejectAll struct{}

func (rejectAll) ApplyPut(objmodel.OID, uint64, uint64) error {
	return errors.New("rejected")
}
