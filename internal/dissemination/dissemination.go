// Package dissemination implements the updates-dissemination hook the
// paper names alongside transactions (§1): instead of replicas discovering
// staleness (invalidation) or polling (refresh), the master actively ships
// fresh state to subscribed replica sites.
//
// Two delivery modes cover the connectivity spectrum the paper targets:
//
//   - Push: on every master update, the publisher captures the object's
//     new state and delivers it to each subscriber. Failed deliveries are
//     remembered per subscriber and retried by the next update or an
//     explicit Flush (mobile holders miss pushes while disconnected).
//   - Pull: every update is also appended to a sequence-numbered log;
//     reconnecting sites call Pull(sinceSeq) to catch up in order.
//
// The publisher plugs into the replication engine as a consistency policy
// (it composes with another policy for put acceptance), so dissemination
// rides the same MasterUpdated hook as invalidation.
package dissemination

import (
	"errors"
	"fmt"
	"sync"

	"obiwan/internal/codec"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
)

func init() {
	codec.MustRegister("obiwan.dissem.Update", Update{})
}

// ErrTooFarBehind matches (via errors.Is) a Pull whose since-sequence
// predates the retained log window: the updates needed to catch up in
// order no longer exist, so the subscriber must full-state resync —
// refresh its replicas and resume pulling from the publisher's current
// Frontier — instead of pulling the gap.
var ErrTooFarBehind = errors.New("dissemination: requested sequence older than retained log")

// TooFarBehindError is the typed form of ErrTooFarBehind, carrying the
// boundary the caller needs to resynchronize.
type TooFarBehindError struct {
	// Since is the sequence the subscriber asked to pull after.
	Since uint64
	// Oldest is the oldest sequence still retained; everything in
	// (Since, Oldest) has been truncated.
	Oldest uint64
}

func (e *TooFarBehindError) Error() string {
	return fmt.Sprintf("dissemination: pull since seq %d, but log retains only seq >= %d: %v", e.Since, e.Oldest, ErrTooFarBehind)
}

// Is makes errors.Is(err, ErrTooFarBehind) match.
func (e *TooFarBehindError) Is(target error) bool { return target == ErrTooFarBehind }

// Update is one disseminated state change.
type Update struct {
	// Seq is the log sequence number (monotonic per publisher).
	Seq uint64
	// OID identifies the updated object.
	OID uint64
	// Version is the master version after the update.
	Version uint64
	// TypeName is the object's registered type.
	TypeName string
	// State is the full post-update state.
	State []byte
	// Frontier resolves references inside State that the receiving site
	// may not hold, exactly as in replication payloads.
	Frontier []replication.FrontierRef
}

// Deliver ships an update to one subscriber site; the site facade wires it
// to RMI, tests to a local function. Errors mark the subscriber lagged.
type Deliver func(site string, u *Update) error

// StateSource captures an object's current state; satisfied by
// *replication.Engine (CaptureSnapshot) plus heap lookup — the publisher
// needs both, so it takes the engine directly.

// Publisher is the master-side hub: it logs updates and pushes them to
// subscribers. It implements replication.Policy so it can be installed
// directly on the engine (composing put acceptance via Base).
type Publisher struct {
	// Base decides put acceptance; defaults to accepting everything.
	Base interface {
		ApplyPut(objmodel.OID, uint64, uint64) error
	}

	eng     *replication.Engine
	deliver Deliver

	mu      sync.Mutex
	nextSeq uint64
	log     []Update
	subs    map[string]*subscriber
	// maxLog bounds the retained log; 0 keeps everything.
	maxLog int
	// floorSeq is the highest truncated sequence: the log retains exactly
	// the updates with Seq > floorSeq.
	floorSeq uint64
}

type subscriber struct {
	site string
	// ackSeq is the last sequence successfully delivered.
	ackSeq uint64
}

var _ replication.Policy = (*Publisher)(nil)

// NewPublisher builds a publisher over the master engine, delivering via
// deliver.
func NewPublisher(eng *replication.Engine, deliver Deliver) *Publisher {
	return &Publisher{
		Base:    noCheck{},
		eng:     eng,
		deliver: deliver,
		subs:    make(map[string]*subscriber),
	}
}

type noCheck struct{}

func (noCheck) ApplyPut(objmodel.OID, uint64, uint64) error { return nil }

// SetMaxLog bounds the retained update log to n entries (oldest dropped,
// immediately and on every future append). Sites that fall further behind
// than the retained window get ErrTooFarBehind from Pull and must
// full-state resync instead.
func (p *Publisher) SetMaxLog(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.maxLog = n
	p.truncateLocked()
}

// truncateLocked enforces maxLog, advancing floorSeq past every dropped
// update. Caller holds p.mu.
func (p *Publisher) truncateLocked() {
	if p.maxLog <= 0 || len(p.log) <= p.maxLog {
		return
	}
	cut := len(p.log) - p.maxLog
	if s := p.log[cut-1].Seq; s > p.floorSeq {
		p.floorSeq = s
	}
	p.log = p.log[cut:]
}

// Frontier returns the publisher's current sequence frontier: the Seq of
// the newest logged update. A resyncing subscriber reads the frontier,
// refreshes its replicas, then resumes pulling with Pull(frontier) — any
// update sequenced after the frontier is covered by the pull, anything
// before it by the refresh.
func (p *Publisher) Frontier() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nextSeq
}

// Subscribe registers a site for pushes of every future update.
func (p *Publisher) Subscribe(site string) {
	if site == "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.subs[site]; !ok {
		p.subs[site] = &subscriber{site: site, ackSeq: p.nextSeq}
	}
}

// Unsubscribe removes a site.
func (p *Publisher) Unsubscribe(site string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.subs, site)
}

// Subscribers returns the registered sites.
func (p *Publisher) Subscribers() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.subs))
	for s := range p.subs {
		out = append(out, s)
	}
	return out
}

// ApplyPut delegates acceptance to the base policy.
func (p *Publisher) ApplyPut(oid objmodel.OID, cur, base uint64) error {
	return p.Base.ApplyPut(oid, cur, base)
}

// ReplicaCreated is a no-op: dissemination is subscription-based, not
// automatic per fetch (a fetching site opts in with Subscribe).
func (p *Publisher) ReplicaCreated(objmodel.OID, string, uint64) {}

// MasterUpdated captures the object's fresh state, appends it to the log,
// and pushes to every subscriber that is up to date; lagged subscribers
// are caught up in order.
func (p *Publisher) MasterUpdated(oid objmodel.OID, version uint64) {
	entry, ok := p.eng.Heap().Get(oid)
	if !ok {
		return
	}
	state, err := p.eng.CaptureSnapshot(entry.Obj)
	if err != nil {
		return
	}
	frontier, err := p.eng.BuildFrontier(entry.Obj)
	if err != nil {
		return
	}
	p.mu.Lock()
	p.nextSeq++
	u := Update{
		Seq:      p.nextSeq,
		OID:      uint64(oid),
		Version:  version,
		TypeName: entry.TypeName,
		State:    state,
		Frontier: frontier,
	}
	p.log = append(p.log, u)
	p.truncateLocked()
	subs := make([]*subscriber, 0, len(p.subs))
	for _, s := range p.subs {
		subs = append(subs, s)
	}
	p.mu.Unlock()

	for _, s := range subs {
		p.catchUp(s)
	}
}

// Flush re-attempts delivery to every lagged subscriber (e.g. after a
// reconnection is observed). It returns the number of updates delivered.
func (p *Publisher) Flush() int {
	p.mu.Lock()
	subs := make([]*subscriber, 0, len(p.subs))
	for _, s := range p.subs {
		subs = append(subs, s)
	}
	p.mu.Unlock()
	delivered := 0
	for _, s := range subs {
		delivered += p.catchUp(s)
	}
	return delivered
}

// catchUp delivers, in order, every logged update the subscriber has not
// acknowledged. Delivery stops at the first failure (ordering preserved).
func (p *Publisher) catchUp(s *subscriber) int {
	delivered := 0
	for {
		p.mu.Lock()
		var next *Update
		for i := range p.log {
			if p.log[i].Seq > s.ackSeq {
				u := p.log[i]
				next = &u
				break
			}
		}
		p.mu.Unlock()
		if next == nil {
			return delivered
		}
		if err := p.deliver(s.site, next); err != nil {
			return delivered
		}
		p.mu.Lock()
		if next.Seq > s.ackSeq {
			s.ackSeq = next.Seq
		}
		p.mu.Unlock()
		delivered++
	}
}

// Lag returns how many logged updates site has not yet received.
func (p *Publisher) Lag(site string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.subs[site]
	if !ok {
		return 0
	}
	lag := 0
	for i := range p.log {
		if p.log[i].Seq > s.ackSeq {
			lag++
		}
	}
	return lag
}

// Pull returns the logged updates with Seq > since, in order — the pull
// path for reconnecting sites. If since predates the retained window
// (truncated by SetMaxLog), Pull returns a *TooFarBehindError (matching
// ErrTooFarBehind): the in-order gap is unrecoverable and the subscriber
// must full-state resync (see Frontier).
func (p *Publisher) Pull(since uint64) ([]Update, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if since < p.floorSeq {
		return nil, &TooFarBehindError{Since: since, Oldest: p.floorSeq + 1}
	}
	var out []Update
	for i := range p.log {
		if p.log[i].Seq > since {
			out = append(out, p.log[i])
		}
	}
	return out, nil
}

// Applier is the subscriber-side half: it applies disseminated updates to
// the local replicas.
type Applier struct {
	eng *replication.Engine

	mu      sync.Mutex
	lastSeq uint64
}

// NewApplier builds an applier over the subscriber site's engine.
func NewApplier(eng *replication.Engine) *Applier {
	return &Applier{eng: eng}
}

// LastSeq returns the highest sequence number applied.
func (a *Applier) LastSeq() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastSeq
}

// Apply installs one update. Updates for objects not replicated here are
// acknowledged but skipped; stale or duplicate updates (Seq regressions
// or versions at/behind the replica) are ignored.
func (a *Applier) Apply(u *Update) error {
	a.mu.Lock()
	if u.Seq > a.lastSeq {
		a.lastSeq = u.Seq
	}
	a.mu.Unlock()

	entry, ok := a.eng.Heap().Get(objmodel.OID(u.OID))
	if !ok {
		return nil // not replicated here
	}
	if entry.Version() >= u.Version {
		return nil // already at least this fresh
	}
	if err := a.eng.RestoreWithFrontier(entry.Obj, u.State, u.Frontier); err != nil {
		return err
	}
	entry.SetVersion(u.Version)
	entry.SetDirty(false)
	return nil
}
