// Package consistency is the library of replica-consistency protocols the
// paper defers to: "the application programmer is not forced to deal with
// consistency; he may simply use a library of specific consistency
// protocols written by any other programmer. We plan to develop such
// libraries for well known consistency policies" (§2.1, note 2).
//
// Master-side policies plug into the replication engine's hook surface
// (replication.Policy); client-side helpers (leases, staleness tracking)
// integrate at the site facade.
//
//   - LastWriterWins: every put overwrites; the paper's laissez-faire
//     default made explicit.
//   - FirstWriterWins: a put based on a stale version is rejected with
//     ErrConflict, so the first concurrent writer wins and later writers
//     must refresh and retry (optimistic concurrency control).
//   - Invalidation: the master remembers which sites replicated each
//     object and notifies them on every update, so replicas learn they
//     are stale instead of serving old data silently.
//   - Lease: replicas are considered valid for a TTL after fetch; after
//     that, the holder should refresh before trusting local state.
package consistency

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"obiwan/internal/objmodel"
)

// ErrConflict is returned (and travels to the putting site as a remote
// application error) when a policy rejects a stale update.
var ErrConflict = errors.New("consistency: conflicting update (stale base version)")

// LastWriterWins accepts every update: whoever puts last overwrites. This
// matches the paper's default, where consistency is the programmer's
// responsibility.
type LastWriterWins struct{}

// ApplyPut always accepts.
func (LastWriterWins) ApplyPut(objmodel.OID, uint64, uint64) error { return nil }

// ReplicaCreated is a no-op.
func (LastWriterWins) ReplicaCreated(objmodel.OID, string, uint64) {}

// MasterUpdated is a no-op.
func (LastWriterWins) MasterUpdated(objmodel.OID, uint64) {}

// FirstWriterWins rejects updates whose base version is not the master's
// current version: concurrent writers lose and must refresh + retry.
type FirstWriterWins struct{}

// ApplyPut rejects stale bases with ErrConflict.
func (FirstWriterWins) ApplyPut(oid objmodel.OID, cur, base uint64) error {
	if base != cur {
		return fmt.Errorf("%w: object %v at v%d, update based on v%d", ErrConflict, oid, cur, base)
	}
	return nil
}

// ReplicaCreated is a no-op.
func (FirstWriterWins) ReplicaCreated(objmodel.OID, string, uint64) {}

// MasterUpdated is a no-op.
func (FirstWriterWins) MasterUpdated(objmodel.OID, uint64) {}

// Notifier delivers an invalidation to a replica site. The site facade
// wires this to an RMI call into the site's invalidation sink; tests can
// substitute a local function.
type Notifier func(site string, oid objmodel.OID, version uint64) error

// Invalidation tracks, at the master, which sites hold replicas of each
// object, and notifies them when the master changes. Delivery is
// best-effort — an unreachable (mobile, disconnected) site simply misses
// the notification and discovers staleness on reconnection, exactly the
// weak-connectivity regime the paper targets.
type Invalidation struct {
	// Base decides put acceptance; defaults to LastWriterWins.
	Base interface {
		ApplyPut(objmodel.OID, uint64, uint64) error
	}
	notify Notifier

	mu      sync.Mutex
	holders map[objmodel.OID]map[string]bool
}

// NewInvalidation builds an invalidation policy delivering via notify.
func NewInvalidation(notify Notifier) *Invalidation {
	return &Invalidation{
		Base:    LastWriterWins{},
		notify:  notify,
		holders: make(map[objmodel.OID]map[string]bool),
	}
}

// ApplyPut delegates to the base policy.
func (p *Invalidation) ApplyPut(oid objmodel.OID, cur, base uint64) error {
	return p.Base.ApplyPut(oid, cur, base)
}

// ReplicaCreated records the holder site.
func (p *Invalidation) ReplicaCreated(oid objmodel.OID, site string, _ uint64) {
	if site == "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	holders, ok := p.holders[oid]
	if !ok {
		holders = make(map[string]bool)
		p.holders[oid] = holders
	}
	holders[site] = true
}

// MasterUpdated notifies every recorded holder, in site-name order so the
// fan-out is deterministic (virtual-clock runs replay bit-identically).
// Sites whose notification fails stay registered and will be notified
// again on the next update.
func (p *Invalidation) MasterUpdated(oid objmodel.OID, version uint64) {
	p.mu.Lock()
	sites := make([]string, 0, len(p.holders[oid]))
	for s := range p.holders[oid] {
		sites = append(sites, s)
	}
	p.mu.Unlock()
	sort.Strings(sites)
	for _, s := range sites {
		// Best-effort: failures are expected while holders are offline.
		_ = p.notify(s, oid, version)
	}
}

// Holders returns the sites currently recorded for oid (diagnostics).
func (p *Invalidation) Holders(oid objmodel.OID) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.holders[oid]))
	for s := range p.holders[oid] {
		out = append(out, s)
	}
	return out
}

// Forget removes a holder (e.g. after it unsubscribed or was garbage
// collected remotely).
func (p *Invalidation) Forget(oid objmodel.OID, site string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.holders[oid], site)
}

// ErrTentative is returned when a raw state put targets an object managed
// by the weakly-connected update log: its state is `committed prefix +
// tentative suffix` and may be rolled back and replayed at any sync, so
// overwriting it wholesale would silently discard logged updates. Mutate
// such objects through update functions (eventual.Store.Append /
// Txn.Apply) instead.
var ErrTentative = errors.New("consistency: object is tentatively replicated; use update functions")

// Tentative guards log-managed objects: puts against them are rejected
// with ErrTentative, everything else falls through to Base. Wire Managed
// to eventual.Store.Managed.
type Tentative struct {
	// Base decides put acceptance for unmanaged objects; defaults to
	// LastWriterWins.
	Base interface {
		ApplyPut(objmodel.OID, uint64, uint64) error
	}
	// Managed reports whether oid is enrolled in the update log.
	Managed func(objmodel.OID) bool
}

// NewTentative builds the policy over managed.
func NewTentative(managed func(objmodel.OID) bool) *Tentative {
	return &Tentative{Base: LastWriterWins{}, Managed: managed}
}

// ApplyPut rejects puts to managed objects; unmanaged ones go to Base.
func (p *Tentative) ApplyPut(oid objmodel.OID, cur, base uint64) error {
	if p.Managed != nil && p.Managed(oid) {
		return fmt.Errorf("%w: object %v", ErrTentative, oid)
	}
	if p.Base == nil {
		return nil
	}
	return p.Base.ApplyPut(oid, cur, base)
}

// ReplicaCreated is a no-op.
func (p *Tentative) ReplicaCreated(objmodel.OID, string, uint64) {}

// MasterUpdated is a no-op.
func (p *Tentative) MasterUpdated(objmodel.OID, uint64) {}

// StaleSet is the client-side staleness ledger fed by invalidations. A
// site's invalidation sink marks entries; the application (or the site's
// auto-refresh) queries and clears them.
type StaleSet struct {
	mu      sync.Mutex
	stale   map[objmodel.OID]uint64 // oid → newest version heard of
	observe func(int)               // nil unless SetObserver was called
}

// NewStaleSet returns an empty ledger.
func NewStaleSet() *StaleSet {
	return &StaleSet{stale: make(map[objmodel.OID]uint64)}
}

// SetObserver installs fn, called with the ledger size after every
// size-changing mutation — the bridge a telemetry staleness gauge rides
// without this package importing telemetry. Install before concurrent
// use; fn runs under the ledger lock and must not call back in.
func (s *StaleSet) SetObserver(fn func(int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observe = fn
}

// MarkStale records that oid has a newer master version.
func (s *StaleSet) MarkStale(oid objmodel.OID, version uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if version > s.stale[oid] {
		s.stale[oid] = version
		if s.observe != nil {
			s.observe(len(s.stale))
		}
	}
}

// IsStale reports whether oid has been invalidated, and the newest master
// version heard of.
func (s *StaleSet) IsStale(oid objmodel.OID) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.stale[oid]
	return v, ok
}

// Clear removes oid from the ledger (after a refresh).
func (s *StaleSet) Clear(oid objmodel.OID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.stale[oid]; !ok {
		return
	}
	delete(s.stale, oid)
	if s.observe != nil {
		s.observe(len(s.stale))
	}
}

// Len returns the number of currently stale entries.
func (s *StaleSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.stale)
}

// Stale returns all currently stale OIDs, sorted, so refresh rounds that
// walk the ledger issue their RMIs in a deterministic order.
func (s *StaleSet) Stale() []objmodel.OID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]objmodel.OID, 0, len(s.stale))
	for oid := range s.stale {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Lease is the client-side time-based validity policy: a replica fetched
// at time T is trusted until T+TTL; afterwards the holder should refresh.
type Lease struct {
	// TTL is how long a fetched replica stays trusted.
	TTL time.Duration
	// Clock allows tests to control time; defaults to time.Now.
	Clock func() time.Time
}

// NewLease builds a lease policy with the given TTL.
func NewLease(ttl time.Duration) *Lease {
	return &Lease{TTL: ttl}
}

func (l *Lease) now() time.Time {
	if l.Clock != nil {
		return l.Clock()
	}
	return time.Now()
}

// Expired reports whether a replica fetched at fetchedAt has outlived its
// lease.
func (l *Lease) Expired(fetchedAt time.Time) bool {
	if l.TTL <= 0 {
		return false
	}
	return l.now().After(fetchedAt.Add(l.TTL))
}
