package consistency

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"obiwan/internal/objmodel"
)

func TestLastWriterWinsAcceptsEverything(t *testing.T) {
	p := LastWriterWins{}
	if err := p.ApplyPut(1, 10, 3); err != nil {
		t.Fatal(err)
	}
	p.ReplicaCreated(1, "s1", 1)
	p.MasterUpdated(1, 2)
}

func TestFirstWriterWins(t *testing.T) {
	p := FirstWriterWins{}
	if err := p.ApplyPut(1, 5, 5); err != nil {
		t.Fatal(err)
	}
	err := p.ApplyPut(1, 6, 5)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("stale base: %v", err)
	}
	// Future base (shouldn't happen, but must not be silently accepted).
	if err := p.ApplyPut(1, 5, 6); !errors.Is(err, ErrConflict) {
		t.Fatalf("future base: %v", err)
	}
}

type delivery struct {
	site    string
	oid     objmodel.OID
	version uint64
}

func collectingNotifier() (Notifier, *[]delivery, *sync.Mutex) {
	var mu sync.Mutex
	var got []delivery
	return func(site string, oid objmodel.OID, v uint64) error {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, delivery{site, oid, v})
		return nil
	}, &got, &mu
}

func TestInvalidationNotifiesHolders(t *testing.T) {
	notify, got, mu := collectingNotifier()
	p := NewInvalidation(notify)
	p.ReplicaCreated(7, "s1", 1)
	p.ReplicaCreated(7, "s3", 1)
	p.ReplicaCreated(7, "s1", 1) // duplicate registration is fine
	p.ReplicaCreated(8, "s9", 1) // other object

	p.MasterUpdated(7, 2)
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 2 {
		t.Fatalf("deliveries: %+v", *got)
	}
	sites := []string{(*got)[0].site, (*got)[1].site}
	sort.Strings(sites)
	if sites[0] != "s1" || sites[1] != "s3" {
		t.Fatalf("sites: %v", sites)
	}
	for _, d := range *got {
		if d.oid != 7 || d.version != 2 {
			t.Fatalf("delivery: %+v", d)
		}
	}
}

func TestInvalidationFailuresKeepHolderRegistered(t *testing.T) {
	calls := 0
	p := NewInvalidation(func(string, objmodel.OID, uint64) error {
		calls++
		return errors.New("offline")
	})
	p.ReplicaCreated(1, "mobile", 1)
	p.MasterUpdated(1, 2) // fails, best-effort
	p.MasterUpdated(1, 3) // holder still registered, retried
	if calls != 2 {
		t.Fatalf("notify calls: %d", calls)
	}
	if got := p.Holders(1); len(got) != 1 || got[0] != "mobile" {
		t.Fatalf("holders: %v", got)
	}
	p.Forget(1, "mobile")
	p.MasterUpdated(1, 4)
	if calls != 2 {
		t.Fatal("forgotten holder must not be notified")
	}
}

func TestInvalidationEmptySiteIgnored(t *testing.T) {
	notify, got, mu := collectingNotifier()
	p := NewInvalidation(notify)
	p.ReplicaCreated(1, "", 1)
	p.MasterUpdated(1, 2)
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 0 {
		t.Fatalf("anonymous requester must not register: %+v", *got)
	}
}

func TestInvalidationBasePolicy(t *testing.T) {
	p := NewInvalidation(func(string, objmodel.OID, uint64) error { return nil })
	p.Base = FirstWriterWins{}
	if err := p.ApplyPut(1, 5, 4); !errors.Is(err, ErrConflict) {
		t.Fatalf("composed base: %v", err)
	}
}

func TestStaleSet(t *testing.T) {
	s := NewStaleSet()
	if _, stale := s.IsStale(1); stale {
		t.Fatal("fresh set")
	}
	s.MarkStale(1, 3)
	s.MarkStale(1, 2) // older news must not regress
	v, stale := s.IsStale(1)
	if !stale || v != 3 {
		t.Fatalf("stale: %d %v", v, stale)
	}
	s.MarkStale(2, 1)
	if got := s.Stale(); len(got) != 2 {
		t.Fatalf("stale list: %v", got)
	}
	s.Clear(1)
	if _, stale := s.IsStale(1); stale {
		t.Fatal("cleared")
	}
}

func TestLease(t *testing.T) {
	now := time.Unix(1000, 0)
	l := NewLease(time.Minute)
	l.Clock = func() time.Time { return now }
	fetched := now.Add(-30 * time.Second)
	if l.Expired(fetched) {
		t.Fatal("within ttl")
	}
	fetched = now.Add(-2 * time.Minute)
	if !l.Expired(fetched) {
		t.Fatal("past ttl")
	}
	l.TTL = 0
	if l.Expired(fetched) {
		t.Fatal("zero ttl disables expiry")
	}
}

func TestTentativeRejectsManagedFallsThroughOtherwise(t *testing.T) {
	p := NewTentative(func(oid objmodel.OID) bool { return oid == 7 })
	if err := p.ApplyPut(7, 3, 3); !errors.Is(err, ErrTentative) {
		t.Fatalf("managed put: %v, want ErrTentative", err)
	}
	if err := p.ApplyPut(8, 3, 3); err != nil {
		t.Fatalf("unmanaged put through default base: %v", err)
	}
	p.Base = FirstWriterWins{}
	if err := p.ApplyPut(8, 6, 5); !errors.Is(err, ErrConflict) {
		t.Fatalf("unmanaged put must reach the wrapped base: %v", err)
	}
	// Nil Managed (and nil Base) degrade to accept-everything.
	p = &Tentative{}
	if err := p.ApplyPut(7, 1, 1); err != nil {
		t.Fatal(err)
	}
	p.ReplicaCreated(7, "s1", 1)
	p.MasterUpdated(7, 2)
}
