package admin_test

import (
	"testing"
	"time"

	"obiwan/internal/admin"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/site"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// watchPair stands up two sites and returns a client on probe's runtime
// pointed at target's admin service.
func watchPair(t *testing.T, target, probe string) (*site.Site, *site.Site, *admin.Client) {
	t.Helper()
	net := transport.NewMemNetwork(netsim.Loopback)
	ts, err := site.New(target, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	ps, err := site.New(probe, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ps.Close() })
	return ts, ps, admin.NewClient(ps.Runtime(), site.AdminRef(transport.Addr(target)))
}

// TestWatchDeliversSpansExactlyOnce drives the cursor protocol: spans
// finished between polls arrive in the next chunk and never again.
func TestWatchDeliversSpansExactlyOnce(t *testing.T) {
	ts, _, client := watchPair(t, "watched", "watcher")

	ts.Telemetry().StartRoot("op-one").End()
	chunk, err := client.Watch(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunk.Spans) != 1 || chunk.Spans[0].Name != "op-one" {
		t.Fatalf("first chunk: %+v", chunk.Spans)
	}
	if chunk.Site != "watched" || chunk.NextCursor != 1 || chunk.Missed != 0 {
		t.Fatalf("first chunk header: %+v", chunk)
	}
	if len(chunk.Metrics.Counters) == 0 {
		t.Fatal("watch chunk must carry the metrics snapshot")
	}

	// Nothing new: the same cursor yields an empty delta.
	chunk2, err := client.Watch(chunk.NextCursor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunk2.Spans) != 0 || chunk2.NextCursor != 1 {
		t.Fatalf("idle chunk: %+v", chunk2)
	}

	ts.Telemetry().StartRoot("op-two").End()
	chunk3, err := client.Watch(chunk2.NextCursor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunk3.Spans) != 1 || chunk3.Spans[0].Name != "op-two" {
		t.Fatalf("delta chunk: %+v", chunk3.Spans)
	}
}

// TestWatchReportsMissedSpans: a cursor that fell behind the span ring
// reports eviction instead of silently skipping.
func TestWatchReportsMissedSpans(t *testing.T) {
	net := transport.NewMemNetwork(netsim.Loopback)
	hub := telemetry.NewHub("tiny", telemetry.WithSpanCapacity(4))
	ts, err := site.New("tiny", net, site.WithTelemetry(hub))
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	ps, err := site.New("prober", net)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	for i := 0; i < 10; i++ {
		ts.Telemetry().StartRoot("burst").End()
	}
	chunk, err := admin.NewClient(ps.Runtime(), site.AdminRef("tiny")).Watch(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if chunk.Missed != 6 || len(chunk.Spans) != 4 || chunk.NextCursor != 10 {
		t.Fatalf("missed=%d spans=%d next=%d", chunk.Missed, len(chunk.Spans), chunk.NextCursor)
	}
}

// TestProfileEndpointAfterDemand checks a real demand chain shows up in
// the remote profile table.
func TestProfileEndpointAfterDemand(t *testing.T) {
	ts, ps, client := watchPair(t, "master", "mobile")

	w := &widget{Name: "hot"}
	d, err := ts.Export(w)
	if err != nil {
		t.Fatal(err)
	}
	ref := ps.Engine().RefFromDescriptor(d, replication.DefaultSpec)
	if _, err := objmodel.Deref[*widget](ref); err != nil {
		t.Fatal(err)
	}

	// The master served one demand; ask it for its profile.
	snap, err := client.Profile(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Objects) == 0 {
		t.Fatal("master profile is empty after serving a demand")
	}
	if p, ok := snap.Get(uint64(d.OID)); !ok || p.Serves == 0 {
		t.Fatalf("master profile for %v: %+v", d.OID, p)
	}

	// And the mobile recorded the fault side.
	mobileSnap, err := admin.NewClient(ts.Runtime(), site.AdminRef("mobile")).Profile(10)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := mobileSnap.Get(uint64(d.OID))
	if !ok || p.Faults != 1 || p.RemoteDemands != 1 || p.DemandBytes == 0 {
		t.Fatalf("mobile profile for %v: %+v", d.OID, p)
	}
}

// TestFlightEndpoint: a site that never dumped serves a live snapshot; a
// stored dump takes precedence.
func TestFlightEndpoint(t *testing.T) {
	ts, _, client := watchPair(t, "flighty", "prober")

	ts.Telemetry().Flight().Record(telemetry.FlightEvent{Kind: "test.event", OID: 42})
	dump, err := client.Flight()
	if err != nil {
		t.Fatal(err)
	}
	if dump.Reason != "live" || dump.Seq != 0 || len(dump.Events) == 0 {
		t.Fatalf("live dump: %+v", dump)
	}

	ts.Telemetry().Flight().Dump("deliberate")
	dump, err = client.Flight()
	if err != nil {
		t.Fatal(err)
	}
	if dump.Reason != "deliberate" || dump.Seq != 1 {
		t.Fatalf("stored dump: %+v", dump)
	}
}

// TestWatchClientTimeout: the per-client deadline is honored (an
// unreachable peer fails fast instead of hanging for the default).
func TestWatchClientTimeout(t *testing.T) {
	net := transport.NewMemNetwork(netsim.Loopback)
	ps, err := site.New("prober", net)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	c := admin.NewClient(ps.Runtime(), site.AdminRef("nowhere")).WithTimeout(50 * time.Millisecond)
	start := time.Now()
	if _, err := c.Watch(0, 0); err == nil {
		t.Fatal("watch on a missing site must fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout not honored: %v", elapsed)
	}
}
