package admin

import (
	"errors"

	"obiwan/internal/codec"
	"obiwan/internal/rmi"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// This file is the federation surface of the admin service: the
// cursor-based scrape endpoint a fleet collector pulls from, and the
// fleet endpoints a collector-bearing site answers with. The scrape
// rides the same well-known export as the rest of the admin service, so
// a collector can address any site knowing only its transport address.

// WellKnownID is the object id every site exports its admin service at
// (after the invalidation sink at 1 and the update sink at 2).
const WellKnownID rmi.ObjID = 3

// Ref builds the reference to the admin service of the site at addr.
func Ref(addr transport.Addr) rmi.RemoteRef {
	return rmi.RemoteRef{Addr: addr, ID: WellKnownID, Iface: Iface}
}

// ScrapeChunk is one federation pull from a site: the full metrics
// registry, the top-K hot-object profile, and the spans finished since
// the scraper's cursor. Counters are monotonic and the cursor counts
// spans ever committed, so a collector that loses a chunk (or restarts)
// resumes without double-counting — it just feeds NextCursor back in.
type ScrapeChunk struct {
	Site       string
	TakenAtNS  int64
	NextCursor uint64
	// Missed counts spans evicted from the ring before this scraper
	// could read them (the scrape interval is too long for the site's
	// span rate).
	Missed  uint64
	Metrics *telemetry.MetricsSnapshot
	Profile *telemetry.ProfileSnapshot
	Spans   []telemetry.SpanRecord
}

// AlertChunk wraps the watchdog's alert backlog for the wire. Dropped
// counts alerts the bounded backlog has evicted since the collector
// started — nonzero means the listed alerts are a window, not the
// history.
type AlertChunk struct {
	Site      string
	TakenAtNS int64
	Dropped   uint64
	Alerts    []telemetry.Alert
}

// SlowChunk wraps slow-trace results (tail exemplars resolved to their
// spans) for the wire — one site's, or the fleet's when assembled by a
// collector.
type SlowChunk struct {
	Site      string
	TakenAtNS int64
	Traces    []telemetry.SlowTrace
}

func init() {
	codec.MustRegister("obiwan.admin.ScrapeChunk", ScrapeChunk{})
	codec.MustRegister("obiwan.admin.AlertChunk", AlertChunk{})
	codec.MustRegister("obiwan.admin.SlowChunk", SlowChunk{})
}

// ErrNoFleet is returned by the fleet endpoints of a site that runs no
// collector.
var ErrNoFleet = errors.New("admin: no fleet collector at this site")

// FleetSource is what a collector exposes through the admin service. It
// lives here (not in the fleet package) so the admin service can serve
// fleet state without importing its producer.
type FleetSource interface {
	// FleetSnapshot returns the aggregated fleet view. With refresh set
	// the source scrapes its peers first; otherwise it serves the view
	// assembled by the most recent scrape.
	FleetSnapshot(refresh bool) (*telemetry.FleetSnapshot, error)
	// FleetAlerts returns the watchdog's retained alerts, oldest first,
	// plus the count of alerts evicted from the bounded backlog.
	FleetAlerts() ([]telemetry.Alert, uint64)
	// FleetSlow returns the fleet's worst recent traced demands — tail
	// exemplars from every scraped site, resolved against the
	// collector's span buffer — at most max (all when max <= 0).
	FleetSlow(max int) []telemetry.SlowTrace
	// Attribution returns the fleet's aggregated critical-path profile.
	Attribution() *telemetry.AttributionProfile
}

// SetFleet installs the site's fleet collector. Must be called before
// the service is exported (the field is read concurrently afterwards).
func (s *Service) SetFleet(src FleetSource) { s.fleet = src }

// Scrape returns one federation chunk: metrics, the topK hottest object
// profiles (0: server default of 16), and up to maxSpans spans finished
// since cursor (0: server default of 256). With telemetry off the chunk
// is empty but the call succeeds, so a collector can tell "telemetry
// disabled" apart from "site unreachable".
func (s *Service) Scrape(cursor uint64, maxSpans uint64, topK uint64) *ScrapeChunk {
	if maxSpans == 0 {
		maxSpans = 256
	}
	if topK == 0 {
		topK = 16
	}
	spans, next, missed := s.tel.SpansSince(cursor, int(maxSpans))
	return &ScrapeChunk{
		Site:       s.name,
		TakenAtNS:  s.tel.Now().UnixNano(),
		NextCursor: next,
		Missed:     missed,
		Metrics:    s.tel.MetricsSnapshot(),
		Profile:    s.tel.ProfileSnapshot(int(topK)),
		Spans:      spans,
	}
}

// Fleet returns the aggregated fleet snapshot from this site's
// collector (ErrNoFleet when it runs none). refresh forces a fresh
// scrape of every peer before answering.
func (s *Service) Fleet(refresh bool) (*telemetry.FleetSnapshot, error) {
	if s.fleet == nil {
		return nil, ErrNoFleet
	}
	return s.fleet.FleetSnapshot(refresh)
}

// FleetAlerts returns the fleet watchdog's retained alerts and how many
// the bounded backlog has dropped.
func (s *Service) FleetAlerts() (*AlertChunk, error) {
	if s.fleet == nil {
		return nil, ErrNoFleet
	}
	alerts, dropped := s.fleet.FleetAlerts()
	return &AlertChunk{
		Site:      s.name,
		TakenAtNS: s.tel.Now().UnixNano(),
		Dropped:   dropped,
		Alerts:    alerts,
	}, nil
}

// Slow returns this site's worst recent traced demands: the tail
// exemplars of its duration histograms resolved against its own span
// ring (0: server default of 8). With telemetry off the chunk is empty
// but the call succeeds.
func (s *Service) Slow(max uint64) *SlowChunk {
	if max == 0 {
		max = 8
	}
	return &SlowChunk{
		Site:      s.name,
		TakenAtNS: s.tel.Now().UnixNano(),
		Traces:    s.tel.SlowTraces(int(max)),
	}
}

// FleetSlow returns the fleet-wide worst recent traced demands from this
// site's collector (ErrNoFleet when it runs none).
func (s *Service) FleetSlow(max uint64) (*SlowChunk, error) {
	if s.fleet == nil {
		return nil, ErrNoFleet
	}
	if max == 0 {
		max = 8
	}
	return &SlowChunk{
		Site:      s.name,
		TakenAtNS: s.tel.Now().UnixNano(),
		Traces:    s.fleet.FleetSlow(int(max)),
	}, nil
}

// FleetAttribution returns the fleet's aggregated critical-path profile
// from this site's collector (ErrNoFleet when it runs none).
func (s *Service) FleetAttribution() (*telemetry.AttributionProfile, error) {
	if s.fleet == nil {
		return nil, ErrNoFleet
	}
	return s.fleet.Attribution(), nil
}

// Scrape fetches one federation chunk from the remote site.
func (c *Client) Scrape(cursor uint64, maxSpans uint64, topK uint64) (*ScrapeChunk, error) {
	res, err := c.call("Scrape", cursor, maxSpans, topK)
	if err != nil {
		return nil, err
	}
	chunk, ok := res[0].(*ScrapeChunk)
	if !ok {
		return nil, errUnexpected(res[0])
	}
	return chunk, nil
}

// Fleet fetches the remote site's aggregated fleet snapshot.
func (c *Client) Fleet(refresh bool) (*telemetry.FleetSnapshot, error) {
	res, err := c.call("Fleet", refresh)
	if err != nil {
		return nil, err
	}
	snap, ok := res[0].(*telemetry.FleetSnapshot)
	if !ok {
		return nil, errUnexpected(res[0])
	}
	return snap, nil
}

// FleetAlerts fetches the remote site's watchdog alerts.
func (c *Client) FleetAlerts() (*AlertChunk, error) {
	res, err := c.call("FleetAlerts")
	if err != nil {
		return nil, err
	}
	chunk, ok := res[0].(*AlertChunk)
	if !ok {
		return nil, errUnexpected(res[0])
	}
	return chunk, nil
}

// Slow fetches the remote site's worst recent traced demands (0: server
// default of 8).
func (c *Client) Slow(max uint64) (*SlowChunk, error) {
	res, err := c.call("Slow", max)
	if err != nil {
		return nil, err
	}
	chunk, ok := res[0].(*SlowChunk)
	if !ok {
		return nil, errUnexpected(res[0])
	}
	return chunk, nil
}

// FleetSlow fetches the fleet-wide worst traced demands from the remote
// site's collector.
func (c *Client) FleetSlow(max uint64) (*SlowChunk, error) {
	res, err := c.call("FleetSlow", max)
	if err != nil {
		return nil, err
	}
	chunk, ok := res[0].(*SlowChunk)
	if !ok {
		return nil, errUnexpected(res[0])
	}
	return chunk, nil
}

// FleetAttribution fetches the fleet's aggregated critical-path profile
// from the remote site's collector.
func (c *Client) FleetAttribution() (*telemetry.AttributionProfile, error) {
	res, err := c.call("FleetAttribution")
	if err != nil {
		return nil, err
	}
	prof, ok := res[0].(*telemetry.AttributionProfile)
	if !ok {
		return nil, errUnexpected(res[0])
	}
	return prof, nil
}
