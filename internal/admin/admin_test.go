package admin_test

import (
	"testing"

	"obiwan/internal/admin"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/site"
	"obiwan/internal/transport"
)

type widget struct {
	Name string
	Next *objmodel.Ref
}

func (w *widget) Label() string { return w.Name }

func init() {
	objmodel.MustRegisterType("admin_test.widget", (*widget)(nil))
}

func TestReportReflectsReplication(t *testing.T) {
	net := transport.NewMemNetwork(netsim.Loopback)
	server, err := site.New("server", net)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	mobile, err := site.New("mobile", net)
	if err != nil {
		t.Fatal(err)
	}
	defer mobile.Close()

	a := &widget{Name: "a"}
	b := &widget{Name: "b"}
	if a.Next, err = server.NewRef(b); err != nil {
		t.Fatal(err)
	}
	d, err := server.Export(a)
	if err != nil {
		t.Fatal(err)
	}
	ref := mobile.Engine().RefFromDescriptor(d, replication.DefaultSpec)
	replica, err := objmodel.Deref[*widget](ref)
	if err != nil {
		t.Fatal(err)
	}
	replica.Name = "a-edited"
	if err := mobile.MarkUpdated(replica); err != nil {
		t.Fatal(err)
	}

	// Inspect the server from the mobile, and vice versa, over RMI.
	serverReport, err := mobile.Inspect("server")
	if err != nil {
		t.Fatal(err)
	}
	if serverReport.Name != "server" || serverReport.Masters != 2 || serverReport.Replicas != 0 {
		t.Fatalf("server report: %+v", serverReport)
	}
	if serverReport.ProxyInsExported == 0 || serverReport.CallsServed == 0 {
		t.Fatalf("server counters: %+v", serverReport)
	}

	mobileReport, err := server.Inspect("mobile")
	if err != nil {
		t.Fatal(err)
	}
	if mobileReport.Replicas != 1 || mobileReport.DirtyReplicas != 1 {
		t.Fatalf("mobile report: %+v", mobileReport)
	}
	if len(mobileReport.Objects) != 1 {
		t.Fatalf("mobile objects: %+v", mobileReport.Objects)
	}
	obj := mobileReport.Objects[0]
	if obj.Role != "replica" || !obj.Dirty || obj.TypeName != "admin_test.widget" || obj.Provider == "" {
		t.Fatalf("object info: %+v", obj)
	}
}

func TestPing(t *testing.T) {
	net := transport.NewMemNetwork(netsim.Loopback)
	s, err := site.New("pingable", net)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	probe, err := site.New("prober", net)
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	c := admin.NewClient(probe.Runtime(), site.AdminRef("pingable"))
	name, err := c.Ping()
	if err != nil || name != "pingable" {
		t.Fatalf("ping: %q %v", name, err)
	}
}
