package admin

import (
	"time"

	"obiwan/internal/codec"
	"obiwan/internal/telemetry"
)

// WatchChunk is one streaming delivery from a site's admin service: the
// current metrics snapshot plus every span finished since the caller's
// cursor. Counters are monotonic and the cursor is a count of spans ever
// committed, so a watcher that reconnects (or whose link drops chunks)
// resumes without duplicates — it just feeds NextCursor back in.
type WatchChunk struct {
	Site      string
	TakenAtNS int64
	// NextCursor is the value to pass as cursor on the next Watch call.
	NextCursor uint64
	// Missed counts spans that were evicted from the ring before this
	// watcher could read them (a slow watcher on a busy site).
	Missed  uint64
	Metrics *telemetry.MetricsSnapshot
	Spans   []telemetry.SpanRecord
}

func init() {
	codec.MustRegister("obiwan.admin.WatchChunk", WatchChunk{})
}

// Watch returns the spans committed at or after cursor (capped at
// maxSpans per chunk; 0 means the server default of 256) together with a
// fresh metrics snapshot. The first call should pass cursor 0 — or the
// current span total, to watch only new activity. With telemetry off the
// chunk carries an empty snapshot and no spans, and the cursor never
// advances.
func (s *Service) Watch(cursor uint64, maxSpans uint64) *WatchChunk {
	if maxSpans == 0 {
		maxSpans = 256
	}
	spans, next, missed := s.tel.SpansSince(cursor, int(maxSpans))
	return &WatchChunk{
		Site:       s.name,
		TakenAtNS:  s.tel.Now().UnixNano(),
		NextCursor: next,
		Missed:     missed,
		Metrics:    s.tel.MetricsSnapshot(),
		Spans:      spans,
	}
}

// Profile exports the site's per-object replication profiles, hottest
// first (topK 0: all tracked objects). Empty when telemetry is off.
func (s *Service) Profile(topK uint64) *telemetry.ProfileSnapshot {
	return s.tel.ProfileSnapshot(int(topK))
}

// Flight returns the site's most recent stored flight-recorder dump —
// taken automatically on ErrUnavailable exhaustion or crash recovery —
// or, when nothing has been dumped, a live snapshot of the ring.
func (s *Service) Flight() *telemetry.FlightDump {
	f := s.tel.Flight()
	if d, ok := f.LastDump(); ok {
		return d
	}
	return f.Current("live")
}

// Watch fetches one streaming chunk from the remote site.
func (c *Client) Watch(cursor uint64, maxSpans uint64) (*WatchChunk, error) {
	res, err := c.call("Watch", cursor, maxSpans)
	if err != nil {
		return nil, err
	}
	chunk, ok := res[0].(*WatchChunk)
	if !ok {
		return nil, errUnexpected(res[0])
	}
	return chunk, nil
}

// Profile fetches the remote per-object replication profiles.
func (c *Client) Profile(topK uint64) (*telemetry.ProfileSnapshot, error) {
	res, err := c.call("Profile", topK)
	if err != nil {
		return nil, err
	}
	snap, ok := res[0].(*telemetry.ProfileSnapshot)
	if !ok {
		return nil, errUnexpected(res[0])
	}
	return snap, nil
}

// Flight fetches the remote flight-recorder dump.
func (c *Client) Flight() (*telemetry.FlightDump, error) {
	res, err := c.call("Flight")
	if err != nil {
		return nil, err
	}
	dump, ok := res[0].(*telemetry.FlightDump)
	if !ok {
		return nil, errUnexpected(res[0])
	}
	return dump, nil
}

// Subscribe polls Watch every interval, invoking fn with each chunk (or
// transport error — delivery resumes when the link heals, without
// duplicating spans, because the cursor only advances on success). It
// returns when stop closes or fn returns a non-nil error, which is also
// Subscribe's return value. The first chunk is fetched immediately.
func (c *Client) Subscribe(interval time.Duration, stop <-chan struct{}, fn func(*WatchChunk, error) error) error {
	if interval <= 0 {
		interval = time.Second
	}
	var cursor uint64
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		chunk, err := c.Watch(cursor, 0)
		if err == nil {
			cursor = chunk.NextCursor
		}
		if ferr := fn(chunk, err); ferr != nil {
			return ferr
		}
		select {
		case <-stop:
			return nil
		case <-tick.C:
		}
	}
}
