// Package admin exposes a site's runtime state for inspection over RMI —
// the operations surface a deployable middleware needs: what does this
// site hold, how are its links doing, how much replication work has it
// done. The site facade exports the service at a well-known id, and
// cmd/obiwan-admin queries it from anywhere in the deployment.
package admin

import (
	"sort"
	"time"

	"obiwan/internal/codec"
	"obiwan/internal/heap"
	"obiwan/internal/platgc"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/telemetry"
)

// Iface is the symbolic RMI interface name of the admin service.
const Iface = "obiwan.Admin"

// ObjectInfo describes one heap entry.
type ObjectInfo struct {
	OID           string
	TypeName      string
	Role          string
	Version       uint64
	Dirty         bool
	ClusterMember bool
	Provider      string
}

// SiteReport is the full inspection snapshot.
type SiteReport struct {
	Name          string
	Addr          string
	Objects       []ObjectInfo
	Masters       int
	Replicas      int
	DirtyReplicas int

	// RMI runtime counters.
	CallsSent     uint64
	CallsServed   uint64
	SendErrors    uint64
	RemoteFaults  uint64
	BytesSent     uint64
	BytesReceived uint64

	// Platform-object (proxy) lifecycle counters.
	ProxyOutsCreated     uint64
	ProxyOutsReclaimed   uint64
	ProxyOutsLive        uint64
	FaultsServedFromHeap uint64
	ProxyInsExported     uint64
	ProxyInsReused       uint64
}

func init() {
	codec.MustRegister("obiwan.admin.ObjectInfo", ObjectInfo{})
	codec.MustRegister("obiwan.admin.SiteReport", SiteReport{})
}

// Service is the exported admin object. Construct with NewService; all
// methods are remote-callable.
type Service struct {
	name   string
	rt     *rmi.Runtime
	heap   *heap.Heap
	engine *replication.Engine
	tel    *telemetry.Hub // nil when the site runs without telemetry
	fleet  FleetSource    // nil unless the site runs a collector (SetFleet)
}

// NewService builds the admin service for one site. hub may be nil, in
// which case Metrics and Traces report empty snapshots.
func NewService(name string, rt *rmi.Runtime, h *heap.Heap, eng *replication.Engine, hub *telemetry.Hub) *Service {
	return &Service{name: name, rt: rt, heap: h, engine: eng, tel: hub}
}

// Report assembles the full snapshot.
func (s *Service) Report() *SiteReport {
	r := &SiteReport{Name: s.name, Addr: string(s.rt.Addr())}

	entries := s.heap.Entries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].OID < entries[j].OID })
	for _, e := range entries {
		info := ObjectInfo{
			OID:           e.OID.String(),
			TypeName:      e.TypeName,
			Role:          e.Role.String(),
			Version:       e.Version(),
			Dirty:         e.Dirty(),
			ClusterMember: e.ClusterMember(),
		}
		if prov := e.Provider(); !prov.IsZero() {
			info.Provider = prov.String()
		}
		r.Objects = append(r.Objects, info)
		switch e.Role {
		case heap.Master:
			r.Masters++
		case heap.Replica:
			r.Replicas++
			if e.Dirty() {
				r.DirtyReplicas++
			}
		}
	}

	rs := s.rt.Stats()
	r.CallsSent = rs.CallsSent
	r.CallsServed = rs.CallsServed
	r.SendErrors = rs.SendErrors
	r.RemoteFaults = rs.RemoteFaults
	r.BytesSent = rs.BytesSent
	r.BytesReceived = rs.BytesReceived

	gc := s.engine.GC().Snapshot()
	fillGC(r, gc)
	return r
}

func fillGC(r *SiteReport, gc platgc.Stats) {
	r.ProxyOutsCreated = gc.ProxyOutsCreated
	r.ProxyOutsReclaimed = gc.ProxyOutsReclaimed
	r.ProxyOutsLive = gc.LiveProxyOuts()
	r.FaultsServedFromHeap = gc.FaultsServedFromHeap
	r.ProxyInsExported = gc.ProxyInsExported
	r.ProxyInsReused = gc.ProxyInsReused
}

// Ping returns the site name; a cheap liveness probe.
func (s *Service) Ping() string { return s.name }

// Metrics exports the site's live metrics registry. With telemetry off the
// snapshot is empty but the call still succeeds, so operators can tell
// "telemetry disabled" apart from "site unreachable".
func (s *Service) Metrics() *telemetry.MetricsSnapshot {
	return s.tel.MetricsSnapshot()
}

// Traces exports up to max recent finished spans (0: everything the ring
// holds), oldest first, wrapped with the site name for tree assembly and
// display.
func (s *Service) Traces(max uint64) *telemetry.TraceDump {
	return &telemetry.TraceDump{Site: s.name, Spans: s.tel.Spans(int(max))}
}

// Client queries a remote site's admin service.
type Client struct {
	rt      *rmi.Runtime
	ref     rmi.RemoteRef
	timeout time.Duration // 0: the runtime's default call timeout
}

// NewClient wraps an admin reference for use from rt's site.
func NewClient(rt *rmi.Runtime, ref rmi.RemoteRef) *Client {
	return &Client{rt: rt, ref: ref}
}

// WithTimeout returns a copy of the client whose calls use d as the
// per-call deadline instead of the runtime default (d <= 0 restores the
// default).
func (c *Client) WithTimeout(d time.Duration) *Client {
	cc := *c
	if d < 0 {
		d = 0
	}
	cc.timeout = d
	return &cc
}

// call issues one admin RMI, honoring the client's timeout override.
func (c *Client) call(method string, args ...any) ([]any, error) {
	if c.timeout > 0 {
		return c.rt.CallTimeout(c.ref, c.timeout, method, args...)
	}
	return c.rt.Call(c.ref, method, args...)
}

// Report fetches the remote snapshot.
func (c *Client) Report() (*SiteReport, error) {
	res, err := c.call("Report")
	if err != nil {
		return nil, err
	}
	report, ok := res[0].(*SiteReport)
	if !ok {
		return nil, errUnexpected(res[0])
	}
	return report, nil
}

// Metrics fetches the remote metrics snapshot.
func (c *Client) Metrics() (*telemetry.MetricsSnapshot, error) {
	res, err := c.call("Metrics")
	if err != nil {
		return nil, err
	}
	snap, ok := res[0].(*telemetry.MetricsSnapshot)
	if !ok {
		return nil, errUnexpected(res[0])
	}
	return snap, nil
}

// Traces fetches up to max recent spans from the remote site (0: all).
func (c *Client) Traces(max uint64) (*telemetry.TraceDump, error) {
	res, err := c.call("Traces", max)
	if err != nil {
		return nil, err
	}
	dump, ok := res[0].(*telemetry.TraceDump)
	if !ok {
		return nil, errUnexpected(res[0])
	}
	return dump, nil
}

// Ping probes the remote site.
func (c *Client) Ping() (string, error) {
	res, err := c.call("Ping")
	if err != nil {
		return "", err
	}
	name, ok := res[0].(string)
	if !ok {
		return "", errUnexpected(res[0])
	}
	return name, nil
}

type unexpectedReply struct{ got any }

func (e unexpectedReply) Error() string { return "admin: unexpected reply type" }

func errUnexpected(got any) error { return unexpectedReply{got: got} }
