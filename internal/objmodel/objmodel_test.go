package objmodel

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"obiwan/internal/codec"
)

// node is a list element, the paper's canonical workload shape.
type node struct {
	Value []byte
	Label string
	Next  *Ref
}

func (n *node) First() byte {
	if len(n.Value) == 0 {
		return 0
	}
	return n.Value[0]
}

func (n *node) SetLabel(l string) { n.Label = l }

// tree exercises refs in slices, maps, and nested structs.
type tree struct {
	Children []*Ref
	ByName   map[string]*Ref
	Meta     treeMeta
}

type treeMeta struct {
	Root *Ref
}

func (t *tree) Kind() string { return "tree" }

func init() {
	MustRegisterType("objmodel_test.node", (*node)(nil))
	MustRegisterType("objmodel_test.tree", (*tree)(nil))
}

func TestRegisterTypeValidation(t *testing.T) {
	if err := RegisterType("x", 42); err == nil {
		t.Fatal("non-struct must be rejected")
	}
	type plain struct{ A int }
	if err := RegisterType("y", plain{}); err == nil {
		t.Fatal("method-less struct must be rejected")
	}
	// Idempotent re-registration.
	if err := RegisterType("objmodel_test.node", (*node)(nil)); err != nil {
		t.Fatalf("idempotent registration: %v", err)
	}
	// Name collision with a different type.
	if err := RegisterType("objmodel_test.node", (*tree)(nil)); err == nil {
		t.Fatal("name collision must be rejected")
	}
}

func TestInfoLookup(t *testing.T) {
	info, ok := InfoByName("objmodel_test.node")
	if !ok {
		t.Fatal("node not registered")
	}
	if info.Type.Name() != "node" {
		t.Fatalf("type: %v", info.Type)
	}
	if _, ok := info.Methods["First"]; !ok {
		t.Fatalf("method table: %v", info.Methods)
	}
	byObj, ok := InfoOf(&node{})
	if !ok || byObj != info {
		t.Fatal("InfoOf mismatch")
	}
	fresh := info.New()
	if _, ok := fresh.(*node); !ok {
		t.Fatalf("New returned %T", fresh)
	}
}

func TestRefsOfDiscovery(t *testing.T) {
	r1, r2, r3, r4 := &Ref{}, &Ref{}, &Ref{}, &Ref{}
	tr := &tree{
		Children: []*Ref{r1, nil, r2},
		ByName:   map[string]*Ref{"a": r3},
		Meta:     treeMeta{Root: r4},
	}
	refs := RefsOf(tr)
	if len(refs) != 4 {
		t.Fatalf("found %d refs, want 4: %v", len(refs), refs)
	}
	seen := map[*Ref]bool{}
	for _, r := range refs {
		seen[r] = true
	}
	for i, want := range []*Ref{r1, r2, r3, r4} {
		if !seen[want] {
			t.Fatalf("ref %d not discovered", i)
		}
	}
}

func TestRefsOfSkipsByteSlices(t *testing.T) {
	n := &node{Value: make([]byte, 1<<16)}
	if refs := RefsOf(n); len(refs) != 0 {
		t.Fatalf("refs in plain node: %v", refs)
	}
	n.Next = &Ref{}
	if refs := RefsOf(n); len(refs) != 1 {
		t.Fatalf("want 1 ref, got %d", len(refs))
	}
}

func TestCaptureRestoreWithRefs(t *testing.T) {
	reg := codec.DefaultRegistry()
	target := &node{Label: "tail"}
	head := &node{
		Value: []byte{1, 2, 3},
		Label: "head",
		Next:  NewLocalRef(target, OID(77)),
	}
	state, err := CaptureState(reg, head)
	if err != nil {
		t.Fatal(err)
	}
	out := &node{}
	if err := RestoreState(reg, out, state); err != nil {
		t.Fatal(err)
	}
	if out.Label != "head" || string(out.Value) != "\x01\x02\x03" {
		t.Fatalf("state: %+v", out)
	}
	if out.Next == nil {
		t.Fatal("ref field lost")
	}
	if out.Next.OID() != OID(77) {
		t.Fatalf("ref OID: %v", out.Next.OID())
	}
	if out.Next.IsResolved() {
		t.Fatal("restored ref must be unbound")
	}
}

func TestCaptureNilRef(t *testing.T) {
	reg := codec.DefaultRegistry()
	state, err := CaptureState(reg, &node{Label: "solo"})
	if err != nil {
		t.Fatal(err)
	}
	out := &node{}
	if err := RestoreState(reg, out, state); err != nil {
		t.Fatal(err)
	}
	if out.Next != nil {
		t.Fatalf("nil ref should stay nil, got %v", out.Next)
	}
}

func TestCaptureNeverBoundRefRejected(t *testing.T) {
	reg := codec.DefaultRegistry()
	_, err := CaptureState(reg, &node{Next: &Ref{}})
	if err == nil {
		t.Fatal("capturing a never-bound ref must fail")
	}
}

func TestLocalRefInvoke(t *testing.T) {
	n := &node{Value: []byte{9}}
	r := NewLocalRef(n, 1)
	if !r.IsResolved() {
		t.Fatal("local ref should be resolved")
	}
	res, err := r.Invoke("First")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != byte(9) {
		t.Fatalf("First: %#v", res[0])
	}
	if r.Calls() != 1 {
		t.Fatalf("calls: %d", r.Calls())
	}
}

func TestDerefTyped(t *testing.T) {
	n := &node{Label: "x"}
	r := NewLocalRef(n, 1)
	got, err := Deref[*node](r)
	if err != nil || got != n {
		t.Fatalf("deref: %v %v", got, err)
	}
	if _, err := Deref[*tree](r); err == nil {
		t.Fatal("wrong-type deref must fail")
	}
}

func TestUnboundRef(t *testing.T) {
	r := &Ref{}
	if _, err := r.Resolve(); !errors.Is(err, ErrUnboundRef) {
		t.Fatalf("want ErrUnboundRef, got %v", err)
	}
	if _, err := r.Invoke("First"); !errors.Is(err, ErrUnboundRef) {
		t.Fatalf("invoke: %v", err)
	}
}

// fakeFaulter counts demands and hands out a fixed object.
type fakeFaulter struct {
	mu      sync.Mutex
	demands int
	obj     any
	err     error
	remote  RemoteInvoker
}

func (f *fakeFaulter) ResolveFault() (any, RemoteInvoker, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.demands++
	return f.obj, f.remote, f.err
}

func (f *fakeFaulter) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.demands
}

type fakeRemote struct {
	mu    sync.Mutex
	calls []string
	res   []any
}

func (f *fakeRemote) RemoteInvoke(method string, args []any) ([]any, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = append(f.calls, method)
	return f.res, nil
}

func TestFaultingRefResolvesOnce(t *testing.T) {
	target := &node{Value: []byte{5}}
	ff := &fakeFaulter{obj: target}
	r := NewFaultingRef(10, ff, nil)
	if r.IsResolved() {
		t.Fatal("should start unresolved")
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.Invoke("First")
			if err != nil {
				errs <- err
				return
			}
			if res[0] != byte(5) {
				errs <- fmt.Errorf("got %v", res[0])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ff.count() != 1 {
		t.Fatalf("fault resolved %d times, want exactly 1", ff.count())
	}
	if !r.IsResolved() {
		t.Fatal("should be resolved after invoke")
	}
}

func TestFaultErrorPropagates(t *testing.T) {
	ff := &fakeFaulter{err: errors.New("link down")}
	r := NewFaultingRef(10, ff, nil)
	if _, err := r.Invoke("First"); err == nil {
		t.Fatal("fault error must propagate")
	}
	// The ref stays unresolved and can retry.
	ff.mu.Lock()
	ff.err = nil
	ff.obj = &node{Value: []byte{1}}
	ff.mu.Unlock()
	if _, err := r.Invoke("First"); err != nil {
		t.Fatalf("retry after failed fault: %v", err)
	}
}

func TestModeRemoteUsesRemoteInvoker(t *testing.T) {
	fr := &fakeRemote{res: []any{int64(1)}}
	ff := &fakeFaulter{obj: &node{}}
	r := NewFaultingRef(10, ff, fr)
	r.SetMode(ModeRemote)
	res, err := r.Invoke("First")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(1) {
		t.Fatalf("res: %#v", res)
	}
	if ff.count() != 0 {
		t.Fatal("ModeRemote must not fault the object in")
	}
	if r.IsResolved() {
		t.Fatal("ModeRemote must not resolve")
	}
	// Switching to local mode replicates on next call — the run-time
	// switch the paper advertises.
	r.SetMode(ModeLocal)
	if _, err := r.Invoke("First"); err != nil {
		t.Fatal(err)
	}
	if ff.count() != 1 || !r.IsResolved() {
		t.Fatal("ModeLocal should have faulted the object in")
	}
}

// decidingFaulter prefers RMI below a call threshold, LMI at or above it.
type decidingFaulter struct {
	fakeFaulter
	threshold uint64
}

func (d *decidingFaulter) PreferLocal(n uint64) bool { return n >= d.threshold }

func TestModeAutoCrossover(t *testing.T) {
	fr := &fakeRemote{res: []any{int64(0)}}
	df := &decidingFaulter{threshold: 3}
	df.obj = &node{}
	r := NewFaultingRef(10, df, fr)
	r.SetMode(ModeAuto)
	// Calls 1 and 2 go remote; call 3 crosses over and replicates.
	for i := 0; i < 2; i++ {
		if _, err := r.Invoke("First"); err != nil {
			t.Fatal(err)
		}
	}
	if df.count() != 0 {
		t.Fatal("crossed over too early")
	}
	if _, err := r.Invoke("First"); err != nil {
		t.Fatal(err)
	}
	if df.count() != 1 || !r.IsResolved() {
		t.Fatal("third call should have replicated")
	}
	fr.mu.Lock()
	remoteCalls := len(fr.calls)
	fr.mu.Unlock()
	if remoteCalls != 2 {
		t.Fatalf("remote calls: %d, want 2", remoteCalls)
	}
}

func TestModeRemoteAfterResolutionStillRMI(t *testing.T) {
	fr := &fakeRemote{res: []any{int64(7)}}
	n := &node{Value: []byte{1}}
	r := NewLocalRef(n, 5)
	r.SetRemote(fr)
	r.SetMode(ModeRemote)
	res, err := r.Invoke("First")
	if err != nil || res[0] != int64(7) {
		t.Fatalf("res=%v err=%v", res, err)
	}
	r.SetMode(ModeLocal)
	res, err = r.Invoke("First")
	if err != nil || res[0] != byte(1) {
		t.Fatalf("local res=%v err=%v", res, err)
	}
}

func TestBindLocalSplice(t *testing.T) {
	ff := &fakeFaulter{obj: &node{}}
	r := NewFaultingRef(10, ff, nil)
	replica := &node{Label: "replica"}
	r.BindLocal(replica, 10)
	got, err := Deref[*node](r)
	if err != nil || got != replica {
		t.Fatalf("deref: %v %v", got, err)
	}
	if ff.count() != 0 {
		t.Fatal("bound ref must not fault")
	}
}

func TestOIDString(t *testing.T) {
	oid := OID(uint64(3)<<48 | 42)
	if got := oid.String(); got != "3/42" {
		t.Fatalf("oid string: %q", got)
	}
}

func TestRefString(t *testing.T) {
	r := NewLocalRef(&node{}, 1)
	if s := r.String(); s == "" {
		t.Fatal("empty string")
	}
	r2 := NewFaultingRef(2, &fakeFaulter{}, nil)
	if s := r2.String(); s == "" {
		t.Fatal("empty string")
	}
}

func TestInvocationModeString(t *testing.T) {
	for m, want := range map[InvocationMode]string{
		ModeLocal:         "local",
		ModeRemote:        "remote",
		ModeAuto:          "auto",
		InvocationMode(9): "mode(9)",
	} {
		if got := m.String(); got != want {
			t.Fatalf("mode %d: %q want %q", m, got, want)
		}
	}
}

// payloadHeavy has many non-ref fields: the plan cache must skip them all.
type payloadHeavy struct {
	A, B, C, D [256]byte
	S1, S2     string
	N1, N2, N3 int64
	Blob       []byte
	Next       *Ref
}

func (p *payloadHeavy) Kind() string { return "heavy" }

func init() {
	MustRegisterType("objmodel_test.heavy", (*payloadHeavy)(nil))
}

func TestRefsOfPlanCorrectness(t *testing.T) {
	h := &payloadHeavy{Blob: make([]byte, 1<<16)}
	if refs := RefsOf(h); len(refs) != 0 {
		t.Fatalf("refs in ref-less heavy object: %d", len(refs))
	}
	h.Next = &Ref{}
	refs := RefsOf(h)
	if len(refs) != 1 || refs[0] != h.Next {
		t.Fatalf("plan missed the direct ref: %v", refs)
	}
}

func TestRefsOfNilAndNonStruct(t *testing.T) {
	if refs := RefsOf((*payloadHeavy)(nil)); refs != nil {
		t.Fatalf("nil pointer: %v", refs)
	}
}

func TestCouldContainRefRecursiveTypes(t *testing.T) {
	type selfRef struct {
		Next *selfRef
		R    *Ref
	}
	if !couldContainRef(reflect.TypeOf(selfRef{})) {
		t.Fatal("recursive type with ref must report true")
	}
	type pureChain struct {
		Next *pureChain
		N    int
	}
	if couldContainRef(reflect.TypeOf(pureChain{})) {
		t.Fatal("ref-free recursive type must report false")
	}
}

func BenchmarkRefsOfHeavyPayload(b *testing.B) {
	h := &payloadHeavy{Blob: make([]byte, 4096), Next: &Ref{}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := RefsOf(h); len(got) != 1 {
			b.Fatal("wrong refs")
		}
	}
}

func BenchmarkRefsOfSliceOfRefs(b *testing.B) {
	tr := &tree{Children: make([]*Ref, 64)}
	for i := range tr.Children {
		tr.Children[i] = &Ref{}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := RefsOf(tr); len(got) != 64 {
			b.Fatal("wrong refs")
		}
	}
}

func TestRefBindFaultAndAccessors(t *testing.T) {
	ff := &fakeFaulter{obj: &node{Value: []byte{7}}}
	fr := &fakeRemote{res: []any{int64(1)}}
	r := &Ref{}
	r.BindFault(42, ff, fr)
	if r.OID() != 42 || r.IsResolved() {
		t.Fatalf("after BindFault: %v", r)
	}
	if r.Faulter() != Faulter(ff) {
		t.Fatal("Faulter accessor")
	}
	if r.Remote() != RemoteInvoker(fr) {
		t.Fatal("Remote accessor")
	}
	if r.Mode() != ModeLocal {
		t.Fatalf("default mode: %v", r.Mode())
	}
	// BindFault with nil remote keeps the previous invoker.
	r.BindFault(43, ff, nil)
	if r.Remote() != RemoteInvoker(fr) {
		t.Fatal("nil remote must not clobber")
	}
	// Resolve through the fault, then the faulter is gone.
	if _, err := r.Resolve(); err != nil {
		t.Fatal(err)
	}
	if r.Faulter() != nil {
		t.Fatal("faulter must clear after resolution")
	}
}

func TestMustRegisterTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegisterType must panic on invalid samples")
		}
	}()
	MustRegisterType("objmodel_test.bad", 42)
}

func TestRestoreStateRejectsJunk(t *testing.T) {
	out := &node{}
	if err := RestoreState(codec.DefaultRegistry(), out, []byte{0xff, 0xff}); err == nil {
		t.Fatal("junk state must fail to restore")
	}
}
