// Package objmodel provides the dynamic object-graph substrate OBIWAN
// manipulates: object identities (OIDs), a type registry, reference
// discovery by reflection, and the Ref slot type that application objects
// hold in place of direct pointers to other OBIWAN objects.
//
// The original prototype leaned on the JVM for all of this — classes are
// self-describing, object graphs serialize natively, and dynamic proxies
// implement arbitrary interfaces at run time. Go has none of it, so this
// package rebuilds the contract the paper's architecture needs:
//
//   - An OBIWAN object is a pointer to a registered struct type. Its state
//     (exported fields) is what replication ships between sites.
//   - Objects reference each other only through *Ref fields ("objects can
//     only be manipulated by means of method invocation ... no direct
//     access to internal data" — §2.1 of the paper). A Ref either holds a
//     local target (master or replica) or a proxy-out stand-in that
//     resolves the object fault on first use.
//   - RefsOf discovers an object's reference fields by reflection, which
//     is what lets the replication engine traverse reachability graphs.
package objmodel

import (
	"fmt"
	"reflect"
	"sync"

	"obiwan/internal/codec"
	"obiwan/internal/invoke"
)

// OID is a globally unique object identity. The high bits carry the id of
// the site that created the master (see heap.New), so two sites can mint
// identities without coordination.
type OID uint64

// String formats the OID as site/sequence.
func (o OID) String() string {
	return fmt.Sprintf("%d/%d", uint64(o)>>48, uint64(o)&((1<<48)-1))
}

// Info describes a registered OBIWAN object type.
type Info struct {
	// Name is the stable wire name shared by all sites.
	Name string
	// Type is the struct type (pointer stripped).
	Type reflect.Type
	// Methods is the exported method set of *Type, used for LMI dispatch.
	Methods map[string]reflect.Method
}

var (
	typesMu     sync.RWMutex
	typesByName = make(map[string]*Info)
	typesByType = make(map[reflect.Type]*Info)

	refType = reflect.TypeOf((*Ref)(nil))
)

// RegisterType registers an application object type under a stable wire
// name. sample must be a struct or pointer to struct with at least one
// exported method (objects are manipulated only through methods). The type
// is simultaneously registered with the codec so its state can travel.
// Registration is idempotent for the same name/type pair.
func RegisterType(name string, sample any) error {
	t := reflect.TypeOf(sample)
	for t != nil && t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t == nil || t.Kind() != reflect.Struct {
		return fmt.Errorf("objmodel: %q: sample must be a struct or pointer to struct, got %T", name, sample)
	}
	methods, err := invoke.MethodTable(reflect.PointerTo(t))
	if err != nil {
		return fmt.Errorf("objmodel: %q: %w", name, err)
	}
	if err := codec.Register(name, sample); err != nil {
		return fmt.Errorf("objmodel: %w", err)
	}
	info := &Info{Name: name, Type: t, Methods: methods}
	typesMu.Lock()
	defer typesMu.Unlock()
	if prev, ok := typesByName[name]; ok && prev.Type != t {
		return fmt.Errorf("objmodel: name %q already registered for %v", name, prev.Type)
	}
	typesByName[name] = info
	typesByType[t] = info
	return nil
}

// MustRegisterType is RegisterType but panics on error; for package-scoped
// registration.
func MustRegisterType(name string, sample any) {
	if err := RegisterType(name, sample); err != nil {
		panic(err)
	}
}

// InfoByName returns the registered info for a wire name.
func InfoByName(name string) (*Info, bool) {
	typesMu.RLock()
	defer typesMu.RUnlock()
	info, ok := typesByName[name]
	return info, ok
}

// InfoOf returns the registered info for obj's dynamic type.
func InfoOf(obj any) (*Info, bool) {
	t := reflect.TypeOf(obj)
	for t != nil && t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t == nil {
		return nil, false
	}
	typesMu.RLock()
	defer typesMu.RUnlock()
	info, ok := typesByType[t]
	return info, ok
}

// New creates a zero instance (pointer to struct) of the registered type.
func (i *Info) New() any { return reflect.New(i.Type).Interface() }

// CaptureState serializes obj's exported fields (its replica state).
// Reference fields encode as their target OIDs.
func CaptureState(reg *codec.Registry, obj any) ([]byte, error) {
	e := codec.NewEncoder(128)
	if err := e.EncodeStruct(reg, obj); err != nil {
		return nil, fmt.Errorf("objmodel: capture %T: %w", obj, err)
	}
	// Copy out: the encoder buffer would otherwise be retained.
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

// RestoreState decodes state into obj (a pointer to a registered struct).
// Reference fields come back unbound, carrying only their OIDs; the caller
// (the replication materializer) binds them.
func RestoreState(reg *codec.Registry, obj any, state []byte) error {
	if err := codec.NewDecoder(state).DecodeStruct(reg, obj); err != nil {
		return fmt.Errorf("objmodel: restore %T: %w", obj, err)
	}
	return nil
}

// RefsOf returns every non-nil *Ref reachable through obj's exported
// fields: direct fields, elements of slices/arrays/maps, and fields of
// nested structs (a nested struct is part of the same OBIWAN object).
// It does not follow Refs — the targets are separate objects.
//
// Discovery is driven by a cached per-type plan (see refplan.go), so
// payload-only fields cost nothing per call.
func RefsOf(obj any) []*Ref {
	v := reflect.ValueOf(obj)
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return nil
		}
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		var refs []*Ref
		collectRefs(v, &refs)
		return refs
	}
	plan := planFor(v.Type())
	if len(plan.fields) == 0 {
		return nil
	}
	var refs []*Ref
	for _, f := range plan.fields {
		fv := v.Field(f.index)
		if f.kind == refDirect {
			if !fv.IsNil() {
				refs = append(refs, fv.Interface().(*Ref))
			}
			continue
		}
		collectRefs(fv, &refs)
	}
	return refs
}

func collectRefs(v reflect.Value, out *[]*Ref) {
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() {
			return
		}
		if v.Type() == refType {
			*out = append(*out, v.Interface().(*Ref))
			return
		}
		collectRefs(v.Elem(), out)
	case reflect.Struct:
		plan := planFor(v.Type())
		for _, f := range plan.fields {
			fv := v.Field(f.index)
			if f.kind == refDirect {
				if !fv.IsNil() {
					*out = append(*out, fv.Interface().(*Ref))
				}
				continue
			}
			collectRefs(fv, out)
		}
	case reflect.Slice, reflect.Array:
		// Element types that cannot hold refs are skipped wholesale.
		if !couldContainRef(v.Type().Elem()) {
			return
		}
		for i := 0; i < v.Len(); i++ {
			collectRefs(v.Index(i), out)
		}
	case reflect.Map:
		if !couldContainRef(v.Type().Elem()) {
			return
		}
		iter := v.MapRange()
		for iter.Next() {
			collectRefs(iter.Value(), out)
		}
	case reflect.Interface:
		if !v.IsNil() {
			collectRefs(v.Elem(), out)
		}
	}
}
