package objmodel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"obiwan/internal/codec"
	"obiwan/internal/invoke"
)

// InvocationMode selects how a Ref's Invoke reaches the target — the
// paper's headline capability: "the application [decides], in run-time,
// the mechanism by which objects should be invoked, remote method
// invocation or invocation on a local replica".
type InvocationMode uint8

const (
	// ModeLocal (default) replicates the target on first use (raising an
	// object fault) and invokes the local replica — LMI.
	ModeLocal InvocationMode = iota
	// ModeRemote invokes the master through its proxy-in via RMI, never
	// replicating.
	ModeRemote
	// ModeAuto lets the platform's QoS model choose per invocation.
	ModeAuto
)

func (m InvocationMode) String() string {
	switch m {
	case ModeLocal:
		return "local"
	case ModeRemote:
		return "remote"
	case ModeAuto:
		return "auto"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Faulter resolves an object fault: it replicates the Ref's target into
// this site and returns the local replica. Implemented by the replication
// engine's proxy-out.
type Faulter interface {
	// ResolveFault performs the demand: fetch the target (and, per the
	// replication spec, a batch or cluster around it), materialize it
	// locally, and return it together with a remote invoker for later
	// master-directed calls (which may be nil).
	ResolveFault() (local any, remote RemoteInvoker, err error)
}

// RemoteInvoker invokes a method on the master copy of an object via RMI.
type RemoteInvoker interface {
	RemoteInvoke(method string, args []any) ([]any, error)
}

// AutoDecider is optionally implemented by Faulters that can advise
// ModeAuto refs whether replicating now beats continuing over RMI.
type AutoDecider interface {
	// PreferLocal reports whether, after n invocations through this ref,
	// faulting the object in is expected to win over RMI.
	PreferLocal(n uint64) bool
}

// InvokeObserver receives one notification per invocation through a Ref:
// the target's identity and whether the call went remote (RMI) or ran on
// a local copy (LMI). The replication engine installs one to feed the
// per-object profiler; objmodel stays telemetry-agnostic.
type InvokeObserver func(oid OID, remote bool)

// ErrUnboundRef is returned when an unresolved Ref has no faulter to
// demand its target from.
var ErrUnboundRef = errors.New("objmodel: unbound reference")

// Ref is the reference slot an OBIWAN object holds in place of a direct
// pointer to another OBIWAN object. It is the Go rendering of the paper's
// interface-typed fields: before replication the slot is backed by a
// proxy-out (method calls raise an object fault); after resolution it holds
// the local object and calls are direct, "with no indirection at all".
//
// A Ref is safe for concurrent use. The zero Ref is unbound.
type Ref struct {
	mu       sync.Mutex
	oid      OID
	local    any
	faulter  Faulter
	remote   RemoteInvoker
	mode     InvocationMode
	observer InvokeObserver

	// faultMu serializes fault resolution so concurrent first calls issue
	// one demand.
	faultMu sync.Mutex

	// calls counts invocations through this ref, feeding the Auto policy's
	// crossover model (figure 4).
	calls atomic.Uint64
}

var _ codec.Marshaler = (*Ref)(nil)
var _ codec.Unmarshaler = (*Ref)(nil)

// NewLocalRef returns a Ref bound to a local object with identity oid.
func NewLocalRef(target any, oid OID) *Ref {
	return &Ref{oid: oid, local: target}
}

// NewFaultingRef returns an unresolved Ref whose target will be demanded
// from f on first use. remote may be nil if the target cannot be invoked
// remotely.
func NewFaultingRef(oid OID, f Faulter, remote RemoteInvoker) *Ref {
	return &Ref{oid: oid, faulter: f, remote: remote}
}

// OID returns the identity of the ref's target (0 if never bound).
func (r *Ref) OID() OID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.oid
}

// IsResolved reports whether the target is locally available.
func (r *Ref) IsResolved() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.local != nil
}

// Mode returns the ref's invocation mode.
func (r *Ref) Mode() InvocationMode {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mode
}

// SetMode switches the invocation mode at run time.
func (r *Ref) SetMode(m InvocationMode) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mode = m
}

// Calls returns how many invocations have gone through this ref.
func (r *Ref) Calls() uint64 { return r.calls.Load() }

// BindLocal splices a local target into the slot — the paper's
// updateMember step. Any proxy-out backing the slot is detached (and
// becomes garbage). The remote invoker is retained so ModeRemote keeps
// working after resolution.
func (r *Ref) BindLocal(target any, oid OID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.local = target
	r.oid = oid
	r.faulter = nil
}

// BindFault points the slot at a proxy-out.
func (r *Ref) BindFault(oid OID, f Faulter, remote RemoteInvoker) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.oid = oid
	r.faulter = f
	if remote != nil {
		r.remote = remote
	}
	r.local = nil
}

// SetRemote installs the remote invoker used by ModeRemote.
func (r *Ref) SetRemote(remote RemoteInvoker) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.remote = remote
}

// SetInvokeObserver installs (or clears, with nil) the per-invocation
// observer. The unobserved fast path costs one nil check inside the
// mutex hold Invoke already takes.
func (r *Ref) SetInvokeObserver(fn InvokeObserver) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observer = fn
}

// Remote returns the ref's remote invoker, if any.
func (r *Ref) Remote() RemoteInvoker {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.remote
}

// Faulter returns the proxy-out backing an unresolved ref, or nil. The
// replication engine uses it to propagate frontier information (e.g. when a
// master site itself holds proxies to objects at a third site).
func (r *Ref) Faulter() Faulter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.faulter
}

// Resolve returns the local target, raising and resolving an object fault
// if the target is not yet replicated here.
func (r *Ref) Resolve() (any, error) {
	r.mu.Lock()
	if r.local != nil {
		obj := r.local
		r.mu.Unlock()
		return obj, nil
	}
	f := r.faulter
	r.mu.Unlock()
	if f == nil {
		return nil, ErrUnboundRef
	}

	r.faultMu.Lock()
	defer r.faultMu.Unlock()
	// Another goroutine may have resolved while we waited.
	r.mu.Lock()
	if r.local != nil {
		obj := r.local
		r.mu.Unlock()
		return obj, nil
	}
	f = r.faulter
	r.mu.Unlock()
	if f == nil {
		return nil, ErrUnboundRef
	}

	local, remote, err := f.ResolveFault()
	if err != nil {
		return nil, fmt.Errorf("objmodel: fault on %v: %w", r.oid, err)
	}
	r.mu.Lock()
	r.local = local
	r.faulter = nil
	if remote != nil {
		r.remote = remote
	}
	r.mu.Unlock()
	return local, nil
}

// Invoke calls method on the ref's target following the invocation mode:
// LMI on the (possibly just-replicated) local object, or RMI to the master.
func (r *Ref) Invoke(method string, args ...any) ([]any, error) {
	n := r.calls.Add(1)

	r.mu.Lock()
	mode := r.mode
	remote := r.remote
	local := r.local
	faulter := r.faulter
	observer := r.observer
	oid := r.oid
	r.mu.Unlock()

	useRemote := false
	switch mode {
	case ModeRemote:
		useRemote = remote != nil
	case ModeAuto:
		if local == nil && remote != nil {
			if ad, ok := faulter.(AutoDecider); ok {
				useRemote = !ad.PreferLocal(n)
			}
		}
	}
	if observer != nil {
		observer(oid, useRemote)
	}
	if useRemote {
		results, err := remote.RemoteInvoke(method, args)
		if err != nil {
			return nil, fmt.Errorf("objmodel: remote invoke %s on %v: %w", method, r.oid, err)
		}
		return results, nil
	}

	obj, err := r.Resolve()
	if err != nil {
		return nil, err
	}
	return invoke.Call(obj, method, args)
}

// Deref resolves the ref and asserts the target to T, giving typed,
// indirection-free access — the post-updateMember fast path.
func Deref[T any](r *Ref) (T, error) {
	var zero T
	obj, err := r.Resolve()
	if err != nil {
		return zero, err
	}
	t, ok := obj.(T)
	if !ok {
		return zero, fmt.Errorf("objmodel: %v holds %T, not %T", r.oid, obj, zero)
	}
	return t, nil
}

// MarshalOBI encodes the ref as its target OID. The surrounding payload
// carries the information needed to rebind it at the receiving site.
func (r *Ref) MarshalOBI(e *codec.Encoder) error {
	r.mu.Lock()
	oid := r.oid
	r.mu.Unlock()
	if oid == 0 {
		return fmt.Errorf("objmodel: cannot serialize a never-bound Ref")
	}
	e.WriteUvarint(uint64(oid))
	return nil
}

// UnmarshalOBI decodes a ref into the unbound state (OID only). The
// replication materializer binds it to a local object or proxy-out.
func (r *Ref) UnmarshalOBI(d *codec.Decoder) error {
	v, err := d.ReadUvarint()
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.oid = OID(v)
	r.local = nil
	r.faulter = nil
	r.remote = nil
	r.mu.Unlock()
	return nil
}

func (r *Ref) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	state := "unbound"
	switch {
	case r.local != nil:
		state = "resolved"
	case r.faulter != nil:
		state = "proxied"
	}
	return fmt.Sprintf("ref{%v %s %s}", r.oid, state, r.mode)
}
