package objmodel

import (
	"reflect"
	"sync"
)

// Reference discovery is on the replication hot path: payload assembly
// calls RefsOf once per shipped object. A naive reflective walk visits
// every field of every nested value; the plan cache below computes, once
// per type, which top-level fields can possibly contain references — a
// payload field ([]byte, string, int...) is skipped without reflection.

// refFieldKind classifies how a field is scanned.
type refFieldKind uint8

const (
	// refDirect is a *Ref field: read it straight.
	refDirect refFieldKind = iota
	// refScan is a container/nested field that may hold refs: walk it
	// dynamically.
	refScan
)

type refField struct {
	index int
	kind  refFieldKind
}

// refPlan lists the fields of a struct type worth scanning.
type refPlan struct {
	fields []refField
}

var (
	planMu    sync.RWMutex
	plans     = make(map[reflect.Type]*refPlan)
	containMu sync.Mutex
	contains  = make(map[reflect.Type]bool)
)

// planFor returns (building and caching if needed) the scan plan for a
// struct type.
func planFor(t reflect.Type) *refPlan {
	planMu.RLock()
	p, ok := plans[t]
	planMu.RUnlock()
	if ok {
		return p
	}
	p = &refPlan{}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		switch {
		case f.Type == refType:
			p.fields = append(p.fields, refField{index: i, kind: refDirect})
		case couldContainRef(f.Type):
			p.fields = append(p.fields, refField{index: i, kind: refScan})
		}
	}
	planMu.Lock()
	plans[t] = p
	planMu.Unlock()
	return p
}

// couldContainRef conservatively reports whether a value of type t can
// reach a *Ref through exported structure. Interfaces report true (their
// dynamic type is unknown).
func couldContainRef(t reflect.Type) bool {
	containMu.Lock()
	defer containMu.Unlock()
	return couldContainRefLocked(t)
}

func couldContainRefLocked(t reflect.Type) bool {
	if t == refType {
		return true
	}
	if v, ok := contains[t]; ok {
		return v
	}
	// Tentatively false: breaks recursion cycles; any real ref path that
	// does not pass through the cycle still reports true.
	contains[t] = false
	var result bool
	switch t.Kind() {
	case reflect.Pointer, reflect.Slice, reflect.Array:
		result = couldContainRefLocked(t.Elem())
	case reflect.Map:
		result = couldContainRefLocked(t.Elem())
	case reflect.Interface:
		result = true
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.IsExported() && couldContainRefLocked(f.Type) {
				result = true
				break
			}
		}
	default:
		result = false
	}
	contains[t] = result
	return result
}
