package site

import (
	"fmt"
	"sort"

	"obiwan/internal/heap"
	"obiwan/internal/replication"
)

// Replica eviction serves the paper's memory-constrained info-appliances:
// "situations in which an application does not need to invoke all objects
// of a graph, or when the info-appliance where the application is running
// has limited memory" (§2.1). Evicting a replica removes it from the
// site's heap, so its memory can be reclaimed once the application drops
// its own pointers; the object can always be demanded again through any
// reference that still proxies it (or a fresh Lookup).
//
// Semantics worth being explicit about:
//
//   - References already spliced to the replica keep working (they hold
//     the object directly; Go's GC keeps it alive as long as they do).
//     Eviction removes the identity mapping, so *future* demands fetch a
//     fresh copy instead of deduplicating onto the evicted one.
//   - Dirty replicas are not evicted by default: their edits would be
//     lost. Pass force=true to discard them.
//   - Cluster members evict as a whole cluster (they share one proxy pair
//     and one update unit).

// ErrDirtyReplica is returned by Evict when the replica has unsaved local
// modifications and force is false.
var ErrDirtyReplica = fmt.Errorf("site: replica has unsaved modifications (sync or force)")

// Evict removes a replica (or, for a cluster member, its whole cluster)
// from the site's heap. It returns the number of objects evicted.
func (s *Site) Evict(obj any, force bool) (int, error) {
	entry, ok := s.heap.EntryOf(obj)
	if !ok {
		return 0, heap.ErrUnknownObject
	}
	if entry.Role != heap.Replica {
		return 0, replication.ErrNotReplica
	}
	group := []*heap.Entry{entry}
	if entry.ClusterMember() {
		group = s.clusterEntries(entry)
	}
	if !force {
		for _, e := range group {
			if e.Dirty() {
				return 0, fmt.Errorf("%w: %v", ErrDirtyReplica, e.OID)
			}
		}
	}
	for _, e := range group {
		s.heap.Remove(e.OID)
		s.stale.Clear(e.OID)
	}
	if entry.ClusterMember() {
		s.engine.ForgetCluster(entry.ClusterRoot())
	}
	return len(group), nil
}

// clusterEntries returns the live heap entries of the cluster containing
// member.
func (s *Site) clusterEntries(member *heap.Entry) []*heap.Entry {
	root := member.ClusterRoot()
	var out []*heap.Entry
	for _, e := range s.heap.Entries() {
		if e.Role == heap.Replica && e.ClusterRoot() == root {
			out = append(out, e)
		}
	}
	return out
}

// EvictColdest evicts clean, non-cluster replicas in
// least-recently-fetched order until at most keep replicas remain (or no
// more clean candidates exist). It returns the number evicted. This is the
// working-set trim an info-appliance runs under memory pressure.
func (s *Site) EvictColdest(keep int) int {
	var replicas []*heap.Entry
	for _, e := range s.heap.Entries() {
		if e.Role == heap.Replica {
			replicas = append(replicas, e)
		}
	}
	if len(replicas) <= keep {
		return 0
	}
	sort.Slice(replicas, func(i, j int) bool {
		return replicas[i].FetchedAt().Before(replicas[j].FetchedAt())
	})
	evicted := 0
	for _, e := range replicas {
		if len(replicas)-evicted <= keep {
			break
		}
		if e.Dirty() || e.ClusterMember() {
			continue // never silently drop edits or split clusters
		}
		s.heap.Remove(e.OID)
		s.stale.Clear(e.OID)
		evicted++
	}
	return evicted
}

// ReplicaCount returns how many replicas the site currently holds.
func (s *Site) ReplicaCount() int {
	n := 0
	for _, e := range s.heap.Entries() {
		if e.Role == heap.Replica {
			n++
		}
	}
	return n
}
