package site

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"obiwan/internal/heap"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
)

// bindChain publishes a chain of n notes at the server.
func bindChain(t *testing.T, server *Site, name string, n int) []*note {
	t.Helper()
	notes := make([]*note, n)
	for i := range notes {
		notes[i] = &note{Text: fmt.Sprintf("n%d", i)}
		if err := server.Register(notes[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n-1; i++ {
		r, err := server.NewRef(notes[i+1])
		if err != nil {
			t.Fatal(err)
		}
		notes[i].Next = r
	}
	if err := server.Bind(name, notes[0]); err != nil {
		t.Fatal(err)
	}
	return notes
}

func TestEvictAndRefetch(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	mobile := w.site("mobile")
	bindChain(t, server, "chain", 2)

	ref, err := mobile.Lookup("chain")
	if err != nil {
		t.Fatal(err)
	}
	head, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}
	if mobile.ReplicaCount() != 1 {
		t.Fatalf("replicas: %d", mobile.ReplicaCount())
	}
	n, err := mobile.Evict(head, false)
	if err != nil || n != 1 {
		t.Fatalf("evict: %d %v", n, err)
	}
	if mobile.ReplicaCount() != 0 {
		t.Fatal("replica still in heap")
	}
	// The spliced ref still works (it holds the object directly).
	if res, err := ref.Invoke("Read"); err != nil || res[0] != "n0" {
		t.Fatalf("spliced ref after evict: %v %v", res, err)
	}
	// A fresh lookup re-fetches a new copy.
	ref2, err := mobile.Lookup("chain")
	if err != nil {
		t.Fatal(err)
	}
	head2, err := objmodel.Deref[*note](ref2)
	if err != nil {
		t.Fatal(err)
	}
	if head2 == head {
		t.Fatal("evicted identity must not dedupe")
	}
}

func TestEvictRefusesDirty(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	mobile := w.site("mobile")
	bindChain(t, server, "chain", 1)

	ref, err := mobile.Lookup("chain")
	if err != nil {
		t.Fatal(err)
	}
	head, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}
	head.Write("edited")
	if err := mobile.MarkUpdated(head); err != nil {
		t.Fatal(err)
	}
	if _, err := mobile.Evict(head, false); !errors.Is(err, ErrDirtyReplica) {
		t.Fatalf("dirty evict: %v", err)
	}
	// Forced eviction discards the edit.
	if n, err := mobile.Evict(head, true); err != nil || n != 1 {
		t.Fatalf("forced evict: %d %v", n, err)
	}
}

func TestEvictClusterAsUnit(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	mobile := w.site("mobile")
	bindChain(t, server, "chain", 4)

	ref, err := mobile.LookupSpec("chain", replication.GetSpec{
		Mode: replication.Incremental, Batch: 4, Clustered: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	head, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}
	if mobile.ReplicaCount() != 4 {
		t.Fatalf("replicas: %d", mobile.ReplicaCount())
	}
	n, err := mobile.Evict(head, false)
	if err != nil || n != 4 {
		t.Fatalf("cluster evict: %d %v", n, err)
	}
	if mobile.ReplicaCount() != 0 {
		t.Fatal("cluster not fully evicted")
	}
}

func TestEvictColdestKeepsWorkingSet(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	mobile := w.site("mobile")

	// Replicate 5 independent roots with distinct fetch times.
	heads := make([]*note, 5)
	for i := range heads {
		bindChain(t, server, fmt.Sprintf("doc%d", i), 1)
		ref, err := mobile.Lookup(fmt.Sprintf("doc%d", i))
		if err != nil {
			t.Fatal(err)
		}
		h, err := objmodel.Deref[*note](ref)
		if err != nil {
			t.Fatal(err)
		}
		heads[i] = h
		e, _ := mobile.Heap().EntryOf(h)
		e.Touch(time.Unix(int64(1000+i), 0)) // deterministic age order
	}
	// Dirty the oldest: it must survive the trim.
	if err := mobile.MarkUpdated(heads[0]); err != nil {
		t.Fatal(err)
	}

	evicted := mobile.EvictColdest(2)
	if evicted != 3 {
		t.Fatalf("evicted %d, want 3", evicted)
	}
	// Two survivors: the dirty oldest (never dropped silently) counts
	// toward the budget, plus the newest.
	for i, want := range []bool{true, false, false, false, true} {
		_, ok := mobile.Heap().EntryOf(heads[i])
		if ok != want {
			t.Fatalf("head %d present=%v want %v", i, ok, want)
		}
	}
	// No-op when already within budget.
	if n := mobile.EvictColdest(10); n != 0 {
		t.Fatalf("within budget evicted %d", n)
	}
}

func TestEvictValidation(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	notes := bindChain(t, server, "chain", 1)
	if _, err := server.Evict(notes[0], false); !errors.Is(err, replication.ErrNotReplica) {
		t.Fatalf("evicting a master: %v", err)
	}
	if _, err := server.Evict(&note{}, false); !errors.Is(err, heap.ErrUnknownObject) {
		t.Fatalf("evicting unknown: %v", err)
	}
}

func TestEvictClusterForgetsBookkeeping(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	mobile := w.site("mobile")
	notes := bindChain(t, server, "chain", 3)

	spec := replication.GetSpec{Mode: replication.Incremental, Batch: 3, Clustered: true}
	ref, err := mobile.LookupSpec("chain", spec)
	if err != nil {
		t.Fatal(err)
	}
	head, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := mobile.Evict(head, false); err != nil || n != 3 {
		t.Fatalf("evict: %d %v", n, err)
	}
	// Re-replicate the same cluster and put it: the bookkeeping must have
	// been rebuilt cleanly rather than pointing at evicted members.
	ref2, err := mobile.LookupSpec("chain", spec)
	if err != nil {
		t.Fatal(err)
	}
	head2, err := objmodel.Deref[*note](ref2)
	if err != nil {
		t.Fatal(err)
	}
	head2.Write("after re-replication")
	if err := mobile.PutCluster(head2); err != nil {
		t.Fatal(err)
	}
	if notes[0].Text != "after re-replication" {
		t.Fatalf("master: %q", notes[0].Text)
	}
}
