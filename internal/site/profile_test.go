package site

import (
	"strings"
	"testing"

	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/telemetry"
)

// TestThreeSiteDemandChainProfiles drives the paper's fault chain —
// gamma demands doc-0 from alpha, then follows its frontier to doc-1 at
// beta — and checks every site built per-OID profiles for its side of
// the protocol: faults and demand bytes at the demander, serves at each
// provider.
func TestThreeSiteDemandChainProfiles(t *testing.T) {
	w := newWorld(t)
	mk := func(name string) *Site {
		return w.site(name, WithTelemetry(telemetry.NewHub(name, telemetry.WithClock(tickClock()))))
	}
	alpha, beta, gamma := mk("alpha"), mk("beta"), mk("gamma")

	doc1 := &note{Text: "doc-1"}
	d1, err := beta.Export(doc1)
	if err != nil {
		t.Fatal(err)
	}
	doc0 := &note{Text: "doc-0", Next: alpha.Engine().RefFromDescriptor(d1, replication.DefaultSpec)}
	d0, err := alpha.Export(doc0)
	if err != nil {
		t.Fatal(err)
	}

	spec := replication.GetSpec{Mode: replication.Incremental, Batch: 1}
	ref0 := gamma.Engine().RefFromDescriptor(d0, spec)
	obj0, err := gamma.Replicate(ref0, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gamma.Replicate(obj0.(*note).Next, spec); err != nil {
		t.Fatal(err)
	}

	// Demander side: gamma faulted both documents over the network.
	gsnap := gamma.Telemetry().ProfileSnapshot(0)
	for _, oid := range []uint64{uint64(d0.OID), uint64(d1.OID)} {
		p, ok := gsnap.Get(oid)
		if !ok {
			t.Fatalf("gamma has no profile for %#x:\n%s", oid, gsnap.Format())
		}
		if p.Faults != 1 || p.RemoteDemands != 1 || p.DemandBytes == 0 || p.AvgFaultNS() <= 0 {
			t.Fatalf("gamma profile for %#x: %+v", oid, p)
		}
	}

	// Provider sides: each master served exactly its own document, with
	// payload accounting.
	for _, tc := range []struct {
		s   *Site
		oid uint64
	}{{alpha, uint64(d0.OID)}, {beta, uint64(d1.OID)}} {
		snap := tc.s.Telemetry().ProfileSnapshot(0)
		p, ok := snap.Get(tc.oid)
		if !ok || p.Serves != 1 || p.ServeBytes == 0 {
			t.Fatalf("%s profile for %#x: ok=%v %+v", tc.s.Name(), tc.oid, ok, p)
		}
	}

	// The profiles travel over the admin surface too (alpha inspecting
	// gamma), hottest first.
	remote, err := alpha.InspectProfile(gamma.Addr(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Site != "gamma" || len(remote.Objects) < 2 {
		t.Fatalf("remote profile: %+v", remote)
	}
	if !strings.Contains(remote.Format(), "hot objects") {
		t.Fatalf("remote format:\n%s", remote.Format())
	}
}

// TestProfileCountsLMIvsRMI: invocations through a ref attribute to the
// right column depending on the mode that carried them.
func TestProfileCountsLMIvsRMI(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	mobile := w.site("mobile")

	master := &note{Text: "hello"}
	d, err := server.Export(master)
	if err != nil {
		t.Fatal(err)
	}
	ref := mobile.Engine().RefFromDescriptor(d, replication.DefaultSpec)

	// Two RMI invocations against the master, then a local replica and
	// two LMI invocations.
	ref.SetMode(objmodel.ModeRemote)
	for i := 0; i < 2; i++ {
		if _, err := ref.Invoke("Read"); err != nil {
			t.Fatal(err)
		}
	}
	ref.SetMode(objmodel.ModeLocal)
	for i := 0; i < 2; i++ {
		if _, err := ref.Invoke("Read"); err != nil {
			t.Fatal(err)
		}
	}

	p, ok := mobile.Telemetry().ProfileSnapshot(0).Get(uint64(d.OID))
	if !ok {
		t.Fatal("no profile for the invoked object")
	}
	if p.RMICalls != 2 || p.LMICalls != 2 {
		t.Fatalf("rmi=%d lmi=%d, want 2/2", p.RMICalls, p.LMICalls)
	}
	if p.Faults != 1 {
		t.Fatalf("faults=%d, want 1 (the ModeLocal switch)", p.Faults)
	}
}

// TestWatchPeerStreamsSpansOnce: the site-level streaming helper honors
// the cursor contract across polls.
func TestWatchPeerStreamsSpansOnce(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	mobile := w.site("mobile")

	server.Telemetry().StartRoot("first").End()
	chunk, err := mobile.WatchPeer(server.Addr(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunk.Spans) != 1 || chunk.Spans[0].Name != "first" {
		t.Fatalf("first chunk: %+v", chunk.Spans)
	}
	chunk2, err := mobile.WatchPeer(server.Addr(), chunk.NextCursor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunk2.Spans) != 0 {
		t.Fatalf("span delivered twice: %+v", chunk2.Spans)
	}
}

// TestRecoveryFlightDump: a reborn durable site stores a crash-recovery
// dump that the admin surface serves.
func TestRecoveryFlightDump(t *testing.T) {
	w := newWorld(t)
	dir := t.TempDir()
	server := w.site("server", WithDurability(dir))
	if err := server.Register(&note{Text: "v1"}); err != nil {
		t.Fatal(err)
	}
	server.Kill()

	reborn := w.site("server", WithDurability(dir))
	if reborn.Incarnation() != 2 {
		t.Fatalf("incarnation %d, want 2", reborn.Incarnation())
	}
	dump, ok := reborn.Telemetry().Flight().LastDump()
	if !ok {
		t.Fatal("no stored dump after crash recovery")
	}
	if dump.Reason != "crash recovery" {
		t.Fatalf("dump reason %q", dump.Reason)
	}
	found := false
	for _, e := range dump.Events {
		if e.Kind == "site.recovery" && strings.Contains(e.Detail, "incarnation=2") {
			found = true
		}
	}
	if !found {
		t.Fatalf("dump lacks the recovery event: %+v", dump.Events)
	}

	// And it is fetchable from a peer.
	probe := w.site("probe")
	got, err := probe.InspectFlight(reborn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != "crash recovery" {
		t.Fatalf("remote dump reason %q", got.Reason)
	}
}
