package site

import (
	"fmt"
	"sort"
	"sync"

	"obiwan/internal/codec"
	"obiwan/internal/eventual"
	"obiwan/internal/heap"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/txn"
	"obiwan/internal/wal"
)

// Durability wires the replication engine's journal hooks to a wal.Store.
// Each engine mutation becomes one framed WAL record; recovery replays
// the snapshot plus log to rebuild the master heap, the dirty set, the
// proxy-in export table, and the name bindings of the previous
// incarnation. Records are last-state-wins per object, so replaying a
// stale log suffix over a snapshot (the compaction crash window) is
// idempotent.
//
// Documented deviations of a recovered site from its previous life:
//   - Cluster replicas recover as the dirty subset of their cluster; a
//     SyncDirty ships that subset through the cluster proxy-in, which the
//     master applies member-by-member.
//   - Only engine-managed exports come back: the well-known sinks (ids
//     1–3) occupy the same slots by construction and journaled proxy-ins
//     are re-exported at their recorded ids; application-level rt.Export
//     ids are not journaled.

// WAL record kinds (first uvarint of every record payload).
const (
	recMaster uint64 = 1 // full master image (last-wins per OID)
	recDirty  uint64 = 2 // dirty replica image (last-wins per OID)
	recClean  uint64 = 3 // retracts a dirty record
	recBind   uint64 = 4 // name binding (last-wins per name)
	recProxy  uint64 = 5 // proxy-in export id (last-wins per OID)

	recPending     uint64 = 6 // parked disconnected txn commit (last-wins per id)
	recPendingDone uint64 = 7 // retracts a parked-txn record
	recEventual    uint64 = 8 // one update-log event (replayed in order)
)

// compactThreshold is the log size that triggers background compaction.
const compactThreshold = 1 << 20

// walMasterRec is the durable image of one master object.
type walMasterRec struct {
	OID            uint64
	TypeName       string
	Version        uint64
	State          []byte
	Frontier       []replication.FrontierRef
	AppliedBase    uint64
	AppliedCRC     uint64
	AppliedVersion uint64
}

// walDirtyRec is the durable image of one locally edited replica.
type walDirtyRec struct {
	OID         uint64
	TypeName    string
	Version     uint64
	State       []byte
	Provider    rmi.RemoteRef
	ClusterRoot uint64
	Frontier    []replication.FrontierRef
}

// walCleanRec retracts the dirty record for OID (edit reached the master).
type walCleanRec struct {
	OID     uint64
	Version uint64
}

// walBindRec records a name binding. The descriptor stays valid across
// restarts because recovery re-exports the proxy-in at the same id.
type walBindRec struct {
	Name string
	Desc replication.Descriptor
}

// walProxyRec records the RMI object id exporting OID's proxy-in.
type walProxyRec struct {
	OID uint64
	ID  uint64
}

// walPendingRec records a transaction commit parked by disconnection: the
// id plus its write set, enough to re-adopt the pending commit after a
// crash (the dirty state itself rides the ordinary recDirty records).
type walPendingRec struct {
	ID   uint64
	OIDs []uint64
}

// walPendingDoneRec retracts a parked-txn record (flushed or rolled back).
type walPendingDoneRec struct {
	ID uint64
}

// walEventualRec wraps one eventual.Store journal event. Unlike the other
// record kinds these are event-sourced, not last-wins: recovery replays
// them in log order through eventual.Store.Recover.
type walEventualRec struct {
	Kind    uint64
	Payload []byte
}

func init() {
	codec.MustRegister("obiwan.site.walMasterRec", walMasterRec{})
	codec.MustRegister("obiwan.site.walDirtyRec", walDirtyRec{})
	codec.MustRegister("obiwan.site.walCleanRec", walCleanRec{})
	codec.MustRegister("obiwan.site.walBindRec", walBindRec{})
	codec.MustRegister("obiwan.site.walProxyRec", walProxyRec{})
	codec.MustRegister("obiwan.site.walPendingRec", walPendingRec{})
	codec.MustRegister("obiwan.site.walPendingDoneRec", walPendingDoneRec{})
	codec.MustRegister("obiwan.site.walEventualRec", walEventualRec{})
}

// durability implements replication.Journal over a wal.Store.
//
// Lock ordering: the engine never calls the journal while holding its own
// locks, so d.mu may be taken freely here; the compactor takes d.mu FIRST
// and only then reads engine/heap state. No journal path takes engine
// locks while holding d.mu except compaction, which is safe because the
// engine's journal calls arrive lock-free.
type durability struct {
	site  *Site
	store *wal.Store
	reg   *codec.Registry

	mu       sync.Mutex
	bindings map[string]replication.Descriptor
	parked   map[uint64][]uint64 // live parked txns: id → sorted write OIDs

	compactC chan struct{}
	stopC    chan struct{}
	wg       sync.WaitGroup
}

var (
	_ replication.Journal = (*durability)(nil)
	_ eventual.Journal    = (*durability)(nil)
	_ txn.PendingJournal  = (*durability)(nil)
)

func newDurability(s *Site, store *wal.Store) *durability {
	return &durability{
		site:     s,
		store:    store,
		reg:      s.rt.Registry(),
		bindings: make(map[string]replication.Descriptor),
		parked:   make(map[uint64][]uint64),
		compactC: make(chan struct{}, 1),
		stopC:    make(chan struct{}),
	}
}

// encodeRec frames one record: kind uvarint + struct body.
func (d *durability) encodeRec(kind uint64, rec any) ([]byte, error) {
	enc := codec.NewEncoder(256)
	enc.WriteUvarint(kind)
	if err := enc.EncodeStruct(d.reg, rec); err != nil {
		return nil, err
	}
	return enc.Bytes(), nil
}

// append journals one record and pokes the compactor when the log has
// outgrown the threshold.
func (d *durability) append(kind uint64, rec any) error {
	payload, err := d.encodeRec(kind, rec)
	if err != nil {
		return fmt.Errorf("site: encode wal record: %w", err)
	}
	d.mu.Lock()
	err = d.store.Append(payload)
	d.mu.Unlock()
	if err != nil {
		return fmt.Errorf("site: journal append: %w", err)
	}
	if d.store.LogSize() > compactThreshold {
		select {
		case d.compactC <- struct{}{}:
		default:
		}
	}
	return nil
}

// MasterChanged implements replication.Journal.
func (d *durability) MasterChanged(rec replication.JournalMaster) error {
	return d.append(recMaster, &walMasterRec{
		OID:            rec.OID,
		TypeName:       rec.TypeName,
		Version:        rec.Version,
		State:          rec.State,
		Frontier:       rec.Frontier,
		AppliedBase:    rec.AppliedBase,
		AppliedCRC:     rec.AppliedCRC,
		AppliedVersion: rec.AppliedVersion,
	})
}

// ReplicaDirtied implements replication.Journal.
func (d *durability) ReplicaDirtied(rec replication.JournalReplica) error {
	return d.append(recDirty, &walDirtyRec{
		OID:         rec.OID,
		TypeName:    rec.TypeName,
		Version:     rec.Version,
		State:       rec.State,
		Provider:    rec.Provider,
		ClusterRoot: rec.ClusterRoot,
		Frontier:    rec.Frontier,
	})
}

// ReplicaCleaned implements replication.Journal.
func (d *durability) ReplicaCleaned(oid objmodel.OID, newVersion uint64) error {
	return d.append(recClean, &walCleanRec{OID: uint64(oid), Version: newVersion})
}

// ProxyInExported implements replication.Journal.
func (d *durability) ProxyInExported(oid objmodel.OID, id uint64) error {
	return d.append(recProxy, &walProxyRec{OID: uint64(oid), ID: id})
}

// AppendEventual implements eventual.Journal: one update-log event,
// write-ahead. The store calls this without holding its state mutex, so
// the lock order stays d.mu → store.mu (compaction) with no inversion.
func (d *durability) AppendEventual(rec eventual.JournalRecord) error {
	return d.append(recEventual, &walEventualRec{Kind: rec.Kind, Payload: rec.Payload})
}

// TxnParked implements txn.PendingJournal: a disconnected commit joined
// the pending queue and must survive a crash.
func (d *durability) TxnParked(id uint64, writeOIDs []uint64) error {
	d.mu.Lock()
	d.parked[id] = append([]uint64(nil), writeOIDs...)
	d.mu.Unlock()
	return d.append(recPending, &walPendingRec{ID: id, OIDs: writeOIDs})
}

// TxnResolved implements txn.PendingJournal: the parked commit flushed or
// rolled back.
func (d *durability) TxnResolved(id uint64) error {
	d.mu.Lock()
	delete(d.parked, id)
	d.mu.Unlock()
	return d.append(recPendingDone, &walPendingDoneRec{ID: id})
}

// parkedTxn is one recovered parked commit, for adoption by TxnManager.
type parkedTxn struct {
	id   uint64
	oids []uint64
}

// parkedSnapshot returns the live parked txns in id order.
func (d *durability) parkedSnapshot() []parkedTxn {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]parkedTxn, 0, len(d.parked))
	for id, oids := range d.parked {
		out = append(out, parkedTxn{id: id, oids: append([]uint64(nil), oids...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// journalBind records a successful name binding.
func (d *durability) journalBind(name string, desc replication.Descriptor) error {
	d.mu.Lock()
	d.bindings[name] = desc
	d.mu.Unlock()
	return d.append(recBind, &walBindRec{Name: name, Desc: desc})
}

// recoveredState is the decoded, last-wins-folded content of a WAL.
type recoveredState struct {
	masters  []walMasterRec
	dirty    []walDirtyRec
	bindings map[string]replication.Descriptor
	proxyIns map[uint64]uint64
	parked   map[uint64][]uint64
	eventual []eventual.JournalRecord // in log order, NOT folded
}

// foldRecords decodes raw WAL records (snapshot first, then log) into the
// last-state-wins view of the previous incarnation.
func (d *durability) foldRecords(raw [][]byte) (*recoveredState, error) {
	masters := make(map[uint64]walMasterRec)
	dirty := make(map[uint64]walDirtyRec)
	out := &recoveredState{
		bindings: make(map[string]replication.Descriptor),
		proxyIns: make(map[uint64]uint64),
		parked:   make(map[uint64][]uint64),
	}
	for i, payload := range raw {
		dec := codec.NewDecoder(payload)
		kind, err := dec.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("site: wal record %d: %w", i, err)
		}
		switch kind {
		case recMaster:
			var rec walMasterRec
			if err := dec.DecodeStruct(d.reg, &rec); err != nil {
				return nil, fmt.Errorf("site: wal record %d: %w", i, err)
			}
			masters[rec.OID] = rec
		case recDirty:
			var rec walDirtyRec
			if err := dec.DecodeStruct(d.reg, &rec); err != nil {
				return nil, fmt.Errorf("site: wal record %d: %w", i, err)
			}
			dirty[rec.OID] = rec
		case recClean:
			var rec walCleanRec
			if err := dec.DecodeStruct(d.reg, &rec); err != nil {
				return nil, fmt.Errorf("site: wal record %d: %w", i, err)
			}
			delete(dirty, rec.OID)
		case recBind:
			var rec walBindRec
			if err := dec.DecodeStruct(d.reg, &rec); err != nil {
				return nil, fmt.Errorf("site: wal record %d: %w", i, err)
			}
			out.bindings[rec.Name] = rec.Desc
		case recProxy:
			var rec walProxyRec
			if err := dec.DecodeStruct(d.reg, &rec); err != nil {
				return nil, fmt.Errorf("site: wal record %d: %w", i, err)
			}
			out.proxyIns[rec.OID] = rec.ID
		case recPending:
			var rec walPendingRec
			if err := dec.DecodeStruct(d.reg, &rec); err != nil {
				return nil, fmt.Errorf("site: wal record %d: %w", i, err)
			}
			out.parked[rec.ID] = rec.OIDs
		case recPendingDone:
			var rec walPendingDoneRec
			if err := dec.DecodeStruct(d.reg, &rec); err != nil {
				return nil, fmt.Errorf("site: wal record %d: %w", i, err)
			}
			delete(out.parked, rec.ID)
		case recEventual:
			var rec walEventualRec
			if err := dec.DecodeStruct(d.reg, &rec); err != nil {
				return nil, fmt.Errorf("site: wal record %d: %w", i, err)
			}
			out.eventual = append(out.eventual, eventual.JournalRecord{Kind: rec.Kind, Payload: rec.Payload})
		default:
			return nil, fmt.Errorf("site: wal record %d: unknown kind %d", i, kind)
		}
	}
	for _, rec := range masters {
		out.masters = append(out.masters, rec)
	}
	sort.Slice(out.masters, func(i, j int) bool { return out.masters[i].OID < out.masters[j].OID })
	for _, rec := range dirty {
		out.dirty = append(out.dirty, rec)
	}
	sort.Slice(out.dirty, func(i, j int) bool { return out.dirty[i].OID < out.dirty[j].OID })
	return out, nil
}

// recover rebuilds the previous incarnation from recovered WAL records:
// masters first (create, then restore state + references), then dirty
// replicas, then proxy-in exports at their recorded ids, then name
// re-registration. Must run before the journal is installed on the
// engine — recovery itself is not re-journaled; the post-recovery
// compaction snapshot captures the rebuilt state instead.
func (d *durability) recover(raw [][]byte) error {
	st, err := d.foldRecords(raw)
	if err != nil {
		return err
	}
	eng, h := d.site.engine, d.site.heap

	// Pass 1: masters exist before anything binds references to them.
	for _, rec := range st.masters {
		info, ok := objmodel.InfoByName(rec.TypeName)
		if !ok {
			return fmt.Errorf("site: recover master %d: unknown type %q", rec.OID, rec.TypeName)
		}
		if err := h.AddMasterWithOID(info.New(), objmodel.OID(rec.OID), rec.TypeName, rec.Version); err != nil {
			return fmt.Errorf("site: recover master %d: %w", rec.OID, err)
		}
	}
	// Pass 2: state + reference binding (local targets resolve from the
	// heap; off-site targets through frontier proxy-outs).
	for _, rec := range st.masters {
		entry, _ := h.Get(objmodel.OID(rec.OID))
		if err := eng.RestoreWithFrontier(entry.Obj, rec.State, rec.Frontier); err != nil {
			return fmt.Errorf("site: restore master %d: %w", rec.OID, err)
		}
		eng.SeedAppliedPut(objmodel.OID(rec.OID), rec.AppliedBase, rec.AppliedCRC, rec.AppliedVersion)
	}

	// Dirty replicas: the offline edits the crash must not lose.
	for _, rec := range st.dirty {
		info, ok := objmodel.InfoByName(rec.TypeName)
		if !ok {
			return fmt.Errorf("site: recover replica %d: unknown type %q", rec.OID, rec.TypeName)
		}
		entry, _ := h.AddReplica(info.New(), objmodel.OID(rec.OID), rec.TypeName, rec.Version)
		entry.SetProvider(rec.Provider, objmodel.OID(rec.ClusterRoot))
		if rec.ClusterRoot != 0 {
			eng.RestoreClusterMember(objmodel.OID(rec.ClusterRoot), objmodel.OID(rec.OID))
		}
		if err := eng.RestoreWithFrontier(entry.Obj, rec.State, rec.Frontier); err != nil {
			return fmt.Errorf("site: restore replica %d: %w", rec.OID, err)
		}
		entry.SetDirty(true)
	}

	// Proxy-ins, in OID order for determinism. A record whose entry did
	// not survive (a live replica that served onward replication) is
	// skipped: its remote holders re-fault exactly as they would against
	// a non-durable site.
	oids := make([]uint64, 0, len(st.proxyIns))
	for oid := range st.proxyIns {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, oid := range oids {
		if _, ok := h.Get(objmodel.OID(oid)); !ok {
			continue
		}
		if err := eng.RestoreProxyIn(objmodel.OID(oid), st.proxyIns[oid]); err != nil {
			return err
		}
	}

	// Update log last: its base records may re-create heap entries, and
	// its replays read whatever master/replica state the passes above
	// rebuilt. Replay runs in log order (event-sourced) through the same
	// ingest path live sync uses.
	if len(st.eventual) > 0 {
		ev := d.site.eventual
		if ev == nil {
			return fmt.Errorf("site: wal holds %d update-log records but the site was built without WithEventual", len(st.eventual))
		}
		if err := ev.Recover(st.eventual); err != nil {
			return fmt.Errorf("site: recover update log: %w", err)
		}
	}

	// Parked disconnected commits: kept here until TxnManager adopts them.
	d.mu.Lock()
	for id, oids := range st.parked {
		d.parked[id] = oids
	}
	d.mu.Unlock()

	// Re-register bindings. Bind (not Rebind) on purpose: the nameserver
	// recognizes the same provider address as the owner coming back.
	d.mu.Lock()
	for name, desc := range st.bindings {
		d.bindings[name] = desc
	}
	d.mu.Unlock()
	if d.site.ns != nil {
		names := make([]string, 0, len(st.bindings))
		for name := range st.bindings {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := d.site.ns.Bind(name, st.bindings[name]); err != nil {
				return fmt.Errorf("site: re-bind %q: %w", name, err)
			}
		}
	}
	return nil
}

// snapshotRecords serializes the site's full durable state for compaction.
// Caller holds d.mu.
func (d *durability) snapshotRecords() ([][]byte, error) {
	eng, h := d.site.engine, d.site.heap
	var out [][]byte
	entries := h.Entries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].OID < entries[j].OID })
	for _, en := range entries {
		switch {
		case en.Role == heap.Master:
			state, err := eng.CaptureSnapshot(en.Obj)
			if err != nil {
				return nil, fmt.Errorf("site: snapshot %v: %w", en.OID, err)
			}
			frontier, err := eng.BuildRecoveryFrontier(en.Obj)
			if err != nil {
				return nil, fmt.Errorf("site: snapshot %v frontier: %w", en.OID, err)
			}
			base, crc, version := eng.AppliedPut(en.OID)
			payload, err := d.encodeRec(recMaster, &walMasterRec{
				OID: uint64(en.OID), TypeName: en.TypeName, Version: en.Version(),
				State: state, Frontier: frontier,
				AppliedBase: base, AppliedCRC: crc, AppliedVersion: version,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, payload)
		case en.Dirty():
			state, err := eng.CaptureSnapshot(en.Obj)
			if err != nil {
				return nil, fmt.Errorf("site: snapshot %v: %w", en.OID, err)
			}
			frontier, err := eng.BuildRecoveryFrontier(en.Obj)
			if err != nil {
				return nil, fmt.Errorf("site: snapshot %v frontier: %w", en.OID, err)
			}
			payload, err := d.encodeRec(recDirty, &walDirtyRec{
				OID: uint64(en.OID), TypeName: en.TypeName, Version: en.Version(),
				State: state, Provider: en.Provider(), ClusterRoot: uint64(en.ClusterRoot()),
				Frontier: frontier,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, payload)
		}
	}
	for oid, id := range eng.ProxyInIDs() {
		payload, err := d.encodeRec(recProxy, &walProxyRec{OID: uint64(oid), ID: id})
		if err != nil {
			return nil, err
		}
		out = append(out, payload)
	}
	names := make([]string, 0, len(d.bindings))
	for name := range d.bindings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		payload, err := d.encodeRec(recBind, &walBindRec{Name: name, Desc: d.bindings[name]})
		if err != nil {
			return nil, err
		}
		out = append(out, payload)
	}
	ids := make([]uint64, 0, len(d.parked))
	for id := range d.parked {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		payload, err := d.encodeRec(recPending, &walPendingRec{ID: id, OIDs: d.parked[id]})
		if err != nil {
			return nil, err
		}
		out = append(out, payload)
	}
	if ev := d.site.eventual; ev != nil {
		// Lock order d.mu → store.mu, same as every compaction read of
		// engine state; the store never journals while holding store.mu.
		for _, rec := range ev.SnapshotRecords() {
			payload, err := d.encodeRec(recEventual, &walEventualRec{Kind: rec.Kind, Payload: rec.Payload})
			if err != nil {
				return nil, err
			}
			out = append(out, payload)
		}
	}
	return out, nil
}

// compactNow snapshots current state and truncates the log. Safe against
// concurrent journaling: d.mu blocks appends for the duration, so no
// record can land between the snapshot capture and the truncate.
func (d *durability) compactNow() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	records, err := d.snapshotRecords()
	if err != nil {
		return err
	}
	if err := d.store.Compact(records); err != nil {
		return err
	}
	d.site.met.compactions.Inc()
	return nil
}

// startCompactor launches the background compaction goroutine.
func (d *durability) startCompactor() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		for {
			select {
			case <-d.stopC:
				return
			case <-d.compactC:
				// Best-effort: a failed compaction leaves the log intact
				// and will be retried at the next threshold crossing.
				_ = d.compactNow()
			}
		}
	}()
}

// stop halts the compactor and waits for it to drain.
func (d *durability) stop() {
	close(d.stopC)
	d.wg.Wait()
}
