// Package site composes the OBIWAN runtime services — RMI, heap,
// replication engine, QoS monitor, name-server client, and consistency
// plumbing — into the process-level abstraction the paper calls a site.
//
// "OBIWAN gives to the application programmer the view of a network of
// machines in which one or more processes run; objects exist inside
// processes" (§2). A Site is one such process: it registers master
// objects, exports graph roots, looks up remote roots by name, and carries
// the mobility machinery (disconnected operation, dirty-replica sync,
// invalidation sinks, leases).
package site

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"obiwan/internal/admin"
	"obiwan/internal/consistency"
	"obiwan/internal/dissemination"
	"obiwan/internal/eventual"
	"obiwan/internal/fleet"
	"obiwan/internal/heap"
	"obiwan/internal/nameserver"
	"obiwan/internal/objmodel"
	"obiwan/internal/qos"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
	"obiwan/internal/txn"
	"obiwan/internal/wal"
)

// SinkIface is the symbolic interface name of a site's invalidation sink.
const SinkIface = "obiwan.InvalidationSink"

// sinkID is the well-known object id of the invalidation sink: it is
// always a site's first export.
const sinkID rmi.ObjID = 1

// ErrNoNameServer is returned by name operations on sites built without
// a name server.
var ErrNoNameServer = errors.New("site: no name server configured")

// Option configures a Site.
type Option func(*options)

type options struct {
	siteID      uint16
	nsAddr      transport.Addr
	policy      replication.Policy
	invalidate  bool
	lease       *consistency.Lease
	defaultSpec replication.GetSpec
	fetchFactor float64
	callTimeout time.Duration
	retry       *rmi.RetryPolicy
	walDir      string
	tel         *telemetry.Hub
	noTel       bool
	noSampler   bool
	incarnation uint64
	group       *GroupConfig
	eventual    bool
	fleetPeers  []transport.Addr
	fleetOpts   []fleet.Option
}

// WithSiteID fixes the site's identity prefix for minted OIDs. Defaults to
// a hash of the site name.
func WithSiteID(id uint16) Option { return func(o *options) { o.siteID = id } }

// WithNameServer points the site at a standalone name server.
func WithNameServer(addr transport.Addr) Option { return func(o *options) { o.nsAddr = addr } }

// WithPolicy installs a master-side consistency policy.
func WithPolicy(p replication.Policy) Option { return func(o *options) { o.policy = p } }

// WithInvalidation enables invalidation-based consistency: this site (as a
// master) notifies replica holders on every update, and (as a client)
// exports a sink that records invalidations in the stale ledger. Composes
// with WithPolicy: the configured policy decides put acceptance.
func WithInvalidation() Option { return func(o *options) { o.invalidate = true } }

// WithLease installs a client-side lease: replicas older than ttl are
// reported by LeaseExpired and refreshed by RefreshExpired.
func WithLease(ttl time.Duration) Option {
	return func(o *options) { o.lease = consistency.NewLease(ttl) }
}

// WithDefaultSpec sets the replication spec used by Lookup when none is
// given explicitly.
func WithDefaultSpec(spec replication.GetSpec) Option {
	return func(o *options) { o.defaultSpec = spec }
}

// WithFetchFactor tunes the ModeAuto crossover (see qos.Advisor).
func WithFetchFactor(f float64) Option { return func(o *options) { o.fetchFactor = f } }

// WithCallTimeout sets the RMI per-call timeout.
func WithCallTimeout(d time.Duration) Option { return func(o *options) { o.callTimeout = d } }

// WithRetry sets the RMI retry policy for this site's outbound calls
// (default rmi.DefaultRetryPolicy; use rmi.NoRetry to fail fast).
func WithRetry(p rmi.RetryPolicy) Option { return func(o *options) { o.retry = &p } }

// WithDurability makes the site crash-durable: master mutations, dirty
// replica edits, proxy-in exports, and name bindings are journaled to a
// write-ahead log in dir before being acknowledged. Creating a site over
// a non-empty dir recovers the previous incarnation: masters and their
// versions, offline edits (dirty replicas, ready for SyncDirty), proxy-in
// exports at the ids remote replicas already hold, and name-server
// registrations. Each rebirth runs under a fresh persisted incarnation
// number, so peers never confuse it with its previous life.
func WithDurability(dir string) Option { return func(o *options) { o.walDir = dir } }

// WithIncarnation pins the site's RMI client incarnation instead of the
// process-global counter. Deterministic harnesses (internal/swarm) need
// this: the incarnation is embedded in every call frame's client identity,
// so counter values that differ between runs change frame sizes and hence
// simulated transfer times. Sites whose addresses are already unique per
// rebirth can pin any constant. Ignored for durable sites, which persist
// their own incarnation in the WAL.
func WithIncarnation(n uint64) Option { return func(o *options) { o.incarnation = n } }

// WithTelemetry installs a custom telemetry hub — typically one built with
// telemetry.WithClock for deterministic traces under netsim. By default a
// site creates its own enabled hub named after itself.
func WithTelemetry(h *telemetry.Hub) Option { return func(o *options) { o.tel = h } }

// WithoutTelemetry disables tracing and metrics for this site. Every
// instrument call collapses to a nil-check no-op, and the admin Metrics
// and Traces endpoints report empty snapshots.
func WithoutTelemetry() Option { return func(o *options) { o.noTel = true } }

// WithoutRuntimeSampler keeps the site from starting the wall-clock go.*
// gauge sampler. Deterministic harnesses need this when telemetry is on:
// the sampled process state (heap bytes, goroutine count) differs between
// runs, and once those gauges ride a federation scrape reply they change
// frame sizes and hence simulated transfer times.
func WithoutRuntimeSampler() Option { return func(o *options) { o.noSampler = true } }

// Site is one OBIWAN process.
type Site struct {
	name    string
	rt      *rmi.Runtime
	heap    *heap.Heap
	engine  *replication.Engine
	monitor *qos.Monitor
	ns      *nameserver.Client
	stale   *consistency.StaleSet
	lease   *consistency.Lease
	inval   *consistency.Invalidation
	spec    replication.GetSpec
	applier *dissemination.Applier
	tel     *telemetry.Hub // nil when built WithoutTelemetry

	// fetchFactor seeds the ModeAuto advisors (see qos.Advisor).
	fetchFactor float64
	// stopSampler halts the runtime-stats sampling goroutine; no-op func
	// when telemetry is off.
	stopSampler func()

	// met holds the site-level instruments, pre-resolved once at
	// construction; all are nil-safe no-ops when telemetry is off.
	met struct {
		syncedDirty    *telemetry.Counter
		refreshedStale *telemetry.Counter
		compactions    *telemetry.Counter
		walFsync       *telemetry.Histogram
		walFsyncWait   *telemetry.Histogram
		staleReplicas  *telemetry.Gauge
	}

	durable  *durability      // nil for in-memory sites
	fleet    *fleet.Collector // nil unless built WithFleet
	group    *Group           // nil for single-master sites
	eventual *eventual.Store  // nil unless built WithEventual
	txnMgr   *txn.Manager     // lazily built by TxnManager

	mu         sync.Mutex
	basePolicy replication.Policy
	publisher  *dissemination.Publisher

	closeOnce sync.Once
	closeErr  error
}

// New starts a site named name on network. The name doubles as the
// listen address on simulated networks; on TCP pass "host:port" via the
// name and a human name via the options if desired.
func New(name string, network transport.Network, opts ...Option) (*Site, error) {
	o := &options{
		defaultSpec: replication.DefaultSpec,
		fetchFactor: 2,
		callTimeout: 10 * time.Second,
	}
	for _, opt := range opts {
		opt(o)
	}
	if o.siteID == 0 {
		if o.group != nil {
			// Group members share one OID prefix: any member may mint
			// identities (whoever leads), and every member must accept
			// them as its own in AddMasterWithOID replay.
			o.siteID = hashSiteID("group:" + o.group.groupName())
		} else {
			o.siteID = hashSiteID(name)
		}
	}
	hub := o.tel
	if hub == nil && !o.noTel {
		hub = telemetry.NewHub(name)
	}
	if o.noTel {
		hub = nil
	}

	// Durable sites open their WAL before anything else: the persisted
	// incarnation number must flow into the RMI client identity, and the
	// directory is pinned to the site id so a WAL can never replay into a
	// heap that would mint foreign OIDs. Grouped sites skip the site
	// journal entirely — the consensus log (opened under the same dir by
	// newGroup) subsumes master durability, and replaying both would
	// double-apply.
	var store *wal.Store
	var recovered *wal.Recovered
	if o.walDir != "" && o.group == nil {
		var err error
		store, recovered, err = wal.Open(o.walDir)
		if err != nil {
			return nil, fmt.Errorf("site %q: open wal: %w", name, err)
		}
		if err := store.BindSiteID(o.siteID); err != nil {
			store.Close()
			return nil, fmt.Errorf("site %q: %w", name, err)
		}
	}

	monitor := qos.NewMonitor()
	rtOpts := []rmi.Option{
		rmi.WithObserver(monitor.Observe),
		rmi.WithCallTimeout(o.callTimeout),
		rmi.WithTelemetry(hub),
	}
	if o.retry != nil {
		rtOpts = append(rtOpts, rmi.WithRetryPolicy(*o.retry))
	}
	if store != nil {
		rtOpts = append(rtOpts, rmi.WithIncarnation(store.Incarnation()))
	} else if o.incarnation != 0 {
		rtOpts = append(rtOpts, rmi.WithIncarnation(o.incarnation))
	}
	rt, err := rmi.NewRuntime(network, transport.Addr(name), rtOpts...)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return nil, fmt.Errorf("site %q: %w", name, err)
	}

	s := &Site{
		name:        name,
		rt:          rt,
		heap:        heap.New(o.siteID),
		monitor:     monitor,
		stale:       consistency.NewStaleSet(),
		lease:       o.lease,
		spec:        o.defaultSpec,
		fetchFactor: o.fetchFactor,
		tel:         hub,
	}
	if s.lease != nil && s.lease.Clock == nil {
		// Leases age on the runtime's clock, not the wall clock, so expiry
		// is deterministic under netsim's VirtualClock.
		s.lease.Clock = rt.Clock().Now
	}
	if m := hub.Metrics(); m != nil {
		s.met.syncedDirty = m.Counter("site.sync.dirty")
		s.met.refreshedStale = m.Counter("site.refresh.stale")
		s.met.compactions = m.Counter("wal.compactions")
		s.met.walFsync = m.Histogram("wal.fsync_ns")
		s.met.walFsyncWait = m.Histogram("wal.fsync.wait_ns")
		s.met.staleReplicas = m.Gauge("site.stale.replicas")
		// The gauge tracks the stale ledger through its observer hook, so
		// every mutation path (invalidation sink, self-notify, refresh)
		// updates it; with telemetry off the hook stays nil and the
		// invalidation path pays nothing.
		gauge := s.met.staleReplicas
		s.stale.SetObserver(func(n int) { gauge.Set(int64(n)) })
	}
	if store != nil && hub.Enabled() {
		// Bridge WAL group-commit timings into the registry without the
		// wal package importing telemetry: fsync proper and the time a
		// writer spent queued behind another writer's sync land in
		// separate histograms, so attribution can tell "the disk is
		// slow" from "the commit queue is deep". ObserveDuration is
		// lock-free, so running it under the store's sync mutex is fine.
		fsyncH, waitH := s.met.walFsync, s.met.walFsyncWait
		store.SetSyncObserver(func(wait, fsync time.Duration) {
			if wait > 0 {
				waitH.ObserveDuration(wait)
			}
			if fsync > 0 {
				fsyncH.ObserveDuration(fsync)
			}
		})
	}

	// The invalidation sink is always exported first and the update sink
	// second, so every site can be notified at well-known ids — whether or
	// not it enables the corresponding policy itself.
	sinkRef, err := rt.Export(&invalidationSink{stale: s.stale}, SinkIface)
	if err != nil {
		_ = rt.Close()
		return nil, fmt.Errorf("site %q: export sink: %w", name, err)
	}
	if sinkRef.ID != sinkID {
		_ = rt.Close()
		return nil, fmt.Errorf("site %q: sink landed at id %d, want %d", name, sinkRef.ID, sinkID)
	}

	policy := o.policy
	if o.eventual {
		// Log-managed objects must change only through update functions:
		// a raw state put would fork from the committed prefix. Tentative
		// sits innermost so the rejection precedes any invalidation
		// fan-out, and in basePolicy so later layers (dissemination)
		// compose on top of it. The closure late-binds the store, which
		// needs the engine and so is built a few lines down.
		tent := consistency.NewTentative(func(oid objmodel.OID) bool {
			ev := s.eventual
			return ev != nil && ev.Managed(oid)
		})
		if policy != nil {
			tent.Base = policy
		}
		policy = tent
	}
	s.basePolicy = policy
	engineOpts := []replication.Option{
		replication.WithCrossover(s.crossover),
		replication.WithTelemetry(hub),
	}
	if o.invalidate {
		inval := consistency.NewInvalidation(s.notifyHolder)
		if policy != nil {
			inval.Base = policy
		}
		s.inval = inval
		policy = inval
	}
	if policy != nil {
		engineOpts = append(engineOpts, replication.WithPolicy(policy))
	}
	s.engine = replication.NewEngine(rt, s.heap, engineOpts...)
	s.applier = dissemination.NewApplier(s.engine)
	upRef, err := rt.Export(&updateSink{applier: s.applier}, UpdateSinkIface)
	if err != nil {
		_ = rt.Close()
		return nil, fmt.Errorf("site %q: export update sink: %w", name, err)
	}
	if upRef.ID != updateSinkID {
		_ = rt.Close()
		return nil, fmt.Errorf("site %q: update sink landed at id %d, want %d", name, upRef.ID, updateSinkID)
	}

	adminSvc := admin.NewService(name, rt, s.heap, s.engine, hub)
	if len(o.fleetPeers) > 0 {
		// The collector must be wired before the service is exported:
		// the fleet endpoints read the source without locking.
		fleetOpts := append([]fleet.Option{fleet.WithFlight(hub.Flight())}, o.fleetOpts...)
		s.fleet = fleet.New(rt, o.fleetPeers, fleetOpts...)
		adminSvc.SetFleet(s.fleet)
	}
	adminRef, err := rt.Export(adminSvc, admin.Iface)
	if err != nil {
		_ = rt.Close()
		return nil, fmt.Errorf("site %q: export admin: %w", name, err)
	}
	if adminRef.ID != adminID {
		_ = rt.Close()
		return nil, fmt.Errorf("site %q: admin landed at id %d, want %d", name, adminRef.ID, adminID)
	}

	if o.eventual {
		s.eventual = eventual.NewStore(name, s.engine, hub)
		aeRef, err := rt.ExportWithID(antiEntropyID, &antiEntropySink{store: s.eventual}, AntiEntropyIface)
		if err != nil {
			_ = rt.Close()
			return nil, fmt.Errorf("site %q: export anti-entropy: %w", name, err)
		}
		if aeRef.ID != antiEntropyID {
			_ = rt.Close()
			return nil, fmt.Errorf("site %q: anti-entropy landed at id %d, want %d", name, aeRef.ID, antiEntropyID)
		}
	}

	if o.nsAddr != "" {
		s.ns = nameserver.NewClient(rt, nameserver.WellKnownRef(o.nsAddr))
	}

	if o.group != nil {
		g, err := newGroup(s, o)
		if err != nil {
			_ = rt.Close()
			return nil, err
		}
		s.group = g
		s.engine.SetMasterGate(g)
	}

	if store != nil {
		d := newDurability(s, store)
		s.durable = d
		// Recovery runs before the journal is installed (it must not
		// re-journal what it replays); the immediate compaction then
		// snapshots the rebuilt state and empties the log.
		if err := d.recover(recovered.Records()); err != nil {
			_ = rt.Close()
			store.Close()
			return nil, fmt.Errorf("site %q: recover: %w", name, err)
		}
		s.engine.SetJournal(d)
		if s.eventual != nil {
			s.eventual.SetJournal(d)
		}
		if err := d.compactNow(); err != nil {
			_ = rt.Close()
			store.Close()
			return nil, fmt.Errorf("site %q: compact after recovery: %w", name, err)
		}
		d.startCompactor()
		// A second (or later) incarnation means the previous life ended —
		// cleanly or not. Preserve the moment in the flight recorder so a
		// post-mortem can correlate recovery with what followed.
		if f := hub.Flight(); f != nil && store.Incarnation() > 1 {
			f.Record(telemetry.FlightEvent{
				Kind:   "site.recovery",
				Detail: fmt.Sprintf("incarnation=%d records=%d", store.Incarnation(), len(recovered.Records())),
			})
			f.Dump("crash recovery")
		}
	}
	if !o.noSampler {
		s.stopSampler = hub.StartRuntimeSampler(10 * time.Second)
	}
	return s, nil
}

// adminID is the well-known object id of the admin service: always a
// site's third export (after the invalidation and update sinks). The
// value is owned by the admin package so fleet collectors can address
// peers without importing the site layer.
const adminID = admin.WellKnownID

// AdminRef builds the reference to the admin service of the site at addr.
func AdminRef(addr transport.Addr) rmi.RemoteRef { return admin.Ref(addr) }

// Inspect queries a peer site's admin service from this site.
func (s *Site) Inspect(addr transport.Addr) (*admin.SiteReport, error) {
	return admin.NewClient(s.rt, AdminRef(addr)).Report()
}

// InspectMetrics fetches a peer site's live metrics snapshot. A peer
// running without telemetry answers with an empty snapshot.
func (s *Site) InspectMetrics(addr transport.Addr) (*telemetry.MetricsSnapshot, error) {
	return admin.NewClient(s.rt, AdminRef(addr)).Metrics()
}

// InspectTraces fetches up to max recent finished spans from a peer site
// (0: everything its ring retains).
func (s *Site) InspectTraces(addr transport.Addr, max uint64) (*telemetry.TraceDump, error) {
	return admin.NewClient(s.rt, AdminRef(addr)).Traces(max)
}

// InspectProfile fetches a peer site's per-object replication profiles,
// hottest first (topK 0: all tracked objects).
func (s *Site) InspectProfile(addr transport.Addr, topK uint64) (*telemetry.ProfileSnapshot, error) {
	return admin.NewClient(s.rt, AdminRef(addr)).Profile(topK)
}

// InspectFlight fetches a peer site's flight-recorder dump: the last
// stored dump if one exists, else a live snapshot.
func (s *Site) InspectFlight(addr transport.Addr) (*telemetry.FlightDump, error) {
	return admin.NewClient(s.rt, AdminRef(addr)).Flight()
}

// WatchPeer fetches one telemetry streaming chunk from a peer site:
// metrics plus the spans finished since cursor. Feed the chunk's
// NextCursor back in to stream without duplicates.
func (s *Site) WatchPeer(addr transport.Addr, cursor uint64, maxSpans uint64) (*admin.WatchChunk, error) {
	return admin.NewClient(s.rt, AdminRef(addr)).Watch(cursor, maxSpans)
}

// hashSiteID derives a stable non-zero 16-bit id from the site name (FNV-1a).
func hashSiteID(name string) uint16 {
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	id := uint16(h ^ (h >> 16))
	if id == 0 {
		id = 1
	}
	return id
}

// crossover implements the ModeAuto decision using per-peer advisors fed
// by the site's replication profiler: measured demand latency replaces
// the assumed fetch factor once the site has observed real demands.
func (s *Site) crossover(peer transport.Addr, oid objmodel.OID, calls uint64) bool {
	adv := qos.NewProfiledAdvisor(s.monitor, peer, s.tel.Profiler())
	if s.fetchFactor > 0 {
		adv.FetchFactor = s.fetchFactor
	}
	return adv.Crossover(oid, calls)
}

// notifyHolder delivers an invalidation to a holder site's sink.
func (s *Site) notifyHolder(holder string, oid objmodel.OID, version uint64) error {
	if holder == s.name {
		s.stale.MarkStale(oid, version)
		return nil
	}
	ref := rmi.RemoteRef{Addr: transport.Addr(holder), ID: sinkID, Iface: SinkIface}
	_, err := s.rt.Call(ref, "Invalidate", uint64(oid), version)
	return err
}

// invalidationSink receives invalidations over RMI.
type invalidationSink struct {
	stale *consistency.StaleSet
}

// Invalidate records that oid has a newer master version.
func (k *invalidationSink) Invalidate(oid uint64, version uint64) {
	k.stale.MarkStale(objmodel.OID(oid), version)
}

// Name returns the site's name.
func (s *Site) Name() string { return s.name }

// Addr returns the site's RMI address.
func (s *Site) Addr() transport.Addr { return s.rt.Addr() }

// Engine exposes the replication engine for advanced use.
func (s *Site) Engine() *replication.Engine { return s.engine }

// Heap exposes the site's object store.
func (s *Site) Heap() *heap.Heap { return s.heap }

// Runtime exposes the RMI runtime.
func (s *Site) Runtime() *rmi.Runtime { return s.rt }

// Monitor exposes the QoS monitor.
func (s *Site) Monitor() *qos.Monitor { return s.monitor }

// Telemetry exposes the site's hub — nil when built WithoutTelemetry.
// Safe to call methods on either way: a nil hub no-ops.
func (s *Site) Telemetry() *telemetry.Hub { return s.tel }

// StaleSet exposes the invalidation ledger.
func (s *Site) StaleSet() *consistency.StaleSet { return s.stale }

// Group returns the site's master-group handle, or nil for single-master
// sites.
func (s *Site) Group() *Group { return s.group }

// Incarnation returns the persisted incarnation number of a durable site
// (1 for its first life), or 0 for in-memory sites.
func (s *Site) Incarnation() uint64 {
	if s.durable == nil {
		return 0
	}
	return s.durable.store.Incarnation()
}

// Close shuts the site down: it stops the background compactor, takes a
// final compaction snapshot, closes the RMI runtime, and flushes and
// closes the WAL. Idempotent — repeated calls return the first result.
func (s *Site) Close() error {
	s.closeOnce.Do(func() {
		if s.stopSampler != nil {
			s.stopSampler()
		}
		if s.fleet != nil {
			s.fleet.Stop()
		}
		if s.durable != nil {
			s.durable.stop()
			// Best-effort: the log alone already holds everything the
			// snapshot would, so a failed final compaction loses nothing.
			_ = s.durable.compactNow()
		}
		if s.group != nil {
			// The node goes first: it stops proposing and closes the
			// consensus store before the RMI runtime its RPCs ride on.
			if err := s.group.close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
		if err := s.rt.Close(); err != nil && s.closeErr == nil {
			s.closeErr = err
		}
		if s.durable != nil {
			if err := s.durable.store.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// Kill hard-stops the site, simulating a crash: the RMI runtime closes
// (in-flight calls fail) and the WAL is abandoned without the flush,
// final compaction, or clean shutdown Close performs. The WAL directory
// is left exactly as a power failure would — recovery must cope.
func (s *Site) Kill() {
	s.closeOnce.Do(func() {
		if s.stopSampler != nil {
			s.stopSampler()
		}
		if s.fleet != nil {
			s.fleet.Stop()
		}
		if s.durable != nil {
			s.durable.stop()
		}
		if s.group != nil {
			s.group.abandon()
		}
		s.closeErr = s.rt.Close()
		if s.durable != nil {
			s.durable.store.Abandon()
		}
	})
}

// Register adds obj as a master object at this site.
func (s *Site) Register(obj any) error {
	_, err := s.engine.RegisterMaster(obj)
	return err
}

// NewRef returns a resolved reference to a local object (registering it as
// a master if new) for wiring object graphs.
func (s *Site) NewRef(target any) (*objmodel.Ref, error) {
	return s.engine.NewRef(target)
}

// Export publishes obj's proxy-in and returns its descriptor.
func (s *Site) Export(obj any) (replication.Descriptor, error) {
	return s.engine.ExportObject(obj)
}

// Bind exports obj and registers its descriptor in the name server under
// name (replacing any previous binding).
func (s *Site) Bind(name string, obj any) error {
	if s.ns == nil {
		return ErrNoNameServer
	}
	d, err := s.Export(obj)
	if err != nil {
		return err
	}
	if s.group != nil {
		// Grouped sites agree the binding through the log first, so any
		// future leader can republish it if this member is lost.
		return s.group.Bind(name, d)
	}
	if err := s.ns.Rebind(name, d); err != nil {
		return err
	}
	if s.durable != nil {
		return s.durable.journalBind(name, d)
	}
	return nil
}

// Lookup resolves name at the name server and returns an unresolved
// reference that replicates with the site's default spec on first use.
func (s *Site) Lookup(name string) (*objmodel.Ref, error) {
	return s.LookupSpec(name, s.spec)
}

// LookupSpec is Lookup with an explicit replication spec.
func (s *Site) LookupSpec(name string, spec replication.GetSpec) (*objmodel.Ref, error) {
	if s.ns == nil {
		return nil, ErrNoNameServer
	}
	d, err := s.ns.Lookup(name)
	if err != nil {
		return nil, err
	}
	return s.engine.RefFromDescriptor(d, spec), nil
}

// Replicate demands ref's target with an explicit spec (the run-time mode
// decision of §2.1).
func (s *Site) Replicate(ref *objmodel.Ref, spec replication.GetSpec) (any, error) {
	return s.engine.Replicate(ref, spec)
}

// ReplicateTraced is Replicate under an explicit trace context: the demand
// protocol's fault/assemble/materialize spans nest beneath sc instead of
// rooting a fresh trace.
func (s *Site) ReplicateTraced(sc telemetry.SpanContext, ref *objmodel.Ref, spec replication.GetSpec) (any, error) {
	return s.engine.ReplicateTraced(sc, ref, spec)
}

// Put ships a replica's state back to its master.
func (s *Site) Put(obj any) error { return s.engine.Put(obj) }

// PutCluster ships the whole cluster containing obj back to its master.
func (s *Site) PutCluster(obj any) error { return s.engine.PutCluster(obj) }

// Refresh re-fetches a replica's state from its master and clears its
// staleness mark.
func (s *Site) Refresh(obj any) error {
	if err := s.engine.Refresh(obj); err != nil {
		return err
	}
	if e, ok := s.heap.EntryOf(obj); ok {
		s.stale.Clear(e.OID)
	}
	return nil
}

// MarkUpdated records a local state change: version bump + invalidations
// on masters, dirty flag on replicas.
func (s *Site) MarkUpdated(obj any) error { return s.engine.MarkUpdated(obj) }

// DirtyReplicas returns the replicas with unsaved local modifications.
func (s *Site) DirtyReplicas() []any {
	var out []any
	for _, e := range s.heap.Entries() {
		if e.Role == heap.Replica && e.Dirty() {
			out = append(out, e.Obj)
		}
	}
	return out
}

// SyncDirty puts every dirty replica back to its master — the
// reconnection step of the paper's mobile scenario. Cluster members are
// shipped once per cluster. It returns the number of objects synced and
// the first error encountered (sync continues past errors so one
// conflicted object does not strand the rest).
func (s *Site) SyncDirty() (int, error) {
	var firstErr error
	synced := 0
	doneClusters := make(map[objmodel.OID]bool)
	entries := s.heap.Entries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].OID < entries[j].OID })
	for _, e := range entries {
		if e.Role != heap.Replica || !e.Dirty() {
			continue
		}
		var err error
		if e.ClusterMember() {
			root := e.ClusterRoot()
			if doneClusters[root] {
				continue
			}
			doneClusters[root] = true
			err = s.engine.PutCluster(e.Obj)
		} else {
			err = s.engine.Put(e.Obj)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("sync %v: %w", e.OID, err)
			}
			continue
		}
		synced++
		s.met.syncedDirty.Inc()
	}
	return synced, firstErr
}

// RefreshStale refreshes every replica marked stale by invalidations.
// It returns the number refreshed and the first error encountered.
func (s *Site) RefreshStale() (int, error) {
	var firstErr error
	refreshed := 0
	for _, oid := range s.stale.Stale() {
		e, ok := s.heap.Get(oid)
		if !ok {
			s.stale.Clear(oid) // evicted: nothing to refresh
			continue
		}
		if err := s.Refresh(e.Obj); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("refresh %v: %w", oid, err)
			}
			continue
		}
		refreshed++
		s.met.refreshedStale.Inc()
	}
	return refreshed, firstErr
}

// LeaseExpired returns the replicas whose lease has run out. Without a
// configured lease it returns nil.
func (s *Site) LeaseExpired() []any {
	if s.lease == nil {
		return nil
	}
	var out []any
	for _, e := range s.heap.Entries() {
		if e.Role == heap.Replica && s.lease.Expired(e.FetchedAt()) {
			out = append(out, e.Obj)
		}
	}
	return out
}

// RefreshExpired refreshes every lease-expired replica.
func (s *Site) RefreshExpired() (int, error) {
	var firstErr error
	refreshed := 0
	for _, obj := range s.LeaseExpired() {
		if err := s.Refresh(obj); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		refreshed++
	}
	return refreshed, firstErr
}

// Checkpoint serializes every master object at this site to w, making the
// site's object universe durable across process restarts. Replicas are
// not checkpointed (they re-fetch from their masters); name-server
// bindings live in the name server and must be re-bound after a restore.
func (s *Site) Checkpoint(w io.Writer) error {
	return s.engine.CheckpointMasters(w)
}

// Restore recreates the master objects of a checkpoint taken with
// Checkpoint, preserving identities and versions. The site must have been
// created with the same WithSiteID as the checkpointing incarnation. The
// restored objects are returned by identity so the application can re-bind
// its graph roots.
func (s *Site) Restore(r io.Reader) (map[objmodel.OID]any, error) {
	return s.engine.RestoreMasters(r)
}
