package site

import (
	"obiwan/internal/dissemination"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

// UpdateSinkIface is the symbolic interface name of a site's update sink.
const UpdateSinkIface = "obiwan.UpdateSink"

// updateSinkID is the well-known object id of the update sink: always a
// site's second export (the invalidation sink is the first).
const updateSinkID rmi.ObjID = 2

// updateSink receives disseminated updates over RMI and applies them to
// the local replicas.
type updateSink struct {
	applier *dissemination.Applier
}

// Push applies one update.
func (k *updateSink) Push(u *dissemination.Update) error {
	return k.applier.Apply(u)
}

// EnableDissemination turns this site into an update publisher: every
// MarkUpdated / applied Put on a master object is captured and pushed to
// the sites registered with Publisher.Subscribe. Delivery goes to each
// subscriber's update sink (exported by every site); subscribers apply
// updates to their replicas automatically.
//
// The publisher composes with the site's configured consistency policy:
// put acceptance is still decided by it. Call once; subsequent calls
// return the same publisher.
func (s *Site) EnableDissemination() *dissemination.Publisher {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.publisher != nil {
		return s.publisher
	}
	pub := dissemination.NewPublisher(s.engine, s.deliverUpdate)
	if s.basePolicy != nil {
		pub.Base = s.basePolicy
	}
	s.installPolicyLocked(pub)
	s.publisher = pub
	return pub
}

// deliverUpdate pushes one update into a subscriber site's update sink.
func (s *Site) deliverUpdate(holder string, u *dissemination.Update) error {
	if holder == s.name {
		return s.applier.Apply(u)
	}
	ref := rmi.RemoteRef{Addr: transport.Addr(holder), ID: updateSinkID, Iface: UpdateSinkIface}
	_, err := s.rt.Call(ref, "Push", u)
	return err
}

// installPolicyLocked layers a new policy over the engine while keeping
// any previously layered hooks (invalidation) in the chain. Caller holds
// s.mu.
func (s *Site) installPolicyLocked(p replication.Policy) {
	if s.inval != nil && p != s.inval {
		// Keep invalidation in the chain: it wraps the new policy.
		s.inval.Base = p
		s.engine.SetPolicy(policyPair{a: s.inval, b: p})
		return
	}
	s.engine.SetPolicy(p)
}

// policyPair fans notification hooks out to two policies while letting the
// first decide put acceptance through its own chain.
type policyPair struct {
	a, b replication.Policy
}

func (p policyPair) ApplyPut(oid objmodel.OID, cur, base uint64) error {
	return p.a.ApplyPut(oid, cur, base)
}

func (p policyPair) ReplicaCreated(oid objmodel.OID, site string, v uint64) {
	p.a.ReplicaCreated(oid, site, v)
	p.b.ReplicaCreated(oid, site, v)
}

func (p policyPair) MasterUpdated(oid objmodel.OID, v uint64) {
	p.a.MasterUpdated(oid, v)
	p.b.MasterUpdated(oid, v)
}

// Applier returns the site's dissemination applier (always present; it
// backs the update sink).
func (s *Site) Applier() *dissemination.Applier { return s.applier }

// Publisher returns the site's publisher, or nil if EnableDissemination
// was never called.
func (s *Site) Publisher() *dissemination.Publisher {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.publisher
}
