package site

import (
	"obiwan/internal/fleet"
	"obiwan/internal/transport"
)

// WithFleet makes this site a fleet observatory: it runs a
// fleet.Collector that scrapes the admin service of every listed peer
// over RMI, serves the aggregated fleet view (and per-site breakdowns)
// through this site's own admin endpoints — `obiwan-admin fleet top`
// and `fleet alerts` — and evaluates the SLO watchdog rules on every
// scrape, recording violations in this site's flight recorder. Extra
// fleet options tune the rule set, ranking depth, and scrape timeout.
//
// The collector is pull-based: nothing is scraped until ScrapeOnce, a
// fleet endpoint with refresh, or Start(interval) runs the background
// loop. Sites not listed — and sites built without this option — carry
// no collector machinery at all, keeping the disabled path at baseline.
func WithFleet(peers []transport.Addr, opts ...fleet.Option) Option {
	return func(o *options) {
		o.fleetPeers = peers
		o.fleetOpts = opts
	}
}

// Fleet returns the site's collector, or nil when not built WithFleet.
func (s *Site) Fleet() *fleet.Collector { return s.fleet }
