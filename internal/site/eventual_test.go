package site

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"obiwan/internal/eventual"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

func init() {
	// The shared update function of the site-level tests: appends a segment
	// to the note's text, so the final text spells out the commit order.
	eventual.MustRegisterUpdate("sitetest.append", func(obj any, args []byte) error {
		n := obj.(*note)
		n.Text += string(args) + "|"
		return nil
	})
}

// evPair builds a server (primary) and mobile site, both WithEventual,
// with the mobile holding a tracked replica of the server's note.
func evPair(t *testing.T, w *world, extra ...Option) (*Site, *Site, *note, *note) {
	t.Helper()
	server := w.site("server", append([]Option{WithEventual()}, extra...)...)
	mobile := w.site("mobile", append([]Option{WithEventual()}, extra...)...)

	master := &note{}
	if err := server.Bind("doc", master); err != nil {
		t.Fatal(err)
	}
	if err := server.Track(master); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	replica, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := mobile.Track(replica); err != nil {
		t.Fatal(err)
	}
	return server, mobile, master, replica
}

func TestSiteAntiEntropyConverges(t *testing.T) {
	w := newWorld(t)
	server, mobile, master, replica := evPair(t, w)

	// Fully disconnected concurrent edits.
	w.net.Disconnect("server", "mobile")
	if _, err := server.Apply(master, "sitetest.append", []byte("s1")); err != nil {
		t.Fatal(err)
	}
	if _, err := mobile.Apply(replica, "sitetest.append", []byte("m1")); err != nil {
		t.Fatal(err)
	}
	if _, err := mobile.Apply(replica, "sitetest.append", []byte("m2")); err != nil {
		t.Fatal(err)
	}
	if got := mobile.Eventual().TentativeCount(mobile.Eventual().Tracked()[0]); got != 2 {
		t.Fatalf("mobile tentative = %d, want 2", got)
	}

	// Reconnect: one session ships m1,m2 up (the primary commits them) and
	// s1 plus all commit positions back down.
	w.net.Reconnect("server", "mobile")
	stats, err := mobile.AntiEntropy("server")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Updates == 0 {
		t.Fatalf("session absorbed nothing: %+v", stats)
	}

	oid := server.Eventual().Tracked()[0]
	ss, sf, err := server.Eventual().CommittedState(oid)
	if err != nil {
		t.Fatal(err)
	}
	ms, mf, err := mobile.Eventual().CommittedState(oid)
	if err != nil {
		t.Fatal(err)
	}
	if sf != 3 || mf != 3 {
		t.Fatalf("frontiers = %d/%d, want 3/3", sf, mf)
	}
	if !bytes.Equal(ss, ms) {
		t.Fatal("committed states differ after anti-entropy")
	}
	if master.Text != replica.Text {
		t.Fatalf("texts differ: %q vs %q", master.Text, replica.Text)
	}
}

func TestSiteWithoutEventualRejectsOps(t *testing.T) {
	w := newWorld(t)
	s := w.site("plain")
	n := &note{}
	if err := s.Register(n); err != nil {
		t.Fatal(err)
	}
	if err := s.Track(n); !errors.Is(err, ErrNoEventual) {
		t.Fatalf("Track err = %v, want ErrNoEventual", err)
	}
	if _, err := s.Apply(n, "sitetest.append", nil); !errors.Is(err, ErrNoEventual) {
		t.Fatalf("Apply err = %v, want ErrNoEventual", err)
	}
	if _, err := s.AntiEntropy("nowhere"); !errors.Is(err, ErrNoEventual) {
		t.Fatalf("AntiEntropy err = %v, want ErrNoEventual", err)
	}
	if s.Eventual() != nil {
		t.Fatal("plain site carries an eventual store")
	}
}

func TestTentativePolicyRejectsRawPut(t *testing.T) {
	w := newWorld(t)
	server, mobile, master, replica := evPair(t, w)
	_ = server

	// A raw state put against a log-managed object must be rejected by the
	// master's Tentative policy: it would fork from the committed prefix.
	replica.Write("raw overwrite")
	err := mobile.Put(replica)
	var re *rmi.RemoteError
	if !errors.As(err, &re) || !re.IsApp() {
		t.Fatalf("raw put on managed object: %v", err)
	}
	if master.Text != "" {
		t.Fatalf("rejected put mutated master: %q", master.Text)
	}

	// Unmanaged objects keep the ordinary put path.
	other := &note{Text: "v1"}
	if err := server.Bind("free", other); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("free")
	if err != nil {
		t.Fatal(err)
	}
	freeReplica, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}
	freeReplica.Write("v2")
	if err := mobile.Put(freeReplica); err != nil {
		t.Fatalf("put on unmanaged object: %v", err)
	}
	if other.Text != "v2" {
		t.Fatalf("unmanaged master: %q", other.Text)
	}
}

func TestLeaseDeterministicUnderVirtualClock(t *testing.T) {
	clock := netsim.NewVirtualClock()
	defer clock.Stop()
	net := transport.NewMemNetworkClock(netsim.Loopback, 1, clock)

	var server, mobile *Site
	var replica *note
	clock.Run(func() {
		var err error
		server, err = New("server", net, WithIncarnation(1))
		if err != nil {
			t.Error(err)
			return
		}
		mobile, err = New("mobile", net, WithIncarnation(1), WithLease(10*time.Second))
		if err != nil {
			t.Error(err)
			return
		}
		master := &note{Text: "v1"}
		if err := server.Register(master); err != nil {
			t.Error(err)
			return
		}
		d, err := server.Export(master)
		if err != nil {
			t.Error(err)
			return
		}
		ref := mobile.Engine().RefFromDescriptor(d, mobile.spec)
		replica, err = objmodel.Deref[*note](ref)
		if err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	defer func() {
		clock.Run(func() { _ = mobile.Close(); _ = server.Close() })
	}()

	_ = replica
	if got := mobile.LeaseExpired(); len(got) != 0 {
		t.Fatalf("fresh replica already expired: %d", len(got))
	}
	// Under a wall clock this would need a real 10s sleep; on the virtual
	// clock expiry is exact and instant: one tick short, still fresh.
	clock.Run(func() { clock.Sleep(10*time.Second - time.Millisecond) })
	if got := mobile.LeaseExpired(); len(got) != 0 {
		t.Fatalf("replica expired early: %d", len(got))
	}
	clock.Run(func() { clock.Sleep(2 * time.Millisecond) })
	if got := mobile.LeaseExpired(); len(got) != 1 {
		t.Fatalf("replica not expired after TTL: %d", len(got))
	}
}

// TestEventualDisabledPutPathAllocParity pins the zero-overhead claim for
// sites that never enable eventual consistency: the put path allocates
// identically across two independently built plain deployments (nothing
// leaks in by construction order), and a plain site carries none of the
// eventual machinery.
func TestEventualDisabledPutPathAllocParity(t *testing.T) {
	measure := func() float64 {
		w := newWorld(t)
		server := w.site(fmt.Sprintf("server-%p", t), WithoutTelemetry())
		mobile := w.site(fmt.Sprintf("mobile-%p", t), WithoutTelemetry())
		master := &note{Text: "v"}
		if err := server.Register(master); err != nil {
			t.Fatal(err)
		}
		d, err := server.Export(master)
		if err != nil {
			t.Fatal(err)
		}
		ref := mobile.Engine().RefFromDescriptor(d, mobile.spec)
		replica, err := objmodel.Deref[*note](ref)
		if err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(50, func() {
			replica.Write("x")
			if err := mobile.Put(replica); err != nil {
				t.Fatal(err)
			}
		})
	}
	first := measure()
	second := measure()
	if first != second {
		t.Fatalf("plain put path allocs drifted between deployments: %v vs %v", first, second)
	}
	w := newWorld(t)
	plain := w.site("alloc-plain")
	if plain.eventual != nil || plain.txnMgr != nil {
		t.Fatal("plain site carries eventual machinery")
	}
}

func TestDurableEventualSurvivesKill(t *testing.T) {
	w := newWorld(t)
	server := w.site("server", WithEventual())
	dir := t.TempDir()
	mobile := w.site("mobile", WithEventual(), WithDurability(dir))

	master := &note{}
	if err := server.Bind("doc", master); err != nil {
		t.Fatal(err)
	}
	if err := server.Track(master); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	replica, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := mobile.Track(replica); err != nil {
		t.Fatal(err)
	}

	// Disconnected tentative edits, then a crash with no clean shutdown.
	w.net.Disconnect("server", "mobile")
	if _, err := mobile.Apply(replica, "sitetest.append", []byte("m1")); err != nil {
		t.Fatal(err)
	}
	if _, err := mobile.Apply(replica, "sitetest.append", []byte("m2")); err != nil {
		t.Fatal(err)
	}
	oid := mobile.Eventual().Tracked()[0]
	mobile.Kill()
	w.net.Reconnect("server", "mobile")

	reborn := w.site("mobile", WithEventual(), WithDurability(dir))
	ev := reborn.Eventual()
	if got := ev.TentativeCount(oid); got != 2 {
		t.Fatalf("recovered tentative = %d, want 2", got)
	}
	entry, ok := reborn.Heap().Get(oid)
	if !ok {
		t.Fatal("tracked replica not recovered")
	}
	if entry.Obj.(*note).Text != "m1|m2|" {
		t.Fatalf("recovered text = %q, want m1|m2|", entry.Obj.(*note).Text)
	}

	// The recovered log syncs as if the crash never happened.
	if _, err := reborn.AntiEntropy("server"); err != nil {
		t.Fatal(err)
	}
	if master.Text != "m1|m2|" {
		t.Fatalf("master text = %q after recovered sync", master.Text)
	}
	ss, sf, _ := server.Eventual().CommittedState(oid)
	ms, mf, _ := ev.CommittedState(oid)
	if sf != mf || !bytes.Equal(ss, ms) {
		t.Fatalf("post-recovery sync diverged: frontiers %d/%d", sf, mf)
	}
}

func TestParkedTxnSurvivesKill(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	dir := t.TempDir()
	client := w.site("client", WithDurability(dir), WithRetry(rmi.NoRetry()))

	master := &note{Text: "v1"}
	if err := server.Bind("doc", master); err != nil {
		t.Fatal(err)
	}
	ref, err := client.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	replica, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}

	// A transaction committed while disconnected parks instead of failing.
	w.net.Disconnect("server", "client")
	mgr := client.TxnManager()
	tx := mgr.Begin()
	if err := tx.Write(replica); err != nil {
		t.Fatal(err)
	}
	replica.Write("offline edit")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(mgr.Pending()) != 1 {
		t.Fatalf("pending = %d, want 1", len(mgr.Pending()))
	}

	client.Kill()
	w.net.Reconnect("server", "client")

	// Rebirth: the parked commit and its dirty write set come back from
	// the WAL, and the adopted transaction flushes to the master.
	reborn := w.site("client", WithDurability(dir), WithRetry(rmi.NoRetry()))
	mgr2 := reborn.TxnManager()
	if got := len(mgr2.Pending()); got != 1 {
		t.Fatalf("recovered pending = %d, want 1", got)
	}
	n, err := mgr2.FlushPending()
	if err != nil {
		t.Fatalf("flush after rebirth: %v", err)
	}
	if n != 1 {
		t.Fatalf("flushed = %d, want 1", n)
	}
	if master.Text != "offline edit" {
		t.Fatalf("master = %q, want offline edit", master.Text)
	}
	if got := len(mgr2.Pending()); got != 0 {
		t.Fatalf("pending after flush = %d", got)
	}
}
