package site

import (
	"errors"
	"testing"

	"obiwan/internal/consistency"
	"obiwan/internal/objmodel"
	"obiwan/internal/rmi"
)

func TestSiteDisseminationPush(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	mobile := w.site("mobile")

	master := &note{Text: "v1"}
	if err := server.Bind("doc", master); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	replica, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}

	pub := server.EnableDissemination()
	if server.Publisher() != pub {
		t.Fatal("publisher accessor")
	}
	if again := server.EnableDissemination(); again != pub {
		t.Fatal("EnableDissemination must be idempotent")
	}
	pub.Subscribe("mobile")

	master.Write("v2")
	if err := server.MarkUpdated(master); err != nil {
		t.Fatal(err)
	}
	if replica.Text != "v2" {
		t.Fatalf("pushed replica: %q", replica.Text)
	}
	e, _ := mobile.Heap().EntryOf(replica)
	if e.Version() != 2 {
		t.Fatalf("replica version: %d", e.Version())
	}
}

func TestSiteDisseminationOfflineCatchUp(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	mobile := w.site("mobile")

	master := &note{Text: "v1"}
	if err := server.Bind("doc", master); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	replica, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}
	pub := server.EnableDissemination()
	pub.Subscribe("mobile")

	w.net.PartitionHost("mobile")
	master.Write("v2")
	if err := server.MarkUpdated(master); err != nil {
		t.Fatal(err)
	}
	if replica.Text != "v1" {
		t.Fatal("partitioned replica must not update")
	}
	if pub.Lag("mobile") != 1 {
		t.Fatalf("lag: %d", pub.Lag("mobile"))
	}
	w.net.HealHost("mobile")
	if got := pub.Flush(); got != 1 {
		t.Fatalf("flush: %d", got)
	}
	if replica.Text != "v2" {
		t.Fatalf("after catch-up: %q", replica.Text)
	}
}

func TestSiteDisseminationComposesWithPolicyAndInvalidation(t *testing.T) {
	w := newWorld(t)
	server := w.site("server",
		WithPolicy(consistency.FirstWriterWins{}),
		WithInvalidation())
	alice := w.site("alice")
	bob := w.site("bob")

	master := &note{Text: "v1"}
	if err := server.Bind("doc", master); err != nil {
		t.Fatal(err)
	}
	pub := server.EnableDissemination()
	pub.Subscribe("alice")

	refA, err := alice.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	a, err := objmodel.Deref[*note](refA)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := bob.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	b, err := objmodel.Deref[*note](refB)
	if err != nil {
		t.Fatal(err)
	}

	// Alice's put wins; it is disseminated to her (no-op: she is the
	// writer and already current) — and bob, who is not subscribed, gets
	// an invalidation instead.
	a.Write("alice v2")
	if err := alice.Put(a); err != nil {
		t.Fatal(err)
	}
	be, _ := bob.Heap().EntryOf(b)
	if _, stale := bob.StaleSet().IsStale(be.OID); !stale {
		t.Fatal("bob should be invalidated")
	}

	// Bob's stale put is still rejected: the base policy survived the
	// layering.
	b.Write("bob clobbering")
	err = bob.Put(b)
	var re *rmi.RemoteError
	if !errors.As(err, &re) || !re.IsApp() {
		t.Fatalf("stale put must be rejected through the policy chain: %v", err)
	}
	if master.Text != "alice v2" {
		t.Fatalf("master: %q", master.Text)
	}
}
