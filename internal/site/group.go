package site

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"obiwan/internal/codec"
	"obiwan/internal/consensus"
	"obiwan/internal/heap"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// This file implements consensus-replicated master groups: a small static
// set of sites (typically 3–5) that agree every master-side mutation —
// registrations, applied puts, version bumps, name bindings — through a
// replicated log (internal/consensus), so the group survives the permanent
// loss of any minority of members with no lost updates.
//
// The division of labor:
//
//   - internal/consensus elects a leader, replicates the log, and tracks a
//     serve lease. It knows nothing about replication.
//   - replication.Engine exposes deterministic ApplyReplicated* replay
//     entrypoints and routes master mutations through the MasterGate.
//   - This file is the gate: it encodes engine mutations as log commands,
//     submits them to the local consensus node, and replays committed
//     commands back into the engine — identically on every member.
//
// Determinism is the load-bearing property: every member's master heap,
// exactly-once dedupe table, and proxy-in export table are pure functions
// of the agreed log. That is what lets a client fail over by swapping only
// the provider address (proxy-in ids are allocated deterministically from
// apply order) and what makes a retried put hit the dedupe guard on the
// new leader instead of applying twice.
//
// Known limitations, by design: membership is static for the life of the
// group; only the leaseholder serves reads and invokes (followers redirect
// with a typed not-leader hint); consistency-policy hooks run at the
// leader only.

// consensusID is the well-known object id of a grouped site's consensus
// service: always exported fourth, after the invalidation sink (1), the
// update sink (2), and the admin service (3).
const consensusID rmi.ObjID = 4

// groupProxyBase anchors the deterministic proxy-in id space of grouped
// masters. Ids count DOWN from just below this base in apply order, so
// they can never collide with the runtime's sequential Export allocator
// counting up from 1.
const groupProxyBase uint64 = 1 << 40

// GroupConfig configures a site's membership in a master group. Every
// member of one group must be created with an identical configuration
// (same Name, same Members, same timing, same Seed) — the log replay that
// keeps members identical starts with the configuration being identical.
type GroupConfig struct {
	// Name identifies the group; it seeds the shared OID site-id prefix
	// all members mint under. Defaults to the sorted member list.
	Name string
	// Members lists every member site address, this site included.
	Members []transport.Addr
	// ElectionTimeout, Heartbeat, Lease tune the consensus layer (see
	// consensus.Config); zero values take the consensus defaults.
	ElectionTimeout time.Duration
	Heartbeat       time.Duration
	Lease           time.Duration
	// Seed makes election timing deterministic per member (mixed with the
	// member id) — required for reproducible virtual-clock scenarios.
	Seed int64
}

// WithMasterGroup makes the site a member of a consensus-replicated master
// group. Master state is then agreed through the group's replicated log:
// demands and puts are served by the current leader, followers redirect
// with replication.NotLeaderError, and the group survives permanent loss
// of a minority of members. Combine with WithDurability to persist the
// consensus log (the site journal is replaced by the log on grouped
// sites).
func WithMasterGroup(cfg GroupConfig) Option {
	return func(o *options) { o.group = &cfg }
}

// groupName returns the configured name or the canonical member-list name.
func (cfg *GroupConfig) groupName() string {
	if cfg.Name != "" {
		return cfg.Name
	}
	members := make([]string, len(cfg.Members))
	for i, m := range cfg.Members {
		members[i] = string(m)
	}
	sort.Strings(members)
	return strings.Join(members, ",")
}

// Group command kinds (field Kind of groupCmd).
const (
	cmdRegister uint64 = 1 // install a new master at an agreed OID
	cmdPut      uint64 = 2 // apply an inbound replica put
	cmdBump     uint64 = 3 // apply a local master update (MarkUpdated)
	cmdBind     uint64 = 4 // record a name binding for re-publication
)

// groupCmd is one replicated log command. One flat struct for all kinds
// keeps the wire format trivial; unused fields stay zero.
type groupCmd struct {
	Kind     uint64
	OID      uint64
	TypeName string
	Version  uint64
	State    []byte
	Frontier []replication.FrontierRef
	Put      *replication.PutRequest
	Name     string
	Desc     *replication.Descriptor
}

func init() {
	codec.MustRegister("obiwan.site.groupCmd", groupCmd{})
}

// Group is a site's handle on its master group: the consensus node plus
// the glue that encodes engine mutations as log commands and replays
// committed commands into the engine. It implements
// replication.MasterGate.
type Group struct {
	site          *Site
	node          *consensus.Node
	name          string
	members       []transport.Addr
	callTimeout   time.Duration // per consensus RPC
	submitTimeout time.Duration // per proposed command
	heartbeat     time.Duration

	closeOnce sync.Once
	closedC   chan struct{}

	mu        sync.Mutex
	pending   map[objmodel.OID]any              // proposer's instance per in-flight register
	registers uint64                            // applied register count → proxy-in ids
	bindings  map[string]replication.Descriptor // agreed name bindings
}

var _ replication.MasterGate = (*Group)(nil)

// newGroup builds the site's group membership: consensus store (durable
// under the site's WAL dir, in-memory otherwise), node, and the RMI export
// of the consensus service at its well-known id.
func newGroup(s *Site, o *options) (*Group, error) {
	cfg := o.group
	self := s.rt.Addr()
	found := false
	members := make([]string, 0, len(cfg.Members))
	for _, m := range cfg.Members {
		if m == self {
			found = true
		}
		members = append(members, string(m))
	}
	if !found {
		return nil, fmt.Errorf("site %q: master group %v does not include this site", s.name, cfg.Members)
	}

	et := cfg.ElectionTimeout
	if et <= 0 {
		et = 200 * time.Millisecond
	}
	hb := cfg.Heartbeat
	if hb <= 0 {
		hb = et / 10
	}

	var store *consensus.Store
	if o.walDir != "" {
		var err error
		store, err = consensus.OpenStore(filepath.Join(o.walDir, "consensus"))
		if err != nil {
			return nil, fmt.Errorf("site %q: open consensus store: %w", s.name, err)
		}
	} else {
		store = consensus.NewMemStore()
	}

	g := &Group{
		site:          s,
		name:          cfg.groupName(),
		members:       append([]transport.Addr(nil), cfg.Members...),
		callTimeout:   et / 2,
		submitTimeout: 5 * et,
		heartbeat:     hb,
		closedC:       make(chan struct{}),
		pending:       make(map[objmodel.OID]any),
		bindings:      make(map[string]replication.Descriptor),
	}
	node, err := consensus.New(consensus.Config{
		ID:              string(self),
		Members:         members,
		Clock:           s.rt.Clock(),
		Store:           store,
		Call:            g.call,
		Apply:           g.apply,
		OnEvent:         g.onEvent,
		Seed:            cfg.Seed,
		Metrics:         s.tel.Metrics(),
		ElectionTimeout: cfg.ElectionTimeout,
		Heartbeat:       cfg.Heartbeat,
		Lease:           cfg.Lease,
	})
	if err != nil {
		store.Close()
		return nil, fmt.Errorf("site %q: %w", s.name, err)
	}
	g.node = node
	ref, err := s.rt.ExportWithID(consensusID, consensus.NewService(node), consensus.Iface)
	if err != nil {
		node.Close()
		return nil, fmt.Errorf("site %q: export consensus service: %w", s.name, err)
	}
	if ref.ID != consensusID {
		node.Close()
		return nil, fmt.Errorf("site %q: consensus service landed at id %d, want %d", s.name, ref.ID, consensusID)
	}
	return g, nil
}

// Name returns the group's name.
func (g *Group) Name() string { return g.name }

// Node exposes the underlying consensus participant (tests, telemetry).
func (g *Group) Node() *consensus.Node { return g.node }

// Leader returns the current known leader's address ("" during elections).
func (g *Group) Leader() transport.Addr { return transport.Addr(g.node.Leader()) }

// IsLeader reports whether this member currently leads the group.
func (g *Group) IsLeader() bool { return g.node.IsLeader() }

// WaitLeader blocks until the group has a leader (any member) and returns
// its address.
func (g *Group) WaitLeader(timeout time.Duration) (transport.Addr, error) {
	l, err := g.node.WaitLeader(timeout)
	return transport.Addr(l), err
}

// WaitServing blocks until THIS member leads with a live lease and a fully
// replayed log — i.e. until CheckServe succeeds — or timeout elapses.
func (g *Group) WaitServing(timeout time.Duration) error {
	clock := g.site.rt.Clock()
	deadline := clock.Now().Add(timeout)
	for {
		err := g.CheckServe()
		if err == nil {
			return nil
		}
		if !clock.Now().Add(g.heartbeat).Before(deadline) {
			return err
		}
		clock.Sleep(g.heartbeat)
	}
}

// call routes one consensus RPC to a peer's consensus service.
func (g *Group) call(peer, method string, args ...any) ([]any, error) {
	ref := rmi.RemoteRef{Addr: transport.Addr(peer), ID: consensusID, Iface: consensus.Iface}
	return g.site.rt.CallTimeout(ref, g.callTimeout, method, args...)
}

// redirect maps consensus-layer refusals to the replication-layer typed
// redirect clients fail over on.
func (g *Group) redirect(err error) error {
	var nl *consensus.NotLeaderError
	if errors.As(err, &nl) {
		return &replication.NotLeaderError{Hint: transport.Addr(nl.Hint)}
	}
	if errors.Is(err, consensus.ErrLostLeadership) {
		return &replication.NotLeaderError{Hint: transport.Addr(g.node.Leader())}
	}
	return err
}

// CheckServe implements replication.MasterGate: only the leaseholder with
// a replayed log serves master reads.
func (g *Group) CheckServe() error {
	if err := g.node.Gate(); err != nil {
		return g.redirect(err)
	}
	return nil
}

// Members implements replication.MasterGate.
func (g *Group) Members() []transport.Addr {
	return append([]transport.Addr(nil), g.members...)
}

// encode serializes one command for the log.
func (g *Group) encode(cmd *groupCmd) ([]byte, error) {
	enc := codec.NewEncoder(256)
	if err := enc.EncodeStruct(g.site.rt.Registry(), cmd); err != nil {
		return nil, fmt.Errorf("site: encode group command: %w", err)
	}
	return enc.Bytes(), nil
}

// decode deserializes one committed command.
func (g *Group) decode(data []byte) (*groupCmd, error) {
	var cmd groupCmd
	if err := codec.NewDecoder(data).DecodeStruct(g.site.rt.Registry(), &cmd); err != nil {
		return nil, fmt.Errorf("site: decode group command: %w", err)
	}
	return &cmd, nil
}

// submit proposes one command and waits for its local apply result. A
// committed command whose apply failed comes back as that error — the
// failure is itself agreed (every member fails it identically).
func (g *Group) submit(cmd *groupCmd) (any, error) {
	data, err := g.encode(cmd)
	if err != nil {
		return nil, err
	}
	res, err := g.node.Submit(data, g.submitTimeout)
	if err != nil {
		return nil, g.redirect(err)
	}
	if applyErr, ok := res.(error); ok {
		return nil, applyErr
	}
	return res, nil
}

// RoutePut implements replication.MasterGate: leader-side admission
// (exactly-once dedupe fast path + consistency policy), then agree the
// put through the log. The MasterUpdated hook fires here — at the leader,
// once per agreed update — never in replay. When the put was traced, the
// Submit-to-apply wait runs under a "group.submit" child span whose time
// is attributed as submit.wait, so critical paths show consensus
// round-trips as their own phase.
func (g *Group) RoutePut(sc telemetry.SpanContext, req *replication.PutRequest) (*replication.PutReply, error) {
	if err := g.CheckServe(); err != nil {
		return nil, err
	}
	reply, done, err := g.site.engine.PreparePut(req)
	if err != nil {
		return nil, err
	}
	if done {
		return reply, nil
	}
	var span *telemetry.Span
	var start time.Time
	if g.site.tel.Enabled() && sc.Valid() {
		span = g.site.tel.StartSpan(sc, "group.submit")
		span.Annotate("oid", fmt.Sprint(req.OID))
		start = g.site.tel.Now()
	}
	res, err := g.submit(&groupCmd{Kind: cmdPut, OID: req.OID, Put: req})
	if span != nil {
		span.Phase(telemetry.PhaseSubmitWait, g.site.tel.Now().Sub(start))
		span.SetErr(err)
		span.End()
	}
	if err != nil {
		return nil, err
	}
	rep, ok := res.(*replication.PutReply)
	if !ok {
		return nil, fmt.Errorf("site: group put %d: unexpected apply result %T", req.OID, res)
	}
	g.site.engine.NotifyMasterUpdated(objmodel.OID(req.OID), rep.NewVersion)
	return rep, nil
}

// RouteRegister implements replication.MasterGate: the leader mints the
// identity, snapshots the object's initial state, and agrees the
// registration. The proposer's own instance is installed on apply (via
// the pending table); other members instantiate from the registered type.
func (g *Group) RouteRegister(obj any) (*heap.Entry, error) {
	if err := g.CheckServe(); err != nil {
		return nil, err
	}
	if entry, ok := g.site.heap.EntryOf(obj); ok {
		return entry, nil
	}
	info, ok := objmodel.InfoOf(obj)
	if !ok {
		return nil, fmt.Errorf("site: group register: type %T not registered with objmodel", obj)
	}
	state, err := g.site.engine.CaptureSnapshot(obj)
	if err != nil {
		return nil, err
	}
	frontier, err := g.site.engine.BuildRecoveryFrontier(obj)
	if err != nil {
		return nil, err
	}
	oid := g.site.heap.MintOID()
	g.mu.Lock()
	g.pending[oid] = obj
	g.mu.Unlock()
	res, err := g.submit(&groupCmd{
		Kind: cmdRegister, OID: uint64(oid), TypeName: info.Name,
		Version: 1, State: state, Frontier: frontier,
	})
	if err != nil {
		g.mu.Lock()
		delete(g.pending, oid)
		g.mu.Unlock()
		return nil, err
	}
	entry, ok := res.(*heap.Entry)
	if !ok {
		return nil, fmt.Errorf("site: group register %v: unexpected apply result %T", oid, res)
	}
	return entry, nil
}

// RouteBump implements replication.MasterGate: snapshot the leader's
// object state and agree the version bump, so every member applies the
// identical new state in log order.
func (g *Group) RouteBump(entry *heap.Entry) (uint64, error) {
	if err := g.CheckServe(); err != nil {
		return 0, err
	}
	state, frontier, err := g.site.engine.CaptureForGroup(entry)
	if err != nil {
		return 0, err
	}
	res, err := g.submit(&groupCmd{Kind: cmdBump, OID: uint64(entry.OID), State: state, Frontier: frontier})
	if err != nil {
		return 0, err
	}
	v, ok := res.(uint64)
	if !ok {
		return 0, fmt.Errorf("site: group bump %v: unexpected apply result %T", entry.OID, res)
	}
	return v, nil
}

// Bind agrees a name binding through the log (so a future leader can
// republish it) and then registers it at the name server. Leader-only,
// like every other master mutation.
func (g *Group) Bind(name string, d replication.Descriptor) error {
	if err := g.CheckServe(); err != nil {
		return err
	}
	if _, err := g.submit(&groupCmd{Kind: cmdBind, Name: name, Desc: &d}); err != nil {
		return err
	}
	if g.site.ns != nil {
		return g.site.ns.Rebind(name, d)
	}
	return nil
}

// apply replays one committed command into the engine — the deterministic
// heart of the group. It runs in log order, exactly once per process
// lifetime, on every member. Errors are returned as the apply result (the
// proposer's Submit surfaces them); they are deterministic too, since
// they are functions of the same log prefix.
func (g *Group) apply(ent consensus.Entry) any {
	cmd, err := g.decode(ent.Data)
	if err != nil {
		return err
	}
	switch cmd.Kind {
	case cmdRegister:
		oid := objmodel.OID(cmd.OID)
		g.mu.Lock()
		obj, proposed := g.pending[oid]
		delete(g.pending, oid)
		seq := g.registers
		g.registers++
		g.mu.Unlock()
		if !proposed {
			info, ok := objmodel.InfoByName(cmd.TypeName)
			if !ok {
				return fmt.Errorf("site: group register %v: unknown type %q", oid, cmd.TypeName)
			}
			obj = info.New()
		}
		// Proxy-in ids are a pure function of apply order, so every
		// member exports this master at the same id — the property that
		// lets clients fail over by swapping only the address.
		proxyID := groupProxyBase - 1 - seq
		entry, err := g.site.engine.ApplyReplicatedRegister(obj, oid, cmd.TypeName, cmd.Version, cmd.State, cmd.Frontier, proxyID)
		if err != nil {
			return err
		}
		return entry
	case cmdPut:
		if cmd.Put == nil {
			return fmt.Errorf("site: group put command without request")
		}
		reply, err := g.site.engine.ApplyReplicatedPut(cmd.Put)
		if err != nil {
			return err
		}
		return reply
	case cmdBump:
		v, err := g.site.engine.ApplyReplicatedBump(objmodel.OID(cmd.OID), cmd.State, cmd.Frontier)
		if err != nil {
			return err
		}
		return v
	case cmdBind:
		if cmd.Desc == nil {
			return fmt.Errorf("site: group bind command without descriptor")
		}
		g.mu.Lock()
		g.bindings[cmd.Name] = *cmd.Desc
		g.mu.Unlock()
		return nil
	}
	return fmt.Errorf("site: unknown group command kind %d", cmd.Kind)
}

// onEvent observes consensus transitions: every election and stepdown is
// preserved in the flight recorder (so `obiwan-admin flight` can explain
// a failover after the fact), and a won election schedules re-publication
// of the group's name bindings under the new leader's address. Called
// with consensus locks held — record and schedule only.
func (g *Group) onEvent(ev consensus.Event) {
	if f := g.site.tel.Flight(); f != nil {
		f.Record(telemetry.FlightEvent{
			Kind:   ev.Kind,
			Detail: fmt.Sprintf("group=%s term=%d leader=%q %s", g.name, ev.Term, ev.Leader, ev.Detail),
		})
	}
	if ev.Kind == "consensus.elected" && ev.Leader == string(g.site.rt.Addr()) && g.site.ns != nil {
		g.site.rt.Clock().Go(g.republishBindings)
	}
}

// republishBindings re-registers every agreed name binding at the name
// server once this member's election settles (log replayed, lease live),
// so lookups resolve even when the original binder is permanently gone.
// Best-effort: an unreachable name server leaves stale bindings, which
// clients already tolerate through descriptor-level failover (the
// descriptor's Group lists every member).
func (g *Group) republishBindings() {
	clock := g.site.rt.Clock()
	for {
		select {
		case <-g.closedC:
			return
		default:
		}
		if !g.node.IsLeader() {
			return
		}
		if g.node.Gate() == nil {
			break
		}
		clock.Sleep(g.heartbeat)
	}
	g.mu.Lock()
	names := make([]string, 0, len(g.bindings))
	for name := range g.bindings {
		names = append(names, name)
	}
	sort.Strings(names)
	descs := make([]replication.Descriptor, len(names))
	for i, name := range names {
		descs[i] = g.bindings[name]
	}
	g.mu.Unlock()
	self := g.site.rt.Addr()
	for i, name := range names {
		// Publish under this member's own address: the proxy-in id is the
		// same on every member, so only the address needs rewriting.
		d := descs[i]
		d.Provider.Addr = self
		_ = g.site.ns.Rebind(name, d)
	}
}

// close shuts the consensus node (and its store) down cleanly.
func (g *Group) close() error {
	var err error
	g.closeOnce.Do(func() {
		close(g.closedC)
		err = g.node.Close()
	})
	return err
}

// abandon crash-stops the node, leaving the consensus log exactly as a
// power failure would.
func (g *Group) abandon() {
	g.closeOnce.Do(func() {
		close(g.closedC)
		g.node.Abandon()
	})
}
