package site

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"obiwan/internal/consistency"
	"obiwan/internal/nameserver"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

// TestLossyLinkReplicationEventuallySucceeds exercises the wireless
// profile's loss model: individual demands may fail, but the reference
// retries on the next invocation, so a persistent caller gets through.
func TestLossyLinkReplicationEventuallySucceeds(t *testing.T) {
	lossy := netsim.Profile{
		Name:     "flaky",
		Latency:  100 * time.Microsecond,
		LossRate: 0.3,
	}
	net := transport.NewMemNetwork(lossy)
	server, err := New("server", net, WithCallTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	mobile, err := New("mobile", net, WithCallTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer mobile.Close()

	master := &note{Text: "gets through"}
	d, err := server.Export(master)
	if err != nil {
		t.Fatal(err)
	}
	ref := mobile.Engine().RefFromDescriptor(d, replication.DefaultSpec)

	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		res, err := ref.Invoke("Read")
		if err == nil {
			if res[0] != "gets through" {
				t.Fatalf("read: %#v", res[0])
			}
			return
		}
		lastErr = err
	}
	t.Fatalf("never succeeded over lossy link: %v", lastErr)
}

// TestMasterRestartMidWalk replays a master-site failure: the master dies
// mid-walk, a replacement incarnation comes up at the same address and
// rebinds the graph root. As with Java RMI, references into the dead
// incarnation are invalid (proxy-in ids are per-runtime); recovery is a
// fresh name-server lookup — while everything already replicated keeps
// working locally.
func TestMasterRestartMidWalk(t *testing.T) {
	net := transport.NewMemNetwork(netsim.Loopback)
	nsrt, err := rmi.NewRuntime(net, "ns")
	if err != nil {
		t.Fatal(err)
	}
	defer nsrt.Close()
	if _, _, err := nameserver.Serve(nsrt); err != nil {
		t.Fatal(err)
	}

	buildServer := func(siteID uint16) (*Site, []*note, error) {
		s, err := New("server", net, WithNameServer("ns"), WithSiteID(siteID))
		if err != nil {
			return nil, nil, err
		}
		notes := make([]*note, 3)
		for i := range notes {
			notes[i] = &note{Text: fmt.Sprintf("n%d", i)}
			if err := s.Register(notes[i]); err != nil {
				return nil, nil, err
			}
		}
		for i := 0; i < 2; i++ {
			r, err := s.NewRef(notes[i+1])
			if err != nil {
				return nil, nil, err
			}
			notes[i].Next = r
		}
		if err := s.Bind("chain", notes[0]); err != nil {
			return nil, nil, err
		}
		return s, notes, nil
	}

	server1, _, err := buildServer(7)
	if err != nil {
		t.Fatal(err)
	}

	mobile, err := New("mobile", net, WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	defer mobile.Close()
	ref, err := mobile.Lookup("chain")
	if err != nil {
		t.Fatal(err)
	}
	head, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the master; faults into it fail, but the replicated head keeps
	// serving locally.
	_ = server1.Close()
	if _, err := head.Next.Invoke("Read"); err == nil {
		t.Fatal("fault against dead master must fail")
	}
	if res, err := ref.Invoke("Read"); err != nil || res[0] != "n0" {
		t.Fatalf("local replica must keep working: %v %v", res, err)
	}

	// A new incarnation comes up (fresh site id — it is a new object
	// universe) and rebinds the root. Recovery = re-lookup.
	server2, _, err := buildServer(8)
	if err != nil {
		t.Fatal(err)
	}
	defer server2.Close()

	ref2, err := mobile.Lookup("chain")
	if err != nil {
		t.Fatal(err)
	}
	head2, err := objmodel.Deref[*note](ref2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := head2.Next.Invoke("Read")
	if err != nil {
		t.Fatalf("walk after re-lookup: %v", err)
	}
	if res[0] != "n1" {
		t.Fatalf("read: %#v", res[0])
	}
}

// TestPutConflictDoesNotCorruptReplica: a rejected put must leave both the
// master and the local replica in consistent states.
func TestPutConflictDoesNotCorruptReplica(t *testing.T) {
	w := newWorld(t)
	server := w.site("server", WithPolicy(consistency.FirstWriterWins{}))
	mobile := w.site("mobile")

	master := &note{Text: "v1"}
	if err := server.Bind("doc", master); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	replica, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}
	master.Write("v2")
	if err := server.MarkUpdated(master); err != nil {
		t.Fatal(err)
	}
	replica.Write("stale edit")
	if err := mobile.Put(replica); err == nil {
		t.Fatal("stale put must fail")
	}
	// Master untouched; replica still holds the local edit (the app
	// decides whether to refresh or retry).
	if master.Text != "v2" {
		t.Fatalf("master corrupted: %q", master.Text)
	}
	if replica.Text != "stale edit" {
		t.Fatalf("replica clobbered: %q", replica.Text)
	}
	// Refresh reconverges.
	if err := mobile.Refresh(replica); err != nil {
		t.Fatal(err)
	}
	if replica.Text != "v2" {
		t.Fatalf("after refresh: %q", replica.Text)
	}
}

// TestTimeoutSurfacesCleanly: a call that outlives its deadline returns
// ErrTimeout without wedging the connection for later calls.
func TestTimeoutSurfacesCleanly(t *testing.T) {
	slow := netsim.Profile{Name: "molasses", Latency: 300 * time.Millisecond}
	net := transport.NewMemNetwork(slow)
	server, err := New("server", net)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	mobile, err := New("mobile", net, WithCallTimeout(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer mobile.Close()

	master := &note{Text: "slow"}
	d, err := server.Export(master)
	if err != nil {
		t.Fatal(err)
	}
	ref := mobile.Engine().RefFromDescriptor(d, replication.DefaultSpec)
	ref.SetMode(objmodel.ModeRemote)
	if _, err := ref.Invoke("Read"); !errors.Is(err, rmi.ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	// Raise the budget: the same connection serves the retry.
	res, err := mobile.Runtime().CallTimeout(d.Provider, 5*time.Second, "Invoke", "Read", nil)
	if err != nil {
		t.Fatalf("retry with bigger budget: %v", err)
	}
	out := res[0].([]any)
	if out[0] != "slow" {
		t.Fatalf("read: %#v", out)
	}
}

// TestTCPEndToEnd runs the whole stack — name server, two sites, fault
// resolution, put — over real TCP sockets.
func TestTCPEndToEnd(t *testing.T) {
	net := transport.NewTCPNetwork()
	nsrt, err := rmi.NewRuntime(net, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nsrt.Close()
	if _, _, err := nameserver.Serve(nsrt); err != nil {
		t.Fatal(err)
	}
	nsAddr := nsrt.Addr()

	server, err := New("127.0.0.1:0", net, WithNameServer(nsAddr), WithSiteID(21))
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	mobile, err := New("127.0.0.1:0", net, WithNameServer(nsAddr), WithSiteID(22))
	if err != nil {
		t.Fatal(err)
	}
	defer mobile.Close()

	head := &note{Text: "over tcp"}
	tail := &note{Text: "really"}
	if head.Next, err = server.NewRef(tail); err != nil {
		t.Fatal(err)
	}
	if err := server.Bind("tcp/chain", head); err != nil {
		t.Fatal(err)
	}

	ref, err := mobile.Lookup("tcp/chain")
	if err != nil {
		t.Fatal(err)
	}
	replica, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}
	if replica.Text != "over tcp" {
		t.Fatalf("head: %q", replica.Text)
	}
	res, err := replica.Next.Invoke("Read")
	if err != nil || res[0] != "really" {
		t.Fatalf("tail over tcp: %v %v", res, err)
	}
	replica.Write("edited over tcp")
	if err := mobile.Put(replica); err != nil {
		t.Fatal(err)
	}
	if head.Text != "edited over tcp" {
		t.Fatalf("master after tcp put: %q", head.Text)
	}
}
