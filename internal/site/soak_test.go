package site

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/transport"
)

// TestSoakConcurrentMobility runs several mobile sites against one master
// under churn: concurrent replication, edits, puts, refreshes, and
// periodic disconnections. The test asserts that only disconnection-class
// errors occur, that every site converges to the master state at the end,
// and (under -race) that the whole stack is data-race free.
func TestSoakConcurrentMobility(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		nMobiles = 4
		nDocs    = 8
		nIters   = 40
	)
	w := newWorld(t)
	server := w.site("server") // last-writer-wins: every put lands

	masters := make([]*note, nDocs)
	for i := range masters {
		masters[i] = &note{Text: fmt.Sprintf("doc-%d v0", i)}
		if err := server.Bind(fmt.Sprintf("doc/%d", i), masters[i]); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, nMobiles*nIters)
	mobiles := make([]*Site, nMobiles)
	for m := 0; m < nMobiles; m++ {
		mobiles[m] = w.site(fmt.Sprintf("mobile-%d", m))
	}
	for m := 0; m < nMobiles; m++ {
		mobile := mobiles[m]
		wg.Add(1)
		go func(m int, mobile *Site) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(m)))
			name := mobile.Name()
			addr := transport.Addr(name)
			for i := 0; i < nIters; i++ {
				switch rng.Intn(10) {
				case 0:
					w.net.PartitionHost(addr)
				case 1:
					w.net.HealHost(addr)
				}
				d := rng.Intn(nDocs)
				ref, err := mobile.Lookup(fmt.Sprintf("doc/%d", d))
				if err != nil {
					if !isNetworkErr(err) {
						errCh <- fmt.Errorf("%s lookup: %w", name, err)
					}
					continue
				}
				replica, err := objmodel.Deref[*note](ref)
				if err != nil {
					if !isNetworkErr(err) {
						errCh <- fmt.Errorf("%s deref: %w", name, err)
					}
					continue
				}
				switch rng.Intn(3) {
				case 0: // read
					if _, err := ref.Invoke("Read"); err != nil && !isNetworkErr(err) {
						errCh <- fmt.Errorf("%s read: %w", name, err)
					}
				case 1: // edit + put
					replica.Write(fmt.Sprintf("doc-%d by %s iter %d", d, name, i))
					if err := mobile.Put(replica); err != nil && !isNetworkErr(err) {
						errCh <- fmt.Errorf("%s put: %w", name, err)
					}
				case 2: // refresh
					if err := mobile.Refresh(replica); err != nil && !isNetworkErr(err) {
						errCh <- fmt.Errorf("%s refresh: %w", name, err)
					}
				}
			}
			w.net.HealHost(addr)
		}(m, mobile)
	}
	wg.Wait()

	// Convergence phase: all writers are quiescent. Refresh every replica
	// and compare against the masters.
	for _, mobile := range mobiles {
		name := mobile.Name()
		for _, e := range mobile.Heap().Entries() {
			if err := mobile.Refresh(e.Obj); err != nil {
				errCh <- fmt.Errorf("%s final refresh: %w", name, err)
			}
		}
		for _, e := range mobile.Heap().Entries() {
			replica := e.Obj.(*note)
			var master *note
			for _, mn := range masters {
				me, _ := server.Heap().EntryOf(mn)
				if me.OID == e.OID {
					master = mn
					break
				}
			}
			if master == nil {
				errCh <- fmt.Errorf("%s holds unknown oid %v", name, e.OID)
				continue
			}
			if replica.Text != master.Text {
				errCh <- fmt.Errorf("%s diverged on %v: %q vs %q",
					name, e.OID, replica.Text, master.Text)
			}
		}
	}
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// isNetworkErr classifies the failures the soak test deliberately injects.
func isNetworkErr(err error) bool {
	return errors.Is(err, netsim.ErrDisconnected)
}
