package site

import (
	"errors"
	"fmt"
	"testing"

	"obiwan/internal/consistency"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
)

// buildDurableChain registers a 3-note chain at s, wires it, marks the
// wiring updated (so it is journaled), and binds the head under "chain".
func buildDurableChain(t *testing.T, s *Site) []*note {
	t.Helper()
	notes := make([]*note, 3)
	for i := range notes {
		notes[i] = &note{Text: fmt.Sprintf("n%d", i)}
		if err := s.Register(notes[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		r, err := s.NewRef(notes[i+1])
		if err != nil {
			t.Fatal(err)
		}
		notes[i].Next = r
		if err := s.MarkUpdated(notes[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Bind("chain", notes[0]); err != nil {
		t.Fatal(err)
	}
	return notes
}

// walkChain dereferences the chain from ref and returns the texts seen.
func walkChain(t *testing.T, ref *objmodel.Ref) []string {
	t.Helper()
	var texts []string
	head, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}
	for n := head; n != nil; {
		texts = append(texts, n.Text)
		if n.Next == nil {
			break
		}
		n, err = objmodel.Deref[*note](n.Next)
		if err != nil {
			t.Fatal(err)
		}
	}
	return texts
}

// TestDurableSiteRecoversAfterKill is the core crash story: a durable
// master is hard-killed (no flush, no final compaction) and reborn from
// its WAL directory with the same objects, versions, bindings, and
// proxy-in ids — so replicas fetched before the crash still put back
// after it, and fresh clients still find the graph by name.
func TestDurableSiteRecoversAfterKill(t *testing.T) {
	w := newWorld(t)
	dir := t.TempDir()
	server := w.site("server", WithDurability(dir))
	if server.Incarnation() != 1 {
		t.Fatalf("first life incarnation %d, want 1", server.Incarnation())
	}
	notes := buildDurableChain(t, server)
	headEntry, _ := server.Heap().EntryOf(notes[0])
	headOID, headVersion := headEntry.OID, headEntry.Version()

	// A replica fetched during the first life.
	mobile := w.site("mobile")
	ref, err := mobile.LookupSpec("chain", replication.GetSpec{Mode: replication.Transitive})
	if err != nil {
		t.Fatal(err)
	}
	head, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}

	server.Kill()

	reborn := w.site("server", WithDurability(dir))
	if reborn.Incarnation() != 2 {
		t.Fatalf("second life incarnation %d, want 2", reborn.Incarnation())
	}
	if got := reborn.Heap().Len(); got != 3 {
		t.Fatalf("recovered heap has %d entries, want 3", got)
	}
	entry, ok := reborn.Heap().Get(headOID)
	if !ok {
		t.Fatalf("head %v not recovered", headOID)
	}
	if entry.Version() != headVersion {
		t.Fatalf("head version %d, want %d", entry.Version(), headVersion)
	}

	// The pre-crash replica's provider reference must still resolve: the
	// proxy-in came back at its recorded id.
	head.Text = "edited while server was dead-and-reborn"
	if err := mobile.MarkUpdated(head); err != nil {
		t.Fatal(err)
	}
	if synced, err := mobile.SyncDirty(); err != nil || synced != 1 {
		t.Fatalf("sync to reborn master: synced=%d err=%v", synced, err)
	}
	if got := entry.Obj.(*note).Text; got != "edited while server was dead-and-reborn" {
		t.Fatalf("reborn master text %q", got)
	}

	// A fresh client finds the re-registered binding and walks the
	// recovered graph.
	probe := w.site("probe")
	pref, err := probe.Lookup("chain")
	if err != nil {
		t.Fatal(err)
	}
	texts := walkChain(t, pref)
	if len(texts) != 3 || texts[1] != "n1" || texts[2] != "n2" {
		t.Fatalf("walk after rebirth: %q", texts)
	}
}

// TestDurableCloseIdempotent: Close flushes, compacts, and may be called
// any number of times; a clean restart recovers from the snapshot alone.
func TestDurableCloseIdempotent(t *testing.T) {
	w := newWorld(t)
	dir := t.TempDir()
	server := w.site("server", WithDurability(dir))
	buildDurableChain(t, server)

	if err := server.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := server.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := server.Close(); err != nil {
		t.Fatalf("third close: %v", err)
	}

	reborn := w.site("server", WithDurability(dir))
	if got := reborn.Heap().Len(); got != 3 {
		t.Fatalf("recovered heap has %d entries, want 3", got)
	}
	if reborn.Incarnation() != 2 {
		t.Fatalf("incarnation %d, want 2", reborn.Incarnation())
	}
}

// TestDurableCompactionCrashWindow: mutations after a compaction live
// only in the log; a crash then recovers snapshot + log, and replaying
// any stale log suffix over the snapshot is idempotent (last-state-wins).
func TestDurableCompactionCrashWindow(t *testing.T) {
	w := newWorld(t)
	dir := t.TempDir()
	server := w.site("server", WithDurability(dir))
	notes := buildDurableChain(t, server)

	if err := server.durable.compactNow(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	// Post-compaction mutations: only the log has them.
	notes[2].Text = "post-compaction edit"
	if err := server.MarkUpdated(notes[2]); err != nil {
		t.Fatal(err)
	}
	tailEntry, _ := server.Heap().EntryOf(notes[2])
	tailOID, tailVersion := tailEntry.OID, tailEntry.Version()

	server.Kill()

	reborn := w.site("server", WithDurability(dir))
	entry, ok := reborn.Heap().Get(tailOID)
	if !ok {
		t.Fatalf("tail %v not recovered", tailOID)
	}
	if got := entry.Obj.(*note).Text; got != "post-compaction edit" {
		t.Fatalf("recovered tail text %q", got)
	}
	if entry.Version() != tailVersion {
		t.Fatalf("tail version %d, want %d", entry.Version(), tailVersion)
	}
}

// TestDurableClientRecoversOfflineEdits is the mobile half of the story:
// a durable client edits replicas while disconnected, crashes, and its
// reborn incarnation still holds the dirty replicas — SyncDirty delivers
// the pre-crash edits once the link returns.
func TestDurableClientRecoversOfflineEdits(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	master := &note{Text: "v1"}
	if err := server.Bind("doc", master); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	mobile := w.site("mobile", WithDurability(dir))
	ref, err := mobile.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	n, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}

	w.net.Disconnect("mobile", "server")
	n.Text = "offline edit, journaled"
	if err := mobile.MarkUpdated(n); err != nil {
		t.Fatal(err)
	}
	mobile.Kill() // host powers off mid-detachment

	reborn := w.site("mobile", WithDurability(dir))
	dirty := reborn.DirtyReplicas()
	if len(dirty) != 1 {
		t.Fatalf("reborn client has %d dirty replicas, want 1", len(dirty))
	}
	if got := dirty[0].(*note).Text; got != "offline edit, journaled" {
		t.Fatalf("recovered dirty text %q", got)
	}

	w.net.Reconnect("mobile", "server")
	if synced, err := reborn.SyncDirty(); err != nil || synced != 1 {
		t.Fatalf("sync after rebirth: synced=%d err=%v", synced, err)
	}
	if master.Text != "offline edit, journaled" {
		t.Fatalf("master text %q", master.Text)
	}
	if len(reborn.DirtyReplicas()) != 0 {
		t.Fatal("synced replica must be clean")
	}
}

// TestErrUnavailableChain pins the error contract through the retry →
// engine → site chain: connectivity failures are errors.Is-able both as
// replication.ErrUnavailable and as the underlying transport cause, the
// sentinel is reachable by manual Unwrap walking, and application-level
// rejections surface as *rmi.RemoteError WITHOUT the unavailable tag.
func TestErrUnavailableChain(t *testing.T) {
	w := newWorld(t)
	fast := rmi.RetryPolicy{MaxAttempts: 3, BaseBackoff: 0, MaxBackoff: 0, Multiplier: 1}
	server := w.site("server", WithPolicy(consistency.FirstWriterWins{}))
	alice := w.site("alice", WithRetry(fast))
	bob := w.site("bob", WithRetry(fast))

	masterNote := &note{Text: "v1"}
	if err := server.Bind("doc", masterNote); err != nil {
		t.Fatal(err)
	}
	refA, err := alice.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	a, err := objmodel.Deref[*note](refA)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := bob.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	b, err := objmodel.Deref[*note](refB)
	if err != nil {
		t.Fatal(err)
	}

	// Connectivity failure: retries exhaust, then the site surfaces the
	// engine's wrap of the transport error.
	w.net.Disconnect("alice", "server")
	a.Text = "stranded"
	if err := alice.MarkUpdated(a); err != nil {
		t.Fatal(err)
	}
	_, err = alice.SyncDirty()
	if err == nil {
		t.Fatal("sync over a dead link must fail")
	}
	if !errors.Is(err, replication.ErrUnavailable) {
		t.Fatalf("errors.Is(ErrUnavailable) false: %v", err)
	}
	if !errors.Is(err, netsim.ErrDisconnected) {
		t.Fatalf("transport cause lost from chain: %v", err)
	}
	// The wrap uses multi-%w, so the chain is a tree: nodes expose either
	// Unwrap() error or Unwrap() []error. Both sentinels must be leaves.
	var walk func(e error) bool
	walk = func(e error) bool {
		if e == replication.ErrUnavailable {
			return true
		}
		switch u := e.(type) {
		case interface{ Unwrap() error }:
			return walk(u.Unwrap())
		case interface{ Unwrap() []error }:
			for _, c := range u.Unwrap() {
				if c != nil && walk(c) {
					return true
				}
			}
		}
		return false
	}
	if !walk(err) {
		t.Fatalf("Unwrap walk never reached the sentinel: %v", err)
	}

	// Application-level rejection: a conflicting put is a remote error,
	// not an unavailability.
	b.Text = "bob's edit"
	if err := bob.Put(b); err != nil {
		t.Fatal(err)
	}
	w.net.Reconnect("alice", "server")
	err = alice.Put(a) // base version is stale now
	var re *rmi.RemoteError
	if !errors.As(err, &re) || !re.IsApp() {
		t.Fatalf("stale put: want app-level *rmi.RemoteError, got %v", err)
	}
	if errors.Is(err, replication.ErrUnavailable) {
		t.Fatalf("an application rejection must not read as unavailability: %v", err)
	}
}
