package site

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"obiwan/internal/consistency"
	"obiwan/internal/nameserver"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/transport"
)

// note is the test object: a shared annotation with a link to the next.
type note struct {
	Text string
	Next *objmodel.Ref
}

func (n *note) Read() string { return n.Text }

func (n *note) Write(s string) { n.Text = s }

func init() {
	objmodel.MustRegisterType("site_test.note", (*note)(nil))
}

// world is a simulated deployment: a name server plus named sites.
type world struct {
	t   *testing.T
	net *transport.MemNetwork
}

func newWorld(t *testing.T) *world {
	t.Helper()
	net := transport.NewMemNetwork(netsim.Loopback)
	nsrt, err := rmi.NewRuntime(net, "ns")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nsrt.Close() })
	if _, _, err := nameserver.Serve(nsrt); err != nil {
		t.Fatal(err)
	}
	return &world{t: t, net: net}
}

func (w *world) site(name string, opts ...Option) *Site {
	w.t.Helper()
	opts = append([]Option{WithNameServer("ns")}, opts...)
	s, err := New(name, w.net, opts...)
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestBindLookupInvokeAcrossSites(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	mobile := w.site("mobile")

	n := &note{Text: "hello"}
	if err := server.Bind("notes/greeting", n); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("notes/greeting")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ref.Invoke("Read")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "hello" {
		t.Fatalf("read: %#v", res[0])
	}
}

func TestLookupWithoutNameServer(t *testing.T) {
	net := transport.NewMemNetwork(netsim.Loopback)
	s, err := New("lonely", net)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Lookup("x"); !errors.Is(err, ErrNoNameServer) {
		t.Fatalf("lookup: %v", err)
	}
	if err := s.Bind("x", &note{}); !errors.Is(err, ErrNoNameServer) {
		t.Fatalf("bind: %v", err)
	}
}

func TestDisconnectedEditAndSyncDirty(t *testing.T) {
	// The paper's mobility headline: replicate, disconnect, keep editing
	// local replicas, reconnect, push updates back.
	w := newWorld(t)
	server := w.site("server")
	mobile := w.site("mobile")

	master := &note{Text: "v1"}
	if err := server.Bind("doc", master); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	replica, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}

	w.net.PartitionHost("mobile")

	// Local work continues while disconnected.
	replica.Write("edited offline")
	if err := mobile.MarkUpdated(replica); err != nil {
		t.Fatal(err)
	}
	if res, err := ref.Invoke("Read"); err != nil || res[0] != "edited offline" {
		t.Fatalf("offline read: %v %v", res, err)
	}
	// Sync fails while partitioned.
	if n, err := mobile.SyncDirty(); err == nil || n != 0 {
		t.Fatalf("offline sync: n=%d err=%v", n, err)
	}
	if len(mobile.DirtyReplicas()) != 1 {
		t.Fatal("replica must stay dirty after failed sync")
	}

	w.net.HealHost("mobile")

	n, err := mobile.SyncDirty()
	if err != nil || n != 1 {
		t.Fatalf("sync after heal: n=%d err=%v", n, err)
	}
	if master.Text != "edited offline" {
		t.Fatalf("master: %q", master.Text)
	}
	if len(mobile.DirtyReplicas()) != 0 {
		t.Fatal("dirty set must be empty after sync")
	}
}

func TestInvalidationEndToEnd(t *testing.T) {
	w := newWorld(t)
	server := w.site("server", WithInvalidation())
	mobile := w.site("mobile")

	master := &note{Text: "v1"}
	if err := server.Bind("doc", master); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	replica, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := mobile.Heap().EntryOf(replica)

	// Master edits; the holder site is notified.
	master.Write("v2")
	if err := server.MarkUpdated(master); err != nil {
		t.Fatal(err)
	}
	if _, stale := mobile.StaleSet().IsStale(e.OID); !stale {
		t.Fatal("mobile should have been invalidated")
	}
	refreshed, err := mobile.RefreshStale()
	if err != nil || refreshed != 1 {
		t.Fatalf("refresh stale: %d %v", refreshed, err)
	}
	if replica.Text != "v2" {
		t.Fatalf("replica after refresh: %q", replica.Text)
	}
	if _, stale := mobile.StaleSet().IsStale(e.OID); stale {
		t.Fatal("staleness must clear after refresh")
	}
}

func TestInvalidationSurvivesOfflineHolder(t *testing.T) {
	w := newWorld(t)
	server := w.site("server", WithInvalidation())
	mobile := w.site("mobile")

	master := &note{Text: "v1"}
	if err := server.Bind("doc", master); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Resolve(); err != nil {
		t.Fatal(err)
	}

	w.net.PartitionHost("mobile")
	master.Write("v2")
	if err := server.MarkUpdated(master); err != nil {
		t.Fatal(err) // best-effort delivery: no error even though mobile is off
	}
	w.net.HealHost("mobile")

	// The holder stayed registered; the next update reaches it.
	master.Write("v3")
	if err := server.MarkUpdated(master); err != nil {
		t.Fatal(err)
	}
	replica, _ := objmodel.Deref[*note](ref)
	e, _ := mobile.Heap().EntryOf(replica)
	if _, stale := mobile.StaleSet().IsStale(e.OID); !stale {
		t.Fatal("reconnected holder should be invalidated by the next update")
	}
}

func TestFirstWriterWinsConflict(t *testing.T) {
	w := newWorld(t)
	server := w.site("server", WithPolicy(consistency.FirstWriterWins{}))
	alice := w.site("alice")
	bob := w.site("bob")

	master := &note{Text: "v1"}
	if err := server.Bind("doc", master); err != nil {
		t.Fatal(err)
	}
	refA, err := alice.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	refB, err := bob.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	a, err := objmodel.Deref[*note](refA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := objmodel.Deref[*note](refB)
	if err != nil {
		t.Fatal(err)
	}

	a.Write("alice's edit")
	if err := alice.Put(a); err != nil {
		t.Fatal(err)
	}
	b.Write("bob's edit")
	err = bob.Put(b)
	var re *rmi.RemoteError
	if !errors.As(err, &re) || !re.IsApp() {
		t.Fatalf("bob's stale put: %v", err)
	}
	if master.Text != "alice's edit" {
		t.Fatalf("master: %q", master.Text)
	}
	// Bob refreshes and retries: now it goes through.
	if err := bob.Refresh(b); err != nil {
		t.Fatal(err)
	}
	if b.Text != "alice's edit" {
		t.Fatalf("bob after refresh: %q", b.Text)
	}
	b.Write("bob's second try")
	if err := bob.Put(b); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if master.Text != "bob's second try" {
		t.Fatalf("master: %q", master.Text)
	}
}

func TestLeaseExpiry(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	mobile := w.site("mobile", WithLease(50*time.Millisecond))

	master := &note{Text: "v1"}
	if err := server.Bind("doc", master); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	replica, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}
	if got := mobile.LeaseExpired(); len(got) != 0 {
		t.Fatalf("fresh replica expired: %v", got)
	}
	master.Write("v2")
	time.Sleep(70 * time.Millisecond)
	if got := mobile.LeaseExpired(); len(got) != 1 {
		t.Fatalf("expired: %v", got)
	}
	n, err := mobile.RefreshExpired()
	if err != nil || n != 1 {
		t.Fatalf("refresh expired: %d %v", n, err)
	}
	if replica.Text != "v2" {
		t.Fatalf("after lease refresh: %q", replica.Text)
	}
	if got := mobile.LeaseExpired(); len(got) != 0 {
		t.Fatal("refresh must renew the lease")
	}
}

func TestAutoModeCrossesOverWithQoS(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	mobile := w.site("mobile")

	master := &note{Text: "x"}
	if err := server.Bind("doc", master); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	ref.SetMode(objmodel.ModeAuto)

	// First call: advisor has calls=1 < FetchFactor=2 → RMI, no replica.
	if _, err := ref.Invoke("Read"); err != nil {
		t.Fatal(err)
	}
	if ref.IsResolved() {
		t.Fatal("crossed over too early")
	}
	// Second call: crossover hits, the object faults in.
	if _, err := ref.Invoke("Read"); err != nil {
		t.Fatal(err)
	}
	if !ref.IsResolved() {
		t.Fatal("second call should have replicated")
	}
}

func TestAutoModeGoesLocalWhenLinkDies(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	mobile := w.site("mobile")

	master := &note{Text: "x"}
	if err := server.Bind("doc", master); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	ref.SetMode(objmodel.ModeAuto)

	// Break the link and record a failure so the monitor learns about it:
	// an auto ref must then try the local path (fault), which also fails —
	// but after reconnection the first invocation replicates immediately
	// instead of going back to RMI.
	w.net.Disconnect("mobile", "server")
	if _, err := ref.Invoke("Read"); err == nil {
		t.Fatal("invoke across dead link must fail")
	}
	w.net.Reconnect("mobile", "server")
	if _, err := ref.Invoke("Read"); err != nil {
		t.Fatal(err)
	}
	if !ref.IsResolved() {
		t.Fatal("unhealthy link history should force replication")
	}
}

func TestSyncDirtyClusters(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	mobile := w.site("mobile")

	// Build a chain and bind the head.
	notes := make([]*note, 4)
	for i := range notes {
		notes[i] = &note{Text: fmt.Sprintf("n%d", i)}
		if err := server.Register(notes[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		r, err := server.NewRef(notes[i+1])
		if err != nil {
			t.Fatal(err)
		}
		notes[i].Next = r
	}
	if err := server.Bind("chain", notes[0]); err != nil {
		t.Fatal(err)
	}

	ref, err := mobile.LookupSpec("chain",
		replication.GetSpec{Mode: Incremental(), Batch: 4, Clustered: true})
	if err != nil {
		t.Fatal(err)
	}
	head, err := objmodel.Deref[*note](ref)
	if err != nil {
		t.Fatal(err)
	}
	second, err := objmodel.Deref[*note](head.Next)
	if err != nil {
		t.Fatal(err)
	}
	head.Write("h2")
	second.Write("s2")
	if err := mobile.MarkUpdated(head); err != nil {
		t.Fatal(err)
	}
	if err := mobile.MarkUpdated(second); err != nil {
		t.Fatal(err)
	}
	n, err := mobile.SyncDirty()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 { // one cluster put covers both dirty members
		t.Fatalf("synced %d units, want 1 cluster", n)
	}
	if notes[0].Text != "h2" || notes[1].Text != "s2" {
		t.Fatalf("masters: %q %q", notes[0].Text, notes[1].Text)
	}
}

// Incremental returns replication.Incremental; a helper so the test above
// reads naturally.
func Incremental() replication.Mode { return replication.Incremental }

func TestSiteIDHashStable(t *testing.T) {
	if hashSiteID("mobile") != hashSiteID("mobile") {
		t.Fatal("hash must be deterministic")
	}
	if hashSiteID("a") == 0 {
		t.Fatal("site id must be non-zero")
	}
}

func TestRegisterAndExportWithoutNames(t *testing.T) {
	net := transport.NewMemNetwork(netsim.Loopback)
	a, err := New("a", net)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New("b", net)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	n := &note{Text: "direct"}
	d, err := a.Export(n)
	if err != nil {
		t.Fatal(err)
	}
	ref := b.Engine().RefFromDescriptor(d, replication.DefaultSpec)
	res, err := ref.Invoke("Read")
	if err != nil || res[0] != "direct" {
		t.Fatalf("direct descriptor exchange: %v %v", res, err)
	}
}

func TestSiteCheckpointRestartRebind(t *testing.T) {
	// The full restart story: checkpoint, kill the site, bring a new
	// incarnation up at the same address with the same site id, restore,
	// re-bind, and have an old client re-lookup and continue.
	w := newWorld(t)
	server := w.site("server", WithSiteID(11))
	n := &note{Text: "durable"}
	if err := server.Bind("doc", n); err != nil {
		t.Fatal(err)
	}
	e, _ := server.Heap().EntryOf(n)
	headOID := e.OID

	var ckpt bytes.Buffer
	if err := server.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	_ = server.Close()

	server2, err := New("server", w.net, WithNameServer("ns"), WithSiteID(11))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server2.Close() })
	restored, err := server2.Restore(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := server2.Bind("doc", restored[headOID]); err != nil {
		t.Fatal(err)
	}

	mobile := w.site("mobile")
	ref, err := mobile.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ref.Invoke("Read")
	if err != nil || res[0] != "durable" {
		t.Fatalf("after restart: %v %v", res, err)
	}
}
