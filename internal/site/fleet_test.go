package site

import (
	"fmt"
	"strings"
	"testing"

	"obiwan/internal/admin"
	"obiwan/internal/fleet"
	"obiwan/internal/nameserver"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// addrs converts site names to transport addresses for WithFleet.
func addrs(names ...string) []transport.Addr {
	out := make([]transport.Addr, len(names))
	for i, n := range names {
		out[i] = transport.Addr(n)
	}
	return out
}

// fleetWorld builds the canonical observatory deployment: a server and a
// mobile doing real replication, plus a hub site running the collector
// over all three.
func fleetWorld(t *testing.T, hubOpts ...fleet.Option) (w *world, hub, server, mobile *Site) {
	t.Helper()
	w = newWorld(t)
	server = w.site("server")
	mobile = w.site("mobile")
	hub = w.site("hub", WithFleet(addrs("server", "mobile", "hub"), hubOpts...))

	master := &note{Text: "fleet"}
	if err := server.Register(master); err != nil {
		t.Fatal(err)
	}
	d, err := server.Export(master)
	if err != nil {
		t.Fatal(err)
	}
	ref := mobile.Engine().RefFromDescriptor(d, replication.DefaultSpec)
	if _, err := objmodel.Deref[*note](ref); err != nil {
		t.Fatal(err)
	}
	return w, hub, server, mobile
}

// TestFleetCollectorFederates: one scrape folds every roster site into
// the aggregate — merged counters are the per-site sums, the breakdown
// stays visible, and the hub scrapes itself over RMI like any peer.
func TestFleetCollectorFederates(t *testing.T) {
	_, hub, _, _ := fleetWorld(t)
	col := hub.Fleet()
	if col == nil {
		t.Fatal("hub built WithFleet has no collector")
	}
	snap := col.ScrapeOnce()
	if len(snap.Sites) != 3 {
		t.Fatalf("scraped %d sites, want 3: %+v", len(snap.Sites), snap.Sites)
	}
	for i, want := range []string{"hub", "mobile", "server"} {
		if snap.Sites[i].Site != want {
			t.Fatalf("site %d = %q, want %q (sorted order)", i, snap.Sites[i].Site, want)
		}
		if snap.Sites[i].Err != "" {
			t.Fatalf("site %q scrape error: %s", want, snap.Sites[i].Err)
		}
	}
	var sum uint64
	for _, obs := range snap.Sites {
		sum += obs.Metrics.Get("rmi.calls")
	}
	if sum == 0 {
		t.Fatal("no rmi.calls recorded anywhere despite replication traffic")
	}
	if got := snap.Metrics.Get("rmi.calls"); got != sum {
		t.Fatalf("merged rmi.calls = %d, want per-site sum %d", got, sum)
	}
	if snap.Profile == nil || len(snap.Profile.Objects) == 0 {
		t.Fatalf("aggregate profile empty: %+v", snap.Profile)
	}
}

// TestFleetUnreachablePeerDegrades: a dead roster entry is reported as a
// scrape error on its own row; the rest of the fleet still aggregates.
func TestFleetUnreachablePeerDegrades(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	hub := w.site("hub", WithFleet(addrs("server", "ghost")))
	if err := server.Register(&note{Text: "x"}); err != nil {
		t.Fatal(err)
	}
	hub.Fleet().ScrapeOnce() // first scrape: server now served one RMI
	snap := hub.Fleet().ScrapeOnce()
	byName := map[string]string{}
	for _, obs := range snap.Sites {
		byName[obs.Site] = obs.Err
	}
	if byName["server"] != "" {
		t.Fatalf("live peer errored: %s", byName["server"])
	}
	if byName["ghost"] == "" {
		t.Fatal("dead peer reported no scrape error")
	}
	if snap.Metrics.Get("rmi.calls.served") == 0 {
		t.Fatal("live peers no longer aggregated")
	}
}

// TestFleetEndpointsOverRMI: any site can ask the hub for the federated
// view and the watchdog backlog through the well-known admin export —
// the transport path `obiwan-admin fleet top` / `fleet alerts` uses.
func TestFleetEndpointsOverRMI(t *testing.T) {
	// Threshold 0 on the RMI latency p99 makes every site with any
	// traffic an offender, so the watchdog deterministically fires.
	_, _, _, mobile := fleetWorld(t, fleet.WithRules([]fleet.Rule{
		{Name: "any-latency", Kind: fleet.RuleP99, Metric: "rmi.call.latency_ns", FleetWide: true},
	}))
	client := admin.NewClient(mobile.Runtime(), AdminRef("hub"))
	snap, err := client.Fleet(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Sites) != 3 || snap.Scrapes == 0 {
		t.Fatalf("fleet over RMI: %d sites, %d scrapes", len(snap.Sites), snap.Scrapes)
	}
	chunk, err := client.FleetAlerts()
	if err != nil {
		t.Fatal(err)
	}
	if len(chunk.Alerts) == 0 {
		t.Fatal("zero-threshold p99 rule fired no alerts")
	}
	seen := map[string]bool{}
	for _, a := range chunk.Alerts {
		if a.Rule != "any-latency" {
			t.Fatalf("unexpected rule: %+v", a)
		}
		seen[a.Site] = true
	}
	if !seen["fleet"] {
		t.Fatalf("fleet-wide evaluation missing: %+v", chunk.Alerts)
	}

	// A site with no collector answers the same endpoints with ErrNoFleet
	// travelling as a remote fault, not a hang or a panic.
	plainClient := admin.NewClient(mobile.Runtime(), AdminRef("server"))
	if _, err := plainClient.Fleet(false); err == nil ||
		!strings.Contains(err.Error(), "no fleet collector") {
		t.Fatalf("collector-less site: %v", err)
	}
}

// TestFleetAlertsReachFlightRecorder: an SLO breach lands in the hub's
// own flight recorder next to the protocol events that caused it.
func TestFleetAlertsReachFlightRecorder(t *testing.T) {
	_, hub, _, _ := fleetWorld(t, fleet.WithRules([]fleet.Rule{
		{Name: "any-latency", Kind: fleet.RuleP99, Metric: "rmi.call.latency_ns"},
	}))
	hub.Fleet().ScrapeOnce()
	events := hub.Telemetry().Flight().Snapshot()
	found := false
	for _, ev := range events {
		if ev.Kind == "slo.any-latency" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no slo.any-latency flight event in %d events", len(events))
	}
}

// TestFleetScrapeCursorResumes: the scrape endpoint is cursor-based —
// a second scrape resumes after the spans the first one consumed
// instead of replaying them.
func TestFleetScrapeCursorResumes(t *testing.T) {
	_, _, server, mobile := fleetWorld(t)
	client := admin.NewClient(mobile.Runtime(), AdminRef("server"))
	first, err := client.Scrape(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.Site != "server" || first.Metrics == nil {
		t.Fatalf("first chunk: %+v", first)
	}
	again, err := client.Scrape(first.NextCursor, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Spans) != 0 {
		t.Fatalf("cursor-resumed scrape replayed %d spans", len(again.Spans))
	}
	// New traffic produces new spans past the held cursor.
	master := &note{Text: "more"}
	if err := server.Register(master); err != nil {
		t.Fatal(err)
	}
	d, err := server.Export(master)
	if err != nil {
		t.Fatal(err)
	}
	ref := mobile.Engine().RefFromDescriptor(d, replication.DefaultSpec)
	if _, err := objmodel.Deref[*note](ref); err != nil {
		t.Fatal(err)
	}
	third, err := client.Scrape(again.NextCursor, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(third.Spans) == 0 {
		t.Fatal("fresh traffic produced no spans past the cursor")
	}
}

// TestFleetDisabledAllocParity pins the zero-overhead claim for sites
// that run no collector: the invoke path allocates identically whether
// or not some other site in the deployment observes the fleet, and a
// plain site carries no fleet machinery at all.
func TestFleetDisabledAllocParity(t *testing.T) {
	measure := func(observed bool) float64 {
		w := newWorld(t)
		suffix := fmt.Sprintf("-%v-%p", observed, t)
		server := w.site("server" + suffix)
		mobile := w.site("mobile" + suffix)
		if observed {
			w.site("hub"+suffix, WithFleet(addrs("server"+suffix, "mobile"+suffix)))
		}
		master := &note{Text: "v"}
		if err := server.Register(master); err != nil {
			t.Fatal(err)
		}
		d, err := server.Export(master)
		if err != nil {
			t.Fatal(err)
		}
		ref := mobile.Engine().RefFromDescriptor(d, replication.DefaultSpec)
		replica, err := objmodel.Deref[*note](ref)
		if err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(50, func() {
			replica.Write("x")
			if _, err := ref.Invoke("Read"); err != nil {
				t.Fatal(err)
			}
		})
	}
	plain := measure(false)
	observed := measure(true)
	if plain != observed {
		t.Fatalf("invoke path allocs drifted under observation: %v vs %v", plain, observed)
	}
	w := newWorld(t)
	s := w.site("alloc-plain")
	if s.fleet != nil {
		t.Fatal("plain site carries a fleet collector")
	}
}

// benchFleetWorld is newWorld for benchmarks: a nameserver, a server and
// mobile pair, and (when observed) a hub site collecting over both.
func benchFleetWorld(b *testing.B, observed bool) (server, mobile *Site) {
	b.Helper()
	net := transport.NewMemNetwork(netsim.Loopback)
	nsrt, err := rmi.NewRuntime(net, "ns")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = nsrt.Close() })
	if _, _, err := nameserver.Serve(nsrt); err != nil {
		b.Fatal(err)
	}
	mk := func(name string, opts ...Option) *Site {
		opts = append([]Option{WithNameServer("ns")}, opts...)
		s, err := New(name, net, opts...)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = s.Close() })
		return s
	}
	server = mk("server")
	mobile = mk("mobile")
	if observed {
		mk("hub", WithFleet(addrs("server", "mobile")))
	}
	return server, mobile
}

// BenchmarkCallFleet compares the site invoke path with no collector in
// the deployment against the same path while a hub scrapes the fleet —
// the observability tax must be confined to the hub.
func BenchmarkCallFleet(b *testing.B) {
	bench := func(b *testing.B, observed bool) {
		server, mobile := benchFleetWorld(b, observed)
		master := &note{Text: "v"}
		if err := server.Register(master); err != nil {
			b.Fatal(err)
		}
		d, err := server.Export(master)
		if err != nil {
			b.Fatal(err)
		}
		ref := mobile.Engine().RefFromDescriptor(d, replication.DefaultSpec)
		if _, err := objmodel.Deref[*note](ref); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ref.Invoke("Read"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("plain", func(b *testing.B) { bench(b, false) })
	b.Run("observed", func(b *testing.B) { bench(b, true) })
}

// TestFleetAlertBacklogOverflow: the watchdog backlog is bounded — when
// more alerts fire than it retains, the oldest fall off the front, the
// eviction is counted (never silent), the count travels over the admin
// endpoint, and the rendered table says the record is incomplete.
func TestFleetAlertBacklogOverflow(t *testing.T) {
	// Threshold 0 on a fleet-wide p99 rule fires one alert per site with
	// traffic plus one for the merged view on every scrape.
	_, hub, _, mobile := fleetWorld(t, fleet.WithRules([]fleet.Rule{
		{Name: "any-latency", Kind: fleet.RuleP99, Metric: "rmi.call.latency_ns", FleetWide: true},
	}))
	col := hub.Fleet()
	var alerts []telemetry.Alert
	var dropped uint64
	for i := 0; i < 120; i++ {
		col.ScrapeOnce()
		if alerts, dropped = col.FleetAlerts(); dropped > 0 {
			break
		}
	}
	if dropped == 0 {
		t.Fatal("backlog never overflowed after 120 alert-firing scrapes")
	}
	if len(alerts) != 256 {
		t.Fatalf("backlog holds %d alerts, want the 256 cap", len(alerts))
	}
	// The eviction surfaces as a counter on the hub's own telemetry, so
	// the overflow is itself observable (and scrape-able) fleet state.
	if got := hub.Telemetry().MetricsSnapshot().Get("fleet.alerts.dropped"); got != dropped {
		t.Fatalf("fleet.alerts.dropped counter = %d, want %d", got, dropped)
	}
	// Over the admin endpoint: the chunk carries the dropped count, and
	// the rendered table warns that the window is incomplete.
	chunk, err := admin.NewClient(mobile.Runtime(), AdminRef("hub")).FleetAlerts()
	if err != nil {
		t.Fatal(err)
	}
	if chunk.Dropped != dropped || len(chunk.Alerts) != len(alerts) {
		t.Fatalf("alert chunk dropped=%d alerts=%d, want %d/%d",
			chunk.Dropped, len(chunk.Alerts), dropped, len(alerts))
	}
	out := telemetry.FormatAlerts(chunk.Alerts, chunk.Dropped)
	if !strings.Contains(out, fmt.Sprintf("fleet.alerts.dropped=%d", dropped)) {
		t.Fatalf("rendered alerts hide the eviction:\n%s", out)
	}
}

// TestFleetSlowAndAttributionOverRMI: the tail-exemplar pipeline works
// end to end over the real wire — per-site slow traces resolve spans, the
// fleet ranking folds every site's exemplars, and the aggregated
// attribution profile extracts critical paths from the scraped spans.
func TestFleetSlowAndAttributionOverRMI(t *testing.T) {
	_, hub, _, mobile := fleetWorld(t)
	hub.Fleet().ScrapeOnce()

	// Per-site: the mobile recorded latency exemplars for its traced
	// demand faults; its admin Slow endpoint resolves them locally.
	slow, err := admin.NewClient(mobile.Runtime(), AdminRef("mobile")).Slow(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(slow.Traces) == 0 {
		t.Fatal("mobile recorded no slow traces despite traced demand faults")
	}
	st := slow.Traces[0]
	if st.Site != "mobile" || st.ValueNS <= 0 || len(st.Spans) == 0 {
		t.Fatalf("slow trace: %+v", st)
	}
	if cp := st.Path(); len(cp.Steps) == 0 {
		t.Fatalf("slow trace yields empty critical path: %+v", st)
	}
	if st.Format() != st.Format() {
		t.Fatal("slow trace renders differ between calls")
	}

	// Fleet-wide: the hub ranks exemplars across all scraped sites and
	// resolves spans from its buffer — spans that crossed sites included.
	fleetSlow, err := admin.NewClient(mobile.Runtime(), AdminRef("hub")).FleetSlow(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleetSlow.Traces) == 0 {
		t.Fatal("fleet slow is empty after a scrape")
	}
	for i := 1; i < len(fleetSlow.Traces); i++ {
		if fleetSlow.Traces[i].ValueNS > fleetSlow.Traces[i-1].ValueNS {
			t.Fatalf("fleet slow not value-descending: %+v", fleetSlow.Traces)
		}
	}

	// Aggregated attribution: at least the demand paths land, and the
	// profile renders deterministically.
	prof, err := admin.NewClient(mobile.Runtime(), AdminRef("hub")).FleetAttribution()
	if err != nil {
		t.Fatal(err)
	}
	if prof.Paths == 0 {
		t.Fatalf("attribution profile extracted no paths: %+v", prof)
	}
	if len(prof.PhaseNames()) == 0 {
		t.Fatal("attribution profile has no phases")
	}
	if prof.Format() != prof.Format() {
		t.Fatal("attribution renders differ between calls")
	}
}
