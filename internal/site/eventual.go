package site

import (
	"errors"
	"fmt"

	"obiwan/internal/eventual"
	"obiwan/internal/rmi"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
	"obiwan/internal/txn"
)

// AntiEntropyIface is the symbolic interface name of a site's
// anti-entropy service.
const AntiEntropyIface = "obiwan.AntiEntropy"

// antiEntropyID is the well-known object id of the anti-entropy service.
// Exported only on sites built WithEventual, at a fixed id so peers can
// address it without discovery (ids 1–3 are the sinks and admin, 4 the
// consensus endpoint of grouped sites).
const antiEntropyID rmi.ObjID = 5

// ErrNoEventual is returned by weakly-connected operations on sites built
// without WithEventual.
var ErrNoEventual = errors.New("site: eventual consistency not enabled (use WithEventual)")

// WithEventual enables weakly-connected replication: the site carries an
// update log (eventual.Store), exports the anti-entropy service at a
// well-known id, guards log-managed objects against raw state puts with
// a consistency.Tentative policy, and — on durable sites — journals every
// log mutation through the WAL so tentative updates survive crashes.
// Objects opt in per object with Site.Track (or Store.Track).
func WithEventual() Option { return func(o *options) { o.eventual = true } }

// antiEntropySink serves anti-entropy sessions over RMI.
type antiEntropySink struct {
	store *eventual.Store
}

// Summary returns this site's version vector and commit frontiers.
func (k *antiEntropySink) Summary() *eventual.Summary {
	return k.store.Summary()
}

// Exchange applies the caller's batch and returns the callee's.
func (k *antiEntropySink) Exchange(req *eventual.SyncRequest) (*eventual.SyncReply, error) {
	return k.store.HandleSync(req)
}

// Eventual returns the site's weakly-connected store, or nil when not
// enabled.
func (s *Site) Eventual() *eventual.Store { return s.eventual }

// Track enrolls obj in the site's update log (see eventual.Store.Track).
func (s *Site) Track(obj any) error {
	if s.eventual == nil {
		return ErrNoEventual
	}
	return s.eventual.Track(obj)
}

// Apply appends a local update — registered function fn with args against
// obj — to the update log: applied tentatively at once, committed by the
// object's primary, exchanged by anti-entropy. Works fully disconnected.
func (s *Site) Apply(obj any, fn string, args []byte) (eventual.UpdateID, error) {
	if s.eventual == nil {
		return eventual.UpdateID{}, ErrNoEventual
	}
	return s.eventual.Append(obj, fn, args)
}

// antiEntropyRef builds the reference to peer's anti-entropy service.
func antiEntropyRef(peer string) rmi.RemoteRef {
	return rmi.RemoteRef{Addr: transport.Addr(peer), ID: antiEntropyID, Iface: AntiEntropyIface}
}

// AntiEntropy runs one pairwise anti-entropy session with peer (a site
// name/address, which must also be built WithEventual): exchange version
// vectors, ship the updates and commit records each side is missing, and
// record the peer's commit frontiers for log truncation. The calls ride
// the runtime's retry/dedupe, so a session interrupted by the network can
// simply be run again. Returns what this side absorbed.
// The whole session runs under one root span ("eventual.sync"), with
// the Summary and Exchange calls traced beneath it, so sync rounds show
// up in cross-site trace trees alongside demand and put spans.
func (s *Site) AntiEntropy(peer string) (*eventual.SyncStats, error) {
	ev := s.eventual
	if ev == nil {
		return nil, ErrNoEventual
	}
	span := s.tel.StartRoot("eventual.sync")
	span.Annotate("peer", peer)
	stats, err := s.antiEntropySession(span.Context(), peer, ev)
	if err != nil {
		span.SetErr(err)
	} else if stats != nil {
		span.Annotate("updates", fmt.Sprint(stats.Updates))
		span.Annotate("commits", fmt.Sprint(stats.Commits))
		span.Annotate("bases", fmt.Sprint(stats.Bases))
		span.Annotate("skipped", fmt.Sprint(stats.Skipped))
	}
	span.End()
	return stats, err
}

// antiEntropySession is the session body, run under sc's trace context.
func (s *Site) antiEntropySession(sc telemetry.SpanContext, peer string, ev *eventual.Store) (*eventual.SyncStats, error) {
	ref := antiEntropyRef(peer)
	out, err := s.rt.CallTraced(sc, ref, "Summary")
	if err != nil {
		return nil, fmt.Errorf("site: anti-entropy with %s: %w", peer, err)
	}
	peerSum, ok := out[0].(*eventual.Summary)
	if !ok || peerSum == nil {
		return nil, fmt.Errorf("site: anti-entropy with %s: bad summary reply", peer)
	}
	req := &eventual.SyncRequest{
		From:    s.name,
		Summary: *ev.Summary(),
		Batch:   *ev.BuildBatch(peerSum),
	}
	out, err = s.rt.CallTraced(sc, ref, "Exchange", req)
	if err != nil {
		return nil, fmt.Errorf("site: anti-entropy with %s: %w", peer, err)
	}
	reply, ok := out[0].(*eventual.SyncReply)
	if !ok || reply == nil {
		return nil, fmt.Errorf("site: anti-entropy with %s: bad exchange reply", peer)
	}
	stats, err := ev.ApplyBatch(reply.From, &reply.Batch)
	if err != nil {
		return stats, err
	}
	ev.RecordPeerFrontiers(peer, reply.Frontiers)
	return stats, nil
}

// TruncateLog drops committed update records already acknowledged by
// every peer this site has synced with (see
// eventual.Store.TruncateCommitted).
func (s *Site) TruncateLog() (int, error) {
	if s.eventual == nil {
		return 0, ErrNoEventual
	}
	return s.eventual.TruncateCommitted()
}

// TxnManager returns the site's transaction manager, creating it on first
// use: wired to the update log (Txn.Apply on tracked objects appends
// update functions), and on durable sites to the pending-commit journal —
// parked disconnected commits survive a crash and are re-adopted here.
func (s *Site) TxnManager() *txn.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.txnMgr != nil {
		return s.txnMgr
	}
	m := txn.NewManager(s.engine)
	if s.eventual != nil {
		m.SetEventual(s.eventual)
	}
	if s.durable != nil {
		m.SetPendingJournal(s.durable)
		for _, p := range s.durable.parkedSnapshot() {
			m.AdoptPending(p.id, p.oids)
		}
	}
	s.txnMgr = m
	return m
}
