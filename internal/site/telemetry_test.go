package site

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/telemetry"
)

// tickClock is a deterministic telemetry clock: every reading advances
// one millisecond from the epoch, so a replayed scenario stamps identical
// times.
func tickClock() func() time.Time {
	var mu sync.Mutex
	now := time.Unix(0, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(time.Millisecond)
		return now
	}
}

// treeShape is an expected span subtree: site/name plus ordered children.
type treeShape struct {
	site, name string
	kids       []treeShape
}

func assertShape(t *testing.T, n *telemetry.TraceNode, want treeShape, path string) {
	t.Helper()
	at := fmt.Sprintf("%s/%s", path, want.name)
	if n.Span.Site != want.site || n.Span.Name != want.name {
		t.Fatalf("%s: got span %s@%s", at, n.Span.Name, n.Span.Site)
	}
	if len(n.Children) != len(want.kids) {
		t.Fatalf("%s: %d children, want %d:\n%s", at, len(n.Children), len(want.kids), telemetry.FormatTree(n))
	}
	for i, k := range want.kids {
		assertShape(t, n.Children[i], k, at)
	}
}

// runFaultChainScenario drives the paper's fault chain across three
// sites: gamma faults doc-0 (mastered at alpha), whose payload leaves a
// frontier reference to doc-1 (mastered at beta); gamma then faults that
// too. Everything runs under one scenario root span. It returns the
// rooted trees built from all three sites' spans.
func runFaultChainScenario(t *testing.T) []*telemetry.TraceNode {
	t.Helper()
	w := newWorld(t)
	hubs := map[string]*telemetry.Hub{}
	mk := func(name string) *Site {
		hub := telemetry.NewHub(name, telemetry.WithClock(tickClock()))
		hubs[name] = hub
		return w.site(name, WithTelemetry(hub))
	}
	alpha, beta, gamma := mk("alpha"), mk("beta"), mk("gamma")

	doc1 := &note{Text: "doc-1"}
	d1, err := beta.Export(doc1)
	if err != nil {
		t.Fatal(err)
	}
	doc0 := &note{Text: "doc-0", Next: alpha.Engine().RefFromDescriptor(d1, replication.DefaultSpec)}
	d0, err := alpha.Export(doc0)
	if err != nil {
		t.Fatal(err)
	}

	spec := replication.GetSpec{Mode: replication.Incremental, Batch: 1}
	ref0 := gamma.Engine().RefFromDescriptor(d0, spec)
	root := hubs["gamma"].StartRoot("scenario")
	obj0, err := gamma.ReplicateTraced(root.Context(), ref0, spec)
	if err != nil {
		t.Fatal(err)
	}
	rep0, ok := obj0.(*note)
	if !ok {
		t.Fatalf("replicated %T", obj0)
	}
	if _, err := gamma.ReplicateTraced(root.Context(), rep0.Next, spec); err != nil {
		t.Fatal(err)
	}
	root.End()

	var all []telemetry.SpanRecord
	for _, h := range hubs {
		all = append(all, h.Spans(0)...)
	}
	return telemetry.BuildTrees(all)
}

func TestFaultChainSpansFormOneRootedTree(t *testing.T) {
	trees := runFaultChainScenario(t)
	if len(trees) != 1 {
		for _, tr := range trees {
			t.Log(telemetry.FormatTree(tr))
		}
		t.Fatalf("got %d rooted trees, want 1", len(trees))
	}
	demand := func(provider string) treeShape {
		return treeShape{site: "gamma", name: "fault", kids: []treeShape{
			{site: "gamma", name: "rmi:Get", kids: []treeShape{
				{site: provider, name: "serve:Get", kids: []treeShape{
					{site: provider, name: "assemble"},
				}},
			}},
			{site: "gamma", name: "materialize"},
		}}
	}
	assertShape(t, trees[0], treeShape{
		site: "gamma", name: "scenario",
		kids: []treeShape{demand("alpha"), demand("beta")},
	}, "")
}

func TestFaultChainTraceIsDeterministic(t *testing.T) {
	render := func(trees []*telemetry.TraceNode) string {
		var b strings.Builder
		for _, tr := range trees {
			b.WriteString(telemetry.FormatTree(tr))
		}
		return b.String()
	}
	first := render(runFaultChainScenario(t))
	second := render(runFaultChainScenario(t))
	if first != second {
		t.Fatalf("same-seed reruns diverge:\n--- first\n%s--- second\n%s", first, second)
	}
	// The rendering includes span/trace/parent ids and timestamps, so
	// equality above already proves stable ids; double-check it is not
	// trivially empty.
	if !strings.Contains(first, "scenario") || !strings.Contains(first, "assemble") {
		t.Fatalf("rendered trace incomplete:\n%s", first)
	}
}

func TestTraceSpansAcrossKillRestart(t *testing.T) {
	w := newWorld(t)
	dir := t.TempDir()
	hub1 := telemetry.NewHub("server", telemetry.WithClock(tickClock()))
	server := w.site("server", WithDurability(dir), WithTelemetry(hub1))
	mobileHub := telemetry.NewHub("mobile", telemetry.WithClock(tickClock()))
	mobile := w.site("mobile", WithTelemetry(mobileHub))

	master := &note{Text: "v1"}
	if err := server.Bind("doc", master); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("doc")
	if err != nil {
		t.Fatal(err)
	}

	root := mobileHub.StartRoot("session")
	obj, err := mobile.ReplicateTraced(root.Context(), ref, replication.DefaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	replica := obj.(*note)

	server.Kill()
	hub2 := telemetry.NewHub("server", telemetry.WithClock(tickClock()))
	reborn := w.site("server", WithDurability(dir), WithTelemetry(hub2))
	if reborn.Incarnation() != 2 {
		t.Fatalf("incarnation %d, want 2", reborn.Incarnation())
	}

	// Refresh under the same trace: the demand lands on the reborn
	// incarnation, whose serve/assemble spans join the same rooted tree.
	if err := mobile.Engine().RefreshTraced(root.Context(), replica); err != nil {
		t.Fatal(err)
	}
	root.End()

	// Collect from the live hubs only: the first incarnation's span ring
	// died with it (and a reborn site reuses its id space, exactly like a
	// real redeploy), so the pre-kill serve spans are simply absent — the
	// client-side spans still chain, and the tree stays single-rooted.
	spans := append(mobileHub.Spans(0), hub2.Spans(0)...)
	trees := telemetry.BuildTrees(spans)
	if len(trees) != 1 {
		for _, tr := range trees {
			t.Log(telemetry.FormatTree(tr))
		}
		t.Fatalf("got %d rooted trees, want 1", len(trees))
	}
	assertShape(t, trees[0], treeShape{
		site: "mobile", name: "session",
		kids: []treeShape{
			{site: "mobile", name: "fault", kids: []treeShape{
				{site: "mobile", name: "rmi:Get"}, // incarnation 1 serve spans died with it
				{site: "mobile", name: "materialize"},
			}},
			{site: "mobile", name: "refresh", kids: []treeShape{
				{site: "mobile", name: "rmi:Get", kids: []treeShape{
					{site: "server", name: "serve:Get", kids: []treeShape{
						{site: "server", name: "assemble"},
					}},
				}},
				{site: "mobile", name: "materialize"},
			}},
		},
	}, "")

	// Same logical trace spans both incarnations.
	for _, sp := range hub2.Spans(0) {
		if sp.TraceID != root.Context().TraceID {
			t.Fatalf("reborn span outside the session trace: %+v", sp)
		}
	}
	if replica.Text != "v1" {
		t.Fatalf("refreshed replica text %q", replica.Text)
	}
}

func TestSiteWithoutTelemetry(t *testing.T) {
	w := newWorld(t)
	server := w.site("server", WithoutTelemetry())
	mobile := w.site("mobile", WithoutTelemetry())
	if server.Telemetry() != nil {
		t.Fatal("WithoutTelemetry must leave the hub nil")
	}

	n := &note{Text: "hello"}
	if err := server.Bind("n", n); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("n")
	if err != nil {
		t.Fatal(err)
	}
	// Traced entry points still work — spans just collapse to no-ops.
	if _, err := mobile.ReplicateTraced(telemetry.SpanContext{}, ref, replication.DefaultSpec); err != nil {
		t.Fatal(err)
	}
	if _, err := objmodel.Deref[*note](ref); err != nil {
		t.Fatal(err)
	}
	// The admin surface answers with empty snapshots rather than erroring.
	snap, err := mobile.InspectMetrics(server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters) != 0 || snap.Site != "" {
		t.Fatalf("disabled site produced a snapshot: %+v", snap)
	}
}

func TestSiteMetricsOverAdmin(t *testing.T) {
	w := newWorld(t)
	server := w.site("server")
	mobile := w.site("mobile")

	n := &note{Text: "hello"}
	if err := server.Bind("n", n); err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.Lookup("n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mobile.Replicate(ref, replication.DefaultSpec); err != nil {
		t.Fatal(err)
	}

	snap, err := mobile.InspectMetrics(server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Site != "server" {
		t.Fatalf("snapshot site %q", snap.Site)
	}
	if snap.Get("repl.payloads.assembled") == 0 {
		t.Fatalf("server snapshot missing assembly counter: %s", snap.Format())
	}
	if snap.Get("rmi.calls.served") == 0 {
		t.Fatal("server snapshot missing serve counter")
	}

	// The demand rooted a trace of its own (implicit faults are causal
	// origins); the dump is visible over the admin surface too.
	dump, err := mobile.InspectTraces(server.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Spans) == 0 {
		t.Fatal("server trace dump empty")
	}
}
