package chaos

import (
	"errors"
	"fmt"
	"testing"

	"obiwan/internal/admin"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/site"
	"obiwan/internal/telemetry"
)

// TestWatchSurvivesPartitionWithoutDuplicates: a telemetry watcher polls
// a site across a link partition. Chunks fail during the outage, the
// cursor stays put, and after reconnection the stream resumes with every
// span delivered exactly once — the reconnect-safety contract of the
// cursor protocol.
func TestWatchSurvivesPartitionWithoutDuplicates(t *testing.T) {
	w := NewWorld(17)
	defer w.Close()
	master, err := w.NewSite("master")
	if err != nil {
		t.Fatal(err)
	}
	client, err := w.NewSite("client")
	if err != nil {
		t.Fatal(err)
	}
	watcher := admin.NewClient(client.Runtime(), site.AdminRef("master"))

	seen := map[uint64]string{} // span id → name, to prove exactly-once
	deliver := func(chunk *admin.WatchChunk) error {
		for _, s := range chunk.Spans {
			if prev, dup := seen[s.SpanID]; dup {
				return fmt.Errorf("span %x (%s) delivered twice (first as %s)", s.SpanID, s.Name, prev)
			}
			seen[s.SpanID] = s.Name
		}
		return nil
	}

	master.Telemetry().StartRoot("before-outage").End()
	var cursor uint64
	err = Within(watchdog, func() error {
		chunk, err := watcher.Watch(cursor, 0)
		if err != nil {
			return err
		}
		if len(chunk.Spans) != 1 || chunk.Spans[0].Name != "before-outage" {
			return fmt.Errorf("first chunk: %+v", chunk.Spans)
		}
		cursor = chunk.NextCursor
		return deliver(chunk)
	})
	if err != nil {
		t.Fatal(err)
	}

	// Partition. The poll fails; crucially the cursor does not advance.
	w.Net.Disconnect("client", "master")
	master.Telemetry().StartRoot("during-outage").End()
	err = Within(watchdog, func() error {
		_, err := watcher.Watch(cursor, 0)
		return err
	})
	if err == nil {
		t.Fatal("watch across a partition must fail")
	}

	// Heal and resume from the same cursor: the span finished during the
	// outage arrives now, once; nothing is re-delivered.
	w.Net.Reconnect("client", "master")
	master.Telemetry().StartRoot("after-outage").End()
	err = Within(watchdog, func() error {
		chunk, err := watcher.Watch(cursor, 0)
		if err != nil {
			return err
		}
		if len(chunk.Spans) != 2 {
			return fmt.Errorf("resumed chunk: %+v", chunk.Spans)
		}
		if chunk.Spans[0].Name != "during-outage" || chunk.Spans[1].Name != "after-outage" {
			return fmt.Errorf("resumed order: %+v", chunk.Spans)
		}
		if chunk.Missed != 0 {
			return fmt.Errorf("missed=%d across a short outage", chunk.Missed)
		}
		cursor = chunk.NextCursor
		return deliver(chunk)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("delivered %d unique spans, want 3: %v", len(seen), seen)
	}
}

// TestFlightDumpCapturesStrandedDemand: the master dies mid-session; the
// client's next demand exhausts its retries into ErrUnavailable, and the
// automatically stored flight dump carries the stranded demand's causal
// trail — its retry events and the terminal unavailable event, tied to
// the failing fault span's trace.
func TestFlightDumpCapturesStrandedDemand(t *testing.T) {
	w := NewWorld(23)
	defer w.Close()
	master, err := w.NewSite("master")
	if err != nil {
		t.Fatal(err)
	}
	client, err := w.NewSite("client")
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := BuildChain(master, "doc", 2)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := master.Export(nodes[0])
	if err != nil {
		t.Fatal(err)
	}

	// A healthy demand first, so the recorder holds normal protocol
	// events around the failure.
	ref := client.Engine().RefFromDescriptor(desc, spec1())
	root, err := objmodel.Deref[*Node](ref)
	if err != nil {
		t.Fatal(err)
	}

	w.Kill(master)

	// The follow-on demand strands: retries exhaust into ErrUnavailable.
	session := client.Telemetry().StartRoot("session")
	err = Within(watchdog, func() error {
		_, derr := client.ReplicateTraced(session.Context(), root.Kids[0], spec1())
		return derr
	})
	session.End()
	if !errors.Is(err, replication.ErrUnavailable) {
		t.Fatalf("stranded demand: want ErrUnavailable, got %v", err)
	}

	dump, ok := client.Telemetry().Flight().LastDump()
	if !ok {
		t.Fatal("no flight dump after ErrUnavailable exhaustion")
	}
	if dump.Reason != "unavailable: demand" {
		t.Fatalf("dump reason %q", dump.Reason)
	}

	var unavailable *telemetry.FlightEvent
	retries := 0
	for i := range dump.Events {
		e := &dump.Events[i]
		switch e.Kind {
		case "repl.unavailable":
			unavailable = e
		case "rmi.retry":
			if e.TraceID == session.Context().TraceID {
				retries++
			}
		}
	}
	if unavailable == nil {
		t.Fatalf("dump lacks the terminal unavailable event:\n%s", dump.Format())
	}
	if unavailable.TraceID != session.Context().TraceID {
		t.Fatalf("unavailable event outside the session trace: %+v", unavailable)
	}
	if unavailable.SpanID == 0 || !dump.Contains(unavailable.SpanID) {
		t.Fatalf("dump does not carry the failing call's span id: %+v", unavailable)
	}
	if retries == 0 {
		t.Fatalf("dump lacks the stranded demand's retry events:\n%s", dump.Format())
	}
	// The failing span id resolves to the demand's fault span in the
	// client's own tracer — dump and trace tell one story.
	found := false
	for _, sp := range client.Telemetry().Spans(0) {
		if sp.SpanID == unavailable.SpanID {
			found = true
			if sp.Name != "fault" || sp.Err == "" {
				t.Fatalf("failing span: %+v", sp)
			}
		}
	}
	if !found {
		t.Fatal("failing span id not present in the client's trace ring")
	}
	// The healthy demand's protocol events are in the same dump: the
	// recorder preserves context before the failure, not just the failure.
	if !hasKind(dump, "repl.fault-resolved") {
		t.Fatalf("dump lacks pre-failure protocol events:\n%s", dump.Format())
	}
}

func hasKind(d *telemetry.FlightDump, kind string) bool {
	for _, e := range d.Events {
		if e.Kind == kind {
			return true
		}
	}
	return false
}
