package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"obiwan/internal/eventual"
	"obiwan/internal/objmodel"
	"obiwan/internal/rmi"
	"obiwan/internal/site"
	"obiwan/internal/transport"
)

func addr(name string) transport.Addr { return transport.Addr(name) }

// Weakly-connected chaos: a fleet of sites edits one shared object while
// fully partitioned from each other, then reconciles by pairwise
// anti-entropy sessions run in seeded random order. The contract:
//
//   - the fleet converges — every site ends with a byte-identical
//     committed state, the same commit frontier, and zero tentative
//     updates — regardless of the (seeded) edit and session order;
//   - the whole history is deterministic: the same seed replays the same
//     edits, the same session order, the same rollback count, and the
//     same number of sessions to convergence;
//   - a durable site hard-killed mid-reconciliation loses nothing: its
//     reborn incarnation recovers the exact committed frontier and
//     journaled tentative suffix, and the fleet still converges.

func init() {
	// The chaos suite's update function: appends one edit token to the
	// node's label, so the converged label spells out the commit order.
	eventual.MustRegisterUpdate("chaostest.edit", func(obj any, args []byte) error {
		n := obj.(*Node)
		n.Label += string(args) + "|"
		return nil
	})
}

// swarmResult is everything observable about one weakly-connected run,
// in a form the caller can compare across reruns of the same seed.
type swarmResult struct {
	frontier  uint64
	label     string
	sessions  int
	rollbacks uint64
}

func (r swarmResult) summary() string {
	return fmt.Sprintf("frontier=%d sessions=%d rollbacks=%d label=%q",
		r.frontier, r.sessions, r.rollbacks, r.label)
}

// disconnectAll severs every link between the named sites (the name
// server stays reachable; edits are local and need no network at all).
func disconnectAll(w *World, names []string) {
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			w.Net.Disconnect(addr(names[i]), addr(names[j]))
		}
	}
}

func reconnectAll(w *World, names []string) {
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			w.Net.Reconnect(addr(names[i]), addr(names[j]))
		}
	}
}

// swarmConverged reports whether every site holds the same committed
// prefix at frontier want with nothing tentative left.
func swarmConverged(sites []*site.Site, oid objmodel.OID, want uint64) (bool, error) {
	var ref []byte
	for i, s := range sites {
		ev := s.Eventual()
		if ev.TentativeCount(oid) != 0 {
			return false, nil
		}
		state, csn, err := ev.CommittedState(oid)
		if err != nil {
			return false, err
		}
		if csn != want {
			return false, nil
		}
		if i == 0 {
			ref = state
		} else if !bytes.Equal(ref, state) {
			return false, fmt.Errorf("sites %s and %s agree on frontier %d but their committed bytes differ",
				sites[0].Name(), s.Name(), csn)
		}
	}
	return true, nil
}

// runWeaklyConnectedSwarm is the acceptance scenario: nSites sites track
// one object, edit it for editWindow while fully partitioned, reconcile
// by seeded random pairwise anti-entropy, and (when crash is set) survive
// a hard kill of the durable site partway through reconciliation.
func runWeaklyConnectedSwarm(t *testing.T, mode clockMode, seed int64, crash bool, dir string) swarmResult {
	t.Helper()
	const nSites = 5
	const edits = 24
	// 60 simulated seconds of disconnected editing. Free on the virtual
	// timeline; compressed under the real clock so the smoke layer stays
	// inside the watchdog.
	editWindow := 60 * time.Second
	if !mode.virtual {
		editWindow = 60 * time.Millisecond
	}

	w := mode.newWorld(seed)
	defer w.Close()

	var nsrt *rmi.Runtime
	var res swarmResult
	err := w.Within(watchdog, func() error {
		var err error
		if nsrt, err = serveNames(w); err != nil {
			return err
		}
		names := make([]string, nSites)
		sites := make([]*site.Site, nSites)
		for i := range sites {
			names[i] = fmt.Sprintf("e%d", i+1)
			if crash && i == 2 {
				sites[i], err = w.NewDurableSite(names[i], dir, site.WithEventual(), site.WithNameServer("ns"))
			} else {
				sites[i], err = w.NewSite(names[i], site.WithEventual(), site.WithNameServer("ns"))
			}
			if err != nil {
				return err
			}
		}

		// Site e1 is the object's primary; everyone tracks the replica
		// from the same (pristine) state before any edit happens.
		master := &Node{}
		if err := sites[0].Bind("doc", master); err != nil {
			return err
		}
		if err := sites[0].Track(master); err != nil {
			return err
		}
		oid := sites[0].Eventual().Tracked()[0]
		replicas := make([]*Node, nSites)
		replicas[0] = master
		for i := 1; i < nSites; i++ {
			ref, err := sites[i].Lookup("doc")
			if err != nil {
				return err
			}
			if replicas[i], err = objmodel.Deref[*Node](ref); err != nil {
				return err
			}
			if err := sites[i].Track(replicas[i]); err != nil {
				return err
			}
		}

		// Partition the fleet completely and keep editing: every update is
		// appended tentatively to the local log, no site can reach another.
		disconnectAll(w, names)
		rng := rand.New(rand.NewSource(seed))
		gap := editWindow / time.Duration(edits)
		for e := 0; e < edits; e++ {
			i := rng.Intn(nSites)
			token := fmt.Sprintf("e%02d@%s", e, names[i])
			if _, err := sites[i].Apply(replicas[i], "chaostest.edit", []byte(token)); err != nil {
				return fmt.Errorf("disconnected edit %d at %s: %w", e, names[i], err)
			}
			w.Clock.Sleep(gap)
		}
		// Only the primary's own edits are committed; everything else is
		// tentative on its author.
		tentative := 0
		for _, s := range sites {
			tentative += s.Eventual().TentativeCount(oid)
		}
		_, committed, err := sites[0].Eventual().CommittedState(oid)
		if err != nil {
			return err
		}
		if int(committed)+tentative != edits {
			return fmt.Errorf("partitioned fleet holds %d committed + %d tentative, want %d edits",
				committed, tentative, edits)
		}

		// Reconcile: pairwise anti-entropy between seeded random pairs
		// until every site holds the identical committed prefix.
		reconnectAll(w, names)
		session := func() error {
			a := rng.Intn(nSites)
			b := rng.Intn(nSites - 1)
			if b >= a {
				b++
			}
			if _, err := sites[a].AntiEntropy(names[b]); err != nil {
				return fmt.Errorf("session %d (%s->%s): %w", res.sessions, names[a], names[b], err)
			}
			res.sessions++
			return nil
		}

		if crash {
			// A few sessions in, hard-kill the durable site and restart it
			// from its WAL: the reborn incarnation must hold the exact
			// committed frontier and tentative suffix of the dead one.
			for k := 0; k < 3; k++ {
				if err := session(); err != nil {
					return err
				}
			}
			ev := sites[2].Eventual()
			preState, preCSN, err := ev.CommittedState(oid)
			if err != nil {
				return err
			}
			preTent := ev.TentativeCount(oid)
			w.Kill(sites[2])
			if sites[2], err = w.NewDurableSite(names[2], dir, site.WithEventual(), site.WithNameServer("ns")); err != nil {
				return fmt.Errorf("rebirth of %s: %w", names[2], err)
			}
			ev = sites[2].Eventual()
			postState, postCSN, err := ev.CommittedState(oid)
			if err != nil {
				return fmt.Errorf("rebirth of %s: committed state: %w", names[2], err)
			}
			if postCSN != preCSN || !bytes.Equal(postState, preState) {
				return fmt.Errorf("crash lost committed updates: frontier %d -> %d", preCSN, postCSN)
			}
			if got := ev.TentativeCount(oid); got != preTent {
				return fmt.Errorf("crash lost journaled tentative updates: %d -> %d", preTent, got)
			}
			entry, ok := sites[2].Heap().Get(oid)
			if !ok {
				return fmt.Errorf("rebirth of %s: tracked replica not recovered", names[2])
			}
			replicas[2] = entry.Obj.(*Node)
		}

		const maxSessions = 120
		for {
			done, err := swarmConverged(sites, oid, uint64(edits))
			if err != nil {
				return err
			}
			if done {
				break
			}
			if res.sessions >= maxSessions {
				return fmt.Errorf("no convergence after %d sessions", res.sessions)
			}
			if err := session(); err != nil {
				return err
			}
		}

		// Converged: committed bytes are identical everywhere, and with
		// nothing tentative the in-memory labels agree too.
		for _, r := range replicas[1:] {
			if r.Label != master.Label {
				return fmt.Errorf("labels diverged after convergence: %q vs %q", master.Label, r.Label)
			}
		}
		if _, res.frontier, err = sites[0].Eventual().CommittedState(oid); err != nil {
			return err
		}
		res.label = master.Label
		for _, s := range sites {
			res.rollbacks += s.Eventual().Stats().Rollbacks
		}
		return nil
	})
	if nsrt != nil {
		t.Cleanup(func() { _ = nsrt.Close() })
	}
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return res
}

// TestWeaklyConnectedSwarmConvergence: five fully partitioned sites edit
// one object for 60 simulated seconds, reconcile by seeded random
// pairwise anti-entropy, and end byte-identical — and the entire run
// (edits, session order, rollbacks, sessions-to-convergence) replays
// identically from the same seed.
func TestWeaklyConnectedSwarmConvergence(t *testing.T) {
	forEachClock(t, func(t *testing.T, mode clockMode) {
		for _, seed := range []int64{7, 42} {
			first := runWeaklyConnectedSwarm(t, mode, seed, false, "")
			second := runWeaklyConnectedSwarm(t, mode, seed, false, "")
			if first != second {
				t.Fatalf("seed %d not deterministic:\n  run1: %s\n  run2: %s",
					seed, first.summary(), second.summary())
			}
			if first.frontier != 24 {
				t.Fatalf("seed %d: converged frontier %d, want 24", seed, first.frontier)
			}
			t.Logf("convergence-report seed=%d clock=%s %s", seed, mode.name, first.summary())
		}
	})
}

// TestWeaklyConnectedSwarmCrashMidSync: same fleet, but the durable site
// is hard-killed partway through reconciliation and reborn from its WAL.
// No committed or journaled-tentative update is lost, the fleet still
// converges, and the whole history is still seed-deterministic.
func TestWeaklyConnectedSwarmCrashMidSync(t *testing.T) {
	forEachClock(t, func(t *testing.T, mode clockMode) {
		const seed = 11
		first := runWeaklyConnectedSwarm(t, mode, seed, true, t.TempDir())
		second := runWeaklyConnectedSwarm(t, mode, seed, true, t.TempDir())
		if first != second {
			t.Fatalf("crash run not deterministic:\n  run1: %s\n  run2: %s",
				first.summary(), second.summary())
		}
		if first.frontier != 24 {
			t.Fatalf("converged frontier %d, want 24", first.frontier)
		}
		t.Logf("convergence-report seed=%d clock=%s crash=midsync %s", seed, mode.name, first.summary())
	})
}
