package chaos

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/site"
)

// watchdog bounds every scenario in wall-clock time: anything slower than
// this is a hang. Virtual-clock scenarios finish orders of magnitude
// sooner; the budget exists for the day they deadlock instead.
const watchdog = 30 * time.Second

// clockMode selects the time source a scenario runs on. Every scenario in
// this suite runs under both: the virtual mode is the fast deterministic
// layer, the real mode is the slow smoke layer (skipped under -short) that
// proves the same code paths hold when delays are actually slept.
type clockMode struct {
	name    string
	virtual bool
}

func clockModes() []clockMode {
	return []clockMode{{"virtual", true}, {"real", false}}
}

// forEachClock runs a scenario under both clock implementations as
// subtests.
func forEachClock(t *testing.T, run func(t *testing.T, mode clockMode)) {
	for _, mode := range clockModes() {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			if !mode.virtual && testing.Short() {
				t.Skip("real-clock smoke layer: skipped in -short mode")
			}
			run(t, mode)
		})
	}
}

func (m clockMode) newWorld(seed int64) *World {
	if m.virtual {
		return NewWorldClock(seed, netsim.NewVirtualClock())
	}
	return NewWorld(seed)
}

func spec1() replication.GetSpec {
	return replication.GetSpec{Mode: replication.Incremental, Batch: 1}
}

// runDisconnectDemandReconnect is the acceptance scenario: a client walks
// a chain incrementally while the uplink goes down mid-walk, reconnects a
// few sends later, and drops one more frame for good measure. It returns
// the world's event trace and the client's retry count so the caller can
// assert determinism across runs.
func runDisconnectDemandReconnect(t *testing.T, mode clockMode, seed int64) ([]string, uint64) {
	t.Helper()
	w := mode.newWorld(seed)
	defer w.Close()

	var retries uint64
	err := w.Within(watchdog, func() error {
		master, err := w.NewSite("master")
		if err != nil {
			return err
		}
		client, err := w.NewSite("client")
		if err != nil {
			return err
		}
		nodes, err := BuildChain(master, "doc", 6)
		if err != nil {
			return err
		}
		desc, err := master.Export(nodes[0])
		if err != nil {
			return err
		}
		// Send 1 on client→master is the connection preamble; the walk's Get
		// calls follow. The outage lands mid-walk and the drop after it.
		w.Schedule("client", "master", netsim.NewFaultSchedule(
			netsim.FaultEvent{AtSend: 3, Action: netsim.ActDisconnect},
			netsim.FaultEvent{AtSend: 6, Action: netsim.ActReconnect},
			netsim.FaultEvent{AtSend: 9, Action: netsim.ActDrop},
		))
		ref := client.Engine().RefFromDescriptor(desc, spec1())

		root, err := objmodel.Deref[*Node](ref)
		if err != nil {
			return err
		}
		n, err := WalkAll(root, 50)
		if err != nil {
			return err
		}
		if n != 6 {
			return fmt.Errorf("walk reached %d nodes, want 6", n)
		}
		if got := client.Heap().Len(); got != 6 {
			return fmt.Errorf("client heap %d, want 6", got)
		}
		retries = client.Runtime().Stats().Retries
		if retries == 0 {
			return errors.New("the outage must have been crossed by retries")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return w.Trace(), retries
}

// TestDisconnectDemandReconnectDeterministic: the scripted
// disconnect→demand→reconnect scenario succeeds, and running it twice
// with the same seed produces the identical failure trace and the
// identical retry count — same seed ⇒ same event history.
func TestDisconnectDemandReconnectDeterministic(t *testing.T) {
	forEachClock(t, func(t *testing.T, mode clockMode) {
		trace1, retries1 := runDisconnectDemandReconnect(t, mode, 42)
		trace2, retries2 := runDisconnectDemandReconnect(t, mode, 42)
		if len(trace1) == 0 {
			t.Fatal("scenario fired no fault events")
		}
		if !reflect.DeepEqual(trace1, trace2) {
			t.Fatalf("traces diverge:\nrun1: %v\nrun2: %v", trace1, trace2)
		}
		if retries1 != retries2 {
			t.Fatalf("retry counts diverge: %d vs %d", retries1, retries2)
		}
	})
}

// TestRetriedCallsExecuteExactlyOnce: replies are lost on the wire, the
// client re-sends, and the server-side counter proves no retried call
// executed twice — every Bump(1) is observed exactly once, in order.
func TestRetriedCallsExecuteExactlyOnce(t *testing.T) {
	forEachClock(t, func(t *testing.T, mode clockMode) {
		w := mode.newWorld(7)
		defer w.Close()
		counter := &Counter{}
		var master, client *site.Site
		err := w.Within(watchdog, func() error {
			var err error
			if master, err = w.NewSite("master"); err != nil {
				return err
			}
			// Lost replies are only recovered by re-sending, so the client
			// needs a per-try budget.
			p := DefaultRetry()
			p.PerTryTimeout = 40 * time.Millisecond
			if client, err = w.NewSite("client", site.WithRetry(p)); err != nil {
				return err
			}
			ref, err := master.Runtime().Export(counter, "chaos.Counter")
			if err != nil {
				return err
			}
			// The master→client link carries only replies here: lose the
			// replies to the 2nd and 4th logical calls (the dedupe replays
			// shift later send numbers by one each).
			w.Schedule("master", "client", netsim.NewFaultSchedule(
				netsim.FaultEvent{AtSend: 2, Action: netsim.ActDrop},
				netsim.FaultEvent{AtSend: 4, Action: netsim.ActDrop},
			))

			const calls = 5
			for i := int64(1); i <= calls; i++ {
				res, err := client.Runtime().Call(ref, "Bump", int64(1))
				if err != nil {
					return fmt.Errorf("call %d: %w", i, err)
				}
				if res[0] != i {
					return fmt.Errorf("call %d observed count %v: a duplicate executed", i, res[0])
				}
			}
			if got := counter.Value(); got != calls {
				return fmt.Errorf("counter %d, want %d (exactly-once)", got, calls)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ss := master.Runtime().Stats()
		if ss.DupsSuppressed != 2 {
			t.Fatalf("duplicates suppressed = %d, want 2", ss.DupsSuppressed)
		}
		if cs := client.Runtime().Stats(); cs.Retries != 2 {
			t.Fatalf("client retries = %d, want 2", cs.Retries)
		}
	})
}

// countingPolicy counts ApplyPut acceptances at the master. Atomic: the
// hook runs in the server's dispatch goroutine, the test reads it after.
type countingPolicy struct {
	applies atomic.Int64
}

func (p *countingPolicy) ApplyPut(objmodel.OID, uint64, uint64) error {
	p.applies.Add(1)
	return nil
}
func (p *countingPolicy) ReplicaCreated(objmodel.OID, string, uint64) {}
func (p *countingPolicy) MasterUpdated(objmodel.OID, uint64)          {}

// TestPutAppliesOnceUnderReplyLoss: a put whose reply is lost is re-sent
// and must not be applied twice — the master's consistency policy sees
// exactly one ApplyPut and the master version advances exactly once.
func TestPutAppliesOnceUnderReplyLoss(t *testing.T) {
	forEachClock(t, func(t *testing.T, mode clockMode) {
		w := mode.newWorld(11)
		defer w.Close()
		policy := &countingPolicy{}
		var client *site.Site
		err := w.Within(watchdog, func() error {
			master, err := w.NewSite("master", site.WithPolicy(policy))
			if err != nil {
				return err
			}
			p := DefaultRetry()
			p.PerTryTimeout = 40 * time.Millisecond
			if client, err = w.NewSite("client", site.WithRetry(p)); err != nil {
				return err
			}
			nodes, err := BuildChain(master, "doc", 2)
			if err != nil {
				return err
			}
			desc, err := master.Export(nodes[0])
			if err != nil {
				return err
			}
			ref := client.Engine().RefFromDescriptor(desc, spec1())
			replica, err := objmodel.Deref[*Node](ref)
			if err != nil {
				return err
			}

			// The schedule counts from attachment, so the next master→client
			// send — the put's reply — is send 1. Lose it; the re-sent put
			// must be suppressed, not re-applied.
			w.Schedule("master", "client", netsim.NewFaultSchedule(
				netsim.FaultEvent{AtSend: 1, Action: netsim.ActDrop},
			))
			replica.Data = []byte("edited")
			if err := client.MarkUpdated(replica); err != nil {
				return err
			}
			if err := client.Put(replica); err != nil {
				return fmt.Errorf("put with lost reply: %w", err)
			}
			if got := policy.applies.Load(); got != 1 {
				return fmt.Errorf("master applied the put %d times, want exactly 1", got)
			}
			if string(nodes[0].Data) != "edited" {
				return fmt.Errorf("master data %q after put", nodes[0].Data)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if cs := client.Runtime().Stats(); cs.Retries != 1 {
			t.Fatalf("client retries = %d, want 1", cs.Retries)
		}
	})
}

// TestPersistentPartitionFailsTypedThenHeals: with the link down for good,
// a demand neither hangs nor returns an untyped error — it fails with
// replication.ErrUnavailable once the retry policy is exhausted. After the
// partition heals the same demand succeeds.
func TestPersistentPartitionFailsTypedThenHeals(t *testing.T) {
	forEachClock(t, func(t *testing.T, mode clockMode) {
		w := mode.newWorld(3)
		defer w.Close()
		err := w.Within(watchdog, func() error {
			master, err := w.NewSite("master")
			if err != nil {
				return err
			}
			client, err := w.NewSite("client")
			if err != nil {
				return err
			}
			nodes, err := BuildChain(master, "doc", 3)
			if err != nil {
				return err
			}
			desc, err := master.Export(nodes[0])
			if err != nil {
				return err
			}
			ref := client.Engine().RefFromDescriptor(desc, spec1())
			head, err := objmodel.Deref[*Node](ref) // replicate the head while up
			if err != nil {
				return err
			}

			w.Net.Disconnect("client", "master")
			if _, err := objmodel.Deref[*Node](head.Kids[0]); !errors.Is(err, replication.ErrUnavailable) {
				return fmt.Errorf("demand against partition: want ErrUnavailable, got %v", err)
			}

			w.Net.Reconnect("client", "master")
			kid, err := objmodel.Deref[*Node](head.Kids[0])
			if err != nil {
				return fmt.Errorf("demand after heal: %w", err)
			}
			if kid.Label != "doc-1" {
				return fmt.Errorf("demanded %q, want doc-1", kid.Label)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// graphShape describes one scenario topology.
type graphShape struct {
	name  string
	count int
	build func(s *site.Site) (*Node, error)
}

func shapes() []graphShape {
	return []graphShape{
		{"chain", 8, func(s *site.Site) (*Node, error) {
			nodes, err := BuildChain(s, "c", 8)
			if err != nil {
				return nil, err
			}
			return nodes[0], nil
		}},
		{"tree", 7, func(s *site.Site) (*Node, error) {
			root, n, err := BuildTree(s, "t", 3, 2)
			if err != nil {
				return nil, err
			}
			if n != 7 {
				return nil, fmt.Errorf("tree has %d nodes, want 7", n)
			}
			return root, nil
		}},
		{"diamond", 4, func(s *site.Site) (*Node, error) {
			nodes, err := BuildDiamond(s, "d")
			if err != nil {
				return nil, err
			}
			return nodes[0], nil
		}},
	}
}

// runShape walks one graph shape under a random (but seeded) fault
// schedule and returns the fired-event trace.
func runShape(t *testing.T, mode clockMode, sh graphShape, seed int64) []string {
	t.Helper()
	w := mode.newWorld(seed)
	defer w.Close()
	err := w.Within(watchdog, func() error {
		master, err := w.NewSite("master")
		if err != nil {
			return err
		}
		client, err := w.NewSite("client")
		if err != nil {
			return err
		}
		root, err := sh.build(master)
		if err != nil {
			return err
		}
		desc, err := master.Export(root)
		if err != nil {
			return err
		}
		w.Schedule("client", "master", netsim.RandomSchedule(seed, 30, 2, 3, 3))
		ref := client.Engine().RefFromDescriptor(desc, spec1())

		rootReplica, err := derefWithRetry(ref, 50)
		if err != nil {
			return err
		}
		n, err := WalkAll(rootReplica, 50)
		if err != nil {
			return err
		}
		if n != sh.count {
			return fmt.Errorf("walk reached %d nodes, want %d", n, sh.count)
		}
		if got := client.Heap().Len(); got != sh.count {
			return fmt.Errorf("heap %d, want %d (identity dedupe)", got, sh.count)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%s/seed%d: %v", sh.name, seed, err)
	}
	return w.Trace()
}

// derefWithRetry resolves ref, retrying typed unavailability (each
// rejected attempt advances the schedule toward its scripted reconnect).
func derefWithRetry(ref *objmodel.Ref, maxRounds int) (*Node, error) {
	var lastErr error
	for round := 0; round <= maxRounds; round++ {
		n, err := objmodel.Deref[*Node](ref)
		if err == nil {
			return n, nil
		}
		if !errors.Is(err, replication.ErrUnavailable) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("deref did not converge: %w", lastErr)
}

// TestGraphShapesUnderRandomSchedules: every shape × seed combination
// completes its walk under a seeded random outage/drop schedule (the
// "%s replication over %s graph" matrix), and replaying a combination
// yields the identical fault trace.
func TestGraphShapesUnderRandomSchedules(t *testing.T) {
	forEachClock(t, func(t *testing.T, mode clockMode) {
		for _, sh := range shapes() {
			for _, seed := range []int64{1, 2, 5} {
				sh, seed := sh, seed
				t.Run(fmt.Sprintf("%s/seed%d", sh.name, seed), func(t *testing.T) {
					trace1 := runShape(t, mode, sh, seed)
					trace2 := runShape(t, mode, sh, seed)
					if !reflect.DeepEqual(trace1, trace2) {
						t.Fatalf("traces diverge:\nrun1: %v\nrun2: %v", trace1, trace2)
					}
				})
			}
		}
	})
}

// TestSyncDirtyAfterOutage: the full mobile session — replicate, edit
// offline behind a partition, fail typed, reconnect, SyncDirty — the
// paper's §2.2 walkthrough under the chaos harness.
func TestSyncDirtyAfterOutage(t *testing.T) {
	forEachClock(t, func(t *testing.T, mode clockMode) {
		w := mode.newWorld(19)
		defer w.Close()
		err := w.Within(watchdog, func() error {
			master, err := w.NewSite("master")
			if err != nil {
				return err
			}
			client, err := w.NewSite("client")
			if err != nil {
				return err
			}
			nodes, err := BuildChain(master, "doc", 3)
			if err != nil {
				return err
			}
			desc, err := master.Export(nodes[0])
			if err != nil {
				return err
			}
			ref := client.Engine().RefFromDescriptor(desc, replication.GetSpec{Mode: replication.Transitive})
			head, err := objmodel.Deref[*Node](ref)
			if err != nil {
				return err
			}

			w.Net.Disconnect("client", "master")
			// Offline edits keep working on the replicas.
			head.Data = []byte("offline edit")
			if err := client.MarkUpdated(head); err != nil {
				return err
			}
			// Syncing while down fails typed, and the dirty mark survives.
			if _, err := client.SyncDirty(); !errors.Is(err, replication.ErrUnavailable) {
				return fmt.Errorf("sync while down: want ErrUnavailable, got %v", err)
			}
			if len(client.DirtyReplicas()) != 1 {
				return errors.New("failed sync must keep the replica dirty")
			}

			w.Net.Reconnect("client", "master")
			synced, err := client.SyncDirty()
			if err != nil || synced != 1 {
				return fmt.Errorf("sync after reconnect: synced=%d err=%v", synced, err)
			}
			if string(nodes[0].Data) != "offline edit" {
				return fmt.Errorf("master data %q after sync", nodes[0].Data)
			}
			if len(client.DirtyReplicas()) != 0 {
				return errors.New("synced replica must be clean")
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}
