package chaos

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/site"
	"obiwan/internal/transport"
)

// Master-group failover scenarios: the consensus-replicated counterpart to
// the kill/restart suite. A 3-site master group loses its leader
// PERMANENTLY — no rebirth, no WAL — and the contract asserted here:
//
//   - the surviving majority elects a new leader within a bounded window;
//   - a demand outstanding against the dead leader completes transparently
//     against the new one (the client only ever swapped addresses);
//   - a put retried verbatim across the failover hits the replicated
//     dedupe guard on the new leader and applies exactly once;
//   - followers answer with the typed not-leader redirect, and its hint
//     survives the RMI boundary;
//   - every surviving member converges to an identical master heap;
//   - under the virtual clock the whole story replays bit-identically
//     per seed, with -race.

// failoverBound is the acceptance window for electing a serving leader
// after a permanent kill. Generous against the 100ms election timeout used
// here: the real-clock layer runs under -race on loaded CI machines.
const failoverBound = 10 * time.Second

// groupCfg is the shared 3-member configuration. Every member must be
// built from an identical copy (same name, members, timing, seed).
func groupCfg(seed int64) site.GroupConfig {
	return site.GroupConfig{
		Name:            "grp",
		Members:         []transport.Addr{"g1", "g2", "g3"},
		ElectionTimeout: 100 * time.Millisecond,
		Seed:            seed,
	}
}

// newGroupSites brings up the full membership. Incarnations are pinned so
// reruns in one process stay byte-identical on the wire.
func newGroupSites(w *World, seed int64) ([]*site.Site, error) {
	cfg := groupCfg(seed)
	sites := make([]*site.Site, 0, len(cfg.Members))
	for _, m := range cfg.Members {
		s, err := w.NewSite(string(m),
			site.WithNameServer("ns"),
			site.WithIncarnation(1),
			site.WithMasterGroup(cfg))
		if err != nil {
			return nil, err
		}
		sites = append(sites, s)
	}
	return sites, nil
}

// awaitLeader polls the given members until one of them holds a live serve
// lease (local check, no RPC) and returns it. After a kill, pass only the
// survivors.
func awaitLeader(w *World, members []*site.Site, timeout time.Duration) (*site.Site, error) {
	deadline := w.Clock.Now().Add(timeout)
	for {
		for _, s := range members {
			if s.Group().CheckServe() == nil {
				return s, nil
			}
		}
		if !w.Clock.Now().Before(deadline) {
			return nil, fmt.Errorf("no serving leader among %d members within %v", len(members), timeout)
		}
		w.Clock.Sleep(5 * time.Millisecond)
	}
}

// without filters one site out of a membership slice.
func without(members []*site.Site, dead *site.Site) []*site.Site {
	var out []*site.Site
	for _, s := range members {
		if s != dead {
			out = append(out, s)
		}
	}
	return out
}

// heapLines renders a member's master heap as sorted "OID:label:vN" lines.
// The label is read under the entry's state lock: under the real clock a
// follower may be restoring a committed command into the same object
// concurrently.
func heapLines(s *site.Site) []string {
	var lines []string
	for _, en := range s.Heap().Entries() {
		en.LockState()
		label := en.Obj.(*Node).Label
		en.UnlockState()
		lines = append(lines, fmt.Sprintf("%v:%s:v%d", en.OID, label, en.Version()))
	}
	sort.Strings(lines)
	return lines
}

// awaitGroupSync polls until every member renders an identical master
// heap (followers apply committed commands one heartbeat behind the
// leader, so convergence is eventual but fast).
func awaitGroupSync(w *World, members []*site.Site, timeout time.Duration) error {
	deadline := w.Clock.Now().Add(timeout)
	for {
		want := heapLines(members[0])
		aligned := true
		for _, s := range members[1:] {
			if !reflect.DeepEqual(heapLines(s), want) {
				aligned = false
				break
			}
		}
		if aligned {
			return nil
		}
		if !w.Clock.Now().Before(deadline) {
			return fmt.Errorf("members did not converge within %v", timeout)
		}
		w.Clock.Sleep(5 * time.Millisecond)
	}
}

// runGroupLeaderKillMidDemand: a client walks a group-mastered chain
// incrementally; the leader is permanently killed mid-walk; the walk
// completes against the elected successor without the client doing
// anything but retry. Returns a deterministic summary for seed-replay
// comparison.
func runGroupLeaderKillMidDemand(t *testing.T, mode clockMode, seed int64) []string {
	t.Helper()
	w := mode.newWorld(seed)
	defer w.Close()

	var nsrt *rmi.Runtime
	var summary []string
	err := w.Within(watchdog, func() error {
		var err error
		if nsrt, err = serveNames(w); err != nil {
			return err
		}
		members, err := newGroupSites(w, seed)
		if err != nil {
			return err
		}
		leader, err := awaitLeader(w, members, failoverBound)
		if err != nil {
			return err
		}
		nodes, err := journalChain(leader, "doc", 6)
		if err != nil {
			return err
		}
		if err := leader.Bind("doc/head", nodes[0]); err != nil {
			return err
		}

		client, err := w.NewSite("client", site.WithNameServer("ns"), site.WithIncarnation(1))
		if err != nil {
			return err
		}
		ref, err := client.LookupSpec("doc/head", spec1())
		if err != nil {
			return err
		}
		// Partial walk: two nodes replicated, four still to demand.
		head, err := objmodel.Deref[*Node](ref)
		if err != nil {
			return err
		}
		if _, err := objmodel.Deref[*Node](head.Kids[0]); err != nil {
			return err
		}

		// Permanent loss: the leader is killed and never reborn. The
		// remaining walk crosses the election transparently.
		killedAt := w.Clock.Now()
		w.Kill(leader)
		survivors := without(members, leader)

		n, err := WalkAll(head, 50)
		if err != nil {
			return fmt.Errorf("walk across failover: %w", err)
		}
		if n != 6 {
			return fmt.Errorf("walk across failover reached %d nodes, want 6", n)
		}
		newLeader, err := awaitLeader(w, survivors, failoverBound)
		if err != nil {
			return err
		}
		elapsed := w.Clock.Now().Sub(killedAt)
		if elapsed > failoverBound {
			return fmt.Errorf("failover took %v, bound %v", elapsed, failoverBound)
		}

		// The write path works against the successor too: edit, sync, and
		// every survivor converges to the same master heap.
		head.Data = []byte("after-failover")
		if err := client.MarkUpdated(head); err != nil {
			return err
		}
		if synced, err := client.SyncDirty(); err != nil || synced != 1 {
			return fmt.Errorf("sync after failover: synced=%d err=%v", synced, err)
		}
		if err := awaitGroupSync(w, survivors, failoverBound); err != nil {
			return err
		}
		clientHead, _ := client.Heap().EntryOf(head)
		headEntry, ok := newLeader.Heap().Get(clientHead.OID)
		if !ok {
			return errors.New("new leader lost the head master")
		}
		headEntry.LockState()
		got := string(headEntry.Obj.(*Node).Data)
		headEntry.UnlockState()
		if got != "after-failover" {
			return fmt.Errorf("new leader head data %q after sync", got)
		}

		// The failover is on the flight recorder: the successor preserved
		// its own election.
		elected := false
		for _, ev := range newLeader.Telemetry().Flight().Snapshot() {
			if ev.Kind == "consensus.elected" {
				elected = true
			}
		}
		if !elected {
			return errors.New("no consensus.elected event on the new leader's flight recorder")
		}

		summary = []string{
			fmt.Sprintf("leader1=%s leader2=%s failover=%v", leader.Addr(), newLeader.Addr(), elapsed),
			fmt.Sprintf("heap leader=%d client=%d", newLeader.Heap().Len(), client.Heap().Len()),
		}
		summary = append(summary, heapLines(newLeader)...)
		return nil
	})
	if nsrt != nil {
		t.Cleanup(func() { _ = nsrt.Close() })
	}
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return summary
}

func TestGroupLeaderKillMidDemand(t *testing.T) {
	forEachClock(t, func(t *testing.T, mode clockMode) {
		run1 := runGroupLeaderKillMidDemand(t, mode, 61)
		if !mode.virtual {
			return // real-clock election order is timing-dependent
		}
		run2 := runGroupLeaderKillMidDemand(t, mode, 61)
		if !reflect.DeepEqual(run1, run2) {
			t.Fatalf("same-seed rerun diverged:\nrun1: %v\nrun2: %v", run1, run2)
		}
	})
}

// TestGroupLeaderKillMidSyncDirty: the exactly-once half. A client syncs
// one edit through the leader, the leader dies permanently, the next sync
// fails over transparently, and the FIRST put retried verbatim against the
// new leader is answered from the replicated dedupe guard — the recorded
// version, no second apply. Followers redirect with the typed hint.
func TestGroupLeaderKillMidSyncDirty(t *testing.T) {
	forEachClock(t, func(t *testing.T, mode clockMode) {
		w := mode.newWorld(67)
		defer w.Close()

		var nsrt *rmi.Runtime
		err := w.Within(watchdog, func() error {
			var err error
			if nsrt, err = serveNames(w); err != nil {
				return err
			}
			members, err := newGroupSites(w, 67)
			if err != nil {
				return err
			}
			leader, err := awaitLeader(w, members, failoverBound)
			if err != nil {
				return err
			}
			nodes, err := journalChain(leader, "doc", 2)
			if err != nil {
				return err
			}
			if err := leader.Bind("doc/head", nodes[0]); err != nil {
				return err
			}

			client, err := w.NewSite("client", site.WithNameServer("ns"), site.WithIncarnation(1))
			if err != nil {
				return err
			}
			ref, err := client.LookupSpec("doc/head", replication.GetSpec{Mode: replication.Transitive})
			if err != nil {
				return err
			}
			head, err := objmodel.Deref[*Node](ref)
			if err != nil {
				return err
			}
			second, err := objmodel.Deref[*Node](head.Kids[0])
			if err != nil {
				return err
			}

			// First edit, synced while the leader lives. Capture the exact
			// put a retry would re-send.
			head.Data = []byte("edit-1")
			if err := client.MarkUpdated(head); err != nil {
				return err
			}
			headEntry, _ := client.Heap().EntryOf(head)
			base := headEntry.Version()
			state, err := client.Engine().CaptureSnapshot(head)
			if err != nil {
				return err
			}
			dup := &replication.PutRequest{OID: uint64(headEntry.OID), BaseVersion: base, State: state}
			prov := headEntry.Provider()

			if synced, err := client.SyncDirty(); err != nil || synced != 1 {
				return fmt.Errorf("first sync: synced=%d err=%v", synced, err)
			}
			appliedVersion := headEntry.Version()

			// A follower refuses the same put with the typed redirect, hint
			// pointing at the leader, surviving the RMI boundary.
			follower := without(members, leader)[0]
			fprov := prov
			fprov.Addr = follower.Addr()
			if _, err := client.Runtime().CallTimeout(fprov, replication.BulkTimeout, "Put", dup); err == nil {
				return errors.New("follower accepted a put")
			} else {
				hint, ok := replication.NotLeaderHint(err)
				if !ok {
					return fmt.Errorf("follower put: want not-leader redirect, got %v", err)
				}
				if hint != leader.Addr() {
					return fmt.Errorf("follower redirect hint %q, want %q", hint, leader.Addr())
				}
			}

			// Second edit; the leader dies permanently before it syncs. The
			// sync itself crosses the failover — it succeeds against the
			// successor without the client noticing.
			second.Data = []byte("edit-2")
			if err := client.MarkUpdated(second); err != nil {
				return err
			}
			w.Kill(leader)
			survivors := without(members, leader)

			if synced, err := client.SyncDirty(); err != nil || synced != 1 {
				return fmt.Errorf("sync across failover: synced=%d err=%v", synced, err)
			}
			newLeader, err := awaitLeader(w, survivors, failoverBound)
			if err != nil {
				return err
			}

			// Retry the FIRST put verbatim against the new leader: the
			// dedupe guard is part of the agreed state, so the successor
			// answers the recorded version and does NOT re-apply.
			prov.Addr = newLeader.Addr()
			res, err := client.Runtime().CallTimeout(prov, replication.BulkTimeout, "Put", dup)
			if err != nil {
				return fmt.Errorf("retried put across failover: %w", err)
			}
			reply, ok := res[0].(*replication.PutReply)
			if !ok {
				return fmt.Errorf("unexpected put reply %T", res[0])
			}
			if reply.NewVersion != appliedVersion {
				return fmt.Errorf("retried put answered version %d, want recorded %d", reply.NewVersion, appliedVersion)
			}
			newHead, ok := newLeader.Heap().Get(headEntry.OID)
			if !ok {
				return errors.New("new leader lost the head master")
			}
			if newHead.Version() != appliedVersion {
				return fmt.Errorf("retried put bumped the new leader to %d: applied twice", newHead.Version())
			}
			newHead.LockState()
			headData := string(newHead.Obj.(*Node).Data)
			newHead.UnlockState()
			if headData != "edit-1" {
				return fmt.Errorf("new leader head data %q", headData)
			}

			// Both survivors converge to identical master heaps holding both
			// applied edits.
			if err := awaitGroupSync(w, survivors, failoverBound); err != nil {
				return err
			}
			secondEntry, _ := client.Heap().EntryOf(second)
			for _, s := range survivors {
				en, ok := s.Heap().Get(secondEntry.OID)
				if !ok {
					return fmt.Errorf("%s lost the second master", s.Name())
				}
				en.LockState()
				secondData := string(en.Obj.(*Node).Data)
				en.UnlockState()
				if secondData != "edit-2" {
					return fmt.Errorf("%s second node data %q", s.Name(), secondData)
				}
			}
			if len(client.DirtyReplicas()) != 0 {
				return errors.New("all edits must be clean after the failover sync")
			}
			return nil
		})
		if nsrt != nil {
			t.Cleanup(func() { _ = nsrt.Close() })
		}
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestGroupRebindAfterFailover: the naming half. The binding was published
// by the old leader; after the kill, the successor re-publishes it under
// its own address, and a fresh site resolves it without knowing the group
// existed.
func TestGroupRebindAfterFailover(t *testing.T) {
	forEachClock(t, func(t *testing.T, mode clockMode) {
		w := mode.newWorld(71)
		defer w.Close()

		var nsrt *rmi.Runtime
		err := w.Within(watchdog, func() error {
			var err error
			if nsrt, err = serveNames(w); err != nil {
				return err
			}
			members, err := newGroupSites(w, 71)
			if err != nil {
				return err
			}
			leader, err := awaitLeader(w, members, failoverBound)
			if err != nil {
				return err
			}
			nodes, err := journalChain(leader, "doc", 3)
			if err != nil {
				return err
			}
			if err := leader.Bind("doc/head", nodes[0]); err != nil {
				return err
			}

			w.Kill(leader)
			survivors := without(members, leader)
			newLeader, err := awaitLeader(w, survivors, failoverBound)
			if err != nil {
				return err
			}

			// The successor republishes asynchronously after winning; poll
			// until the binding points at a survivor.
			deadline := w.Clock.Now().Add(failoverBound)
			probe, err := w.NewSite("probe", site.WithNameServer("ns"), site.WithIncarnation(1))
			if err != nil {
				return err
			}
			for {
				ref, err := probe.LookupSpec("doc/head", replication.GetSpec{Mode: replication.Transitive})
				if err == nil {
					root, derr := objmodel.Deref[*Node](ref)
					if derr == nil {
						if n, werr := WalkAll(root, 50); werr == nil && n == 3 {
							break
						}
					}
				}
				if !w.Clock.Now().Before(deadline) {
					return fmt.Errorf("probe never resolved the republished binding: %v", err)
				}
				w.Clock.Sleep(20 * time.Millisecond)
			}
			_ = newLeader
			return nil
		})
		if nsrt != nil {
			t.Cleanup(func() { _ = nsrt.Close() })
		}
		if err != nil {
			t.Fatal(err)
		}
	})
}
