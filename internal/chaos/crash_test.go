package chaos

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"obiwan/internal/nameserver"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/site"
)

// Kill/restart scenarios: the chaos suite's process-crash counterpart to
// its link faults. A durable master site is hard-stopped mid-protocol and
// reborn from its WAL directory; the contract asserted here:
//
//   - demands outstanding against the dead site fail typed
//     (replication.ErrUnavailable), never hang;
//   - the reborn site recovers its masters, versions, and name bindings,
//     and re-exports proxy-ins at the ids remote replicas already hold;
//   - a put retried across the restart applies exactly once;
//   - offline edits journaled by a durable client before its own crash
//     reconcile via SyncDirty after rebirth.
//
// Like the link-fault suite, every scenario runs under both clocks; the
// scenario bodies run inside one tracked w.Within closure, and the
// standalone name-server runtime is closed via t.Cleanup — after the
// deferred w.Close has stopped a virtual clock, so the close never parks
// an untracked goroutine on it.

// serveNames starts a standalone name server at "ns" on the world's
// network and returns its runtime for the caller to close at cleanup.
func serveNames(w *World) (*rmi.Runtime, error) {
	nsrt, err := rmi.NewRuntime(w.Net, "ns")
	if err != nil {
		return nil, err
	}
	if _, _, err := nameserver.Serve(nsrt); err != nil {
		_ = nsrt.Close()
		return nil, err
	}
	return nsrt, nil
}

// journalChain builds a chain at s and marks every linked node updated so
// the reference wiring is journaled (durability makes mutations durable
// at Register/Export/MarkUpdated boundaries; NewRef wiring alone is not a
// journaled mutation).
func journalChain(s *site.Site, prefix string, n int) ([]*Node, error) {
	nodes, err := BuildChain(s, prefix, n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n-1; i++ {
		if err := s.MarkUpdated(nodes[i]); err != nil {
			return nil, err
		}
	}
	return nodes, nil
}

// runKillRestartMidDemand is the acceptance scenario: a client walks a
// durable master's chain incrementally, the master is killed mid-walk,
// the stranded demand fails typed, the master restarts from disk, the
// walk completes, and a fresh site resolves the re-registered binding.
// It returns a summary of everything observable, so the caller can assert
// a rerun from the same seed is deterministic.
func runKillRestartMidDemand(t *testing.T, mode clockMode, seed int64, dir string) []string {
	t.Helper()
	w := mode.newWorld(seed)
	defer w.Close()

	var nsrt *rmi.Runtime
	var summary []string
	err := w.Within(watchdog, func() error {
		var err error
		if nsrt, err = serveNames(w); err != nil {
			return err
		}
		master, err := w.NewDurableSite("master", dir, site.WithNameServer("ns"))
		if err != nil {
			return err
		}
		nodes, err := journalChain(master, "doc", 6)
		if err != nil {
			return err
		}
		if err := master.Bind("doc/head", nodes[0]); err != nil {
			return err
		}

		client, err := w.NewSite("client", site.WithNameServer("ns"))
		if err != nil {
			return err
		}
		ref, err := client.LookupSpec("doc/head", spec1())
		if err != nil {
			return err
		}
		// Partial walk: two nodes replicated, the rest still behind faults.
		head, err := objmodel.Deref[*Node](ref)
		if err != nil {
			return err
		}
		kid, err := objmodel.Deref[*Node](head.Kids[0])
		if err != nil {
			return err
		}

		w.Kill(master)

		// The outstanding demand fails typed (the enclosing watchdog rules
		// out a hang).
		if _, err := objmodel.Deref[*Node](kid.Kids[0]); !errors.Is(err, replication.ErrUnavailable) {
			return fmt.Errorf("stranded demand: want ErrUnavailable, got %v", err)
		}

		// Rebirth from disk. site.New replays the WAL, re-exports proxy-ins
		// at their recorded ids, and re-binds "doc/head" at the name server.
		reborn, err := w.NewDurableSite("master", dir, site.WithNameServer("ns"))
		if err != nil {
			return err
		}
		n, err := WalkAll(head, 50)
		if err != nil {
			return fmt.Errorf("walk after rebirth: %w", err)
		}
		if n != 6 {
			return fmt.Errorf("walk after rebirth reached %d nodes, want 6", n)
		}

		// A fresh site resolves the binding the reborn master re-registered.
		probe, err := w.NewSite("probe", site.WithNameServer("ns"))
		if err != nil {
			return err
		}
		pref, err := probe.LookupSpec("doc/head", replication.GetSpec{Mode: replication.Transitive})
		if err != nil {
			return fmt.Errorf("lookup after rebirth: %w", err)
		}
		proot, err := objmodel.Deref[*Node](pref)
		if err != nil {
			return err
		}
		pn, err := WalkAll(proot, 50)
		if err != nil || pn != 6 {
			return fmt.Errorf("probe walk: n=%d err=%v", pn, err)
		}

		// Deterministic summary: recovered identities, versions, and labels.
		// Entries() snapshots a map, so the per-entry lines are sorted.
		summary = []string{
			fmt.Sprintf("incarnation=%d", reborn.Incarnation()),
			fmt.Sprintf("heap=%d client=%d probe=%d",
				reborn.Heap().Len(), client.Heap().Len(), probe.Heap().Len()),
		}
		var entries []string
		for _, en := range reborn.Heap().Entries() {
			entries = append(entries,
				fmt.Sprintf("%v:%s:v%d", en.OID, en.Obj.(*Node).Label, en.Version()))
		}
		sort.Strings(entries)
		summary = append(summary, entries...)
		return nil
	})
	if nsrt != nil {
		t.Cleanup(func() { _ = nsrt.Close() })
	}
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return summary
}

func TestKillRestartMidDemand(t *testing.T) {
	forEachClock(t, func(t *testing.T, mode clockMode) {
		run1 := runKillRestartMidDemand(t, mode, 23, t.TempDir())
		run2 := runKillRestartMidDemand(t, mode, 23, t.TempDir())
		if !reflect.DeepEqual(run1, run2) {
			t.Fatalf("fresh-seed rerun diverged:\nrun1: %v\nrun2: %v", run1, run2)
		}
	})
}

// TestKillRestartMidSyncDirty: a client syncs offline edits while the
// master crashes partway through the session. The sync against the dead
// master fails typed, the reborn master still holds the already-applied
// edit at the right version, a put retried verbatim across the restart
// (the reborn rmi dedupe table is empty — only the journaled engine guard
// can stop it) applies exactly once, and the remaining dirty edit lands
// on the next SyncDirty.
func TestKillRestartMidSyncDirty(t *testing.T) {
	forEachClock(t, func(t *testing.T, mode clockMode) {
		w := mode.newWorld(31)
		defer w.Close()
		dir := t.TempDir()

		var nsrt *rmi.Runtime
		err := w.Within(watchdog, func() error {
			var err error
			if nsrt, err = serveNames(w); err != nil {
				return err
			}
			master, err := w.NewDurableSite("master", dir, site.WithNameServer("ns"))
			if err != nil {
				return err
			}
			nodes, err := journalChain(master, "doc", 2)
			if err != nil {
				return err
			}
			if err := master.Bind("doc/head", nodes[0]); err != nil {
				return err
			}

			client, err := w.NewSite("client", site.WithNameServer("ns"))
			if err != nil {
				return err
			}
			ref, err := client.LookupSpec("doc/head", replication.GetSpec{Mode: replication.Transitive})
			if err != nil {
				return err
			}
			head, err := objmodel.Deref[*Node](ref)
			if err != nil {
				return err
			}
			second, err := objmodel.Deref[*Node](head.Kids[0])
			if err != nil {
				return err
			}

			// First offline edit, synced while the master is alive. Capture
			// the exact put a retry would re-send: same base version, same
			// state.
			head.Data = []byte("edit-1")
			if err := client.MarkUpdated(head); err != nil {
				return err
			}
			headEntry, _ := client.Heap().EntryOf(head)
			base := headEntry.Version()
			state, err := client.Engine().CaptureSnapshot(head)
			if err != nil {
				return err
			}
			dup := &replication.PutRequest{OID: uint64(headEntry.OID), BaseVersion: base, State: state}
			prov := headEntry.Provider()

			if synced, err := client.SyncDirty(); err != nil || synced != 1 {
				return fmt.Errorf("first sync: synced=%d err=%v", synced, err)
			}
			appliedVersion := headEntry.Version() // master's version after the apply

			// Second edit; the master dies before it can be synced.
			second.Data = []byte("edit-2")
			if err := client.MarkUpdated(second); err != nil {
				return err
			}
			w.Kill(master)

			if _, err := client.SyncDirty(); !errors.Is(err, replication.ErrUnavailable) {
				return fmt.Errorf("sync against killed master: want ErrUnavailable, got %v", err)
			}
			if len(client.DirtyReplicas()) != 1 {
				return errors.New("failed sync must keep the replica dirty")
			}

			reborn, err := w.NewDurableSite("master", dir, site.WithNameServer("ns"))
			if err != nil {
				return err
			}
			rebornHead, ok := reborn.Heap().Get(headEntry.OID)
			if !ok {
				return fmt.Errorf("head %v not recovered", headEntry.OID)
			}
			if got := string(rebornHead.Obj.(*Node).Data); got != "edit-1" {
				return fmt.Errorf("recovered head data %q, want the applied edit", got)
			}
			if rebornHead.Version() != appliedVersion {
				return fmt.Errorf("recovered head version %d, want %d", rebornHead.Version(), appliedVersion)
			}

			// Retry the first put verbatim across the restart: the journaled
			// (base, checksum) guard must answer with the recorded version
			// and NOT re-apply.
			res, err := client.Runtime().CallTimeout(prov, replication.BulkTimeout, "Put", dup)
			if err != nil {
				return fmt.Errorf("retried put across restart: %w", err)
			}
			reply, ok := res[0].(*replication.PutReply)
			if !ok {
				return fmt.Errorf("unexpected put reply %T", res[0])
			}
			if reply.NewVersion != appliedVersion {
				return fmt.Errorf("retried put answered version %d, want recorded %d", reply.NewVersion, appliedVersion)
			}
			if rebornHead.Version() != appliedVersion {
				return fmt.Errorf("retried put bumped the master to %d: applied twice", rebornHead.Version())
			}

			// The stranded second edit reconciles on the next sync.
			if synced, err := client.SyncDirty(); err != nil || synced != 1 {
				return fmt.Errorf("sync after rebirth: synced=%d err=%v", synced, err)
			}
			secondEntry, _ := client.Heap().EntryOf(second)
			rebornSecond, _ := reborn.Heap().Get(secondEntry.OID)
			if got := string(rebornSecond.Obj.(*Node).Data); got != "edit-2" {
				return fmt.Errorf("reborn master second node data %q", got)
			}
			if len(client.DirtyReplicas()) != 0 {
				return errors.New("all edits must be clean after the final sync")
			}
			return nil
		})
		if nsrt != nil {
			t.Cleanup(func() { _ = nsrt.Close() })
		}
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestDurableClientCrashRecoversOfflineEdits: the client side of the
// crash story — a durable mobile site journals an offline edit, dies
// before reconnecting, and its next incarnation delivers the edit.
func TestDurableClientCrashRecoversOfflineEdits(t *testing.T) {
	forEachClock(t, func(t *testing.T, mode clockMode) {
		w := mode.newWorld(47)
		defer w.Close()
		dir := t.TempDir()

		var nsrt *rmi.Runtime
		err := w.Within(watchdog, func() error {
			var err error
			if nsrt, err = serveNames(w); err != nil {
				return err
			}
			master, err := w.NewSite("master", site.WithNameServer("ns"))
			if err != nil {
				return err
			}
			nodes, err := journalChain(master, "doc", 2)
			if err != nil {
				return err
			}
			if err := master.Bind("doc/head", nodes[0]); err != nil {
				return err
			}

			mobile, err := w.NewDurableSite("mobile", dir, site.WithNameServer("ns"))
			if err != nil {
				return err
			}
			ref, err := mobile.LookupSpec("doc/head", replication.GetSpec{Mode: replication.Transitive})
			if err != nil {
				return err
			}
			head, err := objmodel.Deref[*Node](ref)
			if err != nil {
				return err
			}

			w.Net.Disconnect("mobile", "master")
			head.Data = []byte("written on the train")
			if err := mobile.MarkUpdated(head); err != nil {
				return err
			}
			// Syncing while partitioned fails typed; then the host powers off.
			if _, err := mobile.SyncDirty(); !errors.Is(err, replication.ErrUnavailable) {
				return fmt.Errorf("sync while partitioned: want ErrUnavailable, got %v", err)
			}
			w.Kill(mobile)

			w.Net.Reconnect("mobile", "master")
			reborn, err := w.NewDurableSite("mobile", dir, site.WithNameServer("ns"))
			if err != nil {
				return err
			}
			if len(reborn.DirtyReplicas()) != 1 {
				return fmt.Errorf("reborn mobile has %d dirty replicas, want 1", len(reborn.DirtyReplicas()))
			}
			if synced, err := reborn.SyncDirty(); err != nil || synced != 1 {
				return fmt.Errorf("sync after rebirth: synced=%d err=%v", synced, err)
			}
			if got := string(nodes[0].Data); got != "written on the train" {
				return fmt.Errorf("master data %q after reconciliation", got)
			}
			return nil
		})
		if nsrt != nil {
			t.Cleanup(func() { _ = nsrt.Close() })
		}
		if err != nil {
			t.Fatal(err)
		}
	})
}
