package chaos

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"obiwan/internal/nameserver"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/site"
)

// Kill/restart scenarios: the chaos suite's process-crash counterpart to
// its link faults. A durable master site is hard-stopped mid-protocol and
// reborn from its WAL directory; the contract asserted here:
//
//   - demands outstanding against the dead site fail typed
//     (replication.ErrUnavailable), never hang;
//   - the reborn site recovers its masters, versions, and name bindings,
//     and re-exports proxy-ins at the ids remote replicas already hold;
//   - a put retried across the restart applies exactly once;
//   - offline edits journaled by a durable client before its own crash
//     reconcile via SyncDirty after rebirth.

// serveNames starts a standalone name server at "ns" on the world's
// network.
func serveNames(t *testing.T, w *World) {
	t.Helper()
	nsrt, err := rmi.NewRuntime(w.Net, "ns")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nsrt.Close() })
	if _, _, err := nameserver.Serve(nsrt); err != nil {
		t.Fatal(err)
	}
}

// journalChain builds a chain at s and marks every linked node updated so
// the reference wiring is journaled (durability makes mutations durable
// at Register/Export/MarkUpdated boundaries; NewRef wiring alone is not a
// journaled mutation).
func journalChain(t *testing.T, s *site.Site, prefix string, n int) []*Node {
	t.Helper()
	nodes, err := BuildChain(s, prefix, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n-1; i++ {
		if err := s.MarkUpdated(nodes[i]); err != nil {
			t.Fatal(err)
		}
	}
	return nodes
}

// runKillRestartMidDemand is the acceptance scenario: a client walks a
// durable master's chain incrementally, the master is killed mid-walk,
// the stranded demand fails typed, the master restarts from disk, the
// walk completes, and a fresh site resolves the re-registered binding.
// It returns a summary of everything observable, so the caller can assert
// a rerun from the same seed is deterministic.
func runKillRestartMidDemand(t *testing.T, seed int64, dir string) []string {
	t.Helper()
	w := NewWorld(seed)
	defer w.Close()
	serveNames(t, w)

	master, err := w.NewDurableSite("master", dir, site.WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	nodes := journalChain(t, master, "doc", 6)
	if err := master.Bind("doc/head", nodes[0]); err != nil {
		t.Fatal(err)
	}

	client, err := w.NewSite("client", site.WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := client.LookupSpec("doc/head", spec1())
	if err != nil {
		t.Fatal(err)
	}
	// Partial walk: two nodes replicated, the rest still behind faults.
	head, err := objmodel.Deref[*Node](ref)
	if err != nil {
		t.Fatal(err)
	}
	kid, err := objmodel.Deref[*Node](head.Kids[0])
	if err != nil {
		t.Fatal(err)
	}

	w.Kill(master)

	// The outstanding demand fails typed, within the watchdog budget.
	err = Within(watchdog, func() error {
		_, err := objmodel.Deref[*Node](kid.Kids[0])
		return err
	})
	if err == nil {
		t.Fatal("demand against a killed site must fail")
	}
	if !errors.Is(err, replication.ErrUnavailable) {
		t.Fatalf("stranded demand: want ErrUnavailable, got %v", err)
	}

	// Rebirth from disk. site.New replays the WAL, re-exports proxy-ins
	// at their recorded ids, and re-binds "doc/head" at the name server.
	reborn, err := w.NewDurableSite("master", dir, site.WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Within(watchdog, func() error {
		n, err := WalkAll(head, 50)
		if err != nil {
			return err
		}
		if n != 6 {
			return fmt.Errorf("walk reached %d nodes, want 6", n)
		}
		return nil
	}); err != nil {
		t.Fatalf("walk after rebirth: %v", err)
	}

	// A fresh site resolves the binding the reborn master re-registered.
	probe, err := w.NewSite("probe", site.WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	pref, err := probe.LookupSpec("doc/head", replication.GetSpec{Mode: replication.Transitive})
	if err != nil {
		t.Fatalf("lookup after rebirth: %v", err)
	}
	proot, err := objmodel.Deref[*Node](pref)
	if err != nil {
		t.Fatal(err)
	}
	pn, err := WalkAll(proot, 50)
	if err != nil || pn != 6 {
		t.Fatalf("probe walk: n=%d err=%v", pn, err)
	}

	// Deterministic summary: recovered identities, versions, and labels.
	// Entries() snapshots a map, so the per-entry lines are sorted.
	summary := []string{
		fmt.Sprintf("incarnation=%d", reborn.Incarnation()),
		fmt.Sprintf("heap=%d client=%d probe=%d",
			reborn.Heap().Len(), client.Heap().Len(), probe.Heap().Len()),
	}
	var entries []string
	for _, en := range reborn.Heap().Entries() {
		entries = append(entries,
			fmt.Sprintf("%v:%s:v%d", en.OID, en.Obj.(*Node).Label, en.Version()))
	}
	sort.Strings(entries)
	return append(summary, entries...)
}

func TestKillRestartMidDemand(t *testing.T) {
	run1 := runKillRestartMidDemand(t, 23, t.TempDir())
	run2 := runKillRestartMidDemand(t, 23, t.TempDir())
	if !reflect.DeepEqual(run1, run2) {
		t.Fatalf("fresh-seed rerun diverged:\nrun1: %v\nrun2: %v", run1, run2)
	}
}

// TestKillRestartMidSyncDirty: a client syncs offline edits while the
// master crashes partway through the session. The sync against the dead
// master fails typed, the reborn master still holds the already-applied
// edit at the right version, a put retried verbatim across the restart
// (the reborn rmi dedupe table is empty — only the journaled engine guard
// can stop it) applies exactly once, and the remaining dirty edit lands
// on the next SyncDirty.
func TestKillRestartMidSyncDirty(t *testing.T) {
	w := NewWorld(31)
	defer w.Close()
	serveNames(t, w)
	dir := t.TempDir()

	master, err := w.NewDurableSite("master", dir, site.WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	nodes := journalChain(t, master, "doc", 2)
	if err := master.Bind("doc/head", nodes[0]); err != nil {
		t.Fatal(err)
	}

	client, err := w.NewSite("client", site.WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := client.LookupSpec("doc/head", replication.GetSpec{Mode: replication.Transitive})
	if err != nil {
		t.Fatal(err)
	}
	head, err := objmodel.Deref[*Node](ref)
	if err != nil {
		t.Fatal(err)
	}
	second, err := objmodel.Deref[*Node](head.Kids[0])
	if err != nil {
		t.Fatal(err)
	}

	// First offline edit, synced while the master is alive. Capture the
	// exact put a retry would re-send: same base version, same state.
	head.Data = []byte("edit-1")
	if err := client.MarkUpdated(head); err != nil {
		t.Fatal(err)
	}
	headEntry, _ := client.Heap().EntryOf(head)
	base := headEntry.Version()
	state, err := client.Engine().CaptureSnapshot(head)
	if err != nil {
		t.Fatal(err)
	}
	dup := &replication.PutRequest{OID: uint64(headEntry.OID), BaseVersion: base, State: state}
	prov := headEntry.Provider()

	if synced, err := client.SyncDirty(); err != nil || synced != 1 {
		t.Fatalf("first sync: synced=%d err=%v", synced, err)
	}
	appliedVersion := headEntry.Version() // master's version after the apply

	// Second edit; the master dies before it can be synced.
	second.Data = []byte("edit-2")
	if err := client.MarkUpdated(second); err != nil {
		t.Fatal(err)
	}
	w.Kill(master)

	err = Within(watchdog, func() error {
		_, err := client.SyncDirty()
		return err
	})
	if !errors.Is(err, replication.ErrUnavailable) {
		t.Fatalf("sync against killed master: want ErrUnavailable, got %v", err)
	}
	if len(client.DirtyReplicas()) != 1 {
		t.Fatal("failed sync must keep the replica dirty")
	}

	reborn, err := w.NewDurableSite("master", dir, site.WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	rebornHead, ok := reborn.Heap().Get(headEntry.OID)
	if !ok {
		t.Fatalf("head %v not recovered", headEntry.OID)
	}
	if got := string(rebornHead.Obj.(*Node).Data); got != "edit-1" {
		t.Fatalf("recovered head data %q, want the applied edit", got)
	}
	if rebornHead.Version() != appliedVersion {
		t.Fatalf("recovered head version %d, want %d", rebornHead.Version(), appliedVersion)
	}

	// Retry the first put verbatim across the restart: the journaled
	// (base, checksum) guard must answer with the recorded version and
	// NOT re-apply.
	res, err := client.Runtime().CallTimeout(prov, replication.BulkTimeout, "Put", dup)
	if err != nil {
		t.Fatalf("retried put across restart: %v", err)
	}
	reply, ok := res[0].(*replication.PutReply)
	if !ok {
		t.Fatalf("unexpected put reply %T", res[0])
	}
	if reply.NewVersion != appliedVersion {
		t.Fatalf("retried put answered version %d, want recorded %d", reply.NewVersion, appliedVersion)
	}
	if rebornHead.Version() != appliedVersion {
		t.Fatalf("retried put bumped the master to %d: applied twice", rebornHead.Version())
	}

	// The stranded second edit reconciles on the next sync.
	if synced, err := client.SyncDirty(); err != nil || synced != 1 {
		t.Fatalf("sync after rebirth: synced=%d err=%v", synced, err)
	}
	secondEntry, _ := client.Heap().EntryOf(second)
	rebornSecond, _ := reborn.Heap().Get(secondEntry.OID)
	if got := string(rebornSecond.Obj.(*Node).Data); got != "edit-2" {
		t.Fatalf("reborn master second node data %q", got)
	}
	if len(client.DirtyReplicas()) != 0 {
		t.Fatal("all edits must be clean after the final sync")
	}
}

// TestDurableClientCrashRecoversOfflineEdits: the client side of the
// crash story — a durable mobile site journals an offline edit, dies
// before reconnecting, and its next incarnation delivers the edit.
func TestDurableClientCrashRecoversOfflineEdits(t *testing.T) {
	w := NewWorld(47)
	defer w.Close()
	serveNames(t, w)
	dir := t.TempDir()

	master, err := w.NewSite("master", site.WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	nodes := journalChain(t, master, "doc", 2)
	if err := master.Bind("doc/head", nodes[0]); err != nil {
		t.Fatal(err)
	}

	mobile, err := w.NewDurableSite("mobile", dir, site.WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mobile.LookupSpec("doc/head", replication.GetSpec{Mode: replication.Transitive})
	if err != nil {
		t.Fatal(err)
	}
	head, err := objmodel.Deref[*Node](ref)
	if err != nil {
		t.Fatal(err)
	}

	w.Net.Disconnect("mobile", "master")
	head.Data = []byte("written on the train")
	if err := mobile.MarkUpdated(head); err != nil {
		t.Fatal(err)
	}
	// Syncing while partitioned fails typed; then the host powers off.
	if _, err := mobile.SyncDirty(); !errors.Is(err, replication.ErrUnavailable) {
		t.Fatalf("sync while partitioned: want ErrUnavailable, got %v", err)
	}
	w.Kill(mobile)

	w.Net.Reconnect("mobile", "master")
	reborn, err := w.NewDurableSite("mobile", dir, site.WithNameServer("ns"))
	if err != nil {
		t.Fatal(err)
	}
	if len(reborn.DirtyReplicas()) != 1 {
		t.Fatalf("reborn mobile has %d dirty replicas, want 1", len(reborn.DirtyReplicas()))
	}
	if synced, err := reborn.SyncDirty(); err != nil || synced != 1 {
		t.Fatalf("sync after rebirth: synced=%d err=%v", synced, err)
	}
	if got := string(nodes[0].Data); got != "written on the train" {
		t.Fatalf("master data %q after reconciliation", got)
	}
}
