package chaos

import (
	"strings"
	"testing"

	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/rmi"
	"obiwan/internal/site"
	"obiwan/internal/transport"
)

// runSlowCriticalPath is the critical-path attribution acceptance
// scenario: a client walks a group-mastered chain while the leader is
// permanently killed mid-walk, then writes through the elected successor.
// A fleet hub scrapes the survivors and renders the worst traced demands
// as phase-annotated critical paths plus the aggregated attribution
// profile — the `obiwan-admin fleet slow` / `fleet attribution` output.
// Under the virtual clock that render is a pure function of the seed.
func runSlowCriticalPath(t *testing.T, seed int64) string {
	t.Helper()
	w := NewWorldClock(seed, netsim.NewVirtualClock())
	defer w.Close()

	var nsrt *rmi.Runtime
	var out string
	err := w.Within(watchdog, func() error {
		var err error
		if nsrt, err = serveNames(w); err != nil {
			return err
		}
		members, err := newGroupSites(w, seed)
		if err != nil {
			return err
		}
		leader, err := awaitLeader(w, members, failoverBound)
		if err != nil {
			return err
		}
		nodes, err := journalChain(leader, "doc", 5)
		if err != nil {
			return err
		}
		if err := leader.Bind("doc/head", nodes[0]); err != nil {
			return err
		}
		client, err := w.NewSite("client", site.WithNameServer("ns"), site.WithIncarnation(1))
		if err != nil {
			return err
		}
		hub, err := w.NewSite("hub", site.WithNameServer("ns"), site.WithIncarnation(1),
			site.WithFleet([]transport.Addr{"g1", "g2", "g3", "client"}))
		if err != nil {
			return err
		}

		ref, err := client.LookupSpec("doc/head", spec1())
		if err != nil {
			return err
		}
		head, err := objmodel.Deref[*Node](ref)
		if err != nil {
			return err
		}
		if _, err := objmodel.Deref[*Node](head.Kids[0]); err != nil {
			return err
		}

		// Permanent leader loss mid-walk: the remaining demands cross the
		// election, so their spans carry elect.wait (and retry.backoff)
		// on the fault chain.
		w.Kill(leader)
		survivors := without(members, leader)
		if _, err := WalkAll(head, 50); err != nil {
			return err
		}
		if _, err := awaitLeader(w, survivors, failoverBound); err != nil {
			return err
		}

		// A write through the successor exercises the consensus submit
		// path (group.submit / submit.wait) behind the serve span.
		head.Data = []byte("attributed")
		if err := client.MarkUpdated(head); err != nil {
			return err
		}
		if _, err := client.SyncDirty(); err != nil {
			return err
		}
		if err := awaitGroupSync(w, survivors, failoverBound); err != nil {
			return err
		}

		hub.Fleet().ScrapeOnce()
		var b strings.Builder
		for _, st := range hub.Fleet().FleetSlow(3) {
			b.WriteString(st.Format())
			b.WriteByte('\n')
		}
		b.WriteString(hub.Fleet().Attribution().Format())
		out = b.String()
		return nil
	})
	if nsrt != nil {
		t.Cleanup(func() { _ = nsrt.Close() })
	}
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return out
}

// TestSlowCriticalPathDeterministic: the acceptance criterion for the
// attribution layer — on a seeded virtual-clock chaos run, the rendered
// slow traces are phase-annotated critical paths whose election wait is
// visible on the fault chain, and two full reruns of the same seed render
// byte-identical output (trace ids, span chain, durations, shares).
func TestSlowCriticalPathDeterministic(t *testing.T) {
	first := runSlowCriticalPath(t, 11)
	second := runSlowCriticalPath(t, 11)
	if first != second {
		t.Fatalf("reruns differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	t.Logf("slow output:\n%s", first)
	for _, want := range []string{
		"rmi.call.latency_ns", // the flagging instrument
		"trace=",              // the annotated chain header
		"self=",               // per-step self-time
		"elect.wait",          // the election stall on the fault chain
		"attribution over",    // the aggregated profile
	} {
		if !strings.Contains(first, want) {
			t.Fatalf("slow output missing %q:\n%s", want, first)
		}
	}
}
