// Package chaos drives the full OBIWAN stack — transport, RMI, the
// replication engine, and the site layer — through scripted network
// failure scenarios: disconnections mid-demand, lost replies, random
// outage/drop schedules over different object-graph shapes.
//
// The paper's defining scenario is a mobile host that disconnects in the
// middle of a session and keeps working; this package turns that story
// into deterministic, replayable tests. Every failure comes from a seeded
// netsim.FaultSchedule, so a failing scenario reruns identically from its
// seed, and schedule traces double as evidence that two runs saw the same
// failure history.
//
// The package's contract, asserted by its test suite:
//
//   - every demand either completes (retries crossing the outage
//     transparently) or fails typed with replication.ErrUnavailable;
//   - no operation hangs (see Within);
//   - no retried call is applied twice at the master (see Counter).
package chaos

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/site"
	"obiwan/internal/telemetry"
	"obiwan/internal/transport"
)

// Node is the object type chaos scenarios replicate: a labelled payload
// with outgoing references, general enough to shape chains (the
// quickstart/disconnected examples), trees (collabdoc's sections), and
// diamonds (shared substructure).
type Node struct {
	Label string
	Data  []byte
	Kids  []*objmodel.Ref
}

// Name returns the node's label (a convenient remote-invocable method).
func (n *Node) Name() string { return n.Label }

func init() {
	objmodel.MustRegisterType("chaos.Node", (*Node)(nil))
}

// DefaultRetry is the policy chaos sites run with: deterministic (no
// jitter), quick backoff, and enough attempts to cross the longest outage
// the scenario generators script (RandomSchedule outages span at most a
// handful of send attempts; rejected sends advance the schedule clock, so
// each attempt is progress toward the scripted reconnect).
func DefaultRetry() rmi.RetryPolicy {
	return rmi.RetryPolicy{
		MaxAttempts: 8,
		BaseBackoff: 500 * time.Microsecond,
		MaxBackoff:  5 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0,
	}
}

// World is one simulated deployment: a seeded in-memory network, the
// sites running on it, and the fault schedules attached to its links.
// A world runs on a netsim.Clock — the real one by default, or a
// VirtualClock (NewWorldClock), under which the same scenarios execute as
// a discrete-event simulation: identical failure histories, near-zero wall
// time.
type World struct {
	Seed  int64
	Net   *transport.MemNetwork
	Clock netsim.Clock

	sites  []*site.Site
	scheds []*netsim.FaultSchedule
}

// NewWorld creates a world on the real clock whose link randomness (and,
// by convention, its scenario randomness) derives from seed.
func NewWorld(seed int64) *World {
	return NewWorldClock(seed, netsim.Real())
}

// NewWorldClock is NewWorld on an explicit clock. With a
// *netsim.VirtualClock every simulated delay — link latency, retry
// backoff, scheduled outages — is an event on the virtual timeline, and
// scenario code must run tracked (see Run).
func NewWorldClock(seed int64, clock netsim.Clock) *World {
	return &World{
		Seed:  seed,
		Clock: clock,
		Net:   transport.NewMemNetworkClock(netsim.Loopback, seed, clock),
	}
}

// Virtual reports whether the world runs on a virtual clock.
func (w *World) Virtual() bool {
	_, ok := w.Clock.(*netsim.VirtualClock)
	return ok
}

// Run executes fn as simulated work: tracked by the virtual clock when the
// world has one (blocking in real time until fn returns), directly
// otherwise. All site operations in a virtual world — including NewSite,
// Close, and Kill — must happen inside Run, because they park on the
// clock.
func (w *World) Run(fn func() error) error {
	vc, ok := w.Clock.(*netsim.VirtualClock)
	if !ok {
		return fn()
	}
	var err error
	vc.Run(func() { err = fn() })
	return err
}

// NewSite starts a site in this world with the chaos retry policy and a
// telemetry hub on the world's clock — in a virtual world, span times and
// phase attributions are then simulated time, deterministic per seed (an
// explicit site.WithRetry or site.WithTelemetry in opts overrides).
func (w *World) NewSite(name string, opts ...site.Option) (*site.Site, error) {
	opts = append([]site.Option{
		site.WithRetry(DefaultRetry()),
		site.WithTelemetry(telemetry.NewHub(name, telemetry.WithClock(w.Clock.Now))),
	}, opts...)
	s, err := site.New(name, w.Net, opts...)
	if err != nil {
		return nil, err
	}
	w.sites = append(w.sites, s)
	return s, nil
}

// NewDurableSite starts a crash-durable site journaling to dir. Starting
// it again over the same dir after Kill (or Close) is the restart path:
// the new incarnation recovers the old one's masters, dirty replicas,
// exports, and name bindings from the WAL.
func (w *World) NewDurableSite(name, dir string, opts ...site.Option) (*site.Site, error) {
	return w.NewSite(name, append(opts, site.WithDurability(dir))...)
}

// Kill hard-stops a site in place — the process-crash analogue of a link
// fault: in-flight calls against it fail, nothing is flushed, and a
// durable site's WAL directory is left exactly as the crash left it.
// Close remains safe to call afterwards (it is a no-op).
func (w *World) Kill(s *site.Site) { s.Kill() }

// Close shuts every site down, newest first. In a virtual world the
// shutdowns run tracked (site teardown drains in-flight simulated work),
// and the clock is stopped afterwards.
func (w *World) Close() {
	_ = w.Run(func() error {
		for i := len(w.sites) - 1; i >= 0; i-- {
			_ = w.sites[i].Close()
		}
		return nil
	})
	if vc, ok := w.Clock.(*netsim.VirtualClock); ok {
		vc.Stop()
	}
}

// Schedule attaches a fault schedule to the directional link from→to and
// records it for Trace comparison. It returns s for chaining.
func (w *World) Schedule(from, to string, s *netsim.FaultSchedule) *netsim.FaultSchedule {
	w.Net.SetFaultSchedule(transport.Addr(from), transport.Addr(to), s)
	w.scheds = append(w.scheds, s)
	return s
}

// Trace flattens the fired events of every attached schedule, in
// attachment order. Two runs of the same scenario with the same seed must
// produce equal traces — the suite's determinism assertion.
func (w *World) Trace() []string {
	var out []string
	for i, s := range w.scheds {
		for _, ev := range s.Trace() {
			out = append(out, fmt.Sprintf("link%d:%s", i, ev))
		}
	}
	return out
}

// ErrHung marks an operation that did not return within its watchdog
// budget — the failure mode the suite exists to rule out.
var ErrHung = errors.New("chaos: operation hung")

// Within runs op under a watchdog: if op does not return within d, Within
// returns ErrHung (the op goroutine is abandoned; tests treat ErrHung as
// fatal, so the leak dies with the process).
func Within(d time.Duration, op func() error) error {
	done := make(chan error, 1)
	go func() { done <- op() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		return fmt.Errorf("%w: no result after %v", ErrHung, d)
	}
}

// Within is the world-aware watchdog: op runs as simulated work (see Run)
// while the wall-clock budget d guards against a wedged simulation — a
// virtual world that deadlocks burns no virtual time, so only a real-time
// watchdog can catch it. On a hang the clock state is appended to the
// error for diagnosis.
func (w *World) Within(d time.Duration, op func() error) error {
	err := Within(d, func() error { return w.Run(op) })
	if errors.Is(err, ErrHung) {
		if vc, ok := w.Clock.(*netsim.VirtualClock); ok {
			return fmt.Errorf("%w (%s)", err, vc.Snapshot())
		}
	}
	return err
}

// BuildChain registers n master nodes a→b→c… at s and returns them head
// first — the list shape of the quickstart and disconnected examples.
func BuildChain(s *site.Site, prefix string, n int) ([]*Node, error) {
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = &Node{Label: fmt.Sprintf("%s-%d", prefix, i), Data: []byte{byte(i)}}
		if err := s.Register(nodes[i]); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n-1; i++ {
		ref, err := s.NewRef(nodes[i+1])
		if err != nil {
			return nil, err
		}
		nodes[i].Kids = append(nodes[i].Kids, ref)
	}
	return nodes, nil
}

// BuildTree registers a complete tree of the given depth and fanout
// (collabdoc's document/section shape) and returns its root and total
// node count. Depth 1 is a single node.
func BuildTree(s *site.Site, prefix string, depth, fanout int) (*Node, int, error) {
	count := 0
	var build func(level int, path string) (*Node, error)
	build = func(level int, path string) (*Node, error) {
		n := &Node{Label: fmt.Sprintf("%s-%s", prefix, path), Data: []byte(path)}
		if err := s.Register(n); err != nil {
			return nil, err
		}
		count++
		if level < depth {
			for i := 0; i < fanout; i++ {
				kid, err := build(level+1, fmt.Sprintf("%s.%d", path, i))
				if err != nil {
					return nil, err
				}
				ref, err := s.NewRef(kid)
				if err != nil {
					return nil, err
				}
				n.Kids = append(n.Kids, ref)
			}
		}
		return n, nil
	}
	root, err := build(1, "r")
	if err != nil {
		return nil, 0, err
	}
	return root, count, nil
}

// BuildDiamond registers the four-node diamond A→{B,C}→D — shared
// substructure, so D is reached through two paths but must replicate once.
// It returns [A, B, C, D].
func BuildDiamond(s *site.Site, prefix string) ([]*Node, error) {
	mk := func(tag string) (*Node, error) {
		n := &Node{Label: prefix + "-" + tag, Data: []byte(tag)}
		return n, s.Register(n)
	}
	a, err := mk("a")
	if err != nil {
		return nil, err
	}
	b, err := mk("b")
	if err != nil {
		return nil, err
	}
	c, err := mk("c")
	if err != nil {
		return nil, err
	}
	d, err := mk("d")
	if err != nil {
		return nil, err
	}
	link := func(from, to *Node) error {
		ref, err := s.NewRef(to)
		if err != nil {
			return err
		}
		from.Kids = append(from.Kids, ref)
		return nil
	}
	for _, e := range []struct{ f, t *Node }{{a, b}, {a, c}, {b, d}, {c, d}} {
		if err := link(e.f, e.t); err != nil {
			return nil, err
		}
	}
	return []*Node{a, b, c, d}, nil
}

// WalkAll dereferences every reference reachable from root, re-walking
// after typed unavailability (replica progress persists in the heap, and
// every attempt advances any attached schedule toward its reconnect). It
// returns the number of distinct nodes reached. Untyped errors — and
// exceeding maxRounds — abort the walk.
func WalkAll(root *Node, maxRounds int) (int, error) {
	var lastErr error
	for round := 0; round <= maxRounds; round++ {
		visited := make(map[*Node]bool)
		var walk func(n *Node) error
		walk = func(n *Node) error {
			if visited[n] {
				return nil
			}
			visited[n] = true
			for i, ref := range n.Kids {
				kid, err := objmodel.Deref[*Node](ref)
				if err != nil {
					return fmt.Errorf("deref %s kid %d: %w", n.Label, i, err)
				}
				if err := walk(kid); err != nil {
					return err
				}
			}
			return nil
		}
		err := walk(root)
		if err == nil {
			return len(visited), nil
		}
		if !errors.Is(err, replication.ErrUnavailable) {
			return 0, err
		}
		lastErr = err
	}
	return 0, fmt.Errorf("walk did not converge in %d rounds: %w", maxRounds, lastErr)
}

// Counter is an RMI service counting real executions: the server-side
// proof that a retried (re-sent) call is never applied twice. Bump returns
// the post-increment count, so a client issuing k calls must observe k —
// any duplicate execution shows up as a skipped or repeated value. Atomic
// because RMI dispatches each inbound call in its own goroutine.
type Counter struct {
	n atomic.Int64
}

// Bump adds delta and returns the new count.
func (c *Counter) Bump(delta int64) int64 { return c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }
