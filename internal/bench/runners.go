package bench

import (
	"fmt"
	"io"
	"time"

	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/stats"
)

// RunTable1 measures the §4.1 micro numbers: the per-invocation cost of a
// local method invocation on a replica vs a remote method invocation, and
// RMI's independence of object size.
func RunTable1(cfg Config) ([]Point, error) {
	var points []Point

	// LMI: replicate once, then time a tight invocation loop.
	{
		e, err := newEnv(cfg.Profile)
		if err != nil {
			return nil, err
		}
		head, err := e.buildList(1, 64)
		if err != nil {
			e.close()
			return nil, err
		}
		ref, err := e.clientRef(head, replication.DefaultSpec)
		if err != nil {
			e.close()
			return nil, err
		}
		if _, err := ref.Resolve(); err != nil {
			e.close()
			return nil, err
		}
		const n = 100000
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := ref.Invoke("Touch"); err != nil {
				e.close()
				return nil, err
			}
		}
		per := time.Since(start) / n
		points = append(points, Point{
			Experiment: "table1", Series: "LMI", Size: 64, X: n,
			TotalMS: ms(per * n), PerOpUS: us(per),
		})
		e.close()
	}

	// RMI: per-call round trips for two object sizes — the cost must not
	// depend on the size (only the call frame crosses the wire).
	for _, size := range []int{64, 64 * 1024} {
		e, err := newEnv(cfg.Profile)
		if err != nil {
			return nil, err
		}
		head, err := e.buildList(1, size)
		if err != nil {
			e.close()
			return nil, err
		}
		ref, err := e.clientRef(head, replication.DefaultSpec)
		if err != nil {
			e.close()
			return nil, err
		}
		ref.SetMode(objmodel.ModeRemote)
		if _, err := ref.Invoke("Touch"); err != nil { // warm the connection
			e.close()
			return nil, err
		}
		const n = 50
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := ref.Invoke("Touch"); err != nil {
				e.close()
				return nil, err
			}
		}
		per := time.Since(start) / n
		points = append(points, Point{
			Experiment: "table1", Series: "RMI " + sizeLabel(size), Size: size, X: n,
			TotalMS: ms(per * n), PerOpUS: us(per),
		})
		e.close()
	}
	return points, nil
}

// RunFig4 measures the total cost of n invocations on one object of each
// size, via RMI and via LMI. Per the paper, "the execution time of LMI
// includes the cost due to the creation of the replica and to update it
// back in the master site".
func RunFig4(cfg Config) ([]Point, error) {
	var points []Point

	// RMI series: size-independent, so one series suffices (the paper
	// plots one RMI curve).
	for _, n := range cfg.Invocations {
		e, err := newEnv(cfg.Profile)
		if err != nil {
			return nil, err
		}
		total, err := fig4RMI(e, n)
		e.close()
		if err != nil {
			return nil, err
		}
		points = append(points, Point{
			Experiment: "fig4", Series: "RMI", Size: 64, X: float64(n),
			TotalMS: ms(total), PerOpUS: us(total / time.Duration(n)),
		})
	}

	for _, size := range cfg.Fig4Sizes {
		for _, n := range cfg.Invocations {
			e, err := newEnv(cfg.Profile)
			if err != nil {
				return nil, err
			}
			total, err := fig4LMI(e, size, n)
			e.close()
			if err != nil {
				return nil, err
			}
			points = append(points, Point{
				Experiment: "fig4", Series: "LMI " + sizeLabel(size), Size: size,
				X: float64(n), TotalMS: ms(total), PerOpUS: us(total / time.Duration(n)),
			})
		}
	}
	return points, nil
}

func fig4RMI(e *env, n int) (time.Duration, error) {
	head, err := e.buildList(1, 64)
	if err != nil {
		return 0, err
	}
	ref, err := e.clientRef(head, replication.DefaultSpec)
	if err != nil {
		return 0, err
	}
	ref.SetMode(objmodel.ModeRemote)
	if _, err := ref.Invoke("Touch"); err != nil { // connection setup excluded
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := ref.Invoke("Touch"); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

func fig4LMI(e *env, size, n int) (time.Duration, error) {
	head, err := e.buildList(1, size)
	if err != nil {
		return 0, err
	}
	ref, err := e.clientRef(head, replication.DefaultSpec)
	if err != nil {
		return 0, err
	}
	// Warm the connection as for RMI, through a master-directed call.
	if r := ref.Remote(); r != nil {
		if _, err := r.RemoteInvoke("Touch", nil); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	// Replica creation...
	obj, err := ref.Resolve()
	if err != nil {
		return 0, err
	}
	// ...n local invocations...
	for i := 0; i < n; i++ {
		if _, err := ref.Invoke("Touch"); err != nil {
			return 0, err
		}
	}
	// ...and the put-back to the master.
	if err := e.client.Put(obj); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// RunFig5 measures the incremental replication of the list without
// clustering: each fault ships the next `step` objects, each with its own
// proxy pair.
func RunFig5(cfg Config) ([]Point, error) {
	return runListWalk(cfg, "fig5", false)
}

// RunFig6 measures the same walk with clustering: one proxy pair per
// cluster of `step` objects.
func RunFig6(cfg Config) ([]Point, error) {
	return runListWalk(cfg, "fig6", true)
}

func runListWalk(cfg Config, experiment string, clustered bool) ([]Point, error) {
	var points []Point
	for _, size := range cfg.Sizes {
		for _, step := range cfg.Steps {
			p, err := listWalkPoint(cfg, experiment, size, step, clustered)
			if err != nil {
				return nil, fmt.Errorf("%s size=%d step=%d: %w", experiment, size, step, err)
			}
			points = append(points, p)
		}
	}
	return points, nil
}

func listWalkPoint(cfg Config, experiment string, size, step int, clustered bool) (Point, error) {
	e, err := newEnv(cfg.Profile)
	if err != nil {
		return Point{}, err
	}
	defer e.close()
	head, err := e.buildList(cfg.ListLen, size)
	if err != nil {
		return Point{}, err
	}
	spec := replication.GetSpec{Mode: replication.Incremental, Batch: step, Clustered: clustered}
	ref, err := e.clientRef(head, spec)
	if err != nil {
		return Point{}, err
	}
	start := time.Now()
	if err := walkList(ref, cfg.ListLen); err != nil {
		return Point{}, err
	}
	total := time.Since(start)
	cs := e.crt.Stats()
	ss := e.srt.Stats()
	return Point{
		Experiment: experiment,
		Series:     fmt.Sprintf("%s step=%d", sizeLabel(size), step),
		Size:       size,
		Step:       step,
		X:          float64(step),
		TotalMS:    ms(total),
		PerOpUS:    us(total / time.Duration(cfg.ListLen)),
		RMICalls:   cs.CallsSent,
		BytesSent:  cs.BytesSent + ss.BytesSent,
		ProxyPairs: e.server.GC().Snapshot().ProxyInsExported,
	}, nil
}

// RunFig5Curve emits the cumulative staircase for one (size, step)
// configuration: total elapsed time after every sampleEvery invocations.
// This is the raw shape of the paper's figure-5 plots.
func RunFig5Curve(cfg Config, size, step, sampleEvery int, clustered bool) ([]Point, error) {
	e, err := newEnv(cfg.Profile)
	if err != nil {
		return nil, err
	}
	defer e.close()
	head, err := e.buildList(cfg.ListLen, size)
	if err != nil {
		return nil, err
	}
	spec := replication.GetSpec{Mode: replication.Incremental, Batch: step, Clustered: clustered}
	ref, err := e.clientRef(head, spec)
	if err != nil {
		return nil, err
	}
	experiment := "fig5curve"
	if clustered {
		experiment = "fig6curve"
	}
	series := fmt.Sprintf("%s step=%d", sizeLabel(size), step)

	var points []Point
	start := time.Now()
	cur := ref
	for i := 0; i < cfg.ListLen; i++ {
		if _, err := cur.Invoke("Touch"); err != nil {
			return nil, err
		}
		node, err := objmodel.Deref[*Node](cur)
		if err != nil {
			return nil, err
		}
		cur = node.Next
		if (i+1)%sampleEvery == 0 || i == cfg.ListLen-1 {
			points = append(points, Point{
				Experiment: experiment, Series: series, Size: size, Step: step,
				X: float64(i + 1), TotalMS: ms(time.Since(start)),
			})
		}
	}
	return points, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WritePoints renders points as an aligned table.
func WritePoints(w io.Writer, points []Point) {
	t := stats.NewTable("experiment", "series", "x", "total_ms", "per_op_us", "rmi_calls", "bytes", "proxy_pairs", "value")
	for _, p := range points {
		t.AddRow(p.Experiment, p.Series, p.X, p.TotalMS, p.PerOpUS, p.RMICalls, p.BytesSent, p.ProxyPairs, p.Value)
	}
	_, _ = t.WriteTo(w)
}

// WriteCSV renders points as CSV.
func WriteCSV(w io.Writer, points []Point) {
	t := stats.NewTable("experiment", "series", "size", "step", "x", "total_ms", "per_op_us", "rmi_calls", "bytes", "proxy_pairs", "value")
	for _, p := range points {
		t.AddRow(p.Experiment, p.Series, p.Size, p.Step, p.X, p.TotalMS, p.PerOpUS, p.RMICalls, p.BytesSent, p.ProxyPairs, p.Value)
	}
	_, _ = io.WriteString(w, t.CSV())
}
