package bench

import (
	"fmt"

	"obiwan/internal/swarm"
)

// The attribution experiment answers the paper-scale "where does p99 go"
// question: run the swarm's churn and flash-crowd scenarios in
// observatory mode on the virtual clock, let the fleet collector scrape
// every leaf's spans, and reduce the aggregated critical-path profile
// (swarm.FleetObservation.Attribution) to integer phase shares. Every
// figure is exact integer math over virtual-clock durations, so the
// checked-in BENCH_attribution.json baseline is byte-stable per
// Config.FleetSeed; drift in a phase share means the protocol's latency
// composition actually changed.

// RunAttribution produces the phase-share profile at the smallest
// configured fleet size (the composition, unlike capacity, is not a
// sweep):
//
//	<scenario>/paths          Value: critical paths the profile aggregates
//	<scenario>/share-<phase>  Value: the phase's share of total path time,
//	                          in integer permille (390 = 39.0%)
func RunAttribution(cfg Config) ([]Point, error) {
	if len(cfg.FleetSizes) == 0 {
		return nil, fmt.Errorf("bench: no fleet sizes configured")
	}
	sites := cfg.FleetSizes[0]
	scenarios := []struct {
		name string
		run  func(swarm.Options) (*swarm.Report, []string, error)
	}{
		{"churn", swarm.Churn},
		{"flash-crowd", swarm.FlashCrowd},
	}
	var points []Point
	for _, sc := range scenarios {
		o := swarm.Defaults(cfg.FleetSeed)
		o.Sites = sites
		o.Duration = cfg.FleetDuration
		o.Observe = true
		report, _, err := sc.run(o)
		if err != nil {
			return nil, fmt.Errorf("attribution %s sites=%d: %w", sc.name, sites, err)
		}
		obs := report.Fleet
		if obs == nil || obs.Attribution == nil {
			return nil, fmt.Errorf("attribution %s sites=%d: no attribution profile in report", sc.name, sites)
		}
		prof := obs.Attribution
		pt := func(series string) Point {
			return Point{Experiment: "attribution", Series: sc.name + "/" + series,
				Size: sites, X: float64(sites)}
		}
		paths := pt("paths")
		paths.Value = float64(prof.Paths)
		points = append(points, paths)
		for _, phase := range prof.PhaseNames() {
			p := pt("share-" + phase)
			p.Value = float64(prof.SharePermille(phase))
			points = append(points, p)
		}
	}
	return points, nil
}
