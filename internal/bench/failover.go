package bench

import (
	"fmt"
	"time"

	"obiwan/internal/nameserver"
	"obiwan/internal/netsim"
	"obiwan/internal/objmodel"
	"obiwan/internal/replication"
	"obiwan/internal/rmi"
	"obiwan/internal/site"
	"obiwan/internal/transport"
)

// The failover experiment prices the robustness of consensus-replicated
// master groups (DESIGN.md §10): what a 3-site group costs in steady
// state — demands and puts pay a quorum round on the master side — and
// what it buys — a bounded elect-to-serving window after the leader is
// permanently killed. Unlike the two-site figures, these worlds run on
// the virtual clock, so every number is a deterministic function of the
// seed: the checked-in BENCH_failover.json baseline is reproducible
// bit-for-bit, and drift in it is a real cost change, not machine noise.

// failoverRun is one world's measurements.
type failoverRun struct {
	demand      time.Duration // client walks the whole chain, one demand per node
	put         time.Duration // client syncs FailoverPuts head edits
	elect       time.Duration // leader killed → a survivor holds a serve lease
	demandCalls uint64        // client RMI calls during the walk
	demandBytes uint64        // wire bytes, all runtimes, during the walk
	putCalls    uint64
	putBytes    uint64
}

// failoverBound caps every await in the experiment; on the virtual clock
// it only fires if the group genuinely cannot elect.
const failoverBound = 30 * time.Second

// failoverObject is the payload size of every chain node.
const failoverObject = 1024

// RunFailover measures steady-state overhead and failover latency of a
// 3-site master group against a single master over the same links, one
// world pair per seed.
func RunFailover(cfg Config) ([]Point, error) {
	if len(cfg.FailoverSeeds) == 0 {
		return nil, fmt.Errorf("bench: no failover seeds configured")
	}
	var single, group failoverRun
	var points []Point
	for _, seed := range cfg.FailoverSeeds {
		s, err := runFailoverWorld(cfg, seed, false)
		if err != nil {
			return nil, fmt.Errorf("seed %d single: %w", seed, err)
		}
		g, err := runFailoverWorld(cfg, seed, true)
		if err != nil {
			return nil, fmt.Errorf("seed %d group3: %w", seed, err)
		}
		accumulate(&single, s)
		accumulate(&group, g)
		points = append(points, Point{
			Experiment: "failover", Series: "elect", Size: 3,
			X: float64(seed), TotalMS: ms(g.elect),
		})
	}
	n := len(cfg.FailoverSeeds)
	mean := func(label string, r failoverRun, d time.Duration, ops int, calls, bytes uint64) Point {
		per := time.Duration(0)
		if ops > 0 {
			per = d / time.Duration(n*ops)
		}
		return Point{
			Experiment: "failover", Series: label, Size: failoverObject,
			X: float64(ops), TotalMS: ms(d) / float64(n), PerOpUS: us(per),
			RMICalls: calls / uint64(n), BytesSent: bytes / uint64(n),
		}
	}
	points = append(points,
		mean("demand single", single, single.demand, cfg.FailoverChain, single.demandCalls, single.demandBytes),
		mean("demand group3", group, group.demand, cfg.FailoverChain, group.demandCalls, group.demandBytes),
		mean("put single", single, single.put, cfg.FailoverPuts, single.putCalls, single.putBytes),
		mean("put group3", group, group.put, cfg.FailoverPuts, group.putCalls, group.putBytes),
	)
	return points, nil
}

func accumulate(sum *failoverRun, r failoverRun) {
	sum.demand += r.demand
	sum.put += r.put
	sum.elect += r.elect
	sum.demandCalls += r.demandCalls
	sum.demandBytes += r.demandBytes
	sum.putCalls += r.putCalls
	sum.putBytes += r.putBytes
}

// runFailoverWorld builds one virtual-clock world — a 3-member master
// group when group is true, a lone master otherwise — runs the steady
// workload, and (group only) kills the leader and times the election.
func runFailoverWorld(cfg Config, seed int64, group bool) (failoverRun, error) {
	clock := netsim.NewVirtualClock()
	net := transport.NewMemNetworkClock(cfg.Profile, seed, clock)
	var (
		run   failoverRun
		sites []*site.Site
		nsrt  *rmi.Runtime
		err   error
	)
	clock.Run(func() {
		run, sites, nsrt, err = failoverBody(cfg, seed, group, clock, net)
	})
	clock.Run(func() {
		for i := len(sites) - 1; i >= 0; i-- {
			_ = sites[i].Close()
		}
	})
	clock.Stop()
	if nsrt != nil {
		// After Stop: closing the standalone runtime must not park an
		// untracked goroutine on the virtual clock.
		_ = nsrt.Close()
	}
	return run, err
}

func failoverBody(cfg Config, seed int64, group bool, clock netsim.Clock, net *transport.MemNetwork) (failoverRun, []*site.Site, *rmi.Runtime, error) {
	var run failoverRun
	nsrt, err := rmi.NewRuntime(net, "ns")
	if err != nil {
		return run, nil, nil, err
	}
	if _, _, err := nameserver.Serve(nsrt); err != nil {
		_ = nsrt.Close()
		return run, nil, nsrt, err
	}
	// Deterministic retries (no jitter), enough to ride out a redirect.
	retry := rmi.RetryPolicy{
		MaxAttempts: 8,
		BaseBackoff: 500 * time.Microsecond,
		MaxBackoff:  5 * time.Millisecond,
		Multiplier:  2,
	}

	members := []transport.Addr{"m1"}
	if group {
		members = []transport.Addr{"m1", "m2", "m3"}
	}
	gcfg := site.GroupConfig{Name: "grp", Members: members, Seed: seed}
	var sites []*site.Site
	for _, m := range members {
		opts := []site.Option{
			site.WithNameServer("ns"),
			site.WithIncarnation(1),
			site.WithRetry(retry),
		}
		if group {
			opts = append(opts, site.WithMasterGroup(gcfg))
		}
		s, err := site.New(string(m), net, opts...)
		if err != nil {
			return run, sites, nsrt, err
		}
		sites = append(sites, s)
	}

	master := sites[0]
	if group {
		if master, err = awaitServing(clock, sites); err != nil {
			return run, sites, nsrt, err
		}
	}

	// Master-side chain: register, link, and agree the links through the
	// group log (MarkUpdated on a grouped master routes through consensus,
	// so every member can serve the wired state after a failover).
	nodes := make([]*Node, cfg.FailoverChain)
	for i := range nodes {
		nodes[i] = &Node{Payload: make([]byte, failoverObject)}
		if err := master.Register(nodes[i]); err != nil {
			return run, sites, nsrt, err
		}
	}
	for i := 0; i < len(nodes)-1; i++ {
		ref, err := master.NewRef(nodes[i+1])
		if err != nil {
			return run, sites, nsrt, err
		}
		nodes[i].Next = ref
		if err := master.MarkUpdated(nodes[i]); err != nil {
			return run, sites, nsrt, err
		}
	}
	if err := master.Bind("bench/head", nodes[0]); err != nil {
		return run, sites, nsrt, err
	}

	client, err := site.New("client", net,
		site.WithNameServer("ns"), site.WithIncarnation(1), site.WithRetry(retry))
	if err != nil {
		return run, sites, nsrt, err
	}
	sites = append(sites, client)
	ref, err := client.LookupSpec("bench/head", replication.DefaultSpec)
	if err != nil {
		return run, sites, nsrt, err
	}

	calls0, bytes0 := wireCounters(client, sites)
	start := clock.Now()
	if err := walkList(ref, cfg.FailoverChain); err != nil {
		return run, sites, nsrt, err
	}
	run.demand = clock.Now().Sub(start)
	calls1, bytes1 := wireCounters(client, sites)
	run.demandCalls, run.demandBytes = calls1-calls0, bytes1-bytes0

	head, err := objmodel.Deref[*Node](ref)
	if err != nil {
		return run, sites, nsrt, err
	}
	payload := make([]byte, failoverObject)
	start = clock.Now()
	for i := 0; i < cfg.FailoverPuts; i++ {
		payload[0] = byte(i)
		head.SetPayload(payload)
		if err := client.MarkUpdated(head); err != nil {
			return run, sites, nsrt, err
		}
		if n, err := client.SyncDirty(); err != nil || n != 1 {
			return run, sites, nsrt, fmt.Errorf("put %d: synced=%d err=%w", i, n, err)
		}
	}
	run.put = clock.Now().Sub(start)
	calls2, bytes2 := wireCounters(client, sites)
	run.putCalls, run.putBytes = calls2-calls1, bytes2-bytes1

	if !group {
		return run, sites, nsrt, nil
	}

	// Permanent loss of the leader; the window closes when a survivor
	// holds a live serve lease.
	killedAt := clock.Now()
	master.Kill()
	var survivors []*site.Site
	for _, s := range sites[:len(members)] {
		if s != master {
			survivors = append(survivors, s)
		}
	}
	if _, err := awaitServing(clock, survivors); err != nil {
		return run, sites, nsrt, err
	}
	run.elect = clock.Now().Sub(killedAt)

	// The successor really serves: one more put must land through it.
	payload[0] = 0xff
	head.SetPayload(payload)
	if err := client.MarkUpdated(head); err != nil {
		return run, sites, nsrt, err
	}
	if n, err := client.SyncDirty(); err != nil || n != 1 {
		return run, sites, nsrt, fmt.Errorf("put after failover: synced=%d err=%w", n, err)
	}
	return run, sites, nsrt, nil
}

// awaitServing polls the members until one holds a live serve lease.
func awaitServing(clock netsim.Clock, members []*site.Site) (*site.Site, error) {
	deadline := clock.Now().Add(failoverBound)
	for {
		for _, s := range members {
			if s.Group().CheckServe() == nil {
				return s, nil
			}
		}
		if !clock.Now().Before(deadline) {
			return nil, fmt.Errorf("no serving leader among %d members within %v", len(members), failoverBound)
		}
		clock.Sleep(2 * time.Millisecond)
	}
}

// wireCounters sums the client's outbound call count and every runtime's
// bytes on the wire (group traffic between members included — that is
// the overhead being priced).
func wireCounters(client *site.Site, sites []*site.Site) (calls, bytes uint64) {
	calls = client.Runtime().Stats().CallsSent
	for _, s := range sites {
		bytes += s.Runtime().Stats().BytesSent
	}
	return calls, bytes
}
