package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// The regression gate: re-run the experiments recorded in a checked-in
// baseline (BENCH_failover.json, BENCH_fleet.json) and compare every
// measured figure within a relative tolerance. Both baselines are produced
// under the virtual clock, so they are deterministic functions of the code
// — any drift beyond tolerance is a real behaviour change, in either
// direction: a speedup that nobody re-baselined hides the next slowdown,
// so improvements fail the gate too until the baseline is regenerated.

// Regression is one tolerance violation found by Check.
type Regression struct {
	// Key identifies the point: "experiment/series size=S step=T x=X".
	Key string
	// Field names the Point figure that drifted ("TotalMS", "Value", ...)
	// or "missing" when the rerun produced no matching point at all.
	Field string
	// Want is the baseline figure, Got the rerun's.
	Want, Got float64
	// DriftPct is the relative drift in percent, signed; +Inf marks drift
	// from a zero baseline.
	DriftPct float64
}

func (r Regression) String() string {
	if r.Field == "missing" {
		return fmt.Sprintf("%s: point missing from rerun", r.Key)
	}
	if math.IsInf(r.DriftPct, 1) {
		return fmt.Sprintf("%s: %s was 0, now %g", r.Key, r.Field, r.Got)
	}
	return fmt.Sprintf("%s: %s %g -> %g (%+.2f%%)", r.Key, r.Field, r.Want, r.Got, r.DriftPct)
}

// LoadBaseline reads a -json baseline file back into points.
func LoadBaseline(path string) ([]Point, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: read baseline: %w", err)
	}
	var points []Point
	if err := json.Unmarshal(blob, &points); err != nil {
		return nil, fmt.Errorf("bench: parse baseline %s: %w", path, err)
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("bench: baseline %s holds no points", path)
	}
	return points, nil
}

// checkRunners maps an Experiment name found in a baseline to the runner
// that regenerates it. Only experiments that are deterministic under the
// virtual clock belong here — gating wall-clock timings would flap.
var checkRunners = map[string]func(Config) ([]Point, error){
	"failover":    RunFailover,
	"fleet":       RunFleet,
	"attribution": RunAttribution,
}

func pointKey(p Point) string {
	return fmt.Sprintf("%s/%s size=%d step=%d x=%g", p.Experiment, p.Series, p.Size, p.Step, p.X)
}

// Check reruns every experiment named in baseline and returns all points
// whose figures drifted more than tolerancePct percent (relative, either
// direction), plus a "missing" regression for every baseline point the
// rerun no longer produces. Progress notes go to log (may be nil).
func Check(baseline []Point, cfg Config, tolerancePct float64, log io.Writer) ([]Regression, error) {
	if log == nil {
		log = io.Discard
	}
	// Collect the distinct experiments in baseline order.
	var exps []string
	seen := map[string]bool{}
	for _, p := range baseline {
		if !seen[p.Experiment] {
			seen[p.Experiment] = true
			exps = append(exps, p.Experiment)
		}
	}
	fresh := map[string]Point{}
	for _, exp := range exps {
		run, ok := checkRunners[exp]
		if !ok {
			names := make([]string, 0, len(checkRunners))
			for n := range checkRunners {
				names = append(names, n)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("bench: experiment %q is not gateable (deterministic gates: %v)", exp, names)
		}
		fmt.Fprintf(log, "checking %s...\n", exp)
		points, err := run(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: rerun %s: %w", exp, err)
		}
		for _, p := range points {
			fresh[pointKey(p)] = p
		}
	}

	var regressions []Regression
	for _, want := range baseline {
		key := pointKey(want)
		got, ok := fresh[key]
		if !ok {
			regressions = append(regressions, Regression{Key: key, Field: "missing"})
			continue
		}
		fields := []struct {
			name      string
			want, got float64
		}{
			{"TotalMS", want.TotalMS, got.TotalMS},
			{"PerOpUS", want.PerOpUS, got.PerOpUS},
			{"RMICalls", float64(want.RMICalls), float64(got.RMICalls)},
			{"BytesSent", float64(want.BytesSent), float64(got.BytesSent)},
			{"ProxyPairs", float64(want.ProxyPairs), float64(got.ProxyPairs)},
			{"Value", want.Value, got.Value},
		}
		for _, f := range fields {
			if f.want == f.got {
				continue
			}
			if f.want == 0 {
				regressions = append(regressions, Regression{
					Key: key, Field: f.name, Want: f.want, Got: f.got, DriftPct: math.Inf(1),
				})
				continue
			}
			drift := 100 * (f.got - f.want) / math.Abs(f.want)
			if math.Abs(drift) > tolerancePct {
				regressions = append(regressions, Regression{
					Key: key, Field: f.name, Want: f.want, Got: f.got, DriftPct: drift,
				})
			}
		}
	}
	return regressions, nil
}
