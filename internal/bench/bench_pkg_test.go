package bench

import (
	"bytes"
	"strings"
	"testing"

	"obiwan/internal/netsim"
	"obiwan/internal/replication"
)

// tinyConfig keeps the unit tests fast: loopback link, short lists.
func tinyConfig() Config {
	return Config{
		Profile:     netsim.Loopback,
		ListLen:     20,
		Sizes:       []int{64},
		Steps:       []int{1, 5, 20},
		Fig4Sizes:   []int{64},
		Invocations: []int{1, 10},
		TreeDepth:   3,
	}
}

func TestRunTable1Shape(t *testing.T) {
	points, err := RunTable1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points: %d", len(points))
	}
	var lmi, rmiSmall, rmiBig float64
	for _, p := range points {
		switch p.Series {
		case "LMI":
			lmi = p.PerOpUS
		case "RMI 64B":
			rmiSmall = p.PerOpUS
		case "RMI 64KB":
			rmiBig = p.PerOpUS
		}
	}
	if lmi <= 0 || rmiSmall <= 0 || rmiBig <= 0 {
		t.Fatalf("missing series: %+v", points)
	}
	// LMI per call must be far below RMI per call even on loopback.
	if lmi >= rmiSmall {
		t.Fatalf("LMI %.1fus should beat RMI %.1fus", lmi, rmiSmall)
	}
	// RMI must be independent of object size (well within 10x even with
	// scheduler noise; the paper reports exactly equal).
	if rmiBig > rmiSmall*10 || rmiSmall > rmiBig*10 {
		t.Fatalf("RMI size dependence: 64B=%.1fus 64KB=%.1fus", rmiSmall, rmiBig)
	}
}

func TestRunFig4Shape(t *testing.T) {
	points, err := RunFig4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 2 RMI points (1, 10 invocations) + 2 LMI points.
	if len(points) != 4 {
		t.Fatalf("points: %d: %+v", len(points), points)
	}
	// RMI total must grow with invocation count.
	var rmi1, rmi10 float64
	for _, p := range points {
		if p.Series == "RMI" {
			if p.X == 1 {
				rmi1 = p.TotalMS
			} else {
				rmi10 = p.TotalMS
			}
		}
	}
	if rmi10 <= rmi1 {
		t.Fatalf("RMI not growing: 1→%.3fms 10→%.3fms", rmi1, rmi10)
	}
}

func TestRunFig5AndFig6Shape(t *testing.T) {
	cfg := tinyConfig()
	f5, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f6, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5) != len(cfg.Sizes)*len(cfg.Steps) || len(f6) != len(f5) {
		t.Fatalf("point counts: %d %d", len(f5), len(f6))
	}
	for i := range f5 {
		if f5[i].Step != f6[i].Step {
			t.Fatalf("step mismatch at %d", i)
		}
		// Non-clustered exports one proxy-in per object; clustered one per
		// cluster plus nothing extra.
		if f5[i].ProxyPairs != uint64(cfg.ListLen) {
			t.Fatalf("fig5 step=%d proxy pairs %d, want %d", f5[i].Step, f5[i].ProxyPairs, cfg.ListLen)
		}
		wantClusters := uint64((cfg.ListLen + f6[i].Step - 1) / f6[i].Step)
		if f6[i].ProxyPairs != wantClusters {
			t.Fatalf("fig6 step=%d proxy pairs %d, want %d", f6[i].Step, f6[i].ProxyPairs, wantClusters)
		}
		// Clustering must not send more bytes than per-object proxies.
		if f6[i].BytesSent > f5[i].BytesSent {
			t.Fatalf("step=%d clustered bytes %d > per-object %d",
				f5[i].Step, f6[i].BytesSent, f5[i].BytesSent)
		}
	}
	// RMI call count halves as the step doubles: walk/step demands.
	for _, p := range f5 {
		want := uint64(cfg.ListLen / p.Step)
		if p.RMICalls != want {
			t.Fatalf("step=%d rmi calls %d, want %d", p.Step, p.RMICalls, want)
		}
	}
}

func TestRunFig5Curve(t *testing.T) {
	cfg := tinyConfig()
	points, err := RunFig5Curve(cfg, 64, 5, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != cfg.ListLen/5 {
		t.Fatalf("curve points: %d", len(points))
	}
	// Cumulative time is non-decreasing.
	for i := 1; i < len(points); i++ {
		if points[i].TotalMS < points[i-1].TotalMS {
			t.Fatalf("cumulative time regressed at %d", i)
		}
	}
}

func TestRunAblations(t *testing.T) {
	cfg := tinyConfig()
	mode, err := RunAblationMode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mode) != 8 { // 4 strategies × (first use, full walk)
		t.Fatalf("mode points: %d", len(mode))
	}
	depth, err := RunAblationDepth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(depth) != 6 {
		t.Fatalf("depth points: %d", len(depth))
	}
	v, err := RunFig5v6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 4 { // steps {5,20} × {per-object, clustered}
		t.Fatalf("fig5v6 points: %d", len(v))
	}
	auto, err := RunAutoCrossover(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(auto) != 3 {
		t.Fatalf("auto points: %d", len(auto))
	}
	// Auto must replicate after the crossover: strictly fewer RMI calls
	// than pure remote.
	var remote, autoCalls uint64
	for _, p := range auto {
		switch p.Series {
		case "remote":
			remote = p.RMICalls
		case "auto":
			autoCalls = p.RMICalls
		}
	}
	if autoCalls >= remote {
		t.Fatalf("auto rmi calls %d, remote %d", autoCalls, remote)
	}
}

func TestWalkListTooShort(t *testing.T) {
	e, err := newEnv(netsim.Loopback)
	if err != nil {
		t.Fatal(err)
	}
	defer e.close()
	head, err := e.buildList(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.clientRef(head, replication.DefaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	if err := walkList(ref, 10); err == nil {
		t.Fatal("walk past the end must error")
	}
}

func TestOutputRendering(t *testing.T) {
	points := []Point{{
		Experiment: "fig5", Series: "64B step=1", Size: 64, Step: 1,
		X: 1, TotalMS: 12.5, PerOpUS: 12.5, RMICalls: 3, BytesSent: 100, ProxyPairs: 5,
	}}
	var buf bytes.Buffer
	WritePoints(&buf, points)
	out := buf.String()
	if !strings.Contains(out, "fig5") || !strings.Contains(out, "64B step=1") {
		t.Fatalf("table output: %q", out)
	}
	buf.Reset()
	WriteCSV(&buf, points)
	if !strings.Contains(buf.String(), "fig5,64B step=1,64,1") {
		t.Fatalf("csv output: %q", buf.String())
	}
}

func TestSizeLabel(t *testing.T) {
	for size, want := range map[int]string{
		64:        "64B",
		1024:      "1KB",
		16 * 1024: "16KB",
		1500:      "1500B",
	} {
		if got := sizeLabel(size); got != want {
			t.Fatalf("%d: %q want %q", size, got, want)
		}
	}
}

func TestBuildTreeCounts(t *testing.T) {
	e, err := newEnv(netsim.Loopback)
	if err != nil {
		t.Fatal(err)
	}
	defer e.close()
	_, n, err := e.buildTree(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 { // complete binary tree of depth 4
		t.Fatalf("tree nodes: %d", n)
	}
}

func TestRunPrefetchShape(t *testing.T) {
	cfg := tinyConfig()
	points, err := RunPrefetch(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points: %d", len(points))
	}
	var walk, prefetched float64
	for _, p := range points {
		switch p.Series {
		case "walk":
			walk = p.TotalMS
		case "walk+prefetch":
			prefetched = p.TotalMS
		}
		if p.RMICalls != uint64(cfg.ListLen) {
			t.Fatalf("rmi calls: %d", p.RMICalls)
		}
	}
	if walk <= 0 || prefetched <= 0 {
		t.Fatalf("series missing: %+v", points)
	}
}
